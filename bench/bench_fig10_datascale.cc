// Reproduces Figure 10 (impact of data scale):
//  (a) CMF50 as a function of the number of historical trajectories
//      associated with each cell tower (capping per-tower history), and
//  (b) CMF50 as a function of the total number of training trajectories.
// Each setting retrains LHMM on the reduced history.

#include <algorithm>
#include <filesystem>
#include <memory>
#include <unordered_map>

#include "bench/bench_common.h"
#include "core/csv.h"
#include "core/stopwatch.h"
#include "core/strings.h"
#include "eval/evaluator.h"
#include "eval/report.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

namespace {

/// Caps the number of training trajectories that interact with any tower:
/// trajectories are admitted greedily while every tower they touch is below
/// the cap.
std::vector<traj::MatchedTrajectory> CapPerTower(
    const std::vector<traj::MatchedTrajectory>& train, int cap) {
  std::unordered_map<traj::TowerId, int> count;
  std::vector<traj::MatchedTrajectory> out;
  for (const auto& mt : train) {
    bool admit = false;
    for (const auto& p : mt.cellular.points) {
      if (count[p.tower] < cap) {
        admit = true;
        break;
      }
    }
    if (!admit) continue;
    for (const auto& p : mt.cellular.points) ++count[p.tower];
    out.push_back(mt);
  }
  return out;
}

double EvalCmf(const bench::Env& env, const std::vector<traj::MatchedTrajectory>& train,
               const std::string& tag, int num_seeds, int threads) {
  L::TrainInputs inputs;
  inputs.net = env.net();
  inputs.index = env.index.get();
  inputs.num_towers = env.num_towers();
  inputs.train = &train;
  // Average two training seeds: single-seed retrains at small data scales
  // are noisy enough to mask the curve.
  double cmf_sum = 0.0;
  const int kSeeds = num_seeds;
  for (int seed = 0; seed < kSeeds; ++seed) {
    L::LhmmConfig cfg = bench::DefaultLhmmConfig();
    // Keep the number of passes over the data roughly constant across scales
    // (a fixed step count would under-train the larger settings), while
    // capping the cost of this many-retrain sweep.
    const int n_train = static_cast<int>(train.size());
    cfg.obs_steps = std::clamp(60 + n_train / 3, 80, 260);
    cfg.trans_steps = std::clamp(40 + n_train / 4, 60, 170);
    cfg.seed = 1234 + 71 * seed;
    core::Stopwatch watch;
    std::shared_ptr<L::LhmmModel> model = L::TrainLhmm(inputs, cfg);
    fprintf(stderr, "[bench] %s seed %d trained on %zu trajectories in %.1f s\n",
            tag.c_str(), seed, train.size(), watch.ElapsedSeconds());
    // Evaluation parallelizes across test trajectories: every worker clones a
    // matcher around the shared (const at inference) model and they all share
    // one thread-safe route cache.
    const network::RoadNetwork* net = env.net();
    const network::GridIndex* index = env.index.get();
    network::CachedRouter shared_cache(net);
    matchers::BatchConfig batch_config;
    batch_config.num_threads = threads;
    batch_config.shared_router = &shared_cache;
    matchers::BatchMatcher batch(
        [net, index, model] {
          return std::make_unique<L::LhmmMatcher>(net, index, model);
        },
        batch_config);
    traj::FilterConfig filters;
    cmf_sum +=
        eval::EvaluateMatcherParallel(&batch, env.ds.network, env.ds.test, filters)
            .cmf50;
  }
  return cmf_sum / kSeeds;
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::create_directories("bench_out");
  const int threads = bench::ThreadsFromArgs(argc, argv);
  bench::Env env = bench::MakeEnv("Xiamen-S");

  // ---- (a) Per-tower history cap. ----
  printf("\n=== Fig. 10(a): CMF50 vs trajectories per tower ===\n");
  eval::TextTable table_a({"per-tower cap", "train size", "CMF50"});
  core::CsvWriter csv_a("bench_out/fig10a_per_tower.csv");
  csv_a.AddRow({"cap", "train_size", "cmf50"});
  for (int cap : {2, 5, 10, 20, 40}) {
    const auto train = CapPerTower(env.ds.train, cap);
    // Two seeds: small per-tower caps are the noisiest settings.
    const double cmf =
        EvalCmf(env, train, core::StrFormat("cap=%d", cap), 2, threads);
    table_a.AddRow({core::StrFormat("%d", cap),
                    core::StrFormat("%zu", train.size()), eval::Fmt(cmf)});
    csv_a.AddRow({core::StrFormat("%d", cap), core::StrFormat("%zu", train.size()),
                  eval::Fmt(cmf)});
  }
  table_a.Print();
  (void)csv_a.Flush();

  // ---- (b) Total data scale. ----
  printf("\n=== Fig. 10(b): CMF50 vs total training trajectories ===\n");
  eval::TextTable table_b({"fraction", "train size", "CMF50"});
  core::CsvWriter csv_b("bench_out/fig10b_total.csv");
  csv_b.AddRow({"fraction", "train_size", "cmf50"});
  for (double frac : {0.125, 0.25, 0.5, 1.0}) {
    std::vector<traj::MatchedTrajectory> train(
        env.ds.train.begin(),
        env.ds.train.begin() +
            static_cast<size_t>(frac * static_cast<double>(env.ds.train.size())));
    const double cmf =
        EvalCmf(env, train, core::StrFormat("frac=%.3f", frac), 1, threads);
    table_b.AddRow({eval::Fmt(frac, 3), core::StrFormat("%zu", train.size()),
                    eval::Fmt(cmf)});
    csv_b.AddRow({eval::Fmt(frac, 3), core::StrFormat("%zu", train.size()),
                  eval::Fmt(cmf)});
  }
  table_b.Print();
  (void)csv_b.Flush();

  printf(
      "\nPaper shapes: accuracy improves with per-tower history and saturates\n"
      "around ~20 associated trajectories; more total training data keeps\n"
      "helping as more of the city gets covered.\n");
  return 0;
}
