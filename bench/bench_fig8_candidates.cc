// Reproduces Figure 8 (impact of the candidate number k): CMF50 of LHMM and
// STM as k sweeps from 10 to 60. The trained LHMM model is reused across the
// sweep — only the engine's k changes.

#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "core/csv.h"
#include "core/strings.h"
#include "eval/evaluator.h"
#include "eval/report.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

int main() {
  std::filesystem::create_directories("bench_out");
  bench::Env env = bench::MakeEnv("Xiamen-S");
  traj::FilterConfig filters;

  std::shared_ptr<L::LhmmModel> model =
      bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm");

  printf("\n=== Fig. 8: CMF50 vs candidate number k ===\n");
  eval::TextTable table({"k", "LHMM CMF50", "STM CMF50", "LHMM time (s)",
                         "STM time (s)"});
  core::CsvWriter csv("bench_out/fig8_candidates.csv");
  csv.AddRow({"k", "lhmm_cmf50", "stm_cmf50", "lhmm_time_s", "stm_time_s"});
  for (int k : {10, 20, 30, 45, 60}) {
    auto variant = std::make_shared<L::LhmmModel>(std::move(
        *bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm")));
    variant->config.k = k;
    L::LhmmMatcher lhmm_matcher(env.net(), env.index.get(), variant);
    const eval::EvalSummary ls =
        eval::EvaluateMatcher(&lhmm_matcher, env.ds.network, env.ds.test, filters);

    hmm::EngineConfig engine = bench::BaselineEngineConfig();
    engine.k = k;
    matchers::StmMatcher stm(env.net(), env.index.get(), bench::GpsModelConfig(),
                             engine);
    const eval::EvalSummary ss =
        eval::EvaluateMatcher(&stm, env.ds.network, env.ds.test, filters);

    table.AddRow({core::StrFormat("%d", k), eval::Fmt(ls.cmf50),
                  eval::Fmt(ss.cmf50), eval::Fmt(ls.avg_time_s, 4),
                  eval::Fmt(ss.avg_time_s, 4)});
    csv.AddRow({core::StrFormat("%d", k), eval::Fmt(ls.cmf50), eval::Fmt(ss.cmf50),
                eval::Fmt(ls.avg_time_s, 4), eval::Fmt(ss.avg_time_s, 4)});
    fprintf(stderr, "[bench] k=%d done\n", k);
  }
  table.Print();
  (void)csv.Flush();
  printf(
      "\nPaper shape: accuracy does NOT keep improving with k — more\n"
      "candidates bring more irrelevant roads and more noise; the sweet spot\n"
      "is around k=30 for LHMM, while time grows with k.\n");
  return 0;
}
