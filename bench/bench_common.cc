#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "core/logging.h"
#include "core/stopwatch.h"
#include "core/thread_pool.h"

namespace lhmm::bench {

namespace {
constexpr char kCacheDir[] = "bench_cache";
}

bool FastMode() {
  const char* v = std::getenv("LHMM_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

Env MakeEnv(const std::string& which, bool fast) {
  sim::DatasetConfig cfg =
      which == "Hangzhou-S" ? sim::HangzhouSPreset() : sim::XiamenSPreset();
  if (fast || FastMode()) {
    cfg.num_train = cfg.num_train / 4;
    cfg.num_val = cfg.num_val / 4;
    cfg.num_test = cfg.num_test / 4;
  }
  Env env;
  core::Stopwatch watch;
  env.ds = sim::BuildDataset(cfg);
  env.index = std::make_unique<network::GridIndex>(&env.ds.network, 300.0);
  fprintf(stderr, "[bench] dataset %s ready in %.1f s (%d segments, %d towers)\n",
          cfg.name.c_str(), watch.ElapsedSeconds(), env.ds.network.num_segments(),
          static_cast<int>(env.ds.towers.size()));
  return env;
}

std::shared_ptr<lhmm::LhmmModel> GetLhmmModel(const Env& env,
                                              const lhmm::LhmmConfig& config,
                                              const std::string& tag) {
  std::filesystem::create_directories(kCacheDir);
  const std::string path = std::string(kCacheDir) + "/" + env.ds.name + "_" + tag +
                           (FastMode() ? "_fast" : "") + ".model";

  lhmm::TrainInputs inputs;
  inputs.net = env.net();
  inputs.index = env.index.get();
  inputs.num_towers = env.num_towers();
  inputs.train = &env.ds.train;

  if (std::filesystem::exists(path)) {
    // Rebuild the (deterministic) graph + architecture, then load weights.
    lhmm::LhmmConfig probe = config;
    probe.obs_steps = 0;
    probe.trans_steps = 0;
    probe.fusion_steps = 0;
    std::shared_ptr<lhmm::LhmmModel> model = lhmm::TrainLhmm(inputs, probe);
    model->config = config;
    const core::Status status = model->Load(path);
    if (status.ok()) {
      fprintf(stderr, "[bench] loaded cached model %s\n", path.c_str());
      return model;
    }
    fprintf(stderr, "[bench] cache load failed (%s); retraining\n",
            status.ToString().c_str());
  }

  core::Stopwatch watch;
  std::shared_ptr<lhmm::LhmmModel> model = lhmm::TrainLhmm(inputs, config);
  fprintf(stderr, "[bench] trained %s/%s in %.1f s\n", env.ds.name.c_str(),
          tag.c_str(), watch.ElapsedSeconds());
  const core::Status status = model->Save(path);
  if (!status.ok()) {
    fprintf(stderr, "[bench] warning: cannot cache model: %s\n",
            status.ToString().c_str());
  }
  return model;
}

lhmm::LhmmConfig DefaultLhmmConfig() {
  lhmm::LhmmConfig config;
  return config;
}

std::unique_ptr<matchers::Seq2SeqMatcher> GetSeq2Seq(
    const Env& env,
    std::unique_ptr<matchers::Seq2SeqMatcher> (*maker)(const network::RoadNetwork*,
                                                       const network::GridIndex*,
                                                       int, uint64_t),
    const std::string& tag) {
  std::filesystem::create_directories(kCacheDir);
  const std::string path = std::string(kCacheDir) + "/" + env.ds.name + "_" + tag +
                           (FastMode() ? "_fast" : "") + ".model";
  std::unique_ptr<matchers::Seq2SeqMatcher> matcher =
      maker(env.net(), env.index.get(), env.num_towers(), 77);
  if (std::filesystem::exists(path) && matcher->Load(path).ok()) {
    fprintf(stderr, "[bench] loaded cached model %s\n", path.c_str());
    return matcher;
  }
  core::Stopwatch watch;
  traj::FilterConfig filters;
  matcher->Train(env.ds.train, filters);
  fprintf(stderr, "[bench] trained %s/%s in %.1f s\n", env.ds.name.c_str(),
          tag.c_str(), watch.ElapsedSeconds());
  const core::Status status = matcher->Save(path);
  if (!status.ok()) {
    fprintf(stderr, "[bench] warning: cannot cache model: %s\n",
            status.ToString().c_str());
  }
  return matcher;
}

hmm::ClassicModelConfig GpsModelConfig() {
  hmm::ClassicModelConfig cfg;
  // GPS-era scales: tuned for tens of meters of noise, kept (as the paper
  // argues) unsuited to 0.1-3 km cellular errors.
  cfg.obs_sigma = 260.0;
  cfg.search_radius = 1700.0;
  cfg.trans_beta = 420.0;
  return cfg;
}

hmm::ClassicModelConfig CtmmModelConfig() {
  hmm::ClassicModelConfig cfg;
  // Cellular-tailored scales.
  cfg.obs_sigma = 480.0;
  cfg.search_radius = 2300.0;
  cfg.trans_beta = 520.0;
  return cfg;
}

hmm::EngineConfig BaselineEngineConfig() {
  hmm::EngineConfig cfg;
  cfg.k = 45;
  return cfg;
}

int ThreadsFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      const int n = std::atoi(arg + 10);
      if (n >= 1) return n;
    } else if (std::strcmp(arg, "--threads") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[i + 1]);
      if (n >= 1) return n;
    }
  }
  return core::ThreadPool::DefaultThreadCount();
}

matchers::MatcherFactory Seq2SeqFactory(
    const Env& env,
    std::unique_ptr<matchers::Seq2SeqMatcher> (*maker)(const network::RoadNetwork*,
                                                       const network::GridIndex*,
                                                       int, uint64_t),
    const std::string& tag) {
  // Train (or load) exactly one prototype, then hand every worker clone a
  // shared read-only view of its weights: the inference path never writes
  // them, so N clones cost one copy of the model instead of N disk reloads
  // (or N retrains) that used to run per clone.
  std::shared_ptr<matchers::Seq2SeqMatcher> prototype =
      GetSeq2Seq(env, maker, tag);
  return [prototype]() -> std::unique_ptr<matchers::MapMatcher> {
    return prototype->SharedClone();
  };
}

core::Status WriteTimingsJson(const std::string& path, const std::string& dataset,
                              int threads,
                              const std::vector<MatcherTiming>& timings) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return core::Status::IoError("cannot open " + path);
  }
  std::fprintf(f, "{\n  \"dataset\": \"%s\",\n  \"threads\": %d,\n  \"matchers\": [\n",
               dataset.c_str(), threads);
  for (size_t i = 0; i < timings.size(); ++i) {
    const MatcherTiming& t = timings[i];
    std::fprintf(f,
                 "    {\"matcher\": \"%s\", \"wall_s\": %.4f, \"work_s\": %.4f, "
                 "\"speedup\": %.2f}%s\n",
                 t.matcher.c_str(), t.wall_s, t.work_s, t.speedup,
                 i + 1 < timings.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return core::Status::Ok();
}

}  // namespace lhmm::bench
