// Design-choice ablations beyond the paper's Table III (the DESIGN.md
// inventory): what each of this implementation's own decisions contributes.
//
//   no-filters    — skip the SnapNet preprocessing pipeline (keep dedup)
//   no-velocity   — drop the physical velocity constraint in the learned P_T
//   no-co-pool    — restrict candidate pools to the spatial neighborhood
//   A*-expansion  — (informational) A* vs Dijkstra for path expansion
//
// All variants reuse the trained full model; only inference toggles change.

#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "core/csv.h"
#include "core/stopwatch.h"
#include "core/strings.h"
#include "eval/error_analysis.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "network/astar.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

int main() {
  std::filesystem::create_directories("bench_out");
  bench::Env env = bench::MakeEnv("Xiamen-S");

  eval::TextTable table(
      {"variant", "precision", "recall", "RMF", "CMF50", "HR", "time (s)"});
  core::CsvWriter csv("bench_out/ablation_design.csv");
  csv.AddRow({"variant", "precision", "recall", "rmf", "cmf50", "hr", "time_s"});

  auto run = [&](const std::string& label, const L::LhmmConfig& cfg,
                 const traj::FilterConfig& filters) {
    auto model = std::make_shared<L::LhmmModel>(std::move(
        *bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm")));
    model->config = cfg;
    L::LhmmMatcher matcher(env.net(), env.index.get(), model, label);
    const eval::EvalSummary s =
        eval::EvaluateMatcher(&matcher, env.ds.network, env.ds.test, filters);
    table.AddRow({label, eval::Fmt(s.precision), eval::Fmt(s.recall),
                  eval::Fmt(s.rmf), eval::Fmt(s.cmf50),
                  eval::Fmt(s.hitting_ratio), eval::Fmt(s.avg_time_s, 4)});
    csv.AddRow({label, eval::Fmt(s.precision), eval::Fmt(s.recall),
                eval::Fmt(s.rmf), eval::Fmt(s.cmf50), eval::Fmt(s.hitting_ratio),
                eval::Fmt(s.avg_time_s, 4)});
    fprintf(stderr, "[bench] %s done\n", label.c_str());
  };

  const traj::FilterConfig standard;
  run("LHMM (full)", bench::DefaultLhmmConfig(), standard);
  run("no-filters", bench::DefaultLhmmConfig(), traj::NoopFilterConfig());
  {
    L::LhmmConfig cfg = bench::DefaultLhmmConfig();
    cfg.max_speed = 0.0;  // Velocity constraint off.
    run("no-velocity", cfg, standard);
  }
  {
    L::LhmmConfig cfg = bench::DefaultLhmmConfig();
    cfg.extend_pool_with_co = false;
    run("no-co-pool", cfg, standard);
  }

  printf("\n=== Design-choice ablations (Xiamen-S) ===\n");
  table.Print();
  (void)csv.Flush();

  // Router comparison: A* vs Dijkstra on the expansion workload.
  network::SegmentRouter dijkstra(env.net());
  network::AStarRouter astar(env.net());
  core::Rng rng(5);
  const int n = env.net()->num_segments();
  core::Stopwatch w1;
  for (int i = 0; i < 2000; ++i) {
    (void)dijkstra.Route1(rng.UniformInt(n), rng.UniformInt(n), 6000.0);
  }
  const double t_dijkstra = w1.ElapsedSeconds();
  core::Rng rng2(5);
  core::Stopwatch w2;
  for (int i = 0; i < 2000; ++i) {
    (void)astar.Route1(rng2.UniformInt(n), rng2.UniformInt(n), 6000.0);
  }
  const double t_astar = w2.ElapsedSeconds();
  printf(
      "\nRouter micro-comparison (2000 random point-to-point queries):\n"
      "  Dijkstra %.3f s, A* %.3f s (%.1fx)\n",
      t_dijkstra, t_astar, t_dijkstra / std::max(1e-9, t_astar));

  // Error analysis: where does LHMM's error live? Bucket the per-trajectory
  // metrics by mean positioning error and by truth-path length.
  {
    auto model = std::make_shared<L::LhmmModel>(std::move(
        *bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm")));
    L::LhmmMatcher matcher(env.net(), env.index.get(), model);
    const std::vector<eval::TrajectoryEval> records = eval::EvaluatePerTrajectory(
        &matcher, env.ds.network, env.ds.test, standard);
    std::vector<double> pos_err;
    std::vector<double> lengths;
    for (const auto& mt : env.ds.test) {
      pos_err.push_back(eval::MeanPositioningError(mt));
      lengths.push_back(eval::TruthLength(env.ds.network, mt));
    }
    printf("\nLHMM error analysis by mean positioning error (m):\n%s",
           eval::BucketTable(eval::BucketByAttribute(pos_err, records, 4),
                             "pos err (m)")
               .c_str());
    printf("\nLHMM error analysis by truth path length (m):\n%s",
           eval::BucketTable(eval::BucketByAttribute(lengths, records, 4),
                             "path len (m)")
               .c_str());
  }

  printf(
      "\nExpected shapes: dropping the filters hurts most at the outlier-heavy\n"
      "points; dropping the velocity constraint inflates RMF (detours return);\n"
      "dropping the CO pool extension lowers HR for high-error points;\n"
      "accuracy degrades with per-trajectory positioning error.\n");
  return 0;
}
