// Micro-benchmarks (google-benchmark) for the hot kernels under the
// map-matching pipeline: spatial index queries, bounded Dijkstra, the HMM
// engine end to end, attention/MLP inference, and Het-Graph encoder forward.
//
// Besides the default google-benchmark mode, `--json PATH --suite
// routing|viterbi|store [--smoke]` runs a fixed perf suite and writes a flat
// key/value JSON snapshot for tools/bench_diff — the perf-regression
// harness. The routing suite measures the HMM column and path-expansion
// routing workloads on a Hangzhou-S-scale network, cold Dijkstra vs the
// contraction-hierarchy backend; the viterbi suite measures the SoA column
// kernel vs the scalar reference and the engine end to end; the store suite
// measures the mmap data plane — store build, open+validate (the full CRC
// sweep a swap candidate pays), and materializing assets from the mapping vs
// rebuilding them from scratch the way an owned-mode worker must. `--smoke`
// shrinks query counts (same network, same per-query metrics) so the suite
// runs in ctest time.

#include <benchmark/benchmark.h>

#include "core/strings.h"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "core/rng.h"
#include "core/stopwatch.h"
#include "hmm/classic_models.h"
#include "hmm/engine.h"
#include "hmm/viterbi_kernel.h"
#include "lhmm/het_encoder.h"
#include "lhmm/mr_graph.h"
#include "network/ch_router.h"
#include "network/contraction.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "network/path_cache.h"
#include "network/shortest_path.h"
#include "nn/modules.h"
#include "sim/dataset.h"
#include "store/mapped_store.h"
#include "store/store_writer.h"
#include "traj/filters.h"

namespace lhmm {
namespace {

/// Shared fixture state, built once.
struct MicroEnv {
  sim::Dataset ds;
  std::unique_ptr<network::GridIndex> index;

  MicroEnv() {
    sim::DatasetConfig cfg = sim::XiamenSPreset();
    cfg.num_train = 30;
    cfg.num_val = 5;
    cfg.num_test = 30;
    ds = sim::BuildDataset(cfg);
    index = std::make_unique<network::GridIndex>(&ds.network, 300.0);
  }
};

MicroEnv& Env() {
  static MicroEnv* env = new MicroEnv();
  return *env;
}

void BM_GridIndexQuery(benchmark::State& state) {
  MicroEnv& env = Env();
  core::Rng rng(1);
  const geo::BBox& b = env.ds.network.Bounds();
  for (auto _ : state) {
    const geo::Point p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    benchmark::DoNotOptimize(env.index->Query(p, state.range(0)));
  }
}
BENCHMARK(BM_GridIndexQuery)->Arg(500)->Arg(1500)->Arg(2500);

void BM_GridIndexNearest(benchmark::State& state) {
  MicroEnv& env = Env();
  core::Rng rng(2);
  const geo::BBox& b = env.ds.network.Bounds();
  for (auto _ : state) {
    const geo::Point p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    benchmark::DoNotOptimize(env.index->Nearest(p, state.range(0)));
  }
}
BENCHMARK(BM_GridIndexNearest)->Arg(30)->Arg(100);

void BM_BoundedDijkstra(benchmark::State& state) {
  MicroEnv& env = Env();
  network::SegmentRouter router(&env.ds.network);
  core::Rng rng(3);
  const int n = env.ds.network.num_segments();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        router.Route1(rng.UniformInt(n), rng.UniformInt(n), state.range(0)));
  }
}
BENCHMARK(BM_BoundedDijkstra)->Arg(2000)->Arg(6000);

void BM_RouteMany45(benchmark::State& state) {
  MicroEnv& env = Env();
  network::SegmentRouter router(&env.ds.network);
  core::Rng rng(4);
  const int n = env.ds.network.num_segments();
  std::vector<network::SegmentId> targets(45);
  for (auto& t : targets) t = rng.UniformInt(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.RouteMany(rng.UniformInt(n), targets, 4000.0));
  }
}
BENCHMARK(BM_RouteMany45);

void BM_HmmEngineMatch(benchmark::State& state) {
  MicroEnv& env = Env();
  hmm::ClassicModelConfig models;
  hmm::EngineConfig config;
  config.k = static_cast<int>(state.range(0));
  hmm::GaussianObservationModel obs(env.index.get(), models);
  hmm::ClassicTransitionModel trans(models, &env.ds.network);
  network::SegmentRouter router(&env.ds.network);
  network::CachedRouter cached(&router);
  hmm::Engine engine(&env.ds.network, &cached, &obs, &trans, config);
  traj::FilterConfig filters;
  std::vector<traj::Trajectory> cleaned;
  for (const auto& mt : env.ds.test) {
    cleaned.push_back(
        traj::DeduplicateTowers(traj::PreprocessCellular(mt.cellular, filters)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Match(cleaned[i]));
    i = (i + 1) % cleaned.size();
  }
}
BENCHMARK(BM_HmmEngineMatch)->Arg(15)->Arg(30)->Arg(45)->Unit(benchmark::kMillisecond);

void BM_AttentionForward(benchmark::State& state) {
  core::Rng rng(5);
  nn::AdditiveAttention attn(48, 48, 48, &rng);
  const nn::Matrix keys = nn::Matrix::Gaussian(static_cast<int>(state.range(0)),
                                               48, 1.0f, &rng);
  const nn::Matrix query = nn::Matrix::Gaussian(1, 48, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(query, keys, keys));
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(32)->Arg(64);

void BM_MlpBatchForward(benchmark::State& state) {
  core::Rng rng(6);
  nn::Mlp mlp({96, 48, 2}, &rng);
  const nn::Matrix x = nn::Matrix::Gaussian(static_cast<int>(state.range(0)), 96,
                                            1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Forward(x));
  }
}
BENCHMARK(BM_MlpBatchForward)->Arg(32)->Arg(128)->Arg(256);

void BM_HetEncoderForward(benchmark::State& state) {
  MicroEnv& env = Env();
  traj::FilterConfig filters;
  std::vector<traj::Trajectory> cleaned;
  for (const auto& mt : env.ds.train) {
    cleaned.push_back(
        traj::DeduplicateTowers(traj::PreprocessCellular(mt.cellular, filters)));
  }
  lhmm::MultiRelationalGraph graph = lhmm::BuildGraph(
      env.ds.network, static_cast<int>(env.ds.towers.size()), env.ds.train, cleaned);
  core::Rng rng(7);
  lhmm::EncoderConfig cfg;
  cfg.dim = static_cast<int>(state.range(0));
  lhmm::HetGraphEncoder encoder(&graph, cfg, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.ForwardNoGrad());
  }
  state.SetLabel(core::StrFormat("|V|=%d", graph.num_nodes()));
}
BENCHMARK(BM_HetEncoderForward)->Arg(32)->Arg(48)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// JSON perf-suite mode (the tools/bench_diff regression harness).
// ---------------------------------------------------------------------------

struct KV {
  std::string key;
  double value;
};

/// Writes a flat {"key": value, ...} JSON object — the only shape
/// tools/bench_diff parses.
bool WriteFlatJson(const std::string& path, const std::vector<KV>& kvs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < kvs.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.6g%s\n", kvs[i].key.c_str(), kvs[i].value,
                 i + 1 < kvs.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

/// Fixed integer spin, timed: a machine-speed yardstick stored next to every
/// wall metric so bench_diff can normalize away host differences before
/// comparing against a committed baseline.
double CalibrateUs() {
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    core::Stopwatch watch;
    uint64_t x = 88172645463325252ULL;
    for (int i = 0; i < 2000000; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
    benchmark::DoNotOptimize(x);
    best = std::min(best, watch.ElapsedSeconds() * 1e6);
  }
  return best;
}

int Sanitized() {
#if defined(LHMM_SANITIZED) || defined(__SANITIZE_ADDRESS__) || \
    defined(__SANITIZE_THREAD__)
  return 1;
#else
  return 0;
#endif
}

/// The routing suite: the two routing workloads the matching pipeline
/// actually issues, on a Hangzhou-S-scale city network.
///
///  - "column": the HMM column pattern — for each of ~8 predecessor
///    candidates, RouteMany against the next point's ~45 candidate targets
///    under the Eq.-derived bound (one shared target set per column, which
///    is what the CH corridor reuse amortizes);
///  - "expand": ExpandPath's point-to-point Route1 calls at the 12 km cap,
///    where the CH forward join tightens or refutes the search.
///
/// Both run cold (no CachedRouter): this isolates the backend, and cold
/// misses are exactly where the backend choice matters in production.
int RunRoutingSuite(const std::string& json_path, bool smoke) {
  sim::DatasetConfig cfg = sim::HangzhouSPreset();
  network::RoadNetwork net = network::GenerateCityNetwork(cfg.net);
  network::GridIndex index(&net, 300.0);
  const geo::BBox b = net.Bounds();
  core::Rng rng(42);

  const int num_columns = smoke ? 6 : 40;
  const int num_expands = smoke ? 12 : 80;
  const int reps = smoke ? 2 : 3;

  struct Column {
    std::vector<network::SegmentId> froms;
    std::vector<network::SegmentId> targets;
    double bound = 0.0;
  };
  std::vector<Column> columns;
  while (static_cast<int>(columns.size()) < num_columns) {
    const geo::Point a{rng.Uniform(b.min_x, b.max_x),
                       rng.Uniform(b.min_y, b.max_y)};
    const double angle = rng.Uniform(0.0, 6.28318530717958648);
    const double hop = rng.Uniform(120.0, 900.0);
    const geo::Point p2{a.x + std::cos(angle) * hop,
                        a.y + std::sin(angle) * hop};
    const auto ha = index.Query(a, 500.0);
    const auto hb = index.Query(p2, 500.0);
    if (ha.size() < 8 || hb.size() < 16) continue;
    Column c;
    for (size_t i = 0; i < ha.size() && c.froms.size() < 8; ++i) {
      c.froms.push_back(ha[i].segment);
    }
    for (size_t i = 0; i < hb.size() && c.targets.size() < 45; ++i) {
      c.targets.push_back(hb[i].segment);
    }
    c.bound = std::min(12000.0, 4.0 * hop + 1500.0);
    columns.push_back(std::move(c));
  }
  struct Pair {
    network::SegmentId from = 0;
    network::SegmentId to = 0;
  };
  std::vector<Pair> expands(num_expands);
  const int n = net.num_segments();
  for (Pair& p : expands) {
    p.from = rng.UniformInt(n);
    p.to = rng.UniformInt(n);
  }

  core::Stopwatch build_watch;
  const network::CHGraph ch = network::CHGraph::Build(net);
  const double preprocess_ms = build_watch.ElapsedSeconds() * 1e3;

  // Fingerprint of the answers (count + total length), to assert both
  // backends agree before trusting the timings.
  struct Tally {
    int64_t found = 0;
    double length = 0.0;
  };
  const auto run_columns = [&columns](network::SegmentRouter& r, Tally* tally) {
    for (const Column& c : columns) {
      for (const network::SegmentId from : c.froms) {
        const auto routes = r.RouteMany(from, c.targets, c.bound);
        if (tally != nullptr) {
          for (const auto& route : routes) {
            if (route.has_value()) {
              ++tally->found;
              tally->length += route->length;
            }
          }
        }
        benchmark::DoNotOptimize(routes.size());
      }
    }
  };
  const auto run_expands = [&expands](network::SegmentRouter& r, Tally* tally) {
    for (const Pair& p : expands) {
      const auto route = r.Route1(p.from, p.to, 12000.0);
      if (tally != nullptr && route.has_value()) {
        ++tally->found;
        tally->length += route->length;
      }
      benchmark::DoNotOptimize(route.has_value());
    }
  };

  network::SegmentRouter dijkstra(&net);
  network::CHRouter ch_router(&net, &ch);
  Tally t_dij_col, t_ch_col, t_dij_exp, t_ch_exp;
  run_columns(dijkstra, &t_dij_col);
  run_columns(ch_router, &t_ch_col);
  run_expands(dijkstra, &t_dij_exp);
  run_expands(ch_router, &t_ch_exp);
  if (t_dij_col.found != t_ch_col.found || t_dij_exp.found != t_ch_exp.found ||
      t_dij_col.length != t_ch_col.length ||
      t_dij_exp.length != t_ch_exp.length) {
    std::fprintf(stderr,
                 "error: backend disagreement (dijkstra %lld/%.3f + %lld/%.3f"
                 " vs ch %lld/%.3f + %lld/%.3f) — timings are meaningless\n",
                 static_cast<long long>(t_dij_col.found), t_dij_col.length,
                 static_cast<long long>(t_dij_exp.found), t_dij_exp.length,
                 static_cast<long long>(t_ch_col.found), t_ch_col.length,
                 static_cast<long long>(t_ch_exp.found), t_ch_exp.length);
    return 3;
  }

  const auto time_best = [&](const std::function<void()>& fn) {
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      core::Stopwatch watch;
      fn();
      best = std::min(best, watch.ElapsedSeconds() * 1e6);
    }
    return best;
  };
  int64_t column_calls = 0;
  for (const Column& c : columns) {
    column_calls += static_cast<int64_t>(c.froms.size());
  }
  const double dij_col_us =
      time_best([&] { run_columns(dijkstra, nullptr); });
  const double ch_col_us =
      time_best([&] { run_columns(ch_router, nullptr); });
  const double dij_exp_us =
      time_best([&] { run_expands(dijkstra, nullptr); });
  const double ch_exp_us = time_best([&] { run_expands(ch_router, nullptr); });

  const double calib_us = CalibrateUs();
  std::vector<KV> kvs;
  kvs.push_back({"sanitized", static_cast<double>(Sanitized())});
  kvs.push_back({"calib_us", calib_us});
  kvs.push_back({"network_segments", static_cast<double>(n)});
  kvs.push_back({"ch_shortcuts", static_cast<double>(ch.num_shortcuts)});
  kvs.push_back({"ch_preprocess_ms", preprocess_ms});
  kvs.push_back({"column_dijkstra_us",
                 dij_col_us / static_cast<double>(column_calls)});
  kvs.push_back({"column_ch_us", ch_col_us / static_cast<double>(column_calls)});
  kvs.push_back({"column_speedup", dij_col_us / ch_col_us});
  kvs.push_back({"route_query_dijkstra_us",
                 dij_exp_us / static_cast<double>(num_expands)});
  kvs.push_back(
      {"route_query_ch_us", ch_exp_us / static_cast<double>(num_expands)});
  kvs.push_back({"route_query_speedup", dij_exp_us / ch_exp_us});
  kvs.push_back(
      {"overall_speedup", (dij_col_us + dij_exp_us) / (ch_col_us + ch_exp_us)});
  if (!WriteFlatJson(json_path, kvs)) return 2;
  std::printf(
      "routing suite -> %s\n  column %.1f us -> %.1f us (%.2fx), route query"
      " %.1f us -> %.1f us (%.2fx), overall %.2fx\n  CH: %lld shortcuts,"
      " %.0f ms preprocess, %d segments\n",
      json_path.c_str(), dij_col_us / column_calls, ch_col_us / column_calls,
      dij_col_us / ch_col_us, dij_exp_us / num_expands, ch_exp_us / num_expands,
      dij_exp_us / ch_exp_us, (dij_col_us + dij_exp_us) / (ch_col_us + ch_exp_us),
      static_cast<long long>(ch.num_shortcuts), preprocess_ms, n);
  return 0;
}

/// The viterbi suite: the SoA column kernel against the scalar reference on
/// an engine-shaped matrix (k = 45), and the HMM engine end to end.
int RunViterbiSuite(const std::string& json_path, bool smoke) {
  const int kernel_iters = smoke ? 2000 : 20000;
  const int reps = smoke ? 2 : 3;

  constexpr int kRows = 45, kCols = 45;
  hmm::WeightMatrix w;
  w.Reset(kRows, kCols);
  core::Rng rng(7);
  std::vector<double> f_prev(kRows);
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  for (int j = 0; j < kRows; ++j) {
    f_prev[j] = rng.Uniform() < 0.15 ? kNegInf : rng.Uniform(-8.0, 0.0);
    for (int k = 0; k < kCols; ++k) {
      w.Set(j, k, rng.Uniform(-6.0, 0.0), rng.Uniform() < 0.7);
    }
  }
  std::vector<double> f_cur(kCols);
  std::vector<int> pre(kCols);
  const auto time_kernel = [&](void (*kernel)(const hmm::WeightMatrix&,
                                              const double*, double*, int*)) {
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      core::Stopwatch watch;
      for (int i = 0; i < kernel_iters; ++i) {
        kernel(w, f_prev.data(), f_cur.data(), pre.data());
        benchmark::DoNotOptimize(f_cur.data());
      }
      best = std::min(best, watch.ElapsedSeconds() * 1e6);
    }
    return best / kernel_iters;
  };
  const double ref_us = time_kernel(&hmm::ViterbiColumnReference);
  const double soa_us = time_kernel(&hmm::ViterbiColumnSoA);

  // Engine end to end (k = 45, cold cache per rep) on the shared micro env.
  MicroEnv& env = Env();
  hmm::ClassicModelConfig models;
  hmm::EngineConfig config;
  config.k = 45;
  hmm::GaussianObservationModel obs(env.index.get(), models);
  hmm::ClassicTransitionModel trans(models, &env.ds.network);
  traj::FilterConfig filters;
  std::vector<traj::Trajectory> cleaned;
  const int num_trajs = smoke ? 4 : static_cast<int>(env.ds.test.size());
  for (int i = 0; i < num_trajs; ++i) {
    cleaned.push_back(traj::DeduplicateTowers(
        traj::PreprocessCellular(env.ds.test[i].cellular, filters)));
  }
  double best_match_ms = 1e300;
  for (int rep = 0; rep < reps; ++rep) {
    network::CachedRouter cached(&env.ds.network);  // Cold every rep.
    hmm::Engine engine(&env.ds.network, &cached, &obs, &trans, config);
    core::Stopwatch watch;
    for (const traj::Trajectory& t : cleaned) {
      benchmark::DoNotOptimize(engine.Match(t));
    }
    best_match_ms =
        std::min(best_match_ms, watch.ElapsedSeconds() * 1e3 / cleaned.size());
  }

  const double calib_us = CalibrateUs();
  std::vector<KV> kvs;
  kvs.push_back({"sanitized", static_cast<double>(Sanitized())});
  kvs.push_back({"calib_us", calib_us});
  kvs.push_back({"column_ref_us", ref_us});
  kvs.push_back({"column_soa_us", soa_us});
  kvs.push_back({"column_speedup", ref_us / soa_us});
  kvs.push_back({"engine_match_ms", best_match_ms});
  if (!WriteFlatJson(json_path, kvs)) return 2;
  std::printf(
      "viterbi suite -> %s\n  column ref %.3f us, soa %.3f us (%.2fx);"
      " engine match %.2f ms/traj\n",
      json_path.c_str(), ref_us, soa_us, ref_us / soa_us, best_match_ms);
  return 0;
}

/// The store suite: the versioned mmap data plane's three costs on a
/// Hangzhou-S-scale network —
///
///  - "build": encoding every section and atomically writing the store
///    (what `lhmm_store build` pays once per rollout);
///  - "open+validate": mmap plus the full header/TOC/per-section CRC sweep
///    (what every worker pays per open, and every swap candidate per swap);
///  - "materialize": road network, grid index, and CH from the mapping,
///    against rebuilding the same assets from scratch the way an owned-mode
///    worker must on every start.
///
/// The build/rebuild costs are one-shot (same network in smoke and full
/// mode), so smoke only trims timing reps, never the workload shape.
int RunStoreSuite(const std::string& json_path, bool smoke) {
  const int reps = smoke ? 2 : 5;
  sim::DatasetConfig cfg = sim::HangzhouSPreset();
  network::RoadNetwork net = network::GenerateCityNetwork(cfg.net);

  // The owned-mode baseline: what every worker rebuilds without a store.
  core::Stopwatch index_watch;
  network::GridIndex index(&net, 300.0);
  const double owned_index_ms = index_watch.ElapsedSeconds() * 1e3;
  core::Stopwatch ch_watch;
  const network::CHGraph ch = network::CHGraph::Build(net);
  const double owned_ch_ms = ch_watch.ElapsedSeconds() * 1e3;
  const uint64_t fp = network::CHGraph::NetworkFingerprint(net);

  char tmpl[] = "/tmp/lhmm-bench-store-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fprintf(stderr, "error: mkdtemp failed\n");
    return 2;
  }
  const std::string path = std::string(dir) + "/store-1.lds";

  // Sub-millisecond operations (open, loads) are timed over a batch of
  // iterations per rep so the committed baseline is not noise-dominated;
  // the build (which fsyncs) runs once per rep.
  const auto time_best = [&](int iters, const std::function<void()>& fn) {
    double best = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      core::Stopwatch watch;
      for (int i = 0; i < iters; ++i) fn();
      best = std::min(best, watch.ElapsedSeconds() * 1e3 / iters);
    }
    return best;
  };
  const int load_iters = smoke ? 8 : 16;

  // Build: encode all four sections + the atomic temp/rename/fsync write.
  bool build_failed = false;
  const double build_ms = time_best(1, [&] {
    store::StoreWriter w;
    w.AddSection(store::kSectionNetwork, store::EncodeNetwork(net));
    w.AddSection(store::kSectionGrid, store::EncodeGridIndex(index));
    w.AddSection(store::kSectionCH, store::EncodeCHGraph(ch));
    w.AddSection(store::kSectionMeta,
                 store::EncodeMeta({{"source", "bench"}}));
    if (!w.Write(path, fp, 1).ok()) build_failed = true;
  });
  if (build_failed) {
    std::fprintf(stderr, "error: store build failed\n");
    return 2;
  }

  // Open + validate: the full CRC sweep, per open.
  bool open_failed = false;
  const double open_validate_ms = time_best(load_iters, [&] {
    auto store = store::MappedStore::Open(path, fp);
    if (!store.ok()) open_failed = true;
    benchmark::DoNotOptimize(store.ok());
  });
  if (open_failed) {
    std::fprintf(stderr, "error: store open failed\n");
    return 2;
  }

  // Materialize from one long-lived mapping (the serving pattern).
  auto store = store::MappedStore::Open(path, fp);
  const int64_t store_bytes = (*store)->bytes();
  network::RoadNetwork loaded_net;
  const double load_network_ms = time_best(load_iters, [&] {
    auto loaded = (*store)->LoadNetwork();
    if (loaded.ok()) loaded_net = std::move(*loaded);
    benchmark::DoNotOptimize(loaded_net.num_segments());
  });
  const double load_grid_ms = time_best(load_iters, [&] {
    auto loaded = (*store)->LoadGridIndex(&loaded_net);
    benchmark::DoNotOptimize(loaded.ok());
  });
  const double load_ch_ms = time_best(load_iters, [&] {
    auto loaded = (*store)->LoadCHGraph();
    benchmark::DoNotOptimize(loaded.ok());
  });
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  const double mapped_total_ms =
      open_validate_ms + load_network_ms + load_grid_ms + load_ch_ms;
  const double owned_total_ms = owned_index_ms + owned_ch_ms;

  const double calib_us = CalibrateUs();
  std::vector<KV> kvs;
  kvs.push_back({"sanitized", static_cast<double>(Sanitized())});
  kvs.push_back({"calib_us", calib_us});
  kvs.push_back({"network_segments",
                 static_cast<double>(net.num_segments())});
  kvs.push_back({"store_bytes", static_cast<double>(store_bytes)});
  kvs.push_back({"store_build_ms", build_ms});
  kvs.push_back({"open_validate_ms", open_validate_ms});
  kvs.push_back({"load_network_ms", load_network_ms});
  kvs.push_back({"load_grid_ms", load_grid_ms});
  kvs.push_back({"load_ch_ms", load_ch_ms});
  kvs.push_back({"mapped_startup_ms", mapped_total_ms});
  kvs.push_back({"owned_startup_ms", owned_total_ms});
  kvs.push_back({"startup_speedup", owned_total_ms / mapped_total_ms});
  if (!WriteFlatJson(json_path, kvs)) return 2;
  std::printf(
      "store suite -> %s\n  build %.1f ms, open+validate %.2f ms, materialize"
      " net %.1f + grid %.1f + ch %.1f ms\n  startup %.1f ms mapped vs %.1f ms"
      " owned rebuild (%.1fx), %lld bytes, %d segments\n",
      json_path.c_str(), build_ms, open_validate_ms, load_network_ms,
      load_grid_ms, load_ch_ms, mapped_total_ms, owned_total_ms,
      owned_total_ms / mapped_total_ms, static_cast<long long>(store_bytes),
      net.num_segments());
  return 0;
}

}  // namespace

/// Named entry point for the suite mode (the suite functions live in the
/// anonymous namespace above; this is the one symbol main can reach).
int RunSuiteMain(const std::string& suite, const std::string& json_path,
                 bool smoke) {
  if (suite == "routing") return RunRoutingSuite(json_path, smoke);
  if (suite == "viterbi") return RunViterbiSuite(json_path, smoke);
  if (suite == "store") return RunStoreSuite(json_path, smoke);
  std::fprintf(stderr, "error: --json needs --suite routing|viterbi|store\n");
  return 2;
}

}  // namespace lhmm

int main(int argc, char** argv) {
  std::string json_path, suite;
  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--suite") == 0 && i + 1 < argc) {
      suite = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) {
    return lhmm::RunSuiteMain(suite, json_path, smoke);
  }
  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
