// Micro-benchmarks (google-benchmark) for the hot kernels under the
// map-matching pipeline: spatial index queries, bounded Dijkstra, the HMM
// engine end to end, attention/MLP inference, and Het-Graph encoder forward.

#include <benchmark/benchmark.h>

#include "core/strings.h"

#include <memory>

#include "hmm/classic_models.h"
#include "hmm/engine.h"
#include "lhmm/het_encoder.h"
#include "lhmm/mr_graph.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "network/path_cache.h"
#include "network/shortest_path.h"
#include "nn/modules.h"
#include "sim/dataset.h"
#include "traj/filters.h"

namespace lhmm {
namespace {

/// Shared fixture state, built once.
struct MicroEnv {
  sim::Dataset ds;
  std::unique_ptr<network::GridIndex> index;

  MicroEnv() {
    sim::DatasetConfig cfg = sim::XiamenSPreset();
    cfg.num_train = 30;
    cfg.num_val = 5;
    cfg.num_test = 30;
    ds = sim::BuildDataset(cfg);
    index = std::make_unique<network::GridIndex>(&ds.network, 300.0);
  }
};

MicroEnv& Env() {
  static MicroEnv* env = new MicroEnv();
  return *env;
}

void BM_GridIndexQuery(benchmark::State& state) {
  MicroEnv& env = Env();
  core::Rng rng(1);
  const geo::BBox& b = env.ds.network.Bounds();
  for (auto _ : state) {
    const geo::Point p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    benchmark::DoNotOptimize(env.index->Query(p, state.range(0)));
  }
}
BENCHMARK(BM_GridIndexQuery)->Arg(500)->Arg(1500)->Arg(2500);

void BM_GridIndexNearest(benchmark::State& state) {
  MicroEnv& env = Env();
  core::Rng rng(2);
  const geo::BBox& b = env.ds.network.Bounds();
  for (auto _ : state) {
    const geo::Point p{rng.Uniform(b.min_x, b.max_x), rng.Uniform(b.min_y, b.max_y)};
    benchmark::DoNotOptimize(env.index->Nearest(p, state.range(0)));
  }
}
BENCHMARK(BM_GridIndexNearest)->Arg(30)->Arg(100);

void BM_BoundedDijkstra(benchmark::State& state) {
  MicroEnv& env = Env();
  network::SegmentRouter router(&env.ds.network);
  core::Rng rng(3);
  const int n = env.ds.network.num_segments();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        router.Route1(rng.UniformInt(n), rng.UniformInt(n), state.range(0)));
  }
}
BENCHMARK(BM_BoundedDijkstra)->Arg(2000)->Arg(6000);

void BM_RouteMany45(benchmark::State& state) {
  MicroEnv& env = Env();
  network::SegmentRouter router(&env.ds.network);
  core::Rng rng(4);
  const int n = env.ds.network.num_segments();
  std::vector<network::SegmentId> targets(45);
  for (auto& t : targets) t = rng.UniformInt(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.RouteMany(rng.UniformInt(n), targets, 4000.0));
  }
}
BENCHMARK(BM_RouteMany45);

void BM_HmmEngineMatch(benchmark::State& state) {
  MicroEnv& env = Env();
  hmm::ClassicModelConfig models;
  hmm::EngineConfig config;
  config.k = static_cast<int>(state.range(0));
  hmm::GaussianObservationModel obs(env.index.get(), models);
  hmm::ClassicTransitionModel trans(models, &env.ds.network);
  network::SegmentRouter router(&env.ds.network);
  network::CachedRouter cached(&router);
  hmm::Engine engine(&env.ds.network, &cached, &obs, &trans, config);
  traj::FilterConfig filters;
  std::vector<traj::Trajectory> cleaned;
  for (const auto& mt : env.ds.test) {
    cleaned.push_back(
        traj::DeduplicateTowers(traj::PreprocessCellular(mt.cellular, filters)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Match(cleaned[i]));
    i = (i + 1) % cleaned.size();
  }
}
BENCHMARK(BM_HmmEngineMatch)->Arg(15)->Arg(30)->Arg(45)->Unit(benchmark::kMillisecond);

void BM_AttentionForward(benchmark::State& state) {
  core::Rng rng(5);
  nn::AdditiveAttention attn(48, 48, 48, &rng);
  const nn::Matrix keys = nn::Matrix::Gaussian(static_cast<int>(state.range(0)),
                                               48, 1.0f, &rng);
  const nn::Matrix query = nn::Matrix::Gaussian(1, 48, 1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(query, keys, keys));
  }
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(32)->Arg(64);

void BM_MlpBatchForward(benchmark::State& state) {
  core::Rng rng(6);
  nn::Mlp mlp({96, 48, 2}, &rng);
  const nn::Matrix x = nn::Matrix::Gaussian(static_cast<int>(state.range(0)), 96,
                                            1.0f, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mlp.Forward(x));
  }
}
BENCHMARK(BM_MlpBatchForward)->Arg(32)->Arg(128)->Arg(256);

void BM_HetEncoderForward(benchmark::State& state) {
  MicroEnv& env = Env();
  traj::FilterConfig filters;
  std::vector<traj::Trajectory> cleaned;
  for (const auto& mt : env.ds.train) {
    cleaned.push_back(
        traj::DeduplicateTowers(traj::PreprocessCellular(mt.cellular, filters)));
  }
  lhmm::MultiRelationalGraph graph = lhmm::BuildGraph(
      env.ds.network, static_cast<int>(env.ds.towers.size()), env.ds.train, cleaned);
  core::Rng rng(7);
  lhmm::EncoderConfig cfg;
  cfg.dim = static_cast<int>(state.range(0));
  lhmm::HetGraphEncoder encoder(&graph, cfg, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.ForwardNoGrad());
  }
  state.SetLabel(core::StrFormat("|V|=%d", graph.num_nodes()));
}
BENCHMARK(BM_HetEncoderForward)->Arg(32)->Arg(48)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lhmm

BENCHMARK_MAIN();
