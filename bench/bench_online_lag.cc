// Online latency/accuracy trade-off: sweeps the fixed lag of the streaming
// session engine and reports, per matcher family (STM / IVMM / LHMM), the
// accuracy of the committed online path against ground truth, its agreement
// with the offline Viterbi reference (prefix match), and the mean commit
// latency in points. The lag = -1 row is the offline reference itself: full
// accuracy, but every point waits for the end of the trajectory.
//
// Flags: --threads=N (default: all cores), --smoke (tiny self-contained
// dataset + micro LHMM, small lag set; used from ctest).

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/csv.h"
#include "core/stopwatch.h"
#include "core/strings.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "matchers/stream_engine.h"
#include "matchers/streaming.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

namespace {

struct Family {
  std::string name;
  matchers::MatcherFactory factory;
};

struct Row {
  std::string family;
  int lag = 0;  // -1 = offline reference.
  eval::OnlineEvalSummary summary;
  double wall_s = 0.0;
};

/// Offline Viterbi references (the paths a session converges to as lag grows)
/// for the whole split, computed serially through one session's engine.
std::vector<std::vector<network::SegmentId>> OfflinePaths(
    const matchers::MatcherFactory& factory,
    const std::vector<traj::Trajectory>& cleaned) {
  const std::unique_ptr<matchers::MapMatcher> matcher = factory();
  matchers::StreamConfig sc;
  const std::unique_ptr<matchers::StreamingSession> session =
      matcher->OpenSession(sc);
  auto* online = dynamic_cast<matchers::OnlineSession*>(session.get());
  std::vector<std::vector<network::SegmentId>> out;
  out.reserve(cleaned.size());
  for (const traj::Trajectory& t : cleaned) {
    out.push_back(online != nullptr ? online->MatchOffline(t).path
                                    : std::vector<network::SegmentId>{});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const int threads = bench::ThreadsFromArgs(argc, argv);
  std::filesystem::create_directories("bench_out");

  // Dataset + trained LHMM. Smoke mode is fully self-contained (no model
  // cache): a shrunken Xiamen-S and a micro LHMM, like tests/batch_test.cc.
  sim::Dataset ds;
  network::RoadNetwork* net = nullptr;
  std::unique_ptr<network::GridIndex> index;
  std::shared_ptr<L::LhmmModel> model;
  std::vector<int> lags;
  int classic_k = 45;
  if (smoke) {
    sim::DatasetConfig cfg = sim::XiamenSPreset();
    cfg.num_train = 25;
    cfg.num_val = 3;
    cfg.num_test = 10;
    ds = sim::BuildDataset(cfg);
    net = &ds.network;
    index = std::make_unique<network::GridIndex>(net, 300.0);
    L::LhmmConfig lhmm_cfg;
    lhmm_cfg.obs_steps = 2;
    lhmm_cfg.trans_steps = 2;
    lhmm_cfg.fusion_steps = 5;
    lhmm_cfg.encoder.dim = 24;
    L::TrainInputs inputs;
    inputs.net = net;
    inputs.index = index.get();
    inputs.num_towers = static_cast<int>(ds.towers.size());
    inputs.train = &ds.train;
    model = TrainLhmm(inputs, lhmm_cfg);
    lags = {0, 2, 8};
    classic_k = 12;
  } else {
    bench::Env env = bench::MakeEnv("Xiamen-S");
    model = bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm");
    ds = std::move(env.ds);
    net = &ds.network;
    index = std::move(env.index);
    lags = {0, 1, 2, 4, 8, 16, 32};
  }

  const hmm::ClassicModelConfig classic_models = bench::CtmmModelConfig();
  hmm::EngineConfig classic_engine = bench::BaselineEngineConfig();
  classic_engine.k = classic_k;
  const network::RoadNetwork* cnet = net;
  const network::GridIndex* cindex = index.get();
  std::vector<Family> families;
  families.push_back({"STM", [=] {
                        return std::make_unique<matchers::StmMatcher>(
                            cnet, cindex, classic_models, classic_engine);
                      }});
  families.push_back({"IVMM", [=] {
                        return std::make_unique<matchers::IvmmMatcher>(
                            cnet, cindex, classic_models, classic_k);
                      }});
  families.push_back({"LHMM", [=] {
                        return std::make_unique<L::LhmmMatcher>(cnet, cindex,
                                                                model);
                      }});

  traj::FilterConfig filters;
  std::vector<traj::Trajectory> cleaned;
  cleaned.reserve(ds.test.size());
  for (const traj::MatchedTrajectory& mt : ds.test) {
    cleaned.push_back(eval::Preprocess(mt.cellular, filters));
  }

  printf("\n=== Online fixed-lag sweep: %s, %zu trajectories, %d threads ===\n",
         ds.name.c_str(), ds.test.size(), threads);
  eval::TextTable table({"family", "lag", "cmf50", "rmf", "prefix_match",
                         "commit_latency", "wall_s"});
  core::CsvWriter csv("bench_out/online_lag.csv");
  csv.AddRow({"family", "lag", "precision", "recall", "rmf", "cmf50",
              "prefix_match", "commit_latency_pts", "wall_s"});
  std::vector<Row> rows;

  for (const Family& family : families) {
    const std::vector<std::vector<network::SegmentId>> offline =
        OfflinePaths(family.factory, cleaned);

    // The offline reference row: exact hindsight, whole-trajectory latency.
    {
      Row row;
      row.family = family.name;
      row.lag = -1;
      std::vector<eval::OnlineTrajectoryEval> records(offline.size());
      for (size_t i = 0; i < offline.size(); ++i) {
        records[i].index = static_cast<int>(i);
        records[i].metrics =
            eval::ComputePathMetrics(*net, offline[i], ds.test[i].truth_path);
        records[i].prefix_match = 1.0;
        // Offline, every point waits for the last arrival: mean (n-1)/2.
        records[i].commit_latency =
            cleaned[i].size() > 0 ? (cleaned[i].size() - 1) / 2.0 : 0.0;
      }
      row.summary = eval::SummarizeOnline(records, family.name, -1);
      rows.push_back(row);
    }

    for (int lag : lags) {
      network::CachedRouter shared_cache(net);
      matchers::StreamEngineConfig engine_config;
      engine_config.num_threads = threads;
      engine_config.lag = lag;
      engine_config.shared_router = &shared_cache;
      core::Stopwatch watch;
      const std::vector<eval::OnlineTrajectoryEval> records =
          eval::EvaluateOnlineParallel(family.factory, *net, ds.test, filters,
                                       engine_config, &offline);
      Row row;
      row.family = family.name;
      row.lag = lag;
      row.wall_s = watch.ElapsedSeconds();
      row.summary = eval::SummarizeOnline(records, family.name, lag);
      rows.push_back(row);
      fprintf(stderr, "[bench] %s lag=%d done (%.2fs)\n", family.name.c_str(),
              lag, row.wall_s);
    }
  }

  FILE* json = fopen("bench_out/online_lag.json", "w");
  if (json != nullptr) {
    fprintf(json, "{\n  \"dataset\": \"%s\",\n  \"threads\": %d,\n  \"rows\": [\n",
            ds.name.c_str(), threads);
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const eval::OnlineEvalSummary& s = row.summary;
    table.AddRow({row.family, core::StrFormat("%d", row.lag), eval::Fmt(s.cmf50),
                  eval::Fmt(s.rmf), eval::Fmt(s.prefix_match),
                  eval::Fmt(s.commit_latency, 2), eval::Fmt(row.wall_s, 3)});
    csv.AddRow({row.family, core::StrFormat("%d", row.lag), eval::Fmt(s.precision),
                eval::Fmt(s.recall), eval::Fmt(s.rmf), eval::Fmt(s.cmf50),
                eval::Fmt(s.prefix_match), eval::Fmt(s.commit_latency, 2),
                eval::Fmt(row.wall_s, 4)});
    if (json != nullptr) {
      fprintf(json,
              "    {\"family\": \"%s\", \"lag\": %d, \"precision\": %.6f, "
              "\"recall\": %.6f, \"rmf\": %.6f, \"cmf50\": %.6f, "
              "\"prefix_match\": %.6f, \"commit_latency_pts\": %.3f, "
              "\"wall_s\": %.4f}%s\n",
              row.family.c_str(), row.lag, s.precision, s.recall, s.rmf, s.cmf50,
              s.prefix_match, s.commit_latency, row.wall_s,
              i + 1 < rows.size() ? "," : "");
    }
  }
  if (json != nullptr) {
    fprintf(json, "  ]\n}\n");
    fclose(json);
  }
  table.Print();
  (void)csv.Flush();
  printf(
      "\nShape to expect: prefix_match and CMF50 rise with lag toward the\n"
      "offline row (lag = -1) while commit latency grows linearly; small\n"
      "lags already recover most of the offline accuracy.\n");
  return 0;
}
