// Reproduces Figure 9 (impact of the shortcut number K): CMF50 and hitting
// ratio of LHMM with K = 0 (no shortcuts), 1, 2, 3 one-hop shortcuts per
// candidate, on Xiamen-S. Also runs STM / STM+S as the "general component"
// check from Section V-C.

#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "core/csv.h"
#include "core/strings.h"
#include "eval/evaluator.h"
#include "eval/report.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

int main() {
  std::filesystem::create_directories("bench_out");
  bench::Env env = bench::MakeEnv("Xiamen-S");
  traj::FilterConfig filters;

  printf("\n=== Fig. 9: impact of shortcut count K ===\n");
  eval::TextTable table({"K", "LHMM CMF50", "LHMM HR", "avg time (s)"});
  core::CsvWriter csv("bench_out/fig9_shortcuts.csv");
  csv.AddRow({"K", "cmf50", "hr", "avg_time_s"});
  for (int K : {0, 1, 2, 3}) {
    auto model = std::make_shared<L::LhmmModel>(std::move(
        *bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm")));
    model->config.use_shortcuts = K > 0;
    model->config.num_shortcuts = std::max(1, K);
    L::LhmmMatcher matcher(env.net(), env.index.get(), model,
                           core::StrFormat("LHMM(K=%d)", K));
    const eval::EvalSummary s =
        eval::EvaluateMatcher(&matcher, env.ds.network, env.ds.test, filters);
    table.AddRow({core::StrFormat("%d", K), eval::Fmt(s.cmf50),
                  eval::Fmt(s.hitting_ratio), eval::Fmt(s.avg_time_s, 4)});
    csv.AddRow({core::StrFormat("%d", K), eval::Fmt(s.cmf50),
                eval::Fmt(s.hitting_ratio), eval::Fmt(s.avg_time_s, 4)});
    fprintf(stderr, "[bench] K=%d done\n", K);
  }
  table.Print();
  (void)csv.Flush();
  printf(
      "\nPaper shape: K=0 -> K=1 brings the significant jump (skipping\n"
      "unqualified candidate sets); K>1 adds cost without steady gains.\n");
  return 0;
}
