// Reproduces Figure 11 (case study): finds a challenging test trajectory
// where DMM degrades sharply while LHMM stays accurate, reports both CMFs,
// and dumps the scene (towers, truth path, both matched paths) as GeoJSON
// for visual inspection (bench_out/fig11_case.geojson).

#include <algorithm>
#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "core/strings.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "geo/latlon.h"
#include "viz/svg.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

namespace {

/// Writes a LineString feature for a segment path.
std::string PathFeature(const network::RoadNetwork& net,
                        const std::vector<network::SegmentId>& path,
                        const std::string& name, const std::string& color,
                        const geo::LocalProjection& proj) {
  std::string coords;
  for (network::SegmentId sid : path) {
    const geo::Polyline& geom = net.segment(sid).geometry;
    for (int i = 0; i < geom.size(); ++i) {
      const geo::LatLon ll = proj.Backward(geom[i]);
      if (!coords.empty()) coords += ",";
      coords += core::StrFormat("[%.6f,%.6f]", ll.lon, ll.lat);
    }
  }
  return core::StrFormat(
      "{\"type\":\"Feature\",\"properties\":{\"name\":\"%s\",\"stroke\":\"%s\"},"
      "\"geometry\":{\"type\":\"LineString\",\"coordinates\":[%s]}}",
      name.c_str(), color.c_str(), coords.c_str());
}

std::string PointsFeature(const traj::Trajectory& t, const std::string& name,
                          const geo::LocalProjection& proj) {
  std::string coords;
  for (const auto& p : t.points) {
    const geo::LatLon ll = proj.Backward(p.pos);
    if (!coords.empty()) coords += ",";
    coords += core::StrFormat("[%.6f,%.6f]", ll.lon, ll.lat);
  }
  return core::StrFormat(
      "{\"type\":\"Feature\",\"properties\":{\"name\":\"%s\"},"
      "\"geometry\":{\"type\":\"MultiPoint\",\"coordinates\":[%s]}}",
      name.c_str(), coords.c_str());
}

}  // namespace

int main() {
  std::filesystem::create_directories("bench_out");
  bench::Env env = bench::MakeEnv("Hangzhou-S");
  traj::FilterConfig filters;

  std::shared_ptr<L::LhmmModel> model =
      bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm");
  L::LhmmMatcher lhmm_matcher(env.net(), env.index.get(), model);
  std::unique_ptr<matchers::Seq2SeqMatcher> dmm =
      bench::GetSeq2Seq(env, &matchers::MakeDmm, "dmm");

  // Find the case with the largest DMM-vs-LHMM CMF gap.
  const std::vector<eval::TrajectoryEval> lhmm_evals = eval::EvaluatePerTrajectory(
      &lhmm_matcher, env.ds.network, env.ds.test, filters);
  const std::vector<eval::TrajectoryEval> dmm_evals = eval::EvaluatePerTrajectory(
      dmm.get(), env.ds.network, env.ds.test, filters);
  int best_case = 0;
  double best_gap = -1e9;
  for (size_t i = 0; i < lhmm_evals.size(); ++i) {
    const double gap = dmm_evals[i].metrics.cmf - lhmm_evals[i].metrics.cmf;
    if (gap > best_gap) {
      best_gap = gap;
      best_case = static_cast<int>(i);
    }
  }

  const traj::MatchedTrajectory& mt = env.ds.test[best_case];
  const traj::Trajectory cleaned = eval::Preprocess(mt.cellular, filters);
  const matchers::MatchResult lhmm_result = lhmm_matcher.Match(cleaned);
  const matchers::MatchResult dmm_result = dmm->Match(cleaned);

  printf("\n=== Fig. 11: challenging case (test trajectory #%d) ===\n", best_case);
  eval::TextTable table({"matcher", "CMF50", "precision", "recall"});
  table.AddRow({"LHMM", eval::Fmt(lhmm_evals[best_case].metrics.cmf),
                eval::Fmt(lhmm_evals[best_case].metrics.precision),
                eval::Fmt(lhmm_evals[best_case].metrics.recall)});
  table.AddRow({"DMM", eval::Fmt(dmm_evals[best_case].metrics.cmf),
                eval::Fmt(dmm_evals[best_case].metrics.precision),
                eval::Fmt(dmm_evals[best_case].metrics.recall)});
  table.Print();

  // GeoJSON dump anchored at a Hangzhou-ish origin.
  const geo::LocalProjection proj(geo::LatLon{30.27, 120.16});
  std::string features = PathFeature(env.ds.network, mt.truth_path, "ground truth",
                                     "#2b6cb0", proj);
  features += "," + PathFeature(env.ds.network, lhmm_result.path, "LHMM",
                                "#2f855a", proj);
  features +=
      "," + PathFeature(env.ds.network, dmm_result.path, "DMM", "#c53030", proj);
  features += "," + PointsFeature(cleaned, "cellular points", proj);
  const std::string geojson =
      "{\"type\":\"FeatureCollection\",\"features\":[" + features + "]}";
  FILE* f = fopen("bench_out/fig11_case.geojson", "w");
  if (f != nullptr) {
    fputs(geojson.c_str(), f);
    fclose(f);
    printf("\nScene written to bench_out/fig11_case.geojson\n");
  }

  // SVG rendering of the same scene (the paper's Fig. 11 visual).
  {
    geo::BBox focus;
    for (network::SegmentId sid : mt.truth_path) {
      focus.Extend(env.ds.network.segment(sid).geometry.front());
      focus.Extend(env.ds.network.segment(sid).geometry.back());
    }
    for (const auto& p : cleaned.points) focus.Extend(p.pos);
    focus.Inflate(400.0);
    viz::SvgScene scene(focus, 1200.0);
    scene.DrawNetwork(env.ds.network, {.color = "#dddddd", .width = 0.8});
    scene.DrawPath(env.ds.network, mt.truth_path,
                   {.color = "#2b6cb0", .width = 5.0, .opacity = 0.65});
    scene.DrawPath(env.ds.network, dmm_result.path,
                   {.color = "#c53030", .width = 3.0, .opacity = 0.9});
    scene.DrawPath(env.ds.network, lhmm_result.path,
                   {.color = "#2f855a", .width = 2.2, .opacity = 0.95});
    scene.DrawTrajectory(cleaned, {.color = "#805ad5", .width = 1.6});
    scene.AddLegend("ground truth", {.color = "#2b6cb0"});
    scene.AddLegend("LHMM", {.color = "#2f855a"});
    scene.AddLegend("DMM", {.color = "#c53030"});
    scene.AddLegend("cellular points", {.color = "#805ad5"});
    if (scene.Write("bench_out/fig11_case.svg").ok()) {
      printf("Scene rendered to bench_out/fig11_case.svg\n");
    }
  }
  printf(
      "\nPaper shape: on sparse/noisy sections DMM's errors propagate along\n"
      "the decode, while LHMM's HMM backbone corrects itself within a few\n"
      "points (CMF gap above).\n");
  return 0;
}
