// Reproduces Table I (dataset characteristics) for the two synthetic
// datasets, side by side with the paper's reported values for the real
// Hangzhou/Xiamen data. Our datasets are ~1/3 spatial scale with a
// correspondingly compressed time axis; the error-to-sampling-distance
// ratios — what actually sets CTMM difficulty — are preserved.

#include "bench/bench_common.h"
#include "eval/report.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.

int main() {
  eval::TextTable table({"category", "Hangzhou-S (ours)", "Hangzhou (paper)",
                         "Xiamen-S (ours)", "Xiamen (paper)"});

  bench::Env hz = bench::MakeEnv("Hangzhou-S");
  bench::Env xm = bench::MakeEnv("Xiamen-S");
  const sim::DatasetStats h = hz.ds.ComputeStats();
  const sim::DatasetStats x = xm.ds.ComputeStats();

  auto num = [](double v, int digits = 0) { return eval::Fmt(v, digits); };
  table.AddRow({"road segments", num(h.road_segments), "92,913",
                num(x.road_segments), "64,828"});
  table.AddRow({"intersections", num(h.intersections), "67,330",
                num(x.intersections), "37,591"});
  table.AddRow({"cell towers", num(h.num_towers), "n/a", num(x.num_towers),
                "n/a"});
  table.AddRow({"cellular trajectory points",
                num(static_cast<double>(h.cellular_points)), "3.61 million",
                num(static_cast<double>(x.cellular_points)), "1.18 million"});
  table.AddRow({"GPS trajectory points",
                num(static_cast<double>(h.gps_points)), "9.73 million",
                num(static_cast<double>(x.gps_points)), "4.98 million"});
  table.AddRow({"cellular points per trajectory", num(h.cellular_points_per_traj, 1),
                "34", num(x.cellular_points_per_traj, 1), "40"});
  table.AddRow({"GPS points per trajectory", num(h.gps_points_per_traj, 1), "81",
                num(x.gps_points_per_traj, 1), "88"});
  table.AddRow({"avg cellular sampling interval (s)", num(h.avg_cell_interval_s, 1),
                "67", num(x.avg_cell_interval_s, 1), "42"});
  table.AddRow({"max cellular sampling interval (s)", num(h.max_cell_interval_s, 1),
                "247", num(x.max_cell_interval_s, 1), "185"});
  table.AddRow({"avg cellular sampling distance (m)",
                num(h.avg_cell_sampling_dist_m, 1), "730",
                num(x.avg_cell_sampling_dist_m, 1), "650"});
  table.AddRow({"median cellular sampling distance (m)",
                num(h.median_cell_sampling_dist_m, 1), "493",
                num(x.median_cell_sampling_dist_m, 1), "455"});
  table.AddRow({"mean positioning error (m)", num(h.mean_positioning_error_m, 1),
                "0.1-3 km range", num(x.mean_positioning_error_m, 1),
                "0.1-3 km range"});
  table.AddRow({"p90 positioning error (m)", num(h.p90_positioning_error_m, 1), "-",
                num(x.p90_positioning_error_m, 1), "-"});

  printf("\n=== Table I (dataset characteristics) ===\n");
  table.Print();
  printf(
      "\nKey preserved ratios: positioning error / sampling distance ~ 2-3x\n"
      "(paper: 730 m hops vs 0.1-3 km errors), urban core denser than\n"
      "suburbs, cellular ~4-8x sparser than GPS.\n");
  return 0;
}
