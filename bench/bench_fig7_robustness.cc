// Reproduces Figure 7 (robustness): (a) accuracy by distance from the city
// center (5 levels, urban -> rural) and (b) accuracy by cellular sampling
// rate (0.2 - 1.4 samples/minute), for LHMM, DMM, and STM on Hangzhou-S.
//
// Flags: --smoke runs a tiny self-contained fault-injection pass instead
// (corrupted points -> traj::Sanitize -> matchers over a FaultyRouter at 10%
// route-failure rate, break counts reported); registered in ctest.

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "core/csv.h"
#include "core/logging.h"
#include "core/strings.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "network/faulty_router.h"
#include "sim/corrupt.h"
#include "traj/filters.h"
#include "traj/sanitize.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

namespace {

/// CMF50 of one matcher over a trajectory subset.
double MeanCmf(matchers::MapMatcher* matcher, const bench::Env& env,
               const std::vector<traj::MatchedTrajectory>& subset) {
  traj::FilterConfig filters;
  const eval::EvalSummary s =
      eval::EvaluateMatcher(matcher, env.ds.network, subset, filters);
  return s.cmf50;
}

/// Smoke: end-to-end fault injection on a tiny dataset. Every family must
/// come back with a non-empty stitched path for every corrupted trajectory
/// while 10% of route pairs fail — the CHECKs make ctest fail otherwise.
int RunSmoke() {
  sim::DatasetConfig cfg = sim::XiamenSPreset();
  cfg.num_train = 25;
  cfg.num_val = 3;
  cfg.num_test = 10;
  sim::Dataset ds = sim::BuildDataset(cfg);
  network::RoadNetwork* net = &ds.network;
  network::GridIndex index(net, 300.0);

  L::LhmmConfig lhmm_cfg;
  lhmm_cfg.obs_steps = 2;
  lhmm_cfg.trans_steps = 2;
  lhmm_cfg.fusion_steps = 5;
  lhmm_cfg.encoder.dim = 24;
  L::TrainInputs inputs;
  inputs.net = net;
  inputs.index = &index;
  inputs.num_towers = static_cast<int>(ds.towers.size());
  inputs.train = &ds.train;
  std::shared_ptr<L::LhmmModel> model = TrainLhmm(inputs, lhmm_cfg);

  const hmm::ClassicModelConfig classic_models = bench::CtmmModelConfig();
  hmm::EngineConfig classic_engine = bench::BaselineEngineConfig();
  classic_engine.k = 12;
  matchers::StmMatcher stm(net, &index, classic_models, classic_engine);
  matchers::IvmmMatcher ivmm(net, &index, classic_models, classic_engine.k);
  L::LhmmMatcher lhmm_matcher(net, &index, model);
  std::vector<matchers::MapMatcher*> all = {&stm, &ivmm, &lhmm_matcher};

  // One misbehaving routing layer shared by every family.
  network::FaultConfig fault;
  fault.route_failure_rate = 0.10;
  fault.seed = 7;
  network::FaultyRouter faulty(net, fault);
  for (matchers::MapMatcher* m : all) m->UseSharedRouter(&faulty);

  // Corrupt every test feed, then sanitize it back to structural soundness.
  traj::SanitizeConfig sanitize;
  sanitize.policy = traj::SanitizePolicy::kRepair;
  sanitize.num_towers = static_cast<int>(ds.towers.size());
  traj::FilterConfig filters;
  sim::CorruptionSummary injected;
  traj::SanitizeReport repaired;
  std::vector<traj::Trajectory> cleaned;
  cleaned.reserve(ds.test.size());
  for (size_t i = 0; i < ds.test.size(); ++i) {
    const traj::Trajectory bad = sim::CorruptTrajectory(
        ds.test[i].cellular, sim::UniformCorruption(0.03, 100 + i), &injected);
    traj::SanitizeReport rep;
    core::Result<traj::Trajectory> fixed = traj::Sanitize(bad, sanitize, &rep);
    CHECK_OK(fixed);
    repaired.input_points += rep.input_points;
    repaired.output_points += rep.output_points;
    repaired.nonfinite += rep.nonfinite;
    repaired.out_of_order += rep.out_of_order;
    repaired.duplicate_time += rep.duplicate_time;
    repaired.unknown_tower += rep.unknown_tower;
    repaired.off_network += rep.off_network;
    repaired.dropped += rep.dropped;
    repaired.repaired += rep.repaired;
    cleaned.push_back(eval::Preprocess(*fixed, filters));
  }
  printf("injected defects: %s; sanitize dropped %d, repaired %d\n",
         injected.ToString().c_str(), repaired.dropped, repaired.repaired);

  eval::TextTable table(
      {"family", "cmf50", "mean_breaks", "gap_s", "gap_cover", "min_path_len"});
  std::vector<eval::EvalSummary> summaries;
  for (matchers::MapMatcher* m : all) {
    std::vector<eval::TrajectoryEval> records;
    size_t min_len = SIZE_MAX;
    for (size_t i = 0; i < cleaned.size(); ++i) {
      const matchers::MatchResult result = m->Match(cleaned[i]);
      CHECK(!result.path.empty())
          << m->name() << " returned an empty path under fault injection";
      min_len = std::min(min_len, result.path.size());
      eval::TrajectoryEval rec;
      rec.index = static_cast<int>(i);
      rec.metrics =
          eval::ComputePathMetrics(*net, result.path, ds.test[i].truth_path);
      rec.num_breaks = result.num_breaks;
      rec.gap_seconds = result.gap_seconds;
      rec.gap_coverage = result.gap_coverage;
      records.push_back(rec);
    }
    const eval::EvalSummary s =
        eval::Summarize(records, m->name(), /*has_hr=*/false);
    table.AddRow({s.matcher, eval::Fmt(s.cmf50),
                  core::StrFormat("%.1f", s.mean_breaks),
                  eval::Fmt(s.mean_gap_seconds, 1),
                  eval::Fmt(s.mean_gap_coverage),
                  core::StrFormat("%zu", min_len)});
    summaries.push_back(s);
  }
  table.Print();
  // The machine-readable artifact: per-family robustness columns (breaks,
  // gap seconds, gap coverage) plus the full sanitize report.
  std::filesystem::create_directories("bench_out");
  CHECK_OK(eval::WriteEvalJson("fig7_smoke", summaries, &repaired,
                               "bench_out/fig7_smoke.json"));
  printf("wrote bench_out/fig7_smoke.json\n");
  CHECK_GT(faulty.injected_failures(), 0)
      << "fault injection never fired; smoke is vacuous";
  printf("router queries: %lld, injected failures: %lld\n",
         static_cast<long long>(faulty.queries()),
         static_cast<long long>(faulty.injected_failures()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return RunSmoke();
  }
  std::filesystem::create_directories("bench_out");
  bench::Env env = bench::MakeEnv("Hangzhou-S");

  std::shared_ptr<L::LhmmModel> model =
      bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm");
  L::LhmmMatcher lhmm_matcher(env.net(), env.index.get(), model);
  std::unique_ptr<matchers::Seq2SeqMatcher> dmm =
      bench::GetSeq2Seq(env, &matchers::MakeDmm, "dmm");
  matchers::StmMatcher stm(env.net(), env.index.get(), bench::GpsModelConfig(),
                           bench::BaselineEngineConfig());
  std::vector<matchers::MapMatcher*> all = {&lhmm_matcher, dmm.get(), &stm};

  // ---- (a) Distance to city center, 5 levels. ----
  printf("\n=== Fig. 7(a): CMF50 by distance-to-center level ===\n");
  std::vector<double> radii;
  for (const auto& mt : env.ds.test) {
    radii.push_back(sim::CentroidRadius(env.ds.network, mt));
  }
  std::vector<double> sorted = radii;
  std::sort(sorted.begin(), sorted.end());
  eval::TextTable table_a({"level (urban->rural)", "LHMM", "DMM", "STM", "n"});
  core::CsvWriter csv_a("bench_out/fig7a_area.csv");
  csv_a.AddRow({"level", "lhmm_cmf50", "dmm_cmf50", "stm_cmf50", "n"});
  for (int level = 0; level < 5; ++level) {
    const double lo = sorted[level * (sorted.size() - 1) / 5];
    const double hi = sorted[(level + 1) * (sorted.size() - 1) / 5];
    std::vector<traj::MatchedTrajectory> subset;
    for (size_t i = 0; i < env.ds.test.size(); ++i) {
      const bool last = level == 4;
      if (radii[i] >= lo && (radii[i] < hi || (last && radii[i] <= hi))) {
        subset.push_back(env.ds.test[i]);
      }
    }
    if (subset.empty()) continue;
    std::vector<std::string> row = {core::StrFormat("L%d", level + 1)};
    std::vector<std::string> csv_row = {core::StrFormat("%d", level + 1)};
    for (matchers::MapMatcher* m : all) {
      const double cmf = MeanCmf(m, env, subset);
      row.push_back(eval::Fmt(cmf));
      csv_row.push_back(eval::Fmt(cmf));
    }
    row.push_back(core::StrFormat("%zu", subset.size()));
    csv_row.push_back(core::StrFormat("%zu", subset.size()));
    table_a.AddRow(row);
    csv_a.AddRow(csv_row);
    fprintf(stderr, "[bench] area level %d done\n", level + 1);
  }
  table_a.Print();
  (void)csv_a.Flush();

  // ---- (b) Sampling rate sweep. ----
  printf("\n=== Fig. 7(b): CMF50 by sampling rate ===\n");
  // Our time axis is compressed ~4x relative to the paper's datasets
  // (16 s vs 67 s mean interval), so the paper's 0.2-1.4 samples/minute
  // sweep maps to 4x those rates here; rows are labeled with the
  // paper-equivalent rate.
  constexpr double kTimeCompression = 4.0;
  eval::TextTable table_b({"paper-equiv rate", "LHMM", "DMM", "STM"});
  core::CsvWriter csv_b("bench_out/fig7b_rate.csv");
  csv_b.AddRow({"paper_equiv_rate_per_min", "lhmm_cmf50", "dmm_cmf50",
                "stm_cmf50"});
  for (double paper_rate : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4}) {
    const double rate = kTimeCompression * paper_rate;
    std::vector<traj::MatchedTrajectory> resampled = env.ds.test;
    for (auto& mt : resampled) {
      mt.cellular = traj::Resample(mt.cellular, rate);
    }
    std::vector<std::string> row = {eval::Fmt(paper_rate, 1)};
    std::vector<std::string> csv_row = {eval::Fmt(paper_rate, 1)};
    for (matchers::MapMatcher* m : all) {
      const double cmf = MeanCmf(m, env, resampled);
      row.push_back(eval::Fmt(cmf));
      csv_row.push_back(eval::Fmt(cmf));
    }
    table_b.AddRow(row);
    csv_b.AddRow(csv_row);
    fprintf(stderr, "[bench] rate %.1f done\n", paper_rate);
  }
  table_b.Print();
  (void)csv_b.Flush();

  printf(
      "\nPaper shapes: LHMM stays flattest across both sweeps; DMM degrades\n"
      "sharply in rural areas (sparse history) and at low sampling rates;\n"
      "STM degrades steadily as sampling thins.\n");
  return 0;
}
