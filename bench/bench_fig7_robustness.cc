// Reproduces Figure 7 (robustness): (a) accuracy by distance from the city
// center (5 levels, urban -> rural) and (b) accuracy by cellular sampling
// rate (0.2 - 1.4 samples/minute), for LHMM, DMM, and STM on Hangzhou-S.

#include <algorithm>
#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "core/csv.h"
#include "core/strings.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "traj/filters.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

namespace {

/// CMF50 of one matcher over a trajectory subset.
double MeanCmf(matchers::MapMatcher* matcher, const bench::Env& env,
               const std::vector<traj::MatchedTrajectory>& subset) {
  traj::FilterConfig filters;
  const eval::EvalSummary s =
      eval::EvaluateMatcher(matcher, env.ds.network, subset, filters);
  return s.cmf50;
}

}  // namespace

int main() {
  std::filesystem::create_directories("bench_out");
  bench::Env env = bench::MakeEnv("Hangzhou-S");

  std::shared_ptr<L::LhmmModel> model =
      bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm");
  L::LhmmMatcher lhmm_matcher(env.net(), env.index.get(), model);
  std::unique_ptr<matchers::Seq2SeqMatcher> dmm =
      bench::GetSeq2Seq(env, &matchers::MakeDmm, "dmm");
  matchers::StmMatcher stm(env.net(), env.index.get(), bench::GpsModelConfig(),
                           bench::BaselineEngineConfig());
  std::vector<matchers::MapMatcher*> all = {&lhmm_matcher, dmm.get(), &stm};

  // ---- (a) Distance to city center, 5 levels. ----
  printf("\n=== Fig. 7(a): CMF50 by distance-to-center level ===\n");
  std::vector<double> radii;
  for (const auto& mt : env.ds.test) {
    radii.push_back(sim::CentroidRadius(env.ds.network, mt));
  }
  std::vector<double> sorted = radii;
  std::sort(sorted.begin(), sorted.end());
  eval::TextTable table_a({"level (urban->rural)", "LHMM", "DMM", "STM", "n"});
  core::CsvWriter csv_a("bench_out/fig7a_area.csv");
  csv_a.AddRow({"level", "lhmm_cmf50", "dmm_cmf50", "stm_cmf50", "n"});
  for (int level = 0; level < 5; ++level) {
    const double lo = sorted[level * (sorted.size() - 1) / 5];
    const double hi = sorted[(level + 1) * (sorted.size() - 1) / 5];
    std::vector<traj::MatchedTrajectory> subset;
    for (size_t i = 0; i < env.ds.test.size(); ++i) {
      const bool last = level == 4;
      if (radii[i] >= lo && (radii[i] < hi || (last && radii[i] <= hi))) {
        subset.push_back(env.ds.test[i]);
      }
    }
    if (subset.empty()) continue;
    std::vector<std::string> row = {core::StrFormat("L%d", level + 1)};
    std::vector<std::string> csv_row = {core::StrFormat("%d", level + 1)};
    for (matchers::MapMatcher* m : all) {
      const double cmf = MeanCmf(m, env, subset);
      row.push_back(eval::Fmt(cmf));
      csv_row.push_back(eval::Fmt(cmf));
    }
    row.push_back(core::StrFormat("%zu", subset.size()));
    csv_row.push_back(core::StrFormat("%zu", subset.size()));
    table_a.AddRow(row);
    csv_a.AddRow(csv_row);
    fprintf(stderr, "[bench] area level %d done\n", level + 1);
  }
  table_a.Print();
  (void)csv_a.Flush();

  // ---- (b) Sampling rate sweep. ----
  printf("\n=== Fig. 7(b): CMF50 by sampling rate ===\n");
  // Our time axis is compressed ~4x relative to the paper's datasets
  // (16 s vs 67 s mean interval), so the paper's 0.2-1.4 samples/minute
  // sweep maps to 4x those rates here; rows are labeled with the
  // paper-equivalent rate.
  constexpr double kTimeCompression = 4.0;
  eval::TextTable table_b({"paper-equiv rate", "LHMM", "DMM", "STM"});
  core::CsvWriter csv_b("bench_out/fig7b_rate.csv");
  csv_b.AddRow({"paper_equiv_rate_per_min", "lhmm_cmf50", "dmm_cmf50",
                "stm_cmf50"});
  for (double paper_rate : {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4}) {
    const double rate = kTimeCompression * paper_rate;
    std::vector<traj::MatchedTrajectory> resampled = env.ds.test;
    for (auto& mt : resampled) {
      mt.cellular = traj::Resample(mt.cellular, rate);
    }
    std::vector<std::string> row = {eval::Fmt(paper_rate, 1)};
    std::vector<std::string> csv_row = {eval::Fmt(paper_rate, 1)};
    for (matchers::MapMatcher* m : all) {
      const double cmf = MeanCmf(m, env, resampled);
      row.push_back(eval::Fmt(cmf));
      csv_row.push_back(eval::Fmt(cmf));
    }
    table_b.AddRow(row);
    csv_b.AddRow(csv_row);
    fprintf(stderr, "[bench] rate %.1f done\n", paper_rate);
  }
  table_b.Print();
  (void)csv_b.Flush();

  printf(
      "\nPaper shapes: LHMM stays flattest across both sweeps; DMM degrades\n"
      "sharply in rural areas (sparse history) and at low sampling rates;\n"
      "STM degrades steadily as sampling thins.\n");
  return 0;
}
