// Reproduces Table II (overall performance): precision, recall, RMF, CMF50
// and average matching time for the six GPS-designed baselines, the four
// CTMM baselines, and LHMM, on both datasets. Also writes
// bench_out/table2_<dataset>.csv.

#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "core/csv.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "eval/significance.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

namespace {

void RunDataset(const std::string& name) {
  bench::Env env = bench::MakeEnv(name);
  const hmm::ClassicModelConfig gps = bench::GpsModelConfig();
  const hmm::ClassicModelConfig ctmm = bench::CtmmModelConfig();
  const hmm::EngineConfig engine = bench::BaselineEngineConfig();

  struct Row {
    std::string group;
    std::unique_ptr<matchers::MapMatcher> matcher;
  };
  std::vector<Row> rows;
  // --- GPS-designed baselines. ---
  rows.push_back({"GPS", std::make_unique<matchers::StmMatcher>(
                             env.net(), env.index.get(), gps, engine)});
  rows.push_back({"GPS", std::make_unique<matchers::IvmmMatcher>(
                             env.net(), env.index.get(), gps, engine.k)});
  rows.push_back({"GPS", std::make_unique<matchers::IfmMatcher>(
                             env.net(), env.index.get(), gps, engine)});
  rows.push_back(
      {"GPS", bench::GetSeq2Seq(env, &matchers::MakeDeepMm, "deepmm")});
  rows.push_back({"GPS", std::make_unique<matchers::McmMatcher>(
                             env.net(), env.index.get(), gps, engine)});
  rows.push_back(
      {"GPS", bench::GetSeq2Seq(env, &matchers::MakeTransformerMm, "tmm")});
  // --- CTMM baselines. ---
  rows.push_back({"CTMM", std::make_unique<matchers::ClstersMatcher>(
                              env.net(), env.index.get(), ctmm, engine)});
  rows.push_back({"CTMM", std::make_unique<matchers::SnetMatcher>(
                              env.net(), env.index.get(), ctmm, engine)});
  rows.push_back({"CTMM", std::make_unique<matchers::ThmmMatcher>(
                              env.net(), env.index.get(), ctmm, engine)});
  rows.push_back({"CTMM", bench::GetSeq2Seq(env, &matchers::MakeDmm, "dmm")});
  // --- LHMM. ---
  std::shared_ptr<L::LhmmModel> model =
      bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm");
  rows.push_back({"Ours", std::make_unique<L::LhmmMatcher>(
                              env.net(), env.index.get(), model)});

  printf("\n=== Table II (%s) ===\n", name.c_str());
  traj::FilterConfig filters;
  eval::TextTable table({"group", "matcher", "precision", "recall", "RMF", "CMF50",
                         "avg time (s)"});
  core::CsvWriter csv("bench_out/table2_" + name + ".csv");
  csv.AddRow({"group", "matcher", "precision", "recall", "rmf", "cmf50",
              "avg_time_s"});
  std::vector<std::vector<eval::TrajectoryEval>> all_records;
  std::vector<std::string> names;
  for (Row& row : rows) {
    std::vector<eval::TrajectoryEval> records = eval::EvaluatePerTrajectory(
        row.matcher.get(), env.ds.network, env.ds.test, filters);
    const eval::EvalSummary s = eval::Summarize(
        records, row.matcher->name(), row.matcher->ProvidesCandidates());
    table.AddRow({row.group, s.matcher, eval::Fmt(s.precision),
                  eval::Fmt(s.recall), eval::Fmt(s.rmf), eval::Fmt(s.cmf50),
                  eval::Fmt(s.avg_time_s, 4)});
    csv.AddRow({row.group, s.matcher, eval::Fmt(s.precision), eval::Fmt(s.recall),
                eval::Fmt(s.rmf), eval::Fmt(s.cmf50), eval::Fmt(s.avg_time_s, 4)});
    all_records.push_back(std::move(records));
    names.push_back(s.matcher);
    fprintf(stderr, "[bench] %s done\n", s.matcher.c_str());
  }
  table.Print();
  if (!csv.Flush().ok()) {
    fprintf(stderr, "[bench] warning: could not write CSV\n");
  }

  // Paired-bootstrap significance of the LHMM improvement (last row) over
  // every baseline, on CMF50.
  printf("\nLHMM vs baselines, paired bootstrap on CMF50 (negative = LHMM"
         " better):\n");
  eval::TextTable sig({"baseline", "mean diff", "95% CI", "p"});
  const auto& lhmm_records = all_records.back();
  for (size_t i = 0; i + 1 < all_records.size(); ++i) {
    const eval::BootstrapResult r = eval::PairedBootstrap(
        lhmm_records, all_records[i], eval::Metric::kCmf);
    sig.AddRow({names[i], eval::Fmt(r.mean_diff),
                "[" + eval::Fmt(r.ci_low) + ", " + eval::Fmt(r.ci_high) + "]",
                eval::Fmt(r.p_value)});
  }
  sig.Print();
}

}  // namespace

int main() {
  std::filesystem::create_directories("bench_out");
  RunDataset("Hangzhou-S");
  RunDataset("Xiamen-S");
  printf(
      "\nPaper shapes to compare (Table II): CTMM-tailored beat GPS-designed;"
      "\nDMM is the strongest baseline; LHMM wins every metric with the lowest"
      "\naverage matching time (it runs with k=30 vs 45 for the baselines).\n");
  return 0;
}
