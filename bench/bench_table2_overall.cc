// Reproduces Table II (overall performance): precision, recall, RMF, CMF50
// and average matching time for the six GPS-designed baselines, the four
// CTMM baselines, and LHMM, on both datasets. Matching runs through the
// parallel BatchMatcher (--threads=N, default hardware_concurrency; accuracy
// metrics are thread-count invariant). Writes bench_out/table2_<dataset>.csv
// and per-matcher wall-clock speedups to bench_out/table2_<dataset>.json.

#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "core/csv.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "eval/significance.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

namespace {

void RunDataset(const std::string& name, int threads) {
  bench::Env env = bench::MakeEnv(name);
  const hmm::ClassicModelConfig gps = bench::GpsModelConfig();
  const hmm::ClassicModelConfig ctmm = bench::CtmmModelConfig();
  const hmm::EngineConfig engine = bench::BaselineEngineConfig();
  const network::RoadNetwork* net = env.net();
  const network::GridIndex* index = env.index.get();

  struct Row {
    std::string group;
    matchers::MatcherFactory factory;
  };
  std::vector<Row> rows;
  // --- GPS-designed baselines. ---
  rows.push_back({"GPS", [=] {
                    return std::make_unique<matchers::StmMatcher>(net, index, gps,
                                                                  engine);
                  }});
  rows.push_back({"GPS", [=] {
                    return std::make_unique<matchers::IvmmMatcher>(net, index, gps,
                                                                   engine.k);
                  }});
  rows.push_back({"GPS", [=] {
                    return std::make_unique<matchers::IfmMatcher>(net, index, gps,
                                                                  engine);
                  }});
  rows.push_back({"GPS", bench::Seq2SeqFactory(env, &matchers::MakeDeepMm, "deepmm")});
  rows.push_back({"GPS", [=] {
                    return std::make_unique<matchers::McmMatcher>(net, index, gps,
                                                                  engine);
                  }});
  rows.push_back({"GPS", bench::Seq2SeqFactory(env, &matchers::MakeTransformerMm, "tmm")});
  // --- CTMM baselines. ---
  rows.push_back({"CTMM", [=] {
                    return std::make_unique<matchers::ClstersMatcher>(net, index,
                                                                      ctmm, engine);
                  }});
  rows.push_back({"CTMM", [=] {
                    return std::make_unique<matchers::SnetMatcher>(net, index, ctmm,
                                                                   engine);
                  }});
  rows.push_back({"CTMM", [=] {
                    return std::make_unique<matchers::ThmmMatcher>(net, index, ctmm,
                                                                   engine);
                  }});
  rows.push_back({"CTMM", bench::Seq2SeqFactory(env, &matchers::MakeDmm, "dmm")});
  // --- LHMM. ---
  std::shared_ptr<L::LhmmModel> model =
      bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm");
  rows.push_back({"Ours", [=] {
                    return std::make_unique<L::LhmmMatcher>(net, index, model);
                  }});

  printf("\n=== Table II (%s, %d thread%s) ===\n", name.c_str(), threads,
         threads == 1 ? "" : "s");
  traj::FilterConfig filters;
  eval::TextTable table({"group", "matcher", "precision", "recall", "RMF", "CMF50",
                         "avg time (s)", "speedup"});
  core::CsvWriter csv("bench_out/table2_" + name + ".csv");
  csv.AddRow({"group", "matcher", "precision", "recall", "rmf", "cmf50",
              "avg_time_s", "wall_s", "speedup"});
  std::vector<std::vector<eval::TrajectoryEval>> all_records;
  std::vector<std::string> names;
  std::vector<bench::MatcherTiming> timings;
  for (Row& row : rows) {
    // One thread-safe route cache per matcher family, shared by its workers,
    // so shortest paths amortize across threads like they do serially.
    network::CachedRouter shared_cache(env.net());
    matchers::BatchConfig batch_config;
    batch_config.num_threads = threads;
    batch_config.shared_router = &shared_cache;
    matchers::BatchMatcher batch(row.factory, batch_config);
    std::vector<eval::TrajectoryEval> records = eval::EvaluatePerTrajectoryParallel(
        &batch, env.ds.network, env.ds.test, filters);
    const eval::EvalSummary s = eval::Summarize(records, batch.name(),
                                                batch.provides_candidates());
    bench::MatcherTiming timing;
    timing.matcher = s.matcher;
    timing.wall_s = batch.last_stats().wall_s;
    for (const eval::TrajectoryEval& r : records) timing.work_s += r.time_s;
    timing.speedup = timing.wall_s > 0.0 ? timing.work_s / timing.wall_s : 0.0;
    timings.push_back(timing);
    table.AddRow({row.group, s.matcher, eval::Fmt(s.precision),
                  eval::Fmt(s.recall), eval::Fmt(s.rmf), eval::Fmt(s.cmf50),
                  eval::Fmt(s.avg_time_s, 4), eval::Fmt(timing.speedup, 2)});
    csv.AddRow({row.group, s.matcher, eval::Fmt(s.precision), eval::Fmt(s.recall),
                eval::Fmt(s.rmf), eval::Fmt(s.cmf50), eval::Fmt(s.avg_time_s, 4),
                eval::Fmt(timing.wall_s, 4), eval::Fmt(timing.speedup, 2)});
    all_records.push_back(std::move(records));
    names.push_back(s.matcher);
    fprintf(stderr, "[bench] %s done (%.1fs wall, %.2fx speedup, cache %lld/%lld"
            " hit/miss)\n",
            s.matcher.c_str(), timing.wall_s, timing.speedup,
            static_cast<long long>(shared_cache.hits()),
            static_cast<long long>(shared_cache.misses()));
  }
  table.Print();
  if (!csv.Flush().ok()) {
    fprintf(stderr, "[bench] warning: could not write CSV\n");
  }
  if (!bench::WriteTimingsJson("bench_out/table2_" + name + ".json", name, threads,
                               timings)
           .ok()) {
    fprintf(stderr, "[bench] warning: could not write JSON\n");
  }

  // Paired-bootstrap significance of the LHMM improvement (last row) over
  // every baseline, on CMF50.
  printf("\nLHMM vs baselines, paired bootstrap on CMF50 (negative = LHMM"
         " better):\n");
  eval::TextTable sig({"baseline", "mean diff", "95% CI", "p"});
  const auto& lhmm_records = all_records.back();
  for (size_t i = 0; i + 1 < all_records.size(); ++i) {
    const eval::BootstrapResult r = eval::PairedBootstrap(
        lhmm_records, all_records[i], eval::Metric::kCmf);
    sig.AddRow({names[i], eval::Fmt(r.mean_diff),
                "[" + eval::Fmt(r.ci_low) + ", " + eval::Fmt(r.ci_high) + "]",
                eval::Fmt(r.p_value)});
  }
  sig.Print();
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::create_directories("bench_out");
  const int threads = bench::ThreadsFromArgs(argc, argv);
  RunDataset("Hangzhou-S", threads);
  RunDataset("Xiamen-S", threads);
  printf(
      "\nPaper shapes to compare (Table II): CTMM-tailored beat GPS-designed;"
      "\nDMM is the strongest baseline; LHMM wins every metric with the lowest"
      "\naverage matching time (it runs with k=30 vs 45 for the baselines).\n");
  return 0;
}
