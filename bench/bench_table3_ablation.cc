// Reproduces Table III (ablations): LHMM against LHMM-E (MLP embedding),
// LHMM-H (homogeneous GCN), LHMM-O (no implicit observation), LHMM-T (no
// implicit transition), LHMM-S (no shortcuts), plus STM and STM+S, reporting
// precision, CMF50 and Hitting Ratio on both datasets.

#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "core/csv.h"
#include "eval/evaluator.h"
#include "eval/report.h"

using namespace lhmm;  // NOLINT(build/namespaces): bench driver.
namespace L = ::lhmm::lhmm;

namespace {

void RunDataset(const std::string& name, eval::TextTable* table,
                core::CsvWriter* csv) {
  bench::Env env = bench::MakeEnv(name);
  traj::FilterConfig filters;

  auto eval_one = [&](matchers::MapMatcher* matcher, const std::string& label) {
    const eval::EvalSummary s =
        eval::EvaluateMatcher(matcher, env.ds.network, env.ds.test, filters);
    table->AddRow({name, label, eval::Fmt(s.precision), eval::Fmt(s.cmf50),
                   eval::Fmt(s.hitting_ratio)});
    csv->AddRow({name, label, eval::Fmt(s.precision), eval::Fmt(s.cmf50),
                 eval::Fmt(s.hitting_ratio)});
    fprintf(stderr, "[bench] %s/%s done\n", name.c_str(), label.c_str());
  };

  // Full model (shared with the Table II cache).
  std::shared_ptr<L::LhmmModel> full =
      bench::GetLhmmModel(env, bench::DefaultLhmmConfig(), "lhmm");
  {
    L::LhmmMatcher m(env.net(), env.index.get(), full, "LHMM");
    eval_one(&m, "LHMM");
  }
  // LHMM-E: MLP embedding layer instead of the graph encoder.
  {
    L::LhmmConfig cfg = bench::DefaultLhmmConfig();
    cfg.encoder.kind = L::EncoderKind::kMlpOnly;
    auto model = bench::GetLhmmModel(env, cfg, "lhmm_e");
    L::LhmmMatcher m(env.net(), env.index.get(), model, "LHMM-E");
    eval_one(&m, "LHMM-E");
  }
  // LHMM-H: homogeneous GCN.
  {
    L::LhmmConfig cfg = bench::DefaultLhmmConfig();
    cfg.encoder.kind = L::EncoderKind::kHomogeneous;
    auto model = bench::GetLhmmModel(env, cfg, "lhmm_h");
    L::LhmmMatcher m(env.net(), env.index.get(), model, "LHMM-H");
    eval_one(&m, "LHMM-H");
  }
  // LHMM-O: explicit-only observation.
  {
    L::LhmmConfig cfg = bench::DefaultLhmmConfig();
    cfg.use_implicit_observation = false;
    auto model = bench::GetLhmmModel(env, cfg, "lhmm_o");
    L::LhmmMatcher m(env.net(), env.index.get(), model, "LHMM-O");
    eval_one(&m, "LHMM-O");
  }
  // LHMM-T: explicit-only transition.
  {
    L::LhmmConfig cfg = bench::DefaultLhmmConfig();
    cfg.use_implicit_transition = false;
    auto model = bench::GetLhmmModel(env, cfg, "lhmm_t");
    L::LhmmMatcher m(env.net(), env.index.get(), model, "LHMM-T");
    eval_one(&m, "LHMM-T");
  }
  // LHMM-S: shortcuts off — reuses the full model's weights.
  {
    auto model = std::make_shared<L::LhmmModel>(std::move(*bench::GetLhmmModel(
        env, bench::DefaultLhmmConfig(), "lhmm")));
    model->config.use_shortcuts = false;
    L::LhmmMatcher m(env.net(), env.index.get(), model, "LHMM-S");
    eval_one(&m, "LHMM-S");
  }
  // STM and STM+S (the shortcut is a general HMM add-on).
  {
    matchers::StmMatcher stm(env.net(), env.index.get(), bench::GpsModelConfig(),
                             bench::BaselineEngineConfig());
    eval_one(&stm, "STM");
    hmm::EngineConfig with_s = bench::BaselineEngineConfig();
    with_s.use_shortcuts = true;
    matchers::StmMatcher stm_s(env.net(), env.index.get(), bench::GpsModelConfig(),
                               with_s);
    eval_one(&stm_s, "STM+S");
  }
}

}  // namespace

int main() {
  std::filesystem::create_directories("bench_out");
  eval::TextTable table({"dataset", "variant", "precision", "CMF50", "HR"});
  core::CsvWriter csv("bench_out/table3_ablation.csv");
  csv.AddRow({"dataset", "variant", "precision", "cmf50", "hr"});
  RunDataset("Hangzhou-S", &table, &csv);
  RunDataset("Xiamen-S", &table, &csv);
  printf("\n=== Table III (ablations) ===\n");
  table.Print();
  if (!csv.Flush().ok()) fprintf(stderr, "[bench] warning: CSV write failed\n");
  printf(
      "\nPaper shapes: every ablation hurts; -O hurts most, then -T; -E falls\n"
      "behind -H (multi-relational graph information matters); the shortcut\n"
      "helps both LHMM (-S gap) and STM (STM+S beats STM on all three).\n");
  return 0;
}
