#ifndef LHMM_BENCH_BENCH_COMMON_H_
#define LHMM_BENCH_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "matchers/batch_matcher.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "matchers/seq2seq.h"
#include "network/grid_index.h"
#include "sim/dataset.h"

namespace lhmm::bench {

/// One fully prepared benchmark environment: dataset + spatial index.
struct Env {
  sim::Dataset ds;
  std::unique_ptr<network::GridIndex> index;

  const network::RoadNetwork* net() const { return &ds.network; }
  int num_towers() const { return static_cast<int>(ds.towers.size()); }
};

/// Builds one of the two paper datasets. `fast` (or env LHMM_BENCH_FAST=1)
/// shrinks the trajectory counts for quick runs.
Env MakeEnv(const std::string& which /* "Hangzhou-S" | "Xiamen-S" */,
            bool fast = false);

/// True when LHMM_BENCH_FAST=1 is set.
bool FastMode();

/// Trains an LHMM model, or loads it from the on-disk cache
/// (bench_cache/<dataset>_<tag>.model). The cache makes the per-table bench
/// binaries independently runnable without retraining shared models.
std::shared_ptr<lhmm::LhmmModel> GetLhmmModel(const Env& env,
                                              const lhmm::LhmmConfig& config,
                                              const std::string& tag);

/// The standard LHMM configuration used across benches.
lhmm::LhmmConfig DefaultLhmmConfig();

/// Trains (or loads) one of the seq2seq baselines; `maker` is one of
/// MakeDeepMm / MakeTransformerMm / MakeDmm.
std::unique_ptr<matchers::Seq2SeqMatcher> GetSeq2Seq(
    const Env& env,
    std::unique_ptr<matchers::Seq2SeqMatcher> (*maker)(const network::RoadNetwork*,
                                                       const network::GridIndex*,
                                                       int, uint64_t),
    const std::string& tag);

/// Classic model configurations: the GPS-designed baselines keep their
/// GPS-era (too narrow) observation scales; the CTMM-tailored ones widen
/// them — the paper's Table II grouping.
hmm::ClassicModelConfig GpsModelConfig();
hmm::ClassicModelConfig CtmmModelConfig();

/// Engine configuration for the classical baselines (k = 45 per V-A2).
hmm::EngineConfig BaselineEngineConfig();

/// Parses `--threads=N` (or `--threads N`) from argv. Returns
/// core::ThreadPool::DefaultThreadCount() when absent, so every bench runs
/// parallel by default and `--threads=1` reproduces the serial path.
int ThreadsFromArgs(int argc, char** argv);

/// Ensures a trained seq2seq model for `tag` is cached on disk (training it
/// once if needed) and returns a factory producing independent worker clones
/// that load the cached weights.
matchers::MatcherFactory Seq2SeqFactory(
    const Env& env,
    std::unique_ptr<matchers::Seq2SeqMatcher> (*maker)(const network::RoadNetwork*,
                                                       const network::GridIndex*,
                                                       int, uint64_t),
    const std::string& tag);

/// Per-matcher wall-clock accounting of one batch evaluation, for the bench
/// JSON report.
struct MatcherTiming {
  std::string matcher;
  double wall_s = 0.0;  ///< Batch wall-clock.
  double work_s = 0.0;  ///< Sum of per-trajectory match times (serial cost).
  double speedup = 0.0; ///< work_s / wall_s.
};

/// Writes bench_out JSON with the thread count and per-matcher speedups:
/// {"dataset": ..., "threads": N, "matchers": [{"matcher": ..., "wall_s": ...,
///  "work_s": ..., "speedup": ...}, ...]}.
core::Status WriteTimingsJson(const std::string& path, const std::string& dataset,
                              int threads,
                              const std::vector<MatcherTiming>& timings);

}  // namespace lhmm::bench

#endif  // LHMM_BENCH_BENCH_COMMON_H_
