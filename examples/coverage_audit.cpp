// Network coverage audit: uses the trained multi-relational graph to audit
// the cellular deployment — which roads are served by which towers, where
// positioning is ambiguous, and where matching will be hard.
//
// This exercises the library's analysis surface (multi-relational graph,
// radio model, dataset statistics) rather than the matcher: the kind of tool
// an operator would run before rolling LHMM out city-wide.
//
// Usage: coverage_audit [num_train]

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "core/strings.h"
#include "eval/report.h"
#include "lhmm/mr_graph.h"
#include "network/grid_index.h"
#include "sim/dataset.h"
#include "traj/filters.h"

using namespace lhmm;  // NOLINT(build/namespaces): example code.
namespace L = ::lhmm::lhmm;

int main(int argc, char** argv) {
  const int num_train = argc > 1 ? std::atoi(argv[1]) : 400;

  sim::DatasetConfig cfg = sim::XiamenSPreset();
  cfg.num_train = num_train;
  cfg.num_val = 10;
  cfg.num_test = 10;
  printf("Building %s and mining tower-road relations from %d trajectories...\n",
         cfg.name.c_str(), num_train);
  sim::Dataset ds = sim::BuildDataset(cfg);

  // Dataset-level health check (the Table I statistics).
  const sim::DatasetStats stats = ds.ComputeStats();
  printf(
      "\nDeployment summary: %d towers over %d road segments;\n"
      "mean positioning error %.0f m (p90 %.0f m), mean sampling interval "
      "%.0f s.\n",
      stats.num_towers, stats.road_segments, stats.mean_positioning_error_m,
      stats.p90_positioning_error_m, stats.avg_cell_interval_s);

  // Mine the multi-relational graph (CO/SQ/TP) exactly as LHMM training does.
  traj::FilterConfig filters;
  std::vector<traj::Trajectory> cleaned;
  for (const auto& mt : ds.train) {
    cleaned.push_back(
        traj::DeduplicateTowers(traj::PreprocessCellular(mt.cellular, filters)));
  }
  const L::MultiRelationalGraph graph = L::BuildGraph(
      ds.network, static_cast<int>(ds.towers.size()), ds.train, cleaned);

  // Per-tower ambiguity: how concentrated is each tower's road service set?
  // Low max-CO-frequency = the tower serves many roads about equally = hard
  // to localize users attached to it.
  struct TowerAudit {
    traj::TowerId id;
    int roads_served;
    double top_share;
  };
  std::vector<TowerAudit> audits;
  int unseen_towers = 0;
  for (const auto& tower : ds.towers) {
    const auto segs = graph.CoSegments(tower.id);
    if (segs.empty()) {
      ++unseen_towers;
      continue;
    }
    double top = 0.0;
    for (network::SegmentId sid : segs) {
      top = std::max(top, graph.CoFrequency(tower.id, sid));
    }
    audits.push_back({tower.id, static_cast<int>(segs.size()), top});
  }

  std::sort(audits.begin(), audits.end(), [](const auto& a, const auto& b) {
    return a.top_share < b.top_share;
  });
  printf("\nMost ambiguous towers (service mass spread over many roads):\n");
  eval::TextTable worst({"tower", "roads served", "top road share", "position"});
  for (size_t i = 0; i < std::min<size_t>(8, audits.size()); ++i) {
    const auto& a = audits[i];
    worst.AddRow({core::StrFormat("#%d", a.id),
                  core::StrFormat("%d", a.roads_served),
                  eval::Fmt(a.top_share),
                  core::StrFormat("(%.0f, %.0f)", ds.towers[a.id].pos.x,
                                  ds.towers[a.id].pos.y)});
  }
  worst.Print();

  // Aggregate coverage summary.
  double mean_roads = 0.0;
  double mean_top = 0.0;
  for (const auto& a : audits) {
    mean_roads += a.roads_served;
    mean_top += a.top_share;
  }
  if (!audits.empty()) {
    mean_roads /= static_cast<double>(audits.size());
    mean_top /= static_cast<double>(audits.size());
  }
  printf(
      "\n%zu towers observed in history (%d never observed).\n"
      "On average a tower serves %.1f distinct roads; the most-served road\n"
      "takes %.0f%% of its mass — the ambiguity LHMM's context attention\n"
      "resolves at matching time.\n",
      audits.size(), unseen_towers, mean_roads, 100.0 * mean_top);

  // Roads with no co-occurrence history: cold-start spots for the learner.
  int cold_roads = 0;
  std::vector<char> seen(ds.network.num_segments(), 0);
  for (const auto& tower : ds.towers) {
    for (network::SegmentId sid : graph.CoSegments(tower.id)) seen[sid] = 1;
  }
  for (char s : seen) {
    if (!s) ++cold_roads;
  }
  printf(
      "%d of %d road segments have no mined tower association yet (cold\n"
      "start: LHMM falls back to spatial candidates there).\n",
      cold_roads, ds.network.num_segments());
  return 0;
}
