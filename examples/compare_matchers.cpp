// Compares several classical HMM map-matchers on a synthetic cellular
// dataset. This example exercises the simulator, the shared HMM engine, and
// the evaluation metrics without any learned components; see quickstart.cpp
// for the LHMM workflow.
//
// Usage: compare_matchers [num_test_trajectories]

#include <cstdlib>
#include <memory>
#include <vector>

#include "eval/evaluator.h"
#include "eval/report.h"
#include "matchers/classic_matchers.h"
#include "network/grid_index.h"
#include "sim/dataset.h"

using namespace lhmm;  // NOLINT(build/namespaces): example code.

int main(int argc, char** argv) {
  int num_test = argc > 1 ? std::atoi(argv[1]) : 60;

  // A scaled-down city keeps this example fast; presets in sim/dataset.h give
  // the full benchmark configuration.
  sim::DatasetConfig cfg = sim::XiamenSPreset();
  cfg.num_train = 10;
  cfg.num_val = 5;
  cfg.num_test = num_test;
  printf("Building dataset %s ...\n", cfg.name.c_str());
  sim::Dataset ds = sim::BuildDataset(cfg);
  const sim::DatasetStats stats = ds.ComputeStats();
  printf("  %d segments, %d nodes, %d towers, mean positioning error %.0f m\n",
         stats.road_segments, stats.intersections, stats.num_towers,
         stats.mean_positioning_error_m);

  network::GridIndex index(&ds.network, 300.0);
  hmm::ClassicModelConfig models;
  hmm::EngineConfig engine;
  engine.k = 45;

  std::vector<std::unique_ptr<matchers::MapMatcher>> all;
  all.push_back(
      std::make_unique<matchers::StmMatcher>(&ds.network, &index, models, engine));
  all.push_back(
      std::make_unique<matchers::McmMatcher>(&ds.network, &index, models, engine));
  all.push_back(
      std::make_unique<matchers::ThmmMatcher>(&ds.network, &index, models, engine));
  hmm::EngineConfig with_shortcut = engine;
  with_shortcut.use_shortcuts = true;
  all.push_back(std::make_unique<matchers::StmMatcher>(&ds.network, &index, models,
                                                       with_shortcut));

  traj::FilterConfig filters;
  eval::TextTable table(
      {"matcher", "precision", "recall", "RMF", "CMF50", "HR", "avg time (s)"});
  for (auto& matcher : all) {
    const eval::EvalSummary s =
        eval::EvaluateMatcher(matcher.get(), ds.network, ds.test, filters);
    table.AddRow({s.matcher, eval::Fmt(s.precision), eval::Fmt(s.recall),
                  eval::Fmt(s.rmf), eval::Fmt(s.cmf50), eval::Fmt(s.hitting_ratio),
                  eval::Fmt(s.avg_time_s, 4)});
    printf("  %s done (%lld shortcut improvements)\n", s.matcher.c_str(),
           static_cast<long long>(
               static_cast<matchers::HmmMatcherBase*>(matcher.get())
                   ->engine()
                   ->shortcuts_applied()));
  }
  printf("\n");
  table.Print();
  return 0;
}
