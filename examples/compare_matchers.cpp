// Compares several classical HMM map-matchers on a synthetic cellular
// dataset. This example exercises the simulator, the shared HMM engine, the
// parallel BatchMatcher, and the evaluation metrics without any learned
// components; see quickstart.cpp for the LHMM workflow.
//
// Usage: compare_matchers [num_test_trajectories] [--threads=N]

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "matchers/batch_matcher.h"
#include "matchers/classic_matchers.h"
#include "network/grid_index.h"
#include "network/path_cache.h"
#include "sim/dataset.h"

using namespace lhmm;  // NOLINT(build/namespaces): example code.

int main(int argc, char** argv) {
  int num_test = 60;
  int threads = core::ThreadPool::DefaultThreadCount();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads = std::max(1, std::atoi(arg.c_str() + 10));
    } else {
      num_test = std::atoi(arg.c_str());
    }
  }

  // A scaled-down city keeps this example fast; presets in sim/dataset.h give
  // the full benchmark configuration.
  sim::DatasetConfig cfg = sim::XiamenSPreset();
  cfg.num_train = 10;
  cfg.num_val = 5;
  cfg.num_test = num_test;
  printf("Building dataset %s ...\n", cfg.name.c_str());
  sim::Dataset ds = sim::BuildDataset(cfg);
  const sim::DatasetStats stats = ds.ComputeStats();
  printf("  %d segments, %d nodes, %d towers, mean positioning error %.0f m\n",
         stats.road_segments, stats.intersections, stats.num_towers,
         stats.mean_positioning_error_m);

  network::GridIndex index(&ds.network, 300.0);
  const network::RoadNetwork* net = &ds.network;
  const network::GridIndex* idx = &index;
  hmm::ClassicModelConfig models;
  hmm::EngineConfig engine;
  engine.k = 45;
  hmm::EngineConfig with_shortcut = engine;
  with_shortcut.use_shortcuts = true;

  // Matchers are described by factories: the BatchMatcher clones one instance
  // per worker thread, so each worker owns its own engine and routing state.
  std::vector<matchers::MatcherFactory> all;
  all.push_back([=] {
    return std::make_unique<matchers::StmMatcher>(net, idx, models, engine);
  });
  all.push_back([=] {
    return std::make_unique<matchers::McmMatcher>(net, idx, models, engine);
  });
  all.push_back([=] {
    return std::make_unique<matchers::ThmmMatcher>(net, idx, models, engine);
  });
  all.push_back([=] {
    return std::make_unique<matchers::StmMatcher>(net, idx, models, with_shortcut);
  });

  printf("Matching with %d thread%s ...\n", threads, threads == 1 ? "" : "s");
  traj::FilterConfig filters;
  eval::TextTable table({"matcher", "precision", "recall", "RMF", "CMF50", "HR",
                         "avg time (s)", "speedup"});
  for (size_t i = 0; i < all.size(); ++i) {
    // Workers share one thread-safe route cache; results are byte-identical
    // to a serial run for any thread count.
    network::CachedRouter shared_cache(net);
    matchers::BatchConfig batch_config;
    batch_config.num_threads = threads;
    batch_config.shared_router = &shared_cache;
    matchers::BatchMatcher batch(all[i], batch_config);
    const eval::EvalSummary s =
        eval::EvaluateMatcherParallel(&batch, ds.network, ds.test, filters);
    const matchers::BatchStats& bs = batch.last_stats();
    table.AddRow({s.matcher + (i + 1 == all.size() ? " (+shortcuts)" : ""),
                  eval::Fmt(s.precision), eval::Fmt(s.recall), eval::Fmt(s.rmf),
                  eval::Fmt(s.cmf50), eval::Fmt(s.hitting_ratio),
                  eval::Fmt(s.avg_time_s, 4), eval::Fmt(bs.Speedup(), 2)});
    printf("  %s done (%.2f s wall, cache %lld hits / %lld misses)\n",
           s.matcher.c_str(), bs.wall_s, static_cast<long long>(shared_cache.hits()),
           static_cast<long long>(shared_cache.misses()));
  }
  printf("\n");
  table.Print();
  return 0;
}
