// Real-time vehicle tracking: streams cellular points through the fixed-lag
// OnlineMatcher (the paper's security-tracking application, Section I),
// using LHMM's learned probabilities, and reports per-update latency and
// the accuracy cost of bounded decision delay versus offline matching.
//
// Usage: realtime_tracking [num_train] [num_streams] [lag]

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "core/stopwatch.h"
#include "core/strings.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "hmm/online.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "network/grid_index.h"
#include "sim/dataset.h"

using namespace lhmm;  // NOLINT(build/namespaces): example code.
namespace L = ::lhmm::lhmm;

int main(int argc, char** argv) {
  const int num_train = argc > 1 ? std::atoi(argv[1]) : 250;
  const int num_streams = argc > 2 ? std::atoi(argv[2]) : 40;
  const int lag = argc > 3 ? std::atoi(argv[3]) : 6;

  sim::DatasetConfig cfg = sim::XiamenSPreset();
  cfg.num_train = num_train;
  cfg.num_val = 10;
  cfg.num_test = num_streams;
  printf("Preparing %s and training LHMM...\n", cfg.name.c_str());
  sim::Dataset ds = sim::BuildDataset(cfg);
  network::GridIndex index(&ds.network, 300.0);

  L::TrainInputs inputs;
  inputs.net = &ds.network;
  inputs.index = &index;
  inputs.num_towers = static_cast<int>(ds.towers.size());
  inputs.train = &ds.train;
  std::shared_ptr<L::LhmmModel> model = L::TrainLhmm(inputs, L::LhmmConfig{});

  // Offline reference matcher, and the streaming pipeline sharing the same
  // learned models via the matcher's internal state.
  L::LhmmMatcher offline(&ds.network, &index, model);

  traj::FilterConfig filters;
  double online_precision = 0.0;
  double offline_precision = 0.0;
  double worst_latency_ms = 0.0;
  double total_latency_ms = 0.0;
  int total_pushes = 0;

  for (const auto& mt : ds.test) {
    const traj::Trajectory t = eval::Preprocess(mt.cellular, filters);
    if (t.size() < 3) continue;

    // Offline result.
    const matchers::MatchResult off = offline.Match(t);
    offline_precision +=
        eval::ComputePathMetrics(ds.network, off.path, mt.truth_path).precision;

    // Streaming: a fresh online matcher per vehicle, reusing the shared
    // learned models through a private engine-compatible adapter. We reuse
    // the offline matcher's models by matching through its observation and
    // transition interfaces: the LhmmMatcher exposes them via its engine.
    network::SegmentRouter router(&ds.network);
    network::CachedRouter cached(&router);
    hmm::OnlineConfig online_cfg;
    online_cfg.k = model->config.k;
    online_cfg.lag = lag;
    // The online matcher drives the same model objects the engine uses; the
    // matcher's BeginTrajectory hooks rebuild per-window state each push.
    hmm::OnlineMatcher online(&ds.network, &cached,
                              offline.engine()->observation_model(),
                              offline.engine()->transition_model(), online_cfg);
    for (const auto& p : t.points) {
      core::Stopwatch watch;
      online.Push(p);
      const double ms = watch.ElapsedMillis();
      worst_latency_ms = std::max(worst_latency_ms, ms);
      total_latency_ms += ms;
      ++total_pushes;
    }
    online.Finish();
    online_precision +=
        eval::ComputePathMetrics(ds.network, online.committed(), mt.truth_path)
            .precision;
  }

  const double n = static_cast<double>(ds.test.size());
  printf("\n=== Real-time tracking with lag=%d ===\n", lag);
  eval::TextTable table({"mode", "precision"});
  table.AddRow({"offline Viterbi", eval::Fmt(offline_precision / n)});
  table.AddRow({core::StrFormat("online (lag %d)", lag),
                eval::Fmt(online_precision / n)});
  table.Print();
  printf(
      "\nStreaming latency: mean %.2f ms / update, worst %.2f ms over %d\n"
      "updates — each cellular ping advances the committed path with a\n"
      "decision delay of %d samples.\n",
      total_latency_ms / std::max(1, total_pushes), worst_latency_ms,
      total_pushes, lag);
  return 0;
}
