// Quickstart: build a synthetic cellular dataset, train LHMM, and match a
// trajectory. This walks the full public API end to end:
//
//   1. sim::BuildDataset      — synthetic city + cellular/GPS trajectories
//   2. lhmm::TrainLhmm        — multi-relational graph, Het-Graph encoder,
//                               learned observation/transition probabilities
//   3. lhmm::LhmmMatcher      — learned probabilities inside the HMM engine
//   4. eval::EvaluateMatcher  — precision/recall/RMF/CMF50/HR metrics
//
// Usage: quickstart [num_train] [num_test]

#include <cstdlib>
#include <memory>

#include "core/stopwatch.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "matchers/classic_matchers.h"
#include "network/grid_index.h"
#include "sim/dataset.h"

using namespace lhmm;  // NOLINT(build/namespaces): example code.
namespace L = ::lhmm::lhmm;  // The core-contribution module.

int main(int argc, char** argv) {
  const int num_train = argc > 1 ? std::atoi(argv[1]) : 300;
  const int num_test = argc > 2 ? std::atoi(argv[2]) : 60;

  // 1. Dataset.
  sim::DatasetConfig cfg = sim::XiamenSPreset();
  cfg.num_train = num_train;
  cfg.num_val = 20;
  cfg.num_test = num_test;
  printf("Building dataset %s (%d train / %d test)...\n", cfg.name.c_str(),
         num_train, num_test);
  sim::Dataset ds = sim::BuildDataset(cfg);
  network::GridIndex index(&ds.network, 300.0);

  // 2. Train LHMM.
  L::LhmmConfig lhmm_cfg;
  lhmm_cfg.verbose = true;
  L::TrainInputs inputs;
  inputs.net = &ds.network;
  inputs.index = &index;
  inputs.num_towers = static_cast<int>(ds.towers.size());
  inputs.train = &ds.train;
  printf("Training LHMM...\n");
  core::Stopwatch train_watch;
  std::shared_ptr<L::LhmmModel> model = L::TrainLhmm(inputs, lhmm_cfg);
  printf("Training took %.1f s\n", train_watch.ElapsedSeconds());

  // 3+4. Match and evaluate against the classical STM baseline.
  L::LhmmMatcher matcher(&ds.network, &index, model);
  hmm::ClassicModelConfig classic;
  hmm::EngineConfig engine;
  engine.k = 45;
  matchers::StmMatcher stm(&ds.network, &index, classic, engine);

  traj::FilterConfig filters;
  eval::TextTable table(
      {"matcher", "precision", "recall", "RMF", "CMF50", "HR", "avg time (s)"});
  for (matchers::MapMatcher* m :
       std::vector<matchers::MapMatcher*>{&stm, &matcher}) {
    const eval::EvalSummary s =
        eval::EvaluateMatcher(m, ds.network, ds.test, filters);
    table.AddRow({s.matcher, eval::Fmt(s.precision), eval::Fmt(s.recall),
                  eval::Fmt(s.rmf), eval::Fmt(s.cmf50), eval::Fmt(s.hitting_ratio),
                  eval::Fmt(s.avg_time_s, 4)});
  }
  printf("\n");
  table.Print();

  printf(
      "\nLHMM combines the HMM backbone with probabilities learned from the\n"
      "multi-relational tower/road graph; see DESIGN.md for the architecture.\n");
  return 0;
}
