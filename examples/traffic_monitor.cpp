// Traffic monitoring scenario (the paper's motivating application): a
// telecom operator estimates per-road traffic volumes and speeds from
// cellular signalling alone — no GPS fleet required.
//
// The pipeline: train LHMM on historical matched data once, then stream the
// day's cellular trajectories through it, accumulate per-segment flow counts
// and travel speeds, and report the busiest corridors. Accuracy of the flow
// map is validated against ground truth flows.
//
// Usage: traffic_monitor [num_train] [num_probe]

#include <algorithm>
#include <cstdlib>
#include <cmath>
#include <unordered_map>

#include "core/stopwatch.h"
#include "core/strings.h"
#include "eval/report.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "network/grid_index.h"
#include "sim/dataset.h"
#include "traj/filters.h"

using namespace lhmm;  // NOLINT(build/namespaces): example code.
namespace L = ::lhmm::lhmm;

int main(int argc, char** argv) {
  const int num_train = argc > 1 ? std::atoi(argv[1]) : 250;
  const int num_probe = argc > 2 ? std::atoi(argv[2]) : 120;

  sim::DatasetConfig cfg = sim::HangzhouSPreset();
  cfg.num_train = num_train;
  cfg.num_val = 10;
  cfg.num_test = num_probe;
  printf("Simulating %s with %d probe vehicles...\n", cfg.name.c_str(), num_probe);
  sim::Dataset ds = sim::BuildDataset(cfg);
  network::GridIndex index(&ds.network, 300.0);

  printf("Training LHMM on %d historical trajectories...\n", num_train);
  L::TrainInputs inputs;
  inputs.net = &ds.network;
  inputs.index = &index;
  inputs.num_towers = static_cast<int>(ds.towers.size());
  inputs.train = &ds.train;
  std::shared_ptr<L::LhmmModel> model = L::TrainLhmm(inputs, L::LhmmConfig{});
  L::LhmmMatcher matcher(&ds.network, &index, model);

  // Stream the probe trajectories; accumulate flows on matched segments.
  std::unordered_map<network::SegmentId, int> flow;
  std::unordered_map<network::SegmentId, int> truth_flow;
  traj::FilterConfig filters;
  core::Stopwatch watch;
  for (const auto& mt : ds.test) {
    const traj::Trajectory t = traj::DeduplicateTowers(
        traj::PreprocessCellular(mt.cellular, filters));
    const matchers::MatchResult r = matcher.Match(t);
    for (network::SegmentId sid : r.path) ++flow[sid];
    for (network::SegmentId sid : mt.truth_path) ++truth_flow[sid];
  }
  printf("Matched %d trajectories in %.1f s (%.1f ms each)\n", num_probe,
         watch.ElapsedSeconds(), 1000.0 * watch.ElapsedSeconds() / num_probe);

  // Busiest corridors by estimated flow.
  std::vector<std::pair<int, network::SegmentId>> ranked;
  for (const auto& [sid, count] : flow) ranked.push_back({count, sid});
  std::sort(ranked.rbegin(), ranked.rend());
  printf("\nTop estimated corridors (flow = matched vehicles):\n");
  eval::TextTable table({"segment", "est. flow", "true flow", "length (m)",
                         "road class"});
  for (size_t i = 0; i < std::min<size_t>(10, ranked.size()); ++i) {
    const network::RoadSegment& seg = ds.network.segment(ranked[i].second);
    const char* level = seg.level == network::RoadLevel::kArterial ? "arterial"
                        : seg.level == network::RoadLevel::kCollector
                            ? "collector"
                            : "local";
    table.AddRow({core::StrFormat("#%d", seg.id),
                  core::StrFormat("%d", ranked[i].first),
                  core::StrFormat("%d", truth_flow[seg.id]),
                  eval::Fmt(seg.length, 0), level});
  }
  table.Print();

  // Flow-map accuracy: correlation between estimated and true flows over
  // segments that truly carried traffic.
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  double mx = 0.0;
  double my = 0.0;
  int n = 0;
  for (const auto& [sid, tf] : truth_flow) {
    mx += flow.count(sid) ? flow[sid] : 0;
    my += tf;
    ++n;
  }
  mx /= n;
  my /= n;
  for (const auto& [sid, tf] : truth_flow) {
    const double x = (flow.count(sid) ? flow[sid] : 0) - mx;
    const double y = tf - my;
    sxy += x * y;
    sxx += x * x;
    syy += y * y;
  }
  printf("\nFlow-map correlation with ground truth: %.3f over %d segments\n",
         sxy / std::sqrt(sxx * syy + 1e-12), n);
  return 0;
}
