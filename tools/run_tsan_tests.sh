#!/usr/bin/env bash
# Builds the concurrency-sensitive tests under ThreadSanitizer and runs them.
# Usage: tools/run_tsan_tests.sh [extra ctest args...]
#
# Uses a dedicated build tree (build-tsan) so the instrumented objects never
# mix with the regular build. LHMM_SANITIZE=address works the same way if an
# ASan pass is wanted instead.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -B "${BUILD_DIR}" -S . -DLHMM_SANITIZE=thread
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target batch_test stream_test robustness_test serve_test frame_test net_server_test supervisor_test durability_test env_fault_test network_test hmm_test ch_test store_test lhmm_serve lhmm_loadgen

# TSan halts with a non-zero exit on the first data race, so a plain run is
# the assertion. batch_test covers the thread pool, the sharded route cache
# under 8-thread load, and 1-vs-4-thread batch determinism; stream_test covers
# the StreamEngine's per-session inbox pump under 8-thread shuffled arrival;
# robustness_test covers the hardened serving paths — backpressure against a
# blocked pump, cap/TTL eviction racing workers, poison quarantine, the
# 1000-session eviction-churn soak, and fault-injected batch matching;
# serve_test covers the MatchServer front end — admission, deadlines, the
# degrade ladder, watchdog quarantine of a blocked pump, and drain/restore —
# and lhmm_loadgen --smoke drives the whole serving stack with a concurrent
# fault-injecting client fleet; durability_test replays journals through the
# engine at 1 and 8 threads (recovery's PushBlocking waits out worker-side
# backpressure); the crash gauntlet kill -9s a TSan-instrumented lhmm_serve
# mid-stream and recovers it; network_test and hmm_test cover the serial
# users of the same code paths; ch_test exercises the contraction-hierarchy
# router (shared across threads behind CachedRouter) and BatchDeterminism's
# ChBackend tests run it cold under 8-way parallel matching; frame_test
# and net_server_test cover the TCP transport — the poll loop serving
# real loopback sockets from concurrent client threads — and the socket
# crash gauntlet plus a 64-connection net smoke drive lhmm_serve's
# listener end-to-end; supervisor_test and the fleet gauntlet cover
# srv::Supervisor (waitpid reaping, health probes, breaker) with client
# threads and the supervision thread racing worker kills; store_test and the
# swap gauntlet cover the RCU-style generation flip — client threads pushing
# on pinned handles while the control path swaps and rolls back CURRENT.
# env_fault_test and the chaos gauntlet additionally run the io::Env
# fault-injection plane under the sanitizer: scheduled ENOSPC/EMFILE
# storms, seal-and-rotate journal repair, and the degraded-nondurable
# state machine's enter/exit transitions.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
cd "${BUILD_DIR}"
ctest --output-on-failure -R "ThreadPool|ParallelFor|CachedRouter|BatchDeterminism|StreamEngine" "$@"
./tests/robustness_test
./tests/serve_test
./tests/frame_test
./tests/net_server_test
./tests/durability_test
./tests/env_fault_test
./tests/network_test
./tests/hmm_test
./tests/ch_test
./tools/lhmm_loadgen --smoke 1
./tools/lhmm_loadgen --crash-at 5,23,57 --crash-fault cycle \
  --serve-bin ./tools/lhmm_serve --threads 8
./tools/lhmm_loadgen --crash-at 5,23,57 --crash-fault cycle \
  --transport socket --serve-bin ./tools/lhmm_serve --threads 8
./tools/lhmm_loadgen --net-smoke 1 --connections 64 \
  --serve-bin ./tools/lhmm_serve --threads 4
./tests/supervisor_test
./tools/lhmm_loadgen --fleet-gauntlet 1 --workers 3 \
  --serve-bin ./tools/lhmm_serve --threads 2
./tests/store_test
./tools/lhmm_loadgen --swap-gauntlet 1 --workers 3 \
  --serve-bin ./tools/lhmm_serve --threads 2
./tools/lhmm_loadgen --chaos-gauntlet 1 \
  --serve-bin ./tools/lhmm_serve --threads 2

echo "TSan pass complete: no data races reported."
