#!/usr/bin/env bash
# Runs the full sanitizer battery: the ThreadSanitizer pass (data races,
# deadlocks) followed by the AddressSanitizer pass (bad accesses, lifetime
# bugs). Each pass keeps its own build tree, so reruns are incremental.
# Usage: tools/run_sanitizer_suite.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")"

echo "=== 1/2 ThreadSanitizer ==="
./run_tsan_tests.sh "$@"

echo "=== 2/2 AddressSanitizer ==="
./run_asan_tests.sh "$@"

echo "Sanitizer suite complete: TSan and ASan both clean."
