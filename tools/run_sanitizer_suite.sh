#!/usr/bin/env bash
# Runs the full sanitizer battery: the ThreadSanitizer pass (data races,
# deadlocks), the AddressSanitizer pass (bad accesses, lifetime bugs), and
# the UndefinedBehaviorSanitizer pass (overflow, misalignment, bad casts —
# the failure modes of byte-level journal framing and fault injection).
# Each pass keeps its own build tree, so reruns are incremental.
# Usage: tools/run_sanitizer_suite.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")"

echo "=== 1/3 ThreadSanitizer ==="
./run_tsan_tests.sh "$@"

echo "=== 2/3 AddressSanitizer ==="
./run_asan_tests.sh "$@"

echo "=== 3/3 UndefinedBehaviorSanitizer ==="
./run_ubsan_tests.sh "$@"

echo "Sanitizer suite complete: TSan, ASan, and UBSan all clean."
