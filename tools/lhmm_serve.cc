// lhmm_serve — the serving front end as a process: srv::MatchServer behind a
// line protocol on stdin (the default), or behind a real TCP listener with
// --listen HOST:PORT, with graceful drain on SIGTERM. One line in, one line
// out, so it scripts from a shell, a test harness, or a socket client:
//
//   open                          -> ok open <id> tier=<name>
//   push <id> <x> <y> <t> <tower> -> ok push <id>
//   finish <id>                   -> ok finish <id>
//   deadline <id> <tick>          -> ok deadline <id>
//   tick <now>                    -> ok tick <clock> tier=<name>
//   await                         -> ok await            (engine barrier)
//   committed <id>                -> ok committed <id> <n> <seg...>
//   status <id>                   -> ok status <id> <state> <code> pushed=<n>
//   status                        -> ok status <key=value ...>  (server-level:
//                                    journal segments/bytes, last durable
//                                    tick, snapshot generation)
//   stats                         -> ok stats <key=value ...>
//   health                        -> ok health tier=<name> clock=<n>
//                                    durable=<0|1> gen=<n> live=<n>
//   pid                           -> ok pid <pid> uptime=<secs>
//   checkpoint                    -> ok checkpoint gen=<n>  (durable mode)
//   drain <path>                  -> ok drain <path>     (stops admission)
//   quit
//
// Every refusal is a typed "err <Code> <message>" line — admission sheds,
// deadline expiry, quarantine — so clients can implement retry policies
// without parsing prose. SIGTERM (or EOF with --snapshot set) drains every
// live session to the snapshot file; a later run with --restore <file>
// resumes those sessions byte-identically.
//
// Crash durability: --durable <dir> recovers the server from the directory's
// newest valid snapshot plus write-ahead journal suffix (srv::Recover), then
// journals every accepted event there. --fsync record|tick|none picks the
// group-commit policy, --segment-bytes the journal rotation size,
// --keep-snapshots the generations kept, and --checkpoint-every N writes a
// snapshot and compacts the journal every N ticks (0 = only on demand via
// the checkpoint verb and at shutdown). kill -9 at any point loses at most
// the events past the last fsync; a restart with the same --durable dir
// replays the rest byte-identically.
//
// Disk exhaustion: --disk-low-bytes N arms a free-space watermark on the
// durable directory's filesystem — below it the server enters an explicit
// degraded-nondurable mode (journaling suspended, pushes acked DataLoss under
// --fsync record, checkpoints refused typed) instead of tearing journal
// writes at ENOSPC. Once free space climbs back over --disk-high-bytes
// (default 2x the low watermark) for two consecutive ticks, durability
// restores itself with a fresh checkpoint. The status verb reports
// degraded=, events_not_journaled=, journal_sealed=, journal_wedged= and
// disk_free= so operators and the chaos gauntlet can watch the transitions.
//
// TCP transport: --listen HOST:PORT serves the same verbs over per-connection
// length-prefixed frames (src/srv/frame.h documents the wire format) through
// a poll-driven accept loop — one request frame in, one response frame out,
// in order, per connection. Slow readers get typed kResourceExhausted rejects
// once their write queue fills (--max-write-queue bytes), half-open peers are
// reaped after --conn-ttl idle logical ticks, and SIGTERM/SIGINT stops
// accepting, flushes every queued response, then runs the same
// checkpoint/snapshot shutdown as stdin mode. --port-file PATH publishes the
// bound port (useful with --listen 127.0.0.1:0) for test harnesses and for
// srv::Supervisor health probes; --pid-file PATH publishes the process id the
// same atomic-rename way; --reuseport 1 binds with SO_REUSEPORT so N workers
// under lhmm_fleet can share one port.
//
// The road network is a generated grid (--grid-rows/--grid-cols/--spacing)
// or a dataset bundle (--data <prefix>). Tiers: with --data and --model, the
// full paper ladder LHMM -> IVMM -> STM; otherwise IVMM -> STM.

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/strings.h"
#include "hmm/classic_models.h"
#include "io/ch_io.h"
#include "io/dataset_io.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "network/ch_router.h"
#include "network/contraction.h"
#include "network/faulty_router.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "srv/match_server.h"
#include "srv/net_server.h"
#include "srv/recovery.h"
#include "store/generations.h"
#include "store/pinned_matcher.h"

using namespace lhmm;  // NOLINT(build/namespaces): CLI driver.
namespace L = ::lhmm::lhmm;

namespace {

volatile std::sig_atomic_t g_terminate = 0;
std::atomic<bool> g_stop{false};  // Lock-free: safe to set from the handler.
void OnTerminate(int) {
  g_terminate = 1;
  g_stop.store(true, std::memory_order_relaxed);
}

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> out;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    out[key] = argv[i + 1];
  }
  return out;
}

std::string Get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback = "") {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int GetInt(const std::map<std::string, std::string>& args,
           const std::string& key, int fallback) {
  int v = 0;
  return core::ParseInt(Get(args, key), &v) ? v : fallback;
}

double GetDouble(const std::map<std::string, std::string>& args,
                 const std::string& key, double fallback) {
  double v = 0.0;
  return core::ParseDouble(Get(args, key), &v) ? v : fallback;
}

/// Splits "HOST:PORT" on the last colon. Returns false on a malformed spec.
bool ParseHostPort(const std::string& spec, std::string* host, int* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  *host = spec.substr(0, colon);
  if (*host == "localhost") *host = "127.0.0.1";
  return core::ParseInt(spec.substr(colon + 1), port) && *port >= 0 &&
         *port <= 65535;
}

/// Publishes one integer (--port-file, --pid-file): written to a temp file
/// then renamed, so a waiting reader never sees a partial write.
bool WriteNumberFile(const std::string& path, long long value) {
  const std::string tmp = path + ".tmp";
  FILE* f = fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  fprintf(f, "%lld\n", value);
  fclose(f);
  return rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A client vanishing mid-write must surface as a typed EPIPE, never kill
  // the worker (MSG_NOSIGNAL covers the frame path; this covers stdio).
  std::signal(SIGPIPE, SIG_IGN);
  const auto args = ParseArgs(argc, argv);

  // Published before the (possibly slow) recovery/CH build so a supervisor
  // can address the worker without racing startup.
  const std::string pid_file = Get(args, "pid-file");
  if (!pid_file.empty() &&
      !WriteNumberFile(pid_file, static_cast<long long>(getpid()))) {
    fprintf(stderr, "error: cannot write --pid-file %s\n", pid_file.c_str());
    return 1;
  }

  // --- The world: a network, an index, and a (possibly faulty) router. ---
  // --store ROOT maps the published generation of a versioned asset store
  // (built by lhmm_store) as the shared data plane: the network, grid index,
  // and contraction hierarchy come out of one PROT_READ mmap whose pages N
  // workers share through the page cache, and the manager backs the
  // swap/rollback verbs plus the store_* status fields. Without it the world
  // is owned: generated grid (--grid-rows/--grid-cols/--spacing) or a
  // dataset bundle (--data).
  network::RoadNetwork net;
  std::vector<geo::Point> towers;
  io::DatasetBundle bundle;
  std::shared_ptr<L::LhmmModel> model;
  std::unique_ptr<store::GenerationManager> store_mgr;
  store::GenerationHandle store_gen0;
  const std::string store_root = Get(args, "store");
  const std::string data = Get(args, "data");
  if (!store_root.empty()) {
    if (!data.empty()) {
      fprintf(stderr, "error: --store and --data are mutually exclusive\n");
      return 1;
    }
    auto mgr = store::GenerationManager::Open(store_root);
    if (!mgr.ok()) {
      fprintf(stderr, "error: %s\n", mgr.status().ToString().c_str());
      return 1;
    }
    store_mgr = std::move(*mgr);
    store_gen0 = store_mgr->Current();
    auto loaded_net = store_gen0->store->LoadNetwork();
    if (!loaded_net.ok()) {
      fprintf(stderr, "error: %s\n", loaded_net.status().ToString().c_str());
      return 1;
    }
    net = std::move(*loaded_net);
    fprintf(stderr,
            "mapped store %s gen %" PRId64 " (%" PRId64 " bytes)\n",
            store_root.c_str(), store_gen0->generation,
            store_gen0->store->bytes());
  } else if (!data.empty()) {
    auto loaded = io::LoadDatasetBundle(data);
    if (!loaded.ok()) {
      fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    bundle = std::move(loaded).value();
    net = std::move(bundle.net);
  } else {
    net = network::GenerateGridNetwork(GetInt(args, "grid-rows", 10),
                                       GetInt(args, "grid-cols", 10),
                                       GetDouble(args, "spacing", 200.0));
  }
  std::unique_ptr<network::GridIndex> index_owned;
  if (store_mgr != nullptr) {
    auto loaded = store_gen0->store->LoadGridIndex(&net);
    if (!loaded.ok()) {
      fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    index_owned = std::move(*loaded);
  } else {
    index_owned = std::make_unique<network::GridIndex>(&net, 300.0);
  }
  network::GridIndex& index = *index_owned;
  network::FaultConfig faults;
  faults.route_failure_rate = GetDouble(args, "route-failure-rate", 0.0);
  faults.latency_rate = GetDouble(args, "latency-rate", 0.0);
  faults.seed = static_cast<uint64_t>(GetInt(args, "seed", 1));
  // Routing backend: --router=ch serves cache misses through a contraction
  // hierarchy (byte-identical results, faster cold queries). --ch-file
  // loads a saved hierarchy when present, else builds one and saves it
  // there, so restarts skip the preprocessing. Fault injection composes
  // with either backend (faults are decided before the route lookup).
  network::RouterBackend backend = network::RouterBackend::kDijkstra;
  const std::string router_arg = Get(args, "router", "dijkstra");
  if (!network::ParseRouterBackend(router_arg, &backend)) {
    fprintf(stderr, "error: unknown --router backend '%s' (dijkstra|ch)\n",
            router_arg.c_str());
    return 1;
  }
  network::CHGraph ch;
  std::unique_ptr<network::FaultyRouter> faulty_owned;
  if (backend == network::RouterBackend::kCH) {
    const std::string ch_file = Get(args, "ch-file");
    bool loaded_from_file = false;
    if (store_mgr != nullptr &&
        store_gen0->store->HasSection(store::kSectionCH)) {
      auto loaded = store_gen0->store->LoadCHGraph();
      if (!loaded.ok()) {
        fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
        return 1;
      }
      ch = std::move(*loaded);
      loaded_from_file = true;
      fprintf(stderr, "loaded contraction hierarchy from store gen %" PRId64
              "\n", store_gen0->generation);
    } else if (!ch_file.empty()) {
      auto loaded = io::LoadCHGraph(ch_file, &net);
      if (loaded.ok()) {
        ch = std::move(*loaded);
        loaded_from_file = true;
        fprintf(stderr, "loaded contraction hierarchy from %s\n",
                ch_file.c_str());
      } else if (loaded.status().code() != core::StatusCode::kNotFound) {
        fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
        return 1;
      }
    }
    if (!loaded_from_file) {
      ch = network::CHGraph::Build(net);
      if (!ch_file.empty()) {
        const core::Status saved = io::SaveCHGraph(ch, ch_file);
        if (!saved.ok()) {
          fprintf(stderr, "error: %s\n", saved.ToString().c_str());
          return 1;
        }
        fprintf(stderr, "contraction hierarchy written to %s\n",
                ch_file.c_str());
      }
    }
    faulty_owned =
        std::make_unique<network::FaultyRouter>(&net, &ch, faults);
  } else {
    faulty_owned = std::make_unique<network::FaultyRouter>(&net, faults);
  }
  network::FaultyRouter& faulty = *faulty_owned;

  // --- The degrade ladder. ---
  std::vector<srv::TierSpec> tiers;
  const std::string model_path = Get(args, "model");
  if (!data.empty() && !model_path.empty()) {
    L::TrainInputs inputs;
    inputs.net = &net;
    inputs.index = &index;
    inputs.num_towers = static_cast<int>(bundle.towers.size());
    inputs.train = &bundle.train;
    L::LhmmConfig cfg;
    cfg.obs_steps = 0;
    cfg.trans_steps = 0;
    cfg.fusion_steps = 0;
    model = L::TrainLhmm(inputs, cfg);
    model->config = L::LhmmConfig{};
    const core::Status load = model->Load(model_path);
    if (!load.ok()) {
      fprintf(stderr, "error: %s\n", load.ToString().c_str());
      return 1;
    }
    const network::RoadNetwork* n = &net;
    const network::GridIndex* idx = &index;
    tiers.push_back({"LHMM", [n, idx, model] {
                       return std::make_unique<L::LhmmMatcher>(n, idx, model);
                     }});
  }
  {
    const network::RoadNetwork* n = &net;
    const network::GridIndex* idx = &index;
    hmm::ClassicModelConfig models;
    tiers.push_back({"IVMM", [n, idx, models] {
                       return std::make_unique<matchers::IvmmMatcher>(n, idx,
                                                                      models, 10);
                     }});
    hmm::EngineConfig stm_engine;
    stm_engine.k = 8;
    tiers.push_back({"STM", [n, idx, models, stm_engine] {
                       return std::make_unique<matchers::StmMatcher>(
                           n, idx, models, stm_engine);
                     }});
  }
  if (store_mgr != nullptr) {
    // Every matcher clone pins the generation that is current when its
    // session opens: a swap flips new sessions to the new mapping while
    // in-flight sessions keep reading the one they started on, and an old
    // generation is unmapped exactly when its last pinned clone is destroyed.
    store::GenerationManager* mgr = store_mgr.get();
    for (srv::TierSpec& t : tiers) {
      const matchers::MatcherFactory inner = t.factory;
      t.factory = [mgr, inner] {
        return std::make_unique<store::PinnedMatcher>(mgr->Current(), inner());
      };
    }
    // Startup materialization is done; drop the bootstrap pin so the initial
    // generation's lifetime too is governed only by the sessions holding it.
    store_gen0.reset();
  }

  // --- The server. ---
  srv::ServerConfig config;
  config.engine.num_threads = GetInt(args, "threads", 4);
  config.engine.lag = GetInt(args, "lag", 8);
  config.engine.shared_router = &faulty;
  config.engine.max_inbox = GetInt(args, "max-inbox", 256);
  config.engine.session_ttl = GetInt(args, "ttl", 0);
  config.admission.open_rate_per_tick = GetDouble(args, "open-rate", 0.0);
  config.admission.open_burst = GetDouble(args, "open-burst", 8.0);
  config.admission.push_rate_per_tick = GetDouble(args, "push-rate", 0.0);
  config.admission.push_burst = GetDouble(args, "push-burst", 64.0);
  config.admission.max_queue_depth = GetInt(args, "max-queue", 0);
  config.admission.max_live_sessions = GetInt(args, "max-sessions", 0);
  config.degrade.overload_queue_depth = GetInt(args, "overload-queue", 0);
  config.degrade.overload_shed = GetInt(args, "overload-shed", 0);
  config.degrade.overload_route_failures =
      GetInt(args, "overload-route-failures", 0);
  config.degrade.downgrade_after = GetInt(args, "downgrade-after", 2);
  config.degrade.recover_after = GetInt(args, "recover-after", 4);
  config.watchdog.stall_ticks = GetInt(args, "stall-ticks", 0);
  config.default_deadline_ticks = GetInt(args, "deadline-ticks", 0);
  config.fault_signal = &faulty;

  srv::DurabilityConfig durable;
  durable.dir = Get(args, "durable");
  if (!io::ParseFsyncPolicy(Get(args, "fsync", "tick"),
                            &durable.journal.fsync)) {
    fprintf(stderr, "error: --fsync must be record, tick, or none\n");
    return 1;
  }
  durable.journal.segment_bytes = GetInt(args, "segment-bytes", 4 << 20);
  durable.keep_snapshots = GetInt(args, "keep-snapshots", 2);
  // Disk-space watermarks: below --disk-low-bytes free the server enters
  // degraded-nondurable mode (journaling suspended, pushes ack DataLoss under
  // --fsync record) instead of tearing writes at ENOSPC; durability restores
  // itself with a fresh checkpoint once free space clears --disk-high-bytes.
  durable.disk_guard.low_watermark_bytes = atoll(
      Get(args, "disk-low-bytes", "0").c_str());
  durable.disk_guard.high_watermark_bytes = args.count("disk-high-bytes")
      ? atoll(Get(args, "disk-high-bytes").c_str())
      : durable.disk_guard.low_watermark_bytes * 2;
  const int checkpoint_every = GetInt(args, "checkpoint-every", 0);

  std::unique_ptr<srv::MatchServer> server;
  const std::string restore = Get(args, "restore");
  if (!durable.dir.empty()) {
    srv::RecoveryReport report;
    auto recovered = srv::Recover(tiers, config, durable, &report);
    if (!recovered.ok()) {
      fprintf(stderr, "error: %s\n", recovered.status().ToString().c_str());
      return 1;
    }
    server = std::move(recovered).value();
    fprintf(stderr,
            "recovered from %s (gen %d): %" PRId64 " of %" PRId64
            " journal records replayed, %" PRId64 " skipped%s%s\n",
            report.snapshot_path.empty() ? "(fresh)"
                                         : report.snapshot_path.c_str(),
            report.snapshot_generation, report.journal_replayed,
            report.journal_records, report.replay_skipped,
            report.journal_torn_tail ? ", torn tail repaired" : "",
            report.journal_corruption.empty() ? "" : ", corruption truncated");
    if (!report.journal_corruption.empty()) {
      fprintf(stderr, "journal corruption: %s\n",
              report.journal_corruption.c_str());
    }
    for (const std::string& skipped : report.snapshots_skipped) {
      fprintf(stderr, "snapshot skipped: %s\n", skipped.c_str());
    }
  } else if (!restore.empty()) {
    auto restored = srv::MatchServer::Restore(restore, tiers, config);
    if (!restored.ok()) {
      fprintf(stderr, "error: %s\n", restored.status().ToString().c_str());
      return 1;
    }
    server = std::move(restored).value();
    fprintf(stderr, "restored %" PRId64 " sessions from %s\n",
            server->num_sessions(), restore.c_str());
  } else {
    server = std::make_unique<srv::MatchServer>(tiers, config);
  }

  // SIGTERM/SIGINT begin a graceful drain instead of killing mid-flight
  // sessions. No SA_RESTART: the blocking stdin read returns so the loop can
  // see the flag.
  struct sigaction sa = {};
  sa.sa_handler = OnTerminate;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  const std::string snapshot = Get(args, "snapshot");
  setvbuf(stdout, nullptr, _IOLBF, 0);
  fprintf(stderr, "lhmm_serve: %zu tiers, tier0=%s; ready\n", tiers.size(),
          server->active_tier_name().c_str());

  // Both transports dispatch through the same CommandProcessor, so the TCP
  // path answers byte-identically to the stdin path by construction.
  srv::CommandOptions cmd_options;
  cmd_options.checkpoint_every = checkpoint_every;
  cmd_options.store = store_mgr.get();

  const std::string listen = Get(args, "listen");
  if (!listen.empty()) {
    // --- TCP mode: length-prefixed frames over a poll-driven accept loop. ---
    srv::NetServerConfig net;
    if (!ParseHostPort(listen, &net.host, &net.port)) {
      fprintf(stderr, "error: --listen wants HOST:PORT, got '%s'\n",
              listen.c_str());
      return 1;
    }
    net.conn_idle_ttl = GetInt(args, "conn-ttl", 0);
    net.max_write_queue_bytes =
        static_cast<size_t>(GetInt(args, "max-write-queue", 4 << 20));
    net.reuse_port = GetInt(args, "reuseport", 0) != 0;
    srv::NetServer net_server(server.get(), cmd_options, net);
    const core::Status bound = net_server.Listen();
    if (!bound.ok()) {
      fprintf(stderr, "error: %s\n", bound.ToString().c_str());
      return 1;
    }
    const std::string port_file = Get(args, "port-file");
    if (!port_file.empty() &&
        !WriteNumberFile(port_file, net_server.port())) {
      fprintf(stderr, "error: cannot write --port-file %s\n",
              port_file.c_str());
      return 1;
    }
    fprintf(stderr, "listening on %s:%d\n", net.host.c_str(),
            net_server.port());
    const core::Status ran = net_server.Run(g_stop);
    if (!ran.ok()) {
      fprintf(stderr, "error: %s\n", ran.ToString().c_str());
      return 1;
    }
    const srv::NetMetrics nm = net_server.metrics();
    fprintf(stderr,
            "net: accepted=%" PRId64 " closed=%" PRId64 " frames_in=%" PRId64
            " frames_out=%" PRId64 " shed=%" PRId64 " codec_errors=%" PRId64
            " reaped_idle=%" PRId64 " disconnects=%" PRId64 "\n",
            nm.accepted, nm.closed, nm.frames_in, nm.frames_out,
            nm.frames_shed, nm.codec_errors, nm.reaped_idle,
            nm.peer_disconnects);
  } else {
    // --- stdin mode (the default): one line in, one line out. ---
    srv::CommandProcessor processor(server.get(), cmd_options);
    std::string line;
    std::string response;
    bool quit = false;
    while (!quit && !g_terminate && std::getline(std::cin, line)) {
      if (processor.Process(line, &response, &quit)) {
        printf("%s\n", response.c_str());
      }
    }
  }

  // Graceful shutdown. Durable mode checkpoints in place (the durable dir IS
  // the snapshot); otherwise drain to --snapshot when one was given.
  if (server->durable()) {
    const core::Status st = server->Checkpoint();
    if (!st.ok()) {
      fprintf(stderr, "shutdown checkpoint failed: %s\n",
              st.ToString().c_str());
      return 1;
    }
    fprintf(stderr, "checkpointed to %s (gen %d)\n", durable.dir.c_str(),
            server->durability_status().snapshot_generation);
  }
  if (!snapshot.empty() && !server->draining()) {
    const core::Status st = server->Drain(snapshot);
    if (!st.ok()) {
      fprintf(stderr, "drain failed: %s\n", st.ToString().c_str());
      return 1;
    }
    fprintf(stderr, "drained to %s\n", snapshot.c_str());
  }
  server->Barrier();
  return 0;
}
