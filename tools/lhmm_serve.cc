// lhmm_serve — the serving front end as a process: srv::MatchServer behind a
// line protocol on stdin, with graceful drain on SIGTERM. One line in, one
// line out, so it scripts from a shell, a test harness, or a socket relay:
//
//   open                          -> ok open <id> tier=<name>
//   push <id> <x> <y> <t> <tower> -> ok push <id> committed=<total>
//   finish <id>                   -> ok finish <id>
//   deadline <id> <tick>          -> ok deadline <id>
//   tick <now>                    -> ok tick <clock> tier=<name>
//   await                         -> ok await            (engine barrier)
//   committed <id>                -> ok committed <id> <n> <seg...>
//   status <id>                   -> ok status <id> <state> <code> pushed=<n>
//   status                        -> ok status <key=value ...>  (server-level:
//                                    journal segments/bytes, last durable
//                                    tick, snapshot generation)
//   stats                         -> ok stats <key=value ...>
//   checkpoint                    -> ok checkpoint gen=<n>  (durable mode)
//   drain <path>                  -> ok drain <path>     (stops admission)
//   quit
//
// Every refusal is a typed "err <Code> <message>" line — admission sheds,
// deadline expiry, quarantine — so clients can implement retry policies
// without parsing prose. SIGTERM (or EOF with --snapshot set) drains every
// live session to the snapshot file; a later run with --restore <file>
// resumes those sessions byte-identically.
//
// Crash durability: --durable <dir> recovers the server from the directory's
// newest valid snapshot plus write-ahead journal suffix (srv::Recover), then
// journals every accepted event there. --fsync record|tick|none picks the
// group-commit policy, --segment-bytes the journal rotation size,
// --keep-snapshots the generations kept, and --checkpoint-every N writes a
// snapshot and compacts the journal every N ticks (0 = only on demand via
// the checkpoint verb and at shutdown). kill -9 at any point loses at most
// the events past the last fsync; a restart with the same --durable dir
// replays the rest byte-identically.
//
// The road network is a generated grid (--grid-rows/--grid-cols/--spacing)
// or a dataset bundle (--data <prefix>). Tiers: with --data and --model, the
// full paper ladder LHMM -> IVMM -> STM; otherwise IVMM -> STM.

#include <csignal>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/strings.h"
#include "hmm/classic_models.h"
#include "io/ch_io.h"
#include "io/dataset_io.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "network/ch_router.h"
#include "network/contraction.h"
#include "network/faulty_router.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "srv/match_server.h"
#include "srv/recovery.h"

using namespace lhmm;  // NOLINT(build/namespaces): CLI driver.
namespace L = ::lhmm::lhmm;

namespace {

volatile std::sig_atomic_t g_terminate = 0;
void OnTerminate(int) { g_terminate = 1; }

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> out;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    out[key] = argv[i + 1];
  }
  return out;
}

std::string Get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback = "") {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int GetInt(const std::map<std::string, std::string>& args,
           const std::string& key, int fallback) {
  int v = 0;
  return core::ParseInt(Get(args, key), &v) ? v : fallback;
}

double GetDouble(const std::map<std::string, std::string>& args,
                 const std::string& key, double fallback) {
  double v = 0.0;
  return core::ParseDouble(Get(args, key), &v) ? v : fallback;
}

void Err(const core::Status& s) {
  printf("err %s %s\n", core::StatusCodeName(s.code()), s.message().c_str());
}

const char* StateName(matchers::SessionState s) {
  switch (s) {
    case matchers::SessionState::kLive: return "live";
    case matchers::SessionState::kFinished: return "finished";
    case matchers::SessionState::kEvicted: return "evicted";
    case matchers::SessionState::kExpired: return "expired";
    case matchers::SessionState::kPoisoned: return "poisoned";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);

  // --- The world: a network, an index, and a (possibly faulty) router. ---
  network::RoadNetwork net;
  std::vector<geo::Point> towers;
  io::DatasetBundle bundle;
  std::shared_ptr<L::LhmmModel> model;
  const std::string data = Get(args, "data");
  if (!data.empty()) {
    auto loaded = io::LoadDatasetBundle(data);
    if (!loaded.ok()) {
      fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    bundle = std::move(loaded).value();
    net = std::move(bundle.net);
  } else {
    net = network::GenerateGridNetwork(GetInt(args, "grid-rows", 10),
                                       GetInt(args, "grid-cols", 10),
                                       GetDouble(args, "spacing", 200.0));
  }
  network::GridIndex index(&net, 300.0);
  network::FaultConfig faults;
  faults.route_failure_rate = GetDouble(args, "route-failure-rate", 0.0);
  faults.latency_rate = GetDouble(args, "latency-rate", 0.0);
  faults.seed = static_cast<uint64_t>(GetInt(args, "seed", 1));
  // Routing backend: --router=ch serves cache misses through a contraction
  // hierarchy (byte-identical results, faster cold queries). --ch-file
  // loads a saved hierarchy when present, else builds one and saves it
  // there, so restarts skip the preprocessing. Fault injection composes
  // with either backend (faults are decided before the route lookup).
  network::RouterBackend backend = network::RouterBackend::kDijkstra;
  const std::string router_arg = Get(args, "router", "dijkstra");
  if (!network::ParseRouterBackend(router_arg, &backend)) {
    fprintf(stderr, "error: unknown --router backend '%s' (dijkstra|ch)\n",
            router_arg.c_str());
    return 1;
  }
  network::CHGraph ch;
  std::unique_ptr<network::FaultyRouter> faulty_owned;
  if (backend == network::RouterBackend::kCH) {
    const std::string ch_file = Get(args, "ch-file");
    bool loaded_from_file = false;
    if (!ch_file.empty()) {
      auto loaded = io::LoadCHGraph(ch_file, &net);
      if (loaded.ok()) {
        ch = std::move(*loaded);
        loaded_from_file = true;
        fprintf(stderr, "loaded contraction hierarchy from %s\n",
                ch_file.c_str());
      } else if (loaded.status().code() != core::StatusCode::kNotFound) {
        fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
        return 1;
      }
    }
    if (!loaded_from_file) {
      ch = network::CHGraph::Build(net);
      if (!ch_file.empty()) {
        const core::Status saved = io::SaveCHGraph(ch, ch_file);
        if (!saved.ok()) {
          fprintf(stderr, "error: %s\n", saved.ToString().c_str());
          return 1;
        }
        fprintf(stderr, "contraction hierarchy written to %s\n",
                ch_file.c_str());
      }
    }
    faulty_owned =
        std::make_unique<network::FaultyRouter>(&net, &ch, faults);
  } else {
    faulty_owned = std::make_unique<network::FaultyRouter>(&net, faults);
  }
  network::FaultyRouter& faulty = *faulty_owned;

  // --- The degrade ladder. ---
  std::vector<srv::TierSpec> tiers;
  const std::string model_path = Get(args, "model");
  if (!data.empty() && !model_path.empty()) {
    L::TrainInputs inputs;
    inputs.net = &net;
    inputs.index = &index;
    inputs.num_towers = static_cast<int>(bundle.towers.size());
    inputs.train = &bundle.train;
    L::LhmmConfig cfg;
    cfg.obs_steps = 0;
    cfg.trans_steps = 0;
    cfg.fusion_steps = 0;
    model = L::TrainLhmm(inputs, cfg);
    model->config = L::LhmmConfig{};
    const core::Status load = model->Load(model_path);
    if (!load.ok()) {
      fprintf(stderr, "error: %s\n", load.ToString().c_str());
      return 1;
    }
    const network::RoadNetwork* n = &net;
    const network::GridIndex* idx = &index;
    tiers.push_back({"LHMM", [n, idx, model] {
                       return std::make_unique<L::LhmmMatcher>(n, idx, model);
                     }});
  }
  {
    const network::RoadNetwork* n = &net;
    const network::GridIndex* idx = &index;
    hmm::ClassicModelConfig models;
    tiers.push_back({"IVMM", [n, idx, models] {
                       return std::make_unique<matchers::IvmmMatcher>(n, idx,
                                                                      models, 10);
                     }});
    hmm::EngineConfig stm_engine;
    stm_engine.k = 8;
    tiers.push_back({"STM", [n, idx, models, stm_engine] {
                       return std::make_unique<matchers::StmMatcher>(
                           n, idx, models, stm_engine);
                     }});
  }

  // --- The server. ---
  srv::ServerConfig config;
  config.engine.num_threads = GetInt(args, "threads", 4);
  config.engine.lag = GetInt(args, "lag", 8);
  config.engine.shared_router = &faulty;
  config.engine.max_inbox = GetInt(args, "max-inbox", 256);
  config.engine.session_ttl = GetInt(args, "ttl", 0);
  config.admission.open_rate_per_tick = GetDouble(args, "open-rate", 0.0);
  config.admission.open_burst = GetDouble(args, "open-burst", 8.0);
  config.admission.push_rate_per_tick = GetDouble(args, "push-rate", 0.0);
  config.admission.push_burst = GetDouble(args, "push-burst", 64.0);
  config.admission.max_queue_depth = GetInt(args, "max-queue", 0);
  config.admission.max_live_sessions = GetInt(args, "max-sessions", 0);
  config.degrade.overload_queue_depth = GetInt(args, "overload-queue", 0);
  config.degrade.overload_shed = GetInt(args, "overload-shed", 0);
  config.degrade.overload_route_failures =
      GetInt(args, "overload-route-failures", 0);
  config.degrade.downgrade_after = GetInt(args, "downgrade-after", 2);
  config.degrade.recover_after = GetInt(args, "recover-after", 4);
  config.watchdog.stall_ticks = GetInt(args, "stall-ticks", 0);
  config.default_deadline_ticks = GetInt(args, "deadline-ticks", 0);
  config.fault_signal = &faulty;

  srv::DurabilityConfig durable;
  durable.dir = Get(args, "durable");
  if (!io::ParseFsyncPolicy(Get(args, "fsync", "tick"),
                            &durable.journal.fsync)) {
    fprintf(stderr, "error: --fsync must be record, tick, or none\n");
    return 1;
  }
  durable.journal.segment_bytes = GetInt(args, "segment-bytes", 4 << 20);
  durable.keep_snapshots = GetInt(args, "keep-snapshots", 2);
  const int checkpoint_every = GetInt(args, "checkpoint-every", 0);

  std::unique_ptr<srv::MatchServer> server;
  const std::string restore = Get(args, "restore");
  if (!durable.dir.empty()) {
    srv::RecoveryReport report;
    auto recovered = srv::Recover(tiers, config, durable, &report);
    if (!recovered.ok()) {
      fprintf(stderr, "error: %s\n", recovered.status().ToString().c_str());
      return 1;
    }
    server = std::move(recovered).value();
    fprintf(stderr,
            "recovered from %s (gen %d): %" PRId64 " of %" PRId64
            " journal records replayed, %" PRId64 " skipped%s%s\n",
            report.snapshot_path.empty() ? "(fresh)"
                                         : report.snapshot_path.c_str(),
            report.snapshot_generation, report.journal_replayed,
            report.journal_records, report.replay_skipped,
            report.journal_torn_tail ? ", torn tail repaired" : "",
            report.journal_corruption.empty() ? "" : ", corruption truncated");
    if (!report.journal_corruption.empty()) {
      fprintf(stderr, "journal corruption: %s\n",
              report.journal_corruption.c_str());
    }
    for (const std::string& skipped : report.snapshots_skipped) {
      fprintf(stderr, "snapshot skipped: %s\n", skipped.c_str());
    }
  } else if (!restore.empty()) {
    auto restored = srv::MatchServer::Restore(restore, tiers, config);
    if (!restored.ok()) {
      fprintf(stderr, "error: %s\n", restored.status().ToString().c_str());
      return 1;
    }
    server = std::move(restored).value();
    fprintf(stderr, "restored %" PRId64 " sessions from %s\n",
            server->num_sessions(), restore.c_str());
  } else {
    server = std::make_unique<srv::MatchServer>(tiers, config);
  }

  // SIGTERM/SIGINT begin a graceful drain instead of killing mid-flight
  // sessions. No SA_RESTART: the blocking stdin read returns so the loop can
  // see the flag.
  struct sigaction sa = {};
  sa.sa_handler = OnTerminate;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  const std::string snapshot = Get(args, "snapshot");
  setvbuf(stdout, nullptr, _IOLBF, 0);
  fprintf(stderr, "lhmm_serve: %zu tiers, tier0=%s; ready\n", tiers.size(),
          server->active_tier_name().c_str());

  std::string line;
  bool quit = false;
  while (!quit && !g_terminate && std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd[0] == '#') continue;
    if (cmd == "quit") {
      quit = true;
    } else if (cmd == "open") {
      core::Result<int64_t> id = server->OpenSession();
      if (!id.ok()) {
        Err(id.status());
      } else {
        printf("ok open %" PRId64 " tier=%s\n", *id,
               server->tier_name(server->session_tier(*id)).c_str());
      }
    } else if (cmd == "push") {
      int64_t id;
      traj::TrajPoint p;
      long tower;
      if (!(in >> id >> p.pos.x >> p.pos.y >> p.t >> tower)) {
        Err(core::Status::InvalidArgument("usage: push <id> <x> <y> <t> <tower>"));
        continue;
      }
      p.tower = static_cast<traj::TowerId>(tower);
      const core::Status st = server->Push(id, p);
      if (!st.ok()) {
        Err(st);
      } else {
        printf("ok push %" PRId64 "\n", id);
      }
    } else if (cmd == "finish") {
      int64_t id;
      if (!(in >> id)) {
        Err(core::Status::InvalidArgument("usage: finish <id>"));
        continue;
      }
      const core::Status st = server->Finish(id);
      st.ok() ? static_cast<void>(printf("ok finish %" PRId64 "\n", id)) : Err(st);
    } else if (cmd == "deadline") {
      int64_t id, tick;
      if (!(in >> id >> tick)) {
        Err(core::Status::InvalidArgument("usage: deadline <id> <tick>"));
        continue;
      }
      const core::Status st = server->SetDeadline(id, tick);
      st.ok() ? static_cast<void>(printf("ok deadline %" PRId64 "\n", id)) : Err(st);
    } else if (cmd == "tick") {
      int64_t now;
      if (!(in >> now)) {
        Err(core::Status::InvalidArgument("usage: tick <now>"));
        continue;
      }
      server->Tick(now);
      if (server->durable() && checkpoint_every > 0 &&
          server->clock() % checkpoint_every == 0) {
        const core::Status st = server->Checkpoint();
        if (!st.ok()) {
          fprintf(stderr, "checkpoint failed: %s\n", st.ToString().c_str());
        }
      }
      printf("ok tick %" PRId64 " tier=%s\n", server->clock(),
             server->active_tier_name().c_str());
    } else if (cmd == "await") {
      server->Barrier();
      printf("ok await\n");
    } else if (cmd == "committed") {
      int64_t id;
      if (!(in >> id)) {
        Err(core::Status::InvalidArgument("usage: committed <id>"));
        continue;
      }
      if (id < 0 || id >= server->num_sessions()) {
        Err(core::Status::NotFound("no session " + std::to_string(id)));
        continue;
      }
      const std::vector<network::SegmentId>& path = server->Committed(id);
      printf("ok committed %" PRId64 " %zu", id, path.size());
      for (const network::SegmentId s : path) printf(" %d", s);
      printf("\n");
    } else if (cmd == "status") {
      int64_t id;
      if (!(in >> id)) {
        // No id: server-level status, durability included. The crash harness
        // and operators read the journal/snapshot fields from here.
        const srv::DurabilityStatus d = server->durability_status();
        printf("ok status clock=%" PRId64 " tier=%s durable=%d"
               " journal_segments=%" PRId64 " journal_bytes=%" PRId64
               " last_durable_index=%" PRId64 " last_durable_tick=%" PRId64
               " snapshot_gen=%d journal_errors=%" PRId64 "\n",
               server->clock(), server->active_tier_name().c_str(),
               d.enabled ? 1 : 0, d.journal_segments, d.journal_bytes,
               d.last_durable_index, d.last_durable_tick,
               d.snapshot_generation, d.journal_errors);
        continue;
      }
      if (id < 0 || id >= server->num_sessions()) {
        Err(core::Status::NotFound("no session " + std::to_string(id)));
        continue;
      }
      // pushed= lets a client resume a session after a crash: recovery rolls
      // back to the durable prefix, and this is where it ends.
      const core::Status st = server->SessionStatus(id);
      printf("ok status %" PRId64 " %s %s pushed=%" PRId64 "\n", id,
             StateName(server->state(id)), core::StatusCodeName(st.code()),
             server->Stats(id).points_pushed);
    } else if (cmd == "stats") {
      const srv::ServerMetrics m = server->metrics();
      printf("ok stats clock=%" PRId64 " tier=%s live=%" PRId64
             " queue=%" PRId64 " opens=%" PRId64 "/%" PRId64
             " pushes=%" PRId64 "/%" PRId64 " expired=%" PRId64
             " quarantined=%" PRId64 " evicted=%" PRId64 " downgrades=%" PRId64
             " upgrades=%" PRId64 "\n",
             m.clock, server->active_tier_name().c_str(), m.live_sessions,
             m.queue_depth, m.opens_admitted, m.opens_shed, m.pushes_admitted,
             m.pushes_shed, m.expired_sessions, m.quarantined_sessions,
             m.evicted_sessions, m.downgrades, m.upgrades);
    } else if (cmd == "checkpoint") {
      const core::Status st = server->Checkpoint();
      if (!st.ok()) {
        Err(st);
      } else {
        printf("ok checkpoint gen=%d\n",
               server->durability_status().snapshot_generation);
      }
    } else if (cmd == "drain") {
      std::string path;
      if (!(in >> path)) {
        Err(core::Status::InvalidArgument("usage: drain <path>"));
        continue;
      }
      const core::Status st = server->Drain(path);
      st.ok() ? static_cast<void>(printf("ok drain %s\n", path.c_str())) : Err(st);
    } else {
      Err(core::Status::InvalidArgument("unknown command '" + cmd + "'"));
    }
  }

  // Graceful shutdown. Durable mode checkpoints in place (the durable dir IS
  // the snapshot); otherwise drain to --snapshot when one was given.
  if (server->durable()) {
    const core::Status st = server->Checkpoint();
    if (!st.ok()) {
      fprintf(stderr, "shutdown checkpoint failed: %s\n",
              st.ToString().c_str());
      return 1;
    }
    fprintf(stderr, "checkpointed to %s (gen %d)\n", durable.dir.c_str(),
            server->durability_status().snapshot_generation);
  }
  if (!snapshot.empty() && !server->draining()) {
    const core::Status st = server->Drain(snapshot);
    if (!st.ok()) {
      fprintf(stderr, "drain failed: %s\n", st.ToString().c_str());
      return 1;
    }
    fprintf(stderr, "drained to %s\n", snapshot.c_str());
  }
  server->Barrier();
  return 0;
}
