// lhmm_store — builds and manages the versioned mmap-able asset store that
// lhmm_serve/lhmm_fleet map as their shared data plane (src/store/format.h
// documents the file layout, src/store/generations.h the root layout).
//
//   lhmm_store build   --root DIR --gen N [--grid-rows R --grid-cols C
//                      --spacing S | --data PREFIX [--model PATH]]
//                      [--publish 1]
//   lhmm_store validate --root DIR --gen N          (or --file PATH)
//   lhmm_store publish  --root DIR --gen N          (validates first)
//   lhmm_store list     --root DIR
//   lhmm_store info     --root DIR --gen N          (or --file PATH)
//
// `build` serializes the heavy immutable assets — road network, grid index,
// contraction hierarchy, and (with --data/--model) the trained LHMM weights —
// into one relocatable store-<gen>.lds under <root>/gen-<N>/, written with
// the atomic temp+rename protocol so a crashed build never leaves a file a
// swap could find. Nothing observes the new generation until `publish` (or
// --publish 1) atomically points <root>/CURRENT at it; a serving fleet picks
// it up via the `swap <gen>` verb, which re-validates every byte before
// flipping and keeps the old generation serving on any reject.
//
// `validate` runs exactly the consumer-side check (MappedStore::Open): magic,
// header CRC, format version, total-size torn-tail guard, TOC CRC, and every
// section's bounds + CRC. A corrupt store prints the typed file+offset error
// and exits nonzero — the same error a serving worker would log when
// rejecting it as a swap candidate.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "core/strings.h"
#include "io/dataset_io.h"
#include "lhmm/trainer.h"
#include "network/contraction.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "store/generations.h"
#include "store/mapped_store.h"
#include "store/store_writer.h"

using namespace lhmm;  // NOLINT(build/namespaces): CLI driver.
namespace L = ::lhmm::lhmm;

namespace {

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> out;
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    out[key] = argv[i + 1];
  }
  return out;
}

std::string Get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback = "") {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int GetInt(const std::map<std::string, std::string>& args,
           const std::string& key, int fallback) {
  int v = 0;
  return core::ParseInt(Get(args, key), &v) ? v : fallback;
}

double GetDouble(const std::map<std::string, std::string>& args,
                 const std::string& key, double fallback) {
  double v = 0.0;
  return core::ParseDouble(Get(args, key), &v) ? v : fallback;
}

int Usage() {
  fprintf(stderr,
          "usage: lhmm_store <build|validate|publish|list|info> [--root DIR]"
          " [--gen N] [--file PATH]\n"
          "  build: --root DIR --gen N [--grid-rows R --grid-cols C"
          " --spacing S | --data PREFIX [--model PATH]] [--publish 1]\n");
  return 2;
}

/// Resolves --file, or --root/--gen, into a store path. Empty on bad args.
std::string ResolveStorePath(const std::map<std::string, std::string>& args) {
  const std::string file = Get(args, "file");
  if (!file.empty()) return file;
  const std::string root = Get(args, "root");
  const int gen = GetInt(args, "gen", -1);
  if (root.empty() || gen < 0) return "";
  return store::StorePath(root, gen);
}

int Build(const std::map<std::string, std::string>& args) {
  const std::string root = Get(args, "root");
  const int64_t gen = GetInt(args, "gen", -1);
  if (root.empty() || gen < 0) return Usage();

  // The same world lhmm_serve builds in owned mode, so a store-backed worker
  // and an owned-mode worker agree byte for byte.
  network::RoadNetwork net;
  io::DatasetBundle bundle;
  std::vector<std::pair<std::string, std::string>> meta;
  const std::string data = Get(args, "data");
  if (!data.empty()) {
    auto loaded = io::LoadDatasetBundle(data);
    if (!loaded.ok()) {
      fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    bundle = std::move(loaded).value();
    net = std::move(bundle.net);
    meta.emplace_back("source", "data:" + data);
  } else {
    const int rows = GetInt(args, "grid-rows", 10);
    const int cols = GetInt(args, "grid-cols", 10);
    const double spacing = GetDouble(args, "spacing", 200.0);
    net = network::GenerateGridNetwork(rows, cols, spacing);
    meta.emplace_back("source",
                      core::StrFormat("grid:%dx%d@%g", rows, cols, spacing));
  }
  network::GridIndex index(&net, 300.0);
  network::CHGraph ch = network::CHGraph::Build(net);

  store::StoreWriter w;
  w.AddSection(store::kSectionNetwork, store::EncodeNetwork(net));
  w.AddSection(store::kSectionGrid, store::EncodeGridIndex(index));
  w.AddSection(store::kSectionCH, store::EncodeCHGraph(ch));

  const std::string model_path = Get(args, "model");
  if (!data.empty() && !model_path.empty()) {
    // Same shell-then-load dance as lhmm_serve: the architecture comes from
    // the default config, the weights from the trained file.
    L::TrainInputs inputs;
    inputs.net = &net;
    inputs.index = &index;
    inputs.num_towers = static_cast<int>(bundle.towers.size());
    inputs.train = &bundle.train;
    L::LhmmConfig cfg;
    cfg.obs_steps = 0;
    cfg.trans_steps = 0;
    cfg.fusion_steps = 0;
    std::shared_ptr<L::LhmmModel> model = L::TrainLhmm(inputs, cfg);
    model->config = L::LhmmConfig{};
    const core::Status load = model->Load(model_path);
    if (!load.ok()) {
      fprintf(stderr, "error: %s\n", load.ToString().c_str());
      return 1;
    }
    w.AddSection(store::kSectionLhmm, store::EncodeLhmmWeights(*model));
    meta.emplace_back("model", model_path);
  }
  meta.emplace_back("nodes", std::to_string(net.num_nodes()));
  meta.emplace_back("segments", std::to_string(net.num_segments()));
  meta.emplace_back("shortcuts", std::to_string(ch.num_shortcuts));
  w.AddSection(store::kSectionMeta, store::EncodeMeta(meta));

  mkdir(root.c_str(), 0755);
  mkdir(store::GenerationDir(root, gen).c_str(), 0755);
  const std::string path = store::StorePath(root, gen);
  const uint64_t fingerprint = network::CHGraph::NetworkFingerprint(net);
  const core::Status written =
      w.Write(path, fingerprint, static_cast<uint64_t>(gen));
  if (!written.ok()) {
    fprintf(stderr, "error: %s\n", written.ToString().c_str());
    return 1;
  }
  // Re-validate through the consumer path before reporting success (and
  // before any --publish): a store this tool claims to have built must be
  // swappable as-is.
  auto mapped = store::MappedStore::Open(path, fingerprint);
  if (!mapped.ok()) {
    fprintf(stderr, "error: self-check failed: %s\n",
            mapped.status().ToString().c_str());
    return 1;
  }
  printf("built %s: gen=%" PRId64 " bytes=%" PRId64 " fingerprint=%016" PRIx64
         "\n",
         path.c_str(), gen, (*mapped)->bytes(), fingerprint);
  if (GetInt(args, "publish", 0) != 0) {
    const core::Status published = store::PublishCurrent(root, gen);
    if (!published.ok()) {
      fprintf(stderr, "error: %s\n", published.ToString().c_str());
      return 1;
    }
    printf("published gen=%" PRId64 "\n", gen);
  }
  return 0;
}

int Validate(const std::map<std::string, std::string>& args) {
  const std::string path = ResolveStorePath(args);
  if (path.empty()) return Usage();
  auto mapped = store::MappedStore::Open(path);
  if (!mapped.ok()) {
    fprintf(stderr, "invalid: %s\n", mapped.status().ToString().c_str());
    return 1;
  }
  printf("ok %s: gen=%" PRIu64 " bytes=%" PRId64 " fingerprint=%016" PRIx64
         "\n",
         path.c_str(), (*mapped)->generation(), (*mapped)->bytes(),
         (*mapped)->fingerprint());
  return 0;
}

int Publish(const std::map<std::string, std::string>& args) {
  const std::string root = Get(args, "root");
  const int64_t gen = GetInt(args, "gen", -1);
  if (root.empty() || gen < 0) return Usage();
  // Publish is the commit point: never point CURRENT at bytes that do not
  // validate right now.
  auto mapped = store::MappedStore::Open(store::StorePath(root, gen));
  if (!mapped.ok()) {
    fprintf(stderr, "refusing to publish: %s\n",
            mapped.status().ToString().c_str());
    return 1;
  }
  const core::Status published = store::PublishCurrent(root, gen);
  if (!published.ok()) {
    fprintf(stderr, "error: %s\n", published.ToString().c_str());
    return 1;
  }
  printf("published gen=%" PRId64 "\n", gen);
  return 0;
}

int List(const std::map<std::string, std::string>& args) {
  const std::string root = Get(args, "root");
  if (root.empty()) return Usage();
  const auto current = store::ReadCurrent(root);
  for (const int64_t gen : store::ListGenerations(root)) {
    auto mapped = store::MappedStore::Open(store::StorePath(root, gen));
    if (mapped.ok()) {
      printf("gen=%" PRId64 " bytes=%" PRId64 " fingerprint=%016" PRIx64 "%s\n",
             gen, (*mapped)->bytes(), (*mapped)->fingerprint(),
             current.ok() && *current == gen ? " CURRENT" : "");
    } else {
      printf("gen=%" PRId64 " INVALID (%s)\n", gen,
             mapped.status().ToString().c_str());
    }
  }
  return 0;
}

int Info(const std::map<std::string, std::string>& args) {
  const std::string path = ResolveStorePath(args);
  if (path.empty()) return Usage();
  auto mapped = store::MappedStore::Open(path);
  if (!mapped.ok()) {
    fprintf(stderr, "invalid: %s\n", mapped.status().ToString().c_str());
    return 1;
  }
  const auto& s = **mapped;
  printf("%s\n  gen=%" PRIu64 " bytes=%" PRId64 " fingerprint=%016" PRIx64
         "\n",
         path.c_str(), s.generation(), s.bytes(), s.fingerprint());
  for (const uint32_t tag :
       {store::kSectionMeta, store::kSectionNetwork, store::kSectionGrid,
        store::kSectionCH, store::kSectionLhmm, store::kSectionSeq2Seq}) {
    auto view = s.Section(tag);
    if (!view.ok()) continue;
    printf("  section %s: offset=%" PRIu64 " bytes=%" PRIu64 "\n",
           store::TagName(tag).c_str(), view->offset, view->bytes);
  }
  for (const auto& [key, value] : s.Meta()) {
    printf("  meta %s=%s\n", key.c_str(), value.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string verb = argv[1];
  const auto args = ParseArgs(argc, argv);
  if (verb == "build") return Build(args);
  if (verb == "validate") return Validate(args);
  if (verb == "publish") return Publish(args);
  if (verb == "list") return List(args);
  if (verb == "info") return Info(args);
  return Usage();
}
