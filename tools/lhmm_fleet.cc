// lhmm_fleet — the self-healing multi-process front end: fork/execs N
// lhmm_serve workers behind srv::Supervisor and keeps them alive.
//
//   lhmm_fleet --serve-bin build/tools/lhmm_serve --workers 4 \
//              --dir /tmp/fleet --durable 1 --port 7777
//
// Topology: with --port P every worker binds the SAME port via SO_REUSEPORT
// and the kernel spreads incoming connections across the fleet; without it
// each worker takes an ephemeral port and publishes it through the atomic
// --port-file handshake (dir/w<k>/port) for clients that address workers
// individually (srv::ResilientClient). Either way each worker owns a private
// journal/snapshot directory (dir/w<k>), so a crashed worker restarts into a
// srv::Recover replay of exactly its own sessions.
//
// Supervision: exits are reaped with waitpid; a clean exit (status 0) stays
// down, a crash restarts after deterministic exponential backoff + jitter
// (--backoff-base-ms/--backoff-cap-ms), and --breaker-crashes M within
// --breaker-window-ms trips the per-worker crash-loop breaker — the worker is
// parked and the rest of the fleet keeps serving degraded. With
// --health-interval-ms the supervisor also dials each worker's published port
// and sends the `health` verb; --health-misses consecutive silent probes get
// the wedged worker SIGKILLed and restarted. SIGTERM/SIGINT fan out SIGTERM
// to every worker for a whole-fleet graceful drain (each worker runs its
// usual checkpoint shutdown), waiting --drain-grace-ms before SIGKILLing
// stragglers.
//
// One logical tick = one millisecond of wall time, so every *-ms flag maps
// directly onto the supervisor's injectable clock.

#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/strings.h"
#include "srv/supervisor.h"

using namespace lhmm;  // NOLINT(build/namespaces): CLI driver.

namespace {

volatile std::sig_atomic_t g_terminate = 0;
void OnTerminate(int) { g_terminate = 1; }
void OnChild(int) {}  // Wake the sleep so exits are reaped promptly.

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> out;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    out[key] = argv[i + 1];
  }
  return out;
}

std::string Get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback = "") {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int GetInt(const std::map<std::string, std::string>& args,
           const std::string& key, int fallback) {
  int v = 0;
  return core::ParseInt(Get(args, key), &v) ? v : fallback;
}

int64_t NowMs(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::signal(SIGPIPE, SIG_IGN);  // Health probes write to real sockets.
  const auto args = ParseArgs(argc, argv);
  const std::string serve_bin = Get(args, "serve-bin");
  if (serve_bin.empty()) {
    fprintf(stderr, "usage: lhmm_fleet --serve-bin PATH [--workers N]"
                    " [--dir BASE] [--port P] [--threads T] [--durable 1]\n");
    return 2;
  }
  const int workers = GetInt(args, "workers", 4);
  const std::string base = Get(args, "dir", "/tmp/lhmm-fleet");
  const int shared_port = GetInt(args, "port", 0);
  const std::string threads = std::to_string(GetInt(args, "threads", 4));
  const bool durable = GetInt(args, "durable", 0) != 0;
  const std::string fsync_policy = Get(args, "fsync", "record");
  const int drain_grace_ms = GetInt(args, "drain-grace-ms", 10000);
  // Shared data plane: every worker maps the same versioned store root, so
  // fleet memory stops scaling with the worker count and `swap`/`rollback`
  // fan out as plain verbs to each worker's port.
  const std::string store_root = Get(args, "store");

  mkdir(base.c_str(), 0755);
  std::vector<srv::WorkerSpec> specs;
  for (int w = 0; w < workers; ++w) {
    const std::string dir = base + "/w" + std::to_string(w);
    mkdir(dir.c_str(), 0755);
    srv::WorkerSpec spec;
    spec.name = "w" + std::to_string(w);
    spec.port_file = dir + "/port";
    spec.argv = {serve_bin, "--threads", threads,
                 "--port-file", spec.port_file,
                 "--pid-file", dir + "/pid"};
    if (shared_port > 0) {
      spec.argv.push_back("--listen");
      spec.argv.push_back(core::StrFormat("0.0.0.0:%d", shared_port));
      spec.argv.push_back("--reuseport");
      spec.argv.push_back("1");
    } else {
      spec.argv.push_back("--listen");
      spec.argv.push_back("127.0.0.1:0");
    }
    if (durable) {
      spec.argv.push_back("--durable");
      spec.argv.push_back(dir);
      spec.argv.push_back("--fsync");
      spec.argv.push_back(fsync_policy);
    }
    if (!store_root.empty()) {
      spec.argv.push_back("--store");
      spec.argv.push_back(store_root);
    }
    specs.push_back(std::move(spec));
  }

  srv::SupervisorConfig config;
  config.backoff.base_ticks = GetInt(args, "backoff-base-ms", 100);
  config.backoff.cap_ticks = GetInt(args, "backoff-cap-ms", 5000);
  config.breaker.max_crashes = GetInt(args, "breaker-crashes", 5);
  config.breaker.window_ticks = GetInt(args, "breaker-window-ms", 60000);
  config.health_interval_ticks = GetInt(args, "health-interval-ms", 1000);
  config.health_grace_ticks = GetInt(args, "health-grace-ms", 3000);
  config.health_misses = GetInt(args, "health-misses", 3);
  config.health_timeout_ms = GetInt(args, "health-timeout-ms", 500);

  struct sigaction sa = {};
  sa.sa_handler = OnTerminate;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  struct sigaction sc = {};
  sc.sa_handler = OnChild;
  sigaction(SIGCHLD, &sc, nullptr);

  const auto t0 = std::chrono::steady_clock::now();
  srv::Supervisor sup(std::move(specs), config);
  const core::Status started = sup.StartAll(NowMs(t0));
  if (!started.ok()) {
    fprintf(stderr, "lhmm_fleet: %s\n", started.ToString().c_str());
  }
  fprintf(stderr, "lhmm_fleet: %d workers under %s (%s)\n", workers,
          serve_bin.c_str(),
          shared_port > 0
              ? core::StrFormat("SO_REUSEPORT :%d", shared_port).c_str()
              : "per-worker ports");

  int64_t last_report = 0;
  while (g_terminate == 0) {
    sup.Poll(NowMs(t0));
    if (sup.AllSettled()) break;  // Everything parked or exited clean.
    const int64_t now = NowMs(t0);
    if (now - last_report >= 5000) {
      last_report = now;
      const srv::SupervisorMetrics m = sup.metrics();
      fprintf(stderr,
              "lhmm_fleet: running=%" PRId64 " parked=%" PRId64
              " restarts=%" PRId64 " crashes=%" PRId64 " health_kills=%" PRId64
              "\n",
              m.running, m.parked, m.restarts, m.crashes, m.health_kills);
      // Per-worker data-plane view: store generation (from health probes) and
      // RSS. Mid-rollout, a fleet with generation skew shows it right here.
      for (int i = 0; i < sup.num_workers(); ++i) {
        const srv::WorkerStatus& st = sup.status(i);
        fprintf(stderr,
                "lhmm_fleet:   %-8s %-8s store_gen=%" PRId64 " rss_kb=%" PRId64
                "\n",
                sup.spec(i).name.c_str(), srv::WorkerStateName(st.state),
                st.store_gen, srv::ReadRssKb(sup.pid(i)));
      }
    }
    usleep(50 * 1000);  // SIGCHLD/SIGTERM interrupt this early.
  }

  if (g_terminate != 0) {
    fprintf(stderr, "lhmm_fleet: draining (SIGTERM fan-out)\n");
    sup.Drain();
  }
  const int stragglers = sup.WaitAll(drain_grace_ms);
  const srv::SupervisorMetrics m = sup.metrics();
  for (int i = 0; i < sup.num_workers(); ++i) {
    const srv::WorkerStatus& st = sup.status(i);
    fprintf(stderr,
            "lhmm_fleet: %-8s %-8s restarts=%" PRId64 " crashes=%" PRId64
            " clean_exits=%" PRId64 " health_kills=%" PRId64
            " store_gen=%" PRId64 "\n",
            sup.spec(i).name.c_str(), srv::WorkerStateName(st.state),
            st.restarts, st.crashes, st.clean_exits, st.health_kills,
            st.store_gen);
  }
  if (stragglers > 0) {
    fprintf(stderr, "lhmm_fleet: %d stragglers SIGKILLed after %dms grace\n",
            stragglers, drain_grace_ms);
  }
  // A requested drain succeeds if nothing had to be SIGKILLed; an on-its-own
  // settle succeeds only if no worker ended parked (crash-looped).
  if (g_terminate != 0) return stragglers == 0 ? 0 : 1;
  return m.parked == 0 ? 0 : 1;
}
