#!/usr/bin/env bash
# Builds the arithmetic/serialization-heavy tests under
# UndefinedBehaviorSanitizer and runs them.
# Usage: tools/run_ubsan_tests.sh [extra ctest args...]
#
# Uses a dedicated build tree (build-ubsan) so the instrumented objects never
# mix with the regular, TSan, or ASan builds. Mirrors tools/run_tsan_tests.sh;
# see tools/run_sanitizer_suite.sh for the combined pass.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-ubsan
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -B "${BUILD_DIR}" -S . -DLHMM_SANITIZE=undefined
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target core_test hmm_test io_test durability_test env_fault_test serve_test frame_test net_server_test supervisor_test ch_test store_test lhmm_serve lhmm_loadgen

# -fno-sanitize-recover=all makes the first UB finding abort, so a plain run
# is the assertion. The suite leans on the paths where UB is likeliest: the
# journal's CRC/length framing and byte-level fault injection (durability_test
# deliberately bit-flips and truncates records before re-parsing them), the
# snapshot/CSV parsers over corrupt input (io_test), HMM log-space arithmetic
# (hmm_test), the contraction hierarchy's CSR assembly, corridor
# arithmetic, and fault-injected on-disk format (ch_test), and the serving
# front end end-to-end — including the kill -9
# crash gauntlet against a UBSan-instrumented lhmm_serve, over stdin and
# over the TCP frame transport (frame_test's byte-level codec fuzzing is
# exactly where length-arithmetic UB would hide). supervisor_test pins the
# backoff doubling loop (the `base << attempt` shift-overflow trap) and the
# breaker's window arithmetic; the fleet gauntlet runs the whole
# supervision stack instrumented. store_test parses deliberately corrupted
# store files (truncated headers, flipped bits, patched version fields) —
# exactly where offset arithmetic against attacker-shaped lengths would trap —
# and the swap gauntlet feeds the same corrupt candidates to live workers.
# env_fault_test and the chaos gauntlet additionally run the io::Env
# fault-injection plane under the sanitizer: scheduled ENOSPC/EMFILE
# storms, seal-and-rotate journal repair, and the degraded-nondurable
# state machine's enter/exit transitions.
export UBSAN_OPTIONS="print_stacktrace=1"
cd "${BUILD_DIR}"
./tests/core_test
./tests/hmm_test
./tests/io_test
./tests/durability_test
./tests/env_fault_test
./tests/serve_test
./tests/frame_test
./tests/net_server_test
./tests/ch_test
./tools/lhmm_loadgen --crash-at 5,23,57 --crash-fault cycle \
  --serve-bin ./tools/lhmm_serve --threads 4
./tools/lhmm_loadgen --crash-at 5,23,57 --crash-fault cycle \
  --transport socket --serve-bin ./tools/lhmm_serve --threads 4
./tools/lhmm_loadgen --net-smoke 1 --connections 64 \
  --serve-bin ./tools/lhmm_serve --threads 4
./tests/supervisor_test
./tools/lhmm_loadgen --fleet-gauntlet 1 --workers 3 \
  --serve-bin ./tools/lhmm_serve --threads 2
./tests/store_test
./tools/lhmm_loadgen --swap-gauntlet 1 --workers 3 \
  --serve-bin ./tools/lhmm_serve --threads 2
./tools/lhmm_loadgen --chaos-gauntlet 1 \
  --serve-bin ./tools/lhmm_serve --threads 2

echo "UBSan pass complete: no undefined behavior reported."
