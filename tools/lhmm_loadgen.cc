// lhmm_loadgen — deterministic, fault-injecting load generator for
// srv::MatchServer. It drives the serving front end in-process with a fleet
// of simulated clients that open sessions, stream points, and react to typed
// rejects the way a well-behaved client should: retry with exponential
// backoff plus jitter on kResourceExhausted/kUnavailable, give up on
// non-retryable codes. Route failures and latency are injected underneath
// via network::FaultyRouter, so the degrade ladder and quarantine paths see
// real pressure.
//
// Everything runs on the server's logical clock with a seeded core::Rng, so
// a given flag set replays the exact same offered load (worker timing only
// affects queue-depth shedding, never the token buckets or the ladder's
// sample sequence at a barrier).
//
//   lhmm_loadgen --smoke 1          # small run + accounting invariants; CI
//   lhmm_loadgen --sessions 200 --points 40 --route-failure-rate 0.05
//
// Exit status is nonzero when an accounting invariant breaks (a shed request
// not matched by a typed reject, a session stuck non-terminal — i.e. a
// silent drop or a deadlock) so the binary doubles as an end-to-end check.
//
// Crash gauntlet (--crash-at): drives a REAL lhmm_serve subprocess over its
// line protocol, SIGKILLs it after the k-th acknowledged push for each k in
// the comma-separated list, optionally mangles the journal the way a dying
// disk would (--crash-fault none|torn|bitflip|cycle), restarts the server on
// the same --durable directory, resumes every session from the server's
// reported pushed= progress, and diffs the final committed output against an
// uninterrupted oracle run of the same binary. Byte-identical or exit 1.
//
//   lhmm_loadgen --crash-at 5,23,57 --crash-fault cycle \
//                --serve-bin build/tools/lhmm_serve --threads 8
//
// With --transport socket the same gauntlet drives lhmm_serve over its TCP
// frame protocol (--listen 127.0.0.1:0 --port-file, length-prefixed frames)
// instead of stdin pipes — same verbs, same kill points, same byte-identity
// requirement, so the socket transport earns exactly the durability story the
// stdin path already has.
//
// Net smoke (--net-smoke 1): spawns lhmm_serve on a loopback listener and
// drives it with a fleet of REAL concurrent TCP connections (--connections,
// default 256) — every connection established before the first timed request,
// each running an open/push*/finish session over frames — then reports
// p50/p99/p999 round-trip latency. Any protocol failure, typed reject, or
// lost response is a nonzero exit, so CI runs it as a socket soak test.
//
//   lhmm_loadgen --net-smoke 1 --connections 256 \
//                --serve-bin build/tools/lhmm_serve --threads 4
//
// Fleet gauntlet (--fleet-gauntlet 1): runs a real multi-process fleet —
// N durable lhmm_serve workers plus one deliberately crash-looping worker —
// under srv::Supervisor, drives every worker concurrently through
// srv::ResilientClient while killing each one at least once under load
// (SIGKILL, a SIGKILL with a partial frame in flight, and a SIGSTOP wedge
// that only the supervisor's health probes can detect), and asserts: zero
// acknowledged-response loss (the durable pushed= watermark never falls
// below what the client saw acked), final committed output byte-identical
// to an uninterrupted single-process oracle, the crash-loop breaker parking
// the bad worker while the rest keep serving, and a clean whole-fleet
// SIGTERM drain.
//
//   lhmm_loadgen --fleet-gauntlet 1 --workers 4 \
//                --serve-bin build/tools/lhmm_serve --threads 8
//
// Swap gauntlet (--swap-gauntlet 1): a 4-worker fleet all mapping ONE shared
// versioned store (--store) serves continuous srv::ResilientClient load while
// a new store generation is built on disk, hot-swapped in (`swap 2` fanned to
// every worker), attacked with five corrupt swap candidates (torn tail, bit
// flip, garbage header, future format version, wrong-network fingerprint —
// each must be a typed file+offset reject that leaves the serving generation
// untouched), and finally rolled back. Requires zero acknowledged-response
// loss and committed output byte-identical to an uninterrupted owned-mode
// oracle — the store-backed data plane must be invisible to results.
//
//   lhmm_loadgen --swap-gauntlet 1 --workers 4 \
//                --serve-bin build/tools/lhmm_serve --threads 8
//
// Chaos gauntlet (--chaos-gauntlet 1): scheduled resource exhaustion. Every
// durable write path runs against an io::FaultEnv that injects ENOSPC,
// failed fsyncs, and EMFILE on exact, scripted syscalls: a statvfs-scheduled
// low-disk window must flip the server into degraded-nondurable mode on its
// exact tick (kDataLoss push acks under --fsync record, checkpoints refused,
// durability restored by the exit checkpoint), a persistent journal ENOSPC
// storm must seal-and-rotate without ever tearing a segment, failed
// snapshot/store publishes must never advance a generation pointer or leave
// a readable partial, and an EMFILE accept storm must shed connections with
// a clean EOF instead of busy-spinning the poll loop. Committed output after
// each storm must be byte-identical to an uninterrupted oracle and to a
// post-storm srv::Recover() of the durable directory. With --serve-bin the
// gauntlet additionally starves a REAL lhmm_serve of file descriptors
// (RLIMIT_NOFILE in the child) under a loopback connection storm.
//
//   lhmm_loadgen --chaos-gauntlet 1 \
//                --serve-bin build/tools/lhmm_serve --threads 8

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "core/strings.h"
#include "hmm/classic_models.h"
#include "io/env.h"
#include "io/fault_file.h"
#include "io/journal.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "network/contraction.h"
#include "network/faulty_router.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "srv/frame.h"
#include "srv/match_server.h"
#include "srv/net_server.h"
#include "srv/recovery.h"
#include "srv/resilient_client.h"
#include "srv/supervisor.h"
#include "store/format.h"
#include "store/generations.h"
#include "store/store_writer.h"
#include "traj/trajectory.h"

using namespace lhmm;  // NOLINT(build/namespaces): CLI driver.

namespace {

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> out;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    out[key] = argv[i + 1];
  }
  return out;
}

std::string Get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int GetInt(const std::map<std::string, std::string>& args,
           const std::string& key, int fallback) {
  int v = 0;
  return core::ParseInt(Get(args, key, ""), &v) ? v : fallback;
}

double GetDouble(const std::map<std::string, std::string>& args,
                 const std::string& key, double fallback) {
  const std::string s = Get(args, key, "");
  if (s.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0' ? v : fallback;
}

/// One simulated client streaming one trajectory, with retry + exponential
/// backoff + jitter against typed rejects.
struct Client {
  enum class Phase { kOpening, kStreaming, kFinishing, kDone };

  traj::Trajectory traj;
  Phase phase = Phase::kOpening;
  int64_t session = -1;
  int next_point = 0;
  int attempts = 0;        ///< Consecutive retryable failures of the current op.
  int64_t ready_at = 0;    ///< Tick the current op may be (re)tried.
  bool abandons = false;   ///< Fault injection: walks away mid-stream.
  std::string outcome;     ///< Terminal label for the summary.
};

bool Retryable(const core::Status& s) {
  return s.code() == core::StatusCode::kResourceExhausted ||
         s.code() == core::StatusCode::kUnavailable;
}

/// Exponential backoff with jitter, in ticks: base * 2^attempts, capped,
/// plus a uniform jitter of up to half the backoff. Deterministic via rng.
int64_t Backoff(int attempts, core::Rng* rng) {
  const int64_t base = 2;
  const int64_t cap = 64;
  int64_t wait = base << std::min(attempts, 5);
  wait = std::min(wait, cap);
  return wait + rng->UniformInt(0, static_cast<int>(wait / 2));
}

struct Tally {
  int64_t attempted_opens = 0;
  int64_t ok_opens = 0;
  int64_t shed_opens = 0;
  int64_t attempted_pushes = 0;
  int64_t ok_pushes = 0;
  int64_t shed_pushes = 0;     ///< Typed retryable rejects observed.
  int64_t hard_pushes = 0;     ///< Typed non-retryable rejects observed.
  int64_t gave_up = 0;
};

// ---------------------------------------------------------------------------
// Crash gauntlet: SIGKILL a real lhmm_serve mid-stream, recover, diff.
// ---------------------------------------------------------------------------

/// Blocking loopback connect with retry: 256 simultaneous dials can overflow
/// the listener's accept backlog, so a refused/failed attempt backs off and
/// tries again instead of failing the run.
int DialLoopback(int port, int attempts = 200) {
  for (int i = 0; i < attempts; ++i) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    close(fd);
    usleep(2000);
  }
  return -1;
}

/// A spawned lhmm_serve with a pipe pair for its line protocol (the default)
/// or a loopback socket speaking the frame protocol (StartSocket). The
/// child's stderr is inherited so recovery reports land in the harness log.
struct ServeProc {
  pid_t pid = -1;
  FILE* to = nullptr;    ///< Our write end of the child's stdin.
  FILE* from = nullptr;  ///< Our read end of the child's stdout.
  int sock = -1;         ///< Frame-protocol connection; -1 = pipe transport.
  int port = 0;          ///< Bound port in socket mode.
  std::string port_file;
  /// When > 0, RLIMIT_NOFILE is clamped to this in the child before exec —
  /// the chaos gauntlet's way of starving a REAL server of descriptors.
  int rlimit_nofile = 0;

  void ClampFds() const {
    if (rlimit_nofile <= 0) return;
    rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(rlimit_nofile);
    rl.rlim_max = static_cast<rlim_t>(rlimit_nofile);
    setrlimit(RLIMIT_NOFILE, &rl);
  }

  bool Start(const std::vector<std::string>& argv_strs) {
    int in_pipe[2];
    int out_pipe[2];
    if (pipe(in_pipe) != 0 || pipe(out_pipe) != 0) {
      perror("pipe");
      return false;
    }
    pid = fork();
    if (pid < 0) {
      perror("fork");
      return false;
    }
    if (pid == 0) {
      dup2(in_pipe[0], 0);
      dup2(out_pipe[1], 1);
      close(in_pipe[0]);
      close(in_pipe[1]);
      close(out_pipe[0]);
      close(out_pipe[1]);
      ClampFds();
      std::vector<char*> argv;
      argv.reserve(argv_strs.size() + 1);
      for (const std::string& a : argv_strs) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      perror("execv");
      _exit(127);
    }
    close(in_pipe[0]);
    close(out_pipe[1]);
    to = fdopen(in_pipe[1], "w");
    from = fdopen(out_pipe[0], "r");
    return to != nullptr && from != nullptr;
  }

  /// Socket transport: spawns the server with --listen 127.0.0.1:0 and a
  /// --port-file, waits for the atomically-published port, and connects one
  /// frame-protocol client. Cmd() then speaks frames over this socket.
  bool StartSocket(std::vector<std::string> argv_strs) {
    char tmpl[] = "/tmp/lhmm-port-XXXXXX";
    const int tfd = mkstemp(tmpl);
    if (tfd < 0) {
      perror("mkstemp");
      return false;
    }
    close(tfd);
    unlink(tmpl);  // The child publishes it fresh via rename.
    port_file = tmpl;
    const std::vector<std::string> extra = {"--listen", "127.0.0.1:0",
                                            "--port-file", port_file};
    argv_strs.insert(argv_strs.end(), extra.begin(), extra.end());
    pid = fork();
    if (pid < 0) {
      perror("fork");
      return false;
    }
    if (pid == 0) {
      ClampFds();
      std::vector<char*> argv;
      argv.reserve(argv_strs.size() + 1);
      for (const std::string& a : argv_strs) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      perror("execv");
      _exit(127);
    }
    // Poll for the published port (rename makes a partial read impossible).
    for (int i = 0; i < 5000; ++i) {
      FILE* f = fopen(port_file.c_str(), "r");
      if (f != nullptr) {
        const int got = fscanf(f, "%d", &port);
        fclose(f);
        if (got == 1 && port > 0) break;
      }
      int status = 0;
      if (waitpid(pid, &status, WNOHANG) == pid) {
        fprintf(stderr, "socket transport: server died before publishing "
                        "its port\n");
        pid = -1;
        return false;
      }
      usleep(2000);
    }
    if (port <= 0) {
      fprintf(stderr, "socket transport: no port published in %s\n",
              port_file.c_str());
      return false;
    }
    sock = DialLoopback(port);
    if (sock < 0) {
      fprintf(stderr, "socket transport: cannot connect to 127.0.0.1:%d\n",
              port);
      return false;
    }
    return true;
  }

  /// One protocol round trip — a line over the pipes or a frame over the
  /// socket, whichever transport this ServeProc runs. Empty string means the
  /// child is gone.
  std::string Cmd(const std::string& line) {
    if (sock >= 0) {
      if (!srv::WriteFrame(sock, line).ok()) return "";
      core::Result<std::string> resp = srv::ReadFrame(sock);
      return resp.ok() ? *resp : "";
    }
    fprintf(to, "%s\n", line.c_str());
    fflush(to);
    char* buf = nullptr;
    size_t cap = 0;
    const ssize_t n = getline(&buf, &cap, from);
    std::string out;
    if (n > 0) out.assign(buf, buf[n - 1] == '\n' ? n - 1 : n);
    free(buf);
    return out;
  }

  void Kill9() {
    if (pid > 0) kill(pid, SIGKILL);
  }

  /// Closes the transport and reaps the child; returns its raw wait status.
  int Wait() {
    if (to != nullptr) fclose(to);
    if (from != nullptr) fclose(from);
    to = nullptr;
    from = nullptr;
    if (sock >= 0) close(sock);
    sock = -1;
    if (!port_file.empty()) unlink(port_file.c_str());
    port_file.clear();
    int status = 0;
    if (pid > 0) waitpid(pid, &status, 0);
    pid = -1;
    return status;
  }

  /// Graceful shutdown; true when the child exited 0 (its shutdown
  /// checkpoint, if durable, succeeded).
  bool Quit() {
    if (sock >= 0) {
      (void)srv::WriteFrame(sock, "quit");  // No response frame by design.
    } else {
      fprintf(to, "quit\n");
      fflush(to);
    }
    const int status = Wait();
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
};

/// The p-th push line of session `c`: a walk across grid row c, kept inside
/// lhmm_serve's default 10x10/200m network so every point has candidates.
/// Pure function of (c, p, points), so the oracle run, the crashed run, and
/// the resumed run all emit byte-identical event text.
std::string PushLine(int c, int p, int points) {
  const double x = 10.0 + (1780.0 / (points - 1)) * p;
  const double y = 200.0 * (c % 10) + 10.0;
  return core::StrFormat("push %d %.17g %.17g %.17g %d", c, x, y, 15.0 * p, p);
}

struct DriveResult {
  bool ok = false;       ///< Protocol ran as expected (including the kill).
  bool crashed = false;  ///< The SIGKILL fired at the requested push count.
  std::vector<std::string> committed;  ///< "ok committed ..." lines, by id.
};

/// Opens `sessions` sessions, checkpoints (durable mode — so the id mapping
/// is snapshot-covered and fault injection can only hurt pushes), then
/// streams all points round-robin with a tick per round. With crash_after
/// >= 0, SIGKILLs the server right after that many acknowledged pushes;
/// otherwise runs to finish/await/committed.
DriveResult Drive(ServeProc* sp, int sessions, int points, int crash_after,
                  bool durable) {
  DriveResult r;
  auto fail = [&r](const std::string& what, const std::string& got) {
    fprintf(stderr, "crash-gauntlet: expected %s, got '%s'\n", what.c_str(),
            got.c_str());
    return r;
  };
  for (int c = 0; c < sessions; ++c) {
    const std::string resp = sp->Cmd("open");
    long long id = -1;
    if (sscanf(resp.c_str(), "ok open %lld", &id) != 1 || id != c) {
      return fail("ok open " + std::to_string(c), resp);
    }
  }
  std::string resp = sp->Cmd("tick 1");
  if (resp.rfind("ok tick", 0) != 0) return fail("ok tick", resp);
  if (durable) {
    resp = sp->Cmd("checkpoint");
    if (resp.rfind("ok checkpoint", 0) != 0) return fail("ok checkpoint", resp);
  }
  int acked = 0;
  int64_t tick = 1;
  for (int p = 0; p < points; ++p) {
    for (int c = 0; c < sessions; ++c) {
      resp = sp->Cmd(PushLine(c, p, points));
      if (resp.rfind("ok push", 0) != 0) return fail("ok push", resp);
      if (++acked == crash_after) {
        sp->Kill9();
        sp->Wait();
        r.ok = true;
        r.crashed = true;
        return r;
      }
    }
    resp = sp->Cmd(core::StrFormat("tick %" PRId64, ++tick));
    if (resp.rfind("ok tick", 0) != 0) return fail("ok tick", resp);
  }
  for (int c = 0; c < sessions; ++c) {
    resp = sp->Cmd(core::StrFormat("finish %d", c));
    if (resp.rfind("ok finish", 0) != 0) return fail("ok finish", resp);
  }
  resp = sp->Cmd("await");
  if (resp != "ok await") return fail("ok await", resp);
  for (int c = 0; c < sessions; ++c) {
    resp = sp->Cmd(core::StrFormat("committed %d", c));
    if (resp.rfind("ok committed", 0) != 0) return fail("ok committed", resp);
    r.committed.push_back(resp);
  }
  r.ok = true;
  return r;
}

/// Resumes a recovered server: reads each session's durable pushed= progress,
/// replays the remainder of its trajectory, finishes everything, and collects
/// the committed lines. Exactly what a well-behaved client does after a
/// server crash rolls its stream back to the fsynced prefix.
bool Resume(ServeProc* sp, int sessions, int points,
            std::vector<std::string>* committed, int64_t* resumed_pushes) {
  auto fail = [](const std::string& what, const std::string& got) {
    fprintf(stderr, "crash-gauntlet: resume expected %s, got '%s'\n",
            what.c_str(), got.c_str());
    return false;
  };
  std::string resp = sp->Cmd("status");
  const char* clk = strstr(resp.c_str(), "clock=");
  if (resp.rfind("ok status", 0) != 0 || clk == nullptr) {
    return fail("ok status clock=...", resp);
  }
  int64_t tick = atoll(clk + 6);
  std::vector<int> next(static_cast<size_t>(sessions), 0);
  for (int c = 0; c < sessions; ++c) {
    resp = sp->Cmd(core::StrFormat("status %d", c));
    const char* pushed = strstr(resp.c_str(), "pushed=");
    if (resp.rfind("ok status", 0) != 0 || pushed == nullptr) {
      return fail("ok status ... pushed=", resp);
    }
    next[c] = atoi(pushed + 7);
    if (next[c] < 0 || next[c] > points) {
      return fail("pushed in [0," + std::to_string(points) + "]", resp);
    }
  }
  for (int c = 0; c < sessions; ++c) {
    for (int p = next[c]; p < points; ++p) {
      resp = sp->Cmd(PushLine(c, p, points));
      if (resp.rfind("ok push", 0) != 0) return fail("ok push", resp);
      ++*resumed_pushes;
      if (p % 8 == 7) sp->Cmd(core::StrFormat("tick %" PRId64, ++tick));
    }
  }
  sp->Cmd(core::StrFormat("tick %" PRId64, ++tick));
  for (int c = 0; c < sessions; ++c) {
    resp = sp->Cmd(core::StrFormat("finish %d", c));
    if (resp.rfind("ok finish", 0) != 0) return fail("ok finish", resp);
  }
  resp = sp->Cmd("await");
  if (resp != "ok await") return fail("ok await", resp);
  for (int c = 0; c < sessions; ++c) {
    resp = sp->Cmd(core::StrFormat("committed %d", c));
    if (resp.rfind("ok committed", 0) != 0) return fail("ok committed", resp);
    committed->push_back(resp);
  }
  return true;
}

/// Mangles the tail of the journal's final segment the way a dying disk
/// would. "torn" shaves 7 bytes (lands mid-frame: a torn tail the scanner
/// treats as a clean crash); "bitflip" flips a bit near the end (a complete
/// frame whose CRC no longer matches: mid-file corruption the recovery
/// truncates at). Either way the acked-but-mangled suffix rolls back and the
/// client re-pushes it, so the final output must still match the oracle.
bool InjectFault(const std::string& dir, const std::string& kind) {
  if (kind == "none") return true;
  core::Result<io::JournalScan> scan = io::ScanJournal(dir, false);
  if (!scan.ok() || scan->segments.empty()) {
    fprintf(stderr, "crash-gauntlet: no journal segment to mangle in %s\n",
            dir.c_str());
    return false;
  }
  const std::string path = scan->segments.back().path;
  core::Result<int64_t> size = io::FileSize(path);
  if (!size.ok()) return false;
  core::Status st;
  if (kind == "torn") {
    if (*size <= 23) return true;  // Header-only segment: nothing to tear.
    st = io::TornTail(path, 7);
  } else if (kind == "bitflip") {
    if (*size <= 25) return true;
    st = io::FlipBit(path, *size - 9, 3);
  } else {
    fprintf(stderr, "crash-gauntlet: unknown fault '%s'\n", kind.c_str());
    return false;
  }
  if (!st.ok()) {
    fprintf(stderr, "crash-gauntlet: fault injection failed: %s\n",
            st.message().c_str());
    return false;
  }
  return true;
}

std::string MakeTempDir() {
  char tmpl[] = "/tmp/lhmm-crash-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  return dir == nullptr ? std::string() : std::string(dir);
}

/// The kill -9 gauntlet: one uninterrupted oracle run, then one crash-and-
/// recover run per --crash-at point, each diffed byte-for-byte against the
/// oracle's committed output.
int RunCrashGauntlet(const std::map<std::string, std::string>& args) {
  const std::string serve_bin = Get(args, "serve-bin", "");
  if (serve_bin.empty()) {
    fprintf(stderr, "crash-gauntlet: --crash-at requires --serve-bin\n");
    return 2;
  }
  const int sessions = GetInt(args, "sessions", 6);
  const int points = GetInt(args, "points", 30);
  const int threads = GetInt(args, "threads", 4);
  const std::string fault_mode = Get(args, "crash-fault", "cycle");
  const std::string transport = Get(args, "transport", "stdin");
  if (transport != "stdin" && transport != "socket") {
    fprintf(stderr, "crash-gauntlet: --transport must be stdin or socket\n");
    return 2;
  }
  const bool over_socket = transport == "socket";
  // Same gauntlet, either transport: the dispatcher is shared, so the socket
  // path must survive every kill point the stdin path survives, with
  // byte-identical committed output.
  const auto start = [over_socket](ServeProc* sp,
                                   std::vector<std::string> argv) {
    return over_socket ? sp->StartSocket(std::move(argv)) : sp->Start(argv);
  };
  std::vector<int> crash_at;
  {
    std::stringstream ss(Get(args, "crash-at", ""));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (!tok.empty()) crash_at.push_back(atoi(tok.c_str()));
    }
  }
  if (crash_at.empty()) {
    fprintf(stderr, "crash-gauntlet: --crash-at needs at least one point\n");
    return 2;
  }
  for (const int k : crash_at) {
    if (k < 1 || k > sessions * points) {
      fprintf(stderr,
              "crash-gauntlet: crash point %d outside the workload's %d "
              "pushes\n",
              k, sessions * points);
      return 2;
    }
  }
  const std::string threads_str = std::to_string(threads);

  printf("crash-gauntlet: %d sessions x %d points, %d threads, %zu crash "
         "points, fault=%s, transport=%s\n",
         sessions, points, threads, crash_at.size(), fault_mode.c_str(),
         transport.c_str());

  // The oracle: same binary, same workload, never interrupted, no journal.
  std::vector<std::string> oracle;
  {
    ServeProc sp;
    if (!start(&sp, {serve_bin, "--threads", threads_str})) return 1;
    DriveResult r = Drive(&sp, sessions, points, /*crash_after=*/-1,
                          /*durable=*/false);
    sp.Quit();
    if (!r.ok) return 1;
    oracle = std::move(r.committed);
  }
  printf("crash-gauntlet: oracle run complete (%zu committed lines)\n",
         oracle.size());

  const char* kCycle[] = {"none", "torn", "bitflip"};
  int failures = 0;
  for (size_t i = 0; i < crash_at.size(); ++i) {
    const int k = crash_at[i];
    const std::string fault =
        fault_mode == "cycle" ? kCycle[i % 3] : fault_mode;
    const std::string dir = MakeTempDir();
    if (dir.empty()) {
      perror("mkdtemp");
      return 1;
    }
    const std::vector<std::string> serve_args = {
        serve_bin, "--threads", threads_str, "--durable", dir,
        "--fsync",  "record"};

    ServeProc victim;
    if (!start(&victim, serve_args)) return 1;
    DriveResult d = Drive(&victim, sessions, points, k, /*durable=*/true);
    if (!d.ok || !d.crashed) {
      fprintf(stderr, "crash-gauntlet: crash-at=%d never fired\n", k);
      ++failures;
      continue;
    }
    if (!InjectFault(dir, fault)) {
      ++failures;
      continue;
    }

    ServeProc revived;
    if (!start(&revived, serve_args)) return 1;
    std::vector<std::string> committed;
    int64_t resumed = 0;
    const bool resumed_ok =
        Resume(&revived, sessions, points, &committed, &resumed);
    const bool clean_exit = revived.Quit();
    if (!resumed_ok || !clean_exit) {
      fprintf(stderr, "crash-gauntlet: crash-at=%d fault=%s recovery failed\n",
              k, fault.c_str());
      ++failures;
      continue;
    }
    int diffs = 0;
    for (int c = 0; c < sessions; ++c) {
      if (committed[c] != oracle[c]) {
        ++diffs;
        fprintf(stderr,
                "crash-gauntlet: crash-at=%d fault=%s session %d diverged\n"
                "  oracle:    %s\n  recovered: %s\n",
                k, fault.c_str(), c, oracle[c].c_str(), committed[c].c_str());
      }
    }
    if (diffs > 0) {
      ++failures;
    } else {
      printf("crash-gauntlet: crash-at=%-4d fault=%-7s OK (%" PRId64
             " pushes resumed, committed output byte-identical)\n",
             k, fault.c_str(), resumed);
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
  }
  if (failures > 0) {
    fprintf(stderr, "crash-gauntlet: %d of %zu crash points FAILED\n",
            failures, crash_at.size());
    return 1;
  }
  printf("crash-gauntlet: OK (%zu crash points survived)\n", crash_at.size());
  return 0;
}

// ---------------------------------------------------------------------------
// Net smoke: a concurrent loopback fleet with latency percentiles.
// ---------------------------------------------------------------------------

/// Spawns lhmm_serve on a loopback listener and drives it with `connections`
/// REAL concurrent TCP connections. Every connection is established before
/// the first timed request (a start barrier), then each runs one
/// open/push*/finish session over the frame protocol, timing every round
/// trip. Reports p50/p99/p999; any protocol failure or lost response exits
/// nonzero.
int RunNetSmoke(const std::map<std::string, std::string>& args) {
  const std::string serve_bin = Get(args, "serve-bin", "");
  if (serve_bin.empty()) {
    fprintf(stderr, "net-smoke: --net-smoke requires --serve-bin\n");
    return 2;
  }
  const int connections = GetInt(args, "connections", 256);
  const int pushes = std::max(2, GetInt(args, "pushes", 8));
  const int threads = GetInt(args, "threads", 4);

  ServeProc sp;
  if (!sp.StartSocket({serve_bin, "--threads", std::to_string(threads)})) {
    return 1;
  }
  printf("net-smoke: %d connections x %d pushes, %d server threads, "
         "port %d\n",
         connections, pushes, threads, sp.port);

  std::atomic<int> connected{0};
  std::atomic<int> failures{0};
  std::atomic<bool> go{false};
  std::mutex mu;
  std::vector<double> lat_us;  // Round-trip latencies, microseconds.
  lat_us.reserve(static_cast<size_t>(connections) * (pushes + 2));

  std::vector<std::thread> fleet;
  fleet.reserve(connections);
  for (int c = 0; c < connections; ++c) {
    fleet.emplace_back([&, c] {
      const int fd = DialLoopback(sp.port);
      ++connected;
      if (fd < 0) {
        ++failures;
        return;
      }
      // Barrier: requests start only once the WHOLE fleet is connected, so
      // the percentiles below are measured with `connections` live sockets.
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();

      std::vector<double> local;
      local.reserve(pushes + 2);
      const auto trip = [fd, &local](const std::string& line) {
        const auto t0 = std::chrono::steady_clock::now();
        std::string out;
        if (srv::WriteFrame(fd, line).ok()) {
          core::Result<std::string> resp = srv::ReadFrame(fd);
          if (resp.ok()) out = *std::move(resp);
        }
        local.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
        return out;
      };

      bool ok = true;
      long long id = -1;
      if (sscanf(trip("open").c_str(), "ok open %lld", &id) != 1) ok = false;
      for (int p = 0; ok && p < pushes; ++p) {
        ok = trip(PushLine(static_cast<int>(id), p, pushes))
                 .rfind("ok push", 0) == 0;
      }
      if (ok) {
        ok = trip(core::StrFormat("finish %lld", id)).rfind("ok finish", 0) ==
             0;
      }
      close(fd);
      if (!ok) ++failures;
      std::lock_guard<std::mutex> lock(mu);
      lat_us.insert(lat_us.end(), local.begin(), local.end());
    });
  }
  while (connected.load() < connections) std::this_thread::yield();
  const auto t_start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& t : fleet) t.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t_start)
                             .count();

  // Settle the engine through the control connection, then shut down clean.
  const bool awaited = sp.Cmd("await") == "ok await";
  const bool clean_exit = sp.Quit();

  const size_t expected =
      static_cast<size_t>(connections) * (static_cast<size_t>(pushes) + 2);
  std::sort(lat_us.begin(), lat_us.end());
  if (!lat_us.empty()) {
    const auto pct = [&lat_us](double q) {
      const size_t i = static_cast<size_t>(q * lat_us.size());
      return lat_us[std::min(i, lat_us.size() - 1)];
    };
    printf("net-smoke: %zu round trips in %.0f ms, p50=%.0fus p99=%.0fus "
           "p999=%.0fus max=%.0fus\n",
           lat_us.size(), wall_ms, pct(0.50), pct(0.99), pct(0.999),
           lat_us.back());
  }

  int rc = 0;
  if (failures.load() != 0) {
    fprintf(stderr, "net-smoke: %d connections FAILED their session\n",
            failures.load());
    rc = 1;
  }
  if (lat_us.size() != expected) {
    fprintf(stderr, "net-smoke: expected %zu responses, timed %zu — "
                    "requests were lost\n",
            expected, lat_us.size());
    rc = 1;
  }
  if (!awaited || !clean_exit) {
    fprintf(stderr, "net-smoke: shutdown failed (await=%d clean_exit=%d)\n",
            awaited, clean_exit);
    rc = 1;
  }
  if (rc == 0) printf("net-smoke: OK\n");
  return rc;
}

// ---------------------------------------------------------------------------
// Fleet gauntlet: a supervised multi-process fleet under kill fire.
// ---------------------------------------------------------------------------

enum class KillKind {
  kSigkill,   ///< Plain SIGKILL between round trips.
  kMidFrame,  ///< Half a frame header on the wire, THEN SIGKILL.
  kWedge,     ///< SIGSTOP: alive to waitpid, silent to health probes.
};

/// Drives one worker's full workload through srv::ResilientClient, killing
/// the worker once `milestone` pushes have been acknowledged, recovering, and
/// finishing the run. Returns false on any protocol/invariant failure —
/// including the gauntlet's core invariant: after a reconnect the worker's
/// durable pushed= watermark must cover every push this client saw acked.
bool DriveFleetWorker(int w, const std::string& port_file, int sessions,
                      int points, int milestone, KillKind kind,
                      const std::function<pid_t()>& get_pid,
                      const std::vector<std::string>& oracle) {
  srv::ResilientClientConfig cc;
  cc.port_file = port_file;
  cc.max_attempts = 40;
  cc.backoff_base_ms = 10;
  cc.backoff_cap_ms = 250;
  cc.io_timeout_ms = 2000;
  srv::ResilientClient rc(cc);
  auto fail = [w](const std::string& what, const std::string& got) {
    fprintf(stderr, "fleet-gauntlet: w%d expected %s, got '%s'\n", w,
            what.c_str(), got.c_str());
    return false;
  };

  // Per-session durable progress as this client knows it: next[c] points are
  // acked. The zero-ack-loss invariant is checked against it on recovery.
  std::vector<int> next(static_cast<size_t>(sessions), 0);
  int64_t tick_no = 0;
  int total_acked = 0;
  bool killed = false;
  bool need_recover = false;

  auto maybe_kill = [&] {
    if (killed || total_acked < milestone) return;
    killed = true;
    const pid_t pid = get_pid();
    if (pid <= 0) return;
    switch (kind) {
      case KillKind::kMidFrame: {
        // The worker dies holding a partial frame from us: its decoder state
        // and our connection are both garbage, only the journal survives.
        const char partial[3] = {srv::kFrameMagic, srv::kFrameVersion, 0x10};
        if (rc.fd() >= 0) send(rc.fd(), partial, sizeof(partial), MSG_NOSIGNAL);
        kill(pid, SIGKILL);
        rc.CloseConn();
        need_recover = true;
        break;
      }
      case KillKind::kWedge:
        // No exit for waitpid to see; only a health probe finds this one.
        kill(pid, SIGSTOP);
        break;
      case KillKind::kSigkill:
        kill(pid, SIGKILL);
        break;
    }
    fprintf(stderr, "fleet-gauntlet: w%d killed (kind=%d) at %d acked\n", w,
            static_cast<int>(kind), total_acked);
  };

  /// Reconnects (re-reading the port file — the restarted worker has a new
  /// port) and resyncs next[] from the recovered server's pushed= watermarks.
  auto recover = [&]() -> bool {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(90);
    while (std::chrono::steady_clock::now() < deadline) {
      rc.CloseConn();
      if (!rc.Connect().ok()) continue;  // Connect paces its own backoff.
      core::Result<std::string> r = rc.TryCmd("status");
      const char* clk = r.ok() ? strstr(r->c_str(), "clock=") : nullptr;
      if (clk == nullptr || !core::StartsWith(*r, "ok status")) continue;
      const int64_t server_clock = atoll(clk + 6);
      std::vector<int> pushed(static_cast<size_t>(sessions), -1);
      bool all = true;
      for (int c = 0; c < sessions && all; ++c) {
        core::Result<std::string> rs =
            rc.TryCmd(core::StrFormat("status %d", c));
        const char* pu = rs.ok() ? strstr(rs->c_str(), "pushed=") : nullptr;
        if (pu == nullptr) {
          all = false;
        } else {
          pushed[c] = atoi(pu + 7);
        }
      }
      if (!all) continue;
      for (int c = 0; c < sessions; ++c) {
        if (pushed[c] < next[c]) {
          // An acked push did not survive the crash: the exact loss class
          // this gauntlet exists to rule out (--fsync record makes every
          // acked push durable before the ack).
          fprintf(stderr,
                  "fleet-gauntlet: w%d ACK LOSS session %d: client saw %d "
                  "acked, recovered watermark %d\n",
                  w, c, next[c], pushed[c]);
          return false;
        }
        // The watermark may exceed our count: a push acked by the server
        // whose response died with the connection. Resume past it.
        next[c] = std::min(pushed[c], points);
      }
      tick_no = std::max(tick_no, server_clock);
      return true;
    }
    fprintf(stderr, "fleet-gauntlet: w%d recovery deadline exceeded\n", w);
    return false;
  };

  // --- Phase 0 (kill-free): wait for the worker, open dense ids. ---
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    bool ready = false;
    while (!ready && std::chrono::steady_clock::now() < deadline) {
      if (rc.Connect().ok()) {
        core::Result<std::string> r = rc.TryCmd("health");
        ready = r.ok() && core::StartsWith(*r, "ok health ");
      }
      if (!ready) usleep(20 * 1000);
    }
    if (!ready) return fail("ok health (worker up)", "startup timeout");
  }
  for (int c = 0; c < sessions; ++c) {
    core::Result<std::string> r = rc.TryCmd("open");
    long long id = -1;
    if (!r.ok() || sscanf(r->c_str(), "ok open %lld", &id) != 1 || id != c) {
      return fail("ok open " + std::to_string(c),
                  r.ok() ? *r : r.status().ToString());
    }
  }
  {
    core::Result<std::string> r = rc.TryCmd(core::StrFormat("tick %" PRId64,
                                                            ++tick_no));
    if (!r.ok() || !core::StartsWith(*r, "ok tick")) {
      return fail("ok tick", r.ok() ? *r : r.status().ToString());
    }
    // Checkpoint so the id mapping is snapshot-covered before the kill.
    r = rc.TryCmd("checkpoint");
    if (!r.ok() || !core::StartsWith(*r, "ok checkpoint")) {
      return fail("ok checkpoint", r.ok() ? *r : r.status().ToString());
    }
  }

  // --- Phase 1: stream everything; the kill lands mid-phase. ---
  for (int rounds = 0; rounds < 200; ++rounds) {
    if (need_recover) {
      if (!recover()) return false;
      need_recover = false;
    }
    bool done = true;
    for (int c = 0; c < sessions; ++c) done = done && next[c] >= points;
    if (done) break;
    int since_tick = 0;
    for (int c = 0; c < sessions && !need_recover; ++c) {
      for (int p = next[c]; p < points && !need_recover; ++p) {
        core::Result<std::string> r = rc.TryCmd(PushLine(c, p, points));
        if (r.ok() && core::StartsWith(*r, "ok push")) {
          next[c] = p + 1;
          ++total_acked;
          maybe_kill();
          if (!need_recover && ++since_tick % 8 == 0) {
            core::Result<std::string> rt =
                rc.TryCmd(core::StrFormat("tick %" PRId64, ++tick_no));
            if (!rt.ok()) need_recover = true;
          }
        } else if (r.ok()) {
          return fail("ok push", *r);  // A typed reject is a real failure.
        } else {
          need_recover = true;  // Transport death: reconnect and resync.
        }
      }
    }
  }
  for (int c = 0; c < sessions; ++c) {
    if (next[c] < points) return fail("all points pushed", "rounds exhausted");
  }
  if (!killed) return fail("kill to fire before the workload ran out", "");

  // --- Phase 2: finish + committed (kill already fired; transport errors
  // here still recover, and a finish whose ack died with the connection is
  // detected via the session state). ---
  for (int c = 0; c < sessions; ++c) {
    for (int tries = 0;; ++tries) {
      if (tries > 4) return fail("ok finish", "retries exhausted");
      core::Result<std::string> r =
          rc.TryCmd(core::StrFormat("finish %d", c));
      if (r.ok() && core::StartsWith(*r, "ok finish")) break;
      if (!r.ok()) {
        if (!recover()) return false;
        continue;
      }
      core::Result<std::string> rs =
          rc.TryCmd(core::StrFormat("status %d", c));
      if (rs.ok() && rs->find(" finished ") != std::string::npos) break;
      return fail("ok finish", *r);
    }
  }
  for (int tries = 0;; ++tries) {
    if (tries > 4) return fail("ok await", "retries exhausted");
    core::Result<std::string> r = rc.TryCmd("await");
    if (r.ok() && *r == "ok await") break;
    if (!r.ok() && !recover()) return false;
  }
  for (int c = 0; c < sessions; ++c) {
    core::Result<std::string> r =
        rc.TryCmd(core::StrFormat("committed %d", c));
    if (!r.ok() || !core::StartsWith(*r, "ok committed")) {
      return fail("ok committed", r.ok() ? *r : r.status().ToString());
    }
    if (*r != oracle[c]) {
      fprintf(stderr,
              "fleet-gauntlet: w%d session %d diverged from oracle\n"
              "  oracle:    %s\n  recovered: %s\n",
              w, c, oracle[c].c_str(), r->c_str());
      return false;
    }
  }
  fprintf(stderr,
          "fleet-gauntlet: w%d OK (%d acked, %" PRId64
          " reconnects, committed byte-identical)\n",
          w, total_acked, rc.reconnects());
  return true;
}

/// The fleet gauntlet: oracle run, then a supervised 4+1 fleet under
/// concurrent kill fire, then assertions + graceful drain.
int RunFleetGauntlet(const std::map<std::string, std::string>& args) {
  const std::string serve_bin = Get(args, "serve-bin", "");
  if (serve_bin.empty()) {
    fprintf(stderr, "fleet-gauntlet: --fleet-gauntlet requires --serve-bin\n");
    return 2;
  }
  const int workers = std::max(1, GetInt(args, "workers", 4));
  const int sessions = GetInt(args, "sessions", 4);
  const int points = GetInt(args, "points", 24);
  const int threads = GetInt(args, "threads", 4);
  const std::string threads_str = std::to_string(threads);
  const int total = sessions * points;

  printf("fleet-gauntlet: %d workers + 1 crash-looper, %d sessions x %d "
         "points each, %d engine threads\n",
         workers, sessions, points, threads);

  // The oracle: one uninterrupted single-process run of the same workload.
  std::vector<std::string> oracle;
  {
    ServeProc sp;
    if (!sp.Start({serve_bin, "--threads", threads_str})) return 1;
    DriveResult r = Drive(&sp, sessions, points, /*crash_after=*/-1,
                          /*durable=*/false);
    sp.Quit();
    if (!r.ok) return 1;
    oracle = std::move(r.committed);
  }
  printf("fleet-gauntlet: oracle run complete (%zu committed lines)\n",
         oracle.size());

  const std::string base = MakeTempDir();
  if (base.empty()) {
    perror("mkdtemp");
    return 1;
  }
  std::vector<srv::WorkerSpec> specs;
  for (int w = 0; w < workers; ++w) {
    const std::string dir = base + "/w" + std::to_string(w);
    mkdir(dir.c_str(), 0755);
    srv::WorkerSpec spec;
    spec.name = "w" + std::to_string(w);
    spec.port_file = dir + "/port";
    spec.argv = {serve_bin,    "--threads", threads_str,
                 "--durable",  dir,         "--fsync",
                 "record",     "--listen",  "127.0.0.1:0",
                 "--port-file", spec.port_file,
                 "--pid-file", dir + "/pid"};
    specs.push_back(std::move(spec));
  }
  {
    // The crash-looper: a malformed --listen makes lhmm_serve exit 1
    // immediately, every time — exactly the workload the breaker exists for.
    srv::WorkerSpec spec;
    spec.name = "looper";
    spec.argv = {serve_bin, "--listen", "bogus"};
    specs.push_back(std::move(spec));
  }
  const int looper = workers;

  srv::SupervisorConfig scfg;
  scfg.backoff.base_ticks = 2;  // 1 tick = 10ms below.
  scfg.backoff.cap_ticks = 32;
  scfg.breaker.max_crashes = 4;
  scfg.breaker.window_ticks = 1 << 20;  // Any 4 crashes of this run trip it.
  scfg.health_interval_ticks = 10;
  scfg.health_grace_ticks = 100;
  scfg.health_misses = 2;
  scfg.health_timeout_ms = 200;

  // The supervisor is driven from a dedicated supervision thread; client
  // threads touch it only under this mutex (to read a pid to kill).
  std::mutex mu;
  srv::Supervisor sup(std::move(specs), scfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto tick = [t0] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
               .count() /
           10;
  };
  {
    std::lock_guard<std::mutex> lock(mu);
    const core::Status st = sup.StartAll(tick());
    if (!st.ok()) {
      fprintf(stderr, "fleet-gauntlet: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::atomic<bool> stop{false};
  std::thread supervision([&] {
    while (!stop.load(std::memory_order_acquire)) {
      {
        std::lock_guard<std::mutex> lock(mu);
        sup.Poll(tick());
      }
      usleep(5 * 1000);
    }
  });

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    clients.emplace_back([&, w] {
      // Every worker dies once, each by a different mechanism; milestones
      // are staggered through the middle third of the workload so every
      // kill lands with sessions mid-stream.
      const KillKind kind =
          w == 0 ? KillKind::kMidFrame
                 : (w == workers - 1 && workers > 1 ? KillKind::kWedge
                                                    : KillKind::kSigkill);
      const int milestone = total / 3 + (w * total) / (3 * workers);
      const auto get_pid = [&mu, &sup, w]() -> pid_t {
        std::lock_guard<std::mutex> lock(mu);
        return sup.pid(w);
      };
      if (!DriveFleetWorker(w, base + "/w" + std::to_string(w) + "/port",
                            sessions, points, milestone, kind, get_pid,
                            oracle)) {
        ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Fleet-level assertions: breaker parked the looper while everyone else
  // kept serving; every real worker actually died and came back. Then the
  // whole-fleet graceful drain (SIGTERM fan-out, workers checkpoint + exit
  // 0). All of it runs under the mutex with the supervision thread still
  // alive: restarted workers are PDEATHSIG-tied to the thread that spawned
  // them, so joining it first would SIGKILL the fleet mid-drain.
  int rc = failures.load() == 0 ? 0 : 1;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (sup.status(looper).state != srv::WorkerState::kParked) {
      fprintf(stderr, "fleet-gauntlet: crash-looper NOT parked (state=%s)\n",
              srv::WorkerStateName(sup.status(looper).state));
      rc = 1;
    }
    for (int w = 0; w < workers; ++w) {
      const srv::WorkerStatus& st = sup.status(w);
      if (st.restarts < 1) {
        fprintf(stderr, "fleet-gauntlet: w%d was never killed+restarted\n", w);
        rc = 1;
      }
    }
    if (workers > 1 && sup.status(workers - 1).health_kills < 1) {
      fprintf(stderr,
              "fleet-gauntlet: wedged worker was not health-killed "
              "(health probes never fired)\n");
      rc = 1;
    }
    sup.Drain();
    const int stragglers = sup.WaitAll(15000);
    if (stragglers != 0) {
      fprintf(stderr, "fleet-gauntlet: %d workers did not drain in time\n",
              stragglers);
      rc = 1;
    }
  }
  stop.store(true, std::memory_order_release);
  supervision.join();
  for (int w = 0; w < workers; ++w) {
    if (sup.status(w).clean_exits < 1) {
      fprintf(stderr, "fleet-gauntlet: w%d did not exit clean on drain\n", w);
      rc = 1;
    }
  }
  const srv::SupervisorMetrics m = sup.metrics();
  printf("fleet-gauntlet: restarts=%" PRId64 " crashes=%" PRId64
         " clean_exits=%" PRId64 " health_kills=%" PRId64 " parked=%" PRId64
         "\n",
         m.restarts, m.crashes, m.clean_exits, m.health_kills, m.parked);
  if (rc == 0) {
    std::error_code ec;
    std::filesystem::remove_all(base, ec);
    printf("fleet-gauntlet: OK\n");
  }
  return rc;
}

// ---------------------------------------------------------------------------
// Swap gauntlet: hot model swap + crash-safe rollback under continuous load.
// ---------------------------------------------------------------------------

/// Builds one store generation under `root` the way `lhmm_store build` does —
/// grid network, grid index, contraction hierarchy, META — and returns its
/// path ("" on failure). The default 10x10/200m grid is the exact world
/// lhmm_serve builds in owned mode, so PushLine's workload has candidates and
/// the owned-mode oracle is comparable byte for byte.
std::string BuildStoreGen(const std::string& root, int64_t gen, int rows,
                          int cols, double spacing) {
  network::RoadNetwork net = network::GenerateGridNetwork(rows, cols, spacing);
  network::GridIndex index(&net, 300.0);
  network::CHGraph ch = network::CHGraph::Build(net);
  store::StoreWriter w;
  w.AddSection(store::kSectionNetwork, store::EncodeNetwork(net));
  w.AddSection(store::kSectionGrid, store::EncodeGridIndex(index));
  w.AddSection(store::kSectionCH, store::EncodeCHGraph(ch));
  w.AddSection(store::kSectionMeta,
               store::EncodeMeta({{"source", "swap-gauntlet"}}));
  mkdir(root.c_str(), 0755);
  mkdir(store::GenerationDir(root, gen).c_str(), 0755);
  const std::string path = store::StorePath(root, gen);
  const core::Status st =
      w.Write(path, network::CHGraph::NetworkFingerprint(net),
              static_cast<uint64_t>(gen));
  if (!st.ok()) {
    fprintf(stderr, "swap-gauntlet: build gen %" PRId64 ": %s\n", gen,
            st.ToString().c_str());
    return "";
  }
  return path;
}

/// Stamps a higher format version into the header and re-seals the header
/// CRC, so the file is bit-perfect except for being "from the future" — the
/// reject must be the version skew, not a CRC mismatch.
bool PatchFutureVersion(const std::string& path) {
  FILE* f = fopen(path.c_str(), "r+b");
  if (f == nullptr) return false;
  char header[store::kHeaderBytes];
  if (fread(header, 1, sizeof(header), f) != sizeof(header)) {
    fclose(f);
    return false;
  }
  const uint32_t future = store::kFormatVersion + 1;
  memcpy(header + store::kVersionOffset, &future, sizeof(future));
  const uint32_t crc = io::Crc32(header, store::kHeaderCrcOffset);
  memcpy(header + store::kHeaderCrcOffset, &crc, sizeof(crc));
  const bool ok = fseek(f, 0, SEEK_SET) == 0 &&
                  fwrite(header, 1, sizeof(header), f) == sizeof(header);
  fclose(f);
  return ok;
}

/// Cross-thread pacing for the swap gauntlet: clients stream half their
/// points, wait for the hot swap, stream the rest, and hold their sessions
/// open until the corrupt-candidate campaign and the rollback are done — so
/// every protocol step lands with live pinned sessions on every worker.
struct SwapGates {
  std::atomic<int> half_done{0};
  std::atomic<bool> swapped{false};
  std::atomic<int> full_done{0};
  std::atomic<bool> protocol_done{false};
  std::atomic<bool> abort{false};  ///< The protocol driver failed; unblock all.
};

bool AwaitFlag(const std::atomic<bool>& flag, const std::atomic<bool>& abort,
               int seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (flag.load(std::memory_order_acquire)) return true;
    if (abort.load(std::memory_order_acquire)) return false;
    usleep(5 * 1000);
  }
  return false;
}

/// Drives one store-backed worker's full workload through
/// srv::ResilientClient with zero tolerance: no kills fire in this gauntlet,
/// so every round trip must succeed — any transport error or typed reject is
/// acknowledged-response loss and fails the run.
bool DriveSwapWorker(int w, const std::string& port_file, int sessions,
                     int points, const std::vector<std::string>& oracle,
                     SwapGates* gates) {
  srv::ResilientClientConfig cc;
  cc.port_file = port_file;
  cc.max_attempts = 40;
  cc.backoff_base_ms = 10;
  cc.backoff_cap_ms = 250;
  cc.io_timeout_ms = 2000;
  srv::ResilientClient rc(cc);
  auto fail = [w](const std::string& what, const std::string& got) {
    fprintf(stderr, "swap-gauntlet: w%d expected %s, got '%s'\n", w,
            what.c_str(), got.c_str());
    return false;
  };
  auto must = [&](const std::string& line,
                  const char* prefix) -> core::Result<std::string> {
    core::Result<std::string> r = rc.TryCmd(line);
    if (!r.ok()) {
      fail(prefix, r.status().ToString());
      return r.status();
    }
    if (!core::StartsWith(*r, prefix)) {
      fail(prefix, *r);
      return core::Status::Internal("unexpected response");
    }
    return r;
  };

  // Wait for the worker, then open dense session ids.
  {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    bool ready = false;
    while (!ready && std::chrono::steady_clock::now() < deadline) {
      if (rc.Connect().ok()) {
        core::Result<std::string> r = rc.TryCmd("health");
        ready = r.ok() && core::StartsWith(*r, "ok health ");
      }
      if (!ready) usleep(20 * 1000);
    }
    if (!ready) return fail("ok health (worker up)", "startup timeout");
  }
  for (int c = 0; c < sessions; ++c) {
    core::Result<std::string> r = rc.TryCmd("open");
    long long id = -1;
    if (!r.ok() || sscanf(r->c_str(), "ok open %lld", &id) != 1 || id != c) {
      return fail("ok open " + std::to_string(c),
                  r.ok() ? *r : r.status().ToString());
    }
  }
  int64_t tick_no = 0;
  if (!must(core::StrFormat("tick %" PRId64, ++tick_no), "ok tick").ok()) {
    return false;
  }

  // First half of every session, on the bootstrap generation.
  const int half = points / 2;
  int since_tick = 0;
  auto push_range = [&](int from, int to) {
    for (int p = from; p < to; ++p) {
      for (int c = 0; c < sessions; ++c) {
        if (!must(PushLine(c, p, points), "ok push").ok()) return false;
        if (++since_tick % 8 == 0 &&
            !must(core::StrFormat("tick %" PRId64, ++tick_no), "ok tick")
                 .ok()) {
          return false;
        }
      }
    }
    return true;
  };
  if (!push_range(0, half)) return false;
  gates->half_done.fetch_add(1, std::memory_order_acq_rel);
  if (!AwaitFlag(gates->swapped, gates->abort, 180)) {
    return fail("hot swap to land", "timeout/abort waiting at half-stream");
  }

  // Second half: the fleet's CURRENT now points at the new generation while
  // these sessions keep matching on the one they pinned at open — the output
  // must not care.
  if (!push_range(half, points)) return false;
  gates->full_done.fetch_add(1, std::memory_order_acq_rel);
  if (!AwaitFlag(gates->protocol_done, gates->abort, 180)) {
    return fail("corrupt-candidate campaign + rollback",
                "timeout/abort waiting fully streamed");
  }

  // Finish everything and diff committed output against the oracle.
  for (int c = 0; c < sessions; ++c) {
    if (!must(core::StrFormat("finish %d", c), "ok finish").ok()) return false;
  }
  core::Result<std::string> r = rc.TryCmd("await");
  if (!r.ok() || *r != "ok await") {
    return fail("ok await", r.ok() ? *r : r.status().ToString());
  }
  for (int c = 0; c < sessions; ++c) {
    r = must(core::StrFormat("committed %d", c), "ok committed");
    if (!r.ok()) return false;
    if (*r != oracle[c]) {
      fprintf(stderr,
              "swap-gauntlet: w%d session %d diverged from oracle\n"
              "  oracle:       %s\n  store-backed: %s\n",
              w, c, oracle[c].c_str(), r->c_str());
      return false;
    }
  }
  if (rc.reconnects() != 0) {
    fprintf(stderr,
            "swap-gauntlet: w%d needed %" PRId64
            " reconnects with no kill fire — a swap disturbed the transport\n",
            w, rc.reconnects());
    return false;
  }
  fprintf(stderr, "swap-gauntlet: w%d OK (committed byte-identical)\n", w);
  return true;
}

/// One frame-protocol control connection per worker, for fanning swap /
/// rollback / status verbs from the protocol driver while the client threads
/// keep their own load connections busy.
struct ControlConn {
  int fd = -1;
  std::string Cmd(const std::string& line) {
    if (fd < 0) return "";
    if (!srv::WriteFrame(fd, line).ok()) return "";
    core::Result<std::string> resp = srv::ReadFrame(fd);
    return resp.ok() ? *resp : "";
  }
  ~ControlConn() {
    if (fd >= 0) close(fd);
  }
};

/// The swap gauntlet: owned-mode oracle, then a supervised store-backed
/// fleet driven through build → swap → corrupt-candidate rejects → rollback
/// while every worker streams under load.
int RunSwapGauntlet(const std::map<std::string, std::string>& args) {
  const std::string serve_bin = Get(args, "serve-bin", "");
  if (serve_bin.empty()) {
    fprintf(stderr, "swap-gauntlet: --swap-gauntlet requires --serve-bin\n");
    return 2;
  }
  const int workers = std::max(1, GetInt(args, "workers", 4));
  const int sessions = GetInt(args, "sessions", 4);
  const int points = GetInt(args, "points", 24);
  const int threads = GetInt(args, "threads", 4);
  const std::string threads_str = std::to_string(threads);

  printf("swap-gauntlet: %d workers on one shared store, %d sessions x %d "
         "points each, %d engine threads\n",
         workers, sessions, points, threads);

  const std::string base = MakeTempDir();
  if (base.empty()) {
    perror("mkdtemp");
    return 1;
  }
  const std::string root = base + "/store";
  if (BuildStoreGen(root, 1, 10, 10, 200.0).empty()) return 1;
  {
    const core::Status st = store::PublishCurrent(root, 1);
    if (!st.ok()) {
      fprintf(stderr, "swap-gauntlet: publish gen 1: %s\n",
              st.ToString().c_str());
      return 1;
    }
  }

  // The oracle: an uninterrupted owned-mode run (no store at all), so the
  // comparison proves the mapped data plane changes nothing about results.
  std::vector<std::string> oracle;
  {
    ServeProc sp;
    if (!sp.Start({serve_bin, "--threads", threads_str})) return 1;
    DriveResult r = Drive(&sp, sessions, points, /*crash_after=*/-1,
                          /*durable=*/false);
    sp.Quit();
    if (!r.ok) return 1;
    oracle = std::move(r.committed);
  }
  printf("swap-gauntlet: owned-mode oracle complete (%zu committed lines)\n",
         oracle.size());

  std::vector<srv::WorkerSpec> specs;
  for (int w = 0; w < workers; ++w) {
    const std::string dir = base + "/w" + std::to_string(w);
    mkdir(dir.c_str(), 0755);
    srv::WorkerSpec spec;
    spec.name = "w" + std::to_string(w);
    spec.port_file = dir + "/port";
    spec.argv = {serve_bin,     "--threads", threads_str,
                 "--store",     root,        "--listen",
                 "127.0.0.1:0", "--port-file", spec.port_file};
    specs.push_back(std::move(spec));
  }
  srv::SupervisorConfig scfg;
  scfg.backoff.base_ticks = 2;
  scfg.backoff.cap_ticks = 32;
  scfg.health_interval_ticks = 10;
  scfg.health_grace_ticks = 200;
  scfg.health_misses = 4;
  scfg.health_timeout_ms = 500;

  std::mutex mu;
  srv::Supervisor sup(std::move(specs), scfg);
  const auto t0 = std::chrono::steady_clock::now();
  const auto tick = [t0] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - t0)
               .count() /
           10;
  };
  {
    std::lock_guard<std::mutex> lock(mu);
    const core::Status st = sup.StartAll(tick());
    if (!st.ok()) {
      fprintf(stderr, "swap-gauntlet: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::atomic<bool> stop{false};
  std::thread supervision([&] {
    while (!stop.load(std::memory_order_acquire)) {
      {
        std::lock_guard<std::mutex> lock(mu);
        sup.Poll(tick());
      }
      usleep(5 * 1000);
    }
  });

  SwapGates gates;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    clients.emplace_back([&, w] {
      if (!DriveSwapWorker(w, base + "/w" + std::to_string(w) + "/port",
                           sessions, points, oracle, &gates)) {
        ++failures;
        gates.abort.store(true, std::memory_order_release);
      }
    });
  }

  // --- The protocol driver (this thread). Any failure aborts the gates so
  // client threads unblock and the run fails fast. ---
  int rc = 0;
  auto protocol_fail = [&](const std::string& what, const std::string& got) {
    fprintf(stderr, "swap-gauntlet: expected %s, got '%s'\n", what.c_str(),
            got.c_str());
    rc = 1;
    gates.abort.store(true, std::memory_order_release);
  };
  std::vector<ControlConn> ctl(static_cast<size_t>(workers));
  auto fan = [&](const std::string& line, const std::string& expect_prefix,
                 const std::string& expect_contains) {
    for (int w = 0; w < workers && rc == 0; ++w) {
      const std::string resp = ctl[static_cast<size_t>(w)].Cmd(line);
      if (!core::StartsWith(resp, expect_prefix) ||
          (!expect_contains.empty() &&
           resp.find(expect_contains) == std::string::npos)) {
        protocol_fail("w" + std::to_string(w) + " '" + line + "' -> " +
                          expect_prefix + " ... " + expect_contains,
                      resp);
      }
    }
  };
  /// Every worker must still be serving the given generation — the corrupt
  /// candidates must never disturb the published pointer or the mapping.
  auto expect_serving = [&](int64_t gen) {
    fan("status", "ok status",
        core::StrFormat(" store_gen=%lld ", static_cast<long long>(gen)));
  };

  auto wait_count = [&](std::atomic<int>& counter, const char* what) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(180);
    while (counter.load(std::memory_order_acquire) < workers) {
      if (failures.load() != 0 ||
          std::chrono::steady_clock::now() >= deadline) {
        protocol_fail(what, "client failure or timeout");
        return false;
      }
      usleep(5 * 1000);
    }
    return true;
  };

  if (wait_count(gates.half_done, "all workers half-streamed")) {
    // Control connections (the port files are published by now).
    for (int w = 0; w < workers && rc == 0; ++w) {
      int port = 0;
      FILE* f = fopen((base + "/w" + std::to_string(w) + "/port").c_str(), "r");
      if (f != nullptr) {
        if (fscanf(f, "%d", &port) != 1) port = 0;
        fclose(f);
      }
      ctl[static_cast<size_t>(w)].fd = port > 0 ? DialLoopback(port) : -1;
      if (ctl[static_cast<size_t>(w)].fd < 0) {
        protocol_fail("control connection to w" + std::to_string(w),
                      "dial failed");
      }
    }

    // Build generation 2 while the fleet serves generation 1, then hot-swap
    // every worker. Same network: a routine model/asset rollout.
    if (rc == 0 && BuildStoreGen(root, 2, 10, 10, 200.0).empty()) {
      protocol_fail("gen 2 build", "StoreWriter failed");
    }
    if (rc == 0) {
      fan("swap 2", "ok swap gen=2 prev=1", "");
      expect_serving(2);
      printf("swap-gauntlet: hot swap to gen 2 landed on all %d workers\n",
             workers);
    }
  }
  gates.swapped.store(true, std::memory_order_release);

  if (rc == 0 && wait_count(gates.full_done, "all workers fully streamed")) {
    // The corrupt-candidate campaign: every fault class a rollout can meet,
    // each fanned to every worker, each a typed file+offset reject with the
    // old generation untouched.
    const std::string gen3 = store::StorePath(root, 3);
    struct Corruption {
      const char* name;
      const char* expect;     ///< Substring of the typed reject.
      bool same_network;      ///< false: built from a different grid.
      std::function<core::Status(const std::string&)> inject;
    };
    const std::vector<Corruption> campaign = {
        {"torn-tail", "torn tail", true,
         [](const std::string& p) { return io::TornTail(p, 5); }},
        {"bit-flip", "CRC mismatch", true,
         [](const std::string& p) { return io::FlipBit(p, 1000, 5); }},
        {"garbage-header", "bad magic", true,
         [](const std::string& p) {
           return io::InjectGarbage(p, 0, "NOTSTORE");
         }},
        {"future-version", "format version skew", true,
         [](const std::string& p) {
           return PatchFutureVersion(p)
                      ? core::Status::Ok()
                      : core::Status::IoError("patch failed");
         }},
        {"wrong-network", "fingerprint mismatch", false,
         [](const std::string&) { return core::Status::Ok(); }},
    };
    for (const Corruption& c : campaign) {
      if (rc != 0) break;
      const std::string built =
          c.same_network ? BuildStoreGen(root, 3, 10, 10, 200.0)
                         : BuildStoreGen(root, 3, 8, 12, 200.0);
      if (built.empty()) {
        protocol_fail("gen 3 candidate build", c.name);
        break;
      }
      const core::Status injected = c.inject(built);
      if (!injected.ok()) {
        protocol_fail("fault injection", injected.ToString());
        break;
      }
      // Typed reject naming the file and byte offset, on every worker...
      fan("swap 3", "err ", c.expect);
      if (rc == 0) {
        fan("swap 3", "err ", "offset");
        // ...and the serving generation is untouched.
        expect_serving(2);
        printf("swap-gauntlet: corrupt candidate '%s' rejected typed, gen 2 "
               "still serving\n",
               c.name);
      }
    }

    // Crash-safe rollback: back to generation 1 on every worker.
    if (rc == 0) {
      fan("rollback", "ok rollback gen=1 prev=2", "");
      expect_serving(1);
      printf("swap-gauntlet: rollback to gen 1 landed on all %d workers\n",
             workers);
    }
  }
  gates.protocol_done.store(true, std::memory_order_release);

  for (std::thread& t : clients) t.join();
  if (failures.load() != 0) rc = 1;

  // Graceful drain under the mutex with the supervision thread still alive
  // (restarted workers would be PDEATHSIG-tied to it; none restart here, but
  // the discipline is the same as the fleet gauntlet's).
  {
    std::lock_guard<std::mutex> lock(mu);
    for (int w = 0; w < workers; ++w) {
      const srv::WorkerStatus& st = sup.status(w);
      if (st.restarts != 0) {
        fprintf(stderr,
                "swap-gauntlet: w%d restarted %" PRId64
                " times — a swap or reject crashed a worker\n",
                w, st.restarts);
        rc = 1;
      }
    }
    sup.Drain();
    const int stragglers = sup.WaitAll(15000);
    if (stragglers != 0) {
      fprintf(stderr, "swap-gauntlet: %d workers did not drain in time\n",
              stragglers);
      rc = 1;
    }
  }
  stop.store(true, std::memory_order_release);
  supervision.join();
  for (int w = 0; w < workers; ++w) {
    if (sup.status(w).clean_exits < 1) {
      fprintf(stderr, "swap-gauntlet: w%d did not exit clean on drain\n", w);
      rc = 1;
    }
  }
  if (rc == 0) {
    std::error_code ec;
    std::filesystem::remove_all(base, ec);
    printf("swap-gauntlet: OK\n");
  }
  return rc;
}

// ---------------------------------------------------------------------------
// Chaos gauntlet: scheduled resource exhaustion against in-process servers.
// ---------------------------------------------------------------------------

/// Scenario invariant reporter: prints and counts, never aborts — every
/// scenario runs to the end so one violation cannot mask another.
using Check = std::function<void(bool, const std::string&)>;

/// One frame-protocol loopback connection against an in-process NetServer.
struct FrameConn {
  int fd = -1;
  ~FrameConn() { Close(); }
  void Close() {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  bool Dial(int port) {
    fd = DialLoopback(port);
    return fd >= 0;
  }
  std::string Cmd(const std::string& line) {
    if (fd < 0 || !srv::WriteFrame(fd, line).ok()) return "";
    core::Result<std::string> resp = srv::ReadFrame(fd);
    return resp.ok() ? *resp : "";
  }
  /// True when the server closed this connection (clean EOF) within the
  /// timeout — the observable signature of an accepted-then-shed socket.
  bool SawEof(int timeout_ms) {
    pollfd p = {fd, POLLIN, 0};
    if (poll(&p, 1, timeout_ms) <= 0) return false;
    char b = 0;
    return recv(fd, &b, 1, 0) == 0;
  }
};

/// The deterministic world every in-process chaos scenario runs in. The
/// faulted run, the no-fault oracle run, and the recovered run all share this
/// city and schedule, so committed output is comparable element-for-element.
struct ChaosWorld {
  network::RoadNetwork net = network::GenerateGridNetwork(10, 10, 200.0);
  network::GridIndex index{&net, 150.0};

  std::vector<srv::TierSpec> Tiers() {
    hmm::ClassicModelConfig models;
    const network::RoadNetwork* n = &net;
    const network::GridIndex* ix = &index;
    std::vector<srv::TierSpec> tiers;
    tiers.push_back({"IVMM", [n, ix, models] {
                       return std::make_unique<matchers::IvmmMatcher>(
                           n, ix, models, /*k=*/8);
                     }});
    return tiers;
  }

  static srv::ServerConfig Config(int threads) {
    srv::ServerConfig config;
    config.engine.num_threads = threads;
    config.engine.lag = 4;
    config.engine.max_inbox = 256;
    // Admission stays out of the way: the only pressure in these scenarios
    // is the injected resource exhaustion itself.
    config.admission.open_rate_per_tick = 64.0;
    config.admission.open_burst = 64.0;
    config.admission.push_rate_per_tick = 4096.0;
    config.admission.push_burst = 4096.0;
    config.admission.max_queue_depth = 1 << 20;
    return config;
  }

  /// Point p of session c: a walk across grid row c, inside the city for
  /// every p < points. Pure function of its arguments.
  static traj::TrajPoint Pt(int c, int p, int points) {
    const double x = 10.0 + (1780.0 / (points - 1)) * p;
    const double y = 200.0 * (c % 10) + 10.0;
    return {{x, y}, 15.0 * p, static_cast<traj::TowerId>(p)};
  }
};

/// Collects each session's committed path after quiescing the engine.
std::vector<std::vector<network::SegmentId>> CommittedOf(
    srv::MatchServer* server, int sessions) {
  server->Barrier();
  std::vector<std::vector<network::SegmentId>> out;
  out.reserve(static_cast<size_t>(sessions));
  for (int c = 0; c < sessions; ++c) out.push_back(server->Committed(c));
  return out;
}

/// The scenarios' fixed schedule with no faults: open every session, then one
/// push per session per tick, finish after the last point, two settle ticks.
std::vector<std::vector<network::SegmentId>> ChaosOracle(int threads,
                                                         int sessions,
                                                         int points) {
  ChaosWorld world;
  srv::MatchServer server(world.Tiers(), ChaosWorld::Config(threads));
  for (int c = 0; c < sessions; ++c) (void)server.OpenSession();
  for (int t = 1; t <= points + 2; ++t) {
    server.Tick(t);
    if (t <= points) {
      for (int c = 0; c < sessions; ++c) {
        (void)server.Push(c, ChaosWorld::Pt(c, t - 1, points));
      }
    }
    if (t == points + 1) {
      for (int c = 0; c < sessions; ++c) (void)server.Finish(c);
    }
  }
  return CommittedOf(&server, sessions);
}

/// Recovers the durable directory into a fresh server and requires its
/// committed output to match the live run's exactly.
void CheckRecoveryIdentity(const std::string& scenario, int threads,
                           const srv::DurabilityConfig& durability,
                           const std::vector<std::vector<network::SegmentId>>&
                               live,
                           const Check& check) {
  ChaosWorld world;
  srv::RecoveryReport report;
  core::Result<std::unique_ptr<srv::MatchServer>> recovered = srv::Recover(
      world.Tiers(), ChaosWorld::Config(threads), durability, &report);
  check(recovered.ok(), scenario + ": post-storm recovery succeeds" +
                            (recovered.ok()
                                 ? ""
                                 : " (" + recovered.status().ToString() + ")"));
  if (!recovered.ok()) return;
  const auto after =
      CommittedOf(recovered->get(), static_cast<int>(live.size()));
  check(after == live,
        scenario + ": recovered committed output is identical to the live run");
}

/// Scenario: a scheduled low-disk window. statvfs reports 1000 free bytes on
/// ticks 4..7 (below the 1MB low watermark), then the real filesystem again.
/// The server must enter degraded-nondurable mode on exactly tick 4, ack
/// every in-window push kDataLoss (--fsync record semantics), refuse
/// checkpoints with a typed kUnavailable, restore durability via the exit
/// checkpoint on tick 8, and both the oracle diff and a post-run recovery
/// must be byte-identical — the excursion is observable in acks and status,
/// never in results.
void ChaosDiskFullWindow(int threads, const Check& check) {
  constexpr int kSessions = 4;
  constexpr int kPoints = 12;
  constexpr int kWindowFirst = 4;
  constexpr int kWindowLast = 7;
  const std::string dir = MakeTempDir();
  if (dir.empty()) {
    check(false, "disk-full: mkdtemp");
    return;
  }

  io::FaultEnv env;
  io::EnvFaultRule window;
  window.op = io::EnvOp::kStatvfs;
  window.at_count = kWindowFirst;  // One statvfs sample per tick.
  window.repeat = kWindowLast - kWindowFirst + 1;
  window.free_bytes_override = 1000;
  env.AddRule(window);

  ChaosWorld world;
  auto server = std::make_unique<srv::MatchServer>(world.Tiers(),
                                                   ChaosWorld::Config(threads));
  srv::DurabilityConfig durability;
  durability.dir = dir;
  durability.journal.fsync = io::FsyncPolicy::kEveryRecord;
  durability.env = &env;
  durability.disk_guard.low_watermark_bytes = 1 << 20;
  durability.disk_guard.high_watermark_bytes = 2 << 20;
  durability.disk_guard.enter_after = 1;
  durability.disk_guard.exit_after = 1;
  check(server->EnableDurability(durability).ok(),
        "disk-full: durability enables on a fresh directory");

  for (int c = 0; c < kSessions; ++c) {
    check(server->OpenSession().ok(), "disk-full: session opens");
  }
  int64_t data_loss_acks = 0;
  int64_t wrong_acks = 0;
  int transition_mismatches = 0;
  bool checkpoint_refused = false;
  for (int t = 1; t <= kPoints + 2; ++t) {
    server->Tick(t);
    const bool want_degraded = t >= kWindowFirst && t <= kWindowLast;
    if (server->degraded_nondurable() != want_degraded) {
      ++transition_mismatches;
      fprintf(stderr, "disk-full: after tick %d degraded=%d, schedule says %d\n",
              t, server->degraded_nondurable() ? 1 : 0, want_degraded ? 1 : 0);
    }
    if (t == kWindowFirst + 1) {
      checkpoint_refused =
          server->Checkpoint().code() == core::StatusCode::kUnavailable;
    }
    if (t <= kPoints) {
      for (int c = 0; c < kSessions; ++c) {
        const core::Status st = server->Push(c, ChaosWorld::Pt(c, t - 1, kPoints));
        if (want_degraded) {
          if (st.code() == core::StatusCode::kDataLoss) {
            ++data_loss_acks;
          } else {
            ++wrong_acks;
          }
        } else if (!st.ok()) {
          ++wrong_acks;
        }
      }
    }
    if (t == kPoints + 1) {
      for (int c = 0; c < kSessions; ++c) {
        check(server->Finish(c).ok(), "disk-full: post-window finish acks ok");
      }
    }
  }

  const srv::DurabilityStatus d = server->durability_status();
  check(transition_mismatches == 0,
        "disk-full: degraded transitions happen on exactly the scheduled ticks");
  check(d.degraded_entered == 1 && d.degraded_exited == 1,
        "disk-full: exactly one degraded episode");
  check(checkpoint_refused,
        "disk-full: an in-window checkpoint is a typed kUnavailable");
  constexpr int64_t kWindowPushes =
      static_cast<int64_t>(kSessions) * (kWindowLast - kWindowFirst + 1);
  check(data_loss_acks == kWindowPushes && wrong_acks == 0,
        "disk-full: every in-window push acks kDataLoss, every other push ok");
  check(d.events_not_journaled >= kWindowPushes,
        "disk-full: the un-journaled window is counted in status");
  check(d.snapshot_generation >= 1, "disk-full: the exit checkpoint landed");
  check(!d.journal_wedged, "disk-full: a full disk never wedges the journal");

  const auto live = CommittedOf(server.get(), kSessions);
  server.reset();  // Release the journal before recovery reopens the dir.
  env.ClearRules();
  CheckRecoveryIdentity("disk-full", threads, durability, live, check);
  check(live == ChaosOracle(threads, kSessions, kPoints),
        "disk-full: the degraded excursion is invisible in committed output");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

/// Scenario: a persistent ENOSPC storm on the journal — every wal- write
/// fails for ticks 5..8 under group commit (--fsync tick) with tiny segments,
/// so the storm hits mid-rotation too. The failure streak (2) must force
/// degraded mode with the watermark monitor disabled, group-commit acks stay
/// plain ok throughout, the tail is sealed (truncate repair) rather than left
/// torn, clearing the storm restores durability, and the on-disk journal must
/// scan clean with zero torn bytes afterwards.
void ChaosJournalStorm(int threads, const Check& check) {
  constexpr int kSessions = 4;
  constexpr int kPoints = 12;
  constexpr int kStormFirst = 5;  // Rules added before this tick...
  constexpr int kStormLast = 8;   // ...and cleared after this one.
  const std::string dir = MakeTempDir();
  if (dir.empty()) {
    check(false, "journal-storm: mkdtemp");
    return;
  }

  io::FaultEnv env;
  ChaosWorld world;
  auto server = std::make_unique<srv::MatchServer>(world.Tiers(),
                                                   ChaosWorld::Config(threads));
  srv::DurabilityConfig durability;
  durability.dir = dir;
  // Segments hold a few ticks of records: the storm's first failed commit
  // then lands on a tail append (exercising the seal-and-truncate repair)
  // and the next one on the rotation that follows the sealed tail.
  durability.journal.fsync = io::FsyncPolicy::kEveryTick;
  durability.journal.segment_bytes = 4096;
  durability.env = &env;
  durability.disk_guard.low_watermark_bytes = 0;  // Watermarks off:
  durability.disk_guard.journal_failure_streak = 2;  // the streak must act.
  check(server->EnableDurability(durability).ok(),
        "journal-storm: durability enables on a fresh directory");

  for (int c = 0; c < kSessions; ++c) {
    check(server->OpenSession().ok(), "journal-storm: session opens");
  }
  int64_t wrong_acks = 0;
  int transition_mismatches = 0;
  for (int t = 1; t <= kPoints + 2; ++t) {
    if (t == kStormFirst) {
      // A full disk fails *writes*; truncation (the seal repair) still works.
      io::EnvFaultRule storm;
      storm.op = io::EnvOp::kWrite;
      storm.path_substr = "wal-";
      storm.repeat = -1;
      storm.fault_errno = ENOSPC;
      env.AddRule(storm);
    }
    if (t == kStormLast + 1) env.ClearRules();
    server->Tick(t);
    // Streak of 2: the first failed tick-commit arms, the second degrades;
    // the first post-storm tick's restore checkpoint exits.
    const bool want_degraded = t >= kStormFirst + 1 && t <= kStormLast;
    if (server->degraded_nondurable() != want_degraded) {
      ++transition_mismatches;
      fprintf(stderr,
              "journal-storm: after tick %d degraded=%d, schedule says %d\n", t,
              server->degraded_nondurable() ? 1 : 0, want_degraded ? 1 : 0);
    }
    if (t <= kPoints) {
      for (int c = 0; c < kSessions; ++c) {
        // Group commit never promised per-record durability, so acks stay ok
        // through the whole storm; degraded status is the client's signal.
        if (!server->Push(c, ChaosWorld::Pt(c, t - 1, kPoints)).ok()) {
          ++wrong_acks;
        }
      }
    }
    if (t == kPoints + 1) {
      for (int c = 0; c < kSessions; ++c) {
        check(server->Finish(c).ok(), "journal-storm: finish acks ok");
      }
    }
  }

  const srv::DurabilityStatus d = server->durability_status();
  check(transition_mismatches == 0,
        "journal-storm: degraded transitions happen on the scheduled ticks");
  check(d.degraded_entered == 1 && d.degraded_exited == 1,
        "journal-storm: exactly one degraded episode");
  check(wrong_acks == 0,
        "journal-storm: group-commit acks stay ok through the storm");
  check(d.journal_seal_events >= 1,
        "journal-storm: the failed commit sealed the tail segment");
  check(d.journal_errors >= 2, "journal-storm: failed commits are counted");
  check(!d.journal_wedged,
        "journal-storm: ENOSPC writes never wedge the journal");
  check(d.snapshot_generation >= 1,
        "journal-storm: the restore checkpoint landed");

  const auto live = CommittedOf(server.get(), kSessions);
  server.reset();
  // The on-disk journal must be pristine: every segment truncated to its
  // valid prefix by the seal repair, no torn tail, no corruption.
  core::Result<io::JournalScan> scan = io::ScanJournal(dir, false);
  check(scan.ok() && scan->clean && !scan->torn_tail,
        "journal-storm: the journal scans clean after the storm");
  if (scan.ok()) {
    for (const io::SegmentInfo& seg : scan->segments) {
      check(seg.file_bytes == seg.valid_bytes,
            "journal-storm: no segment carries torn bytes past its last "
            "valid record");
    }
  }
  CheckRecoveryIdentity("journal-storm", threads, durability, live, check);
  check(live == ChaosOracle(threads, kSessions, kPoints),
        "journal-storm: the storm is invisible in committed output");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

/// Scenario: every snapshot-write failure mode (ENOSPC data write, failed
/// fsync, failed rename) against Checkpoint(). A failed checkpoint must not
/// advance the snapshot generation, must not leave a temp file or a readable
/// partial generation behind, and must not flip the server degraded; the
/// retry once the fault clears must succeed and recover byte-identically.
void ChaosSnapshotFaults(int threads, const Check& check) {
  constexpr int kSessions = 3;
  constexpr int kPoints = 8;
  constexpr int kCheckpointTick = 4;  // Mid-stream: sessions must stay live
                                      // (snapshots capture only live state;
                                      // finished results travel by journal).
  const std::string dir = MakeTempDir();
  if (dir.empty()) {
    check(false, "snapshot: mkdtemp");
    return;
  }

  io::FaultEnv env;
  ChaosWorld world;
  auto server = std::make_unique<srv::MatchServer>(world.Tiers(),
                                                   ChaosWorld::Config(threads));
  srv::DurabilityConfig durability;
  durability.dir = dir;
  durability.journal.fsync = io::FsyncPolicy::kEveryTick;
  durability.env = &env;
  check(server->EnableDurability(durability).ok(),
        "snapshot: durability enables on a fresh directory");
  for (int c = 0; c < kSessions; ++c) {
    check(server->OpenSession().ok(), "snapshot: session opens");
  }
  for (int t = 1; t <= kPoints + 2; ++t) {
    server->Tick(t);
    if (t <= kPoints) {
      for (int c = 0; c < kSessions; ++c) {
        check(server->Push(c, ChaosWorld::Pt(c, t - 1, kPoints)).ok(),
              "snapshot: push acks ok");
      }
    }
    if (t == kCheckpointTick) {
      check(server->Checkpoint().ok(),
            "snapshot: baseline checkpoint succeeds");
      check(server->durability_status().snapshot_generation == 1,
            "snapshot: baseline checkpoint is generation 1");
      const io::EnvOp kOps[] = {io::EnvOp::kWrite, io::EnvOp::kFsync,
                                io::EnvOp::kRename};
      for (const io::EnvOp op : kOps) {
        env.ClearRules();
        io::EnvFaultRule rule;
        rule.op = op;
        rule.path_substr = "snapshot-";
        rule.fault_errno = op == io::EnvOp::kWrite ? ENOSPC : EIO;
        env.AddRule(rule);
        check(!server->Checkpoint().ok(),
              "snapshot: a faulted checkpoint reports its failure");
        check(server->durability_status().snapshot_generation == 1,
              "snapshot: a failed checkpoint never advances the generation");
        check(srv::ListSnapshotGenerations(dir) == std::vector<int>{1},
              "snapshot: a failed checkpoint leaves no readable new "
              "generation");
        bool tmp_left = false;
        for (const auto& entry : std::filesystem::directory_iterator(dir)) {
          if (entry.path().string().find(".tmp") != std::string::npos) {
            tmp_left = true;
          }
        }
        check(!tmp_left, "snapshot: a failed checkpoint leaves no temp file");
        check(!server->degraded_nondurable(),
              "snapshot: one failed checkpoint does not degrade the server");
      }
      env.ClearRules();
      check(server->Checkpoint().ok(),
            "snapshot: the checkpoint succeeds once the fault clears");
      check(server->durability_status().snapshot_generation == 2,
            "snapshot: the retried checkpoint is generation 2");
    }
    if (t == kPoints + 1) {
      for (int c = 0; c < kSessions; ++c) {
        check(server->Finish(c).ok(), "snapshot: finish acks ok");
      }
    }
  }

  const auto live = CommittedOf(server.get(), kSessions);
  server.reset();
  CheckRecoveryIdentity("snapshot", threads, durability, live, check);
  check(live == ChaosOracle(threads, kSessions, kPoints),
        "snapshot: checkpoint churn is invisible in committed output");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

/// Scenario: the versioned store's publish pointer under fault. A failed
/// CURRENT write, fsync, or rename must leave the old generation serving
/// (CURRENT intact, no temp debris); the retry must flip it.
void ChaosStorePublishFaults(const Check& check) {
  const std::string base = MakeTempDir();
  if (base.empty()) {
    check(false, "store-publish: mkdtemp");
    return;
  }
  const std::string root = base + "/store";
  check(!BuildStoreGen(root, 1, 6, 6, 200.0).empty(),
        "store-publish: generation 1 builds");
  check(store::PublishCurrent(root, 1).ok(),
        "store-publish: generation 1 publishes");
  check(!BuildStoreGen(root, 2, 6, 6, 200.0).empty(),
        "store-publish: generation 2 builds");

  io::FaultEnv env;
  const io::EnvOp kOps[] = {io::EnvOp::kWrite, io::EnvOp::kFsync,
                            io::EnvOp::kRename};
  for (const io::EnvOp op : kOps) {
    env.ClearRules();
    io::EnvFaultRule rule;
    rule.op = op;
    rule.path_substr = "CURRENT";
    rule.fault_errno = op == io::EnvOp::kWrite ? ENOSPC : EIO;
    env.AddRule(rule);
    check(!store::PublishCurrent(root, 2, &env).ok(),
          "store-publish: a faulted publish reports its failure");
    core::Result<int64_t> cur = store::ReadCurrent(root);
    check(cur.ok() && *cur == 1,
          "store-publish: CURRENT still points at the old generation after a "
          "failed publish");
    bool tmp_left = false;
    for (const auto& entry : std::filesystem::directory_iterator(root)) {
      if (entry.path().string().find(".tmp") != std::string::npos) {
        tmp_left = true;
      }
    }
    check(!tmp_left, "store-publish: a failed publish leaves no temp file");
  }
  env.ClearRules();
  check(store::PublishCurrent(root, 2, &env).ok(),
        "store-publish: the publish succeeds once the fault clears");
  core::Result<int64_t> cur = store::ReadCurrent(root);
  check(cur.ok() && *cur == 2, "store-publish: the retry flips CURRENT");
  std::error_code ec;
  std::filesystem::remove_all(base, ec);
}

/// Scenario: an EMFILE accept storm against an in-process NetServer. One
/// transient EMFILE must shed the next connection via the reserve fd (the
/// peer sees a clean EOF, never a hang); a sustained storm must pull the
/// listener out of the poll set (no busy spin) and serve the backlogged
/// connection once descriptors return — ending with a full framed session
/// and a `status` line carrying the degraded fields over this transport.
void ChaosAcceptStorm(int threads, const Check& check) {
  ChaosWorld world;
  srv::MatchServer server(world.Tiers(), ChaosWorld::Config(threads));
  io::FaultEnv env;
  srv::NetServerConfig ncfg;
  ncfg.env = &env;
  ncfg.poll_interval_ms = 20;
  srv::NetServer net(&server, srv::CommandOptions{}, ncfg);
  check(net.Listen().ok(), "accept-storm: listener binds");
  std::atomic<bool> stop{false};
  core::Status run_status;
  std::thread serving([&] { run_status = net.Run(stop); });

  {
    // Phase A: a single EMFILE. The reserve fd is surrendered, the pending
    // connection accepted and immediately closed — a clean typed shed.
    io::EnvFaultRule once;
    once.op = io::EnvOp::kAccept;
    once.repeat = 1;
    once.fault_errno = EMFILE;
    env.AddRule(once);
    FrameConn shed;
    check(shed.Dial(net.port()), "accept-storm: phase-A dial connects");
    check(shed.SawEof(2000),
          "accept-storm: an fd-pressure shed is a clean EOF, not a hang");
  }
  {
    // Phase B: EMFILE forever — even the reserve-fd retry fails, so the
    // listener must drop out of the poll set instead of spinning on a
    // permanently readable fd.
    io::EnvFaultRule storm;
    storm.op = io::EnvOp::kAccept;
    storm.repeat = -1;
    storm.fault_errno = EMFILE;
    env.AddRule(storm);
    FrameConn waiting;
    check(waiting.Dial(net.port()), "accept-storm: phase-B dial connects");
    usleep(400 * 1000);  // The storm rages; `waiting` sits in the backlog.
    env.ClearRules();
    check(waiting.Cmd("pid").rfind("ok pid ", 0) == 0,
          "accept-storm: the backlogged connection is served once the storm "
          "clears");
    check(waiting.Cmd("open").rfind("ok open", 0) == 0,
          "accept-storm: opens serve after the storm");
    for (int p = 0; p < 4; ++p) {
      check(waiting.Cmd(PushLine(0, p, 4)).rfind("ok push", 0) == 0,
            "accept-storm: pushes serve after the storm");
    }
    check(waiting.Cmd("tick 1").rfind("ok tick", 0) == 0,
          "accept-storm: ticks serve after the storm");
    check(waiting.Cmd("finish 0").rfind("ok finish", 0) == 0,
          "accept-storm: finish serves after the storm");
    check(waiting.Cmd("await") == "ok await",
          "accept-storm: await serves after the storm");
    check(waiting.Cmd("committed 0").rfind("ok committed", 0) == 0,
          "accept-storm: committed output serves after the storm");
    const std::string status = waiting.Cmd("status");
    check(status.rfind("ok status", 0) == 0 &&
              status.find(" degraded=0") != std::string::npos,
          "accept-storm: status carries the degraded field over frames");
  }
  stop.store(true);
  serving.join();
  check(run_status.ok(), "accept-storm: the serving loop exits cleanly");
  const srv::NetMetrics m = net.metrics();
  check(m.accepted_shed >= 1, "accept-storm: the phase-A connection was shed");
  check(m.accept_failures >= 1,
        "accept-storm: sustained-storm failures were counted");
  // ~1 second of serving at a 20ms poll cadence plus client traffic is well
  // under 2000 wakeups; a busy-spinning listener would show hundreds of
  // thousands.
  check(m.poll_wakeups < 2000,
        "accept-storm: an fd-starved listener must not busy-spin the poll "
        "loop");
}

/// Scenario (requires --serve-bin): a REAL lhmm_serve child with
/// RLIMIT_NOFILE clamped to 32, hit with a 48-connection loopback storm. The
/// kernel completes every handshake; the starved server must shed the
/// overflow with clean EOFs, keep serving its existing connection through
/// the storm, and serve a full session once descriptors free — never dying,
/// wedging, or spinning.
void ChaosRealFdStarvation(const std::string& serve_bin, int threads,
                           const Check& check) {
  if (serve_bin.empty()) {
    printf(
        "chaos-gauntlet: --serve-bin not given; skipping the real-rlimit "
        "accept storm\n");
    return;
  }
  ServeProc sp;
  sp.rlimit_nofile = 32;
  if (!sp.StartSocket({serve_bin, "--threads", std::to_string(threads)})) {
    check(false, "rlimit-storm: server starts under RLIMIT_NOFILE=32");
    return;
  }
  std::string resp = sp.Cmd("status");
  check(resp.rfind("ok status", 0) == 0 &&
            resp.find(" degraded=0") != std::string::npos,
        "rlimit-storm: status reports the degraded field over the socket");

  std::vector<int> extras;
  for (int i = 0; i < 48; ++i) {
    const int fd = DialLoopback(sp.port, 50);
    if (fd >= 0) extras.push_back(fd);
  }
  check(extras.size() == 48,
        "rlimit-storm: every storm connection completes the TCP handshake");
  // The starved accept loop sheds what it cannot hold; wait for at least one
  // clean EOF (re-polling: the shed pace is bounded by the accept cadence).
  int eofs = 0;
  for (int attempt = 0; attempt < 150 && eofs == 0; ++attempt) {
    for (const int fd : extras) {
      pollfd p = {fd, POLLIN, 0};
      char b = 0;
      if (poll(&p, 1, 0) > 0 && recv(fd, &b, 1, MSG_DONTWAIT) == 0) ++eofs;
    }
    if (eofs == 0) usleep(20 * 1000);
  }
  check(eofs >= 1, "rlimit-storm: fd pressure sheds connections with a clean "
                   "EOF");
  resp = sp.Cmd("status");
  check(resp.rfind("ok status", 0) == 0,
        "rlimit-storm: the control connection stays served through the storm");
  for (const int fd : extras) close(fd);

  resp = sp.Cmd("open");
  check(resp.rfind("ok open", 0) == 0, "rlimit-storm: opens serve after the "
                                       "storm");
  for (int p = 0; p < 4; ++p) {
    check(sp.Cmd(PushLine(0, p, 4)).rfind("ok push", 0) == 0,
          "rlimit-storm: pushes serve after the storm");
  }
  check(sp.Cmd("tick 1").rfind("ok tick", 0) == 0,
        "rlimit-storm: ticks serve after the storm");
  check(sp.Cmd("finish 0").rfind("ok finish", 0) == 0,
        "rlimit-storm: finish serves after the storm");
  check(sp.Quit(), "rlimit-storm: clean shutdown after the storm");
}

int RunChaosGauntlet(const std::map<std::string, std::string>& args) {
  const int threads = GetInt(args, "threads", 4);
  const std::string serve_bin = Get(args, "serve-bin", "");
  printf("chaos-gauntlet: %d engine threads%s\n", threads,
         serve_bin.empty() ? " (in-process scenarios only)" : "");

  int failures = 0;
  const Check check = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      fprintf(stderr, "INVARIANT VIOLATED: %s\n", what.c_str());
      ++failures;
    }
  };
  const auto run = [&](const char* name, const std::function<void()>& fn) {
    const int before = failures;
    fn();
    printf("chaos-gauntlet: %-28s %s\n", name,
           failures == before ? "OK" : "FAILED");
  };
  run("disk-full degraded window",
      [&] { ChaosDiskFullWindow(threads, check); });
  run("journal ENOSPC storm", [&] { ChaosJournalStorm(threads, check); });
  run("snapshot checkpoint faults",
      [&] { ChaosSnapshotFaults(threads, check); });
  run("store publish faults", [&] { ChaosStorePublishFaults(check); });
  run("EMFILE accept storm", [&] { ChaosAcceptStorm(threads, check); });
  run("real-rlimit accept storm",
      [&] { ChaosRealFdStarvation(serve_bin, threads, check); });

  if (failures > 0) {
    fprintf(stderr, "chaos-gauntlet: %d invariant(s) FAILED\n", failures);
    return 1;
  }
  printf("chaos-gauntlet: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A worker dying mid-conversation must never SIGPIPE the harness.
  std::signal(SIGPIPE, SIG_IGN);
  const auto args = ParseArgs(argc, argv);
  if (GetInt(args, "chaos-gauntlet", 0) != 0) return RunChaosGauntlet(args);
  if (GetInt(args, "swap-gauntlet", 0) != 0) return RunSwapGauntlet(args);
  if (GetInt(args, "fleet-gauntlet", 0) != 0) return RunFleetGauntlet(args);
  if (GetInt(args, "net-smoke", 0) != 0) return RunNetSmoke(args);
  if (args.count("crash-at") != 0) return RunCrashGauntlet(args);
  const bool smoke = GetInt(args, "smoke", 0) != 0;

  const int sessions = GetInt(args, "sessions", smoke ? 24 : 120);
  const int points = GetInt(args, "points", smoke ? 16 : 40);
  const int threads = GetInt(args, "threads", 4);
  const int max_ticks = GetInt(args, "max-ticks", 20000);
  const double failure_rate =
      GetDouble(args, "route-failure-rate", smoke ? 0.02 : 0.05);
  const double latency_rate = GetDouble(args, "latency-rate", 0.0);
  const uint64_t seed = static_cast<uint64_t>(GetInt(args, "seed", 1234));
  // Barrier every N ticks so the producer cannot outrun the workers by whole
  // phases: pressure deltas (route failures, queue depth) then land inside
  // the tick windows that sample them, which is what lets the degrade ladder
  // react within the run. At a barrier tick the deltas are settled and
  // deterministic. 0 disables pacing.
  const int pace = GetInt(args, "pace", 4);

  // A grid city with fault injection underneath the shared route cache.
  network::RoadNetwork net = network::GenerateGridNetwork(10, 10, 200.0);
  network::GridIndex index(&net, 150.0);
  network::FaultConfig faults;
  faults.route_failure_rate = failure_rate;
  faults.latency_rate = latency_rate;
  faults.seed = seed;
  network::SegmentRouter router(&net);
  network::FaultyRouter faulty(&router, faults);

  // Degrade tiers: full-k IVMM down to a lean STM.
  hmm::ClassicModelConfig models;
  std::vector<srv::TierSpec> tiers;
  tiers.push_back({"IVMM", [&net, &index, models] {
                     return std::make_unique<matchers::IvmmMatcher>(
                         &net, &index, models, 10);
                   }});
  hmm::EngineConfig stm_engine;
  stm_engine.k = 8;
  tiers.push_back({"STM", [&net, &index, models, stm_engine] {
                     return std::make_unique<matchers::StmMatcher>(
                         &net, &index, models, stm_engine);
                   }});

  srv::ServerConfig config;
  config.engine.num_threads = threads;
  config.engine.lag = 4;
  config.engine.shared_router = &faulty;
  config.engine.max_inbox = 64;
  config.engine.session_ttl = 500;
  config.admission.open_rate_per_tick = 2.0;
  config.admission.open_burst = 8.0;
  config.admission.push_rate_per_tick = 48.0;
  config.admission.push_burst = 96.0;
  config.admission.max_queue_depth = 4096;
  config.degrade.overload_route_failures = smoke ? 4 : 16;
  config.degrade.overload_shed = 64;
  config.degrade.downgrade_after = 2;
  config.degrade.recover_after = 4;
  config.default_deadline_ticks = 5000;
  config.fault_signal = &faulty;

  srv::MatchServer server(std::move(tiers), config);
  core::Rng rng(seed);

  // Build the client fleet: walks across distinct grid rows, a few of which
  // abandon their session mid-stream (TTL eviction food).
  std::vector<Client> clients(static_cast<size_t>(sessions));
  for (int c = 0; c < sessions; ++c) {
    Client& cl = clients[c];
    const double y = 200.0 * (c % 10) + 10.0;
    const double x0 = 50.0 + 30.0 * (c % 5);
    for (int p = 0; p < points; ++p) {
      cl.traj.points.push_back(
          {{x0 + 180.0 * p, y}, 15.0 * p, static_cast<traj::TowerId>(p)});
    }
    cl.abandons = (c % 11 == 7);
    cl.ready_at = c / 4;  // Staggered arrivals.
  }

  Tally tally;
  int64_t tick = 0;
  int done = 0;
  for (; tick < max_ticks && done < sessions; ++tick) {
    if (pace > 0 && tick % pace == pace - 1) server.Barrier();
    server.Tick(tick);
    for (Client& cl : clients) {
      if (cl.phase == Client::Phase::kDone || cl.ready_at > tick) continue;
      switch (cl.phase) {
        case Client::Phase::kOpening: {
          ++tally.attempted_opens;
          core::Result<int64_t> id = server.OpenSession();
          if (id.ok()) {
            cl.session = *id;
            cl.phase = Client::Phase::kStreaming;
            cl.attempts = 0;
            ++tally.ok_opens;
          } else if (Retryable(id.status())) {
            ++tally.shed_opens;
            cl.ready_at = tick + Backoff(cl.attempts++, &rng);
            if (cl.attempts > 12) {
              cl.phase = Client::Phase::kDone;
              cl.outcome = "gave-up-open";
              ++tally.gave_up;
              ++done;
            }
          } else {
            cl.phase = Client::Phase::kDone;
            cl.outcome = "open-failed:" +
                         std::string(core::StatusCodeName(id.status().code()));
            ++done;
          }
          break;
        }
        case Client::Phase::kStreaming: {
          if (cl.abandons && cl.next_point >= points / 2) {
            cl.phase = Client::Phase::kDone;  // Walks away; TTL reaps it.
            cl.outcome = "abandoned";
            ++done;
            break;
          }
          ++tally.attempted_pushes;
          const core::Status st =
              server.Push(cl.session, cl.traj[cl.next_point]);
          if (st.ok()) {
            ++tally.ok_pushes;
            cl.attempts = 0;
            if (++cl.next_point >= points) cl.phase = Client::Phase::kFinishing;
          } else if (Retryable(st)) {
            ++tally.shed_pushes;
            cl.ready_at = tick + Backoff(cl.attempts++, &rng);
            if (cl.attempts > 12) {
              cl.phase = Client::Phase::kDone;
              cl.outcome = "gave-up-push";
              ++tally.gave_up;
              ++done;
            }
          } else {
            ++tally.hard_pushes;
            cl.phase = Client::Phase::kDone;
            cl.outcome = "push-failed:" +
                         std::string(core::StatusCodeName(st.code()));
            ++done;
          }
          break;
        }
        case Client::Phase::kFinishing: {
          const core::Status st = server.Finish(cl.session);
          cl.phase = Client::Phase::kDone;
          cl.outcome = st.ok() ? "completed"
                               : "finish-failed:" + std::string(core::StatusCodeName(
                                                        st.code()));
          ++done;
          break;
        }
        case Client::Phase::kDone:
          break;
      }
    }
  }
  // Let TTL reap any abandoned sessions, then settle all pumps.
  for (int i = 0; i < 3; ++i) server.Tick(tick + (i + 1) * 1000);
  server.Barrier();

  const srv::ServerMetrics m = server.metrics();
  std::map<std::string, int> outcomes;
  for (const Client& cl : clients) ++outcomes[cl.outcome];

  printf("loadgen: %d clients, %d points each, %d threads, %" PRId64 " ticks\n",
         sessions, points, threads, tick);
  printf("  opens:  attempted=%" PRId64 " ok=%" PRId64 " shed=%" PRId64 "\n",
         tally.attempted_opens, tally.ok_opens, tally.shed_opens);
  printf("  pushes: attempted=%" PRId64 " ok=%" PRId64 " shed=%" PRId64
         " hard=%" PRId64 "\n",
         tally.attempted_pushes, tally.ok_pushes, tally.shed_pushes,
         tally.hard_pushes);
  printf("  server: admitted_opens=%" PRId64 " admitted_pushes=%" PRId64
         " shed_opens=%" PRId64 " shed_pushes=%" PRId64 "\n",
         m.opens_admitted, m.pushes_admitted, m.opens_shed, m.pushes_shed);
  printf("  tiers:  active=%s downgrades=%" PRId64 " upgrades=%" PRId64 "\n",
         server.active_tier_name().c_str(), m.downgrades, m.upgrades);
  printf("  faults: route_failures=%" PRId64 " delays=%" PRId64 "\n",
         faulty.injected_failures(), faulty.injected_delays());
  printf("  state:  live=%" PRId64 " evicted=%" PRId64 " expired=%" PRId64
         " quarantined=%" PRId64 " queue=%" PRId64 "\n",
         m.live_sessions, m.evicted_sessions, m.expired_sessions,
         m.quarantined_sessions, m.queue_depth);
  for (const auto& [outcome, count] : outcomes) {
    printf("  client: %-24s %d\n", outcome.c_str(), count);
  }

  // Accounting invariants: every attempt is visible somewhere typed; nothing
  // vanished. Violations mean a silent drop or a deadlock — fail loudly.
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      fprintf(stderr, "INVARIANT VIOLATED: %s\n", what);
      ++failures;
    }
  };
  check(done == sessions, "every client reached a terminal state (no deadlock)");
  check(tally.ok_opens == m.opens_admitted,
        "client-observed opens == server-admitted opens");
  check(tally.ok_pushes == m.pushes_admitted,
        "client-observed pushes == server-admitted pushes");
  // No other kUnavailable source is active here (no drain), so admission
  // sheds and client-observed retryable open rejects must agree exactly;
  // push rejects may additionally come from engine backpressure/quarantine,
  // so the client count dominates the admission count.
  check(tally.shed_opens == m.opens_shed,
        "every admission-shed open surfaced as a typed retryable reject");
  check(tally.shed_pushes >= m.pushes_shed,
        "every admission-shed push surfaced as a typed retryable reject");
  check(m.queue_depth == 0, "all queues drained after the final barrier");

  if (failures > 0) return 1;
  printf("loadgen: OK\n");
  return 0;
}
