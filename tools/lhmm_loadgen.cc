// lhmm_loadgen — deterministic, fault-injecting load generator for
// srv::MatchServer. It drives the serving front end in-process with a fleet
// of simulated clients that open sessions, stream points, and react to typed
// rejects the way a well-behaved client should: retry with exponential
// backoff plus jitter on kResourceExhausted/kUnavailable, give up on
// non-retryable codes. Route failures and latency are injected underneath
// via network::FaultyRouter, so the degrade ladder and quarantine paths see
// real pressure.
//
// Everything runs on the server's logical clock with a seeded core::Rng, so
// a given flag set replays the exact same offered load (worker timing only
// affects queue-depth shedding, never the token buckets or the ladder's
// sample sequence at a barrier).
//
//   lhmm_loadgen --smoke 1          # small run + accounting invariants; CI
//   lhmm_loadgen --sessions 200 --points 40 --route-failure-rate 0.05
//
// Exit status is nonzero when an accounting invariant breaks (a shed request
// not matched by a typed reject, a session stuck non-terminal — i.e. a
// silent drop or a deadlock) so the binary doubles as an end-to-end check.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/strings.h"
#include "hmm/classic_models.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "network/faulty_router.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "srv/match_server.h"
#include "traj/trajectory.h"

using namespace lhmm;  // NOLINT(build/namespaces): CLI driver.

namespace {

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> out;
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    out[key] = argv[i + 1];
  }
  return out;
}

std::string Get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int GetInt(const std::map<std::string, std::string>& args,
           const std::string& key, int fallback) {
  int v = 0;
  return core::ParseInt(Get(args, key, ""), &v) ? v : fallback;
}

double GetDouble(const std::map<std::string, std::string>& args,
                 const std::string& key, double fallback) {
  const std::string s = Get(args, key, "");
  if (s.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0' ? v : fallback;
}

/// One simulated client streaming one trajectory, with retry + exponential
/// backoff + jitter against typed rejects.
struct Client {
  enum class Phase { kOpening, kStreaming, kFinishing, kDone };

  traj::Trajectory traj;
  Phase phase = Phase::kOpening;
  int64_t session = -1;
  int next_point = 0;
  int attempts = 0;        ///< Consecutive retryable failures of the current op.
  int64_t ready_at = 0;    ///< Tick the current op may be (re)tried.
  bool abandons = false;   ///< Fault injection: walks away mid-stream.
  std::string outcome;     ///< Terminal label for the summary.
};

bool Retryable(const core::Status& s) {
  return s.code() == core::StatusCode::kResourceExhausted ||
         s.code() == core::StatusCode::kUnavailable;
}

/// Exponential backoff with jitter, in ticks: base * 2^attempts, capped,
/// plus a uniform jitter of up to half the backoff. Deterministic via rng.
int64_t Backoff(int attempts, core::Rng* rng) {
  const int64_t base = 2;
  const int64_t cap = 64;
  int64_t wait = base << std::min(attempts, 5);
  wait = std::min(wait, cap);
  return wait + rng->UniformInt(0, static_cast<int>(wait / 2));
}

struct Tally {
  int64_t attempted_opens = 0;
  int64_t ok_opens = 0;
  int64_t shed_opens = 0;
  int64_t attempted_pushes = 0;
  int64_t ok_pushes = 0;
  int64_t shed_pushes = 0;     ///< Typed retryable rejects observed.
  int64_t hard_pushes = 0;     ///< Typed non-retryable rejects observed.
  int64_t gave_up = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);
  const bool smoke = GetInt(args, "smoke", 0) != 0;

  const int sessions = GetInt(args, "sessions", smoke ? 24 : 120);
  const int points = GetInt(args, "points", smoke ? 16 : 40);
  const int threads = GetInt(args, "threads", 4);
  const int max_ticks = GetInt(args, "max-ticks", 20000);
  const double failure_rate =
      GetDouble(args, "route-failure-rate", smoke ? 0.02 : 0.05);
  const double latency_rate = GetDouble(args, "latency-rate", 0.0);
  const uint64_t seed = static_cast<uint64_t>(GetInt(args, "seed", 1234));
  // Barrier every N ticks so the producer cannot outrun the workers by whole
  // phases: pressure deltas (route failures, queue depth) then land inside
  // the tick windows that sample them, which is what lets the degrade ladder
  // react within the run. At a barrier tick the deltas are settled and
  // deterministic. 0 disables pacing.
  const int pace = GetInt(args, "pace", 4);

  // A grid city with fault injection underneath the shared route cache.
  network::RoadNetwork net = network::GenerateGridNetwork(10, 10, 200.0);
  network::GridIndex index(&net, 150.0);
  network::FaultConfig faults;
  faults.route_failure_rate = failure_rate;
  faults.latency_rate = latency_rate;
  faults.seed = seed;
  network::SegmentRouter router(&net);
  network::FaultyRouter faulty(&router, faults);

  // Degrade tiers: full-k IVMM down to a lean STM.
  hmm::ClassicModelConfig models;
  std::vector<srv::TierSpec> tiers;
  tiers.push_back({"IVMM", [&net, &index, models] {
                     return std::make_unique<matchers::IvmmMatcher>(
                         &net, &index, models, 10);
                   }});
  hmm::EngineConfig stm_engine;
  stm_engine.k = 8;
  tiers.push_back({"STM", [&net, &index, models, stm_engine] {
                     return std::make_unique<matchers::StmMatcher>(
                         &net, &index, models, stm_engine);
                   }});

  srv::ServerConfig config;
  config.engine.num_threads = threads;
  config.engine.lag = 4;
  config.engine.shared_router = &faulty;
  config.engine.max_inbox = 64;
  config.engine.session_ttl = 500;
  config.admission.open_rate_per_tick = 2.0;
  config.admission.open_burst = 8.0;
  config.admission.push_rate_per_tick = 48.0;
  config.admission.push_burst = 96.0;
  config.admission.max_queue_depth = 4096;
  config.degrade.overload_route_failures = smoke ? 4 : 16;
  config.degrade.overload_shed = 64;
  config.degrade.downgrade_after = 2;
  config.degrade.recover_after = 4;
  config.default_deadline_ticks = 5000;
  config.fault_signal = &faulty;

  srv::MatchServer server(std::move(tiers), config);
  core::Rng rng(seed);

  // Build the client fleet: walks across distinct grid rows, a few of which
  // abandon their session mid-stream (TTL eviction food).
  std::vector<Client> clients(static_cast<size_t>(sessions));
  for (int c = 0; c < sessions; ++c) {
    Client& cl = clients[c];
    const double y = 200.0 * (c % 10) + 10.0;
    const double x0 = 50.0 + 30.0 * (c % 5);
    for (int p = 0; p < points; ++p) {
      cl.traj.points.push_back(
          {{x0 + 180.0 * p, y}, 15.0 * p, static_cast<traj::TowerId>(p)});
    }
    cl.abandons = (c % 11 == 7);
    cl.ready_at = c / 4;  // Staggered arrivals.
  }

  Tally tally;
  int64_t tick = 0;
  int done = 0;
  for (; tick < max_ticks && done < sessions; ++tick) {
    if (pace > 0 && tick % pace == pace - 1) server.Barrier();
    server.Tick(tick);
    for (Client& cl : clients) {
      if (cl.phase == Client::Phase::kDone || cl.ready_at > tick) continue;
      switch (cl.phase) {
        case Client::Phase::kOpening: {
          ++tally.attempted_opens;
          core::Result<int64_t> id = server.OpenSession();
          if (id.ok()) {
            cl.session = *id;
            cl.phase = Client::Phase::kStreaming;
            cl.attempts = 0;
            ++tally.ok_opens;
          } else if (Retryable(id.status())) {
            ++tally.shed_opens;
            cl.ready_at = tick + Backoff(cl.attempts++, &rng);
            if (cl.attempts > 12) {
              cl.phase = Client::Phase::kDone;
              cl.outcome = "gave-up-open";
              ++tally.gave_up;
              ++done;
            }
          } else {
            cl.phase = Client::Phase::kDone;
            cl.outcome = "open-failed:" +
                         std::string(core::StatusCodeName(id.status().code()));
            ++done;
          }
          break;
        }
        case Client::Phase::kStreaming: {
          if (cl.abandons && cl.next_point >= points / 2) {
            cl.phase = Client::Phase::kDone;  // Walks away; TTL reaps it.
            cl.outcome = "abandoned";
            ++done;
            break;
          }
          ++tally.attempted_pushes;
          const core::Status st =
              server.Push(cl.session, cl.traj[cl.next_point]);
          if (st.ok()) {
            ++tally.ok_pushes;
            cl.attempts = 0;
            if (++cl.next_point >= points) cl.phase = Client::Phase::kFinishing;
          } else if (Retryable(st)) {
            ++tally.shed_pushes;
            cl.ready_at = tick + Backoff(cl.attempts++, &rng);
            if (cl.attempts > 12) {
              cl.phase = Client::Phase::kDone;
              cl.outcome = "gave-up-push";
              ++tally.gave_up;
              ++done;
            }
          } else {
            ++tally.hard_pushes;
            cl.phase = Client::Phase::kDone;
            cl.outcome = "push-failed:" +
                         std::string(core::StatusCodeName(st.code()));
            ++done;
          }
          break;
        }
        case Client::Phase::kFinishing: {
          const core::Status st = server.Finish(cl.session);
          cl.phase = Client::Phase::kDone;
          cl.outcome = st.ok() ? "completed"
                               : "finish-failed:" + std::string(core::StatusCodeName(
                                                        st.code()));
          ++done;
          break;
        }
        case Client::Phase::kDone:
          break;
      }
    }
  }
  // Let TTL reap any abandoned sessions, then settle all pumps.
  for (int i = 0; i < 3; ++i) server.Tick(tick + (i + 1) * 1000);
  server.Barrier();

  const srv::ServerMetrics m = server.metrics();
  std::map<std::string, int> outcomes;
  for (const Client& cl : clients) ++outcomes[cl.outcome];

  printf("loadgen: %d clients, %d points each, %d threads, %" PRId64 " ticks\n",
         sessions, points, threads, tick);
  printf("  opens:  attempted=%" PRId64 " ok=%" PRId64 " shed=%" PRId64 "\n",
         tally.attempted_opens, tally.ok_opens, tally.shed_opens);
  printf("  pushes: attempted=%" PRId64 " ok=%" PRId64 " shed=%" PRId64
         " hard=%" PRId64 "\n",
         tally.attempted_pushes, tally.ok_pushes, tally.shed_pushes,
         tally.hard_pushes);
  printf("  server: admitted_opens=%" PRId64 " admitted_pushes=%" PRId64
         " shed_opens=%" PRId64 " shed_pushes=%" PRId64 "\n",
         m.opens_admitted, m.pushes_admitted, m.opens_shed, m.pushes_shed);
  printf("  tiers:  active=%s downgrades=%" PRId64 " upgrades=%" PRId64 "\n",
         server.active_tier_name().c_str(), m.downgrades, m.upgrades);
  printf("  faults: route_failures=%" PRId64 " delays=%" PRId64 "\n",
         faulty.injected_failures(), faulty.injected_delays());
  printf("  state:  live=%" PRId64 " evicted=%" PRId64 " expired=%" PRId64
         " quarantined=%" PRId64 " queue=%" PRId64 "\n",
         m.live_sessions, m.evicted_sessions, m.expired_sessions,
         m.quarantined_sessions, m.queue_depth);
  for (const auto& [outcome, count] : outcomes) {
    printf("  client: %-24s %d\n", outcome.c_str(), count);
  }

  // Accounting invariants: every attempt is visible somewhere typed; nothing
  // vanished. Violations mean a silent drop or a deadlock — fail loudly.
  int failures = 0;
  auto check = [&failures](bool ok, const char* what) {
    if (!ok) {
      fprintf(stderr, "INVARIANT VIOLATED: %s\n", what);
      ++failures;
    }
  };
  check(done == sessions, "every client reached a terminal state (no deadlock)");
  check(tally.ok_opens == m.opens_admitted,
        "client-observed opens == server-admitted opens");
  check(tally.ok_pushes == m.pushes_admitted,
        "client-observed pushes == server-admitted pushes");
  // No other kUnavailable source is active here (no drain), so admission
  // sheds and client-observed retryable open rejects must agree exactly;
  // push rejects may additionally come from engine backpressure/quarantine,
  // so the client count dominates the admission count.
  check(tally.shed_opens == m.opens_shed,
        "every admission-shed open surfaced as a typed retryable reject");
  check(tally.shed_pushes >= m.pushes_shed,
        "every admission-shed push surfaced as a typed retryable reject");
  check(m.queue_depth == 0, "all queues drained after the final barrier");

  if (failures > 0) return 1;
  printf("loadgen: OK\n");
  return 0;
}
