#!/usr/bin/env bash
# Builds the memory-sensitive tests under AddressSanitizer (+ leak detection
# where the platform supports it) and runs them.
# Usage: tools/run_asan_tests.sh [extra ctest args...]
#
# Uses a dedicated build tree (build-asan) so the instrumented objects never
# mix with the regular or TSan builds. Mirrors tools/run_tsan_tests.sh; see
# tools/run_sanitizer_suite.sh for the combined pass.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-asan
JOBS=$(nproc 2>/dev/null || echo 2)

cmake -B "${BUILD_DIR}" -S . -DLHMM_SANITIZE=address
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target batch_test stream_test robustness_test serve_test frame_test net_server_test supervisor_test durability_test env_fault_test io_test network_test hmm_test ch_test store_test lhmm_serve lhmm_loadgen

# ASan aborts with a non-zero exit on the first bad access, so a plain run is
# the assertion. The suite leans on the paths where lifetimes are trickiest:
# the StreamEngine's deferred session teardown (quarantine/eviction racing a
# blocked pump), MatchServer drain/restore (checkpointed sessions re-created
# from disk), io_test's parsers over corrupt input, ch_test's CH build/persistence
# (including deliberately corrupted hierarchy files), and the loadgen fleet
# exercising the whole serving stack concurrently — over stdin pipes and
# over the TCP frame transport (frame_test, net_server_test, the socket
# crash gauntlet, and a 64-connection net smoke). supervisor_test and the
# fleet gauntlet cover srv::Supervisor's fork/exec/reap lifecycle and the
# ResilientClient's reconnect buffers under repeated worker SIGKILLs.
# store_test pins the mmap data plane's lifetime rules — a swapped-out
# generation is unmapped exactly when the last pinned handle releases, and
# zero-copy section views must never outlive their mapping — and the swap
# gauntlet runs the full hot-swap/corrupt-reject/rollback protocol against
# instrumented workers.
# env_fault_test and the chaos gauntlet additionally run the io::Env
# fault-injection plane under the sanitizer: scheduled ENOSPC/EMFILE
# storms, seal-and-rotate journal repair, and the degraded-nondurable
# state machine's enter/exit transitions.
export ASAN_OPTIONS="halt_on_error=1:detect_stack_use_after_return=1"
cd "${BUILD_DIR}"
ctest --output-on-failure -R "ThreadPool|ParallelFor|CachedRouter|BatchDeterminism|StreamEngine" "$@"
./tests/robustness_test
./tests/serve_test
./tests/frame_test
./tests/net_server_test
./tests/durability_test
./tests/env_fault_test
./tests/io_test
./tests/network_test
./tests/hmm_test
./tests/ch_test
./tools/lhmm_loadgen --smoke 1
./tools/lhmm_loadgen --crash-at 5,23,57 --crash-fault cycle \
  --serve-bin ./tools/lhmm_serve --threads 8
./tools/lhmm_loadgen --crash-at 5,23,57 --crash-fault cycle \
  --transport socket --serve-bin ./tools/lhmm_serve --threads 8
./tools/lhmm_loadgen --net-smoke 1 --connections 64 \
  --serve-bin ./tools/lhmm_serve --threads 4
./tests/supervisor_test
./tools/lhmm_loadgen --fleet-gauntlet 1 --workers 3 \
  --serve-bin ./tools/lhmm_serve --threads 2
./tests/store_test
./tools/lhmm_loadgen --swap-gauntlet 1 --workers 3 \
  --serve-bin ./tools/lhmm_serve --threads 2
./tools/lhmm_loadgen --chaos-gauntlet 1 \
  --serve-bin ./tools/lhmm_serve --threads 2

echo "ASan pass complete: no memory errors reported."
