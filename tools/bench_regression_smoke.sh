#!/usr/bin/env bash
# Perf-regression smoke gate: re-measures the bench_micro suites in --smoke
# mode and diffs them against the committed baselines at the repo root.
#
# The committed baselines come from the *full* suites, so the tolerance here
# is generous (smoke uses fewer workload items and fewer timing reps, and CI
# machines differ); the check exists to catch order-of-magnitude breakage —
# a CH speedup collapsing to 1x, a kernel going quadratic — not 10% noise.
# Under sanitizer builds bench_diff skips timing comparison entirely.
#
# Env (set by ctest): BENCH_MICRO, BENCH_DIFF, REPO_ROOT. Tolerance can be
# overridden with BENCH_TOL (default 0.6).
set -euo pipefail

: "${BENCH_MICRO:?path to bench_micro binary}"
: "${BENCH_DIFF:?path to bench_diff binary}"
: "${REPO_ROOT:?repository root containing BENCH_*.json baselines}"
TOL="${BENCH_TOL:-0.6}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

"$BENCH_MICRO" --json "$tmp/routing.json" --suite routing --smoke
"$BENCH_MICRO" --json "$tmp/viterbi.json" --suite viterbi --smoke
"$BENCH_MICRO" --json "$tmp/store.json" --suite store --smoke

"$BENCH_DIFF" "$REPO_ROOT/BENCH_routing.json" "$tmp/routing.json" --tol "$TOL"
"$BENCH_DIFF" "$REPO_ROOT/BENCH_viterbi.json" "$tmp/viterbi.json" --tol "$TOL"
"$BENCH_DIFF" "$REPO_ROOT/BENCH_store.json" "$tmp/store.json" --tol "$TOL"

echo "bench_regression_smoke: OK"
