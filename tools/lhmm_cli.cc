// lhmm_cli — command-line front end for the library, wiring the I/O formats
// to the simulator, trainer, matcher, and evaluator so the whole pipeline can
// run from the shell without writing C++:
//
//   lhmm_cli simulate --preset Xiamen-S --out data/xiamen      # dataset to disk
//   lhmm_cli train    --data data/xiamen --model m.bin         # train LHMM
//   lhmm_cli match    --data data/xiamen --model m.bin \
//                     --out matched.paths [--render scene.svg] # match test split
//   lhmm_cli eval     --data data/xiamen --paths matched.paths # score paths
//
// Dataset layout on disk: <out>_nodes.csv, <out>_segments.csv (network),
// <out>_train.csv / <out>_test.csv (+ .paths) (trajectories),
// <out>_towers.csv (tower positions).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/csv.h"
#include "core/stopwatch.h"
#include "core/strings.h"
#include "eval/evaluator.h"
#include "eval/report.h"
#include "io/ch_io.h"
#include "io/dataset_io.h"
#include "io/network_io.h"
#include "io/trajectory_io.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "network/ch_router.h"
#include "network/contraction.h"
#include "network/grid_index.h"
#include "network/path_cache.h"
#include "sim/dataset.h"
#include "traj/sanitize.h"
#include "viz/svg.h"

using namespace lhmm;  // NOLINT(build/namespaces): CLI driver.
namespace L = ::lhmm::lhmm;

namespace {

/// Minimal --key value argument parser.
std::map<std::string, std::string> ParseArgs(int argc, char** argv, int from) {
  std::map<std::string, std::string> out;
  for (int i = from; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    out[key] = argv[i + 1];
  }
  return out;
}

std::string Get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback = "") {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

int Fail(const core::Status& status) {
  fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

using Bundle = io::DatasetBundle;
const auto SaveBundle = io::SaveDatasetBundle;
const auto LoadBundle = io::LoadDatasetBundle;

int CmdSimulate(const std::map<std::string, std::string>& args) {
  const std::string preset = Get(args, "preset", "Xiamen-S");
  const std::string out = Get(args, "out");
  if (out.empty()) {
    fprintf(stderr, "simulate requires --out <prefix>\n");
    return 1;
  }
  sim::DatasetConfig cfg =
      preset == "Hangzhou-S" ? sim::HangzhouSPreset() : sim::XiamenSPreset();
  int v = 0;
  if (core::ParseInt(Get(args, "train", ""), &v)) cfg.num_train = v;
  if (core::ParseInt(Get(args, "test", ""), &v)) cfg.num_test = v;
  if (core::ParseInt(Get(args, "seed", ""), &v)) cfg.seed = v;
  printf("Simulating %s (%d train / %d test)...\n", cfg.name.c_str(),
         cfg.num_train, cfg.num_test);
  const sim::Dataset ds = sim::BuildDataset(cfg);
  const core::Status status = SaveBundle(ds, out);
  if (!status.ok()) return Fail(status);
  printf("Wrote dataset bundle with prefix %s\n", out.c_str());
  return 0;
}

int CmdTrain(const std::map<std::string, std::string>& args) {
  const std::string data = Get(args, "data");
  const std::string model_path = Get(args, "model");
  if (data.empty() || model_path.empty()) {
    fprintf(stderr, "train requires --data <prefix> --model <file>\n");
    return 1;
  }
  auto bundle = LoadBundle(data);
  if (!bundle.ok()) return Fail(bundle.status());
  network::GridIndex index(&bundle->net, 300.0);
  L::TrainInputs inputs;
  inputs.net = &bundle->net;
  inputs.index = &index;
  inputs.num_towers = static_cast<int>(bundle->towers.size());
  inputs.train = &bundle->train;
  L::LhmmConfig cfg;
  cfg.verbose = Get(args, "verbose", "0") == "1";
  // Micro-training knobs, mainly for smoke runs and golden tests; a model
  // trained with a non-default --encoder-dim must be matched with the same.
  int v = 0;
  if (core::ParseInt(Get(args, "obs-steps", ""), &v)) cfg.obs_steps = v;
  if (core::ParseInt(Get(args, "trans-steps", ""), &v)) cfg.trans_steps = v;
  if (core::ParseInt(Get(args, "fusion-steps", ""), &v)) cfg.fusion_steps = v;
  if (core::ParseInt(Get(args, "encoder-dim", ""), &v)) cfg.encoder.dim = v;
  printf("Training LHMM on %zu trajectories...\n", bundle->train.size());
  std::shared_ptr<L::LhmmModel> model = L::TrainLhmm(inputs, cfg);
  const core::Status status = model->Save(model_path);
  if (!status.ok()) return Fail(status);
  printf("Model written to %s (+.aux)\n", model_path.c_str());
  return 0;
}

int CmdMatch(const std::map<std::string, std::string>& args) {
  const std::string data = Get(args, "data");
  const std::string model_path = Get(args, "model");
  const std::string out = Get(args, "out");
  if (data.empty() || model_path.empty() || out.empty()) {
    fprintf(stderr, "match requires --data <prefix> --model <file> --out <file>\n");
    return 1;
  }
  auto bundle = LoadBundle(data);
  if (!bundle.ok()) return Fail(bundle.status());
  network::GridIndex index(&bundle->net, 300.0);
  // Rebuild the architecture via a zero-step training run, then load weights.
  L::TrainInputs inputs;
  inputs.net = &bundle->net;
  inputs.index = &index;
  inputs.num_towers = static_cast<int>(bundle->towers.size());
  inputs.train = &bundle->train;
  L::LhmmConfig cfg;
  cfg.obs_steps = 0;
  cfg.trans_steps = 0;
  cfg.fusion_steps = 0;
  int dim = 0;
  if (core::ParseInt(Get(args, "encoder-dim", ""), &dim)) cfg.encoder.dim = dim;
  std::shared_ptr<L::LhmmModel> model = L::TrainLhmm(inputs, cfg);
  model->config = L::LhmmConfig{};
  const core::Status load = model->Load(model_path);
  if (!load.ok()) return Fail(load);

  L::LhmmMatcher matcher(&bundle->net, &index, model);

  // Routing backend. --router=ch swaps the shared router's cache-miss path
  // for corridor-pruned contraction-hierarchy queries — byte-identical
  // matches, faster cold routing. The hierarchy is built here unless
  // --ch-load points at one saved earlier (and --ch-save persists it).
  network::RouterBackend backend = network::RouterBackend::kDijkstra;
  const std::string router_arg = Get(args, "router", "dijkstra");
  if (!network::ParseRouterBackend(router_arg, &backend)) {
    fprintf(stderr, "unknown --router backend '%s' (dijkstra|ch)\n",
            router_arg.c_str());
    return 1;
  }
  network::CHGraph ch;
  if (backend == network::RouterBackend::kCH) {
    const std::string ch_load = Get(args, "ch-load");
    if (!ch_load.empty()) {
      auto loaded = io::LoadCHGraph(ch_load, &bundle->net);
      if (!loaded.ok()) return Fail(loaded.status());
      ch = std::move(*loaded);
      printf("Loaded contraction hierarchy from %s (%lld shortcuts)\n",
             ch_load.c_str(), static_cast<long long>(ch.num_shortcuts));
    } else {
      core::Stopwatch watch;
      ch = network::CHGraph::Build(bundle->net);
      printf("Built contraction hierarchy: %lld shortcuts in %.2fs\n",
             static_cast<long long>(ch.num_shortcuts), watch.ElapsedSeconds());
    }
    const std::string ch_save = Get(args, "ch-save");
    if (!ch_save.empty()) {
      const core::Status saved = io::SaveCHGraph(ch, ch_save);
      if (!saved.ok()) return Fail(saved);
      printf("Contraction hierarchy written to %s\n", ch_save.c_str());
    }
  }

  // Opt-in cache pre-heating: one shared router, every (segment, neighbor)
  // pair precomputed, so matching pays no first-query routing latency.
  // Composes with --router=ch (the warm-up itself routes via the CH).
  network::CachedRouter shared_router =
      backend == network::RouterBackend::kCH
          ? network::CachedRouter(&bundle->net, &ch)
          : network::CachedRouter(&bundle->net);
  if (backend == network::RouterBackend::kCH) {
    matcher.UseSharedRouter(&shared_router);
  }
  if (Get(args, "warm-cache", "0") == "1") {
    double radius = 1500.0;
    double r = 0.0;
    if (core::ParseDouble(Get(args, "warm-radius", ""), &r) && r > 0.0) {
      radius = r;
    }
    core::Stopwatch watch;
    shared_router.WarmAll(index, radius);
    printf("Warmed route cache: %zu routes within %.0f m in %.2fs\n",
           shared_router.size(), radius, watch.ElapsedSeconds());
    matcher.UseSharedRouter(&shared_router);
  }

  // Opt-in input sanitization (reject | drop | repair) ahead of the
  // preprocessing filters; --sanitize repair is the recommended posture for
  // feeds that may carry broken fixes.
  const std::string sanitize_arg = Get(args, "sanitize");
  traj::SanitizeConfig sanitize_config;
  bool sanitize = true;
  if (sanitize_arg == "reject") {
    sanitize_config.policy = traj::SanitizePolicy::kReject;
  } else if (sanitize_arg == "drop") {
    sanitize_config.policy = traj::SanitizePolicy::kDropPoint;
  } else if (sanitize_arg == "repair") {
    sanitize_config.policy = traj::SanitizePolicy::kRepair;
  } else if (sanitize_arg.empty()) {
    sanitize = false;
  } else {
    fprintf(stderr, "unknown --sanitize policy '%s'\n", sanitize_arg.c_str());
    return 1;
  }
  sanitize_config.num_towers = static_cast<int>(bundle->towers.size());
  sanitize_config.network_bounds = bundle->net.Bounds();

  traj::FilterConfig filters;
  int total_issues = 0;
  int total_breaks = 0;
  std::vector<std::vector<network::SegmentId>> matched;
  for (const auto& mt : bundle->test) {
    traj::Trajectory cellular = mt.cellular;
    if (sanitize) {
      traj::SanitizeReport report;
      auto cleaned = traj::Sanitize(cellular, sanitize_config, &report);
      if (!cleaned.ok()) return Fail(cleaned.status());
      total_issues += report.issues();
      cellular = std::move(*cleaned);
    }
    const traj::Trajectory t = eval::Preprocess(cellular, filters);
    matchers::MatchResult result = matcher.Match(t);
    total_breaks += result.num_breaks;
    matched.push_back(std::move(result.path));
  }
  const core::Status status = io::SavePaths(matched, out);
  if (!status.ok()) return Fail(status);
  printf("Matched %zu trajectories -> %s\n", matched.size(), out.c_str());
  if (sanitize) {
    printf("Sanitize (%s): %d issue(s) across the split\n",
           traj::SanitizePolicyName(sanitize_config.policy), total_issues);
  }
  if (total_breaks > 0) {
    printf("Survived %d HMM break(s); gaps were stitched, not dropped\n",
           total_breaks);
  }

  const std::string render = Get(args, "render");
  if (!render.empty() && !bundle->test.empty()) {
    viz::SvgScene scene(bundle->net.Bounds(), 1200.0);
    scene.DrawNetwork(bundle->net, {.color = "#d8d8d8", .width = 0.7});
    scene.DrawPath(bundle->net, bundle->test[0].truth_path,
                   {.color = "#2b6cb0", .width = 3.0, .opacity = 0.9});
    scene.DrawPath(bundle->net, matched[0],
                   {.color = "#2f855a", .width = 2.2, .opacity = 0.9});
    traj::Trajectory cleaned = eval::Preprocess(bundle->test[0].cellular, filters);
    scene.DrawTrajectory(cleaned, {.color = "#c53030", .width = 1.6});
    scene.AddLegend("ground truth", {.color = "#2b6cb0"});
    scene.AddLegend("LHMM match", {.color = "#2f855a"});
    scene.AddLegend("cellular points", {.color = "#c53030"});
    const core::Status svg = scene.Write(render);
    if (!svg.ok()) return Fail(svg);
    printf("Scene for trajectory 0 rendered to %s\n", render.c_str());
  }
  return 0;
}

int CmdEval(const std::map<std::string, std::string>& args) {
  const std::string data = Get(args, "data");
  const std::string paths_file = Get(args, "paths");
  if (data.empty() || paths_file.empty()) {
    fprintf(stderr, "eval requires --data <prefix> --paths <file>\n");
    return 1;
  }
  auto bundle = LoadBundle(data);
  if (!bundle.ok()) return Fail(bundle.status());
  auto paths = io::LoadPaths(paths_file);
  if (!paths.ok()) return Fail(paths.status());
  if (paths->size() != bundle->test.size()) {
    fprintf(stderr, "path count %zu != test split size %zu\n", paths->size(),
            bundle->test.size());
    return 1;
  }
  double precision = 0.0;
  double recall = 0.0;
  double rmf = 0.0;
  double cmf = 0.0;
  for (size_t i = 0; i < paths->size(); ++i) {
    const eval::PathMetrics m = eval::ComputePathMetrics(
        bundle->net, (*paths)[i], bundle->test[i].truth_path, 50.0);
    precision += m.precision;
    recall += m.recall;
    rmf += m.rmf;
    cmf += m.cmf;
  }
  const double n = static_cast<double>(paths->size());
  eval::TextTable table({"metric", "value"});
  table.AddRow({"precision", eval::Fmt(precision / n)});
  table.AddRow({"recall", eval::Fmt(recall / n)});
  table.AddRow({"RMF", eval::Fmt(rmf / n)});
  table.AddRow({"CMF50", eval::Fmt(cmf / n)});
  table.Print();
  return 0;
}

void Usage() {
  fprintf(stderr,
          "usage: lhmm_cli <simulate|train|match|eval> [--key value ...]\n"
          "  simulate --preset Hangzhou-S|Xiamen-S --out PREFIX [--train N]"
          " [--test N] [--seed S]\n"
          "  train    --data PREFIX --model FILE [--verbose 1]\n"
          "           [--obs-steps N] [--trans-steps N] [--fusion-steps N]"
          " [--encoder-dim D]\n"
          "  match    --data PREFIX --model FILE --out FILE [--render FILE.svg]\n"
          "           [--encoder-dim D] [--warm-cache 1 [--warm-radius M]]"
          " [--sanitize reject|drop|repair]\n"
          "           [--router dijkstra|ch [--ch-load FILE] [--ch-save FILE]]\n"
          "  eval     --data PREFIX --paths FILE\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string cmd = argv[1];
  const auto args = ParseArgs(argc, argv, 2);
  if (cmd == "simulate") return CmdSimulate(args);
  if (cmd == "train") return CmdTrain(args);
  if (cmd == "match") return CmdMatch(args);
  if (cmd == "eval") return CmdEval(args);
  Usage();
  return 1;
}
