// bench_diff: compares a current benchmark JSON against a committed
// baseline (both written by `bench_micro --json <path> --suite <name>`)
// and fails on regressions, so speedups are *tracked*, not re-asserted
// from scratch on every machine.
//
//   bench_diff <baseline.json> <current.json> [--tol 0.25]
//
// Comparison rules, by key suffix:
//   *_speedup            higher is better; regression when
//                        current < baseline * (1 - tol). Speedups are
//                        ratios of two runs on the same machine, so they
//                        transfer across machines.
//   *_us, *_ms           wall-clock; lower is better. Normalized by the
//                        ratio of the two files' `calib_us` (a fixed spin
//                        loop timed at emit, measuring machine speed)
//                        before checking current > baseline * (1 + tol).
//   everything else      informational only (workload shape, counters).
//
// If either file was produced by a sanitizer build (`"sanitized": 1`),
// all timing comparisons are skipped and the diff passes vacuously:
// sanitizer slowdowns are not performance regressions.
//
// Exit codes: 0 pass, 1 regression, 2 usage/parse error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Entry {
  std::string key;
  double value = 0.0;
};

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// Parses the flat one-level JSON bench_micro writes: one `"key": number`
// pair per line. Not a general JSON parser on purpose — anything this
// cannot read is a malformed bench file and should fail loudly.
bool ParseFlatJson(const char* path, std::vector<Entry>* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_diff: cannot open %s\n", path);
    return false;
  }
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    const char* q1 = std::strchr(line, '"');
    if (q1 == nullptr) continue;  // Braces and blank lines.
    const char* q2 = std::strchr(q1 + 1, '"');
    const char* colon = q2 != nullptr ? std::strchr(q2, ':') : nullptr;
    if (colon == nullptr) {
      std::fprintf(stderr, "bench_diff: malformed line in %s: %s", path, line);
      std::fclose(f);
      return false;
    }
    char* end = nullptr;
    const double value = std::strtod(colon + 1, &end);
    if (end == colon + 1) {
      std::fprintf(stderr, "bench_diff: non-numeric value in %s: %s", path,
                   line);
      std::fclose(f);
      return false;
    }
    out->push_back({std::string(q1 + 1, q2), value});
  }
  std::fclose(f);
  if (out->empty()) {
    std::fprintf(stderr, "bench_diff: no entries in %s\n", path);
    return false;
  }
  return true;
}

double Lookup(const std::vector<Entry>& entries, const char* key,
              double fallback) {
  for (const Entry& e : entries) {
    if (e.key == key) return e.value;
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const char* base_path = nullptr;
  const char* cur_path = nullptr;
  double tol = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tol") == 0 && i + 1 < argc) {
      char* end = nullptr;
      tol = std::strtod(argv[++i], &end);
      if (end == argv[i] || tol < 0.0) {
        std::fprintf(stderr, "bench_diff: bad --tol %s\n", argv[i]);
        return 2;
      }
    } else if (base_path == nullptr) {
      base_path = argv[i];
    } else if (cur_path == nullptr) {
      cur_path = argv[i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_diff <baseline.json> <current.json>"
                   " [--tol 0.25]\n");
      return 2;
    }
  }
  if (base_path == nullptr || cur_path == nullptr) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <current.json>"
                 " [--tol 0.25]\n");
    return 2;
  }

  std::vector<Entry> base, cur;
  if (!ParseFlatJson(base_path, &base) || !ParseFlatJson(cur_path, &cur)) {
    return 2;
  }

  if (Lookup(base, "sanitized", 0.0) != 0.0 ||
      Lookup(cur, "sanitized", 0.0) != 0.0) {
    std::printf(
        "bench_diff: sanitizer build detected — timing comparison skipped\n");
    return 0;
  }

  // Wall-clock normalization: calib_us grows on slower machines, so scale
  // current wall metrics by baseline_calib / current_calib to compare as
  // if both ran on the baseline machine.
  const double base_calib = Lookup(base, "calib_us", 0.0);
  const double cur_calib = Lookup(cur, "calib_us", 0.0);
  const double wall_scale =
      (base_calib > 0.0 && cur_calib > 0.0) ? base_calib / cur_calib : 1.0;

  int regressions = 0;
  int compared = 0;
  for (const Entry& b : base) {
    if (b.key == "calib_us" || b.key == "sanitized") continue;
    const bool speedup = EndsWith(b.key, "_speedup");
    const bool wall = EndsWith(b.key, "_us") || EndsWith(b.key, "_ms");
    if (!speedup && !wall) continue;
    const double c = Lookup(cur, b.key.c_str(), -1.0);
    if (c < 0.0) {
      std::fprintf(stderr, "bench_diff: %s missing from %s\n", b.key.c_str(),
                   cur_path);
      return 2;
    }
    ++compared;
    if (speedup) {
      const bool bad = c < b.value * (1.0 - tol);
      std::printf("  %-28s %8.3f -> %8.3f  %s\n", b.key.c_str(), b.value, c,
                  bad ? "REGRESSED" : "ok");
      regressions += bad ? 1 : 0;
    } else {
      const double scaled = c * wall_scale;
      const bool bad = scaled > b.value * (1.0 + tol);
      std::printf("  %-28s %8.3f -> %8.3f (scaled %.3f)  %s\n", b.key.c_str(),
                  b.value, c, scaled, bad ? "REGRESSED" : "ok");
      regressions += bad ? 1 : 0;
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "bench_diff: nothing comparable in %s\n", base_path);
    return 2;
  }
  std::printf("bench_diff: %d metric(s), %d regression(s), tol %.0f%%\n",
              compared, regressions, tol * 100.0);
  return regressions > 0 ? 1 : 0;
}
