#!/usr/bin/env bash
# Golden-output test for the lhmm_cli pipeline:
#
#   simulate -> train (micro) -> match --sanitize repair --warm-cache 1 -> eval
#
# Asserts three things end to end:
#   1. every stage exits 0 and prints its expected status lines (sanitize
#      report, warm-cache report, eval metric table);
#   2. matching is deterministic — two identical match runs produce
#      byte-identical path files;
#   3. corrupt input fails loudly with the io/ error contract: the message
#      names the exact file and 1-based line of the problem.
#
# Driven by ctest with LHMM_CLI pointing at the built binary.
set -u

CLI="${LHMM_CLI:?LHMM_CLI must point at the lhmm_cli binary}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() {
  echo "FAIL: $1" >&2
  shift
  for f in "$@"; do
    echo "--- $f ---" >&2
    cat "$f" >&2
  done
  exit 1
}

require() {  # require <pattern> <file> <label>
  grep -q "$1" "$2" || fail "$3: expected /$1/ in output" "$2"
}

# --- 1. Simulate a tiny deterministic dataset. -----------------------------
"$CLI" simulate --preset Xiamen-S --out "$TMP/ds" --train 10 --test 3 --seed 7 \
  > "$TMP/simulate.out" 2>&1 || fail "simulate exited nonzero" "$TMP/simulate.out"
require "Wrote dataset bundle" "$TMP/simulate.out" simulate

# --- 2. Micro-train an LHMM model. -----------------------------------------
"$CLI" train --data "$TMP/ds" --model "$TMP/model.bin" \
  --obs-steps 2 --trans-steps 2 --fusion-steps 5 --encoder-dim 24 \
  > "$TMP/train.out" 2>&1 || fail "train exited nonzero" "$TMP/train.out"
require "Model written to" "$TMP/train.out" train
[ -s "$TMP/model.bin" ] || fail "model file is missing or empty"
[ -s "$TMP/model.bin.aux" ] || fail "model aux file is missing or empty"

# --- 3. Match with sanitization and a pre-warmed route cache. --------------
match() {  # match <out-file> <log-file>
  "$CLI" match --data "$TMP/ds" --model "$TMP/model.bin" --encoder-dim 24 \
    --out "$1" --sanitize repair --warm-cache 1 --warm-radius 800 \
    > "$2" 2>&1
}
match "$TMP/matched_a.paths" "$TMP/match_a.out" \
  || fail "match exited nonzero" "$TMP/match_a.out"
require "Warmed route cache:" "$TMP/match_a.out" match
require "Sanitize (repair):" "$TMP/match_a.out" match
require "Matched 3 trajectories" "$TMP/match_a.out" match

# The matched output is the golden artifact: a second identical run must
# reproduce it byte for byte.
match "$TMP/matched_b.paths" "$TMP/match_b.out" \
  || fail "second match exited nonzero" "$TMP/match_b.out"
cmp -s "$TMP/matched_a.paths" "$TMP/matched_b.paths" \
  || fail "match output is not deterministic" \
          "$TMP/matched_a.paths" "$TMP/matched_b.paths"

# Structural check on the path file itself: one "i:" record per test
# trajectory, each with at least one segment.
[ "$(wc -l < "$TMP/matched_a.paths")" -eq 3 ] \
  || fail "expected 3 path records" "$TMP/matched_a.paths"
grep -qv ':' "$TMP/matched_a.paths" && fail "malformed path record" "$TMP/matched_a.paths"

# --- 4. Eval prints the metric table. --------------------------------------
"$CLI" eval --data "$TMP/ds" --paths "$TMP/matched_a.paths" \
  > "$TMP/eval.out" 2>&1 || fail "eval exited nonzero" "$TMP/eval.out"
for metric in precision recall RMF CMF50; do
  require "$metric" "$TMP/eval.out" eval
done

# --- 5. Corrupt input: the io/ layer names the file and the line. ----------
printf 'this line has no colon separator\n' > "$TMP/corrupt.paths"
if "$CLI" eval --data "$TMP/ds" --paths "$TMP/corrupt.paths" \
    > "$TMP/corrupt1.out" 2>&1; then
  fail "eval accepted a corrupt paths file" "$TMP/corrupt1.out"
fi
require "corrupt.paths line 1" "$TMP/corrupt1.out" corrupt-input
require "missing ':'" "$TMP/corrupt1.out" corrupt-input

printf '0:4 8 15\n1:16 twenty-three 42\n' > "$TMP/corrupt2.paths"
if "$CLI" eval --data "$TMP/ds" --paths "$TMP/corrupt2.paths" \
    > "$TMP/corrupt2.out" 2>&1; then
  fail "eval accepted a paths file with a bad segment id" "$TMP/corrupt2.out"
fi
require "corrupt2.paths line 2" "$TMP/corrupt2.out" corrupt-input

echo "cli_golden_test: OK"
