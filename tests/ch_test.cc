// Differential and persistence tests for the contraction-hierarchy routing
// backend. The CH contract is not "approximately as good as Dijkstra" but
// *bit-identical*: every length, every segment chain (including tie-breaks),
// and every nullopt must match SegmentRouter exactly, because matched output
// downstream is compared byte-for-byte across backends. These tests enforce
// that across ~200 randomized synthetic networks, tie-heavy uniform grids,
// and handcrafted edge cases, then cover the on-disk form: round-trip
// fidelity and typed rejection of truncated/corrupted files.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "io/ch_io.h"
#include "io/fault_file.h"
#include "network/ch_router.h"
#include "network/contraction.h"
#include "network/generators.h"
#include "network/path_cache.h"
#include "network/road_network.h"
#include "network/shortest_path.h"

namespace lhmm::network {
namespace {

/// Exact equality, including tie-broken chains. Lengths must match as
/// doubles (no tolerance): both backends run the identical summation.
void ExpectSameRoute(const std::optional<Route>& want,
                     const std::optional<Route>& got, const std::string& ctx) {
  ASSERT_EQ(want.has_value(), got.has_value()) << ctx;
  if (!want.has_value()) return;
  EXPECT_EQ(want->length, got->length) << ctx;
  ASSERT_EQ(want->segments, got->segments) << ctx;
}

/// Runs a randomized query battery over one network, comparing CHRouter
/// against SegmentRouter: RouteMany with duplicate/self targets, Route1,
/// bounds tightened to exactly the route length and to just under it, and
/// node-to-node distances.
void RunDifferential(const RoadNetwork& net, uint64_t seed, int num_queries) {
  if (net.num_segments() == 0) return;
  const CHGraph ch = CHGraph::Build(net);
  SegmentRouter dijkstra(&net);
  CHRouter accelerated(&net, &ch);
  core::Rng rng(seed);

  for (int q = 0; q < num_queries; ++q) {
    const SegmentId from = rng.UniformInt(net.num_segments());
    const int num_targets = 1 + rng.UniformInt(50);
    std::vector<SegmentId> targets;
    targets.reserve(num_targets);
    for (int t = 0; t < num_targets; ++t) {
      if (rng.Bernoulli(0.05)) {
        targets.push_back(from);  // Self target.
      } else if (!targets.empty() && rng.Bernoulli(0.1)) {
        targets.push_back(targets[rng.UniformInt(
            static_cast<int>(targets.size()))]);  // Duplicate target.
      } else {
        targets.push_back(rng.UniformInt(net.num_segments()));
      }
    }
    const double bound = rng.Uniform(150.0, 6000.0);
    const std::vector<std::optional<Route>> want =
        dijkstra.RouteMany(from, targets, bound);
    const std::vector<std::optional<Route>> got =
        accelerated.RouteMany(from, targets, bound);
    ASSERT_EQ(want.size(), got.size());
    for (size_t i = 0; i < want.size(); ++i) {
      ExpectSameRoute(want[i], got[i],
                      "RouteMany q=" + std::to_string(q) +
                          " i=" + std::to_string(i));
      if (!want[i].has_value() || targets[i] == from) continue;
      // Tight bounds around an exact route length are where a sloppy
      // corridor would diverge first: exactly at the length the route must
      // survive, just below it both backends must drop to nullopt together.
      const double len = want[i]->length;
      ExpectSameRoute(dijkstra.Route1(from, targets[i], len),
                      accelerated.Route1(from, targets[i], len),
                      "tight bound q=" + std::to_string(q));
      const double below = std::nextafter(len, 0.0);
      ExpectSameRoute(dijkstra.Route1(from, targets[i], below),
                      accelerated.Route1(from, targets[i], below),
                      "under bound q=" + std::to_string(q));
    }
    const NodeId a = rng.UniformInt(net.num_nodes());
    const NodeId b = rng.UniformInt(net.num_nodes());
    EXPECT_EQ(dijkstra.NodeDistance(a, b, bound),
              accelerated.NodeDistance(a, b, bound))
        << "NodeDistance q=" << q;
  }
}

TEST(CHDifferentialTest, RandomizedCityNetworks) {
  // ~200 random synthetic city networks spanning tiny-and-dense to
  // mid-sized-and-sparse, each hit with a randomized query battery.
  core::Rng meta(20260807);
  for (int i = 0; i < 200; ++i) {
    CityNetworkConfig cfg;
    cfg.width = meta.Uniform(900.0, 3200.0);
    cfg.height = meta.Uniform(900.0, 2800.0);
    cfg.core_spacing = meta.Uniform(140.0, 280.0);
    cfg.edge_spacing = cfg.core_spacing + meta.Uniform(0.0, 350.0);
    cfg.jitter_frac = meta.Uniform(0.0, 0.3);
    cfg.drop_prob = meta.Uniform(0.0, 0.25);
    cfg.seed = 1000 + i;
    const RoadNetwork net = GenerateCityNetwork(cfg);
    SCOPED_TRACE("network " + std::to_string(i) + " nodes=" +
                 std::to_string(net.num_nodes()));
    RunDifferential(net, /*seed=*/40000 + i, /*num_queries=*/8);
  }
}

TEST(CHDifferentialTest, UniformGridExactTies) {
  // A perfectly uniform grid is the tie-break acid test: nearly every pair
  // has many equal-length routes and every length is an exact multiple of
  // the spacing, so any deviation in parent selection shows up as a
  // different (equally short) chain. Must match exactly anyway.
  const RoadNetwork net = GenerateGridNetwork(10, 10, 200.0);
  RunDifferential(net, /*seed=*/7, /*num_queries=*/60);
  const CHGraph ch = CHGraph::Build(net);
  SegmentRouter dijkstra(&net);
  CHRouter accelerated(&net, &ch);
  // Dense sweep with bounds sitting exactly on tie values.
  for (SegmentId from = 0; from < net.num_segments(); from += 17) {
    std::vector<SegmentId> targets;
    for (SegmentId to = 0; to < net.num_segments(); to += 11) {
      targets.push_back(to);
    }
    for (const double bound : {200.0, 600.0, 1400.0, 4000.0}) {
      const auto want = dijkstra.RouteMany(from, targets, bound);
      const auto got = accelerated.RouteMany(from, targets, bound);
      for (size_t i = 0; i < want.size(); ++i) {
        ExpectSameRoute(want[i], got[i],
                        "grid from=" + std::to_string(from) +
                            " bound=" + std::to_string(bound));
      }
    }
  }
}

TEST(CHDifferentialTest, HandcraftedEdgeCases) {
  // One-way ring: everything reachable one way round, never the other.
  RoadNetwork ring;
  const NodeId a = ring.AddNode({0, 0});
  const NodeId b = ring.AddNode({100, 0});
  const NodeId c = ring.AddNode({100, 100});
  const NodeId d = ring.AddNode({0, 100});
  ring.AddSegment(a, b, 10.0, RoadLevel::kLocal);
  ring.AddSegment(b, c, 10.0, RoadLevel::kLocal);
  ring.AddSegment(c, d, 10.0, RoadLevel::kLocal);
  ring.AddSegment(d, a, 10.0, RoadLevel::kLocal);
  const CHGraph ch = CHGraph::Build(ring);
  SegmentRouter dijkstra(&ring);
  CHRouter accelerated(&ring, &ch);

  for (SegmentId from = 0; from < ring.num_segments(); ++from) {
    for (SegmentId to = 0; to < ring.num_segments(); ++to) {
      for (const double bound : {0.0, 99.0, 100.0, 150.0, 400.0, 1e6}) {
        ExpectSameRoute(dijkstra.Route1(from, to, bound),
                        accelerated.Route1(from, to, bound),
                        "ring " + std::to_string(from) + "->" +
                            std::to_string(to) + " bound=" +
                            std::to_string(bound));
      }
    }
  }
  // Self route: zero length, single-segment chain, even under a zero bound.
  const std::optional<Route> self = accelerated.Route1(2, 2, 0.0);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->length, 0.0);
  EXPECT_EQ(self->segments, std::vector<SegmentId>({2}));
  // Adjacent segments connect with zero connecting length.
  const std::optional<Route> adjacent = accelerated.Route1(0, 1, 0.0);
  ASSERT_TRUE(adjacent.has_value());
  EXPECT_EQ(adjacent->length, 0.0);
  EXPECT_EQ(adjacent->segments, std::vector<SegmentId>({0, 1}));

  // Two disconnected components: cross-component queries are nullopt from
  // both backends, and contraction on a disconnected graph is well-formed.
  RoadNetwork split;
  const NodeId p = split.AddNode({0, 0});
  const NodeId q = split.AddNode({50, 0});
  const NodeId r = split.AddNode({5000, 0});
  const NodeId s = split.AddNode({5050, 0});
  split.AddTwoWay(p, q, 10.0, RoadLevel::kLocal);
  split.AddTwoWay(r, s, 10.0, RoadLevel::kLocal);
  const CHGraph ch2 = CHGraph::Build(split);
  SegmentRouter d2(&split);
  CHRouter a2(&split, &ch2);
  for (SegmentId from = 0; from < split.num_segments(); ++from) {
    for (SegmentId to = 0; to < split.num_segments(); ++to) {
      ExpectSameRoute(d2.Route1(from, to, 1e9), a2.Route1(from, to, 1e9),
                      "split " + std::to_string(from) + "->" +
                          std::to_string(to));
    }
  }
  EXPECT_FALSE(a2.Route1(0, 2, 1e9).has_value());

  // Parallel edges between one node pair: the hierarchy collapses them to
  // the minimum internally, results still come from the real graph.
  RoadNetwork parallel;
  const NodeId u = parallel.AddNode({0, 0});
  const NodeId v = parallel.AddNode({100, 0});
  const NodeId w = parallel.AddNode({200, 0});
  parallel.AddSegment(u, v, 10.0, RoadLevel::kLocal);
  parallel.AddSegment(u, v, 10.0, RoadLevel::kArterial);  // Longer twin.
  parallel.AddSegment(v, w, 10.0, RoadLevel::kLocal);
  parallel.AddSegment(w, u, 10.0, RoadLevel::kLocal);
  const CHGraph ch3 = CHGraph::Build(parallel);
  SegmentRouter d3(&parallel);
  CHRouter a3(&parallel, &ch3);
  for (SegmentId from = 0; from < parallel.num_segments(); ++from) {
    for (SegmentId to = 0; to < parallel.num_segments(); ++to) {
      ExpectSameRoute(d3.Route1(from, to, 1e9), a3.Route1(from, to, 1e9),
                      "parallel " + std::to_string(from) + "->" +
                          std::to_string(to));
    }
  }
}

TEST(CHRouterTest, CorridorReuseAcrossColumnPattern) {
  const RoadNetwork net = GenerateGridNetwork(8, 8, 150.0);
  const CHGraph ch = CHGraph::Build(net);
  CHRouter router(&net, &ch);
  const std::vector<SegmentId> targets = {3, 9, 27, 51, 60};
  std::vector<std::optional<Route>> first =
      router.RouteMany(5, targets, 2000.0);
  EXPECT_EQ(router.corridor_builds(), 1);
  // Same target set + bound from a different source: the HMM column shape.
  std::vector<std::optional<Route>> second =
      router.RouteMany(14, targets, 2000.0);
  EXPECT_EQ(router.corridor_builds(), 1);
  EXPECT_EQ(router.corridor_reuses(), 1);
  // Changing the bound invalidates the corridor.
  (void)router.RouteMany(14, targets, 2500.0);
  EXPECT_EQ(router.corridor_builds(), 2);
}

TEST(CHRouterTest, WorksBehindCachedRouter) {
  const RoadNetwork net = GenerateGridNetwork(9, 7, 180.0);
  const CHGraph ch = CHGraph::Build(net);
  CachedRouter dijkstra_cache(&net);
  CachedRouter ch_cache(&net, &ch);
  core::Rng rng(99);
  for (int q = 0; q < 200; ++q) {
    const SegmentId from = rng.UniformInt(net.num_segments());
    const SegmentId to = rng.UniformInt(net.num_segments());
    const double bound = rng.Uniform(100.0, 2500.0);
    ExpectSameRoute(dijkstra_cache.Route1(from, to, bound),
                    ch_cache.Route1(from, to, bound),
                    "cached q=" + std::to_string(q));
  }
  EXPECT_GT(ch_cache.misses(), 0);
}

class CHPersistenceTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "ch_io_" + name;
  }
};

TEST_F(CHPersistenceTest, RoundTripPreservesEverything) {
  CityNetworkConfig cfg;
  cfg.width = 2500.0;
  cfg.height = 2000.0;
  cfg.seed = 321;
  const RoadNetwork net = GenerateCityNetwork(cfg);
  const CHGraph built = CHGraph::Build(net);
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(io::SaveCHGraph(built, path).ok());

  core::Result<CHGraph> loaded = io::LoadCHGraph(path, &net);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_nodes, built.num_nodes);
  EXPECT_EQ(loaded->num_shortcuts, built.num_shortcuts);
  EXPECT_EQ(loaded->fingerprint, built.fingerprint);
  EXPECT_EQ(loaded->rank, built.rank);
  EXPECT_EQ(loaded->up_begin, built.up_begin);
  EXPECT_EQ(loaded->up_head, built.up_head);
  EXPECT_EQ(loaded->up_weight, built.up_weight);
  EXPECT_EQ(loaded->down_begin, built.down_begin);
  EXPECT_EQ(loaded->down_tail, built.down_tail);
  EXPECT_EQ(loaded->down_weight, built.down_weight);
  EXPECT_EQ(loaded->nodes_by_rank_desc, built.nodes_by_rank_desc);

  // A router over the loaded hierarchy answers identically to Dijkstra.
  SegmentRouter dijkstra(&net);
  CHRouter accelerated(&net, &*loaded);
  core::Rng rng(17);
  for (int q = 0; q < 50; ++q) {
    const SegmentId from = rng.UniformInt(net.num_segments());
    const SegmentId to = rng.UniformInt(net.num_segments());
    const double bound = rng.Uniform(200.0, 4000.0);
    ExpectSameRoute(dijkstra.Route1(from, to, bound),
                    accelerated.Route1(from, to, bound),
                    "loaded q=" + std::to_string(q));
  }
}

TEST_F(CHPersistenceTest, RejectsWrongNetwork) {
  const RoadNetwork net = GenerateGridNetwork(6, 6, 100.0);
  const RoadNetwork other = GenerateGridNetwork(6, 6, 120.0);
  const std::string path = TempPath("wrong_net.bin");
  ASSERT_TRUE(io::SaveCHGraph(CHGraph::Build(net), path).ok());
  core::Result<CHGraph> loaded = io::LoadCHGraph(path, &other);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kFailedPrecondition);
  EXPECT_NE(loaded.status().message().find("different network"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(CHPersistenceTest, RejectsCorruptionWithTypedOffsetErrors) {
  const RoadNetwork net = GenerateGridNetwork(7, 5, 140.0);
  const std::string golden = TempPath("golden.bin");
  ASSERT_TRUE(io::SaveCHGraph(CHGraph::Build(net), golden).ok());
  core::Result<int64_t> size = io::FileSize(golden);
  ASSERT_TRUE(size.ok());
  ASSERT_GT(*size, 64);

  struct Corruption {
    const char* name;
    std::function<core::Status(const std::string&)> inject;
  };
  const std::string overwrite(24, '\x5a');
  const std::vector<Corruption> cases = {
      {"torn tail",
       [](const std::string& p) { return io::TornTail(p, 5); }},
      {"torn tail crc only",
       [](const std::string& p) { return io::TornTail(p, 2); }},
      {"header only",
       [](const std::string& p) { return io::ShortenFileTo(p, 12); }},
      {"empty file",
       [](const std::string& p) { return io::ShortenFileTo(p, 0); }},
      {"bit flip in header",
       [](const std::string& p) { return io::FlipBit(p, 10, 3); }},
      {"bit flip mid payload",
       [size](const std::string& p) { return io::FlipBit(p, *size / 2, 6); }},
      {"bit flip in crc",
       [](const std::string& p) { return io::FlipBit(p, -2, 1); }},
      {"garbage mid payload",
       [&overwrite](const std::string& p) {
         return io::InjectGarbage(p, 40, overwrite);
       }},
      {"bad magic",
       [](const std::string& p) {
         return io::InjectGarbage(p, 0, std::string("NOTACHDB"));
       }},
  };
  for (const Corruption& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string path = TempPath("corrupt.bin");
    // Fresh copy per case.
    {
      std::ifstream in(golden, std::ios::binary);
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << in.rdbuf();
    }
    ASSERT_TRUE(c.inject(path).ok());
    core::Result<CHGraph> loaded = io::LoadCHGraph(path, &net);
    ASSERT_FALSE(loaded.ok());
    // Every corruption error names the file; structural ones carry offsets.
    EXPECT_NE(loaded.status().message().find(path), std::string::npos)
        << loaded.status().ToString();
  }
}

TEST_F(CHPersistenceTest, MissingFileIsNotFound) {
  core::Result<CHGraph> loaded =
      io::LoadCHGraph(TempPath("does_not_exist.bin"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), core::StatusCode::kNotFound);
}

}  // namespace
}  // namespace lhmm::network
