#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "network/astar.h"
#include "network/generators.h"
#include "network/k_shortest.h"
#include "network/grid_index.h"
#include "network/path_cache.h"
#include "network/road_network.h"
#include "network/shortest_path.h"

namespace lhmm::network {
namespace {

RoadNetwork MakeTriangle() {
  // a -> b -> c -> a, one-way ring, 3-4-5 triangle.
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId b = net.AddNode({3, 0});
  const NodeId c = net.AddNode({3, 4});
  net.AddSegment(a, b, 10.0, RoadLevel::kLocal);
  net.AddSegment(b, c, 10.0, RoadLevel::kLocal);
  net.AddSegment(c, a, 10.0, RoadLevel::kLocal);
  return net;
}

TEST(RoadNetworkTest, BasicTopology) {
  RoadNetwork net = MakeTriangle();
  EXPECT_EQ(net.num_nodes(), 3);
  EXPECT_EQ(net.num_segments(), 3);
  EXPECT_TRUE(net.Validate().ok());
  EXPECT_TRUE(net.AreConsecutive(0, 1));
  EXPECT_FALSE(net.AreConsecutive(0, 2));
  EXPECT_EQ(net.NextSegments(0).size(), 1u);
  EXPECT_EQ(net.NextSegments(0)[0], 1);
  EXPECT_DOUBLE_EQ(net.segment(2).length, 5.0);
}

TEST(RoadNetworkTest, TwoWayTwins) {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId b = net.AddNode({100, 0});
  const SegmentId fwd = net.AddTwoWay(a, b, 13.9, RoadLevel::kArterial);
  const SegmentId bwd = net.segment(fwd).reverse;
  ASSERT_NE(bwd, kInvalidSegment);
  EXPECT_EQ(net.segment(bwd).reverse, fwd);
  EXPECT_EQ(net.segment(bwd).from, b);
  EXPECT_EQ(net.segment(bwd).to, a);
  EXPECT_TRUE(net.Validate().ok());
}

TEST(RoadNetworkTest, PathHelpers) {
  RoadNetwork net = MakeTriangle();
  const std::vector<SegmentId> path = {0, 1, 2};
  EXPECT_DOUBLE_EQ(PathLength(net, path), 12.0);
  EXPECT_TRUE(IsConnectedPath(net, path));
  const std::vector<SegmentId> broken = {0, 2};
  EXPECT_FALSE(IsConnectedPath(net, broken));
}

TEST(RoadNetworkTest, LargestScc) {
  RoadNetwork net = MakeTriangle();
  // A dangling one-way spur cannot be in the SCC.
  const NodeId d = net.AddNode({10, 10});
  net.AddSegment(0, d, 10.0, RoadLevel::kLocal);
  const std::vector<NodeId> scc = net.LargestStronglyConnectedComponent();
  EXPECT_EQ(scc.size(), 3u);
  RoadNetwork pruned = net.InducedSubnetwork(scc);
  EXPECT_EQ(pruned.num_nodes(), 3);
  EXPECT_EQ(pruned.num_segments(), 3);
  EXPECT_TRUE(pruned.Validate().ok());
}

TEST(GridIndexTest, RadiusQueryAndNearest) {
  RoadNetwork net = GenerateGridNetwork(5, 5, 100.0);
  GridIndex index(&net, 80.0);
  // Query near the center node (2,2) at (200, 200).
  const auto hits = index.Query({200, 200}, 60.0);
  ASSERT_FALSE(hits.empty());
  for (const SegmentHit& h : hits) {
    EXPECT_LE(h.dist, 60.0);
  }
  // Sorted by distance.
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_LE(hits[i - 1].dist, hits[i].dist);
  }
  const auto nearest = index.Nearest({200, 200}, 10);
  EXPECT_EQ(nearest.size(), 10u);
  // Nearest's best distance matches the radius query's best (ids may differ
  // under exact ties).
  EXPECT_NEAR(nearest[0].dist, hits[0].dist, 1e-9);
}

TEST(GridIndexTest, NearestMoreThanNetworkReturnsAll) {
  RoadNetwork net = GenerateGridNetwork(2, 2, 100.0);
  GridIndex index(&net, 50.0);
  const auto nearest = index.Nearest({50, 50}, 1000);
  EXPECT_EQ(static_cast<int>(nearest.size()), net.num_segments());
}

TEST(SegmentRouterTest, TrivialAndAdjacentRoutes) {
  RoadNetwork net = MakeTriangle();
  SegmentRouter router(&net);
  const auto self_route = router.Route1(0, 0, 1000.0);
  ASSERT_TRUE(self_route.has_value());
  EXPECT_DOUBLE_EQ(self_route->length, 0.0);
  EXPECT_EQ(self_route->segments.size(), 1u);

  const auto adjacent = router.Route1(0, 1, 1000.0);
  ASSERT_TRUE(adjacent.has_value());
  EXPECT_DOUBLE_EQ(adjacent->length, 0.0);
  EXPECT_EQ(adjacent->segments.size(), 2u);
}

TEST(SegmentRouterTest, RouteAroundRing) {
  RoadNetwork net = MakeTriangle();
  SegmentRouter router(&net);
  // 0 -> 2 must pass through 1 (one-way ring): connecting length = len(1)=4.
  const auto route = router.Route1(0, 2, 1000.0);
  ASSERT_TRUE(route.has_value());
  EXPECT_DOUBLE_EQ(route->length, 4.0);
  ASSERT_EQ(route->segments.size(), 3u);
  EXPECT_EQ(route->segments[1], 1);
}

TEST(SegmentRouterTest, BoundCutsOffRoutes) {
  RoadNetwork net = MakeTriangle();
  SegmentRouter router(&net);
  EXPECT_FALSE(router.Route1(0, 2, 3.0).has_value());
  EXPECT_TRUE(router.Route1(0, 2, 4.5).has_value());
}

TEST(SegmentRouterTest, RouteManyMatchesRoute1) {
  RoadNetwork net = GenerateGridNetwork(6, 6, 100.0);
  SegmentRouter router(&net);
  std::vector<SegmentId> targets;
  for (SegmentId s = 0; s < net.num_segments(); s += 7) targets.push_back(s);
  const auto many = router.RouteMany(3, targets, 2000.0);
  for (size_t i = 0; i < targets.size(); ++i) {
    const auto one = router.Route1(3, targets[i], 2000.0);
    ASSERT_EQ(many[i].has_value(), one.has_value()) << "target " << targets[i];
    if (one.has_value()) {
      EXPECT_DOUBLE_EQ(many[i]->length, one->length);
    }
  }
}

TEST(SegmentRouterTest, RoutesAreConnectedPaths) {
  RoadNetwork net = GenerateGridNetwork(8, 8, 100.0);
  SegmentRouter router(&net);
  core::Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const SegmentId from = rng.UniformInt(net.num_segments());
    const SegmentId to = rng.UniformInt(net.num_segments());
    const auto route = router.Route1(from, to, 5000.0);
    ASSERT_TRUE(route.has_value());
    EXPECT_TRUE(IsConnectedPath(net, route->segments));
    EXPECT_EQ(route->segments.front(), from);
    EXPECT_EQ(route->segments.back(), to);
    // Connecting length equals sum of intermediate lengths.
    double mid = 0.0;
    for (size_t i = 1; i + 1 < route->segments.size(); ++i) {
      mid += net.segment(route->segments[i]).length;
    }
    if (from != to) {
      EXPECT_NEAR(route->length, mid, 1e-9);
    }
  }
}

TEST(CachedRouterTest, CacheHitsAndConsistency) {
  RoadNetwork net = GenerateGridNetwork(6, 6, 100.0);
  SegmentRouter router(&net);
  CachedRouter cached(&router);
  const auto first = cached.Route1(0, 30, 3000.0);
  const auto second = cached.Route1(0, 30, 3000.0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(first->length, second->length);
  EXPECT_GT(cached.hits(), 0);
  EXPECT_GT(cached.misses(), 0);
}

TEST(CachedRouterTest, NegativeEntriesRespectBounds) {
  RoadNetwork net = GenerateGridNetwork(6, 6, 100.0);
  SegmentRouter router(&net);
  CachedRouter cached(&router);
  // Unreachable with a small bound, reachable with a larger one: the cached
  // negative result must not shadow the broader query.
  const auto blocked = cached.Route1(0, net.num_segments() - 1, 50.0);
  EXPECT_FALSE(blocked.has_value());
  const auto open = cached.Route1(0, net.num_segments() - 1, 10000.0);
  EXPECT_TRUE(open.has_value());
}

TEST(CachedRouterTest, WarmAllPrefillsNeighborhoods) {
  RoadNetwork net = GenerateGridNetwork(5, 5, 100.0);
  GridIndex index(&net, 80.0);
  SegmentRouter router(&net);
  CachedRouter cached(&router);
  cached.WarmAll(index, 300.0);
  const size_t warmed = cached.size();
  EXPECT_GT(warmed, static_cast<size_t>(net.num_segments()));
  const int64_t misses_before = cached.misses();
  // A short-range query after warming is a pure cache hit.
  const auto route = cached.Route1(0, 1, 250.0);
  EXPECT_TRUE(route.has_value());
  EXPECT_EQ(cached.misses(), misses_before);
  EXPECT_GT(cached.hits(), 0);
}

TEST(GeneratorTest, CityNetworkIsStronglyConnected) {
  CityNetworkConfig cfg;
  cfg.width = 3000.0;
  cfg.height = 2500.0;
  RoadNetwork net = GenerateCityNetwork(cfg);
  EXPECT_GT(net.num_nodes(), 20);
  EXPECT_GT(net.num_segments(), 40);
  EXPECT_TRUE(net.Validate().ok());
  const auto scc = net.LargestStronglyConnectedComponent();
  EXPECT_EQ(static_cast<int>(scc.size()), net.num_nodes());
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  CityNetworkConfig cfg;
  cfg.width = 2000.0;
  cfg.height = 2000.0;
  RoadNetwork a = GenerateCityNetwork(cfg);
  RoadNetwork b = GenerateCityNetwork(cfg);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_segments(), b.num_segments());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    EXPECT_DOUBLE_EQ(a.node(v).pos.x, b.node(v).pos.x);
    EXPECT_DOUBLE_EQ(a.node(v).pos.y, b.node(v).pos.y);
  }
}

TEST(GeneratorTest, CoreDenserThanEdge) {
  CityNetworkConfig cfg;
  cfg.width = 6000.0;
  cfg.height = 6000.0;
  RoadNetwork net = GenerateCityNetwork(cfg);
  const geo::Point center = net.Bounds().Center();
  int core_nodes = 0;
  int ring_nodes = 0;
  for (NodeId v = 0; v < net.num_nodes(); ++v) {
    const double r = geo::Distance(net.node(v).pos, center);
    if (r < 1000.0) ++core_nodes;
    if (r >= 2000.0 && r < 3000.0) ++ring_nodes;
  }
  // Core annulus area is ~pi*1e6, ring annulus ~pi*5e6: equal density would
  // put ~5x more nodes in the ring. Denser core means far fewer than that.
  EXPECT_GT(core_nodes * 3, ring_nodes);
}

TEST(AStarTest, AgreesWithDijkstraOnRandomPairs) {
  RoadNetwork net = GenerateGridNetwork(9, 9, 120.0);
  SegmentRouter dijkstra(&net);
  AStarRouter astar(&net);
  core::Rng rng(77);
  for (int trial = 0; trial < 80; ++trial) {
    const SegmentId from = rng.UniformInt(net.num_segments());
    const SegmentId to = rng.UniformInt(net.num_segments());
    const auto a = astar.Route1(from, to, 8000.0);
    const auto d = dijkstra.Route1(from, to, 8000.0);
    ASSERT_EQ(a.has_value(), d.has_value());
    if (a.has_value()) {
      EXPECT_NEAR(a->length, d->length, 1e-6);
      EXPECT_TRUE(IsConnectedPath(net, a->segments));
      EXPECT_EQ(a->segments.front(), from);
      EXPECT_EQ(a->segments.back(), to);
    }
  }
}

TEST(AStarTest, RespectsBound) {
  RoadNetwork net = GenerateGridNetwork(6, 6, 100.0);
  AStarRouter astar(&net);
  SegmentRouter dijkstra(&net);
  const SegmentId from = 0;
  const SegmentId to = net.num_segments() - 1;
  const auto full = dijkstra.Route1(from, to, 1e9);
  ASSERT_TRUE(full.has_value());
  EXPECT_FALSE(astar.Route1(from, to, full->length * 0.5).has_value());
  EXPECT_TRUE(astar.Route1(from, to, full->length + 1.0).has_value());
}

TEST(AStarTest, ExpandsFewerNodesThanDijkstraFrontier) {
  // On a long corridor query, A* should settle well under the full grid.
  RoadNetwork net = GenerateGridNetwork(15, 15, 100.0);
  AStarRouter astar(&net);
  const auto route = astar.Route1(0, net.num_segments() - 1, 1e9);
  ASSERT_TRUE(route.has_value());
  EXPECT_LT(astar.last_expanded(), net.num_nodes());
}

TEST(KShortestTest, FirstPathIsShortestAndOrdered) {
  RoadNetwork net = GenerateGridNetwork(6, 6, 100.0);
  KShortestPaths yen(&net);
  SegmentRouter dijkstra(&net);
  const SegmentId from = 0;
  const SegmentId to = net.num_segments() - 3;
  const auto routes = yen.Find(from, to, 4, 1e6);
  ASSERT_GE(routes.size(), 2u);
  const auto best = dijkstra.Route1(from, to, 1e6);
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(routes[0].length, best->length, 1e-9);
  for (size_t i = 1; i < routes.size(); ++i) {
    EXPECT_GE(routes[i].length, routes[i - 1].length - 1e-9);
    EXPECT_TRUE(IsConnectedPath(net, routes[i].segments));
    EXPECT_EQ(routes[i].segments.front(), from);
    EXPECT_EQ(routes[i].segments.back(), to);
  }
  // All returned chains are distinct.
  for (size_t i = 0; i < routes.size(); ++i) {
    for (size_t j = i + 1; j < routes.size(); ++j) {
      EXPECT_NE(routes[i].segments, routes[j].segments);
    }
  }
}

TEST(KShortestTest, GridAdmitsManyAlternatives) {
  RoadNetwork net = GenerateGridNetwork(5, 5, 100.0);
  KShortestPaths yen(&net);
  const auto routes = yen.Find(0, net.num_segments() - 1, 6, 1e6);
  EXPECT_GE(routes.size(), 4u);  // Grids have many near-shortest detours.
}

TEST(KShortestTest, RespectsBoundAndDegenerateCases) {
  RoadNetwork net = GenerateGridNetwork(4, 4, 100.0);
  KShortestPaths yen(&net);
  // Self route.
  const auto self_routes = yen.Find(2, 2, 3, 1e6);
  ASSERT_GE(self_routes.size(), 1u);
  EXPECT_DOUBLE_EQ(self_routes[0].length, 0.0);
  // Impossible bound.
  const auto blocked = yen.Find(0, net.num_segments() - 1, 3, 1.0);
  EXPECT_TRUE(blocked.empty());
}

class RouterPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RouterPropertyTest, TriangleInequalityOverWaypoint) {
  RoadNetwork net = GenerateGridNetwork(7, 7, 100.0);
  SegmentRouter router(&net);
  core::Rng rng(GetParam());
  const SegmentId a = rng.UniformInt(net.num_segments());
  const SegmentId b = rng.UniformInt(net.num_segments());
  const SegmentId c = rng.UniformInt(net.num_segments());
  const auto ab = router.Route1(a, b, 10000.0);
  const auto bc = router.Route1(b, c, 10000.0);
  const auto ac = router.Route1(a, c, 10000.0);
  ASSERT_TRUE(ab.has_value());
  ASSERT_TRUE(bc.has_value());
  ASSERT_TRUE(ac.has_value());
  // Going via b cannot beat the direct shortest route (b's own length joins
  // the via-route once).
  EXPECT_LE(ac->length,
            ab->length + net.segment(b).length + bc->length + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterPropertyTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace lhmm::network
