// Tests for the serving front end (srv::MatchServer and its parts): typed
// admission rejects, deadline expiry with partial prefixes, the deterministic
// degrade ladder, watchdog quarantine of wedged pumps, and drain/restore with
// byte-identical continued output. The suite runs the same scripted loads at
// several thread counts and asserts identical outcomes — the serving layer's
// control decisions are all producer-side, so parallelism must not change
// what gets shed, expired, downgraded, or committed.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "hmm/classic_models.h"
#include "io/snapshot_io.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "matchers/stream_engine.h"
#include "network/faulty_router.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "srv/admission.h"
#include "srv/degrade.h"
#include "srv/match_server.h"
#include "srv/snapshot.h"
#include "srv/watchdog.h"
#include "traj/trajectory.h"

namespace lhmm {
namespace {

traj::TrajPoint P(double x, double y, double t,
                  traj::TowerId tower = traj::kInvalidTower) {
  return {{x, y}, t, tower};
}

// ---------------------------------------------------------------------------
// srv::TokenBucket / srv::AdmissionController — producer-side determinism.
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, RefillsPerTickUpToBurst) {
  srv::TokenBucket bucket(/*rate_per_tick=*/1.0, /*burst=*/2.0);
  EXPECT_TRUE(bucket.TryAcquire());  // Starts full.
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
  bucket.Advance(1);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
  // A long gap refills to burst, never beyond it.
  bucket.Advance(100);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
}

TEST(TokenBucketTest, AdvanceIsMonotonic) {
  srv::TokenBucket bucket(1.0, 4.0);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(bucket.TryAcquire());
  bucket.Advance(2);
  bucket.Advance(1);  // Going backwards must not refill again.
  bucket.Advance(2);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
}

TEST(TokenBucketTest, NonPositiveRateDisablesTheLimit) {
  srv::TokenBucket bucket(0.0, 1.0);
  EXPECT_FALSE(bucket.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAcquire());
}

TEST(AdmissionControllerTest, TypedRejectsAndExactAccounting) {
  srv::AdmissionConfig config;
  config.open_rate_per_tick = 1.0;
  config.open_burst = 2.0;
  config.max_live_sessions = 3;
  config.push_rate_per_tick = 2.0;
  config.push_burst = 2.0;
  config.max_queue_depth = 10;
  srv::AdmissionController admission(config);

  // Session cap trips before the rate bucket and is kUnavailable.
  const core::Status cap = admission.AdmitOpen(/*live_sessions=*/3);
  EXPECT_EQ(cap.code(), core::StatusCode::kUnavailable);
  // Rate-limit rejects are kResourceExhausted.
  EXPECT_TRUE(admission.AdmitOpen(0).ok());
  EXPECT_TRUE(admission.AdmitOpen(0).ok());
  const core::Status rate = admission.AdmitOpen(0);
  EXPECT_EQ(rate.code(), core::StatusCode::kResourceExhausted);

  // Queue-depth shedding is kUnavailable; bucket exhaustion kResourceExhausted.
  EXPECT_EQ(admission.AdmitPush(/*queue_depth=*/10).code(),
            core::StatusCode::kUnavailable);
  EXPECT_TRUE(admission.AdmitPush(0).ok());
  EXPECT_TRUE(admission.AdmitPush(0).ok());
  EXPECT_EQ(admission.AdmitPush(0).code(),
            core::StatusCode::kResourceExhausted);

  // Every refusal is counted — nothing is silently dropped.
  EXPECT_EQ(admission.shed_opens(), 2);
  EXPECT_EQ(admission.shed_pushes(), 2);
  EXPECT_EQ(admission.TakeShedWindow(), 4);
  EXPECT_EQ(admission.TakeShedWindow(), 0);
}

// ---------------------------------------------------------------------------
// srv::DegradeLadder — hysteresis and determinism.
// ---------------------------------------------------------------------------

srv::PressureSample Overloaded() {
  srv::PressureSample s;
  s.route_failures = 100;
  return s;
}

TEST(DegradeLadderTest, DowngradesAfterStreakAndRecoversAfterCalm) {
  srv::DegradeConfig config;
  config.overload_route_failures = 10;
  config.downgrade_after = 2;
  config.recover_after = 3;
  srv::DegradeLadder ladder(/*num_tiers=*/3, config);

  EXPECT_EQ(ladder.Observe(Overloaded()), 0);  // Streak of 1: no move yet.
  EXPECT_EQ(ladder.Observe(Overloaded()), 1);  // Streak of 2: down one tier.
  EXPECT_EQ(ladder.Observe(Overloaded()), 1);  // Streak restarts after a move.
  EXPECT_EQ(ladder.Observe(Overloaded()), 2);
  EXPECT_EQ(ladder.Observe(Overloaded()), 2);  // Clamped at the bottom tier.
  EXPECT_EQ(ladder.downgrades(), 2);

  EXPECT_EQ(ladder.Observe({}), 2);
  EXPECT_EQ(ladder.Observe({}), 2);
  EXPECT_EQ(ladder.Observe({}), 1);  // Third calm sample: one step back up.
  // A single overloaded sample resets the calm streak without moving.
  EXPECT_EQ(ladder.Observe(Overloaded()), 1);
  EXPECT_EQ(ladder.Observe({}), 1);
  EXPECT_EQ(ladder.Observe({}), 1);
  EXPECT_EQ(ladder.Observe({}), 0);
  EXPECT_EQ(ladder.Observe({}), 0);  // Clamped at the top tier.
  EXPECT_EQ(ladder.upgrades(), 2);
}

TEST(DegradeLadderTest, DisabledThresholdsNeverTrip) {
  srv::DegradeLadder ladder(2, srv::DegradeConfig{});  // All thresholds 0.
  srv::PressureSample s;
  s.queue_depth = 1 << 20;
  s.shed = 1 << 20;
  s.route_failures = 1 << 20;
  s.rejected_pushes = 1 << 20;
  EXPECT_FALSE(ladder.IsOverloaded(s));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ladder.Observe(s), 0);
}

// ---------------------------------------------------------------------------
// srv::Watchdog — wedge detection from logical heartbeats.
// ---------------------------------------------------------------------------

srv::Heartbeat HB(int64_t session, int64_t inbox, int64_t processed) {
  srv::Heartbeat hb;
  hb.session = session;
  hb.inbox_depth = inbox;
  hb.processed = processed;
  return hb;
}

TEST(WatchdogTest, WedgeNeedsQueuedEventsAndNoProgress) {
  srv::WatchdogConfig config;
  config.stall_ticks = 2;
  srv::Watchdog dog(config);

  // An idle session (empty inbox) never wedges, however long it sits.
  for (int64_t t = 1; t <= 5; ++t) {
    EXPECT_TRUE(dog.Observe(t, {HB(0, 0, 0)}).empty());
  }
  // Events queue at t=6; the pump makes no progress afterwards. The stall
  // window is measured from the last tick the pump was known idle (t=5).
  EXPECT_TRUE(dog.Observe(6, {HB(0, 3, 0)}).empty());
  const std::vector<int64_t> wedged = dog.Observe(7, {HB(0, 3, 0)});
  ASSERT_EQ(wedged.size(), 1u);
  EXPECT_EQ(wedged[0], 0);
  EXPECT_EQ(dog.wedged_total(), 1);
}

TEST(WatchdogTest, ProgressRestartsTheStallWindow) {
  srv::WatchdogConfig config;
  config.stall_ticks = 2;
  srv::Watchdog dog(config);
  EXPECT_TRUE(dog.Observe(1, {HB(0, 4, 0)}).empty());
  EXPECT_TRUE(dog.Observe(2, {HB(0, 4, 0)}).empty());
  // One processed event before the verdict tick: the window restarts.
  EXPECT_TRUE(dog.Observe(3, {HB(0, 3, 1)}).empty());
  EXPECT_TRUE(dog.Observe(4, {HB(0, 3, 1)}).empty());
  EXPECT_EQ(dog.Observe(5, {HB(0, 3, 1)}).size(), 1u);
}

TEST(WatchdogTest, AbsentSessionsAreForgotten) {
  srv::WatchdogConfig config;
  config.stall_ticks = 1;
  srv::Watchdog dog(config);
  EXPECT_TRUE(dog.Observe(1, {HB(7, 2, 0)}).empty());
  // Session 7 disappears (finished) and reappears later: the old stall
  // window must not carry over.
  EXPECT_TRUE(dog.Observe(2, {}).empty());
  EXPECT_TRUE(dog.Observe(3, {HB(7, 2, 0)}).empty());
  EXPECT_EQ(dog.Observe(4, {HB(7, 2, 0)}).size(), 1u);
}

// ---------------------------------------------------------------------------
// MatchServer end-to-end, on a grid network with real matcher tiers.
// ---------------------------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new network::RoadNetwork(network::GenerateGridNetwork(8, 8, 200.0));
    index_ = new network::GridIndex(net_, 150.0);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete net_;
    index_ = nullptr;
    net_ = nullptr;
  }

  static hmm::ClassicModelConfig Models() {
    hmm::ClassicModelConfig models;
    models.obs_sigma = 120.0;
    models.search_radius = 500.0;
    return models;
  }

  static matchers::MatcherFactory IvmmFactory() {
    const network::RoadNetwork* net = net_;
    const network::GridIndex* index = index_;
    return [net, index] {
      return std::make_unique<matchers::IvmmMatcher>(net, index, Models(),
                                                     /*k=*/10);
    };
  }

  static matchers::MatcherFactory StmFactory() {
    const network::RoadNetwork* net = net_;
    const network::GridIndex* index = index_;
    hmm::EngineConfig engine;
    engine.k = 8;
    return [net, index, engine] {
      return std::make_unique<matchers::StmMatcher>(net, index, Models(),
                                                    engine);
    };
  }

  static std::vector<srv::TierSpec> Tiers() {
    return {{"IVMM", IvmmFactory()}, {"STM", StmFactory()}};
  }

  /// Walks left-to-right along grid row `row` (rows are 200 m apart).
  static traj::Trajectory Walk(int points, int row = 0, double t0 = 0.0) {
    traj::Trajectory t;
    for (int i = 0; i < points; ++i) {
      t.points.push_back(
          P(100.0 + i * 250.0, 10.0 + row * 200.0, t0 + i * 20.0,
            static_cast<traj::TowerId>(i)));
    }
    return t;
  }

  static std::string TmpPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  static network::RoadNetwork* net_;
  static network::GridIndex* index_;
};

network::RoadNetwork* ServeTest::net_ = nullptr;
network::GridIndex* ServeTest::index_ = nullptr;

TEST_F(ServeTest, OpenRateLimitShedsDeterministicallyAcrossThreadCounts) {
  // 2 tokens of burst, 1 per tick: the shed pattern is a pure function of the
  // open/tick script, so every thread count must produce it exactly.
  std::vector<std::vector<core::StatusCode>> outcomes;
  for (const int threads : {1, 2, 4}) {
    srv::ServerConfig config;
    config.engine.num_threads = threads;
    config.engine.lag = 2;
    config.admission.open_rate_per_tick = 1.0;
    config.admission.open_burst = 2.0;
    srv::MatchServer server(Tiers(), config);

    std::vector<core::StatusCode> seq;
    for (int tick = 1; tick <= 3; ++tick) {
      for (int i = 0; i < 3; ++i) {
        const core::Result<int64_t> id = server.OpenSession();
        seq.push_back(id.ok() ? core::StatusCode::kOk : id.status().code());
      }
      server.Tick(tick);
    }
    const srv::ServerMetrics m = server.metrics();
    // Accounting invariant: every attempt is either admitted or shed.
    EXPECT_EQ(m.opens_admitted + m.opens_shed, 9) << "threads=" << threads;
    EXPECT_EQ(m.opens_shed, 5);
    outcomes.push_back(std::move(seq));
  }
  // First window: burst of 2 admits, third attempt shed. Later windows: one
  // refill token each.
  const std::vector<core::StatusCode> want = {
      core::StatusCode::kOk, core::StatusCode::kOk,
      core::StatusCode::kResourceExhausted,
      core::StatusCode::kOk, core::StatusCode::kResourceExhausted,
      core::StatusCode::kResourceExhausted,
      core::StatusCode::kOk, core::StatusCode::kResourceExhausted,
      core::StatusCode::kResourceExhausted};
  for (const auto& seq : outcomes) EXPECT_EQ(seq, want);
}

TEST_F(ServeTest, SessionCapRejectsWithUnavailable) {
  srv::ServerConfig config;
  config.engine.num_threads = 2;
  config.admission.max_live_sessions = 2;
  srv::MatchServer server(Tiers(), config);
  ASSERT_TRUE(server.OpenSession().ok());
  ASSERT_TRUE(server.OpenSession().ok());
  const core::Result<int64_t> third = server.OpenSession();
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), core::StatusCode::kUnavailable);
  // Finishing a session frees a slot once the engine closes it.
  ASSERT_TRUE(server.Finish(0).ok());
  server.Barrier();
  EXPECT_TRUE(server.OpenSession().ok());
}

TEST_F(ServeTest, PushRateLimitIsTypedAndCounted) {
  srv::ServerConfig config;
  config.engine.num_threads = 1;
  config.engine.lag = 2;
  config.admission.push_rate_per_tick = 2.0;
  config.admission.push_burst = 3.0;
  srv::MatchServer server(Tiers(), config);
  const core::Result<int64_t> id = server.OpenSession();
  ASSERT_TRUE(id.ok());

  const traj::Trajectory t = Walk(8);
  int admitted = 0;
  int shed = 0;
  for (int i = 0; i < 5; ++i) {
    const core::Status status = server.Push(*id, t[i]);
    if (status.ok()) {
      ++admitted;
    } else {
      EXPECT_EQ(status.code(), core::StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  EXPECT_EQ(admitted, 3);  // The burst.
  EXPECT_EQ(shed, 2);
  const srv::ServerMetrics m = server.metrics();
  EXPECT_EQ(m.pushes_admitted, admitted);
  EXPECT_EQ(m.pushes_shed, shed);
  // Refill after a tick admits exactly two more.
  server.Tick(1);
  EXPECT_TRUE(server.Push(*id, t[5]).ok());
  EXPECT_TRUE(server.Push(*id, t[6]).ok());
  EXPECT_EQ(server.Push(*id, t[7]).code(),
            core::StatusCode::kResourceExhausted);
}

TEST_F(ServeTest, DeadlineExpiryKeepsThePartialPrefix) {
  // The reference: the same five points pushed and finished normally.
  std::vector<network::SegmentId> want;
  {
    srv::ServerConfig config;
    config.engine.num_threads = 1;
    config.engine.lag = 2;
    srv::MatchServer server(Tiers(), config);
    const core::Result<int64_t> id = server.OpenSession();
    ASSERT_TRUE(id.ok());
    const traj::Trajectory t = Walk(5);
    for (int i = 0; i < t.size(); ++i) ASSERT_TRUE(server.Push(*id, t[i]).ok());
    ASSERT_TRUE(server.Finish(*id).ok());
    server.Barrier();
    want = server.Committed(*id);
    ASSERT_FALSE(want.empty());
  }

  for (const int threads : {1, 4}) {
    srv::ServerConfig config;
    config.engine.num_threads = threads;
    config.engine.lag = 2;
    srv::MatchServer server(Tiers(), config);
    const core::Result<int64_t> id = server.OpenSession();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(server.SetDeadline(*id, 10).ok());

    const traj::Trajectory t = Walk(5);
    for (int i = 0; i < t.size(); ++i) ASSERT_TRUE(server.Push(*id, t[i]).ok());
    server.Barrier();  // Quiesce so expiry flushes a settled stream.
    server.Tick(10);   // The deadline tick: the session expires.
    server.Barrier();

    EXPECT_EQ(server.state(*id), matchers::SessionState::kExpired);
    const core::Status status = server.SessionStatus(*id);
    EXPECT_EQ(status.code(), core::StatusCode::kDeadlineExceeded);
    // The partial prefix survives — identical to a clean finish of the same
    // points, at every thread count.
    EXPECT_EQ(server.Committed(*id), want) << "threads=" << threads;
    // Pushing into the expired session is a typed error, not a silent drop.
    EXPECT_EQ(server.Push(*id, P(2000, 10, 500, 9)).code(),
              core::StatusCode::kDeadlineExceeded);
    EXPECT_EQ(server.metrics().expired_sessions, 1);
  }
}

TEST_F(ServeTest, DefaultDeadlineArmsEverySession) {
  srv::ServerConfig config;
  config.engine.num_threads = 1;
  config.engine.lag = 2;
  config.default_deadline_ticks = 5;
  srv::MatchServer server(Tiers(), config);
  const core::Result<int64_t> id = server.OpenSession();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Push(*id, P(100, 10, 0, 0)).ok());
  server.Barrier();
  server.Tick(4);
  EXPECT_EQ(server.state(*id), matchers::SessionState::kLive);
  server.Tick(5);
  EXPECT_EQ(server.state(*id), matchers::SessionState::kExpired);
  EXPECT_EQ(server.SessionStatus(*id).code(),
            core::StatusCode::kDeadlineExceeded);
}

TEST_F(ServeTest, DegradeLadderDowngradesAndRecoversDeterministically) {
  // Scripted load against an injected-fault router. Barrier-before-Tick makes
  // the per-window route-failure delta a pure function of the pushed points,
  // so the tier trace must be identical at every thread count.
  std::vector<std::vector<int>> traces;
  for (const int threads : {1, 4}) {
    network::FaultConfig faults;
    faults.route_failure_rate = 0.8;
    faults.seed = 77;
    network::FaultyRouter router(net_, faults);

    srv::ServerConfig config;
    config.engine.num_threads = threads;
    config.engine.lag = 2;
    config.engine.shared_router = &router;
    config.fault_signal = &router;
    config.degrade.overload_route_failures = 4;
    config.degrade.downgrade_after = 2;
    config.degrade.recover_after = 3;
    srv::MatchServer server(Tiers(), config);

    EXPECT_EQ(server.active_tier_name(), "IVMM");
    const core::Result<int64_t> id = server.OpenSession();
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(server.session_tier(*id), 0);

    std::vector<int> trace;
    const traj::Trajectory t = Walk(12);
    int next = 0;
    // Four loaded ticks (three points each), then four calm ticks.
    for (int tick = 1; tick <= 8; ++tick) {
      for (int i = 0; i < 3 && next < t.size(); ++i, ++next) {
        ASSERT_TRUE(server.Push(*id, t[next]).ok());
      }
      server.Barrier();
      server.Tick(tick);
      trace.push_back(server.active_tier());
    }
    traces.push_back(trace);

    const srv::ServerMetrics m = server.metrics();
    EXPECT_GE(m.downgrades, 1) << "threads=" << threads;
    EXPECT_GE(m.upgrades, 1) << "threads=" << threads;
    EXPECT_EQ(m.active_tier, 0) << "threads=" << threads;

    // While degraded, new sessions open at the cheaper tier.
    const int degraded_at = static_cast<int>(
        std::find(trace.begin(), trace.end(), 1) - trace.begin());
    ASSERT_LT(degraded_at, static_cast<int>(trace.size()));
  }
  EXPECT_EQ(traces[0], traces[1]);
  // The trace actually moved: down to STM under faults, back to IVMM calm.
  EXPECT_NE(std::find(traces[0].begin(), traces[0].end(), 1),
            traces[0].end());
  EXPECT_EQ(traces[0].back(), 0);
}

TEST_F(ServeTest, DegradedServerOpensSessionsAtTheCheaperTier) {
  // Admission sheds are themselves a pressure signal: a shed-heavy window
  // pushes the ladder down, and sessions opened while degraded carry the
  // cheaper tier.
  srv::ServerConfig config2;
  config2.engine.num_threads = 2;
  config2.degrade.overload_shed = 1;
  config2.degrade.downgrade_after = 1;
  config2.admission.open_rate_per_tick = 0.5;
  config2.admission.open_burst = 1.0;
  srv::MatchServer degraded(Tiers(), config2);
  ASSERT_TRUE(degraded.OpenSession().ok());
  ASSERT_FALSE(degraded.OpenSession().ok());  // Shed: pressure this window.
  degraded.Tick(1);
  EXPECT_EQ(degraded.active_tier(), 1);
  EXPECT_EQ(degraded.active_tier_name(), "STM");
  degraded.Tick(2);  // Bucket refills; no shed this window.
  const core::Result<int64_t> id = degraded.OpenSession();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(degraded.session_tier(*id), 1);
}

// ---------------------------------------------------------------------------
// Watchdog quarantine through the server, using a blocking Gate session.
// ---------------------------------------------------------------------------

// A StreamingSession that blocks inside Push until released, so tests can
// wedge one pump deterministically (same idiom as robustness_test.cc).
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool open = false;

  void Enter() {
    {
      std::lock_guard<std::mutex> lock(mu);
      entered = true;
    }
    cv.notify_all();
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
};

class GateSession : public matchers::StreamingSession {
 public:
  explicit GateSession(Gate* gate) : gate_(gate) {}
  std::vector<network::SegmentId> Push(const traj::TrajPoint& point) override {
    gate_->Enter();
    {
      std::unique_lock<std::mutex> lock(gate_->mu);
      gate_->cv.wait(lock, [&] { return gate_->open; });
    }
    committed_.push_back(static_cast<network::SegmentId>(point.tower));
    ++stats_.points_pushed;
    ++stats_.points_committed;
    return {committed_.back()};
  }
  std::vector<network::SegmentId> Finish() override { return {}; }
  void Reset() override {
    committed_.clear();
    stats_ = {};
  }
  const std::vector<network::SegmentId>& committed() const override {
    return committed_;
  }
  matchers::SessionStats stats() const override { return stats_; }

 private:
  Gate* gate_;
  std::vector<network::SegmentId> committed_;
  matchers::SessionStats stats_;
};

class GateMatcher : public matchers::MapMatcher {
 public:
  explicit GateMatcher(Gate* gate) : gate_(gate) {}
  std::string name() const override { return "gate"; }
  matchers::MatchResult Match(const traj::Trajectory&) override { return {}; }
  bool SupportsStreaming() const override { return true; }
  std::unique_ptr<matchers::StreamingSession> OpenSession(
      const matchers::StreamConfig&) override {
    return std::make_unique<GateSession>(gate_);
  }

 private:
  Gate* gate_;
};

TEST_F(ServeTest, WatchdogQuarantinesAWedgedPumpAndTheFleetKeepsServing) {
  // Session 0 gets a gate that stays shut (the wedge); session 1 gets a gate
  // that is already open, so its pump flows normally.
  Gate wedge;
  Gate flowing;
  flowing.Release();
  int opened = 0;
  const matchers::MatcherFactory factory = [&]() {
    Gate* gate = (opened++ == 0) ? &wedge : &flowing;
    return std::make_unique<GateMatcher>(gate);
  };

  srv::ServerConfig config;
  config.engine.num_threads = 2;
  config.watchdog.stall_ticks = 2;
  srv::MatchServer server({{"GATE", factory}}, config);

  const core::Result<int64_t> stuck = server.OpenSession();
  const core::Result<int64_t> healthy = server.OpenSession();
  ASSERT_TRUE(stuck.ok());
  ASSERT_TRUE(healthy.ok());

  // The wedged pump grabs the first point and blocks; two more queue behind.
  ASSERT_TRUE(server.Push(*stuck, P(0, 0, 0, 0)).ok());
  wedge.WaitEntered();
  ASSERT_TRUE(server.Push(*stuck, P(0, 0, 10, 1)).ok());
  ASSERT_TRUE(server.Push(*stuck, P(0, 0, 20, 2)).ok());

  // The healthy session keeps making progress the whole time. Wait until its
  // pump has actually consumed the point before advancing the clock: the
  // watchdog judges progress by heartbeats, so on an overloaded machine an
  // unscheduled-but-healthy pump would be indistinguishable from a wedge.
  ASSERT_TRUE(server.Push(*healthy, P(0, 0, 0, 5)).ok());
  while (server.ProcessedEvents(*healthy) < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  server.Tick(1);
  server.Tick(2);
  EXPECT_EQ(server.state(*stuck), matchers::SessionState::kLive);
  server.Tick(3);  // Stalled for stall_ticks with queued events: quarantined.

  EXPECT_EQ(server.state(*stuck), matchers::SessionState::kPoisoned);
  const core::Status status = server.SessionStatus(*stuck);
  EXPECT_EQ(status.code(), core::StatusCode::kUnavailable);
  EXPECT_NE(status.message().find("wedged pump"), std::string::npos);
  EXPECT_EQ(server.metrics().quarantined_sessions, 1);

  // Release the blocked pump so it can unwind into the quarantine cleanup.
  wedge.Release();
  ASSERT_TRUE(server.Push(*healthy, P(0, 0, 10, 6)).ok());
  ASSERT_TRUE(server.Finish(*healthy).ok());
  server.Barrier();
  EXPECT_EQ(server.state(*healthy), matchers::SessionState::kFinished);
  EXPECT_EQ(server.Committed(*healthy),
            (std::vector<network::SegmentId>{5, 6}));
  // Pushes into the quarantined session surface the stored typed error.
  EXPECT_EQ(server.Push(*stuck, P(0, 0, 30, 3)).code(),
            core::StatusCode::kUnavailable);
}

// ---------------------------------------------------------------------------
// Unsupported-family contract: typed kUnimplemented, never a crash.
// ---------------------------------------------------------------------------

// A matcher family with no streaming form at all (SupportsStreaming false).
class BatchOnlyMatcher : public matchers::MapMatcher {
 public:
  std::string name() const override { return "batch-only"; }
  matchers::MatchResult Match(const traj::Trajectory&) override { return {}; }
};

// A family that claims streaming but returns nullptr from OpenSession — the
// documented "unsupported configuration" contract (seq2seq's behavior).
class NullSessionMatcher : public matchers::MapMatcher {
 public:
  std::string name() const override { return "null-session"; }
  matchers::MatchResult Match(const traj::Trajectory&) override { return {}; }
  bool SupportsStreaming() const override { return true; }
  std::unique_ptr<matchers::StreamingSession> OpenSession(
      const matchers::StreamConfig&) override {
    return nullptr;
  }
};

TEST_F(ServeTest, NonStreamingTierIsATypedUnimplementedReject) {
  srv::ServerConfig config;
  config.engine.num_threads = 1;
  srv::MatchServer server(
      {{"BATCH", [] { return std::make_unique<BatchOnlyMatcher>(); }}},
      config);
  const core::Result<int64_t> id = server.OpenSession();
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), core::StatusCode::kUnimplemented);
  EXPECT_EQ(server.num_sessions(), 0);

  srv::MatchServer null_server(
      {{"NULL", [] { return std::make_unique<NullSessionMatcher>(); }}},
      config);
  const core::Result<int64_t> null_id = null_server.OpenSession();
  ASSERT_FALSE(null_id.ok());
  EXPECT_EQ(null_id.status().code(), core::StatusCode::kUnimplemented);
}

// ---------------------------------------------------------------------------
// Drain / restore.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, DrainRestoreResumesByteIdenticalAcrossThreadCounts) {
  for (const int threads : {1, 8}) {
    // Reference: the full trajectories served without interruption.
    const traj::Trajectory a = Walk(12, /*row=*/0);
    const traj::Trajectory b = Walk(9, /*row=*/2);
    std::vector<network::SegmentId> want_a;
    std::vector<network::SegmentId> want_b;
    {
      srv::ServerConfig config;
      config.engine.num_threads = threads;
      config.engine.lag = 3;
      srv::MatchServer server(Tiers(), config);
      const core::Result<int64_t> ia = server.OpenSession();
      const core::Result<int64_t> ib = server.OpenSession();
      ASSERT_TRUE(ia.ok());
      ASSERT_TRUE(ib.ok());
      for (int i = 0; i < a.size(); ++i) ASSERT_TRUE(server.Push(*ia, a[i]).ok());
      for (int i = 0; i < b.size(); ++i) ASSERT_TRUE(server.Push(*ib, b[i]).ok());
      ASSERT_TRUE(server.Finish(*ia).ok());
      ASSERT_TRUE(server.Finish(*ib).ok());
      server.Barrier();
      want_a = server.Committed(*ia);
      want_b = server.Committed(*ib);
      ASSERT_FALSE(want_a.empty());
      ASSERT_FALSE(want_b.empty());
    }

    // Interrupted run: drain mid-stream, restore, continue.
    const std::string path =
        TmpPath("drain_" + std::to_string(threads) + ".snap");
    srv::ServerConfig config;
    config.engine.num_threads = threads;
    config.engine.lag = 3;
    {
      srv::MatchServer server(Tiers(), config);
      const core::Result<int64_t> ia = server.OpenSession();
      const core::Result<int64_t> ib = server.OpenSession();
      ASSERT_TRUE(ia.ok());
      ASSERT_TRUE(ib.ok());
      for (int i = 0; i < 7; ++i) ASSERT_TRUE(server.Push(*ia, a[i]).ok());
      for (int i = 0; i < 4; ++i) ASSERT_TRUE(server.Push(*ib, b[i]).ok());
      server.Tick(5);
      ASSERT_TRUE(server.Drain(path).ok());
      // A drained server refuses new work with a typed answer but stays
      // queryable.
      EXPECT_TRUE(server.draining());
      EXPECT_EQ(server.OpenSession().status().code(),
                core::StatusCode::kUnavailable);
      EXPECT_EQ(server.Push(*ia, a[7]).code(), core::StatusCode::kUnavailable);
    }

    core::Result<std::unique_ptr<srv::MatchServer>> restored =
        srv::MatchServer::Restore(path, Tiers(), config);
    ASSERT_TRUE(restored.ok()) << restored.status().message();
    srv::MatchServer& server = **restored;
    EXPECT_EQ(server.clock(), 5);
    EXPECT_EQ(server.num_sessions(), 2);
    EXPECT_EQ(server.session_tier(0), 0);

    for (int i = 7; i < a.size(); ++i) ASSERT_TRUE(server.Push(0, a[i]).ok());
    for (int i = 4; i < b.size(); ++i) ASSERT_TRUE(server.Push(1, b[i]).ok());
    ASSERT_TRUE(server.Finish(0).ok());
    ASSERT_TRUE(server.Finish(1).ok());
    server.Barrier();

    // The drain/restore seam is invisible in the output: byte-identical to
    // the uninterrupted run, at every thread count.
    EXPECT_EQ(server.Committed(0), want_a) << "threads=" << threads;
    EXPECT_EQ(server.Committed(1), want_b) << "threads=" << threads;
    std::remove(path.c_str());
  }
}

TEST_F(ServeTest, DrainRestorePreservesTierAndRejectsUnrestoredIds) {
  const std::string path = TmpPath("drain_tier.snap");
  srv::ServerConfig config;
  config.engine.num_threads = 2;
  config.engine.lag = 2;
  config.degrade.overload_shed = 1;
  config.degrade.downgrade_after = 1;
  config.admission.open_rate_per_tick = 0.25;
  config.admission.open_burst = 2.0;
  {
    srv::MatchServer server(Tiers(), config);
    const core::Result<int64_t> first = server.OpenSession();   // Tier 0.
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(server.OpenSession().ok());                      // Tier 0.
    ASSERT_FALSE(server.OpenSession().ok());  // Shed -> pressure -> downgrade.
    server.Tick(1);
    ASSERT_EQ(server.active_tier(), 1);
    // Session 0 finishes before the drain: it is not in the snapshot.
    ASSERT_TRUE(server.Push(*first, P(100, 10, 0, 0)).ok());
    ASSERT_TRUE(server.Finish(*first).ok());
    server.Barrier();
    // Session 1 stays live with a couple of queued-then-flushed points.
    ASSERT_TRUE(server.Push(1, P(100, 410, 0, 0)).ok());
    ASSERT_TRUE(server.Push(1, P(350, 410, 20, 1)).ok());
    ASSERT_TRUE(server.Drain(path).ok());
  }

  core::Result<std::unique_ptr<srv::MatchServer>> restored =
      srv::MatchServer::Restore(path, Tiers(), config);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  srv::MatchServer& server = **restored;
  // The degrade tier survives the restart.
  EXPECT_EQ(server.active_tier(), 1);
  EXPECT_EQ(server.active_tier_name(), "STM");
  // Both ids are still addressable; the finished one was not restored and
  // answers with a typed kUnavailable, never a crash or a silent empty.
  EXPECT_EQ(server.num_sessions(), 2);
  EXPECT_EQ(server.SessionStatus(0).code(), core::StatusCode::kUnavailable);
  EXPECT_EQ(server.Push(0, P(0, 0, 0, 0)).code(),
            core::StatusCode::kUnavailable);
  EXPECT_TRUE(server.SessionStatus(1).ok());
  ASSERT_TRUE(server.Push(1, P(600, 410, 40, 2)).ok());
  ASSERT_TRUE(server.Finish(1).ok());
  server.Barrier();
  EXPECT_FALSE(server.Committed(1).empty());
  std::remove(path.c_str());
}

TEST_F(ServeTest, DrainFinishesNonCheckpointableFamiliesInsteadOfFailing) {
  Gate gate;
  gate.Release();  // Never blocks; GateSession has no checkpoint support.
  srv::ServerConfig config;
  config.engine.num_threads = 2;
  srv::MatchServer server(
      {{"GATE", [&gate] { return std::make_unique<GateMatcher>(&gate); }}},
      config);
  const core::Result<int64_t> id = server.OpenSession();
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(server.Push(*id, P(0, 0, 0, 3)).ok());

  const std::string path = TmpPath("drain_gate.snap");
  ASSERT_TRUE(server.Drain(path).ok());
  // The session was finished in place: its output is final and the snapshot
  // carries no live sessions.
  EXPECT_EQ(server.state(*id), matchers::SessionState::kFinished);
  EXPECT_EQ(server.Committed(*id), (std::vector<network::SegmentId>{3}));

  const core::Result<srv::ServerSnapshot> snap =
      srv::LoadServerSnapshot(path);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->total_sessions, 1);
  EXPECT_TRUE(snap->sessions.empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Snapshot format: exact round-trips and loud, located corruption errors.
// ---------------------------------------------------------------------------

TEST_F(ServeTest, ServerSnapshotRoundTripsExactly) {
  srv::ServerSnapshot snap;
  snap.clock = 42;
  snap.tier = 1;
  snap.total_sessions = 3;
  srv::SessionRecord rec;
  rec.server_id = 2;
  rec.tier = 1;
  rec.checkpoint.last_time = 0.1 + 0.2;  // Needs %.17g to round-trip.
  rec.checkpoint.seen_point = true;
  rec.checkpoint.session.latency_points_sum = 7;
  auto& online = rec.checkpoint.session.online;
  online.has_anchor = true;
  online.anchor.segment = 11;
  online.anchor.dist = 123.456789012345678;
  online.anchor.closest = {1.0 / 3.0, 2.0 / 3.0};
  online.anchor.observation = -17.25;
  online.anchor.from_shortcut = true;
  online.anchor_point = P(1.0 / 3.0, 2.0 / 3.0, 0.3, 4);
  online.window = {P(-1.5, 2.25, 0.30000000000000004, 1)};
  online.committed = {5, 6, 7};
  online.pushed = 4;
  online.consumed = 3;
  online.breaks = 1;
  snap.sessions.push_back(rec);

  const std::string path = TmpPath("roundtrip.snap");
  ASSERT_TRUE(srv::SaveServerSnapshot(snap, path).ok());
  const core::Result<srv::ServerSnapshot> loaded =
      srv::LoadServerSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  EXPECT_EQ(loaded->clock, 42);
  EXPECT_EQ(loaded->tier, 1);
  EXPECT_EQ(loaded->total_sessions, 3);
  ASSERT_EQ(loaded->sessions.size(), 1u);
  const srv::SessionRecord& got = loaded->sessions[0];
  EXPECT_EQ(got.server_id, 2);
  EXPECT_EQ(got.tier, 1);
  EXPECT_EQ(got.checkpoint.last_time, rec.checkpoint.last_time);
  EXPECT_TRUE(got.checkpoint.seen_point);
  EXPECT_EQ(got.checkpoint.session.latency_points_sum, 7);
  const auto& got_online = got.checkpoint.session.online;
  EXPECT_TRUE(got_online.has_anchor);
  EXPECT_EQ(got_online.anchor.segment, 11);
  EXPECT_EQ(got_online.anchor.dist, online.anchor.dist);
  EXPECT_EQ(got_online.anchor.closest.x, online.anchor.closest.x);
  EXPECT_EQ(got_online.anchor.observation, online.anchor.observation);
  EXPECT_TRUE(got_online.anchor.from_shortcut);
  EXPECT_EQ(got_online.anchor_point.pos.x, online.anchor_point.pos.x);
  ASSERT_EQ(got_online.window.size(), 1u);
  EXPECT_EQ(got_online.window[0].t, online.window[0].t);
  EXPECT_EQ(got_online.window[0].tower, 1);
  EXPECT_EQ(got_online.committed, online.committed);
  EXPECT_EQ(got_online.pushed, 4);
  EXPECT_EQ(got_online.breaks, 1);
  std::remove(path.c_str());
}

TEST_F(ServeTest, CorruptSnapshotsFailWithFileAndLineContext) {
  const std::string path = TmpPath("corrupt.snap");
  const auto write = [&](const std::string& text) {
    std::ofstream out(path);
    out << text;
  };
  const auto expect_error = [&](const std::string& needle) {
    const core::Result<srv::ServerSnapshot> r = srv::LoadServerSnapshot(path);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find(path), std::string::npos)
        << r.status().message();
    EXPECT_NE(r.status().message().find(needle), std::string::npos)
        << r.status().message();
  };

  write("not-a-snapshot\n");
  expect_error("line 1");
  write("lhmm-snapshot wrong-kind 1\n");
  expect_error("line 1");
  write("lhmm-snapshot match-server 99\nclock 0\n");
  expect_error("line 1");  // Future version: refuse, do not guess.
  write("lhmm-snapshot match-server 1\nclock zero\n");
  expect_error("line 2");
  write("lhmm-snapshot match-server 1\nclock 0\ntier 0\ntotal_sessions 1\n");
  expect_error("expected 'num_live'");  // Truncated mid-header.
  write(
      "lhmm-snapshot match-server 1\nclock 0\ntier 0\ntotal_sessions 1\n"
      "num_live 1\nsession 0 0 1 12.5\nstats 0 1\n");
  expect_error("line 7");  // The stats line is short two fields.
  write(
      "lhmm-snapshot match-server 1\nclock 0\ntier 0\ntotal_sessions 0\n"
      "num_live 0\nsession trailing garbage\n");
  expect_error("line 6");  // Content after the declared sessions.
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lhmm
