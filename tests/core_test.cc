#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "core/csv.h"
#include "core/logging.h"
#include "core/rng.h"
#include "core/status.h"
#include "core/stopwatch.h"
#include "core/strings.h"
#include "gtest/gtest.h"

namespace lhmm::core {
namespace {

TEST(StatusTest, OkAndErrors) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  const Status err = Status::NotFound("missing thing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kNotFound);
  EXPECT_EQ(err.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, ResultHoldsValueOrStatus) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad = Status::InvalidArgument("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status Inner() { return Status::Internal("inner"); }
Status Outer() {
  LHMM_RETURN_IF_ERROR(Inner());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Outer().code(), StatusCode::kInternal);
}

TEST(RngTest, DeterministicAndUniform) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());

  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(8);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, IntRangesAndCategorical) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.UniformInt(3, 7);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);

  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 9000; ++i) ++counts[rng.Categorical({1.0, 2.0, 0.0})];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 2.0, 0.25);
}

TEST(RngTest, ForkDiverges) {
  Rng a(10);
  Rng fork = a.Fork();
  // The fork and the parent must produce different streams.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == fork.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, PoissonMean) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.Poisson(3.5);
  EXPECT_NEAR(sum / 20000.0, 3.5, 0.1);
}

TEST(StringsTest, SplitJoinTrim) {
  const auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrJoin({"x", "y", "z"}, "--"), "x--y--z");
  EXPECT_EQ(StrTrim("  hi \t"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_TRUE(StartsWith("benchmark", "bench"));
  EXPECT_FALSE(StartsWith("be", "bench"));
}

TEST(StringsTest, Format) {
  EXPECT_EQ(StrFormat("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringsTest, Parse) {
  double d = 0.0;
  EXPECT_TRUE(ParseDouble(" 3.25 ", &d));
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_FALSE(ParseDouble("3.2x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  int i = 0;
  EXPECT_TRUE(ParseInt("-42", &i));
  EXPECT_EQ(i, -42);
  EXPECT_FALSE(ParseInt("4.2", &i));
}

TEST(CsvTest, WriteReadRoundTripWithEscapes) {
  const std::string path = "/tmp/lhmm_csv_test.csv";
  CsvWriter writer(path);
  writer.AddRow({"name", "note"});
  writer.AddRow({"plain", "with,comma"});
  writer.AddRow({"quote\"inside", "multi word"});
  ASSERT_TRUE(writer.Flush().ok());

  const auto rows = ReadCsv(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[1][1], "with,comma");
  EXPECT_EQ((*rows)[2][0], "quote\"inside");
  std::filesystem::remove(path);
}

TEST(CsvTest, MissingFileIsIoError) {
  const auto rows = ReadCsv("/nonexistent/nowhere.csv");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(watch.ElapsedSeconds(), 0.0);
  const double before = watch.ElapsedSeconds();
  watch.Reset();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1.0);
}

TEST(LoggingTest, LevelsFilter) {
  const LogLevel old = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  LOG_INFO << "suppressed";  // Must not crash; output filtered.
  SetMinLogLevel(old);
}

TEST(LoggingTest, CheckMacrosPassOnTrue) {
  CHECK(true) << "never shown";
  CHECK_EQ(2 + 2, 4);
  CHECK_LT(1, 2);
  CHECK_GE(2.0, 2.0);
  CHECK_OK(Status::Ok());
}

TEST(LoggingDeathTest, CheckAborts) {
  EXPECT_DEATH({ CHECK(false) << "boom"; }, "CHECK failed");
  EXPECT_DEATH({ CHECK_EQ(1, 2); }, "CHECK failed");
}

}  // namespace
}  // namespace lhmm::core
