// Tests for the versioned mmap store (src/store): exact round trips of every
// section through StoreWriter -> MappedStore, the full corruption matrix
// (torn tail, bit flip, garbage section, future version, fingerprint
// mismatch — each a typed file+offset reject), and the generation-swap
// protocol with RCU unmap-on-last-release semantics.

#include <unistd.h>

#include <cerrno>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "io/env.h"
#include "io/fault_file.h"
#include "io/journal.h"
#include "network/contraction.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "store/generations.h"
#include "store/mapped_store.h"
#include "store/store_writer.h"

namespace lhmm::store {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("store_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    net_ = network::GenerateGridNetwork(6, 6, 200.0);
    index_ = std::make_unique<network::GridIndex>(&net_, 300.0);
    ch_ = network::CHGraph::Build(net_);
    fingerprint_ = network::CHGraph::NetworkFingerprint(net_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ / name; }

  /// Writes a full store (network + grid + CH + meta) to `name`.
  std::string WriteStore(const std::string& name, uint64_t generation = 1,
                         uint64_t fingerprint = 0) {
    StoreWriter w;
    w.AddSection(kSectionNetwork, EncodeNetwork(net_));
    w.AddSection(kSectionGrid, EncodeGridIndex(*index_));
    w.AddSection(kSectionCH, EncodeCHGraph(ch_));
    w.AddSection(kSectionMeta, EncodeMeta({{"source", "test"}}));
    const std::string path = Path(name);
    EXPECT_TRUE(
        w.Write(path, fingerprint == 0 ? fingerprint_ : fingerprint, generation)
            .ok());
    return path;
  }

  std::filesystem::path dir_;
  network::RoadNetwork net_;
  std::unique_ptr<network::GridIndex> index_;
  network::CHGraph ch_;
  uint64_t fingerprint_ = 0;
};

// ---------------------------------------------------------------------------
// Round trips.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, NetworkRoundTripsExactly) {
  const std::string path = WriteStore("a.lds", 7);
  auto store = MappedStore::Open(path, fingerprint_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->generation(), 7u);
  EXPECT_EQ((*store)->fingerprint(), fingerprint_);

  auto loaded = (*store)->LoadNetwork();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const network::RoadNetwork& got = *loaded;
  ASSERT_EQ(got.num_nodes(), net_.num_nodes());
  ASSERT_EQ(got.num_segments(), net_.num_segments());
  for (network::NodeId n = 0; n < net_.num_nodes(); ++n) {
    EXPECT_EQ(got.node(n).pos.x, net_.node(n).pos.x);
    EXPECT_EQ(got.node(n).pos.y, net_.node(n).pos.y);
  }
  for (network::SegmentId s = 0; s < net_.num_segments(); ++s) {
    const network::RoadSegment& a = net_.segment(s);
    const network::RoadSegment& b = got.segment(s);
    EXPECT_EQ(a.from, b.from);
    EXPECT_EQ(a.to, b.to);
    EXPECT_EQ(a.reverse, b.reverse);
    EXPECT_EQ(a.level, b.level);
    EXPECT_EQ(a.speed_limit, b.speed_limit);
    // Exact double round trip: the recomputed length is bit-identical.
    EXPECT_EQ(a.length, b.length);
    ASSERT_EQ(a.geometry.size(), b.geometry.size());
    for (int i = 0; i < a.geometry.size(); ++i) {
      EXPECT_EQ(a.geometry.points()[i].x, b.geometry.points()[i].x);
      EXPECT_EQ(a.geometry.points()[i].y, b.geometry.points()[i].y);
    }
  }
  // The CH fingerprint of the round-tripped network matches, which is the
  // whole-network exactness check in one number.
  EXPECT_EQ(network::CHGraph::NetworkFingerprint(got), fingerprint_);
}

TEST_F(StoreTest, GridIndexRoundTripsExactly) {
  const std::string path = WriteStore("a.lds");
  auto store = MappedStore::Open(path);
  ASSERT_TRUE(store.ok());
  auto loaded = (*store)->LoadGridIndex(&net_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const network::GridSnapshot a = index_->Snapshot();
  const network::GridSnapshot b = (*loaded)->Snapshot();
  EXPECT_EQ(a.cell_size, b.cell_size);
  EXPECT_EQ(a.origin_x, b.origin_x);
  EXPECT_EQ(a.origin_y, b.origin_y);
  EXPECT_EQ(a.cols, b.cols);
  EXPECT_EQ(a.rows, b.rows);
  EXPECT_EQ(a.cell_begin, b.cell_begin);
  EXPECT_EQ(a.ids, b.ids);
}

TEST_F(StoreTest, CHGraphRoundTripsExactly) {
  const std::string path = WriteStore("a.lds");
  auto store = MappedStore::Open(path);
  ASSERT_TRUE(store.ok());
  auto loaded = (*store)->LoadCHGraph();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->fingerprint, ch_.fingerprint);
  EXPECT_EQ(loaded->num_nodes, ch_.num_nodes);
  EXPECT_EQ(loaded->num_shortcuts, ch_.num_shortcuts);
  EXPECT_EQ(loaded->rank, ch_.rank);
  EXPECT_EQ(loaded->up_begin, ch_.up_begin);
  EXPECT_EQ(loaded->up_head, ch_.up_head);
  EXPECT_EQ(loaded->up_weight, ch_.up_weight);
  EXPECT_EQ(loaded->down_begin, ch_.down_begin);
  EXPECT_EQ(loaded->down_tail, ch_.down_tail);
  EXPECT_EQ(loaded->down_weight, ch_.down_weight);
  EXPECT_EQ(loaded->Validate(), "");
}

TEST_F(StoreTest, MetaAndSectionViews) {
  const std::string path = WriteStore("a.lds");
  auto store = MappedStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->HasSection(kSectionNetwork));
  EXPECT_FALSE((*store)->HasSection(kSectionLhmm));
  EXPECT_EQ((*store)->Section(kSectionLhmm).status().code(),
            core::StatusCode::kNotFound);
  auto view = (*store)->Section(kSectionGrid);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->offset % kStoreAlign, 0u);
  EXPECT_GT(view->bytes, 0u);
  const auto meta = (*store)->Meta();
  ASSERT_EQ(meta.size(), 1u);
  EXPECT_EQ(meta[0].first, "source");
  EXPECT_EQ(meta[0].second, "test");
}

TEST_F(StoreTest, BuildIsDeterministic) {
  const std::string a = WriteStore("a.lds", 3);
  const std::string b = WriteStore("b.lds", 3);
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  const std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                            std::istreambuf_iterator<char>());
  ASSERT_FALSE(bytes_a.empty());
  // Same assets + same generation stamp => byte-identical stores, so a
  // rebuilt generation can be verified by hash alone.
  EXPECT_EQ(bytes_a, bytes_b);
}

// ---------------------------------------------------------------------------
// The corruption matrix. Every entry must be a typed reject naming the file
// and a byte offset — never a crash, never a partial load.
// ---------------------------------------------------------------------------

void ExpectTypedReject(const core::Result<std::shared_ptr<MappedStore>>& r,
                       const std::string& path, const std::string& what) {
  ASSERT_FALSE(r.ok()) << "corrupt store was accepted (" << what << ")";
  const std::string msg = r.status().ToString();
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  EXPECT_NE(msg.find("offset"), std::string::npos) << msg;
  EXPECT_NE(msg.find(what), std::string::npos) << msg;
}

TEST_F(StoreTest, TornTailIsRejected) {
  const std::string path = WriteStore("a.lds");
  ASSERT_TRUE(io::TornTail(path, 3).ok());
  ExpectTypedReject(MappedStore::Open(path), path, "torn tail");
}

TEST_F(StoreTest, TruncatedBelowHeaderIsRejected) {
  const std::string path = WriteStore("a.lds");
  ASSERT_TRUE(io::ShortenFileTo(path, 40).ok());
  ExpectTypedReject(MappedStore::Open(path), path, "file too small");
}

TEST_F(StoreTest, HeaderBitFlipIsRejected) {
  const std::string path = WriteStore("a.lds");
  ASSERT_TRUE(io::FlipBit(path, 17, 3).ok());  // Inside the fingerprint.
  ExpectTypedReject(MappedStore::Open(path), path, "header CRC mismatch");
}

TEST_F(StoreTest, MagicCorruptionIsRejected) {
  const std::string path = WriteStore("a.lds");
  ASSERT_TRUE(io::InjectGarbage(path, 0, "NOTSTORE").ok());
  ExpectTypedReject(MappedStore::Open(path), path, "bad magic");
}

TEST_F(StoreTest, SectionBitFlipIsRejected) {
  const std::string path = WriteStore("a.lds");
  // One bit, deep inside the network section's payload.
  ASSERT_TRUE(io::FlipBit(path, 1000, 5).ok());
  ExpectTypedReject(MappedStore::Open(path), path, "CRC mismatch");
}

TEST_F(StoreTest, GarbageSectionIsRejected) {
  const std::string path = WriteStore("a.lds");
  auto pristine = MappedStore::Open(path);
  ASSERT_TRUE(pristine.ok());
  const auto view = (*pristine)->Section(kSectionGrid);
  ASSERT_TRUE(view.ok());
  const int64_t grid_off = static_cast<int64_t>(view->offset);
  pristine->reset();  // Unmap before mutating the file.
  ASSERT_TRUE(
      io::InjectGarbage(path, grid_off, std::string(64, '\xa5')).ok());
  ExpectTypedReject(MappedStore::Open(path), path, "GRID CRC mismatch");
}

TEST_F(StoreTest, FutureFormatVersionIsRejected) {
  const std::string path = WriteStore("a.lds");
  // A version bump with a valid header CRC — the version check itself must
  // fire, not the CRC that guards against accidental flips.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const uint32_t future = kFormatVersion + 1;
  std::memcpy(&bytes[kVersionOffset], &future, sizeof(future));
  const uint32_t crc = io::Crc32(bytes.data(), kHeaderCrcOffset);
  std::memcpy(&bytes[kHeaderCrcOffset], &crc, sizeof(crc));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  ExpectTypedReject(MappedStore::Open(path), path, "format version skew");
}

TEST_F(StoreTest, FingerprintMismatchIsRejected) {
  const std::string path = WriteStore("a.lds");
  ExpectTypedReject(MappedStore::Open(path, fingerprint_ + 1), path,
                    "fingerprint mismatch");
}

TEST_F(StoreTest, TrailingJunkIsRejected) {
  const std::string path = WriteStore("a.lds");
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << "junk";
  out.close();
  ExpectTypedReject(MappedStore::Open(path), path, "trailing junk");
}

// ---------------------------------------------------------------------------
// Generations: publish, swap, rollback, and RCU mapping lifetime.
// ---------------------------------------------------------------------------

class GenerationsTest : public StoreTest {
 protected:
  /// Builds <root>/gen-<N>/store-<N>.lds from the test network.
  std::string BuildGen(int64_t gen) {
    std::filesystem::create_directories(GenerationDir(Root(), gen));
    StoreWriter w;
    w.AddSection(kSectionNetwork, EncodeNetwork(net_));
    w.AddSection(kSectionGrid, EncodeGridIndex(*index_));
    w.AddSection(kSectionCH, EncodeCHGraph(ch_));
    const std::string path = StorePath(Root(), gen);
    EXPECT_TRUE(w.Write(path, fingerprint_, gen).ok());
    return path;
  }
  std::string Root() const { return dir_ / "root"; }
};

TEST_F(GenerationsTest, PublishListAndCurrent) {
  EXPECT_EQ(ReadCurrent(Root()).status().code(), core::StatusCode::kNotFound);
  BuildGen(1);
  BuildGen(2);
  EXPECT_EQ(ListGenerations(Root()), (std::vector<int64_t>{1, 2}));
  ASSERT_TRUE(PublishCurrent(Root(), 1).ok());
  auto current = ReadCurrent(Root());
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 1);
}

TEST_F(GenerationsTest, SwapAndRollback) {
  BuildGen(1);
  BuildGen(2);
  ASSERT_TRUE(PublishCurrent(Root(), 1).ok());
  auto mgr = GenerationManager::Open(Root(), fingerprint_);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  EXPECT_EQ((*mgr)->Status().generation, 1);
  EXPECT_EQ((*mgr)->Status().previous_generation, -1);

  auto swapped = (*mgr)->Swap(2);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  EXPECT_EQ(swapped->generation, 2);
  EXPECT_EQ(swapped->previous_generation, 1);
  EXPECT_EQ(*ReadCurrent(Root()), 2);  // Swap republished CURRENT.

  auto rolled = (*mgr)->Rollback();
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_EQ(rolled->generation, 1);
  EXPECT_EQ(rolled->previous_generation, 2);
  EXPECT_EQ(*ReadCurrent(Root()), 1);
}

TEST_F(GenerationsTest, RollbackWithoutPreviousIsTyped) {
  BuildGen(1);
  ASSERT_TRUE(PublishCurrent(Root(), 1).ok());
  auto mgr = GenerationManager::Open(Root());
  ASSERT_TRUE(mgr.ok());
  auto rolled = (*mgr)->Rollback();
  ASSERT_FALSE(rolled.ok());
  EXPECT_EQ(rolled.status().code(), core::StatusCode::kFailedPrecondition);
}

TEST_F(GenerationsTest, CorruptCandidateNeverDisturbsServing) {
  BuildGen(1);
  const std::string candidate = BuildGen(2);
  ASSERT_TRUE(PublishCurrent(Root(), 1).ok());
  auto mgr = GenerationManager::Open(Root(), fingerprint_);
  ASSERT_TRUE(mgr.ok());
  const GenerationHandle before = (*mgr)->Current();

  ASSERT_TRUE(io::FlipBit(candidate, 777, 1).ok());
  auto swapped = (*mgr)->Swap(2);
  ASSERT_FALSE(swapped.ok());
  EXPECT_NE(swapped.status().ToString().find("CRC mismatch"),
            std::string::npos);
  // The reject left everything untouched: same generation, same mapping,
  // CURRENT still pointing at 1 (validation happens before publish).
  EXPECT_EQ((*mgr)->Status().generation, 1);
  EXPECT_EQ((*mgr)->Current().get(), before.get());
  EXPECT_EQ(*ReadCurrent(Root()), 1);
  // And the still-mapped old generation still reads coherently.
  auto reread = before->store->LoadNetwork();
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->num_segments(), net_.num_segments());
}

TEST_F(GenerationsTest, SwapAcrossNetworksIsRejectedEvenWithoutExpectation) {
  BuildGen(1);
  ASSERT_TRUE(PublishCurrent(Root(), 1).ok());
  // Gen 5 is a *different* road network: same format, wrong world.
  network::RoadNetwork other = network::GenerateGridNetwork(4, 7, 150.0);
  network::GridIndex other_index(&other, 300.0);
  network::CHGraph other_ch = network::CHGraph::Build(other);
  std::filesystem::create_directories(GenerationDir(Root(), 5));
  StoreWriter w;
  w.AddSection(kSectionNetwork, EncodeNetwork(other));
  w.AddSection(kSectionGrid, EncodeGridIndex(other_index));
  w.AddSection(kSectionCH, EncodeCHGraph(other_ch));
  ASSERT_TRUE(w.Write(StorePath(Root(), 5),
                      network::CHGraph::NetworkFingerprint(other), 5)
                  .ok());
  // Opened with no expectation: the manager pins gen 1's own fingerprint.
  auto mgr = GenerationManager::Open(Root());
  ASSERT_TRUE(mgr.ok());
  auto swapped = (*mgr)->Swap(5);
  ASSERT_FALSE(swapped.ok());
  EXPECT_NE(swapped.status().ToString().find("fingerprint mismatch"),
            std::string::npos);
  EXPECT_EQ((*mgr)->Status().generation, 1);
}

TEST_F(GenerationsTest, OldGenerationUnmapsOnLastRelease) {
  BuildGen(1);
  BuildGen(2);
  ASSERT_TRUE(PublishCurrent(Root(), 1).ok());
  auto mgr = GenerationManager::Open(Root());
  ASSERT_TRUE(mgr.ok());

  GenerationHandle session_pin = (*mgr)->Current();
  std::weak_ptr<MappedStore> old_mapping = session_pin->store;

  ASSERT_TRUE((*mgr)->Swap(2).ok());
  // The manager dropped gen 1, but the session still pins it: the mapping
  // must stay alive (a live Viterbi column may be reading those pages).
  ASSERT_FALSE(old_mapping.expired());
  auto still_readable = session_pin->store->LoadNetwork();
  ASSERT_TRUE(still_readable.ok());

  session_pin.reset();
  // Last holder gone => the mapping is released, exactly now. Under ASan a
  // stale read through the old base pointer would be caught; here we assert
  // the control-block side of the contract.
  EXPECT_TRUE(old_mapping.expired());

  std::weak_ptr<MappedStore> new_mapping = (*mgr)->Current()->store;
  EXPECT_FALSE(new_mapping.expired());
}

// ---------------------------------------------------------------------------
// Write-time fault matrix: injected ENOSPC / failed fsync / failed rename
// during a store build or a CURRENT publish must never leave a readable
// partial and never move the commit point.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, WriterFaultMatrixNeverLeavesAPartialStore) {
  for (const io::EnvOp op : {io::EnvOp::kWrite, io::EnvOp::kFsync,
                             io::EnvOp::kRename, io::EnvOp::kOpen}) {
    const std::string name =
        std::string("faulted_") + io::EnvOpName(op) + ".lds";
    const std::string path = Path(name);
    io::FaultEnv env;
    io::EnvFaultRule rule;
    rule.op = op;
    rule.path_substr = name;
    rule.at_count = 1;
    rule.fault_errno = ENOSPC;
    env.AddRule(rule);

    StoreWriter w;
    w.AddSection(kSectionNetwork, EncodeNetwork(net_));
    w.AddSection(kSectionGrid, EncodeGridIndex(*index_));
    w.AddSection(kSectionCH, EncodeCHGraph(ch_));
    const core::Status st = w.Write(path, fingerprint_, 1, &env);
    ASSERT_FALSE(st.ok()) << io::EnvOpName(op);
    EXPECT_EQ(env.injected_faults(), 1) << io::EnvOpName(op);
    // Nothing readable at the target, and the tmp working file is gone: a
    // generation directory can never hold a store that parses halfway.
    EXPECT_FALSE(std::filesystem::exists(path)) << io::EnvOpName(op);
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << io::EnvOpName(op);

    // The identical retry (fault schedule exhausted) produces a store that
    // maps and validates completely.
    ASSERT_TRUE(w.Write(path, fingerprint_, 1, &env).ok());
    auto store = MappedStore::Open(path, fingerprint_);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
  }
}

class GenerationsFaultTest : public GenerationsTest {};

TEST_F(GenerationsFaultTest, FailedPublishNeverMovesCurrentOrTheServingHandle) {
  for (const io::EnvOp op :
       {io::EnvOp::kWrite, io::EnvOp::kFsync, io::EnvOp::kRename}) {
    const std::string root = Root() + "_" + io::EnvOpName(op);
    std::filesystem::create_directories(root);
    {
      StoreWriter w;
      w.AddSection(kSectionNetwork, EncodeNetwork(net_));
      w.AddSection(kSectionGrid, EncodeGridIndex(*index_));
      w.AddSection(kSectionCH, EncodeCHGraph(ch_));
      for (int64_t gen = 1; gen <= 2; ++gen) {
        std::filesystem::create_directories(GenerationDir(root, gen));
        ASSERT_TRUE(w.Write(StorePath(root, gen), fingerprint_, gen).ok());
      }
    }
    ASSERT_TRUE(PublishCurrent(root, 1).ok());

    io::FaultEnv env;
    io::EnvFaultRule rule;
    rule.op = op;
    rule.path_substr = "CURRENT";
    rule.at_count = 1;
    rule.fault_errno = ENOSPC;
    env.AddRule(rule);

    auto mgr = GenerationManager::Open(root, fingerprint_, &env);
    ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
    auto swapped = (*mgr)->Swap(2);
    ASSERT_FALSE(swapped.ok()) << io::EnvOpName(op);
    // The publish is the commit point: after its failure CURRENT still
    // names generation 1 (complete, not torn), the manager still serves 1,
    // and a worker restarted now opens 1.
    auto current = ReadCurrent(root);
    ASSERT_TRUE(current.ok()) << io::EnvOpName(op);
    EXPECT_EQ(*current, 1) << io::EnvOpName(op);
    EXPECT_EQ((*mgr)->Status().generation, 1) << io::EnvOpName(op);
    auto reopened = GenerationManager::Open(root, fingerprint_);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ((*reopened)->Status().generation, 1);

    // Space frees: the same swap goes through and flips both views.
    auto retried = (*mgr)->Swap(2);
    ASSERT_TRUE(retried.ok()) << retried.status().ToString();
    EXPECT_EQ(*ReadCurrent(root), 2);
    EXPECT_EQ((*mgr)->Status().generation, 2);
  }
}

}  // namespace
}  // namespace lhmm::store
