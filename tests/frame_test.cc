// Property and fault tests for the TCP frame codec (srv/frame.h): byte-exact
// round trips under every possible chunking of the input stream, typed
// rejection of oversized, garbage, and truncated frames, and a seeded
// random-chunking fuzz loop. The codec guards the socket transport's framing,
// so every failure mode here must be a typed Status — a silent resync or a
// quiet truncation at this layer would corrupt the verb stream above it.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "srv/frame.h"

namespace lhmm {
namespace {

using srv::AppendFrame;
using srv::EncodeFrame;
using srv::FrameDecoder;

std::vector<std::string> SamplePayloads() {
  std::string binary;
  for (int i = 0; i < 300; ++i) binary.push_back(static_cast<char>(i % 256));
  return {
      "",  // Zero-length frames are legal (and must not desync the stream).
      "x",
      "open",
      "push 3 17.5 240.25 60 12",
      std::string(1, '\0'),  // NUL bytes are payload, not terminators.
      binary,
      std::string(4096, 'a'),
  };
}

/// Encodes every sample payload into one contiguous stream.
std::string EncodeAll(const std::vector<std::string>& payloads) {
  std::string stream;
  for (const std::string& p : payloads) AppendFrame(p, &stream);
  return stream;
}

TEST(FrameCodecTest, HeaderLayoutIsMagicVersionLittleEndianLength) {
  const std::string f = EncodeFrame("abc");
  ASSERT_EQ(f.size(), srv::kFrameHeaderBytes + 3);
  EXPECT_EQ(f[0], srv::kFrameMagic);
  EXPECT_EQ(f[1], srv::kFrameVersion);
  EXPECT_EQ(f[2], 3);  // 3 little-endian.
  EXPECT_EQ(f[3], 0);
  EXPECT_EQ(f[4], 0);
  EXPECT_EQ(f[5], 0);
  EXPECT_EQ(f.substr(6), "abc");
}

TEST(FrameCodecTest, RoundTripsEveryPayloadInOneFeed) {
  const std::vector<std::string> payloads = SamplePayloads();
  const std::string stream = EncodeAll(payloads);
  FrameDecoder decoder;
  std::vector<std::string> out;
  ASSERT_TRUE(decoder.Feed(stream.data(), stream.size(), &out).ok());
  EXPECT_EQ(out, payloads);
  EXPECT_TRUE(decoder.idle());
  EXPECT_TRUE(decoder.End().ok());
}

// The core incremental property: splitting the stream at EVERY byte boundary
// (including inside headers, at frame edges, and inside payloads) decodes the
// exact same payload sequence. This is what makes the server safe against
// arbitrary TCP segmentation.
TEST(FrameCodecTest, SplitAtEveryByteBoundaryDecodesIdentically) {
  const std::vector<std::string> payloads = SamplePayloads();
  const std::string stream = EncodeAll(payloads);
  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    std::vector<std::string> out;
    ASSERT_TRUE(decoder.Feed(stream.data(), split, &out).ok())
        << "split=" << split;
    ASSERT_TRUE(
        decoder.Feed(stream.data() + split, stream.size() - split, &out).ok())
        << "split=" << split;
    EXPECT_EQ(out, payloads) << "split=" << split;
    EXPECT_TRUE(decoder.End().ok()) << "split=" << split;
  }
}

TEST(FrameCodecTest, ByteAtATimeFeedDecodesIdentically) {
  const std::vector<std::string> payloads = SamplePayloads();
  const std::string stream = EncodeAll(payloads);
  FrameDecoder decoder;
  std::vector<std::string> out;
  for (const char c : stream) {
    ASSERT_TRUE(decoder.Feed(&c, 1, &out).ok());
  }
  EXPECT_EQ(out, payloads);
  EXPECT_TRUE(decoder.End().ok());
}

TEST(FrameCodecTest, OversizedFrameIsTypedRejectAndPoisonsTheDecoder) {
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  const std::string big = EncodeFrame(std::string(65, 'x'));
  std::vector<std::string> out;
  const core::Status st = decoder.Feed(big.data(), big.size(), &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("exceeds limit"), std::string::npos);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(decoder.poisoned());
  // Poisoned is sticky: once framing is lost the stream is unrecoverable, so
  // a later well-formed frame must NOT be accepted.
  const std::string ok = EncodeFrame("fine");
  EXPECT_EQ(decoder.Feed(ok.data(), ok.size(), &out).code(),
            core::StatusCode::kInvalidArgument);
  EXPECT_TRUE(out.empty());
}

TEST(FrameCodecTest, ExactlyLimitSizedFrameIsAccepted) {
  FrameDecoder decoder(/*max_frame_bytes=*/64);
  const std::string payload(64, 'y');
  const std::string f = EncodeFrame(payload);
  std::vector<std::string> out;
  ASSERT_TRUE(decoder.Feed(f.data(), f.size(), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], payload);
}

TEST(FrameCodecTest, GarbageMagicIsRejectedOnTheFirstByte) {
  FrameDecoder decoder;
  std::vector<std::string> out;
  // An HTTP client knocking on the wrong port: typed reject, no buffering.
  const char* garbage = "GET / HTTP/1.1\r\n";
  const core::Status st = decoder.Feed(garbage, strlen(garbage), &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("bad frame magic"), std::string::npos);
}

TEST(FrameCodecTest, UnsupportedVersionIsTypedReject) {
  FrameDecoder decoder;
  std::vector<std::string> out;
  const char bad[] = {srv::kFrameMagic, 0x7f, 1, 0, 0, 0, 'x'};
  const core::Status st = decoder.Feed(bad, sizeof(bad), &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("version"), std::string::npos);
}

TEST(FrameCodecTest, TruncatedHeaderAndPayloadAreTypedAtEndOfStream) {
  // Mid-header cut.
  {
    FrameDecoder decoder;
    std::vector<std::string> out;
    const std::string f = EncodeFrame("hello");
    ASSERT_TRUE(decoder.Feed(f.data(), 3, &out).ok());
    EXPECT_FALSE(decoder.idle());
    const core::Status st = decoder.End();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("header"), std::string::npos);
  }
  // Mid-payload cut.
  {
    FrameDecoder decoder;
    std::vector<std::string> out;
    const std::string f = EncodeFrame("hello");
    ASSERT_TRUE(decoder.Feed(f.data(), f.size() - 2, &out).ok());
    EXPECT_TRUE(out.empty());
    const core::Status st = decoder.End();
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), core::StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("payload"), std::string::npos);
  }
  // Clean boundary: End() is OK.
  {
    FrameDecoder decoder;
    std::vector<std::string> out;
    const std::string f = EncodeFrame("hello");
    ASSERT_TRUE(decoder.Feed(f.data(), f.size(), &out).ok());
    EXPECT_TRUE(decoder.End().ok());
  }
}

TEST(FrameCodecTest, AppendFrameAppendsWithoutClobbering) {
  std::string out = "prefix";
  AppendFrame("ab", &out);
  EXPECT_EQ(out.substr(0, 6), "prefix");
  EXPECT_EQ(out.size(), 6 + srv::kFrameHeaderBytes + 2);
}

// Seeded random-chunking fuzz: random payload sets (random lengths, random
// bytes) streamed through the decoder in random-sized chunks must round-trip
// byte-exactly every time. Deterministic via the fixed seed.
TEST(FrameCodecTest, FuzzRandomChunkingRoundTrips) {
  std::mt19937 rng(0xF4A3E5u);
  for (int iter = 0; iter < 200; ++iter) {
    const int count = 1 + static_cast<int>(rng() % 12);
    std::vector<std::string> payloads;
    payloads.reserve(count);
    for (int i = 0; i < count; ++i) {
      std::string p(rng() % 512, '\0');
      for (char& c : p) c = static_cast<char>(rng() & 0xff);
      payloads.push_back(std::move(p));
    }
    const std::string stream = EncodeAll(payloads);

    FrameDecoder decoder;
    std::vector<std::string> out;
    size_t off = 0;
    while (off < stream.size()) {
      const size_t n =
          std::min<size_t>(1 + rng() % 37, stream.size() - off);
      ASSERT_TRUE(decoder.Feed(stream.data() + off, n, &out).ok())
          << "iter=" << iter << " off=" << off;
      off += n;
    }
    ASSERT_EQ(out, payloads) << "iter=" << iter;
    ASSERT_TRUE(decoder.End().ok()) << "iter=" << iter;
  }
}

// A fuzzed mid-stream cut is always either a clean boundary or a typed
// truncation — never an OK End() with bytes missing.
TEST(FrameCodecTest, FuzzTruncationIsAlwaysTypedOrClean) {
  std::mt19937 rng(0xBEEFu);
  const std::vector<std::string> payloads = SamplePayloads();
  const std::string stream = EncodeAll(payloads);
  // Frame boundaries of the sample stream, for cross-checking End().
  std::vector<size_t> boundaries = {0};
  for (const std::string& p : payloads) {
    boundaries.push_back(boundaries.back() + srv::kFrameHeaderBytes +
                         p.size());
  }
  for (int iter = 0; iter < 500; ++iter) {
    const size_t cut = rng() % (stream.size() + 1);
    FrameDecoder decoder;
    std::vector<std::string> out;
    ASSERT_TRUE(decoder.Feed(stream.data(), cut, &out).ok());
    const bool at_boundary =
        std::find(boundaries.begin(), boundaries.end(), cut) !=
        boundaries.end();
    EXPECT_EQ(decoder.End().ok(), at_boundary) << "cut=" << cut;
    EXPECT_EQ(decoder.idle(), at_boundary) << "cut=" << cut;
  }
}

// SIGPIPE regression: WriteFrame to a peer that already closed must come back
// as a typed kUnavailable, not a process-killing SIGPIPE. This test binary
// does not ignore SIGPIPE, so if WriteFrame's send() ever drops MSG_NOSIGNAL
// the kernel terminates the test right here.
TEST(FrameCodecTest, WriteFrameToClosedPeerIsTypedUnavailableNotSigpipe) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_EQ(close(sv[1]), 0);
  // The first write may land in the (now-orphaned) buffer; keep writing until
  // the kernel reports the pipe broken. It must do so within a few frames.
  core::Status st = core::Status::Ok();
  for (int i = 0; i < 64 && st.ok(); ++i) {
    st = srv::WriteFrame(sv[0], std::string(4096, 'x'));
  }
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::StatusCode::kUnavailable) << st.ToString();
  close(sv[0]);
}

}  // namespace
}  // namespace lhmm
