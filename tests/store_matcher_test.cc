// Byte-identity tests for store-backed matchers: a matcher whose world
// (network, grid index) and weights (LHMM, seq2seq) were materialized from a
// mapped store must produce output identical to the in-memory oracle it was
// built from — per family (STM, IVMM, LHMM, seq2seq), offline and streaming,
// at 1 worker thread and at 8. This is the contract that lets a serving
// fleet swap its data plane out from under live traffic without anyone
// noticing in the committed bytes.

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "hmm/classic_models.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "matchers/seq2seq.h"
#include "matchers/stream_engine.h"
#include "network/contraction.h"
#include "network/grid_index.h"
#include "network/path_cache.h"
#include "sim/dataset.h"
#include "store/mapped_store.h"
#include "store/store_writer.h"
#include "traj/filters.h"

namespace lhmm {
namespace {

matchers::Seq2SeqConfig MicroSeq2SeqConfig() {
  matchers::Seq2SeqConfig cfg;
  cfg.epochs = 1;
  cfg.embed_dim = 12;
  cfg.hidden_dim = 16;
  return cfg;
}

class StoreMatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::DatasetConfig cfg = sim::XiamenSPreset();
    cfg.num_train = 25;
    cfg.num_val = 3;
    cfg.num_test = 6;
    ds_ = new sim::Dataset(sim::BuildDataset(cfg));
    index_ = new network::GridIndex(&ds_->network, 300.0);

    // The oracle LHMM (same micro recipe as tests/stream_test.cc).
    lhmm::LhmmConfig lhmm_cfg;
    lhmm_cfg.obs_steps = 2;
    lhmm_cfg.trans_steps = 2;
    lhmm_cfg.fusion_steps = 5;
    lhmm_cfg.encoder.dim = 24;
    lhmm::TrainInputs inputs;
    inputs.net = &ds_->network;
    inputs.index = index_;
    inputs.num_towers = static_cast<int>(ds_->towers.size());
    inputs.train = &ds_->train;
    model_ = new std::shared_ptr<lhmm::LhmmModel>(TrainLhmm(inputs, lhmm_cfg));

    // The oracle seq2seq.
    s2s_ = new matchers::Seq2SeqMatcher(&ds_->network, index_,
                                        static_cast<int>(ds_->towers.size()),
                                        MicroSeq2SeqConfig(), "S2S");
    traj::FilterConfig filters;
    s2s_->Train(ds_->train, filters);

    cleaned_ = new std::vector<traj::Trajectory>();
    for (const traj::MatchedTrajectory& mt : ds_->test) {
      cleaned_->push_back(eval::Preprocess(mt.cellular, filters));
    }

    // One store holding the whole world + every weight family.
    store_path_ = new std::string(
        std::filesystem::temp_directory_path() /
        ("store_matcher_" + std::to_string(::getpid()) + ".lds"));
    store::StoreWriter w;
    w.AddSection(store::kSectionNetwork, store::EncodeNetwork(ds_->network));
    w.AddSection(store::kSectionGrid, store::EncodeGridIndex(*index_));
    w.AddSection(store::kSectionLhmm, store::EncodeLhmmWeights(**model_));
    w.AddSection(store::kSectionSeq2Seq, store::EncodeSeq2SeqWeights(*s2s_));
    const uint64_t fp = network::CHGraph::NetworkFingerprint(ds_->network);
    ASSERT_TRUE(w.Write(*store_path_, fp, 1).ok());

    // The store-backed world: every asset re-materialized from the mapping,
    // nothing borrowed from the oracle.
    auto mapped = store::MappedStore::Open(*store_path_, fp);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    store_ = new std::shared_ptr<store::MappedStore>(std::move(*mapped));
    auto net = (*store_)->LoadNetwork();
    ASSERT_TRUE(net.ok()) << net.status().ToString();
    store_net_ = new network::RoadNetwork(std::move(*net));
    auto grid = (*store_)->LoadGridIndex(store_net_);
    ASSERT_TRUE(grid.ok()) << grid.status().ToString();
    store_index_ = grid->release();

    // LHMM: architecture shell (zero training steps), then stored weights.
    lhmm::LhmmConfig shell_cfg = lhmm_cfg;
    shell_cfg.obs_steps = 0;
    shell_cfg.trans_steps = 0;
    shell_cfg.fusion_steps = 0;
    lhmm::TrainInputs shell_inputs = inputs;
    shell_inputs.net = store_net_;
    shell_inputs.index = store_index_;
    store_model_ = new std::shared_ptr<lhmm::LhmmModel>(
        TrainLhmm(shell_inputs, shell_cfg));
    (*store_model_)->config = (*model_)->config;
    ASSERT_TRUE((*store_)->ApplyLhmmWeights(store_model_->get()).ok());

    // Seq2seq: architecture shell, then stored weights.
    store_s2s_ = new matchers::Seq2SeqMatcher(
        store_net_, store_index_, static_cast<int>(ds_->towers.size()),
        MicroSeq2SeqConfig(), "S2S");
    ASSERT_TRUE((*store_)->ApplySeq2SeqWeights(store_s2s_).ok());
  }

  static void TearDownTestSuite() {
    delete store_s2s_;
    delete store_model_;
    delete store_index_;
    delete store_net_;
    delete store_;
    std::filesystem::remove(*store_path_);
    delete store_path_;
    delete cleaned_;
    delete s2s_;
    delete model_;
    delete index_;
    delete ds_;
    store_s2s_ = nullptr;
    store_model_ = nullptr;
    store_index_ = nullptr;
    store_net_ = nullptr;
    store_ = nullptr;
    store_path_ = nullptr;
    cleaned_ = nullptr;
    s2s_ = nullptr;
    model_ = nullptr;
    index_ = nullptr;
    ds_ = nullptr;
  }

  /// A matcher family, constructible against either world.
  static matchers::MatcherFactory Factory(const std::string& family,
                                          const network::RoadNetwork* net,
                                          const network::GridIndex* index,
                                          bool store_world) {
    if (family == "STM") {
      hmm::ClassicModelConfig models;
      hmm::EngineConfig engine;
      engine.k = 12;
      return [=] {
        return std::make_unique<matchers::StmMatcher>(net, index, models,
                                                      engine);
      };
    }
    if (family == "IVMM") {
      hmm::ClassicModelConfig models;
      return [=] {
        return std::make_unique<matchers::IvmmMatcher>(net, index, models, 10);
      };
    }
    EXPECT_EQ(family, "LHMM");
    std::shared_ptr<lhmm::LhmmModel> model =
        store_world ? *store_model_ : *model_;
    return [=] {
      return std::make_unique<lhmm::LhmmMatcher>(net, index, model);
    };
  }

  static matchers::MatcherFactory OracleFactory(const std::string& family) {
    return Factory(family, &ds_->network, index_, false);
  }
  static matchers::MatcherFactory StoreFactory(const std::string& family) {
    return Factory(family, store_net_, store_index_, true);
  }

  /// Streams every cleaned trajectory through an engine over `factory`'s
  /// world and returns the committed outputs per session.
  static std::vector<std::vector<network::SegmentId>> RunEngine(
      const matchers::MatcherFactory& factory, const network::RoadNetwork* net,
      int threads) {
    network::CachedRouter shared_cache(net);
    matchers::StreamEngineConfig config;
    config.num_threads = threads;
    config.lag = 3;
    config.shared_router = &shared_cache;
    matchers::StreamEngine engine(factory, config);
    const size_t n = cleaned_->size();
    std::vector<matchers::SessionId> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = engine.Open();
    for (size_t i = 0; i < n; ++i) {
      for (int p = 0; p < (*cleaned_)[i].size(); ++p) {
        engine.Push(ids[i], (*cleaned_)[i][p]);
      }
      engine.Finish(ids[i]);
    }
    engine.Barrier();
    std::vector<std::vector<network::SegmentId>> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(engine.Committed(ids[i]));
    return out;
  }

  static void ExpectOfflineIdentity(const std::string& family) {
    const std::unique_ptr<matchers::MapMatcher> oracle =
        OracleFactory(family)();
    const std::unique_ptr<matchers::MapMatcher> from_store =
        StoreFactory(family)();
    for (size_t i = 0; i < cleaned_->size(); ++i) {
      const matchers::MatchResult a = oracle->Match((*cleaned_)[i]);
      const matchers::MatchResult b = from_store->Match((*cleaned_)[i]);
      EXPECT_EQ(a.path, b.path) << family << " trajectory " << i;
    }
  }

  static void ExpectStreamingIdentity(const std::string& family) {
    for (const int threads : {1, 8}) {
      const auto oracle = RunEngine(OracleFactory(family), &ds_->network,
                                    threads);
      const auto from_store =
          RunEngine(StoreFactory(family), store_net_, threads);
      ASSERT_EQ(oracle.size(), from_store.size());
      for (size_t i = 0; i < oracle.size(); ++i) {
        EXPECT_EQ(oracle[i], from_store[i])
            << family << " session " << i << " threads " << threads;
      }
    }
  }

  static sim::Dataset* ds_;
  static network::GridIndex* index_;
  static std::shared_ptr<lhmm::LhmmModel>* model_;
  static matchers::Seq2SeqMatcher* s2s_;
  static std::vector<traj::Trajectory>* cleaned_;
  static std::string* store_path_;
  static std::shared_ptr<store::MappedStore>* store_;
  static network::RoadNetwork* store_net_;
  static network::GridIndex* store_index_;
  static std::shared_ptr<lhmm::LhmmModel>* store_model_;
  static matchers::Seq2SeqMatcher* store_s2s_;
};

sim::Dataset* StoreMatcherTest::ds_ = nullptr;
network::GridIndex* StoreMatcherTest::index_ = nullptr;
std::shared_ptr<lhmm::LhmmModel>* StoreMatcherTest::model_ = nullptr;
matchers::Seq2SeqMatcher* StoreMatcherTest::s2s_ = nullptr;
std::vector<traj::Trajectory>* StoreMatcherTest::cleaned_ = nullptr;
std::string* StoreMatcherTest::store_path_ = nullptr;
std::shared_ptr<store::MappedStore>* StoreMatcherTest::store_ = nullptr;
network::RoadNetwork* StoreMatcherTest::store_net_ = nullptr;
network::GridIndex* StoreMatcherTest::store_index_ = nullptr;
std::shared_ptr<lhmm::LhmmModel>* StoreMatcherTest::store_model_ = nullptr;
matchers::Seq2SeqMatcher* StoreMatcherTest::store_s2s_ = nullptr;

TEST_F(StoreMatcherTest, StmOfflineIdentity) { ExpectOfflineIdentity("STM"); }
TEST_F(StoreMatcherTest, IvmmOfflineIdentity) { ExpectOfflineIdentity("IVMM"); }
TEST_F(StoreMatcherTest, LhmmOfflineIdentity) { ExpectOfflineIdentity("LHMM"); }

TEST_F(StoreMatcherTest, Seq2SeqOfflineIdentity) {
  // Seq2seq matchers are offline-only (SupportsStreaming() is false), so the
  // identity contract is checked on the batch path.
  EXPECT_FALSE(s2s_->SupportsStreaming());
  for (size_t i = 0; i < cleaned_->size(); ++i) {
    const matchers::MatchResult a = s2s_->Match((*cleaned_)[i]);
    const matchers::MatchResult b = store_s2s_->Match((*cleaned_)[i]);
    EXPECT_EQ(a.path, b.path) << "trajectory " << i;
  }
}

TEST_F(StoreMatcherTest, Seq2SeqSharedCloneIdentity) {
  // SharedClone shares the weight Impl instead of copying it: same decode,
  // one copy of the parameters no matter how many worker clones exist.
  const std::unique_ptr<matchers::Seq2SeqMatcher> clone = s2s_->SharedClone();
  EXPECT_EQ(clone->name(), s2s_->name());
  for (size_t i = 0; i < cleaned_->size(); ++i) {
    EXPECT_EQ(clone->Match((*cleaned_)[i]).path,
              s2s_->Match((*cleaned_)[i]).path)
        << "trajectory " << i;
  }
}

TEST_F(StoreMatcherTest, StmStreamingIdentity) {
  ExpectStreamingIdentity("STM");
}
TEST_F(StoreMatcherTest, IvmmStreamingIdentity) {
  ExpectStreamingIdentity("IVMM");
}
TEST_F(StoreMatcherTest, LhmmStreamingIdentity) {
  ExpectStreamingIdentity("LHMM");
}

}  // namespace
}  // namespace lhmm
