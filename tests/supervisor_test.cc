// Tests for srv::Supervisor and its pure policy pieces.
//
// The backoff and breaker tests are entirely deterministic: BackoffDelay is a
// pure function of (config, key, attempt) and CrashLoopBreaker is pure
// logical-tick arithmetic, so every schedule asserted here replays exactly —
// no wall-clock sleeps, no tolerance windows. The process-level tests spawn
// real /bin/sh children (clean exit, crash loop, drain, leak check); they
// poll wall time for the child to die, but every supervision decision —
// restart_at, attempt counters, parking — is still asserted on the injectable
// logical clock.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "srv/supervisor.h"

namespace lhmm {
namespace {

// ---------------------------------------------------------------------------
// BackoffDelay: deterministic exponential backoff + jitter.
// ---------------------------------------------------------------------------

TEST(BackoffDelayTest, FollowsDoublingScheduleWithBoundedJitter) {
  srv::BackoffConfig cfg;  // base 2, cap 64.
  for (int attempt = 0; attempt < 12; ++attempt) {
    int64_t expected = 2;
    for (int i = 0; i < attempt && expected < 64; ++i) expected *= 2;
    expected = std::min<int64_t>(expected, 64);
    const int64_t d = srv::BackoffDelay(cfg, /*key=*/0, attempt);
    EXPECT_GE(d, expected) << "attempt " << attempt;
    EXPECT_LE(d, expected + expected / 2) << "attempt " << attempt;
  }
}

TEST(BackoffDelayTest, ScheduleReplaysExactly) {
  srv::BackoffConfig cfg;
  std::vector<int64_t> first;
  std::vector<int64_t> second;
  for (int attempt = 0; attempt < 20; ++attempt) {
    first.push_back(srv::BackoffDelay(cfg, 7, attempt));
  }
  for (int attempt = 0; attempt < 20; ++attempt) {
    second.push_back(srv::BackoffDelay(cfg, 7, attempt));
  }
  EXPECT_EQ(first, second);
}

TEST(BackoffDelayTest, HugeAttemptSaturatesAtCapWithoutOverflow) {
  srv::BackoffConfig cfg;
  cfg.base_ticks = 3;
  cfg.cap_ticks = 100;
  // attempt 1000 would be 3 << 1000 if implemented with a shift; the loop
  // implementation must saturate at the cap instead.
  const int64_t d = srv::BackoffDelay(cfg, 0, 1000);
  EXPECT_GE(d, 100);
  EXPECT_LE(d, 150);
}

TEST(BackoffDelayTest, DistinctWorkersDesynchronize) {
  srv::BackoffConfig cfg;
  // Two workers crashing in lockstep must not restart in lockstep: across a
  // few attempts their jittered delays diverge somewhere.
  bool differed = false;
  for (int attempt = 0; attempt < 8 && !differed; ++attempt) {
    differed = srv::BackoffDelay(cfg, 1, attempt) !=
               srv::BackoffDelay(cfg, 2, attempt);
  }
  EXPECT_TRUE(differed);
}

TEST(BackoffDelayTest, SeedChangesTheJitterStream) {
  srv::BackoffConfig a;
  srv::BackoffConfig b;
  b.jitter_seed = a.jitter_seed + 1;
  bool differed = false;
  for (int attempt = 0; attempt < 8 && !differed; ++attempt) {
    differed =
        srv::BackoffDelay(a, 0, attempt) != srv::BackoffDelay(b, 0, attempt);
  }
  EXPECT_TRUE(differed);
}

TEST(BackoffDelayTest, DegenerateBaseStillPositive) {
  srv::BackoffConfig cfg;
  cfg.base_ticks = 0;  // Misconfiguration must not yield a zero-tick loop.
  cfg.cap_ticks = 0;
  EXPECT_GE(srv::BackoffDelay(cfg, 0, 0), 1);
}

// ---------------------------------------------------------------------------
// CrashLoopBreaker: sliding-window arithmetic on logical ticks.
// ---------------------------------------------------------------------------

TEST(CrashLoopBreakerTest, TripsOnMaxCrashesInsideWindow) {
  srv::CrashLoopBreaker b({/*max_crashes=*/3, /*window_ticks=*/100});
  EXPECT_FALSE(b.RecordCrash(10));
  EXPECT_FALSE(b.RecordCrash(50));
  EXPECT_EQ(b.CrashesInWindow(50), 2);
  EXPECT_TRUE(b.RecordCrash(60));  // Third within [.., 60]: trip.
  EXPECT_TRUE(b.tripped());
}

TEST(CrashLoopBreakerTest, SlowCrashesAgeOutAndNeverTrip) {
  srv::CrashLoopBreaker b({/*max_crashes=*/3, /*window_ticks=*/100});
  // One crash every 60 ticks: at each record only the previous one is still
  // inside the window, so the count never reaches 3.
  for (int64_t t = 0; t <= 600; t += 60) {
    EXPECT_FALSE(b.RecordCrash(t)) << "tick " << t;
  }
  EXPECT_FALSE(b.tripped());
}

TEST(CrashLoopBreakerTest, WindowBoundaryIsStrict) {
  srv::CrashLoopBreaker b({/*max_crashes=*/2, /*window_ticks=*/100});
  EXPECT_FALSE(b.RecordCrash(0));
  // A crash at exactly now - window has aged out: count restarts at 1.
  EXPECT_EQ(b.CrashesInWindow(100), 0);
  EXPECT_FALSE(b.RecordCrash(100));
  EXPECT_FALSE(b.tripped());
  // One tick earlier and both are in the window: trip.
  srv::CrashLoopBreaker c({/*max_crashes=*/2, /*window_ticks=*/100});
  EXPECT_FALSE(c.RecordCrash(0));
  EXPECT_TRUE(c.RecordCrash(99));
}

TEST(CrashLoopBreakerTest, TripLatchesUntilReset) {
  srv::CrashLoopBreaker b({/*max_crashes=*/2, /*window_ticks=*/10});
  EXPECT_FALSE(b.RecordCrash(0));
  EXPECT_TRUE(b.RecordCrash(1));
  // Long after the window has emptied, the verdict stands (a parked worker
  // does not quietly un-park itself).
  EXPECT_EQ(b.CrashesInWindow(1000), 0);
  EXPECT_TRUE(b.tripped());
  b.Reset();
  EXPECT_FALSE(b.tripped());
  EXPECT_EQ(b.CrashesInWindow(1000), 0);
}

TEST(CrashLoopBreakerTest, ZeroWindowDisablesEntirely) {
  srv::CrashLoopBreaker b({/*max_crashes=*/1, /*window_ticks=*/0});
  for (int64_t t = 0; t < 50; ++t) {
    EXPECT_FALSE(b.RecordCrash(t));
  }
  EXPECT_FALSE(b.tripped());
}

// ---------------------------------------------------------------------------
// Supervisor over real processes.
// ---------------------------------------------------------------------------

srv::WorkerSpec ShellSpec(const std::string& name, const std::string& script) {
  srv::WorkerSpec spec;
  spec.name = name;
  spec.argv = {"/bin/sh", "-c", script};
  return spec;
}

/// Polls wall time (the child has to actually die) while holding the logical
/// clock at `now`, so the supervision decision under test stays deterministic.
template <typename Pred>
bool PollUntil(srv::Supervisor* sup, int64_t now, const Pred& pred,
               int max_ms = 5000) {
  for (int waited = 0; waited < max_ms; waited += 2) {
    sup->Poll(now);
    if (pred()) return true;
    usleep(2000);
  }
  return pred();
}

TEST(SupervisorTest, CleanExitStaysDownAndCountsClean) {
  srv::Supervisor sup({ShellSpec("ok", "exit 0")}, srv::SupervisorConfig{});
  ASSERT_TRUE(sup.StartAll(0).ok());
  EXPECT_EQ(sup.status(0).state, srv::WorkerState::kRunning);
  ASSERT_TRUE(PollUntil(&sup, 1, [&] {
    return sup.status(0).state != srv::WorkerState::kRunning;
  }));
  EXPECT_EQ(sup.status(0).state, srv::WorkerState::kExited);
  EXPECT_EQ(sup.status(0).clean_exits, 1);
  EXPECT_EQ(sup.status(0).crashes, 0);
  EXPECT_EQ(sup.status(0).restarts, 0);
  EXPECT_TRUE(sup.AllSettled());
}

TEST(SupervisorTest, CrashSchedulesTheExactBackoffTickThenRestarts) {
  srv::SupervisorConfig cfg;
  cfg.backoff.base_ticks = 4;
  cfg.backoff.cap_ticks = 64;
  // The attempt counter climbs only while the breaker window still holds the
  // previous crash (a quiet period resets the ladder), so give the window
  // room without letting the breaker park anything.
  cfg.breaker.max_crashes = 100;
  cfg.breaker.window_ticks = 1 << 20;
  srv::Supervisor sup({ShellSpec("bad", "exit 3")}, cfg);
  ASSERT_TRUE(sup.StartAll(0).ok());

  // Hold the clock at 5 until the crash is reaped: the restart must then be
  // scheduled at exactly 5 + BackoffDelay(attempt 0) — the deterministic
  // schedule, asserted without any timing tolerance.
  ASSERT_TRUE(PollUntil(&sup, 5, [&] {
    return sup.status(0).state == srv::WorkerState::kBackoff;
  }));
  EXPECT_EQ(sup.status(0).crashes, 1);
  EXPECT_EQ(sup.status(0).attempt, 1);
  const int64_t due = 5 + srv::BackoffDelay(cfg.backoff, 0, 0);
  EXPECT_EQ(sup.status(0).restart_at, due);

  // One tick early: nothing happens. At the due tick: respawn.
  sup.Poll(due - 1);
  EXPECT_EQ(sup.status(0).state, srv::WorkerState::kBackoff);
  sup.Poll(due);
  EXPECT_EQ(sup.status(0).state, srv::WorkerState::kRunning);
  EXPECT_EQ(sup.status(0).restarts, 1);

  // Second crash inside the (disabled-breaker) run climbs the ladder:
  // attempt 1, scheduled from the reap tick.
  ASSERT_TRUE(PollUntil(&sup, due + 1, [&] {
    return sup.status(0).state == srv::WorkerState::kBackoff;
  }));
  EXPECT_EQ(sup.status(0).attempt, 2);
  EXPECT_EQ(sup.status(0).restart_at,
            due + 1 + srv::BackoffDelay(cfg.backoff, 0, 1));
}

TEST(SupervisorTest, CrashLoopTripsBreakerAndParksWorker) {
  srv::SupervisorConfig cfg;
  cfg.backoff.base_ticks = 1;
  cfg.backoff.cap_ticks = 2;
  cfg.breaker.max_crashes = 3;
  cfg.breaker.window_ticks = 1 << 20;
  // Two workers: the crash-looper parks, the long-runner keeps serving — the
  // degraded-fleet contract.
  srv::Supervisor sup({ShellSpec("looper", "exit 7"),
                       ShellSpec("steady", "exec sleep 30")},
                      cfg);
  ASSERT_TRUE(sup.StartAll(0).ok());
  int64_t now = 0;
  ASSERT_TRUE(PollUntil(&sup, 0, [&] {
    // Advance the clock so due restarts actually fire.
    sup.Poll(++now);
    return sup.status(0).state == srv::WorkerState::kParked;
  }, /*max_ms=*/10000));
  EXPECT_EQ(sup.status(0).crashes, 3);
  EXPECT_EQ(sup.status(0).restarts, 2);  // Third crash parks instead.
  EXPECT_EQ(sup.status(1).state, srv::WorkerState::kRunning);
  const srv::SupervisorMetrics m = sup.metrics();
  EXPECT_EQ(m.parked, 1);
  EXPECT_EQ(m.running, 1);
  EXPECT_FALSE(sup.AllSettled());  // The steady worker still runs.
}

TEST(SupervisorTest, ExecFailureIsACrashNotAHang) {
  srv::SupervisorConfig cfg;
  cfg.backoff.base_ticks = 1;
  cfg.backoff.cap_ticks = 1;
  cfg.breaker.max_crashes = 2;
  cfg.breaker.window_ticks = 1 << 20;
  srv::WorkerSpec spec;
  spec.name = "noexec";
  spec.argv = {"/nonexistent/binary/path"};
  srv::Supervisor sup({spec}, cfg);
  ASSERT_TRUE(sup.StartAll(0).ok());  // fork succeeds; execv fails in child.
  int64_t now = 0;
  ASSERT_TRUE(PollUntil(&sup, 0, [&] {
    sup.Poll(++now);
    return sup.status(0).state == srv::WorkerState::kParked;
  }));
  EXPECT_EQ(sup.status(0).crashes, 2);
}

TEST(SupervisorTest, DrainStopsRestartsAndWaitAllReapsEverything) {
  srv::SupervisorConfig cfg;
  srv::Supervisor sup({ShellSpec("a", "exec sleep 30"), ShellSpec("b", "exec sleep 30")},
                      cfg);
  ASSERT_TRUE(sup.StartAll(0).ok());
  sup.Poll(1);
  ASSERT_EQ(sup.status(0).state, srv::WorkerState::kRunning);
  ASSERT_EQ(sup.status(1).state, srv::WorkerState::kRunning);

  // SIGTERM fan-out; /bin/sh dies on SIGTERM, well inside the grace.
  sup.Drain();
  EXPECT_EQ(sup.WaitAll(/*grace_ms=*/5000), 0);
  EXPECT_EQ(sup.status(0).state, srv::WorkerState::kExited);
  EXPECT_EQ(sup.status(1).state, srv::WorkerState::kExited);
  EXPECT_EQ(sup.status(0).restarts, 0);  // Drained exits never restart.
  EXPECT_TRUE(sup.AllSettled());
}

TEST(SupervisorTest, WaitAllSigkillsStragglersAfterGrace) {
  // A worker that ignores SIGTERM ("trap '' TERM") must be SIGKILLed once the
  // drain grace runs out — the fleet never hangs on a stubborn worker.
  srv::Supervisor sup({ShellSpec("stubborn", "trap '' TERM; exec sleep 30")},
                      srv::SupervisorConfig{});
  ASSERT_TRUE(sup.StartAll(0).ok());
  sup.Poll(1);
  usleep(100 * 1000);  // Let sh install its trap before the SIGTERM arrives.
  sup.Drain();
  EXPECT_EQ(sup.WaitAll(/*grace_ms=*/300), 1);
  EXPECT_EQ(sup.status(0).state, srv::WorkerState::kExited);
  EXPECT_TRUE(sup.AllSettled());
}

TEST(SupervisorTest, DestructorNeverLeaksWorkers) {
  pid_t pid = -1;
  {
    srv::Supervisor sup({ShellSpec("leaky", "exec sleep 30")},
                        srv::SupervisorConfig{});
    ASSERT_TRUE(sup.StartAll(0).ok());
    pid = sup.pid(0);
    ASSERT_GT(pid, 0);
    ASSERT_EQ(kill(pid, 0), 0);  // Alive while supervised.
  }
  // The destructor SIGKILLed and reaped it: it is no longer our child.
  EXPECT_EQ(waitpid(pid, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);
}

}  // namespace
}  // namespace lhmm
