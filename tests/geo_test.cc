#include <cmath>

#include "geo/bbox.h"
#include "geo/latlon.h"
#include "geo/point.h"
#include "geo/polyline.h"
#include "geo/segment.h"
#include "gtest/gtest.h"

namespace lhmm::geo {
namespace {

TEST(PointTest, BasicOps) {
  const Point a{3.0, 4.0};
  const Point b{1.0, 1.0};
  EXPECT_DOUBLE_EQ(Norm(a), 5.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), std::hypot(2.0, 3.0));
  EXPECT_DOUBLE_EQ(Dot(a, b), 7.0);
  EXPECT_DOUBLE_EQ(Cross(a, b), 3.0 - 4.0);
  const Point mid = Lerp(a, b, 0.5);
  EXPECT_DOUBLE_EQ(mid.x, 2.0);
  EXPECT_DOUBLE_EQ(mid.y, 2.5);
}

TEST(PointTest, AngleDiffWrapsAround) {
  EXPECT_NEAR(AngleDiff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(AngleDiff(M_PI - 0.05, -M_PI + 0.05), 0.1, 1e-12);
  EXPECT_NEAR(AngleDiff(0.0, M_PI), M_PI, 1e-12);
}

TEST(LatLonTest, HaversineKnownDistance) {
  // One degree of latitude is ~111.2 km.
  const LatLon a{30.0, 120.0};
  const LatLon b{31.0, 120.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111200.0, 500.0);
}

TEST(LatLonTest, ProjectionRoundTrip) {
  const LocalProjection proj(LatLon{30.25, 120.17});
  const LatLon p{30.30, 120.22};
  const Point xy = proj.Forward(p);
  const LatLon back = proj.Backward(xy);
  EXPECT_NEAR(back.lat, p.lat, 1e-9);
  EXPECT_NEAR(back.lon, p.lon, 1e-9);
}

TEST(LatLonTest, ProjectionApproximatesHaversine) {
  const LocalProjection proj(LatLon{30.0, 120.0});
  const LatLon a{30.01, 120.02};
  const LatLon b{30.05, 119.97};
  const double planar = Distance(proj.Forward(a), proj.Forward(b));
  const double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar, sphere, sphere * 0.005);
}

TEST(SegmentTest, ProjectionInteriorAndClamped) {
  const Point a{0, 0};
  const Point b{10, 0};
  const SegmentProjection mid = ProjectOntoSegment({5, 3}, a, b);
  EXPECT_NEAR(mid.t, 0.5, 1e-12);
  EXPECT_NEAR(mid.dist, 3.0, 1e-12);
  const SegmentProjection before = ProjectOntoSegment({-4, 3}, a, b);
  EXPECT_NEAR(before.t, 0.0, 1e-12);
  EXPECT_NEAR(before.dist, 5.0, 1e-12);
  const SegmentProjection after = ProjectOntoSegment({14, 3}, a, b);
  EXPECT_NEAR(after.t, 1.0, 1e-12);
  EXPECT_NEAR(after.dist, 5.0, 1e-12);
}

TEST(SegmentTest, DegenerateSegment) {
  const SegmentProjection p = ProjectOntoSegment({1, 1}, {0, 0}, {0, 0});
  EXPECT_NEAR(p.dist, std::sqrt(2.0), 1e-12);
}

TEST(SegmentTest, Intersection) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 0}, {0, 1}, {1, 1}));
  // Touching endpoint counts.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 0}, {1, 0}, {2, 5}));
}

TEST(PolylineTest, LengthAndPointAt) {
  const Polyline line({{0, 0}, {3, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(line.Length(), 7.0);
  const Point p = line.PointAt(3.0);
  EXPECT_NEAR(p.x, 3.0, 1e-12);
  EXPECT_NEAR(p.y, 0.0, 1e-12);
  const Point q = line.PointAt(5.0);
  EXPECT_NEAR(q.x, 3.0, 1e-12);
  EXPECT_NEAR(q.y, 2.0, 1e-12);
  // Clamping.
  EXPECT_NEAR(line.PointAt(-1.0).x, 0.0, 1e-12);
  EXPECT_NEAR(line.PointAt(100.0).y, 4.0, 1e-12);
}

TEST(PolylineTest, ProjectFindsClosestVertexPair) {
  const Polyline line({{0, 0}, {10, 0}, {10, 10}});
  const PolylineProjection p = line.Project({4, 3});
  EXPECT_EQ(p.segment, 0);
  EXPECT_NEAR(p.dist, 3.0, 1e-12);
  EXPECT_NEAR(p.offset, 4.0, 1e-12);
  const PolylineProjection q = line.Project({12, 9});
  EXPECT_EQ(q.segment, 1);
  EXPECT_NEAR(q.dist, 2.0, 1e-12);
  EXPECT_NEAR(q.offset, 19.0, 1e-12);
}

TEST(PolylineTest, TotalTurnRightAngle) {
  const Polyline line({{0, 0}, {10, 0}, {10, 10}});
  EXPECT_NEAR(line.TotalTurn(), M_PI / 2.0, 1e-12);
  const Polyline straight({{0, 0}, {5, 0}, {10, 0}});
  EXPECT_NEAR(straight.TotalTurn(), 0.0, 1e-12);
}

TEST(BBoxTest, ExtendContainIntersect) {
  BBox box;
  EXPECT_TRUE(box.Empty());
  box.Extend({0, 0});
  box.Extend({10, 5});
  EXPECT_FALSE(box.Empty());
  EXPECT_TRUE(box.Contains({5, 2}));
  EXPECT_FALSE(box.Contains({11, 2}));
  box.Inflate(2.0);
  EXPECT_TRUE(box.Contains({11, 6}));
  BBox other;
  other.Extend({20, 20});
  other.Extend({30, 30});
  EXPECT_FALSE(box.Intersects(other));
  other.Extend({5, 5});
  EXPECT_TRUE(box.Intersects(other));
}

class PolylineOffsetTest : public ::testing::TestWithParam<double> {};

TEST_P(PolylineOffsetTest, PointAtOffsetIsOnLineAndConsistent) {
  const Polyline line({{0, 0}, {100, 0}, {100, 50}, {40, 50}});
  const double frac = GetParam();
  const double offset = frac * line.Length();
  const Point p = line.PointAt(offset);
  const PolylineProjection proj = line.Project(p);
  EXPECT_NEAR(proj.dist, 0.0, 1e-9);
  EXPECT_NEAR(proj.offset, offset, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PolylineOffsetTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.33, 0.5, 0.66, 0.75,
                                           0.9, 1.0));

}  // namespace
}  // namespace lhmm::geo
