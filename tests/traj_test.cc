#include <cmath>

#include "core/rng.h"
#include "gtest/gtest.h"
#include "traj/filters.h"
#include "traj/simplify.h"
#include "traj/trajectory.h"

namespace lhmm::traj {
namespace {

Trajectory MakeLine(int n, double spacing_m, double interval_s) {
  Trajectory t;
  for (int i = 0; i < n; ++i) {
    TrajPoint p;
    p.pos = {i * spacing_m, 0.0};
    p.t = i * interval_s;
    p.tower = i;  // Distinct towers by default.
    t.points.push_back(p);
  }
  return t;
}

TEST(TrajectoryTest, Stats) {
  const Trajectory t = MakeLine(5, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(t.DurationSeconds(), 40.0);
  EXPECT_DOUBLE_EQ(t.PathLength(), 400.0);
  EXPECT_DOUBLE_EQ(t.MeanSamplingIntervalSeconds(), 10.0);
  EXPECT_DOUBLE_EQ(t.MaxSamplingIntervalSeconds(), 10.0);
  EXPECT_DOUBLE_EQ(t.MeanSamplingDistanceMeters(), 100.0);
  EXPECT_DOUBLE_EQ(t.MedianSamplingDistanceMeters(), 100.0);
}

TEST(TrajectoryTest, EmptyAndSingleton) {
  Trajectory t;
  EXPECT_DOUBLE_EQ(t.DurationSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(t.PathLength(), 0.0);
  t.points.push_back({{1, 2}, 5.0, 0});
  EXPECT_DOUBLE_EQ(t.MeanSamplingIntervalSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(t.MedianSamplingDistanceMeters(), 0.0);
}

TEST(SpeedFilterTest, DropsImpossibleJumps) {
  Trajectory t = MakeLine(5, 100.0, 10.0);
  // Insert a 5 km jump at index 2 (implied speed 500 m/s).
  t.points[2].pos = {5000.0, 0.0};
  FilterConfig cfg;
  cfg.max_speed = 170.0;
  const Trajectory out = SpeedFilter(t, cfg);
  EXPECT_EQ(out.size(), 4);
  for (const TrajPoint& p : out.points) {
    EXPECT_LT(p.pos.x, 4900.0);
  }
}

TEST(SpeedFilterTest, DropsNonMonotonicTimestamps) {
  Trajectory t = MakeLine(4, 100.0, 10.0);
  t.points[2].t = t.points[1].t;  // Duplicate timestamp.
  FilterConfig cfg;
  const Trajectory out = SpeedFilter(t, cfg);
  EXPECT_EQ(out.size(), 3);
}

TEST(AlphaTrimmedTest, MedianOfThreeKillsSingleSpike) {
  Trajectory t = MakeLine(7, 100.0, 10.0);
  t.points[3].pos = {300.0, 2000.0};  // Lone spike off to the side.
  FilterConfig cfg;  // Defaults: window 1, alpha 1 -> median of three.
  const Trajectory out = AlphaTrimmedMeanFilter(t, cfg);
  EXPECT_NEAR(out.points[3].pos.y, 0.0, 1e-9);
}

TEST(AlphaTrimmedTest, PersistentAttachmentSurvives) {
  Trajectory t = MakeLine(8, 100.0, 10.0);
  t.points[3].pos = {320.0, 1500.0};
  t.points[4].pos = {330.0, 1500.0};  // Two samples on the same macro tower.
  FilterConfig cfg;
  const Trajectory out = AlphaTrimmedMeanFilter(t, cfg);
  // Median-of-three keeps at least one of the pair at full displacement.
  EXPECT_GT(std::max(out.points[3].pos.y, out.points[4].pos.y), 1000.0);
}

TEST(DirectionFilterTest, DropsPingPong) {
  Trajectory t = MakeLine(6, 200.0, 10.0);
  // Ping-pong: out 1.5 km sideways and straight back.
  t.points[3].pos = {600.0, 1500.0};
  FilterConfig cfg;
  const Trajectory out = DirectionFilter(t, cfg);
  EXPECT_EQ(out.size(), 5);
  for (const TrajPoint& p : out.points) {
    EXPECT_LT(p.pos.y, 100.0);
  }
}

TEST(DirectionFilterTest, KeepsGenuineTurns) {
  // A right-angle turn with ordinary hop lengths must be preserved.
  Trajectory t;
  for (int i = 0; i < 4; ++i) t.points.push_back({{i * 200.0, 0.0}, i * 10.0, i});
  for (int i = 1; i < 4; ++i) {
    t.points.push_back({{600.0, i * 200.0}, (3 + i) * 10.0, 4 + i});
  }
  FilterConfig cfg;
  const Trajectory out = DirectionFilter(t, cfg);
  EXPECT_EQ(out.size(), t.size());
}

TEST(DeduplicateTest, CollapsesConsecutiveSameTower) {
  Trajectory t = MakeLine(6, 100.0, 10.0);
  t.points[2].tower = 1;
  t.points[3].tower = 1;
  t.points[1].tower = 1;
  const Trajectory out = DeduplicateTowers(t);
  EXPECT_EQ(out.size(), 4);  // 0, 1(first of run), 4, 5.
  EXPECT_DOUBLE_EQ(out.points[1].t, 10.0);
}

TEST(ResampleTest, EnforcesMinimumGap) {
  const Trajectory t = MakeLine(20, 100.0, 10.0);  // 10 s between samples.
  const Trajectory out = Resample(t, 2.0);         // 2 per minute = 30 s gap.
  ASSERT_GE(out.size(), 2);
  for (int i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].t - out[i - 1].t, 30.0 - 1e-9);
  }
  // Rate >= original keeps everything.
  EXPECT_EQ(Resample(t, 6.0).size(), t.size());
}

class ResampleRateTest : public ::testing::TestWithParam<double> {};

TEST_P(ResampleRateTest, GapRespectsRate) {
  const Trajectory t = MakeLine(60, 80.0, 7.0);
  const double rate = GetParam();
  const Trajectory out = Resample(t, rate);
  for (int i = 1; i < out.size(); ++i) {
    EXPECT_GE(out[i].t - out[i - 1].t, 60.0 / rate - 1e-9);
  }
  EXPECT_GE(out.size(), 1);
}

INSTANTIATE_TEST_SUITE_P(Rates, ResampleRateTest,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4));

TEST(SimplifyTest, DouglasPeuckerKeepsShapePoints) {
  Trajectory t;
  // An L shape with collinear interior points.
  for (int i = 0; i <= 4; ++i) t.points.push_back({{i * 100.0, 0.0}, i * 10.0, i});
  for (int i = 1; i <= 4; ++i) {
    t.points.push_back({{400.0, i * 100.0}, (4 + i) * 10.0, 4 + i});
  }
  const Trajectory out = Simplify(t, 1.0);
  ASSERT_EQ(out.size(), 3);  // Two endpoints + the corner.
  EXPECT_DOUBLE_EQ(out.points[1].pos.x, 400.0);
  EXPECT_DOUBLE_EQ(out.points[1].pos.y, 0.0);
}

TEST(SimplifyTest, EpsilonControlsDetail) {
  Trajectory t;
  core::Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    t.points.push_back({{i * 50.0, rng.Normal(0.0, 20.0)}, i * 5.0, i});
  }
  const Trajectory coarse = Simplify(t, 100.0);
  const Trajectory fine = Simplify(t, 5.0);
  EXPECT_LT(coarse.size(), fine.size());
  EXPECT_LE(fine.size(), t.size());
  // Endpoints always preserved.
  EXPECT_DOUBLE_EQ(coarse.points.front().t, t.points.front().t);
  EXPECT_DOUBLE_EQ(coarse.points.back().t, t.points.back().t);
}

TEST(SimplifyTest, ThinByDistanceEnforcesGap) {
  const Trajectory t = MakeLine(30, 40.0, 5.0);
  const Trajectory out = ThinByDistance(t, 100.0);
  for (int i = 1; i + 1 < out.size(); ++i) {
    EXPECT_GE(geo::Distance(out[i].pos, out[i - 1].pos), 100.0 - 1e-9);
  }
  // Last point kept.
  EXPECT_DOUBLE_EQ(out.points.back().t, t.points.back().t);
}

TEST(PreprocessTest, PipelineIsStableOnCleanData) {
  const Trajectory t = MakeLine(10, 150.0, 12.0);
  FilterConfig cfg;
  const Trajectory out = PreprocessCellular(t, cfg);
  EXPECT_EQ(out.size(), t.size());
  for (int i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i].pos.y, 0.0, 1e-9);
    EXPECT_EQ(out[i].tower, t[i].tower);
  }
}

}  // namespace
}  // namespace lhmm::traj
