#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <unordered_set>

#include "gtest/gtest.h"
#include "hmm/classic_models.h"
#include "hmm/engine.h"
#include "hmm/online.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "network/path_cache.h"

namespace lhmm::hmm {
namespace {

/// A small harness: grid network, classic models, shared router.
struct Harness {
  network::RoadNetwork net;
  std::unique_ptr<network::GridIndex> index;
  std::unique_ptr<network::SegmentRouter> router;
  std::unique_ptr<network::CachedRouter> cached;
  ClassicModelConfig models;
  std::unique_ptr<GaussianObservationModel> obs;
  std::unique_ptr<ClassicTransitionModel> trans;

  explicit Harness(double obs_sigma = 120.0) {
    net = network::GenerateGridNetwork(8, 8, 200.0);
    index = std::make_unique<network::GridIndex>(&net, 150.0);
    router = std::make_unique<network::SegmentRouter>(&net);
    cached = std::make_unique<network::CachedRouter>(router.get());
    models.obs_sigma = obs_sigma;
    models.search_radius = 500.0;
    obs = std::make_unique<GaussianObservationModel>(index.get(), models);
    trans = std::make_unique<ClassicTransitionModel>(models, &net);
  }

  Engine MakeEngine(const EngineConfig& config) {
    return Engine(&net, cached.get(), obs.get(), trans.get(), config);
  }
};

/// Walks along the bottom row of the grid (y=0) left to right.
traj::Trajectory BottomRowTrajectory(int points, double spacing, double dt) {
  traj::Trajectory t;
  for (int i = 0; i < points; ++i) {
    t.points.push_back({{100.0 + i * spacing, 10.0}, i * dt, i});
  }
  return t;
}

TEST(GaussianObservationTest, ScoresDecreaseWithDistance) {
  Harness h;
  EXPECT_GT(h.obs->Score(10.0), h.obs->Score(100.0));
  EXPECT_GT(h.obs->Score(100.0), h.obs->Score(400.0));
  EXPECT_NEAR(h.obs->Score(0.0), 1.0, 1e-12);
}

TEST(GaussianObservationTest, CandidatesSortedAndCapped) {
  Harness h;
  const traj::Trajectory t = BottomRowTrajectory(3, 200.0, 15.0);
  const CandidateSet cs = h.obs->Candidates(t, 0, 5);
  ASSERT_LE(cs.size(), 5u);
  ASSERT_GE(cs.size(), 2u);
  for (size_t i = 1; i < cs.size(); ++i) {
    EXPECT_GE(cs[i - 1].observation, cs[i].observation);
  }
}

TEST(GaussianObservationTest, MakeCandidateMatchesCandidates) {
  Harness h;
  const traj::Trajectory t = BottomRowTrajectory(2, 200.0, 15.0);
  const CandidateSet cs = h.obs->Candidates(t, 0, 3);
  ASSERT_FALSE(cs.empty());
  const Candidate rebuilt = h.obs->MakeCandidate(t, 0, cs[0].segment);
  EXPECT_DOUBLE_EQ(rebuilt.observation, cs[0].observation);
  EXPECT_DOUBLE_EQ(rebuilt.dist, cs[0].dist);
}

TEST(EngineTest, MatchesStraightLine) {
  Harness h;
  EngineConfig config;
  config.k = 8;
  Engine engine = h.MakeEngine(config);
  const traj::Trajectory t = BottomRowTrajectory(6, 250.0, 20.0);
  const EngineResult r = engine.Match(t);
  ASSERT_FALSE(r.path.empty());
  EXPECT_TRUE(network::IsConnectedPath(h.net, r.path));
  // The matched path must hug the bottom row: every segment within 150 m.
  for (network::SegmentId sid : r.path) {
    const geo::Polyline& geom = h.net.segment(sid).geometry;
    EXPECT_LT(std::min(geom.front().y, geom.back().y), 150.0);
  }
  EXPECT_EQ(r.candidates.size(), r.point_index.size());
  EXPECT_EQ(r.matched.size(), r.candidates.size());
}

TEST(EngineTest, EmptyAndSingletonTrajectories) {
  Harness h;
  EngineConfig config;
  Engine engine = h.MakeEngine(config);
  EXPECT_TRUE(engine.Match(traj::Trajectory{}).path.empty());
  traj::Trajectory one;
  one.points.push_back({{100, 10}, 0.0, 0});
  const EngineResult r = engine.Match(one);
  EXPECT_EQ(r.path.size(), 1u);
}

TEST(EngineTest, PointOutOfRangeIsDropped) {
  Harness h;
  EngineConfig config;
  config.k = 6;
  Engine engine = h.MakeEngine(config);
  traj::Trajectory t = BottomRowTrajectory(5, 250.0, 20.0);
  t.points[2].pos = {9000.0, 9000.0};  // Far outside any search radius.
  const EngineResult r = engine.Match(t);
  EXPECT_EQ(r.point_index.size(), 4u);  // One point dropped.
  for (int idx : r.point_index) EXPECT_NE(idx, 2);
  EXPECT_FALSE(r.path.empty());
}

TEST(EngineTest, ShortcutRescuesOutlierPoint) {
  Harness h(100.0);
  EngineConfig config;
  config.k = 4;  // Small candidate sets so the outlier's set is unqualified.
  config.use_shortcuts = true;
  Engine engine = h.MakeEngine(config);

  traj::Trajectory t = BottomRowTrajectory(7, 250.0, 20.0);
  // Point 3 jumps 600 m north: its 4 nearest segments are all off-path, and
  // driving there and back within 20 s is impossible.
  t.points[3].pos.y = 610.0;

  const EngineResult with_shortcut = engine.Match(t);
  EXPECT_GT(engine.shortcuts_applied(), 0);

  EngineConfig no_shortcut = config;
  no_shortcut.use_shortcuts = false;
  Engine plain = h.MakeEngine(no_shortcut);
  const EngineResult without = plain.Match(t);

  // With the shortcut the path must stay near the bottom row.
  auto max_y = [&](const std::vector<network::SegmentId>& path) {
    double best = 0.0;
    for (network::SegmentId sid : path) {
      const geo::Polyline& geom = h.net.segment(sid).geometry;
      best = std::max(best, std::max(geom.front().y, geom.back().y));
    }
    return best;
  };
  EXPECT_LE(max_y(with_shortcut.path), max_y(without.path));
  // The shortcut-added candidate is recorded for the skipped point.
  bool any_shortcut_candidate = false;
  for (const CandidateSet& cs : with_shortcut.candidates) {
    for (const Candidate& c : cs) any_shortcut_candidate |= c.from_shortcut;
  }
  EXPECT_TRUE(any_shortcut_candidate);
}

TEST(EngineTest, LargerKNeverShrinksCandidateSets) {
  Harness h;
  const traj::Trajectory t = BottomRowTrajectory(4, 250.0, 20.0);
  EngineConfig small;
  small.k = 3;
  EngineConfig big;
  big.k = 10;
  Engine a = h.MakeEngine(small);
  Engine b = h.MakeEngine(big);
  const EngineResult ra = a.Match(t);
  const EngineResult rb = b.Match(t);
  ASSERT_EQ(ra.candidates.size(), rb.candidates.size());
  for (size_t i = 0; i < ra.candidates.size(); ++i) {
    EXPECT_LE(ra.candidates[i].size(), rb.candidates[i].size());
    EXPECT_LE(ra.candidates[i].size(), 3u);
  }
}

TEST(OnlineMatcherTest, StreamsAndMatchesStraightLine) {
  Harness h;
  OnlineConfig config;
  config.k = 6;
  config.lag = 3;
  OnlineMatcher online(&h.net, h.cached.get(), h.obs.get(), h.trans.get(), config);
  const traj::Trajectory t = BottomRowTrajectory(10, 250.0, 20.0);
  std::vector<network::SegmentId> streamed;
  for (const auto& p : t.points) {
    const auto emitted = online.Push(p);
    streamed.insert(streamed.end(), emitted.begin(), emitted.end());
  }
  const auto tail = online.Finish();
  streamed.insert(streamed.end(), tail.begin(), tail.end());
  ASSERT_FALSE(streamed.empty());
  EXPECT_EQ(streamed, online.committed());
  // The committed path hugs the bottom row and is (near-)connected.
  int breaks = 0;
  for (size_t i = 1; i < streamed.size(); ++i) {
    if (!h.net.AreConsecutive(streamed[i - 1], streamed[i])) ++breaks;
  }
  EXPECT_LE(breaks, 1);
  for (network::SegmentId sid : streamed) {
    const geo::Polyline& geom = h.net.segment(sid).geometry;
    EXPECT_LT(std::min(geom.front().y, geom.back().y), 150.0);
  }
}

TEST(OnlineMatcherTest, CommitsLagBehindInput) {
  Harness h;
  OnlineConfig config;
  config.lag = 4;
  OnlineMatcher online(&h.net, h.cached.get(), h.obs.get(), h.trans.get(), config);
  const traj::Trajectory t = BottomRowTrajectory(5, 250.0, 20.0);
  int pushes_before_first_commit = 0;
  for (const auto& p : t.points) {
    ++pushes_before_first_commit;
    if (!online.Push(p).empty()) break;
  }
  // Nothing commits until lag+1 points are buffered.
  EXPECT_GT(pushes_before_first_commit, config.lag);
}

TEST(OnlineMatcherTest, ResetClearsState) {
  Harness h;
  OnlineConfig config;
  config.lag = 2;
  OnlineMatcher online(&h.net, h.cached.get(), h.obs.get(), h.trans.get(), config);
  const traj::Trajectory t = BottomRowTrajectory(6, 250.0, 20.0);
  for (const auto& p : t.points) online.Push(p);
  online.Finish();
  EXPECT_FALSE(online.committed().empty());
  online.Reset();
  EXPECT_TRUE(online.committed().empty());
  for (const auto& p : t.points) online.Push(p);
  const auto tail = online.Finish();
  EXPECT_FALSE(online.committed().empty());
}

TEST(OnlineMatcherTest, ApproachesOfflineAccuracyWithLag) {
  Harness h;
  // Offline reference.
  EngineConfig engine_config;
  engine_config.k = 6;
  Engine engine = h.MakeEngine(engine_config);
  core::Rng rng(3);
  traj::Trajectory t;
  double x = 150.0;
  for (int i = 0; i < 12; ++i) {
    t.points.push_back({{x + rng.Normal(0, 60.0), 10.0 + rng.Normal(0, 60.0)},
                        i * 18.0, i});
    x += 160.0;
  }
  const EngineResult offline = engine.Match(t);

  OnlineConfig config;
  config.k = 6;
  config.lag = 6;
  OnlineMatcher online(&h.net, h.cached.get(), h.obs.get(), h.trans.get(), config);
  for (const auto& p : t.points) online.Push(p);
  online.Finish();
  // Large-lag online should overlap the offline path substantially.
  std::set<network::SegmentId> off(offline.path.begin(), offline.path.end());
  int overlap = 0;
  for (network::SegmentId sid : online.committed()) {
    if (off.count(sid)) ++overlap;
  }
  EXPECT_GT(overlap * 2, static_cast<int>(online.committed().size()));
}

TEST(OnlineMatcherTest, LagZeroIsGreedyButStillTracks) {
  Harness h;
  OnlineConfig config;
  config.lag = 0;
  OnlineMatcher online(&h.net, h.cached.get(), h.obs.get(), h.trans.get(), config);
  const traj::Trajectory t = BottomRowTrajectory(8, 250.0, 20.0);
  for (const auto& p : t.points) online.Push(p);
  online.Finish();
  ASSERT_FALSE(online.committed().empty());
  // Greedy (no lookahead) may stray, but not more than one block off the
  // bottom row.
  for (network::SegmentId sid : online.committed()) {
    const geo::Polyline& geom = h.net.segment(sid).geometry;
    EXPECT_LE(std::min(geom.front().y, geom.back().y), 200.0);
  }
}

/// Brute-force reference: enumerates every candidate chain and scores it
/// with Eq. (14); the engine's Viterbi must find the same optimum.
class ViterbiEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(ViterbiEquivalenceTest, MatchesBruteForceOptimum) {
  Harness h;
  EngineConfig config;
  config.k = 3;  // Keep the chain space enumerable: 3^m paths.
  config.use_shortcuts = false;
  Engine engine = h.MakeEngine(config);

  core::Rng rng(100 + GetParam());
  traj::Trajectory t;
  double x = 200.0;
  double y = 200.0;
  for (int i = 0; i < 5; ++i) {
    t.points.push_back({{x + rng.Normal(0, 70.0), y + rng.Normal(0, 70.0)},
                        i * 20.0, i});
    x += 200.0;
    if (i % 2 == 1) y += 150.0;
  }
  const EngineResult r = engine.Match(t);
  ASSERT_EQ(r.candidates.size(), 5u);

  // Re-derive all pairwise weights exactly as the engine does.
  network::SegmentRouter router(&h.net);
  const int m = static_cast<int>(r.candidates.size());
  std::vector<double> straight(m, 0.0);
  for (int s = 1; s < m; ++s) {
    straight[s] =
        geo::Distance(t[r.point_index[s - 1]].pos, t[r.point_index[s]].pos);
  }
  auto weight = [&](int s, const Candidate& a, const Candidate& b) {
    const double bound = std::min(12000.0, 4.0 * straight[s] + 1500.0);
    const auto route = router.Route1(a.segment, b.segment, bound);
    const network::Route* rp = route.has_value() ? &route.value() : nullptr;
    if (rp == nullptr) return -1e18;
    return h.trans->Transition(t, r.point_index[s - 1], r.point_index[s], a, b,
                               rp, straight[s]) *
           b.observation;
  };

  // Enumerate all chains.
  double best_score = -1e18;
  std::vector<int> idx(m, 0);
  std::vector<int> best_chain;
  while (true) {
    double score = r.candidates[0][idx[0]].observation;
    for (int s = 1; s < m; ++s) {
      score += weight(s, r.candidates[s - 1][idx[s - 1]], r.candidates[s][idx[s]]);
    }
    if (score > best_score) {
      best_score = score;
      best_chain = idx;
    }
    int carry = m - 1;
    while (carry >= 0) {
      if (++idx[carry] < static_cast<int>(r.candidates[carry].size())) break;
      idx[carry] = 0;
      --carry;
    }
    if (carry < 0) break;
  }

  // The engine's chosen chain must achieve the brute-force optimum score.
  double engine_score = 0.0;
  {
    std::vector<int> chosen(m);
    for (int s = 0; s < m; ++s) {
      for (size_t j = 0; j < r.candidates[s].size(); ++j) {
        if (r.candidates[s][j].segment == r.matched[s]) {
          chosen[s] = static_cast<int>(j);
          break;
        }
      }
    }
    engine_score = r.candidates[0][chosen[0]].observation;
    for (int s = 1; s < m; ++s) {
      engine_score += weight(s, r.candidates[s - 1][chosen[s - 1]],
                             r.candidates[s][chosen[s]]);
    }
  }
  EXPECT_NEAR(engine_score, best_score, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViterbiEquivalenceTest, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Viterbi DP property test on random small candidate graphs. Mock models
// assign deterministic pseudo-random weights (hash-based, no shared RNG
// state), candidates are arbitrary segments scattered over the network, and
// the property is one-sided: the engine's chosen chain must score at least as
// high as EVERY brute-force-enumerated chain.
// ---------------------------------------------------------------------------

/// splitmix64-style deterministic hash -> weight in (0, 1].
double HashWeight(uint64_t a, uint64_t b, uint64_t c) {
  uint64_t x = a * 0x9E3779B97F4A7C15ull + b * 0xBF58476D1CE4E5B9ull +
               c * 0x94D049BB133111EBull;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return 0.05 + 0.95 * static_cast<double>(x % 100000) / 100000.0;
}

class MockObservationModel : public ObservationModel {
 public:
  MockObservationModel(const network::RoadNetwork* net, uint64_t seed)
      : net_(net), seed_(seed) {}

  CandidateSet Candidates(const traj::Trajectory& t, int i, int k) override {
    CandidateSet cs;
    std::unordered_set<network::SegmentId> used;
    for (uint64_t j = 0; static_cast<int>(cs.size()) < k && j < 64; ++j) {
      const auto sid = static_cast<network::SegmentId>(
          HashWeight(seed_ + 1, static_cast<uint64_t>(i), j) * 1e5);
      const network::SegmentId seg = sid % net_->num_segments();
      if (!used.insert(seg).second) continue;
      cs.push_back(MakeCandidate(t, i, seg));
    }
    std::sort(cs.begin(), cs.end(), [](const Candidate& a, const Candidate& b) {
      return a.observation > b.observation;
    });
    return cs;
  }

  Candidate MakeCandidate(const traj::Trajectory& t, int i,
                          network::SegmentId segment) override {
    (void)t;
    Candidate c;
    c.segment = segment;
    c.dist = 0.0;
    c.closest = net_->segment(segment).geometry.front();
    c.observation =
        HashWeight(seed_, static_cast<uint64_t>(i), static_cast<uint64_t>(segment));
    return c;
  }

 private:
  const network::RoadNetwork* net_;
  uint64_t seed_;
};

class MockTransitionModel : public TransitionModel {
 public:
  explicit MockTransitionModel(uint64_t seed) : seed_(seed) {}

  double Transition(const traj::Trajectory& t, int prev_index, int cur_index,
                    const Candidate& prev, const Candidate& cur,
                    const network::Route* route, double straight_dist) override {
    (void)t;
    (void)prev_index;
    (void)straight_dist;
    if (route == nullptr) return 0.0;
    return HashWeight(seed_ ^ 0xC0FFEEull,
                      static_cast<uint64_t>(prev.segment) * 131071ull +
                          static_cast<uint64_t>(cur.segment),
                      static_cast<uint64_t>(cur_index));
  }

 private:
  uint64_t seed_;
};

class ViterbiPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ViterbiPropertyTest, EngineChainDominatesEveryBruteForceChain) {
  const uint64_t seed = 1000 + static_cast<uint64_t>(GetParam());
  // A small dense grid: every candidate pair is reachable well within the
  // route bound (>= 1500 m), so no chain is pruned by unreachability.
  network::RoadNetwork net = network::GenerateGridNetwork(4, 4, 100.0);
  network::CachedRouter cached(&net);
  MockObservationModel obs(&net, seed);
  MockTransitionModel trans(seed);
  EngineConfig config;
  config.k = 3;
  config.use_shortcuts = false;
  Engine engine(&net, &cached, &obs, &trans, config);

  traj::Trajectory t;
  constexpr int kPoints = 5;
  for (int i = 0; i < kPoints; ++i) {
    t.points.push_back({{50.0 + i * 60.0, 50.0}, i * 15.0, i});
  }
  const EngineResult r = engine.Match(t);
  ASSERT_EQ(r.candidates.size(), static_cast<size_t>(kPoints));

  // Score chains exactly as the engine does: additive P_O(c_0) + sum of
  // P_T * P_O, routes bounded by min(12000, 4 * straight + 1500).
  network::SegmentRouter router(&net);
  const int m = static_cast<int>(r.candidates.size());
  std::vector<double> straight(m, 0.0);
  for (int s = 1; s < m; ++s) {
    straight[s] =
        geo::Distance(t[r.point_index[s - 1]].pos, t[r.point_index[s]].pos);
  }
  auto weight = [&](int s, const Candidate& a, const Candidate& b) {
    const double bound = std::min(12000.0, 4.0 * straight[s] + 1500.0);
    const auto route = router.Route1(a.segment, b.segment, bound);
    const network::Route* rp = route.has_value() ? &route.value() : nullptr;
    if (rp == nullptr) return -1e18;
    return trans.Transition(t, r.point_index[s - 1], r.point_index[s], a, b, rp,
                            straight[s]) *
           b.observation;
  };

  // The engine's chosen chain, re-scored from r.matched / r.candidates.
  std::vector<int> chosen(m, -1);
  for (int s = 0; s < m; ++s) {
    for (size_t j = 0; j < r.candidates[s].size(); ++j) {
      if (r.candidates[s][j].segment == r.matched[s]) {
        chosen[s] = static_cast<int>(j);
        break;
      }
    }
    ASSERT_GE(chosen[s], 0) << "matched segment missing from candidate set";
  }
  double engine_score = r.candidates[0][chosen[0]].observation;
  for (int s = 1; s < m; ++s) {
    engine_score +=
        weight(s, r.candidates[s - 1][chosen[s - 1]], r.candidates[s][chosen[s]]);
  }

  // Enumerate all chains; the engine must dominate each one.
  std::vector<int> idx(m, 0);
  int64_t chains = 0;
  while (true) {
    double score = r.candidates[0][idx[0]].observation;
    for (int s = 1; s < m; ++s) {
      score += weight(s, r.candidates[s - 1][idx[s - 1]], r.candidates[s][idx[s]]);
    }
    EXPECT_GE(engine_score, score - 1e-9);
    ++chains;
    int carry = m - 1;
    while (carry >= 0) {
      if (++idx[carry] < static_cast<int>(r.candidates[carry].size())) break;
      idx[carry] = 0;
      --carry;
    }
    if (carry < 0) break;
  }
  EXPECT_GT(chains, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViterbiPropertyTest, ::testing::Range(0, 10));

class EngineKSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(EngineKSweepTest, MatchedPathConnectedForAnyK) {
  Harness h;
  EngineConfig config;
  config.k = GetParam();
  config.use_shortcuts = true;
  Engine engine = h.MakeEngine(config);
  core::Rng rng(GetParam());
  traj::Trajectory t;
  double x = 150.0;
  double y = 50.0;
  for (int i = 0; i < 8; ++i) {
    t.points.push_back({{x + rng.Normal(0, 80.0), y + rng.Normal(0, 80.0)},
                        i * 18.0, i});
    x += 180.0;
    if (i % 3 == 2) y += 160.0;
  }
  const EngineResult r = engine.Match(t);
  ASSERT_FALSE(r.path.empty());
  EXPECT_TRUE(network::IsConnectedPath(h.net, r.path));
}

INSTANTIATE_TEST_SUITE_P(Ks, EngineKSweepTest, ::testing::Values(1, 2, 4, 8, 16));

// ---------------------------------------------------------------------------
// SoA Viterbi column kernel vs the scalar reference.
// ---------------------------------------------------------------------------

constexpr double kKernelNegInf = -std::numeric_limits<double>::infinity();

/// Checks the SoA kernel against the reference on one matrix + f_prev,
/// requiring exact equality of scores *and* predecessors (the kernels must be
/// bit-compatible, not merely numerically close).
void ExpectKernelsAgree(const WeightMatrix& w, const std::vector<double>& f_prev) {
  std::vector<double> f_soa(w.cols, 123.0), f_ref(w.cols, 456.0);
  std::vector<int> pre_soa(w.cols, 7), pre_ref(w.cols, 9);
  ViterbiColumnSoA(w, f_prev.data(), f_soa.data(), pre_soa.data());
  ViterbiColumnReference(w, f_prev.data(), f_ref.data(), pre_ref.data());
  for (int k = 0; k < w.cols; ++k) {
    // Exact comparison on purpose: identical evaluation order must yield
    // identical doubles. (EXPECT_EQ on -inf == -inf is fine.)
    EXPECT_EQ(f_soa[k], f_ref[k]) << "k=" << k;
    EXPECT_EQ(pre_soa[k], pre_ref[k]) << "k=" << k;
  }
}

class SoAKernelPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SoAKernelPropertyTest, MatchesScalarReferenceOnRandomColumns) {
  core::Rng rng(9000 + GetParam());
  for (int iter = 0; iter < 60; ++iter) {
    const int rows = rng.UniformInt(1, 24);
    const int cols = rng.UniformInt(1, 24);
    WeightMatrix w;
    w.Reset(rows, cols);
    for (int j = 0; j < rows; ++j) {
      for (int k = 0; k < cols; ++k) {
        // Mix of reachable / unreachable pairs; weights include zeros,
        // negatives, and exact duplicates (Set still records a weight for
        // unreachable pairs, as the engine does for the shortcut pass).
        const bool reachable = rng.Uniform() < 0.7;
        double weight = rng.Uniform(-5.0, 5.0);
        if (rng.Uniform() < 0.2) weight = 0.0;
        if (rng.Uniform() < 0.1) weight = 1.25;  // Force score ties.
        w.Set(j, k, weight, reachable);
      }
    }
    std::vector<double> f_prev(rows);
    for (int j = 0; j < rows; ++j) {
      // -inf rows exercise the SoA kernel's row-skip fast path.
      f_prev[j] = rng.Uniform() < 0.25 ? kKernelNegInf : rng.Uniform(-10.0, 10.0);
    }
    ExpectKernelsAgree(w, f_prev);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoAKernelPropertyTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

TEST(SoAKernelTest, AllNegInfPreviousColumnYieldsBreakColumn) {
  // The PR-3 break-recovery path feeds the kernel a fully -inf f_prev (no
  // candidate at s-1 was reachable). Every output must be -inf / -1 so the
  // engine's break detection fires.
  WeightMatrix w;
  w.Reset(4, 6);
  core::Rng rng(77);
  for (int j = 0; j < 4; ++j) {
    for (int k = 0; k < 6; ++k) w.Set(j, k, rng.Uniform(-2.0, 2.0), true);
  }
  const std::vector<double> f_prev(4, kKernelNegInf);
  std::vector<double> f_cur(6, 0.0);
  std::vector<int> pre(6, 0);
  ViterbiColumnSoA(w, f_prev.data(), f_cur.data(), pre.data());
  for (int k = 0; k < 6; ++k) {
    EXPECT_EQ(f_cur[k], kKernelNegInf);
    EXPECT_EQ(pre[k], -1);
  }
  ExpectKernelsAgree(w, f_prev);
}

TEST(SoAKernelTest, AllUnreachableMatrixYieldsBreakColumn) {
  // A column where no (j, k) pair has a route: the engine's break recovery
  // must see -inf everywhere even though finite weights are stored.
  WeightMatrix w;
  w.Reset(3, 5);
  for (int j = 0; j < 3; ++j) {
    for (int k = 0; k < 5; ++k) w.Set(j, k, 1.0 + j + k, false);
  }
  const std::vector<double> f_prev = {0.5, kKernelNegInf, 2.0};
  std::vector<double> f_cur(5, 9.0);
  std::vector<int> pre(5, 9);
  ViterbiColumnSoA(w, f_prev.data(), f_cur.data(), pre.data());
  for (int k = 0; k < 5; ++k) {
    EXPECT_EQ(f_cur[k], kKernelNegInf);
    EXPECT_EQ(pre[k], -1);
  }
  ExpectKernelsAgree(w, f_prev);
}

TEST(SoAKernelTest, TiesKeepFirstMaximizer) {
  // Two rows produce the exact same score for every column; the strict `>`
  // must keep the lower row index, in both kernels.
  WeightMatrix w;
  w.Reset(3, 4);
  for (int k = 0; k < 4; ++k) {
    w.Set(0, k, 1.0, true);
    w.Set(1, k, 1.0, true);
    w.Set(2, k, 0.5, true);
  }
  const std::vector<double> f_prev = {2.0, 2.0, 2.5};
  std::vector<double> f_cur(4);
  std::vector<int> pre(4);
  ViterbiColumnSoA(w, f_prev.data(), f_cur.data(), pre.data());
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(f_cur[k], 3.0);
    EXPECT_EQ(pre[k], 0) << "tie must resolve to the first maximizer";
  }
  ExpectKernelsAgree(w, f_prev);
}

TEST(SoAKernelTest, SingleRowSingleColumn) {
  WeightMatrix w;
  w.Reset(1, 1);
  w.Set(0, 0, -3.5, true);
  ExpectKernelsAgree(w, {1.5});
  w.Set(0, 0, -3.5, false);
  ExpectKernelsAgree(w, {1.5});
  ExpectKernelsAgree(w, {kKernelNegInf});
}

}  // namespace
}  // namespace lhmm::hmm
