#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "gtest/gtest.h"
#include "network/generators.h"
#include "sim/dataset.h"
#include "sim/radio.h"
#include "sim/route_sampler.h"
#include "sim/samplers.h"
#include "sim/towers.h"

namespace lhmm::sim {
namespace {

geo::BBox MakeArea(double w, double h) {
  geo::BBox b;
  b.Extend({0, 0});
  b.Extend({w, h});
  return b;
}

TEST(TowersTest, PlacementRespectsSeparationAndDensityGradient) {
  core::Rng rng(1);
  TowerPlacementConfig cfg;
  cfg.core_spacing = 300.0;
  cfg.edge_spacing = 900.0;
  const geo::BBox area = MakeArea(6000, 6000);
  const std::vector<Tower> towers = PlaceTowers(area, cfg, &rng);
  ASSERT_GT(towers.size(), 20u);
  // Ids are dense indices.
  for (size_t i = 0; i < towers.size(); ++i) {
    EXPECT_EQ(towers[i].id, static_cast<traj::TowerId>(i));
    EXPECT_TRUE(area.Contains(towers[i].pos));
  }
  // Minimum separation at the core must hold.
  const geo::Point center = area.Center();
  for (size_t i = 0; i < towers.size(); ++i) {
    for (size_t j = i + 1; j < towers.size(); ++j) {
      if (geo::Distance(towers[i].pos, center) > 1000.0) continue;
      if (geo::Distance(towers[j].pos, center) > 1000.0) continue;
      EXPECT_GT(geo::Distance(towers[i].pos, towers[j].pos),
                0.5 * cfg.core_spacing);
    }
  }
}

TEST(RadioTest, NearestTowerUsuallyStrongestWithoutShadowing) {
  core::Rng deploy(2);
  std::vector<Tower> towers = {{0, {0, 0}}, {1, {1000, 0}}, {2, {0, 1000}}};
  RadioConfig cfg;
  cfg.sector_gain_sigma_db = 0.0;  // No shadowing.
  cfg.fast_fading_sigma_db = 0.0;
  cfg.outlier_prob = 0.0;
  RadioModel radio(&towers, cfg, &deploy);
  core::Rng rng(3);
  ServeState state;
  EXPECT_EQ(radio.Serve({100, 50}, &state, &rng), 0);
  state = ServeState();
  EXPECT_EQ(radio.Serve({900, 50}, &state, &rng), 1);
}

TEST(RadioTest, HysteresisKeepsServingTower) {
  core::Rng deploy(4);
  std::vector<Tower> towers = {{0, {0, 0}}, {1, {1000, 0}}};
  RadioConfig cfg;
  cfg.sector_gain_sigma_db = 0.0;
  cfg.fast_fading_sigma_db = 0.0;
  cfg.outlier_prob = 0.0;
  cfg.handoff_hysteresis_db = 6.0;
  RadioModel radio(&towers, cfg, &deploy);
  core::Rng rng(5);
  ServeState state;
  // Start near tower 0, drift slightly past the midpoint: hysteresis holds.
  EXPECT_EQ(radio.Serve({200, 0}, &state, &rng), 0);
  EXPECT_EQ(radio.Serve({530, 0}, &state, &rng), 0);
  // Far past the midpoint the margin is exceeded.
  EXPECT_EQ(radio.Serve({900, 0}, &state, &rng), 1);
}

TEST(RadioTest, OutliersAreDistantAndSticky) {
  core::Rng deploy(6);
  std::vector<Tower> towers;
  core::Rng place(7);
  for (int i = 0; i < 60; ++i) {
    towers.push_back({static_cast<traj::TowerId>(i),
                      {place.Uniform(0, 6000), place.Uniform(0, 6000)}});
  }
  RadioConfig cfg;
  cfg.outlier_prob = 1.0;  // Force an outlier immediately.
  cfg.outlier_mean_duration = 3.0;
  RadioModel radio(&towers, cfg, &deploy);
  core::Rng rng(8);
  ServeState state;
  const geo::Point user{3000, 3000};
  const traj::TowerId first = radio.Serve(user, &state, &rng);
  const double d = geo::Distance(towers[first].pos, user);
  EXPECT_GE(d, cfg.outlier_min_dist);
  EXPECT_LE(d, cfg.outlier_max_dist);
  // Stickiness: remaining samples of the attachment reuse the same tower.
  if (state.outlier_remaining > 0) {
    EXPECT_EQ(radio.Serve(user, &state, &rng), first);
  }
}

TEST(RouteSamplerTest, RoutesAreConnectedAndInLengthRange) {
  network::CityNetworkConfig net_cfg;
  net_cfg.width = 5000;
  net_cfg.height = 4000;
  network::RoadNetwork net = network::GenerateCityNetwork(net_cfg);
  RouteConfig cfg;
  cfg.min_length = 1500;
  cfg.max_length = 3500;
  RouteSampler sampler(&net, cfg);
  core::Rng rng(9);
  int produced = 0;
  for (int i = 0; i < 20; ++i) {
    const auto route = sampler.SampleRoute(&rng);
    if (route.empty()) continue;
    ++produced;
    EXPECT_TRUE(network::IsConnectedPath(net, route));
    const double len = network::PathLength(net, route);
    EXPECT_GE(len, cfg.min_length * 0.99);
    EXPECT_LE(len, cfg.max_length * 1.01);
  }
  EXPECT_GT(produced, 15);
}

TEST(DriveTest, PositionsFollowRouteMonotonically) {
  network::RoadNetwork net = network::GenerateGridNetwork(4, 4, 200.0);
  core::Rng rng(10);
  // Straight route along the bottom row.
  std::vector<network::SegmentId> route;
  network::NodeId prev = 0;
  for (int c = 0; c + 1 < 4; ++c) {
    for (network::SegmentId sid : net.OutSegments(prev)) {
      const auto& seg = net.segment(sid);
      if (net.node(seg.to).pos.y == 0.0 && net.node(seg.to).pos.x > 0.0 &&
          seg.to != prev && net.node(seg.to).pos.x > net.node(prev).pos.x) {
        route.push_back(sid);
        prev = seg.to;
        break;
      }
    }
  }
  ASSERT_EQ(route.size(), 3u);
  Drive drive(&net, route, 0.6, 0.9, &rng);
  EXPECT_GT(drive.DurationSeconds(), 0.0);
  double last_x = -1.0;
  for (double t = 0.0; t <= drive.DurationSeconds(); t += 5.0) {
    const geo::Point p = drive.PositionAt(t);
    EXPECT_GE(p.x, last_x - 1e-9);  // Monotone along the straight route.
    EXPECT_NEAR(p.y, 0.0, 1e-9);
    last_x = p.x;
  }
  EXPECT_NEAR(drive.PositionAt(drive.DurationSeconds()).x, 600.0, 1e-6);
}

TEST(SamplersTest, GpsDenserThanCellularAndNoisy) {
  network::RoadNetwork net = network::GenerateGridNetwork(6, 6, 300.0);
  core::Rng rng(11);
  RouteConfig rcfg;
  rcfg.min_length = 1200;
  rcfg.max_length = 2500;
  RouteSampler sampler(&net, rcfg);
  const auto route = sampler.SampleRoute(&rng);
  ASSERT_FALSE(route.empty());
  SamplingConfig scfg;
  Drive drive(&net, route, scfg.speed_factor_lo, scfg.speed_factor_hi, &rng);

  const traj::Trajectory gps = SampleGps(drive, scfg, &rng);
  core::Rng tower_rng(12);
  TowerPlacementConfig tcfg;
  const std::vector<Tower> towers = PlaceTowers(net.Bounds(), tcfg, &tower_rng);
  core::Rng deploy(13);
  RadioModel radio(&towers, RadioConfig{}, &deploy);
  const traj::Trajectory cell = SampleCellular(drive, radio, towers, scfg, &rng);

  EXPECT_GT(gps.size(), cell.size());
  // Every cellular point caries a valid tower and the tower's position.
  for (const auto& p : cell.points) {
    ASSERT_GE(p.tower, 0);
    ASSERT_LT(p.tower, static_cast<int>(towers.size()));
    EXPECT_DOUBLE_EQ(p.pos.x, towers[p.tower].pos.x);
  }
}

TEST(DatasetTest, BuildSmallDatasetEndToEnd) {
  DatasetConfig cfg = XiamenSPreset();
  cfg.num_train = 12;
  cfg.num_val = 4;
  cfg.num_test = 6;
  const Dataset ds = BuildDataset(cfg);
  EXPECT_EQ(static_cast<int>(ds.train.size()), 12);
  EXPECT_EQ(static_cast<int>(ds.val.size()), 4);
  EXPECT_EQ(static_cast<int>(ds.test.size()), 6);
  for (const auto& mt : ds.train) {
    EXPECT_TRUE(network::IsConnectedPath(ds.network, mt.truth_path));
    EXPECT_GE(mt.cellular.size(), 5);
    EXPECT_GT(mt.gps.size(), mt.cellular.size());
  }
  const DatasetStats stats = ds.ComputeStats();
  EXPECT_GT(stats.mean_positioning_error_m, 150.0);
  EXPECT_LT(stats.mean_positioning_error_m, 1500.0);
  EXPECT_GT(stats.avg_cell_interval_s, 5.0);
}

TEST(DatasetTest, DeterministicForSameSeed) {
  DatasetConfig cfg = XiamenSPreset();
  cfg.num_train = 5;
  cfg.num_val = 2;
  cfg.num_test = 3;
  const Dataset a = BuildDataset(cfg);
  const Dataset b = BuildDataset(cfg);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    ASSERT_EQ(a.train[i].truth_path.size(), b.train[i].truth_path.size());
    EXPECT_EQ(a.train[i].truth_path, b.train[i].truth_path);
    ASSERT_EQ(a.train[i].cellular.size(), b.train[i].cellular.size());
    for (int p = 0; p < a.train[i].cellular.size(); ++p) {
      EXPECT_EQ(a.train[i].cellular[p].tower, b.train[i].cellular[p].tower);
    }
  }
}

TEST(DatasetTest, CentroidRadiusWithinCity) {
  DatasetConfig cfg = XiamenSPreset();
  cfg.num_train = 3;
  cfg.num_val = 1;
  cfg.num_test = 2;
  const Dataset ds = BuildDataset(cfg);
  const double half_diag = std::hypot(ds.network.Bounds().Width(),
                                      ds.network.Bounds().Height()) / 2.0;
  for (const auto& mt : ds.test) {
    const double r = CentroidRadius(ds.network, mt);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, half_diag);
  }
}

}  // namespace
}  // namespace lhmm::sim
