// Tests for crash durability: the CRC32-framed write-ahead journal
// (io::JournalWriter / io::ScanJournal), torn-tail vs mid-file corruption
// semantics with exact file+offset reporting, checkpoint rotation and
// compaction, snapshot versioning (a checked-in v1 fixture and a typed error
// on future versions), generation fallback past a corrupt newest snapshot,
// and the end-to-end contract: a server rebuilt by srv::Recover() after a
// simulated kill produces byte-identical committed output to an uninterrupted
// run over the same events — at 1 worker thread and at 8, with torn-tail and
// bit-flip journal faults injected.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "hmm/classic_models.h"
#include "io/fault_file.h"
#include "io/journal.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "srv/match_server.h"
#include "srv/recovery.h"
#include "srv/snapshot.h"
#include "traj/trajectory.h"

#ifndef LHMM_TEST_DATA_DIR
#define LHMM_TEST_DATA_DIR "tests/data"
#endif

namespace lhmm {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// io::Crc32 and the journal framing.
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownAnswer) {
  // The IEEE 802.3 check value: CRC-32 of the ASCII digits "123456789".
  EXPECT_EQ(io::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(io::Crc32("", 0), 0u);
}

TEST(JournalTest, RoundTripRotationCompactionAndReopen) {
  const std::string dir = FreshDir("journal_roundtrip");
  io::JournalOptions options;
  options.fsync = io::FsyncPolicy::kNone;
  options.segment_bytes = 64;  // Tiny: a handful of records forces rotation.
  auto writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (int i = 1; i <= 10; ++i) {
    auto index = (*writer)->Append("record-" + std::to_string(i));
    ASSERT_TRUE(index.ok()) << index.status().ToString();
    EXPECT_EQ(*index, i);
    // Commit per record: rotation is checked at the group-commit boundary,
    // so segment growth is only visible to it there.
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  EXPECT_GT((*writer)->segment_count(), 1);

  auto scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->clean);
  EXPECT_FALSE(scan->torn_tail);
  EXPECT_EQ(scan->next_index, 11);
  ASSERT_EQ(scan->records.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(scan->records[i].index, i + 1);
    EXPECT_EQ(scan->records[i].payload, "record-" + std::to_string(i + 1));
  }

  // Compaction deletes only segments wholly covered by the snapshot: the
  // record sequence afterwards is still a contiguous suffix ending at 10.
  ASSERT_TRUE((*writer)->CompactThrough(5).ok());
  scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok());
  ASSERT_FALSE(scan->records.empty());
  EXPECT_GT(scan->records.front().index, 1);
  EXPECT_LE(scan->records.front().index, 6);
  EXPECT_EQ(scan->records.back().index, 10);

  // Reopen continues the global index sequence where the log ended.
  writer->reset();
  writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->next_index(), 11);
  auto index = (*writer)->Append("record-11");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(*index, 11);
}

TEST(JournalTest, TornTailOnTheFinalSegmentIsACleanCrash) {
  const std::string dir = FreshDir("journal_torn");
  io::JournalOptions options;
  options.fsync = io::FsyncPolicy::kNone;
  auto writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE((*writer)->Append("aaaa").ok());
  }
  ASSERT_TRUE((*writer)->Commit().ok());
  writer->reset();

  // Chop 5 bytes off the tail: the last record's frame is incomplete, which
  // is exactly what a crash mid-write leaves behind. Not corruption.
  const std::string segment = io::JournalSegmentPath(dir, 1);
  ASSERT_TRUE(io::TornTail(segment, 5).ok());
  auto scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->clean);
  EXPECT_TRUE(scan->torn_tail);
  EXPECT_EQ(scan->records.size(), 4u);
  EXPECT_EQ(scan->next_index, 5);

  // Open() repairs the tail in place and appends on a record boundary.
  writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->next_index(), 5);
  ASSERT_TRUE((*writer)->Append("bbbb").ok());
  ASSERT_TRUE((*writer)->Commit().ok());
  scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->clean);
  EXPECT_FALSE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 5u);
  EXPECT_EQ(scan->records.back().payload, "bbbb");
}

TEST(JournalTest, BitflipIsCorruptionWithFileAndOffset) {
  const std::string dir = FreshDir("journal_bitflip");
  io::JournalOptions options;
  options.fsync = io::FsyncPolicy::kNone;
  auto writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE((*writer)->Append("aaaa").ok());  // Frame: 8 + 4 bytes.
  }
  ASSERT_TRUE((*writer)->Commit().ok());
  writer->reset();

  // Flip one payload bit of record 2 (header 16, then 12-byte frames): the
  // frame is complete, the CRC no longer matches — corruption, never a torn
  // tail, even though it sits in the final segment.
  const std::string segment = io::JournalSegmentPath(dir, 1);
  const int64_t record2_payload = 16 + 12 + 8 + 1;
  ASSERT_TRUE(io::FlipBit(segment, record2_payload, 3).ok());
  auto scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->clean);
  EXPECT_EQ(scan->records.size(), 1u) << "only the prefix before the flip";
  const std::string message = scan->corruption.message();
  EXPECT_NE(message.find(segment), std::string::npos) << message;
  EXPECT_NE(message.find("offset"), std::string::npos) << message;

  // The writer repairs by truncating the corrupt suffix.
  writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  EXPECT_EQ((*writer)->next_index(), 2);
}

TEST(JournalTest, GarbageOverAFrameHeaderIsCorruptionWithOffset) {
  const std::string dir = FreshDir("journal_garbage");
  io::JournalOptions options;
  options.fsync = io::FsyncPolicy::kNone;
  auto writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE((*writer)->Append("aaaa").ok());
  }
  ASSERT_TRUE((*writer)->Commit().ok());
  writer->reset();

  // Overwrite record 3's length prefix with ASCII garbage: an impossible
  // frame. The scan stops there and names the exact spot.
  const std::string segment = io::JournalSegmentPath(dir, 1);
  const int64_t record3_frame = 16 + 2 * 12;
  ASSERT_TRUE(io::InjectGarbage(segment, record3_frame, "ZZZZZZZZ").ok());
  auto scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->clean);
  EXPECT_EQ(scan->records.size(), 2u);
  const std::string message = scan->corruption.message();
  EXPECT_NE(message.find(segment), std::string::npos) << message;
  EXPECT_NE(message.find("offset"), std::string::npos) << message;
}

TEST(JournalTest, EmptyNonFinalSegmentIsCorruption) {
  const std::string dir = FreshDir("journal_empty_segment");
  io::JournalOptions options;
  options.fsync = io::FsyncPolicy::kNone;
  options.segment_bytes = 64;
  auto writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE((*writer)->Append("record-" + std::to_string(i)).ok());
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  ASSERT_GT((*writer)->segment_count(), 1);
  writer->reset();

  // Zero out the FIRST segment: records are missing from the middle of the
  // global sequence, which can never be a clean crash signature.
  const std::string first = io::JournalSegmentPath(dir, 1);
  ASSERT_TRUE(io::ShortenFileTo(first, 0).ok());
  auto scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->clean);
  EXPECT_TRUE(scan->records.empty());
  EXPECT_NE(scan->corruption.message().find(first), std::string::npos)
      << scan->corruption.message();
}

// ---------------------------------------------------------------------------
// Snapshot versioning: the v1 fixture, and typed rejection of the future.
// ---------------------------------------------------------------------------

constexpr char kV1Fixture[] = LHMM_TEST_DATA_DIR "/match_server_v1.snap";

TEST(SnapshotVersionTest, V1FixtureLoadsWithDefaultedNewFields) {
  auto snap = srv::LoadServerSnapshot(kV1Fixture);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->clock, 1);
  EXPECT_EQ(snap->journal_pos, 0) << "v1 predates the journal";
  ASSERT_EQ(snap->sessions.size(), 1u);
  EXPECT_EQ(snap->sessions[0].deadline_tick, -1)
      << "v1 predates persisted deadlines: the sentinel asks restore to "
         "re-arm the server default";
  EXPECT_EQ(snap->sessions[0].checkpoint.session.online.pushed, 3);
}

TEST(SnapshotVersionTest, UnknownFutureVersionIsATypedError) {
  const std::string path = ::testing::TempDir() + "/future.snap";
  {
    std::ofstream out(path);
    out << "lhmm-snapshot match-server "
        << (srv::kServerSnapshotVersion + 1) << "\nclock 0\n";
  }
  auto snap = srv::LoadServerSnapshot(path);
  ASSERT_FALSE(snap.ok());
  EXPECT_NE(snap.status().message().find("unsupported snapshot version"),
            std::string::npos)
      << snap.status().ToString();
}

// ---------------------------------------------------------------------------
// End-to-end: a world matching lhmm_serve's defaults, so the checked-in v1
// fixture (drained from that binary) continues byte-identically here.
// ---------------------------------------------------------------------------

class DurabilityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new network::RoadNetwork(network::GenerateGridNetwork(10, 10, 200.0));
    index_ = new network::GridIndex(net_, 300.0);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete net_;
    index_ = nullptr;
    net_ = nullptr;
  }

  static std::vector<srv::TierSpec> Tiers() {
    const network::RoadNetwork* net = net_;
    const network::GridIndex* index = index_;
    hmm::ClassicModelConfig models;
    std::vector<srv::TierSpec> tiers;
    tiers.push_back({"IVMM", [net, index, models] {
                       return std::make_unique<matchers::IvmmMatcher>(
                           net, index, models, /*k=*/10);
                     }});
    hmm::EngineConfig stm_engine;
    stm_engine.k = 8;
    tiers.push_back({"STM", [net, index, models, stm_engine] {
                       return std::make_unique<matchers::StmMatcher>(
                           net, index, models, stm_engine);
                     }});
    return tiers;
  }

  static srv::ServerConfig Config(int threads) {
    srv::ServerConfig config;
    config.engine.num_threads = threads;
    config.engine.lag = 8;
    config.engine.max_inbox = 8;  // Small on purpose: replay has to wait out
                                  // inbox backpressure, not fail on it.
    return config;
  }

  /// Point p of session c's walk: along grid row c, the same geometry the
  /// v1 fixture and the subprocess gauntlet use.
  static traj::TrajPoint Pt(int c, int p) {
    return {{10.0 + 180.0 * p, 200.0 * (c % 10) + 10.0},
            15.0 * p,
            static_cast<traj::TowerId>(p)};
  }

  /// Pushes one point, waiting out engine backpressure the way a client
  /// (or replay) would. Any other failure is fatal to the test.
  static void MustPush(srv::MatchServer* server, int64_t id,
                       const traj::TrajPoint& point) {
    for (;;) {
      const core::Status st = server->Push(id, point);
      if (st.ok()) return;
      ASSERT_EQ(st.code(), core::StatusCode::kUnavailable)
          << st.ToString();
      server->Barrier();
    }
  }

  /// The oracle: an uninterrupted, non-durable run of `sessions` full walks
  /// of `points` points. Returns each session's final committed path.
  static std::vector<std::vector<network::SegmentId>> Oracle(int sessions,
                                                             int points,
                                                             int threads) {
    srv::MatchServer server(Tiers(), Config(threads));
    for (int c = 0; c < sessions; ++c) {
      auto id = server.OpenSession();
      EXPECT_TRUE(id.ok());
    }
    server.Tick(1);
    int64_t tick = 1;
    for (int p = 0; p < points; ++p) {
      for (int c = 0; c < sessions; ++c) MustPush(&server, c, Pt(c, p));
      server.Tick(++tick);
    }
    for (int c = 0; c < sessions; ++c) {
      EXPECT_TRUE(server.Finish(c).ok());
    }
    server.Barrier();
    std::vector<std::vector<network::SegmentId>> out;
    for (int c = 0; c < sessions; ++c) out.push_back(server.Committed(c));
    return out;
  }

  static network::RoadNetwork* net_;
  static network::GridIndex* index_;
};

network::RoadNetwork* DurabilityTest::net_ = nullptr;
network::GridIndex* DurabilityTest::index_ = nullptr;

TEST_F(DurabilityTest, OracleIsDeterministicAcrossThreadCounts) {
  // The byte-identity claim leans on committed output being a pure function
  // of the event order; pin that before testing recovery against it.
  EXPECT_EQ(Oracle(3, 12, 1), Oracle(3, 12, 8));
}

TEST_F(DurabilityTest, V1FixtureRestoresAndContinuesByteIdentically) {
  auto restored =
      srv::MatchServer::Restore(kV1Fixture, Tiers(), Config(1));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  srv::MatchServer& server = **restored;
  ASSERT_EQ(server.num_sessions(), 1);
  ASSERT_EQ(server.state(0), matchers::SessionState::kLive);
  // The fixture holds points 0..2 of session 0's walk; finish it.
  for (int p = 3; p < 8; ++p) MustPush(&server, 0, Pt(0, p));
  ASSERT_TRUE(server.Finish(0).ok());
  server.Barrier();
  EXPECT_EQ(server.Committed(0), Oracle(1, 8, 1)[0]);
}

TEST_F(DurabilityTest, V1FixtureReArmsTheDefaultDeadline) {
  // deadline_tick == -1 (unknown, v1) must fall back to the server's default
  // deadline — the pre-v2 restore behavior — not to "no deadline".
  srv::ServerConfig config = Config(1);
  config.default_deadline_ticks = 20;
  auto restored = srv::MatchServer::Restore(kV1Fixture, Tiers(), config);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  srv::MatchServer& server = **restored;
  server.Tick(50);  // Snapshot clock is 1; the re-armed deadline is 21.
  server.Barrier();
  EXPECT_EQ(server.SessionStatus(0).code(),
            core::StatusCode::kDeadlineExceeded);
}

TEST_F(DurabilityTest, CheckpointRotatesPrunesAndCompacts) {
  const std::string dir = FreshDir("durability_rotate");
  srv::MatchServer server(Tiers(), Config(1));
  srv::DurabilityConfig durability;
  durability.dir = dir;
  durability.journal.fsync = io::FsyncPolicy::kNone;
  durability.journal.segment_bytes = 64;  // Rotate at every tick commit.
  durability.keep_snapshots = 2;
  ASSERT_TRUE(server.EnableDurability(durability).ok());

  auto id = server.OpenSession();
  ASSERT_TRUE(id.ok());
  int64_t tick = 0;
  for (int round = 0; round < 3; ++round) {
    for (int p = round * 4; p < (round + 1) * 4; ++p) {
      MustPush(&server, 0, Pt(0, p));
    }
    server.Tick(++tick);
    ASSERT_TRUE(server.Checkpoint().ok());
  }
  // Three checkpoints, keep_snapshots=2: generation 1 is pruned, and the
  // journal has been compacted behind the OLDEST kept generation (2), so a
  // fallback past generation 3 still has its replay suffix. Only whole
  // segments are deleted, so the surviving log is a contiguous run that
  // starts at or before gen2's coverage point and after record 1.
  EXPECT_EQ(srv::ListSnapshotGenerations(dir), (std::vector<int>{2, 3}));
  auto gen2 = srv::LoadServerSnapshot(srv::SnapshotGenPath(dir, 2));
  ASSERT_TRUE(gen2.ok());
  EXPECT_GT(gen2->journal_pos, 0);
  auto scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->clean);
  ASSERT_FALSE(scan->records.empty());
  EXPECT_GT(scan->records.front().index, 1) << "nothing was compacted";
  EXPECT_LE(scan->records.front().index, gen2->journal_pos + 1)
      << "compaction overshot the oldest kept generation's replay suffix";
  for (size_t i = 1; i < scan->records.size(); ++i) {
    EXPECT_EQ(scan->records[i].index, scan->records[i - 1].index + 1);
  }
  // In-progress temp files and junk never count as generations.
  std::ofstream(dir + "/snapshot-000009.snap.tmp") << "partial";
  std::ofstream(dir + "/notes.txt") << "junk";
  EXPECT_EQ(srv::ListSnapshotGenerations(dir), (std::vector<int>{2, 3}));
}

TEST_F(DurabilityTest, RecoverOnAnEmptyDirStartsFresh) {
  const std::string dir = FreshDir("durability_fresh");
  srv::DurabilityConfig durability;
  durability.dir = dir;
  durability.journal.fsync = io::FsyncPolicy::kNone;
  srv::RecoveryReport report;
  auto server = srv::Recover(Tiers(), Config(1), durability, &report);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(report.snapshot_generation, 0);
  EXPECT_EQ(report.journal_replayed, 0);
  EXPECT_TRUE((*server)->durable());
  EXPECT_TRUE((*server)->OpenSession().ok());
}

/// The in-process crash-sim: run part of the workload durably, "crash" (drop
/// the server with no drain or shutdown checkpoint), optionally mangle the
/// storage, Recover, resume each session from its durable pushed count, and
/// demand byte-identical committed output vs the uninterrupted oracle.
struct CrashCase {
  const char* name;
  /// Post-crash storage mangling: 0 none, 1 torn journal tail, 2 bit flip in
  /// the journal, 3 corrupt newest snapshot (+ a partial .tmp) to force
  /// generation fallback.
  int fault;
};

class DurabilityCrashTest : public DurabilityTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(DurabilityCrashTest, KillRecoverResumeIsByteIdentical) {
  const int threads = GetParam();
  const int sessions = 3;
  const int points = 12;
  const auto oracle = Oracle(sessions, points, threads);
  const CrashCase kCases[] = {
      {"clean-kill", 0}, {"torn-tail", 1}, {"bitflip", 2}, {"bad-snapshot", 3}};

  for (const CrashCase& cc : kCases) {
    SCOPED_TRACE(cc.name);
    const std::string dir =
        FreshDir(std::string("durability_crash_") + cc.name + "_" +
                 std::to_string(threads));
    srv::DurabilityConfig durability;
    durability.dir = dir;
    // Every acknowledged event is on stable storage: the crash loses nothing
    // except what the fault injector then destroys.
    durability.journal.fsync = io::FsyncPolicy::kEveryRecord;
    durability.keep_snapshots = 2;

    {  // The victim: checkpoint mid-stream, keep pushing, then vanish.
      srv::MatchServer server(Tiers(), Config(threads));
      ASSERT_TRUE(server.EnableDurability(durability).ok());
      for (int c = 0; c < sessions; ++c) {
        ASSERT_TRUE(server.OpenSession().ok());
      }
      server.Tick(1);
      ASSERT_TRUE(server.Checkpoint().ok());  // Generation 1: covers opens.
      int64_t tick = 1;
      for (int p = 0; p < points / 2; ++p) {
        for (int c = 0; c < sessions; ++c) MustPush(&server, c, Pt(c, p));
        server.Tick(++tick);
      }
      ASSERT_TRUE(server.Checkpoint().ok());  // Generation 2: half-way.
      for (int c = 0; c < sessions; ++c) {
        MustPush(&server, c, Pt(c, points / 2));
      }
      server.Tick(++tick);
      // No drain, no shutdown checkpoint: the destructor is the kill.
    }

    if (cc.fault == 1 || cc.fault == 2) {
      auto scan = io::ScanJournal(dir, /*keep_payloads=*/false);
      ASSERT_TRUE(scan.ok());
      ASSERT_FALSE(scan->segments.empty());
      const std::string tail = scan->segments.back().path;
      auto size = io::FileSize(tail);
      ASSERT_TRUE(size.ok());
      ASSERT_GT(*size, 25);
      if (cc.fault == 1) {
        ASSERT_TRUE(io::TornTail(tail, 7).ok());
      } else {
        ASSERT_TRUE(io::FlipBit(tail, *size - 9, 3).ok());
      }
    } else if (cc.fault == 3) {
      const std::vector<int> gens = srv::ListSnapshotGenerations(dir);
      ASSERT_FALSE(gens.empty());
      const std::string newest = srv::SnapshotGenPath(dir, gens.back());
      ASSERT_TRUE(io::ShortenFileTo(newest, 40).ok());
      std::ofstream(dir + "/snapshot-000099.snap.tmp") << "half a snapshot";
    }

    srv::RecoveryReport report;
    auto recovered = srv::Recover(Tiers(), Config(threads), durability,
                                  &report);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    srv::MatchServer& server = **recovered;
    if (cc.fault == 1) {
      EXPECT_TRUE(report.journal_torn_tail);
    }
    if (cc.fault == 2) {
      EXPECT_FALSE(report.journal_corruption.empty());
    }
    if (cc.fault == 3) {
      EXPECT_FALSE(report.snapshots_skipped.empty())
          << "the mangled newest generation must be skipped, not fatal";
    }

    // Resume every session from its durable progress and run to the end.
    ASSERT_EQ(server.num_sessions(), sessions);
    int64_t tick = server.clock();
    for (int c = 0; c < sessions; ++c) {
      ASSERT_EQ(server.state(c), matchers::SessionState::kLive);
      const int64_t pushed = server.Stats(c).points_pushed;
      ASSERT_GE(pushed, 0);
      ASSERT_LE(pushed, points);
      for (int p = static_cast<int>(pushed); p < points; ++p) {
        MustPush(&server, c, Pt(c, p));
      }
      server.Tick(++tick);
    }
    for (int c = 0; c < sessions; ++c) {
      ASSERT_TRUE(server.Finish(c).ok());
    }
    server.Barrier();
    for (int c = 0; c < sessions; ++c) {
      EXPECT_EQ(server.Committed(c), oracle[c])
          << "session " << c << " diverged after " << cc.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, DurabilityCrashTest,
                         ::testing::Values(1, 8));

}  // namespace
}  // namespace lhmm
