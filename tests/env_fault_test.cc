// Tests for resource-exhaustion hardening: the io::Env syscall boundary and
// its deterministic FaultEnv (Nth-call and rate schedules, short writes,
// scripted statvfs), the atomic-write protocol's never-a-readable-partial
// guarantee under injected ENOSPC/fsync/rename failure, the journal's
// seal-rotate-heal reaction to a failed group commit (fsyncgate: a failed
// fsync permanently poisons the segment; the repair is truncate + rotate,
// never a retried fsync), the wedged terminal state, the srv::DiskGuard
// watermark hysteresis, and the MatchServer's degraded-nondurable mode:
// scheduled disk exhaustion suspends journaling, acks kDataLoss under
// --fsync record, refuses checkpoints typed, and restores durability with a
// fresh checkpoint once space frees.

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "hmm/classic_models.h"
#include "io/durable_file.h"
#include "io/env.h"
#include "io/journal.h"
#include "matchers/ivmm.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "srv/disk_guard.h"
#include "srv/match_server.h"
#include "traj/trajectory.h"

namespace lhmm {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---------------------------------------------------------------------------
// FaultEnv schedules.
// ---------------------------------------------------------------------------

TEST(FaultEnvTest, NthMatchingWriteFailsExactlyOnce) {
  const std::string dir = FreshDir("fault_nth");
  io::FaultEnv env;
  io::EnvFaultRule rule;
  rule.op = io::EnvOp::kWrite;
  rule.path_substr = "target";
  rule.at_count = 2;
  rule.fault_errno = ENOSPC;
  env.AddRule(rule);

  auto other = env.NewWritableFile(dir + "/other.dat", /*append=*/false);
  ASSERT_TRUE(other.ok());
  // Non-matching path: never faulted, never counted against the rule.
  EXPECT_TRUE((*other)->Append("xxxx").ok());

  auto target = env.NewWritableFile(dir + "/target.dat", /*append=*/false);
  ASSERT_TRUE(target.ok());
  EXPECT_TRUE((*target)->Append("one").ok());
  const core::Status second = (*target)->Append("two");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.code(), core::StatusCode::kIoError);
  EXPECT_NE(second.message().find("injected"), std::string::npos);
  EXPECT_TRUE((*target)->Append("three").ok());
  EXPECT_EQ(env.injected_faults(), 1);
  EXPECT_EQ(env.op_count(io::EnvOp::kWrite), 4);

  ASSERT_TRUE((*target)->Close().ok());
  // The faulted write landed nothing: only "one" and "three" are on disk.
  EXPECT_EQ(Slurp(dir + "/target.dat"), "onethree");
}

TEST(FaultEnvTest, ShortWriteTearsExactlyThePromisedPrefix) {
  const std::string dir = FreshDir("fault_short");
  io::FaultEnv env;
  io::EnvFaultRule rule;
  rule.op = io::EnvOp::kWrite;
  rule.at_count = 1;
  rule.fault_errno = ENOSPC;
  rule.short_write_bytes = 3;
  env.AddRule(rule);

  auto f = env.NewWritableFile(dir + "/torn.dat", /*append=*/false);
  ASSERT_TRUE(f.ok());
  const core::Status st = (*f)->Append("abcdef");
  ASSERT_FALSE(st.ok());
  ASSERT_TRUE((*f)->Close().ok());
  // ENOSPC halfway through: the prefix is really on disk, the rest never
  // made it. This is the torn-append signature the journal must repair.
  EXPECT_EQ(Slurp(dir + "/torn.dat"), "abc");
}

TEST(FaultEnvTest, RateScheduleIsAPureFunctionOfTheSeed) {
  auto pattern = [](uint64_t seed) {
    io::FaultEnv env(nullptr, seed);
    io::EnvFaultRule rule;
    rule.op = io::EnvOp::kAccept;
    rule.rate = 0.5;
    rule.fault_errno = EMFILE;
    env.AddRule(rule);
    std::vector<bool> fired;
    int64_t last = 0;
    for (int i = 0; i < 64; ++i) {
      env.Draw(io::EnvOp::kAccept, "");
      fired.push_back(env.injected_faults() != last);
      last = env.injected_faults();
    }
    return fired;
  };
  EXPECT_EQ(pattern(7), pattern(7)) << "same seed, same storm";
  EXPECT_NE(pattern(7), pattern(8)) << "different seed, different storm";
}

TEST(FaultEnvTest, StatvfsOverrideSucceedsWithScheduledFreeBytes) {
  const std::string dir = FreshDir("fault_statvfs");
  io::FaultEnv env;
  io::EnvFaultRule rule;
  rule.op = io::EnvOp::kStatvfs;
  rule.at_count = 1;
  rule.repeat = 2;
  rule.free_bytes_override = 12345;
  env.AddRule(rule);

  for (int i = 0; i < 2; ++i) {
    auto space = env.GetDiskSpace(dir);
    ASSERT_TRUE(space.ok()) << "override must succeed, not error";
    EXPECT_EQ(space->available_bytes, 12345);
  }
  auto real = env.GetDiskSpace(dir);
  ASSERT_TRUE(real.ok());
  EXPECT_NE(real->available_bytes, 12345);
}

TEST(FaultEnvTest, ErrnoMappingTypesTheRetryableFaults) {
  EXPECT_EQ(io::ErrnoStatus(EMFILE, "x").code(),
            core::StatusCode::kResourceExhausted);
  EXPECT_EQ(io::ErrnoStatus(ENFILE, "x").code(),
            core::StatusCode::kResourceExhausted);
  EXPECT_EQ(io::ErrnoStatus(ENOSPC, "x").code(), core::StatusCode::kIoError);
  EXPECT_EQ(io::ErrnoStatus(EDQUOT, "x").code(), core::StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// AtomicWriteFile: no injected failure may leave a readable partial.
// ---------------------------------------------------------------------------

class AtomicWriteFaultTest : public ::testing::TestWithParam<io::EnvOp> {};

TEST_P(AtomicWriteFaultTest, FailureLeavesOldFileAndNoTmp) {
  const std::string dir =
      FreshDir(std::string("atomic_fault_") + io::EnvOpName(GetParam()));
  const std::string path = dir + "/state.dat";
  ASSERT_TRUE(io::AtomicWriteFile(io::Env::Default(), path,
                                  std::string("old-contents"))
                  .ok());

  io::FaultEnv env;
  io::EnvFaultRule rule;
  rule.op = GetParam();
  rule.path_substr = "state.dat";
  rule.at_count = 1;
  rule.fault_errno = ENOSPC;
  env.AddRule(rule);

  const core::Status st = io::AtomicWriteFile(&env, path, "new-contents");
  ASSERT_FALSE(st.ok()) << io::EnvOpName(GetParam());
  EXPECT_EQ(env.injected_faults(), 1);
  // Readers see the complete old file — never a torn mixture — and the tmp
  // working file was unlinked, so retries and generation listings never trip
  // over a stale partial.
  EXPECT_EQ(Slurp(path), "old-contents");
  int entries = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1) << "tmp file survived a failed atomic write";

  // With the schedule exhausted the identical retry goes through.
  EXPECT_TRUE(io::AtomicWriteFile(&env, path, "new-contents").ok());
  EXPECT_EQ(Slurp(path), "new-contents");
}

INSTANTIATE_TEST_SUITE_P(AllOps, AtomicWriteFaultTest,
                         ::testing::Values(io::EnvOp::kOpen, io::EnvOp::kWrite,
                                           io::EnvOp::kFsync,
                                           io::EnvOp::kRename));

// ---------------------------------------------------------------------------
// Journal under injected faults: seal, rotate, heal — or wedge.
// ---------------------------------------------------------------------------

TEST(JournalFaultTest, FailedFsyncSealsTheTailAndTheNextCommitRotates) {
  const std::string dir = FreshDir("journal_seal");
  io::FaultEnv env;
  io::JournalOptions options;
  options.fsync = io::FsyncPolicy::kEveryTick;
  options.env = &env;
  auto writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE((*writer)->Append("r" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*writer)->Commit().ok());

  // Poison the next fsync of the active segment. A failed fsync means the
  // kernel may have dropped the dirty pages (fsyncgate): the writer must
  // never re-fsync this segment and claim durability.
  io::EnvFaultRule rule;
  rule.op = io::EnvOp::kFsync;
  rule.path_substr = "wal-";
  rule.at_count = 1;
  rule.fault_errno = EIO;
  env.AddRule(rule);

  ASSERT_TRUE((*writer)->Append("r4").ok());
  const core::Status failed = (*writer)->Commit();
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("tail sealed"), std::string::npos)
      << failed.ToString();
  EXPECT_EQ((*writer)->seal_events(), 1);
  EXPECT_FALSE((*writer)->wedged());

  // r4 stayed buffered; the next commit rotates to a fresh segment and
  // writes it there with its original index, so the global sequence stays
  // contiguous for recovery.
  ASSERT_TRUE((*writer)->Append("r5").ok());
  ASSERT_TRUE((*writer)->Commit().ok());

  auto scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_TRUE(scan->clean);
  EXPECT_FALSE(scan->torn_tail);
  ASSERT_EQ(scan->records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(scan->records[i].index, i + 1);
    EXPECT_EQ(scan->records[i].payload, "r" + std::to_string(i + 1));
  }
  EXPECT_GE(scan->segments.size(), 2u) << "the sealed tail was not rotated";
  // The sealed segment was truncated back to its committed prefix: no torn
  // bytes survive on disk.
  for (const io::SegmentInfo& seg : scan->segments) {
    EXPECT_EQ(seg.file_bytes, seg.valid_bytes) << seg.path;
  }
}

TEST(JournalFaultTest, EveryRecordPolicySurfacesTheSealOnTheAck) {
  const std::string dir = FreshDir("journal_record_seal");
  io::FaultEnv env;
  io::JournalOptions options;
  options.fsync = io::FsyncPolicy::kEveryRecord;
  options.env = &env;
  auto writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  ASSERT_TRUE((*writer)->Append("r1").ok());

  io::EnvFaultRule rule;
  rule.op = io::EnvOp::kFsync;
  rule.path_substr = "wal-";
  rule.at_count = 1;
  rule.fault_errno = ENOSPC;
  env.AddRule(rule);

  // The append itself carries the commit under kEveryRecord, so the caller
  // sees the failure on the ack for exactly the record that lost its
  // durability promise.
  const auto r2 = (*writer)->Append("r2");
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ((*writer)->seal_events(), 1);

  // r2 was applied (its index is consumed and it stays buffered), so after
  // the heal the log still carries every record exactly once, in order.
  ASSERT_TRUE((*writer)->Append("r3").ok());
  auto scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->clean);
  ASSERT_EQ(scan->records.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(scan->records[i].index, i + 1);
    EXPECT_EQ(scan->records[i].payload, "r" + std::to_string(i + 1));
  }
}

TEST(JournalFaultTest, SealRepairFailureWedgesTheJournalPermanently) {
  const std::string dir = FreshDir("journal_wedge");
  io::FaultEnv env;
  io::JournalOptions options;
  options.fsync = io::FsyncPolicy::kEveryTick;
  options.env = &env;
  auto writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append("r1").ok());
  ASSERT_TRUE((*writer)->Commit().ok());

  // The commit fsync fails AND the truncate that would repair the sealed
  // tail fails: nothing about the segment can be trusted any more.
  io::EnvFaultRule fsync_rule;
  fsync_rule.op = io::EnvOp::kFsync;
  fsync_rule.path_substr = "wal-";
  fsync_rule.at_count = 1;
  fsync_rule.fault_errno = EIO;
  env.AddRule(fsync_rule);
  io::EnvFaultRule trunc_rule;
  trunc_rule.op = io::EnvOp::kTruncate;
  trunc_rule.path_substr = "wal-";
  trunc_rule.at_count = 1;
  trunc_rule.fault_errno = EIO;
  env.AddRule(trunc_rule);

  ASSERT_TRUE((*writer)->Append("r2").ok());
  const core::Status st = (*writer)->Commit();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), core::StatusCode::kDataLoss);
  EXPECT_TRUE((*writer)->wedged());

  // Terminal: every further append and commit refuses typed, consuming no
  // indices — a wedged journal must not pretend to accept events.
  const int64_t next = (*writer)->next_index();
  EXPECT_EQ((*writer)->Append("r3").status().code(),
            core::StatusCode::kDataLoss);
  EXPECT_EQ((*writer)->next_index(), next);
  EXPECT_EQ((*writer)->Commit().code(), core::StatusCode::kDataLoss);
}

TEST(JournalFaultTest, EnospcDuringRotationKeepsRecordsBufferedUntilItHeals) {
  const std::string dir = FreshDir("journal_rotate_enospc");
  io::FaultEnv env;
  io::JournalOptions options;
  options.fsync = io::FsyncPolicy::kNone;
  options.segment_bytes = 48;  // A couple of records force rotation.
  options.env = &env;
  auto writer = io::JournalWriter::Open(dir, options);
  ASSERT_TRUE(writer.ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE((*writer)->Append("record-" + std::to_string(i)).ok());
    ASSERT_TRUE((*writer)->Commit().ok());
  }
  ASSERT_GT((*writer)->segment_count(), 1);
  const int64_t segments_before = (*writer)->segment_count();

  // ENOSPC creating the next segment file: rotation fails, the records stay
  // buffered, and the already-written log is untouched.
  io::EnvFaultRule rule;
  rule.op = io::EnvOp::kOpen;
  rule.path_substr = io::JournalSegmentPath("", segments_before + 1);
  rule.at_count = 1;
  rule.fault_errno = ENOSPC;
  env.AddRule(rule);

  ASSERT_TRUE((*writer)->Append("record-5").ok());
  const core::Status failed = (*writer)->Commit();
  ASSERT_FALSE(failed.ok());
  auto mid = io::ScanJournal(dir);
  ASSERT_TRUE(mid.ok());
  EXPECT_TRUE(mid->clean);
  EXPECT_EQ(mid->records.back().index, 4) << "a failed rotation leaked bytes";

  // Space frees: the very next commit retries the rotation and lands the
  // buffered record with its original index.
  ASSERT_TRUE((*writer)->Commit().ok());
  auto scan = io::ScanJournal(dir);
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->clean);
  ASSERT_EQ(scan->records.size(), 5u);
  EXPECT_EQ(scan->records.back().index, 5);
  EXPECT_EQ(scan->records.back().payload, "record-5");
}

// ---------------------------------------------------------------------------
// DiskGuard hysteresis.
// ---------------------------------------------------------------------------

TEST(DiskGuardTest, EnterAndExitNeedTheirConsecutiveStreaks) {
  srv::DiskGuardConfig config;
  config.low_watermark_bytes = 100;
  config.high_watermark_bytes = 200;
  config.enter_after = 2;
  config.exit_after = 2;
  srv::DiskGuard guard(config);
  using T = srv::DiskGuard::Transition;

  EXPECT_EQ(guard.Observe(500), T::kNone);
  EXPECT_EQ(guard.Observe(50), T::kNone) << "one low sample must not trip";
  EXPECT_EQ(guard.Observe(300), T::kNone) << "the streak resets on recovery";
  EXPECT_EQ(guard.Observe(50), T::kNone);
  EXPECT_EQ(guard.Observe(50), T::kEnterDegraded);
  EXPECT_TRUE(guard.degraded());

  // Between the watermarks is no-man's land: not low enough to matter, not
  // high enough to exit — hysteresis is what stops the flapping.
  EXPECT_EQ(guard.Observe(150), T::kNone);
  EXPECT_EQ(guard.Observe(250), T::kNone);
  EXPECT_EQ(guard.Observe(150), T::kNone) << "the exit streak resets too";
  EXPECT_EQ(guard.Observe(250), T::kNone);
  EXPECT_EQ(guard.Observe(250), T::kExitDegraded);
  EXPECT_FALSE(guard.degraded());
  EXPECT_EQ(guard.last_free_bytes(), 250);
}

TEST(DiskGuardTest, ZeroLowWatermarkDisablesTheMonitor) {
  srv::DiskGuard guard(srv::DiskGuardConfig{});
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(guard.Observe(0), srv::DiskGuard::Transition::kNone);
  }
  EXPECT_FALSE(guard.degraded());
}

TEST(DiskGuardTest, HighWatermarkIsClampedUpToLow) {
  srv::DiskGuardConfig config;
  config.low_watermark_bytes = 100;
  config.high_watermark_bytes = 10;  // Misconfigured below low.
  config.enter_after = 1;
  config.exit_after = 1;
  srv::DiskGuard guard(config);
  using T = srv::DiskGuard::Transition;
  EXPECT_EQ(guard.Observe(50), T::kEnterDegraded);
  // 60 free clears the *configured* high watermark but not the clamped one:
  // exiting below the low watermark would re-enter on the next sample.
  EXPECT_EQ(guard.Observe(60), T::kNone);
  EXPECT_EQ(guard.Observe(100), T::kExitDegraded);
}

// ---------------------------------------------------------------------------
// MatchServer degraded-nondurable mode, end to end against a FaultEnv.
// ---------------------------------------------------------------------------

class DegradedModeTest : public ::testing::Test {
 protected:
  static std::vector<srv::TierSpec> Tiers(const network::RoadNetwork* net,
                                          const network::GridIndex* index) {
    hmm::ClassicModelConfig models;
    std::vector<srv::TierSpec> tiers;
    tiers.push_back({"IVMM", [net, index, models] {
                       return std::make_unique<matchers::IvmmMatcher>(
                           net, index, models, /*k=*/8);
                     }});
    return tiers;
  }

  static srv::ServerConfig Config() {
    srv::ServerConfig config;
    config.engine.num_threads = 1;
    config.engine.lag = 4;
    config.engine.max_inbox = 64;  // Roomy: these tests are not about
                                   // backpressure.
    return config;
  }

  static traj::TrajPoint Pt(int p) {
    return {{10.0 + 180.0 * p, 10.0}, 15.0 * p,
            static_cast<traj::TowerId>(p)};
  }

  void SetUp() override {
    net_ = std::make_unique<network::RoadNetwork>(
        network::GenerateGridNetwork(6, 6, 200.0));
    index_ = std::make_unique<network::GridIndex>(net_.get(), 300.0);
  }

  std::unique_ptr<network::RoadNetwork> net_;
  std::unique_ptr<network::GridIndex> index_;
};

TEST_F(DegradedModeTest, ScheduledExhaustionSuspendsJournalingAndRecovers) {
  const std::string dir = FreshDir("degraded_watermark");
  io::FaultEnv env;
  // Ticks 1 and 2 observe a nearly-full disk; tick 3 onward sees the real
  // filesystem (assumed to have more than 1MB free in TempDir).
  io::EnvFaultRule rule;
  rule.op = io::EnvOp::kStatvfs;
  rule.at_count = 1;
  rule.repeat = 2;
  rule.free_bytes_override = 1000;
  env.AddRule(rule);

  srv::MatchServer server(Tiers(net_.get(), index_.get()), Config());
  srv::DurabilityConfig durability;
  durability.dir = dir;
  durability.journal.fsync = io::FsyncPolicy::kEveryRecord;
  durability.env = &env;
  durability.disk_guard.low_watermark_bytes = 1 << 20;
  durability.disk_guard.high_watermark_bytes = 2 << 20;
  durability.disk_guard.enter_after = 1;
  durability.disk_guard.exit_after = 1;
  ASSERT_TRUE(server.EnableDurability(durability).ok());
  ASSERT_TRUE(server.OpenSession().ok());

  server.Tick(1);
  srv::DurabilityStatus d = server.durability_status();
  ASSERT_TRUE(d.degraded_nondurable)
      << "the scheduled exhaustion must trip the guard on its exact tick";
  EXPECT_EQ(d.degraded_entered, 1);
  EXPECT_EQ(d.disk_free_bytes, 1000);

  // The event is applied — the session advances — but under kEveryRecord
  // the ack itself was the durability promise, so it is typed kDataLoss.
  const core::Status push = server.Push(0, Pt(0));
  EXPECT_EQ(push.code(), core::StatusCode::kDataLoss) << push.ToString();
  server.Barrier();
  EXPECT_EQ(server.Stats(0).points_pushed, 1);

  // Checkpoints are refused typed while degraded: writing a snapshot to a
  // full disk is how CURRENT ends up pointing at garbage.
  EXPECT_EQ(server.Checkpoint().code(), core::StatusCode::kUnavailable);

  server.Tick(2);  // Second scheduled low sample: still degraded.
  EXPECT_TRUE(server.durability_status().degraded_nondurable);

  // Space frees: the guard exits and durability restores itself with a
  // fresh checkpoint covering the un-journaled window.
  server.Tick(3);
  d = server.durability_status();
  EXPECT_FALSE(d.degraded_nondurable);
  EXPECT_EQ(d.degraded_exited, 1);
  EXPECT_GE(d.snapshot_generation, 1);
  EXPECT_GT(d.events_not_journaled, 0);
  EXPECT_FALSE(d.journal_wedged);

  // Durable again: pushes ack clean and checkpoints work.
  EXPECT_TRUE(server.Push(0, Pt(1)).ok());
  EXPECT_TRUE(server.Checkpoint().ok());
}

TEST_F(DegradedModeTest, JournalFailureStreakForcesDegradedWithoutWatermarks) {
  const std::string dir = FreshDir("degraded_streak");
  io::FaultEnv env;
  srv::MatchServer server(Tiers(net_.get(), index_.get()), Config());
  srv::DurabilityConfig durability;
  durability.dir = dir;
  durability.journal.fsync = io::FsyncPolicy::kEveryTick;
  durability.env = &env;
  // No watermarks: only the journal's own failures can degrade the server.
  durability.disk_guard.journal_failure_streak = 3;
  ASSERT_TRUE(server.EnableDurability(durability).ok());
  ASSERT_TRUE(server.OpenSession().ok());

  // Every journal *write* fails from here on — the disk is full and stays
  // full. (The seal repair is a truncate, which a full disk still allows, so
  // each failed tick-commit seals and rotates instead of wedging.) The third
  // failure in a row concedes and degrades.
  io::EnvFaultRule rule;
  rule.op = io::EnvOp::kWrite;
  rule.path_substr = "wal-";
  rule.at_count = 1;
  rule.repeat = -1;
  rule.fault_errno = ENOSPC;
  env.AddRule(rule);

  for (int t = 1; t <= 2; ++t) {
    ASSERT_TRUE(server.Push(0, Pt(t - 1)).ok());
    server.Tick(t);
    EXPECT_FALSE(server.durability_status().degraded_nondurable)
        << "degraded after only " << t << " failures";
  }
  ASSERT_TRUE(server.Push(0, Pt(2)).ok());
  server.Tick(3);
  srv::DurabilityStatus d = server.durability_status();
  EXPECT_TRUE(d.degraded_nondurable);
  EXPECT_EQ(d.degraded_entered, 1);
  // At least the first failure sealed the tail; later ones may fail earlier,
  // at the rotation that cannot fsync the fresh segment's header.
  EXPECT_GE(d.journal_seal_events, 1);
  EXPECT_GE(d.journal_errors, 3);
  EXPECT_FALSE(d.journal_wedged) << "seal+rotate must survive, not wedge";

  // The disk heals. The next tick restores durability via a fresh
  // checkpoint, and the journal commits cleanly again.
  env.ClearRules();
  server.Tick(4);
  d = server.durability_status();
  EXPECT_FALSE(d.degraded_nondurable);
  EXPECT_EQ(d.degraded_exited, 1);
  EXPECT_GE(d.snapshot_generation, 1);
  server.Tick(5);
  EXPECT_EQ(server.durability_status().last_durable_tick, 5);
}

}  // namespace
}  // namespace lhmm
