#include <filesystem>
#include <memory>

#include "gtest/gtest.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "matchers/seq2seq.h"
#include "network/grid_index.h"
#include "sim/dataset.h"
#include "traj/filters.h"

namespace lhmm::matchers {
namespace {

/// Shared tiny dataset for matcher smoke tests.
class MatchersTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::DatasetConfig cfg = sim::XiamenSPreset();
    cfg.num_train = 25;
    cfg.num_val = 3;
    cfg.num_test = 6;
    ds_ = new sim::Dataset(sim::BuildDataset(cfg));
    index_ = new network::GridIndex(&ds_->network, 300.0);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete ds_;
    index_ = nullptr;
    ds_ = nullptr;
  }

  static traj::Trajectory Cleaned(int i) {
    traj::FilterConfig filters;
    return traj::DeduplicateTowers(
        traj::PreprocessCellular(ds_->test[i].cellular, filters));
  }

  static sim::Dataset* ds_;
  static network::GridIndex* index_;
};

sim::Dataset* MatchersTest::ds_ = nullptr;
network::GridIndex* MatchersTest::index_ = nullptr;

TEST_F(MatchersTest, AllClassicMatchersProduceValidPaths) {
  hmm::ClassicModelConfig models;
  hmm::EngineConfig engine;
  engine.k = 20;
  std::vector<std::unique_ptr<MapMatcher>> all;
  all.push_back(std::make_unique<StmMatcher>(&ds_->network, index_, models, engine));
  all.push_back(std::make_unique<IfmMatcher>(&ds_->network, index_, models, engine));
  all.push_back(std::make_unique<McmMatcher>(&ds_->network, index_, models, engine));
  all.push_back(std::make_unique<SnetMatcher>(&ds_->network, index_, models, engine));
  all.push_back(std::make_unique<ThmmMatcher>(&ds_->network, index_, models, engine));
  all.push_back(
      std::make_unique<ClstersMatcher>(&ds_->network, index_, models, engine));
  for (auto& matcher : all) {
    const traj::Trajectory t = Cleaned(0);
    const MatchResult r = matcher->Match(t);
    EXPECT_FALSE(r.path.empty()) << matcher->name();
    EXPECT_TRUE(matcher->ProvidesCandidates()) << matcher->name();
    EXPECT_FALSE(r.candidates.empty()) << matcher->name();
    for (network::SegmentId sid : r.path) {
      ASSERT_GE(sid, 0);
      ASSERT_LT(sid, ds_->network.num_segments());
    }
  }
}

TEST_F(MatchersTest, StmShortcutVariantName) {
  hmm::ClassicModelConfig models;
  hmm::EngineConfig engine;
  StmMatcher plain(&ds_->network, index_, models, engine);
  EXPECT_EQ(plain.name(), "STM");
  engine.use_shortcuts = true;
  StmMatcher with_s(&ds_->network, index_, models, engine);
  EXPECT_EQ(with_s.name(), "STM+S");
}

TEST_F(MatchersTest, IvmmVotesAndMatches) {
  hmm::ClassicModelConfig models;
  IvmmMatcher ivmm(&ds_->network, index_, models, 15);
  const MatchResult r = ivmm.Match(Cleaned(1));
  EXPECT_FALSE(r.path.empty());
  EXPECT_EQ(r.candidates.size(), r.point_index.size());
}

TEST_F(MatchersTest, GruCellStepShapesAndPathsAgree) {
  core::Rng rng(3);
  GruCell cell(6, 10, &rng);
  const nn::Matrix x = nn::Matrix::Gaussian(1, 6, 1.0f, &rng);
  const nn::Matrix h = nn::Matrix::Gaussian(1, 10, 1.0f, &rng);
  const nn::Matrix out_m = cell.Step(x, h);
  const nn::Tensor out_t = cell.Step(nn::Tensor(x), nn::Tensor(h));
  ASSERT_EQ(out_m.cols(), 10);
  for (int j = 0; j < 10; ++j) {
    EXPECT_NEAR(out_m(0, j), out_t.value()(0, j), 1e-5);
    EXPECT_GE(out_m(0, j), -1.5f);  // GRU output stays bounded-ish.
    EXPECT_LE(out_m(0, j), 1.5f);
  }
}

TEST_F(MatchersTest, Seq2SeqTrainsMatchesAndRoundTrips) {
  Seq2SeqConfig cfg;
  cfg.epochs = 1;
  cfg.embed_dim = 12;
  cfg.hidden_dim = 16;
  Seq2SeqMatcher matcher(&ds_->network, index_,
                         static_cast<int>(ds_->towers.size()), cfg, "S2S");
  traj::FilterConfig filters;
  matcher.Train(ds_->train, filters);
  const traj::Trajectory t = Cleaned(2);
  const MatchResult r = matcher.Match(t);
  EXPECT_FALSE(r.path.empty());
  EXPECT_FALSE(matcher.ProvidesCandidates());

  const std::string path = "/tmp/s2s_test_model.bin";
  ASSERT_TRUE(matcher.Save(path).ok());
  Seq2SeqMatcher fresh(&ds_->network, index_,
                       static_cast<int>(ds_->towers.size()), cfg, "S2S");
  ASSERT_TRUE(fresh.Load(path).ok());
  const MatchResult r2 = fresh.Match(t);
  EXPECT_EQ(r.path, r2.path);  // Loaded weights reproduce the decode.
  std::filesystem::remove(path);
}

TEST_F(MatchersTest, BeamSearchDecodesDeterministically) {
  Seq2SeqConfig cfg;
  cfg.epochs = 1;
  cfg.embed_dim = 10;
  cfg.hidden_dim = 12;
  cfg.beam_width = 3;
  Seq2SeqMatcher matcher(&ds_->network, index_,
                         static_cast<int>(ds_->towers.size()), cfg, "BEAM");
  traj::FilterConfig filters;
  matcher.Train(ds_->train, filters);
  const traj::Trajectory t = Cleaned(3);
  const MatchResult a = matcher.Match(t);
  const MatchResult b = matcher.Match(t);
  EXPECT_FALSE(a.path.empty());
  EXPECT_EQ(a.path, b.path);  // Decoding is deterministic.
  for (size_t i = 1; i < a.path.size(); ++i) {
    // Path expansion keeps the output on the network.
    ASSERT_GE(a.path[i], 0);
    ASSERT_LT(a.path[i], ds_->network.num_segments());
  }
}

TEST_F(MatchersTest, Seq2SeqFactoriesDiffer) {
  auto deepmm = MakeDeepMm(&ds_->network, index_,
                           static_cast<int>(ds_->towers.size()));
  auto tmm = MakeTransformerMm(&ds_->network, index_,
                               static_cast<int>(ds_->towers.size()));
  auto dmm = MakeDmm(&ds_->network, index_, static_cast<int>(ds_->towers.size()));
  EXPECT_EQ(deepmm->name(), "DeepMM");
  EXPECT_EQ(tmm->name(), "TransformerMM");
  EXPECT_EQ(dmm->name(), "DMM");
}

}  // namespace
}  // namespace lhmm::matchers
