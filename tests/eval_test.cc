#include "core/rng.h"
#include "eval/error_analysis.h"
#include "eval/evaluator.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "eval/significance.h"
#include "gtest/gtest.h"
#include "network/generators.h"

namespace lhmm::eval {
namespace {

/// 4x1 line of two-way segments: forward ids along the bottom row.
struct LineWorld {
  network::RoadNetwork net;
  std::vector<network::SegmentId> forward;  // Left-to-right chain.

  LineWorld() {
    std::vector<network::NodeId> nodes;
    for (int i = 0; i < 5; ++i) nodes.push_back(net.AddNode({i * 100.0, 0.0}));
    for (int i = 0; i + 1 < 5; ++i) {
      forward.push_back(net.AddTwoWay(nodes[i], nodes[i + 1], 13.9,
                                      network::RoadLevel::kLocal));
    }
  }
};

TEST(MetricsTest, PerfectMatch) {
  LineWorld w;
  const PathMetrics m =
      ComputePathMetrics(w.net, w.forward, w.forward, 50.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.rmf, 0.0);
  EXPECT_DOUBLE_EQ(m.cmf, 0.0);
}

TEST(MetricsTest, EmptyMatchIsTotalMiss) {
  LineWorld w;
  const PathMetrics m = ComputePathMetrics(w.net, {}, w.forward, 50.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.rmf, 1.0);  // All truth missing, nothing redundant.
  EXPECT_DOUBLE_EQ(m.cmf, 1.0);
}

TEST(MetricsTest, HalfMatch) {
  LineWorld w;
  // Matched = first two of four truth segments.
  const std::vector<network::SegmentId> matched = {w.forward[0], w.forward[1]};
  const PathMetrics m = ComputePathMetrics(w.net, matched, w.forward, 50.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.rmf, 0.5);  // Two segments missing, none redundant.
  // The 50 m corridor bleeds past the matched endpoint at x=200, covering
  // truth up to x~250: uncovered ~ 150/400.
  EXPECT_NEAR(m.cmf, 0.375, 0.05);
}

TEST(MetricsTest, ReverseTwinCountsAsCorrect) {
  LineWorld w;
  std::vector<network::SegmentId> reversed;
  for (auto it = w.forward.rbegin(); it != w.forward.rend(); ++it) {
    reversed.push_back(w.net.segment(*it).reverse);
  }
  const PathMetrics m = ComputePathMetrics(w.net, reversed, w.forward, 50.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.rmf, 0.0);
}

TEST(MetricsTest, RedundantSegmentsRaiseRmfNotCmf) {
  LineWorld w;
  // Match the whole truth plus a parallel detour within the corridor? There
  // is none in a line world; add a far spur instead.
  const network::NodeId a = w.net.AddNode({0.0, 3000.0});
  const network::NodeId b = w.net.AddNode({100.0, 3000.0});
  const network::SegmentId spur =
      w.net.AddSegment(a, b, 13.9, network::RoadLevel::kLocal);
  std::vector<network::SegmentId> matched = w.forward;
  matched.push_back(spur);
  const PathMetrics m = ComputePathMetrics(w.net, matched, w.forward, 50.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_LT(m.precision, 1.0);
  EXPECT_NEAR(m.rmf, 0.25, 1e-9);  // 100 m redundant over 400 m truth.
  EXPECT_DOUBLE_EQ(m.cmf, 0.0);    // Truth fully covered.
}

TEST(MetricsTest, CmfRadiusMatters) {
  LineWorld w;
  // A parallel road 120 m north of the truth line.
  const network::NodeId a = w.net.AddNode({0.0, 120.0});
  const network::NodeId b = w.net.AddNode({400.0, 120.0});
  const network::SegmentId parallel =
      w.net.AddSegment(a, b, 13.9, network::RoadLevel::kLocal);
  const std::vector<network::SegmentId> matched = {parallel};
  const PathMetrics tight = ComputePathMetrics(w.net, matched, w.forward, 50.0);
  const PathMetrics loose = ComputePathMetrics(w.net, matched, w.forward, 150.0);
  EXPECT_NEAR(tight.cmf, 1.0, 1e-9);  // Not covered at 50 m.
  EXPECT_NEAR(loose.cmf, 0.0, 1e-9);  // Covered at 150 m.
  // Segment-level metrics are unaffected by the corridor radius.
  EXPECT_DOUBLE_EQ(tight.precision, loose.precision);
}

TEST(HittingRatioTest, CountsCoverageAndDroppedPoints) {
  LineWorld w;
  std::vector<hmm::CandidateSet> cands(2);
  hmm::Candidate hit;
  hit.segment = w.forward[1];
  hmm::Candidate miss;
  miss.segment = w.net.segment(w.forward[1]).reverse;  // Reverse twin: a miss
                                                       // for HR (set-based).
  cands[0] = {hit, miss};
  cands[1] = {miss};
  const std::vector<int> point_index = {0, 2};
  // 4 total points: point 0 hits, point 2 misses, points 1 and 3 dropped.
  const double hr = HittingRatio(cands, point_index, 4, w.forward);
  EXPECT_DOUBLE_EQ(hr, 0.25);
}

TEST(ErrorAnalysisTest, BucketsByQuantileAndAverages) {
  std::vector<double> attr;
  std::vector<TrajectoryEval> recs;
  for (int i = 0; i < 10; ++i) {
    attr.push_back(static_cast<double>(i));
    TrajectoryEval r;
    r.metrics.precision = i < 5 ? 0.2 : 0.8;  // Two regimes.
    r.metrics.cmf = i < 5 ? 0.6 : 0.1;
    recs.push_back(r);
  }
  const auto buckets = BucketByAttribute(attr, recs, 2);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].n, 5);
  EXPECT_DOUBLE_EQ(buckets[0].precision, 0.2);
  EXPECT_DOUBLE_EQ(buckets[1].precision, 0.8);
  EXPECT_DOUBLE_EQ(buckets[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(buckets[1].hi, 9.0);
  const std::string table = BucketTable(buckets, "attr");
  EXPECT_NE(table.find("attr"), std::string::npos);
}

TEST(ErrorAnalysisTest, AttributesComputeSensibly) {
  traj::MatchedTrajectory mt;
  for (int i = 0; i < 4; ++i) {
    mt.gps.points.push_back({{i * 100.0, 0.0}, i * 10.0, -1});
    mt.cellular.points.push_back({{i * 100.0, 300.0}, i * 10.0, i});
  }
  EXPECT_NEAR(MeanPositioningError(mt), 300.0, 1e-9);
  EXPECT_NEAR(MeanSamplingGap(mt), 10.0, 1e-9);
  LineWorld w;
  mt.truth_path = w.forward;
  EXPECT_DOUBLE_EQ(TruthLength(w.net, mt), 400.0);
}

TEST(SignificanceTest, DetectsClearDifference) {
  std::vector<TrajectoryEval> a(60);
  std::vector<TrajectoryEval> b(60);
  core::Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    a[i].metrics.precision = 0.6 + 0.05 * rng.Normal();
    b[i].metrics.precision = 0.4 + 0.05 * rng.Normal();
  }
  const BootstrapResult r = PairedBootstrap(a, b, Metric::kPrecision);
  EXPECT_NEAR(r.mean_diff, 0.2, 0.05);
  EXPECT_GT(r.ci_low, 0.1);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(SignificanceTest, NoDifferenceIsInsignificant) {
  std::vector<TrajectoryEval> a(60);
  std::vector<TrajectoryEval> b(60);
  core::Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    a[i].metrics.cmf = 0.5 + 0.1 * rng.Normal();
    b[i].metrics.cmf = 0.5 + 0.1 * rng.Normal();
  }
  const BootstrapResult r = PairedBootstrap(a, b, Metric::kCmf);
  EXPECT_LE(r.ci_low, 0.0 + 0.06);
  EXPECT_GE(r.ci_high, 0.0 - 0.06);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(SignificanceTest, MetricValueSelectors) {
  TrajectoryEval r;
  r.metrics.precision = 0.1;
  r.metrics.recall = 0.2;
  r.metrics.rmf = 0.3;
  r.metrics.cmf = 0.4;
  r.hitting_ratio = 0.5;
  EXPECT_DOUBLE_EQ(MetricValue(r, Metric::kPrecision), 0.1);
  EXPECT_DOUBLE_EQ(MetricValue(r, Metric::kRecall), 0.2);
  EXPECT_DOUBLE_EQ(MetricValue(r, Metric::kRmf), 0.3);
  EXPECT_DOUBLE_EQ(MetricValue(r, Metric::kCmf), 0.4);
  EXPECT_DOUBLE_EQ(MetricValue(r, Metric::kHittingRatio), 0.5);
}

TEST(ReportTest, TextTableFormatsAndPads) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22.5"});
  const std::string s = table.ToString();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("|-------|-------|"), std::string::npos);
}

TEST(ReportTest, FmtDigits) {
  EXPECT_EQ(Fmt(1.23456, 3), "1.235");
  EXPECT_EQ(Fmt(2.0, 0), "2");
}

TEST(ReportTest, SummarizeAggregatesBreakAndGapColumns) {
  std::vector<TrajectoryEval> records(2);
  records[0].num_breaks = 1;
  records[0].gap_seconds = 30.0;
  records[0].gap_coverage = 0.8;
  records[1].num_breaks = 3;
  records[1].gap_seconds = 10.0;
  records[1].gap_coverage = 1.0;
  const EvalSummary s = Summarize(records, "STM", /*has_hr=*/false);
  EXPECT_DOUBLE_EQ(s.mean_breaks, 2.0);
  EXPECT_DOUBLE_EQ(s.mean_gap_seconds, 20.0);
  EXPECT_DOUBLE_EQ(s.mean_gap_coverage, 0.9);
}

TEST(ReportTest, EvalJsonCarriesRobustnessAndSanitizeFields) {
  EvalSummary s;
  s.matcher = "LHMM";
  s.num_trajectories = 4;
  s.precision = 0.75;
  s.recall = 0.5;
  s.rmf = 0.25;
  s.cmf50 = 0.875;
  s.has_hr = true;
  s.hitting_ratio = 0.9375;
  s.mean_breaks = 1.5;
  s.mean_gap_seconds = 42.5;
  s.mean_gap_coverage = 0.96875;

  traj::SanitizeReport rep;
  rep.input_points = 100;
  rep.output_points = 97;
  rep.nonfinite = 2;
  rep.out_of_order = 1;
  rep.dropped = 3;
  rep.repaired = 0;

  const std::string json = EvalJson("fig7_smoke", {s}, &rep);
  for (const char* needle :
       {"\"label\": \"fig7_smoke\"", "\"matcher\": \"LHMM\"",
        "\"breaks\": 1.5", "\"gap_seconds\": 42.5",
        "\"gap_coverage\": 0.96875", "\"hitting_ratio\": 0.9375",
        "\"input_points\": 100", "\"nonfinite\": 2", "\"dropped\": 3",
        "\"issues\": 3", "\"clean\": false"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
  // Without a sanitize report the block is omitted entirely.
  EXPECT_EQ(EvalJson("x", {s}, nullptr).find("\"sanitize\""),
            std::string::npos);
}

TEST(PreprocessTest, AppliesFiltersAndDedup) {
  traj::Trajectory t;
  for (int i = 0; i < 6; ++i) {
    t.points.push_back({{i * 150.0, 0.0}, i * 10.0, i / 2});  // Paired towers.
  }
  traj::FilterConfig cfg;
  const traj::Trajectory out = Preprocess(t, cfg);
  EXPECT_EQ(out.size(), 3);  // Tower dedup collapses pairs.
}

}  // namespace
}  // namespace lhmm::eval
