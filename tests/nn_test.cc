#include <cmath>

#include "gtest/gtest.h"
#include "nn/loss.h"
#include "nn/modules.h"
#include "nn/ops.h"
#include "nn/optim.h"

namespace lhmm::nn {
namespace {

/// Numerically checks d(loss)/d(param[idx]) against autodiff for a scalar
/// loss builder.
template <typename LossFn>
void CheckGradient(Tensor param, LossFn make_loss, double tol = 2e-2) {
  Tensor loss = make_loss();
  param.ZeroGrad();
  Backward(loss);
  const Matrix grad = param.grad();
  const float eps = 1e-3f;
  for (int idx = 0; idx < std::min(6, param.value().size()); ++idx) {
    const float orig = param.value().data()[idx];
    param.mutable_value().data()[idx] = orig + eps;
    const float plus = make_loss().value()(0, 0);
    param.mutable_value().data()[idx] = orig - eps;
    const float minus = make_loss().value()(0, 0);
    param.mutable_value().data()[idx] = orig;
    const double numeric = (plus - minus) / (2.0 * eps);
    EXPECT_NEAR(grad.data()[idx], numeric, tol)
        << "param index " << idx;
  }
}

TEST(MatrixTest, MatMulShapesAndValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (int i = 0; i < a.size(); ++i) a.data()[i] = v++;
  for (int i = 0; i < b.size(); ++i) b.data()[i] = v++;
  const Matrix c = MatMul(a, b);
  ASSERT_EQ(c.rows(), 2);
  ASSERT_EQ(c.cols(), 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  EXPECT_FLOAT_EQ(c(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
  EXPECT_FLOAT_EQ(c(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(MatrixTest, TransposeRoundTrip) {
  core::Rng rng(1);
  const Matrix a = Matrix::Gaussian(3, 5, 1.0f, &rng);
  const Matrix t = Transpose(Transpose(a));
  for (int i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(a.data()[i], t.data()[i]);
}

TEST(MatrixTest, SoftmaxRowsSumToOne) {
  core::Rng rng(2);
  const Matrix a = Matrix::Gaussian(4, 7, 3.0f, &rng);
  const Matrix s = SoftmaxRows(a);
  for (int i = 0; i < s.rows(); ++i) {
    double sum = 0.0;
    for (int j = 0; j < s.cols(); ++j) {
      sum += s(i, j);
      EXPECT_GT(s(i, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(AutodiffTest, MatMulGradient) {
  core::Rng rng(3);
  Tensor w(Matrix::Gaussian(4, 3, 0.5f, &rng), true);
  Tensor x(Matrix::Gaussian(5, 4, 0.5f, &rng), false);
  CheckGradient(w, [&] { return MeanAllT(MatMulT(x, w)); });
}

TEST(AutodiffTest, ReluTanhSigmoidGradients) {
  core::Rng rng(4);
  Tensor w(Matrix::Gaussian(3, 3, 0.7f, &rng), true);
  CheckGradient(w, [&] { return MeanAllT(ReluT(w)); });
  CheckGradient(w, [&] { return MeanAllT(TanhT(w)); });
  CheckGradient(w, [&] { return MeanAllT(SigmoidT(w)); });
}

TEST(AutodiffTest, SoftmaxRowsGradient) {
  core::Rng rng(5);
  Tensor w(Matrix::Gaussian(2, 4, 0.5f, &rng), true);
  Tensor coef(Matrix::Gaussian(2, 4, 1.0f, &rng), false);
  CheckGradient(w, [&] { return MeanAllT(MulT(SoftmaxRowsT(w), coef)); });
}

TEST(AutodiffTest, ConcatColsAndRowsGradients) {
  core::Rng rng(6);
  Tensor a(Matrix::Gaussian(3, 2, 0.5f, &rng), true);
  Tensor b(Matrix::Gaussian(3, 4, 0.5f, &rng), false);
  CheckGradient(a, [&] { return MeanAllT(ConcatColsT(a, b)); });
  Tensor c(Matrix::Gaussian(2, 2, 0.5f, &rng), false);
  CheckGradient(a, [&] { return MeanAllT(ConcatRowsT({a, c})); });
}

TEST(AutodiffTest, RowsGatherGradient) {
  core::Rng rng(7);
  Tensor table(Matrix::Gaussian(6, 3, 0.5f, &rng), true);
  CheckGradient(table, [&] { return MeanAllT(RowsT(table, {1, 4, 1})); });
}

TEST(AutodiffTest, SparseMixGradient) {
  core::Rng rng(8);
  auto s = std::make_shared<SparseRows>();
  s->rows = {{{0, 0.5f}, {1, 0.5f}}, {{2, 1.0f}}, {{0, 0.3f}, {2, 0.7f}}};
  Tensor x(Matrix::Gaussian(3, 4, 0.5f, &rng), true);
  CheckGradient(x, [&] { return MeanAllT(SparseMixT(s, x)); });
}

TEST(AutodiffTest, SharedSubgraphAccumulatesGradient) {
  // y = mean(w + w) should give gradient 2/N per entry.
  Tensor w(Matrix::Full(2, 2, 1.0f), true);
  Tensor loss = MeanAllT(AddT(w, w));
  Backward(loss);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(w.grad().data()[i], 2.0 / 4.0, 1e-6);
}

TEST(LossTest, SmoothedCrossEntropyGradient) {
  core::Rng rng(9);
  Tensor logits(Matrix::Gaussian(5, 3, 1.0f, &rng), true);
  const std::vector<int> labels = {0, 2, 1, 1, 0};
  CheckGradient(logits,
                [&] { return SmoothedCrossEntropy(logits, labels, 0.1f); });
}

TEST(LossTest, BinaryCrossEntropyGradient) {
  core::Rng rng(10);
  Tensor logits(Matrix::Gaussian(6, 1, 1.0f, &rng), true);
  const std::vector<float> targets = {0.0f, 1.0f, 0.3f, 0.8f, 0.5f, 1.0f};
  CheckGradient(logits, [&] {
    return BinaryCrossEntropyWithLogits(logits, targets, 0.05f);
  });
}

TEST(LossTest, MeanSquaredErrorGradient) {
  core::Rng rng(11);
  Tensor pred(Matrix::Gaussian(4, 1, 1.0f, &rng), true);
  const std::vector<float> targets = {0.1f, -0.2f, 0.5f, 1.2f};
  CheckGradient(pred, [&] { return MeanSquaredError(pred, targets); });
}

TEST(TrainingTest, LinearRegressionConverges) {
  core::Rng rng(12);
  // y = 2*x0 - 3*x1 + 1, learn with MSE.
  Linear lin(2, 1, &rng);
  Adam adam(lin.Params(), AdamConfig{.lr = 0.05f, .weight_decay = 0.0f});
  for (int step = 0; step < 400; ++step) {
    Matrix x(16, 2);
    std::vector<float> y(16);
    for (int i = 0; i < 16; ++i) {
      x(i, 0) = static_cast<float>(rng.Normal());
      x(i, 1) = static_cast<float>(rng.Normal());
      y[i] = 2.0f * x(i, 0) - 3.0f * x(i, 1) + 1.0f;
    }
    Tensor loss = MeanSquaredError(lin.Forward(Tensor(x)), y);
    adam.ZeroGrad();
    Backward(loss);
    adam.Step();
  }
  Matrix probe(1, 2);
  probe(0, 0) = 1.0f;
  probe(0, 1) = 1.0f;
  EXPECT_NEAR(lin.Forward(probe)(0, 0), 0.0f, 0.15f);  // 2 - 3 + 1 = 0.
}

TEST(TrainingTest, BceLearnsPositiveCorrelation) {
  // Regression test: a single informative feature positively correlated with
  // the soft target must end with a positive learned response.
  core::Rng rng(13);
  Mlp mlp({1, 8, 1}, &rng);
  Adam adam(mlp.Params(), AdamConfig{.lr = 1e-3f, .weight_decay = 1e-4f});
  for (int step = 0; step < 300; ++step) {
    Matrix x(64, 1);
    std::vector<float> y(64);
    for (int i = 0; i < 64; ++i) {
      const float v = static_cast<float>(rng.Uniform());
      x(i, 0) = v;
      y[i] = v;  // Target equals the feature: perfectly correlated.
    }
    Tensor loss = BinaryCrossEntropyWithLogits(mlp.Forward(Tensor(x)), y, 0.1f);
    adam.ZeroGrad();
    Backward(loss);
    adam.Step();
  }
  Matrix lo(1, 1, 0.1f);
  Matrix hi(1, 1, 0.9f);
  const float p_lo = 1.0f / (1.0f + std::exp(-mlp.Forward(lo)(0, 0)));
  const float p_hi = 1.0f / (1.0f + std::exp(-mlp.Forward(hi)(0, 0)));
  EXPECT_GT(p_hi, p_lo + 0.2f);
}

TEST(MatrixTest, TransposedMatMulVariantsAgree) {
  core::Rng rng(31);
  const Matrix a = Matrix::Gaussian(4, 6, 1.0f, &rng);
  const Matrix b = Matrix::Gaussian(4, 5, 1.0f, &rng);
  const Matrix c = Matrix::Gaussian(3, 6, 1.0f, &rng);
  // A^T * B two ways.
  const Matrix t1 = MatMulTransA(a, b);
  const Matrix t2 = MatMul(Transpose(a), b);
  ASSERT_TRUE(t1.SameShape(t2));
  for (int i = 0; i < t1.size(); ++i) EXPECT_NEAR(t1.data()[i], t2.data()[i], 1e-5);
  // A * C^T two ways.
  const Matrix u1 = MatMulTransB(a, c);
  const Matrix u2 = MatMul(a, Transpose(c));
  ASSERT_TRUE(u1.SameShape(u2));
  for (int i = 0; i < u1.size(); ++i) EXPECT_NEAR(u1.data()[i], u2.data()[i], 1e-5);
}

TEST(MatrixTest, BroadcastAndColumnSums) {
  Matrix a(2, 3);
  for (int i = 0; i < 6; ++i) a.data()[i] = static_cast<float>(i);
  const Matrix row = Matrix::RowVector({10.0f, 20.0f, 30.0f});
  const Matrix sum = AddRowBroadcast(a, row);
  EXPECT_FLOAT_EQ(sum(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(sum(1, 2), 35.0f);
  const Matrix cols = SumRowsOf(a);
  EXPECT_FLOAT_EQ(cols(0, 0), 3.0f);   // 0 + 3.
  EXPECT_FLOAT_EQ(cols(0, 2), 7.0f);   // 2 + 5.
}

TEST(OptimTest, SgdConvergesOnQuadratic) {
  // Minimize ||w - target||^2 by SGD.
  Tensor w(Matrix::Full(1, 4, 5.0f), true);
  const std::vector<float> target = {1.0f, -2.0f, 0.5f, 3.0f};
  Sgd sgd({w}, SgdConfig{.lr = 0.05f, .momentum = 0.5f});
  for (int step = 0; step < 200; ++step) {
    Tensor diff = w;
    Tensor loss = MeanSquaredError(TransposeT(w), target);
    sgd.ZeroGrad();
    Backward(loss);
    sgd.Step();
  }
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(w.value()(0, j), target[j], 0.05f);
}

TEST(OptimTest, ClipGradNormScalesLargeGradients) {
  Tensor w(Matrix::Full(1, 3, 1.0f), true);
  Tensor loss = SumAllT(ScaleT(w, 100.0f));
  Backward(loss);
  const float before = ClipGradNorm({w}, 1.0f);
  EXPECT_GT(before, 100.0f);
  double norm_sq = w.grad().SquaredNorm();
  EXPECT_NEAR(std::sqrt(norm_sq), 1.0, 1e-4);
  // Clipping below the threshold is a no-op.
  const float again = ClipGradNorm({w}, 10.0f);
  EXPECT_NEAR(again, 1.0f, 1e-4);
}

TEST(OptimTest, LrSchedules) {
  EXPECT_NEAR(CosineLr(1.0f, 0.0f, 0, 100), 1.0f, 1e-6);
  EXPECT_NEAR(CosineLr(1.0f, 0.0f, 100, 100), 0.0f, 1e-6);
  EXPECT_NEAR(CosineLr(1.0f, 0.2f, 50, 100), 0.6f, 1e-6);
  EXPECT_NEAR(StepDecayLr(1.0f, 0.5f, 25, 10), 0.25f, 1e-6);
}

TEST(OpsTest, DropoutMasksAndRescales) {
  core::Rng rng(21);
  Tensor x(Matrix::Full(50, 50, 1.0f), true);
  const Tensor y = DropoutT(x, 0.4f, &rng);
  int zeros = 0;
  double sum = 0.0;
  for (int i = 0; i < y.value().size(); ++i) {
    const float v = y.value().data()[i];
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / 0.6f, 1e-5);
    }
    sum += v;
  }
  // ~40% dropped; expectation preserved.
  EXPECT_NEAR(static_cast<double>(zeros) / y.value().size(), 0.4, 0.05);
  EXPECT_NEAR(sum / y.value().size(), 1.0, 0.08);
  // Gradient flows only through the kept entries.
  Backward(MeanAllT(y));
  int grad_zeros = 0;
  for (int i = 0; i < x.grad().size(); ++i) {
    if (x.grad().data()[i] == 0.0f) ++grad_zeros;
  }
  EXPECT_EQ(grad_zeros, zeros);
}

TEST(ModulesTest, AttentionTensorAndMatrixPathsAgree) {
  core::Rng rng(14);
  AdditiveAttention attn(4, 4, 6, &rng);
  const Matrix keys = Matrix::Gaussian(5, 4, 0.7f, &rng);
  const Matrix query = Matrix::Gaussian(1, 4, 0.7f, &rng);
  const Matrix out_m = attn.Forward(query, keys, keys);
  const Tensor out_t =
      attn.Forward(Tensor(query), Tensor(keys), Tensor(keys));
  ASSERT_EQ(out_m.rows(), 1);
  ASSERT_EQ(out_m.cols(), 4);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(out_m(0, j), out_t.value()(0, j), 1e-5);
  }
}

TEST(ModulesTest, AttentionWeightsFormDistribution) {
  core::Rng rng(15);
  AdditiveAttention attn(3, 3, 4, &rng);
  const Matrix keys = Matrix::Gaussian(7, 3, 1.0f, &rng);
  const Matrix query = Matrix::Gaussian(1, 3, 1.0f, &rng);
  Matrix weights;
  attn.Forward(query, keys, keys, &weights);
  ASSERT_EQ(weights.rows(), 1);
  ASSERT_EQ(weights.cols(), 7);
  double sum = 0.0;
  for (int j = 0; j < 7; ++j) sum += weights(0, j);
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(ModulesTest, MlpMatrixAndTensorPathsAgree) {
  core::Rng rng(16);
  Mlp mlp({3, 5, 2}, &rng);
  const Matrix x = Matrix::Gaussian(4, 3, 1.0f, &rng);
  const Matrix a = mlp.Forward(x);
  const Tensor b = mlp.Forward(Tensor(x));
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.data()[i], b.value().data()[i], 1e-5);
  }
}

}  // namespace
}  // namespace lhmm::nn
