// Socket-level integration tests for the TCP transport (srv::NetServer +
// srv::CommandProcessor) over real loopback connections:
//
//  - N concurrent connections produce committed output byte-identical to the
//    stdin path (same verb stream through CommandProcessor) at 1 and 8
//    engine threads;
//  - a slow reader (unread responses) trips per-connection write-queue
//    backpressure with exact typed kResourceExhausted rejects and recovers
//    once it drains;
//  - an abrupt mid-frame disconnect frees the connection without wedging the
//    pump; an oversized frame gets a typed err frame, then the close;
//  - a half-open/idle connection is reaped by the existing logical-clock idle
//    TTL;
//  - regression: a failed `drain` leaves the server serving (not wedged
//    draining with its sessions closed), so the EOF/SIGTERM shutdown drain
//    still completes — the bug the socket gauntlet surfaced in lhmm_serve.
//
// The server loop runs on one thread; clients are real blocking sockets on
// test threads. Metrics are read only after the serving thread joins.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "core/strings.h"
#include "hmm/classic_models.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "srv/frame.h"
#include "srv/match_server.h"
#include "srv/net_server.h"
#include "traj/trajectory.h"

namespace lhmm {
namespace {

/// A blocking loopback client speaking the frame protocol.
struct NetClient {
  int fd = -1;

  bool Connect(int port, int rcvbuf = 0) {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    if (rcvbuf > 0) {
      setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    }
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  /// One framed round trip; empty string when the connection is gone.
  std::string Cmd(const std::string& line) {
    if (!srv::WriteFrame(fd, line).ok()) return "";
    core::Result<std::string> resp = srv::ReadFrame(fd);
    return resp.ok() ? *resp : "";
  }

  bool Send(const std::string& line) { return srv::WriteFrame(fd, line).ok(); }
  std::string Recv() {
    core::Result<std::string> resp = srv::ReadFrame(fd);
    return resp.ok() ? *resp : "";
  }
  /// Sends raw bytes, bypassing the frame encoder (fault injection).
  bool SendRaw(const std::string& bytes) {
    return send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
           static_cast<ssize_t>(bytes.size());
  }
  /// True when the peer closed the connection (clean EOF).
  bool WaitForEof() {
    char c;
    for (;;) {
      const ssize_t n = read(fd, &c, 1);
      if (n == 0) return true;
      if (n < 0 && errno != EINTR) return false;
      if (n > 0) return false;  // Unexpected data.
    }
  }
  void Close() {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  ~NetClient() { Close(); }
};

class NetServeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new network::RoadNetwork(network::GenerateGridNetwork(8, 8, 200.0));
    index_ = new network::GridIndex(net_, 150.0);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete net_;
    index_ = nullptr;
    net_ = nullptr;
  }

  static hmm::ClassicModelConfig Models() {
    hmm::ClassicModelConfig models;
    models.obs_sigma = 120.0;
    models.search_radius = 500.0;
    return models;
  }

  static std::vector<srv::TierSpec> Tiers() {
    const network::RoadNetwork* net = net_;
    const network::GridIndex* index = index_;
    matchers::MatcherFactory ivmm = [net, index] {
      return std::make_unique<matchers::IvmmMatcher>(net, index, Models(),
                                                     /*k=*/10);
    };
    hmm::EngineConfig engine;
    engine.k = 8;
    matchers::MatcherFactory stm = [net, index, engine] {
      return std::make_unique<matchers::StmMatcher>(net, index, Models(),
                                                    engine);
    };
    return {{"IVMM", ivmm}, {"STM", stm}};
  }

  static srv::ServerConfig Config(int threads) {
    srv::ServerConfig config;
    config.engine.num_threads = threads;
    config.engine.lag = 2;
    return config;
  }

  /// The p-th push line of a walk along grid row `row` (byte-exact across
  /// the oracle and the socket run — the whole comparison rests on both
  /// transports seeing identical verb text).
  static std::string PushCmd(int64_t id, int row, int p) {
    return core::StrFormat("push %lld %.17g %.17g %.17g %d",
                           static_cast<long long>(id), 100.0 + p * 250.0,
                           10.0 + row * 200.0, 20.0 * p, p);
  }

  static network::RoadNetwork* net_;
  static network::GridIndex* index_;
};

network::RoadNetwork* NetServeTest::net_ = nullptr;
network::GridIndex* NetServeTest::index_ = nullptr;

/// A NetServer running on its own thread against a fresh MatchServer.
struct RunningServer {
  std::unique_ptr<srv::MatchServer> server;
  std::unique_ptr<srv::NetServer> net;
  std::thread thread;
  std::atomic<bool> stop{false};
  core::Status run_status;

  void Start(std::vector<srv::TierSpec> tiers, const srv::ServerConfig& config,
             srv::NetServerConfig net_config) {
    server = std::make_unique<srv::MatchServer>(std::move(tiers), config);
    // Fast stop-flag cadence keeps the tests snappy.
    net_config.poll_interval_ms = 20;
    net = std::make_unique<srv::NetServer>(server.get(), srv::CommandOptions{},
                                           net_config);
    ASSERT_TRUE(net->Listen().ok());
    thread = std::thread([this] { run_status = net->Run(stop); });
  }

  /// Stops the loop and joins; metrics are safe to read afterwards.
  srv::NetMetrics Stop() {
    stop.store(true);
    if (thread.joinable()) thread.join();
    EXPECT_TRUE(run_status.ok()) << run_status.ToString();
    return net->metrics();
  }
};

// ---------------------------------------------------------------------------
// Byte-identity with the stdin path, at 1 and 8 engine threads.
// ---------------------------------------------------------------------------

TEST_F(NetServeTest, ConcurrentConnectionsMatchStdinPathByteForByte) {
  constexpr int kRows = 8;
  constexpr int kPoints = 6;

  for (const int threads : {1, 8}) {
    // The stdin path: the same CommandProcessor lhmm_serve's stdin loop runs,
    // one session per grid row, ids 0..7 in open order.
    std::map<int, std::string> oracle;  // row -> committed payload after the id
    {
      srv::MatchServer server(Tiers(), Config(threads));
      srv::CommandProcessor proc(&server, {});
      std::string resp;
      bool quit = false;
      for (int row = 0; row < kRows; ++row) {
        ASSERT_TRUE(proc.Process("open", &resp, &quit));
        ASSERT_EQ(resp, core::StrFormat("ok open %d tier=IVMM", row));
        for (int p = 0; p < kPoints; ++p) {
          ASSERT_TRUE(proc.Process(PushCmd(row, row, p), &resp, &quit));
          ASSERT_EQ(resp, core::StrFormat("ok push %d", row));
        }
        ASSERT_TRUE(proc.Process(core::StrFormat("finish %d", row), &resp,
                                 &quit));
        ASSERT_EQ(resp, core::StrFormat("ok finish %d", row));
      }
      ASSERT_TRUE(proc.Process("await", &resp, &quit));
      ASSERT_EQ(resp, "ok await");
      for (int row = 0; row < kRows; ++row) {
        ASSERT_TRUE(proc.Process(core::StrFormat("committed %d", row), &resp,
                                 &quit));
        const std::string prefix = core::StrFormat("ok committed %d ", row);
        ASSERT_TRUE(core::StartsWith(resp, prefix)) << resp;
        oracle[row] = resp.substr(prefix.size());
        ASSERT_NE(oracle[row], "0") << "empty committed path for row " << row;
      }
    }

    // The socket path: 8 concurrent connections, one per row, racing their
    // opens/pushes through the poll loop. Session ids depend on arrival
    // order, so the comparison keys on the row (the trajectory), not the id;
    // given the id mapping, every response is byte-compared.
    RunningServer rs;
    rs.Start(Tiers(), Config(threads), srv::NetServerConfig{});
    ASSERT_TRUE(rs.net != nullptr);
    const int port = rs.net->port();

    std::vector<int64_t> row_id(kRows, -1);
    std::vector<std::thread> clients;
    std::atomic<int> failures{0};
    clients.reserve(kRows);
    for (int row = 0; row < kRows; ++row) {
      clients.emplace_back([row, port, &row_id, &failures] {
        NetClient c;
        if (!c.Connect(port)) {
          ++failures;
          return;
        }
        const std::string opened = c.Cmd("open");
        long long id = -1;
        if (sscanf(opened.c_str(), "ok open %lld tier=IVMM", &id) != 1) {
          ++failures;
          return;
        }
        row_id[row] = id;
        for (int p = 0; p < kPoints; ++p) {
          if (c.Cmd(PushCmd(id, row, p)) !=
              core::StrFormat("ok push %lld", id)) {
            ++failures;
            return;
          }
        }
        if (c.Cmd(core::StrFormat("finish %lld", id)) !=
            core::StrFormat("ok finish %lld", id)) {
          ++failures;
        }
      });
    }
    for (std::thread& t : clients) t.join();
    ASSERT_EQ(failures.load(), 0) << "threads=" << threads;

    NetClient control;
    ASSERT_TRUE(control.Connect(port));
    ASSERT_EQ(control.Cmd("await"), "ok await");
    for (int row = 0; row < kRows; ++row) {
      const int64_t id = row_id[row];
      ASSERT_GE(id, 0);
      const std::string resp =
          control.Cmd(core::StrFormat("committed %lld",
                                      static_cast<long long>(id)));
      const std::string prefix =
          core::StrFormat("ok committed %lld ", static_cast<long long>(id));
      ASSERT_TRUE(core::StartsWith(resp, prefix)) << resp;
      // Byte-identical committed output for the same trajectory, independent
      // of transport, connection interleaving, and engine thread count.
      EXPECT_EQ(resp.substr(prefix.size()), oracle[row])
          << "threads=" << threads << " row=" << row;
    }
    control.Close();
    const srv::NetMetrics m = rs.Stop();
    EXPECT_EQ(m.accepted, kRows + 1);
    EXPECT_EQ(m.closed, m.accepted);
    EXPECT_EQ(m.frames_shed, 0);
    EXPECT_EQ(m.codec_errors, 0);
  }
}

// ---------------------------------------------------------------------------
// Write-queue backpressure: slow readers get exact typed rejects.
// ---------------------------------------------------------------------------

TEST_F(NetServeTest, SlowReaderGetsTypedResourceExhaustedAndRecovers) {
  srv::NetServerConfig net_config;
  net_config.max_write_queue_bytes = 1024;
  net_config.so_sndbuf = 4096;  // Small kernel buffers make the queue fill.
  RunningServer rs;
  rs.Start(Tiers(), Config(2), net_config);
  ASSERT_TRUE(rs.net != nullptr);

  NetClient slow;
  ASSERT_TRUE(slow.Connect(rs.net->port(), /*rcvbuf=*/4096));
  // Flood requests WITHOUT reading responses: the kernel buffers fill, the
  // per-connection write queue exceeds its cap, and further requests must be
  // answered with the exact typed reject instead of unbounded buffering.
  constexpr int kRequests = 800;
  for (int i = 0; i < kRequests; ++i) ASSERT_TRUE(slow.Send("stats"));

  int ok = 0;
  int shed = 0;
  for (int i = 0; i < kRequests; ++i) {
    const std::string resp = slow.Recv();
    if (core::StartsWith(resp, "ok stats ")) {
      ++ok;
    } else if (resp == "err ResourceExhausted connection write queue full") {
      ++shed;
    } else {
      FAIL() << "request " << i << ": unexpected response '" << resp << "'";
    }
  }
  // Exactly one response per request — shed requests are typed rejects, never
  // silent drops — and both outcomes occurred.
  EXPECT_EQ(ok + shed, kRequests);
  EXPECT_GT(ok, 0);
  EXPECT_GT(shed, 0);
  // Draining the responses clears the queue: the connection recovers.
  EXPECT_TRUE(core::StartsWith(slow.Cmd("stats"), "ok stats "));

  // Fleet isolation: a well-behaved connection is untouched by the slow one.
  NetClient good;
  ASSERT_TRUE(good.Connect(rs.net->port()));
  EXPECT_TRUE(core::StartsWith(good.Cmd("open"), "ok open "));

  good.Close();
  slow.Close();
  const srv::NetMetrics m = rs.Stop();
  EXPECT_EQ(m.frames_shed, shed);
  EXPECT_EQ(m.frames_in, kRequests + 2);
}

// ---------------------------------------------------------------------------
// Abrupt disconnects and bad framing.
// ---------------------------------------------------------------------------

TEST_F(NetServeTest, MidFrameDisconnectFreesTheConnection) {
  RunningServer rs;
  rs.Start(Tiers(), Config(2), srv::NetServerConfig{});
  ASSERT_TRUE(rs.net != nullptr);

  // Die mid-frame: a round trip first (so the accept provably happened), then
  // a header promising 100 bytes, 10 bytes of payload, and a hard close.
  {
    NetClient abrupt;
    ASSERT_TRUE(abrupt.Connect(rs.net->port()));
    ASSERT_TRUE(core::StartsWith(abrupt.Cmd("stats"), "ok stats "));
    std::string partial = srv::EncodeFrame(std::string(100, 'x'));
    partial.resize(srv::kFrameHeaderBytes + 10);
    ASSERT_TRUE(abrupt.SendRaw(partial));
  }  // Destructor closes the socket with the frame still incomplete.

  // The pump must not be wedged: a fresh connection serves a full session.
  NetClient fresh;
  ASSERT_TRUE(fresh.Connect(rs.net->port()));
  const std::string opened = fresh.Cmd("open");
  long long id = -1;
  ASSERT_EQ(sscanf(opened.c_str(), "ok open %lld", &id), 1) << opened;
  for (int p = 0; p < 5; ++p) {
    ASSERT_EQ(fresh.Cmd(PushCmd(id, 1, p)),
              core::StrFormat("ok push %lld", id));
  }
  ASSERT_EQ(fresh.Cmd(core::StrFormat("finish %lld", id)),
            core::StrFormat("ok finish %lld", id));
  ASSERT_EQ(fresh.Cmd("await"), "ok await");
  ASSERT_TRUE(core::StartsWith(
      fresh.Cmd(core::StrFormat("committed %lld", id)), "ok committed "));
  fresh.Close();

  const srv::NetMetrics m = rs.Stop();
  EXPECT_GE(m.peer_disconnects, 1);
  EXPECT_EQ(m.closed, m.accepted);
}

TEST_F(NetServeTest, OversizedFrameGetsTypedErrorThenClose) {
  srv::NetServerConfig net_config;
  net_config.max_frame_bytes = 128;
  RunningServer rs;
  rs.Start(Tiers(), Config(2), net_config);
  ASSERT_TRUE(rs.net != nullptr);

  NetClient c;
  ASSERT_TRUE(c.Connect(rs.net->port()));
  // A header claiming a 100000-byte payload: rejected from the header alone.
  ASSERT_TRUE(c.SendRaw(srv::EncodeFrame(std::string(100000, 'x'))
                            .substr(0, srv::kFrameHeaderBytes)));
  EXPECT_EQ(c.Recv(), "err InvalidArgument frame length 100000 exceeds "
                      "limit 128");
  EXPECT_TRUE(c.WaitForEof());
  c.Close();

  // Garbage (an HTTP request on the wrong port) is also a typed reject.
  NetClient http;
  ASSERT_TRUE(http.Connect(rs.net->port()));
  ASSERT_TRUE(http.SendRaw("GET / HTTP/1.1\r\n\r\n"));
  EXPECT_TRUE(core::StartsWith(http.Recv(), "err InvalidArgument bad frame "
                                            "magic"));
  EXPECT_TRUE(http.WaitForEof());
  http.Close();

  const srv::NetMetrics m = rs.Stop();
  EXPECT_EQ(m.codec_errors, 2);
}

// ---------------------------------------------------------------------------
// Idle-TTL reaping on the logical clock.
// ---------------------------------------------------------------------------

TEST_F(NetServeTest, HalfOpenConnectionReapedByIdleTtlTicks) {
  srv::NetServerConfig net_config;
  net_config.conn_idle_ttl = 5;
  RunningServer rs;
  rs.Start(Tiers(), Config(1), net_config);
  ASSERT_TRUE(rs.net != nullptr);

  NetClient idle;
  ASSERT_TRUE(idle.Connect(rs.net->port()));
  // One round trip pins idle.last_active at clock 0 (and proves the accept
  // happened before any tick below).
  ASSERT_TRUE(core::StartsWith(idle.Cmd("stats"), "ok stats "));

  NetClient control;
  ASSERT_TRUE(control.Connect(rs.net->port()));
  for (int t = 1; t <= 6; ++t) {
    ASSERT_TRUE(core::StartsWith(
        control.Cmd(core::StrFormat("tick %d", t)), "ok tick "));
  }
  // The idle connection was reaped by the logical clock (6 - 0 >= 5): its
  // next read sees EOF. The control connection keeps ticking, so it is never
  // idle and survives.
  EXPECT_TRUE(idle.WaitForEof());
  EXPECT_TRUE(core::StartsWith(control.Cmd("stats"), "ok stats "));

  idle.Close();
  control.Close();
  const srv::NetMetrics m = rs.Stop();
  EXPECT_EQ(m.reaped_idle, 1);
}

// ---------------------------------------------------------------------------
// Quit and graceful stop.
// ---------------------------------------------------------------------------

TEST_F(NetServeTest, QuitVerbStopsTheLoopAndClosesEveryConnection) {
  RunningServer rs;
  rs.Start(Tiers(), Config(2), srv::NetServerConfig{});
  ASSERT_TRUE(rs.net != nullptr);

  NetClient a;
  NetClient b;
  ASSERT_TRUE(a.Connect(rs.net->port()));
  ASSERT_TRUE(b.Connect(rs.net->port()));
  ASSERT_TRUE(core::StartsWith(a.Cmd("open"), "ok open "));
  ASSERT_TRUE(core::StartsWith(b.Cmd("stats"), "ok stats "));
  ASSERT_TRUE(a.Send("quit"));
  // quit produces no response (exactly like stdin mode): both connections see
  // a flush-then-close, and Run() returns without the stop flag.
  EXPECT_TRUE(a.WaitForEof());
  EXPECT_TRUE(b.WaitForEof());
  if (rs.thread.joinable()) rs.thread.join();
  EXPECT_TRUE(rs.run_status.ok()) << rs.run_status.ToString();
  EXPECT_EQ(rs.net->metrics().closed, 2);
}

// ---------------------------------------------------------------------------
// Liveness verbs: identical bytes on the stdin and socket transports.
// ---------------------------------------------------------------------------

TEST_F(NetServeTest, HealthAndPidVerbsIdenticalAcrossTransports) {
  // The supervisor's health probe and a human on stdin must see the same
  // report: both transports run the same CommandProcessor, and this pins it.
  srv::MatchServer server(Tiers(), Config(1));
  srv::CommandProcessor proc(&server, {});
  std::string stdin_health;
  std::string stdin_pid;
  bool quit = false;
  ASSERT_TRUE(proc.Process("health", &stdin_health, &quit));
  ASSERT_TRUE(proc.Process("pid", &stdin_pid, &quit));
  EXPECT_EQ(stdin_health, "ok health tier=IVMM clock=0 durable=0 gen=0 live=0");
  EXPECT_EQ(stdin_pid,
            core::StrFormat("ok pid %d uptime=0", static_cast<int>(getpid())));

  RunningServer rs;
  rs.Start(Tiers(), Config(1), srv::NetServerConfig{});
  ASSERT_TRUE(rs.net != nullptr);
  NetClient c;
  ASSERT_TRUE(c.Connect(rs.net->port()));
  EXPECT_EQ(c.Cmd("health"), stdin_health);
  EXPECT_EQ(c.Cmd("pid"), stdin_pid);

  // The report is live state, not a constant: drive both transports through
  // the same verb stream and they must still agree byte-for-byte.
  std::string resp;
  ASSERT_TRUE(proc.Process("open", &resp, &quit));
  ASSERT_TRUE(proc.Process("tick 3", &resp, &quit));
  ASSERT_TRUE(proc.Process("health", &stdin_health, &quit));
  EXPECT_EQ(stdin_health, "ok health tier=IVMM clock=3 durable=0 gen=0 live=1");
  ASSERT_TRUE(core::StartsWith(c.Cmd("open"), "ok open "));
  ASSERT_TRUE(core::StartsWith(c.Cmd("tick 3"), "ok tick "));
  EXPECT_EQ(c.Cmd("health"), stdin_health);

  c.Close();
  rs.Stop();
}

// ---------------------------------------------------------------------------
// SIGPIPE hardening: writes to a half-closed socket must not kill the server.
// ---------------------------------------------------------------------------

TEST_F(NetServeTest, WritesToHalfClosedSocketDoNotKillTheServer) {
  // This test binary does NOT ignore SIGPIPE, deliberately: if any server
  // send() lacked MSG_NOSIGNAL, the kernel would SIGPIPE this process dead
  // right here. Queue a burst of requests, slam the socket shut without
  // reading a byte (the close RSTs the inbound responses), and let the server
  // write into the wreckage.
  RunningServer rs;
  rs.Start(Tiers(), Config(2), srv::NetServerConfig{});
  ASSERT_TRUE(rs.net != nullptr);

  for (int round = 0; round < 4; ++round) {
    NetClient doomed;
    ASSERT_TRUE(doomed.Connect(rs.net->port(), /*rcvbuf=*/4096));
    ASSERT_TRUE(core::StartsWith(doomed.Cmd("stats"), "ok stats "));
    for (int i = 0; i < 200; ++i) {
      if (!doomed.Send("stats")) break;  // Queue responses, never read them.
    }
    doomed.Close();
  }

  // Still alive and serving: a full session on a fresh connection.
  NetClient fresh;
  ASSERT_TRUE(fresh.Connect(rs.net->port()));
  const std::string opened = fresh.Cmd("open");
  long long id = -1;
  ASSERT_EQ(sscanf(opened.c_str(), "ok open %lld", &id), 1) << opened;
  for (int p = 0; p < 4; ++p) {
    ASSERT_EQ(fresh.Cmd(PushCmd(id, 3, p)),
              core::StrFormat("ok push %lld", id));
  }
  ASSERT_EQ(fresh.Cmd(core::StrFormat("finish %lld", id)),
            core::StrFormat("ok finish %lld", id));
  fresh.Close();

  const srv::NetMetrics m = rs.Stop();
  EXPECT_EQ(m.closed, m.accepted);
}

// ---------------------------------------------------------------------------
// SO_REUSEPORT: the fleet's shared-port mode.
// ---------------------------------------------------------------------------

TEST_F(NetServeTest, ReusePortLetsTwoServersShareOnePort) {
#ifdef SO_REUSEPORT
  srv::MatchServer s1(Tiers(), Config(1));
  srv::NetServerConfig c1;
  c1.reuse_port = true;
  srv::NetServer n1(&s1, {}, c1);
  ASSERT_TRUE(n1.Listen().ok());

  // Second listener on the very same port: admitted with reuse_port...
  srv::MatchServer s2(Tiers(), Config(1));
  srv::NetServerConfig c2;
  c2.reuse_port = true;
  c2.port = n1.port();
  srv::NetServer n2(&s2, {}, c2);
  EXPECT_TRUE(n2.Listen().ok());
  EXPECT_EQ(n2.port(), n1.port());

  // ...and refused without it (both earlier binds carried SO_REUSEPORT, so
  // the non-reuse bind is the one the kernel rejects).
  srv::MatchServer s3(Tiers(), Config(1));
  srv::NetServerConfig c3;
  c3.port = n1.port();
  srv::NetServer n3(&s3, {}, c3);
  EXPECT_FALSE(n3.Listen().ok());
#else
  GTEST_SKIP() << "SO_REUSEPORT not available on this platform";
#endif
}

// ---------------------------------------------------------------------------
// Regression (surfaced by the socket gauntlet): EOF-vs-drain ordering.
// ---------------------------------------------------------------------------

TEST_F(NetServeTest, FailedDrainLeavesServerServingSoShutdownDrainCompletes) {
  srv::MatchServer server(Tiers(), Config(1));
  srv::CommandProcessor proc(&server, {});
  std::string resp;
  bool quit = false;

  ASSERT_TRUE(proc.Process("open", &resp, &quit));
  ASSERT_EQ(resp, "ok open 0 tier=IVMM");
  for (int p = 0; p < 4; ++p) {
    ASSERT_TRUE(proc.Process(PushCmd(0, 2, p), &resp, &quit));
    ASSERT_EQ(resp, "ok push 0");
  }
  ASSERT_TRUE(proc.Process("await", &resp, &quit));

  // A drain to an unwritable path fails with a typed error — and must leave
  // the server serving. Before the fix, draining_ stayed true, every session
  // was stranded closed, and lhmm_serve's EOF shutdown skipped its own
  // --snapshot drain ("already draining"), silently losing all live sessions
  // while exiting 0.
  ASSERT_TRUE(
      proc.Process("drain /nonexistent-dir/never.snap", &resp, &quit));
  ASSERT_TRUE(core::StartsWith(resp, "err IoError ")) << resp;
  EXPECT_FALSE(server.draining());

  // Still serving: pushes are admitted, opens are admitted.
  ASSERT_TRUE(proc.Process(PushCmd(0, 2, 4), &resp, &quit));
  EXPECT_EQ(resp, "ok push 0");
  ASSERT_TRUE(proc.Process("open", &resp, &quit));
  EXPECT_EQ(resp, "ok open 1 tier=IVMM");

  // The shutdown drain (what lhmm_serve runs at EOF with --snapshot) now
  // completes, and the snapshot restores the session it would have lost.
  const std::string path = ::testing::TempDir() + "/eof_drain.snap";
  ASSERT_TRUE(proc.Process("drain " + path, &resp, &quit));
  ASSERT_EQ(resp, "ok drain " + path);
  EXPECT_TRUE(server.draining());

  core::Result<std::unique_ptr<srv::MatchServer>> restored =
      srv::MatchServer::Restore(path, Tiers(), Config(1));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->num_sessions(), 2);
  EXPECT_TRUE((*restored)->SessionStatus(0).ok());
}

// ---------------------------------------------------------------------------
// fd exhaustion: the EMFILE accept storm, driven by an injected io::FaultEnv.
// ---------------------------------------------------------------------------

TEST_F(NetServeTest, EmfileAcceptIsShedViaTheReserveFd) {
  // The first accept attempt fails EMFILE; the retry after surrendering the
  // reserve fd succeeds. The pending connection must be accepted and
  // immediately closed — a clean EOF for the peer instead of rotting in the
  // backlog until its connect timeout.
  io::FaultEnv fenv;
  io::EnvFaultRule rule;
  rule.op = io::EnvOp::kAccept;
  rule.at_count = 1;
  rule.repeat = 1;
  rule.fault_errno = EMFILE;
  fenv.AddRule(rule);

  RunningServer rs;
  srv::NetServerConfig net_config;
  net_config.env = &fenv;
  rs.Start(Tiers(), Config(1), net_config);
  if (HasFatalFailure()) return;

  NetClient shed;
  ASSERT_TRUE(shed.Connect(rs.net->port()));
  EXPECT_TRUE(shed.WaitForEof()) << "the shed connection must close cleanly";

  // The storm is over (the rule fired its once): a new connection is served
  // normally.
  NetClient fresh;
  ASSERT_TRUE(fresh.Connect(rs.net->port()));
  EXPECT_TRUE(core::StartsWith(fresh.Cmd("pid"), "ok pid "));

  const srv::NetMetrics m = rs.Stop();
  EXPECT_EQ(m.accepted_shed, 1);
  EXPECT_EQ(m.accepted, 1) << "only the post-storm connection was admitted";
}

TEST_F(NetServeTest, SustainedEmfileStormDoesNotBusySpinAndRecovers) {
  // EMFILE forever: even the reserve-fd retry fails, so the server can make
  // no progress at all. The listen fd stays readable the whole time — the
  // regression this guards against is the accept loop turning into a hot
  // poll() spin. The loop must instead pause the listener and keep waking at
  // its normal poll cadence.
  io::FaultEnv fenv;
  io::EnvFaultRule rule;
  rule.op = io::EnvOp::kAccept;
  rule.at_count = 1;
  rule.repeat = -1;
  rule.fault_errno = EMFILE;
  fenv.AddRule(rule);

  RunningServer rs;
  srv::NetServerConfig net_config;
  net_config.env = &fenv;
  rs.Start(Tiers(), Config(1), net_config);
  if (HasFatalFailure()) return;

  // The connection lands in the kernel backlog (connect succeeds) but the
  // server cannot accept it while starved.
  NetClient waiting;
  ASSERT_TRUE(waiting.Connect(rs.net->port()));
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // fds free up: the backlogged connection is finally accepted and served.
  fenv.ClearRules();
  EXPECT_TRUE(core::StartsWith(waiting.Cmd("pid"), "ok pid "));

  const srv::NetMetrics m = rs.Stop();
  EXPECT_GT(m.accept_failures, 0);
  EXPECT_EQ(m.accepted, 1);
  // ~400ms of storm at poll_interval_ms=20 is ~20 wakeups plus scheduling
  // slop; a busy spin would rack up tens of thousands. The bound is loose on
  // purpose — it catches the spin, not the exact cadence.
  EXPECT_LT(m.poll_wakeups, 400) << "accept loop busy-spun under EMFILE";
}

}  // namespace
}  // namespace lhmm
