// Robustness suite for the hardened matching pipeline: traj::Sanitize
// policies, deterministic fault injection (network::FaultyRouter), HMM-break
// recovery (offline engine, online matcher, STM/IVMM), and the StreamEngine
// serving contract — bounded inboxes with backpressure, logical-clock
// eviction that is deterministic across thread counts, and per-session error
// quarantine. Ends with the end-to-end crash test: corrupted points +
// sanitize + a 10%-faulted router through STM/IVMM/LHMM, byte-identical for
// 1 and 8 threads.

#include <cmath>
#include <condition_variable>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "hmm/classic_models.h"
#include "hmm/engine.h"
#include "hmm/online.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "matchers/batch_matcher.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "matchers/stream_engine.h"
#include "matchers/streaming.h"
#include "network/faulty_router.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "network/path_cache.h"
#include "sim/corrupt.h"
#include "sim/dataset.h"
#include "traj/filters.h"
#include "traj/sanitize.h"

namespace lhmm {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

traj::TrajPoint P(double x, double y, double t,
                  traj::TowerId tower = traj::kInvalidTower) {
  return {{x, y}, t, tower};
}

// ---------------------------------------------------------------------------
// traj::Sanitize — per-policy behavior.
// ---------------------------------------------------------------------------

TEST(SanitizeTest, CleanInputPassesThroughUntouched) {
  traj::Trajectory t;
  t.points = {P(0, 0, 0, 1), P(50, 0, 10, 2), P(100, 0, 20, 1)};
  traj::SanitizeConfig config;
  config.policy = traj::SanitizePolicy::kReject;
  config.num_towers = 4;
  traj::SanitizeReport report;
  const auto out = traj::Sanitize(t, config, &report);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.input_points, 3);
  EXPECT_EQ(report.output_points, 3);
  ASSERT_EQ(out->size(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*out)[i].t, t[i].t);
    EXPECT_EQ((*out)[i].tower, t[i].tower);
  }
}

TEST(SanitizeTest, RejectNamesTheFirstOffendingPoint) {
  traj::Trajectory t;
  t.points = {P(0, 0, 0), P(50, 0, 10), P(kNaN, 0, 20), P(150, 0, 30)};
  traj::SanitizeConfig config;
  config.policy = traj::SanitizePolicy::kReject;
  const auto out = traj::Sanitize(t, config);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), core::StatusCode::kInvalidArgument);
  EXPECT_NE(out.status().message().find("point 2"), std::string::npos)
      << out.status().message();
}

TEST(SanitizeTest, DropPointRemovesEveryDefectClass) {
  traj::Trajectory t;
  t.points = {
      P(0, 0, 0, 1),     // Kept.
      P(10, 0, 10, 42),  // Unknown tower: dropped.
      P(20, kNaN, 20),   // Non-finite: dropped.
      P(30, 0, 30, 2),   // Kept.
      P(40, 0, 20, 3),   // Moves time backwards: dropped.
      P(50, 0, 30, 0),   // Duplicates the kept t=30: dropped.
  };
  traj::SanitizeConfig config;
  config.policy = traj::SanitizePolicy::kDropPoint;
  config.num_towers = 5;
  traj::SanitizeReport report;
  const auto out = traj::Sanitize(t, config, &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(report.nonfinite, 1);
  EXPECT_EQ(report.unknown_tower, 1);
  EXPECT_EQ(report.out_of_order, 1);
  EXPECT_EQ(report.duplicate_time, 1);
  EXPECT_EQ(report.dropped, 4);
  EXPECT_EQ(report.repaired, 0);
  ASSERT_EQ(out->size(), 2);
  EXPECT_EQ((*out)[0].t, 0.0);
  EXPECT_EQ((*out)[1].t, 30.0);
  for (int i = 1; i < out->size(); ++i) {
    EXPECT_GT((*out)[i].t, (*out)[i - 1].t);
  }
}

TEST(SanitizeTest, RepairReordersTimeAndClearsUnknownTowers) {
  traj::Trajectory t;
  t.points = {P(0, 0, 0, 1), P(20, 0, 20, 42), P(10, 0, 10, 2)};
  traj::SanitizeConfig config;
  config.policy = traj::SanitizePolicy::kRepair;
  config.num_towers = 5;
  traj::SanitizeReport report;
  const auto out = traj::Sanitize(t, config, &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(report.unknown_tower, 1);
  EXPECT_EQ(report.out_of_order, 1);
  EXPECT_EQ(report.repaired, 2);
  EXPECT_EQ(report.dropped, 0);
  ASSERT_EQ(out->size(), 3);
  EXPECT_EQ((*out)[0].t, 0.0);
  EXPECT_EQ((*out)[1].t, 10.0);
  EXPECT_EQ((*out)[2].t, 20.0);
  EXPECT_EQ((*out)[1].tower, 2);
  EXPECT_EQ((*out)[2].tower, traj::kInvalidTower);  // Cleared, not dropped.
}

TEST(SanitizeTest, OffNetworkPointsClampUnderRepairDropOtherwise) {
  geo::BBox bounds;
  bounds.Extend({0.0, 0.0});
  bounds.Extend({1000.0, 1000.0});
  traj::Trajectory t;
  t.points = {P(100, 100, 0), P(9000, 500, 10), P(200, 200, 20)};
  traj::SanitizeConfig config;
  config.network_bounds = bounds;
  config.off_network_margin = 100.0;

  config.policy = traj::SanitizePolicy::kRepair;
  traj::SanitizeReport report;
  auto out = traj::Sanitize(t, config, &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(report.off_network, 1);
  EXPECT_EQ(report.repaired, 1);
  ASSERT_EQ(out->size(), 3);
  EXPECT_DOUBLE_EQ((*out)[1].pos.x, 1100.0);  // Clamped to inflated bounds.

  config.policy = traj::SanitizePolicy::kDropPoint;
  out = traj::Sanitize(t, config, &report);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(report.off_network, 1);
  EXPECT_EQ(report.dropped, 1);
  EXPECT_EQ(out->size(), 2);
}

// ---------------------------------------------------------------------------
// network::FaultyRouter — deterministic fault injection.
// ---------------------------------------------------------------------------

TEST(FaultyRouterTest, FaultDecisionsArePureFunctionsOfThePair) {
  const network::RoadNetwork net = network::GenerateGridNetwork(8, 8, 200.0);
  network::FaultConfig fc;
  fc.route_failure_rate = 0.3;
  fc.seed = 42;
  network::FaultyRouter a(&net, fc);
  network::FaultyRouter b(&net, fc);
  int faulted = 0;
  int checked = 0;
  for (network::SegmentId f = 0; f < net.num_segments(); f += 5) {
    for (network::SegmentId t = 1; t < net.num_segments(); t += 13) {
      EXPECT_EQ(a.IsFaulted(f, t), b.IsFaulted(f, t));
      faulted += a.IsFaulted(f, t) ? 1 : 0;
      ++checked;
    }
  }
  // The empirical failure rate tracks the configured one.
  const double rate = static_cast<double>(faulted) / checked;
  EXPECT_GT(rate, 0.15);
  EXPECT_LT(rate, 0.45);
  // A faulted pair fails on every query, cached or not.
  for (network::SegmentId t = 1; t < net.num_segments(); ++t) {
    if (!a.IsFaulted(0, t)) continue;
    EXPECT_FALSE(a.Route1(0, t, 1.0e5).has_value());
    EXPECT_FALSE(a.Route1(0, t, 1.0e5).has_value());
    EXPECT_GE(a.injected_failures(), 2);
    break;
  }
}

TEST(FaultyRouterTest, ZeroRateIsByteTransparent) {
  const network::RoadNetwork net = network::GenerateGridNetwork(8, 8, 200.0);
  network::CachedRouter plain(&net);
  network::FaultyRouter faulty(&net, network::FaultConfig{});
  for (network::SegmentId f = 0; f < net.num_segments(); f += 17) {
    for (network::SegmentId t = 0; t < net.num_segments(); t += 11) {
      const auto want = plain.Route1(f, t, 3000.0);
      const auto got = faulty.Route1(f, t, 3000.0);
      ASSERT_EQ(want.has_value(), got.has_value()) << f << " -> " << t;
      if (want.has_value()) {
        EXPECT_EQ(want->segments, got->segments) << f << " -> " << t;
        EXPECT_DOUBLE_EQ(want->length, got->length) << f << " -> " << t;
      }
    }
  }
  EXPECT_EQ(faulty.injected_failures(), 0);
}

TEST(FaultyRouterTest, RouteManyInjectsExactlyTheFaultedTargets) {
  const network::RoadNetwork net = network::GenerateGridNetwork(8, 8, 200.0);
  network::FaultConfig fc;
  fc.route_failure_rate = 0.5;
  fc.seed = 9;
  network::CachedRouter plain(&net);
  network::FaultyRouter faulty(&net, fc);
  std::vector<network::SegmentId> targets;
  for (network::SegmentId t = 0; t < 40; ++t) targets.push_back(t);
  const auto want = plain.RouteMany(3, targets, 1.0e5);
  const auto got = faulty.RouteMany(3, targets, 1.0e5);
  ASSERT_EQ(got.size(), targets.size());
  for (size_t i = 0; i < targets.size(); ++i) {
    if (faulty.IsFaulted(3, targets[i])) {
      EXPECT_FALSE(got[i].has_value()) << "target " << targets[i];
    } else {
      ASSERT_EQ(want[i].has_value(), got[i].has_value());
      if (want[i].has_value()) {
        EXPECT_EQ(want[i]->segments, got[i]->segments);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// HMM-break recovery on a physically disconnected network: two road islands
// 10 km apart guarantee that no route between them exists, so every matcher
// family must split, restart, and stitch instead of failing the trajectory.
// ---------------------------------------------------------------------------

struct IslandHarness {
  static constexpr double kIslandOffset = 10000.0;

  network::RoadNetwork net;
  std::unique_ptr<network::GridIndex> index;
  std::unique_ptr<network::CachedRouter> cached;
  hmm::ClassicModelConfig models;
  std::unique_ptr<hmm::GaussianObservationModel> obs;
  std::unique_ptr<hmm::ClassicTransitionModel> trans;

  IslandHarness() {
    for (int island = 0; island < 2; ++island) {
      const double x0 = island * kIslandOffset;
      std::vector<network::NodeId> nodes;
      for (int i = 0; i < 5; ++i) {
        nodes.push_back(net.AddNode({x0 + i * 200.0, 0.0}));
      }
      for (int i = 0; i + 1 < 5; ++i) {
        net.AddTwoWay(nodes[i], nodes[i + 1], 13.9, network::RoadLevel::kLocal);
      }
    }
    index = std::make_unique<network::GridIndex>(&net, 150.0);
    cached = std::make_unique<network::CachedRouter>(&net);
    models.obs_sigma = 120.0;
    models.search_radius = 500.0;
    obs = std::make_unique<hmm::GaussianObservationModel>(index.get(), models);
    trans = std::make_unique<hmm::ClassicTransitionModel>(models, &net);
  }

  hmm::Engine MakeEngine(int k = 6) {
    hmm::EngineConfig config;
    config.k = k;
    return hmm::Engine(&net, cached.get(), obs.get(), trans.get(), config);
  }

  hmm::OnlineMatcher MakeOnline(int lag, int k = 6) {
    hmm::OnlineConfig config;
    config.k = k;
    config.lag = lag;
    return hmm::OnlineMatcher(&net, cached.get(), obs.get(), trans.get(), config);
  }

  /// 3 points along island A then 3 along island B; crossing is unroutable.
  static traj::Trajectory CrossIslands() {
    traj::Trajectory t;
    int i = 0;
    for (double x : {100.0, 300.0, 500.0}) {
      t.points.push_back(P(x, 10.0, 30.0 * i++));
    }
    for (double x : {100.0, 300.0, 500.0}) {
      t.points.push_back(P(kIslandOffset + x, 10.0, 30.0 * i++));
    }
    return t;
  }

  bool PathTouchesBothIslands(const std::vector<network::SegmentId>& path) const {
    bool a = false;
    bool b = false;
    for (network::SegmentId sid : path) {
      const double x = net.node(net.segment(sid).from).pos.x;
      (x < kIslandOffset / 2 ? a : b) = true;
    }
    return a && b;
  }
};

TEST(BreakRecoveryTest, EngineRestartsAcrossTheDisconnectedGap) {
  IslandHarness h;
  hmm::Engine engine = h.MakeEngine();
  const hmm::EngineResult r = engine.Match(IslandHarness::CrossIslands());
  ASSERT_EQ(r.num_breaks(), 1);
  EXPECT_EQ(r.breaks[0], 3);  // First point of island B.
  EXPECT_FALSE(r.path.empty());
  EXPECT_TRUE(h.PathTouchesBothIslands(r.path));
  // The gap spans t=60..90 of a 150 s trajectory.
  EXPECT_DOUBLE_EQ(r.gap_seconds, 30.0);
  EXPECT_NEAR(r.gap_coverage, 1.0 - 30.0 / 150.0, 1e-12);
}

TEST(BreakRecoveryTest, CleanTrajectoryReportsNoBreaks) {
  IslandHarness h;
  traj::Trajectory t;
  int i = 0;
  for (double x : {100.0, 300.0, 500.0, 700.0}) {
    t.points.push_back(P(x, 10.0, 30.0 * i++));
  }
  hmm::Engine engine = h.MakeEngine();
  const hmm::EngineResult r = engine.Match(t);
  EXPECT_EQ(r.num_breaks(), 0);
  EXPECT_DOUBLE_EQ(r.gap_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.gap_coverage, 1.0);
  EXPECT_FALSE(r.path.empty());
}

TEST(BreakRecoveryTest, StitchedPathEqualsTheIslandHalvesConcatenated) {
  IslandHarness h;
  hmm::Engine engine = h.MakeEngine();
  const traj::Trajectory full = IslandHarness::CrossIslands();
  traj::Trajectory a;
  a.points.assign(full.points.begin(), full.points.begin() + 3);
  traj::Trajectory b;
  b.points.assign(full.points.begin() + 3, full.points.end());

  const hmm::EngineResult rf = engine.Match(full);
  const hmm::EngineResult ra = engine.Match(a);
  const hmm::EngineResult rb = engine.Match(b);
  EXPECT_EQ(ra.num_breaks(), 0);
  EXPECT_EQ(rb.num_breaks(), 0);
  std::vector<network::SegmentId> expected = ra.path;
  expected.insert(expected.end(), rb.path.begin(), rb.path.end());
  EXPECT_EQ(rf.path, expected);
}

TEST(BreakRecoveryTest, OnlineMatcherStitchesAndCountsBreaks) {
  IslandHarness h;
  const traj::Trajectory t = IslandHarness::CrossIslands();
  hmm::OnlineMatcher online = h.MakeOnline(/*lag=*/16);
  for (int i = 0; i < t.size(); ++i) online.Push(t[i]);
  online.Finish();
  EXPECT_EQ(online.breaks(), 1);
  EXPECT_TRUE(h.PathTouchesBothIslands(online.committed()));
  // Full look-ahead still reproduces the offline stitched path exactly.
  hmm::Engine engine = h.MakeEngine();
  EXPECT_EQ(online.committed(), engine.Match(t).path);
  // Small lags must stitch too, without look-ahead to soften the gap.
  hmm::OnlineMatcher greedy = h.MakeOnline(/*lag=*/1);
  for (int i = 0; i < t.size(); ++i) greedy.Push(t[i]);
  greedy.Finish();
  EXPECT_GE(greedy.breaks(), 1);
  EXPECT_TRUE(h.PathTouchesBothIslands(greedy.committed()));
}

TEST(BreakRecoveryTest, StmAndIvmmSurviveTheGap) {
  IslandHarness h;
  const traj::Trajectory t = IslandHarness::CrossIslands();

  hmm::EngineConfig ec;
  ec.k = 6;
  matchers::StmMatcher stm(&h.net, h.index.get(), h.models, ec);
  const matchers::MatchResult rs = stm.Match(t);
  EXPECT_EQ(rs.num_breaks, 1);
  EXPECT_NEAR(rs.gap_coverage, 1.0 - 30.0 / 150.0, 1e-12);
  EXPECT_TRUE(h.PathTouchesBothIslands(rs.path));

  matchers::IvmmMatcher ivmm(&h.net, h.index.get(), h.models, 6);
  const matchers::MatchResult ri = ivmm.Match(t);
  EXPECT_EQ(ri.num_breaks, 1);
  EXPECT_NEAR(ri.gap_coverage, 1.0 - 30.0 / 150.0, 1e-12);
  EXPECT_TRUE(h.PathTouchesBothIslands(ri.path));
}

TEST(BreakRecoveryTest, StreamSessionStatsCarryTheBreakCount) {
  IslandHarness h;
  hmm::ClassicModelConfig models = h.models;
  hmm::EngineConfig ec;
  ec.k = 6;
  const network::RoadNetwork* net = &h.net;
  const network::GridIndex* index = h.index.get();
  matchers::StreamEngineConfig cfg;
  cfg.num_threads = 1;
  cfg.lag = 2;
  matchers::StreamEngine engine(
      [net, index, models, ec] {
        return std::make_unique<matchers::StmMatcher>(net, index, models, ec);
      },
      cfg);
  const matchers::SessionId id = engine.Open();
  const traj::Trajectory t = IslandHarness::CrossIslands();
  for (int i = 0; i < t.size(); ++i) EXPECT_TRUE(engine.Push(id, t[i]).ok());
  EXPECT_TRUE(engine.Finish(id).ok());
  engine.Barrier();
  EXPECT_GE(engine.Stats(id).breaks, 1);
  EXPECT_GE(engine.TotalStats().breaks, 1);
  EXPECT_TRUE(h.PathTouchesBothIslands(engine.Committed(id)));
}

// ---------------------------------------------------------------------------
// StreamEngine hardening: validation, eviction, backpressure, quarantine.
// ---------------------------------------------------------------------------

class StreamHardeningTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    net_ = new network::RoadNetwork(network::GenerateGridNetwork(8, 8, 200.0));
    index_ = new network::GridIndex(net_, 150.0);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete net_;
    index_ = nullptr;
    net_ = nullptr;
  }

  static matchers::MatcherFactory StmFactory() {
    const network::RoadNetwork* net = net_;
    const network::GridIndex* index = index_;
    hmm::ClassicModelConfig models;
    models.obs_sigma = 120.0;
    models.search_radius = 500.0;
    hmm::EngineConfig engine;
    engine.k = 8;
    return [net, index, models, engine] {
      return std::make_unique<matchers::StmMatcher>(net, index, models, engine);
    };
  }

  /// Walks left-to-right along grid row `row` (rows are 200 m apart).
  static traj::Trajectory Walk(int points, int row = 0, double t0 = 0.0) {
    traj::Trajectory t;
    for (int i = 0; i < points; ++i) {
      t.points.push_back(P(100.0 + i * 250.0, 10.0 + row * 200.0, t0 + i * 20.0));
    }
    return t;
  }

  static network::RoadNetwork* net_;
  static network::GridIndex* index_;
};

network::RoadNetwork* StreamHardeningTest::net_ = nullptr;
network::GridIndex* StreamHardeningTest::index_ = nullptr;

TEST_F(StreamHardeningTest, PushValidationRejectsMalformedPoints) {
  matchers::StreamEngineConfig cfg;
  cfg.num_threads = 1;
  cfg.lag = 2;
  matchers::StreamEngine engine(StmFactory(), cfg);
  const matchers::SessionId id = engine.Open();
  const traj::Trajectory t = Walk(5);
  EXPECT_TRUE(engine.Push(id, t[0]).ok());
  EXPECT_TRUE(engine.Push(id, t[1]).ok());

  const core::Status nan = engine.Push(id, P(kNaN, 10.0, 100.0));
  EXPECT_EQ(nan.code(), core::StatusCode::kInvalidArgument);
  const core::Status backwards = engine.Push(id, P(600.0, 10.0, t[1].t - 5.0));
  EXPECT_EQ(backwards.code(), core::StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.rejected_pushes(), 2);

  for (int i = 2; i < t.size(); ++i) EXPECT_TRUE(engine.Push(id, t[i]).ok());
  EXPECT_TRUE(engine.Finish(id).ok());
  engine.Barrier();
  EXPECT_TRUE(engine.finished(id));
  EXPECT_EQ(engine.state(id), matchers::SessionState::kFinished);
  EXPECT_EQ(engine.Stats(id).points_pushed, t.size());
  EXPECT_FALSE(engine.Committed(id).empty());

  // Closed sessions refuse further traffic instead of crashing.
  EXPECT_EQ(engine.Finish(id).code(), core::StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine.Push(id, t[0]).code(),
            core::StatusCode::kFailedPrecondition);
}

TEST_F(StreamHardeningTest, LiveSessionCapEvictsLeastRecentlyActive) {
  matchers::StreamEngineConfig cfg;
  cfg.num_threads = 1;
  cfg.lag = 1;
  cfg.max_live_sessions = 2;
  matchers::StreamEngine engine(StmFactory(), cfg);
  const matchers::SessionId s0 = engine.Open();
  const matchers::SessionId s1 = engine.Open();
  EXPECT_EQ(engine.live_sessions(), 2);

  // All activity stamps tie at clock 0; the id order breaks the tie, so s0
  // is the victim — deterministically.
  const matchers::SessionId s2 = engine.Open();
  EXPECT_EQ(engine.live_sessions(), 2);
  EXPECT_EQ(engine.evicted_sessions(), 1);
  EXPECT_EQ(engine.state(s0), matchers::SessionState::kEvicted);
  EXPECT_EQ(engine.Push(s0, P(100, 10, 0)).code(),
            core::StatusCode::kFailedPrecondition);

  // A Push refreshes last_activity, so the idle session loses instead.
  engine.AdvanceClock(5);
  EXPECT_TRUE(engine.Push(s1, P(100, 10, 0)).ok());
  const matchers::SessionId s3 = engine.Open();
  EXPECT_EQ(engine.state(s2), matchers::SessionState::kEvicted);
  EXPECT_EQ(engine.state(s1), matchers::SessionState::kLive);
  EXPECT_EQ(engine.evicted_sessions(), 2);
  EXPECT_TRUE(engine.Finish(s1).ok());
  EXPECT_TRUE(engine.Finish(s3).ok());
}

TEST_F(StreamHardeningTest, IdleTtlEvictionFollowsTheLogicalClock) {
  matchers::StreamEngineConfig cfg;
  cfg.num_threads = 1;
  cfg.lag = 1;
  cfg.session_ttl = 10;
  matchers::StreamEngine engine(StmFactory(), cfg);
  const matchers::SessionId s0 = engine.Open();  // Active at clock 0.
  engine.AdvanceClock(9);
  EXPECT_EQ(engine.state(s0), matchers::SessionState::kLive);
  const matchers::SessionId s1 = engine.Open();  // Active at clock 9.
  engine.AdvanceClock(10);                       // s0 idle 10 >= ttl.
  EXPECT_EQ(engine.state(s0), matchers::SessionState::kEvicted);
  EXPECT_EQ(engine.state(s1), matchers::SessionState::kLive);
  EXPECT_EQ(engine.evicted_sessions(), 1);
  EXPECT_EQ(engine.clock(), 10);
  // The clock never moves backwards.
  engine.AdvanceClock(4);
  EXPECT_EQ(engine.clock(), 10);
  EXPECT_TRUE(engine.Finish(s1).ok());
}

TEST_F(StreamHardeningTest, EvictionSequenceIsDeterministicAcrossThreadCounts) {
  struct Outcome {
    std::vector<matchers::SessionState> states;
    std::vector<std::vector<network::SegmentId>> committed;
    std::vector<int64_t> pushed;
    int64_t evicted = 0;
    int64_t rejected = 0;
  };
  // A scripted producer: opens outrun the cap, pushes refresh some sessions,
  // the clock ticks TTL over others, and pushes to evicted sessions bounce.
  // Everything that decides an eviction lives on the producer side, so the
  // whole outcome must be identical for 1 worker and 8.
  const auto run = [](int threads) {
    matchers::StreamEngineConfig cfg;
    cfg.num_threads = threads;
    cfg.lag = 2;
    cfg.max_live_sessions = 3;
    cfg.session_ttl = 20;
    matchers::StreamEngine engine(StreamHardeningTest::StmFactory(), cfg);
    std::vector<matchers::SessionId> ids;
    std::vector<traj::Trajectory> trajs;
    Outcome out;
    for (int i = 0; i < 6; ++i) {
      ids.push_back(engine.Open());
      trajs.push_back(Walk(8, i % 7));
      for (int p = 0; p < 3; ++p) {
        engine.Push(ids[i], trajs[i][p]);
      }
      engine.AdvanceClock(i * 7);
    }
    for (int i = 0; i < 6; ++i) {
      for (int p = 3; p < trajs[i].size(); ++p) {
        if (!engine.Push(ids[i], trajs[i][p]).ok()) ++out.rejected;
      }
      if (i % 2 == 0) engine.Finish(ids[i]);
    }
    engine.AdvanceClock(100);  // TTL-evict whatever is still live.
    engine.Barrier();
    for (int i = 0; i < 6; ++i) {
      out.states.push_back(engine.state(ids[i]));
      out.committed.push_back(engine.Committed(ids[i]));
      out.pushed.push_back(engine.Stats(ids[i]).points_pushed);
    }
    out.evicted = engine.evicted_sessions();
    return out;
  };

  const Outcome serial = run(1);
  EXPECT_GT(serial.evicted, 0);  // The script actually forces evictions.
  const Outcome parallel = run(8);
  EXPECT_EQ(parallel.states, serial.states);
  EXPECT_EQ(parallel.committed, serial.committed);
  EXPECT_EQ(parallel.pushed, serial.pushed);
  EXPECT_EQ(parallel.evicted, serial.evicted);
  EXPECT_EQ(parallel.rejected, serial.rejected);
}

// A StreamingSession that blocks inside Push until released, so tests can
// deterministically fill a session's inbox while its pump is busy.
struct Gate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool open = false;

  void Enter() {
    {
      std::lock_guard<std::mutex> lock(mu);
      entered = true;
    }
    cv.notify_all();
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return entered; });
  }
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  void WaitOpen() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return open; });
  }
};

class GateSession : public matchers::StreamingSession {
 public:
  explicit GateSession(Gate* gate) : gate_(gate) {}
  std::vector<network::SegmentId> Push(const traj::TrajPoint& point) override {
    gate_->Enter();
    gate_->WaitOpen();
    committed_.push_back(static_cast<network::SegmentId>(point.tower));
    ++stats_.points_pushed;
    ++stats_.points_committed;
    return {committed_.back()};
  }
  std::vector<network::SegmentId> Finish() override { return {}; }
  void Reset() override {
    committed_.clear();
    stats_ = {};
  }
  const std::vector<network::SegmentId>& committed() const override {
    return committed_;
  }
  matchers::SessionStats stats() const override { return stats_; }

 private:
  Gate* gate_;
  std::vector<network::SegmentId> committed_;
  matchers::SessionStats stats_;
};

class GateMatcher : public matchers::MapMatcher {
 public:
  explicit GateMatcher(Gate* gate) : gate_(gate) {}
  std::string name() const override { return "gate"; }
  matchers::MatchResult Match(const traj::Trajectory&) override { return {}; }
  bool SupportsStreaming() const override { return true; }
  std::unique_ptr<matchers::StreamingSession> OpenSession(
      const matchers::StreamConfig&) override {
    return std::make_unique<GateSession>(gate_);
  }

 private:
  Gate* gate_;
};

TEST(StreamBackpressureTest, DropOldestBoundsTheInboxAndKeepsTheSentinel) {
  Gate gate;
  matchers::StreamEngineConfig cfg;
  cfg.num_threads = 2;
  cfg.max_inbox = 3;
  cfg.backpressure = matchers::BackpressurePolicy::kDropOldest;
  matchers::StreamEngine engine(
      [&gate] { return std::make_unique<GateMatcher>(&gate); }, cfg);
  const matchers::SessionId id = engine.Open();
  // Point 0 is swapped out of the inbox by the pump, which then blocks on the
  // gate; every later push queues behind it.
  ASSERT_TRUE(engine.Push(id, P(0, 0, 0, 0)).ok());
  gate.WaitEntered();
  for (int k = 1; k <= 10; ++k) {
    EXPECT_TRUE(engine.Push(id, P(0, 0, k, k)).ok()) << "push " << k;
  }
  // Capacity 3: pushes 1..3 fill the inbox, 4..10 each displace the oldest.
  EXPECT_EQ(engine.dropped_points(), 7);
  EXPECT_EQ(engine.rejected_pushes(), 0);
  // The end-of-stream sentinel is exempt from the bound — never dropped.
  EXPECT_TRUE(engine.Finish(id).ok());
  EXPECT_EQ(engine.dropped_points(), 7);
  gate.Release();
  engine.Barrier();
  EXPECT_TRUE(engine.finished(id));
  const std::vector<network::SegmentId> want = {0, 8, 9, 10};
  EXPECT_EQ(engine.Committed(id), want);
  EXPECT_EQ(engine.Stats(id).points_pushed, 4);
}

TEST(StreamBackpressureTest, RejectPolicyRefusesPushesOnAFullInbox) {
  Gate gate;
  matchers::StreamEngineConfig cfg;
  cfg.num_threads = 2;
  cfg.max_inbox = 3;
  cfg.backpressure = matchers::BackpressurePolicy::kReject;
  matchers::StreamEngine engine(
      [&gate] { return std::make_unique<GateMatcher>(&gate); }, cfg);
  const matchers::SessionId id = engine.Open();
  ASSERT_TRUE(engine.Push(id, P(0, 0, 0, 0)).ok());
  gate.WaitEntered();
  for (int k = 1; k <= 3; ++k) {
    EXPECT_TRUE(engine.Push(id, P(0, 0, k, k)).ok()) << "push " << k;
  }
  for (int k = 4; k <= 6; ++k) {
    const core::Status full = engine.Push(id, P(0, 0, k, k));
    // kUnavailable is the typed "retry with backoff" answer clients key on.
    EXPECT_EQ(full.code(), core::StatusCode::kUnavailable);
    EXPECT_NE(full.message().find("inbox full"), std::string::npos);
  }
  EXPECT_EQ(engine.rejected_pushes(), 3);
  EXPECT_EQ(engine.dropped_points(), 0);
  EXPECT_TRUE(engine.Finish(id).ok());  // Sentinel bypasses the bound.
  gate.Release();
  engine.Barrier();
  const std::vector<network::SegmentId> want = {0, 1, 2, 3};
  EXPECT_EQ(engine.Committed(id), want);
}

// A session that throws on a marked point: the quarantine trigger.
class ThrowingSession : public matchers::StreamingSession {
 public:
  std::vector<network::SegmentId> Push(const traj::TrajPoint& point) override {
    if (point.tower == 666) throw std::runtime_error("poison pill");
    committed_.push_back(static_cast<network::SegmentId>(point.tower));
    ++stats_.points_pushed;
    ++stats_.points_committed;
    return {committed_.back()};
  }
  std::vector<network::SegmentId> Finish() override { return {}; }
  void Reset() override {
    committed_.clear();
    stats_ = {};
  }
  const std::vector<network::SegmentId>& committed() const override {
    return committed_;
  }
  matchers::SessionStats stats() const override { return stats_; }

 private:
  std::vector<network::SegmentId> committed_;
  matchers::SessionStats stats_;
};

class ThrowingMatcher : public matchers::MapMatcher {
 public:
  std::string name() const override { return "throwing"; }
  matchers::MatchResult Match(const traj::Trajectory&) override { return {}; }
  bool SupportsStreaming() const override { return true; }
  std::unique_ptr<matchers::StreamingSession> OpenSession(
      const matchers::StreamConfig&) override {
    return std::make_unique<ThrowingSession>();
  }
};

TEST(StreamQuarantineTest, PoisonedSessionReportsItsErrorAndStaysContained) {
  matchers::StreamEngineConfig cfg;
  cfg.num_threads = 1;  // Inline mode: the catch sits in Enqueue.
  matchers::StreamEngine engine(
      [] { return std::make_unique<ThrowingMatcher>(); }, cfg);
  const matchers::SessionId a = engine.Open();
  const matchers::SessionId b = engine.Open();
  EXPECT_TRUE(engine.Push(a, P(0, 0, 0, 1)).ok());
  EXPECT_TRUE(engine.Push(a, P(0, 0, 1, 666)).ok());  // Enqueued, then throws.
  EXPECT_EQ(engine.state(a), matchers::SessionState::kPoisoned);
  EXPECT_FALSE(engine.finished(a));
  const core::Status err = engine.SessionError(a);
  EXPECT_EQ(err.code(), core::StatusCode::kInternal);
  EXPECT_NE(err.message().find("session poisoned"), std::string::npos);
  EXPECT_NE(err.message().find("poison pill"), std::string::npos);
  // Later pushes bounce with the stored error instead of reaching the pump.
  EXPECT_EQ(engine.Push(a, P(0, 0, 2, 2)).code(), core::StatusCode::kInternal);

  // The sibling session is untouched by the quarantine.
  EXPECT_TRUE(engine.Push(b, P(0, 0, 0, 7)).ok());
  EXPECT_TRUE(engine.Push(b, P(0, 0, 1, 8)).ok());
  EXPECT_TRUE(engine.Finish(b).ok());
  const std::vector<network::SegmentId> want = {7, 8};
  EXPECT_EQ(engine.Committed(b), want);
  EXPECT_EQ(engine.state(b), matchers::SessionState::kFinished);
}

TEST(StreamQuarantineTest, PoisonNeverCrashesThePoolOrItsNeighbors) {
  matchers::StreamEngineConfig cfg;
  cfg.num_threads = 4;
  matchers::StreamEngine engine(
      [] { return std::make_unique<ThrowingMatcher>(); }, cfg);
  const int n = 20;
  std::vector<matchers::SessionId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(engine.Open());
  for (int i = 0; i < n; ++i) {
    for (int p = 0; p < 5; ++p) {
      const bool poison = (i % 5 == 2) && p == 2;
      engine.Push(ids[i], P(0, 0, p, poison ? 666 : 10 * i + p));
    }
    engine.Finish(ids[i]);
  }
  engine.Barrier();
  for (int i = 0; i < n; ++i) {
    if (i % 5 == 2) {
      EXPECT_EQ(engine.state(ids[i]), matchers::SessionState::kPoisoned);
      EXPECT_FALSE(engine.finished(ids[i]));
      EXPECT_EQ(engine.SessionError(ids[i]).code(),
                core::StatusCode::kInternal);
    } else {
      EXPECT_EQ(engine.state(ids[i]), matchers::SessionState::kFinished);
      const std::vector<network::SegmentId> want = {
          10 * i + 0, 10 * i + 1, 10 * i + 2, 10 * i + 3, 10 * i + 4};
      EXPECT_EQ(engine.Committed(ids[i]), want);
    }
  }
}

TEST_F(StreamHardeningTest, SoakThousandSessionsWithEvictionChurn) {
  network::CachedRouter shared(net_);
  matchers::StreamEngineConfig cfg;
  cfg.num_threads = 8;
  cfg.lag = 2;
  cfg.shared_router = &shared;
  cfg.max_live_sessions = 64;
  cfg.session_ttl = 50;
  cfg.max_inbox = 16;
  cfg.backpressure = matchers::BackpressurePolicy::kDropOldest;
  matchers::StreamEngine engine(StmFactory(), cfg);
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const matchers::SessionId id = engine.Open();
    const traj::Trajectory t = Walk(6, i % 7);
    for (int p = 0; p < t.size(); ++p) engine.Push(id, t[p]);
    // Every 7th session is abandoned mid-stream; the cap and the TTL must
    // reap them without disturbing the rest.
    if (i % 7 != 3) engine.Finish(id);
    if (i % 10 == 0) engine.AdvanceClock(i / 10);
  }
  engine.Barrier();
  ASSERT_EQ(engine.num_sessions(), n);
  EXPECT_LE(engine.live_sessions(), 64);
  int finished = 0;
  int evicted = 0;
  int live = 0;
  for (matchers::SessionId id = 0; id < n; ++id) {
    switch (engine.state(id)) {
      case matchers::SessionState::kFinished:
        ++finished;
        EXPECT_FALSE(engine.Committed(id).empty()) << "session " << id;
        break;
      case matchers::SessionState::kEvicted:
        ++evicted;
        break;
      case matchers::SessionState::kLive:
        ++live;
        break;
      case matchers::SessionState::kExpired:
        ADD_FAILURE() << "session " << id << " expired without a deadline";
        break;
      case matchers::SessionState::kPoisoned:
        ADD_FAILURE() << "session " << id << " poisoned: "
                      << engine.SessionError(id).message();
        break;
    }
  }
  EXPECT_EQ(finished + evicted + live, n);
  EXPECT_EQ(finished, n - n / 7 - 1);  // Every i % 7 == 3 session was reaped.
  EXPECT_EQ(evicted, engine.evicted_sessions());
  EXPECT_GT(evicted, 0);
  EXPECT_EQ(live, engine.live_sessions());
  EXPECT_GT(engine.TotalStats().points_pushed, 0);
}

// ---------------------------------------------------------------------------
// End to end: corrupted input + sanitize + 10% route faults through
// STM / IVMM / LHMM, byte-identical across thread counts.
// ---------------------------------------------------------------------------

class FaultedPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::DatasetConfig cfg = sim::XiamenSPreset();
    cfg.num_train = 25;
    cfg.num_val = 3;
    cfg.num_test = 8;
    ds_ = new sim::Dataset(sim::BuildDataset(cfg));
    index_ = new network::GridIndex(&ds_->network, 300.0);
    lhmm::LhmmConfig lhmm_cfg;
    lhmm_cfg.obs_steps = 2;
    lhmm_cfg.trans_steps = 2;
    lhmm_cfg.fusion_steps = 5;
    lhmm_cfg.encoder.dim = 24;
    lhmm::TrainInputs inputs;
    inputs.net = &ds_->network;
    inputs.index = index_;
    inputs.num_towers = static_cast<int>(ds_->towers.size());
    inputs.train = &ds_->train;
    model_ = new std::shared_ptr<lhmm::LhmmModel>(TrainLhmm(inputs, lhmm_cfg));

    // Corrupt every test feed, then run it through the serving-side repair
    // pipeline: Sanitize(kRepair) followed by the standard preprocessing.
    traj::SanitizeConfig sanitize;
    sanitize.policy = traj::SanitizePolicy::kRepair;
    sanitize.num_towers = static_cast<int>(ds_->towers.size());
    sanitize.network_bounds = ds_->network.Bounds();
    traj::FilterConfig filters;
    cleaned_ = new std::vector<traj::Trajectory>();
    total_injected_ = 0;
    total_issues_ = 0;
    for (size_t i = 0; i < ds_->test.size(); ++i) {
      sim::CorruptionSummary injected;
      const traj::Trajectory bad = sim::CorruptTrajectory(
          ds_->test[i].cellular, sim::UniformCorruption(0.05, 100 + i),
          &injected);
      total_injected_ += injected.total();
      traj::SanitizeReport report;
      const auto clean = traj::Sanitize(bad, sanitize, &report);
      ASSERT_TRUE(clean.ok()) << clean.status().message();
      total_issues_ += report.issues();
      cleaned_->push_back(eval::Preprocess(*clean, filters));
    }
  }
  static void TearDownTestSuite() {
    delete cleaned_;
    delete model_;
    delete index_;
    delete ds_;
    cleaned_ = nullptr;
    model_ = nullptr;
    index_ = nullptr;
    ds_ = nullptr;
  }

  static matchers::MatcherFactory StmFactory() {
    const network::RoadNetwork* net = &ds_->network;
    const network::GridIndex* index = index_;
    hmm::ClassicModelConfig models;
    hmm::EngineConfig engine;
    engine.k = 12;
    return [=] {
      return std::make_unique<matchers::StmMatcher>(net, index, models, engine);
    };
  }

  static matchers::MatcherFactory IvmmFactory() {
    const network::RoadNetwork* net = &ds_->network;
    const network::GridIndex* index = index_;
    hmm::ClassicModelConfig models;
    return [=] {
      return std::make_unique<matchers::IvmmMatcher>(net, index, models, 10);
    };
  }

  static matchers::MatcherFactory LhmmFactory() {
    const network::RoadNetwork* net = &ds_->network;
    const network::GridIndex* index = index_;
    std::shared_ptr<lhmm::LhmmModel> model = *model_;
    return [=] { return std::make_unique<lhmm::LhmmMatcher>(net, index, model); };
  }

  /// One batch run of the whole corrupted-and-repaired test set against a
  /// fresh 10%-faulted router.
  static std::vector<matchers::MatchResult> RunFaulted(
      const matchers::MatcherFactory& factory, int threads,
      int64_t* injected_failures = nullptr) {
    network::FaultConfig fc;
    fc.route_failure_rate = 0.10;
    fc.seed = 7;
    network::FaultyRouter faulty(&ds_->network, fc);
    matchers::BatchConfig bc;
    bc.num_threads = threads;
    bc.shared_router = &faulty;
    matchers::BatchMatcher batch(factory, bc);
    std::vector<matchers::MatchResult> results = batch.MatchAll(*cleaned_);
    if (injected_failures != nullptr) {
      *injected_failures = faulty.injected_failures();
    }
    return results;
  }

  /// The acceptance contract: every trajectory still yields a non-empty
  /// (possibly stitched) path under faults, and results — paths, break
  /// counts, gap coverage — are byte-identical for 1 and 8 threads.
  static void ExpectFaultedMatchIsThreadInvariant(
      const matchers::MatcherFactory& factory) {
    int64_t injected = 0;
    const std::vector<matchers::MatchResult> serial =
        RunFaulted(factory, 1, &injected);
    EXPECT_GT(injected, 0);  // The fault injector actually fired.
    const std::vector<matchers::MatchResult> parallel = RunFaulted(factory, 8);
    ASSERT_EQ(serial.size(), cleaned_->size());
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_FALSE(serial[i].path.empty()) << "trajectory " << i;
      EXPECT_EQ(parallel[i].path, serial[i].path) << "trajectory " << i;
      EXPECT_EQ(parallel[i].num_breaks, serial[i].num_breaks)
          << "trajectory " << i;
      EXPECT_DOUBLE_EQ(parallel[i].gap_coverage, serial[i].gap_coverage)
          << "trajectory " << i;
      EXPECT_GE(serial[i].num_breaks, 0);
      EXPECT_GE(serial[i].gap_coverage, 0.0);
      EXPECT_LE(serial[i].gap_coverage, 1.0);
    }
  }

  static sim::Dataset* ds_;
  static network::GridIndex* index_;
  static std::shared_ptr<lhmm::LhmmModel>* model_;
  static std::vector<traj::Trajectory>* cleaned_;
  static int total_injected_;
  static int total_issues_;
};

sim::Dataset* FaultedPipelineTest::ds_ = nullptr;
network::GridIndex* FaultedPipelineTest::index_ = nullptr;
std::shared_ptr<lhmm::LhmmModel>* FaultedPipelineTest::model_ = nullptr;
std::vector<traj::Trajectory>* FaultedPipelineTest::cleaned_ = nullptr;
int FaultedPipelineTest::total_injected_ = 0;
int FaultedPipelineTest::total_issues_ = 0;

TEST_F(FaultedPipelineTest, CorruptionWasInjectedAndRepaired) {
  EXPECT_GT(total_injected_, 0);
  EXPECT_GT(total_issues_, 0);
  // Whatever the corruptor did, the repaired feeds are structurally sound.
  for (const traj::Trajectory& t : *cleaned_) {
    for (int i = 0; i < t.size(); ++i) {
      EXPECT_TRUE(std::isfinite(t[i].pos.x) && std::isfinite(t[i].pos.y) &&
                  std::isfinite(t[i].t));
      if (i > 0) {
        EXPECT_GT(t[i].t, t[i - 1].t);
      }
    }
  }
}

TEST_F(FaultedPipelineTest, StmSurvivesFaultsThreadInvariant) {
  ExpectFaultedMatchIsThreadInvariant(StmFactory());
}

TEST_F(FaultedPipelineTest, IvmmSurvivesFaultsThreadInvariant) {
  ExpectFaultedMatchIsThreadInvariant(IvmmFactory());
}

TEST_F(FaultedPipelineTest, LhmmSurvivesFaultsThreadInvariant) {
  ExpectFaultedMatchIsThreadInvariant(LhmmFactory());
}

TEST_F(FaultedPipelineTest, StreamingConvergesToOfflineUnderFaults) {
  network::FaultConfig fc;
  fc.route_failure_rate = 0.10;
  fc.seed = 7;
  network::FaultyRouter faulty(&ds_->network, fc);
  const std::unique_ptr<matchers::MapMatcher> matcher = StmFactory()();
  matcher->UseSharedRouter(&faulty);
  int max_len = 0;
  for (const traj::Trajectory& t : *cleaned_) max_len = std::max(max_len, t.size());
  matchers::StreamConfig sc;
  sc.lag = max_len + 4;
  const std::unique_ptr<matchers::StreamingSession> session =
      matcher->OpenSession(sc);
  ASSERT_NE(session, nullptr);
  auto* online = dynamic_cast<matchers::OnlineSession*>(session.get());
  ASSERT_NE(online, nullptr);
  for (size_t i = 0; i < cleaned_->size(); ++i) {
    const traj::Trajectory& t = (*cleaned_)[i];
    const std::vector<network::SegmentId> offline = online->MatchOffline(t).path;
    session->Reset();
    for (int p = 0; p < t.size(); ++p) session->Push(t[p]);
    session->Finish();
    EXPECT_EQ(session->committed(), offline) << "trajectory " << i;
    EXPECT_FALSE(session->committed().empty()) << "trajectory " << i;
  }
  EXPECT_GT(faulty.injected_failures(), 0);
}

}  // namespace
}  // namespace lhmm
