#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "io/dataset_io.h"
#include "io/network_io.h"
#include "io/osm_xml.h"
#include "io/trajectory_io.h"
#include "network/generators.h"
#include "sim/dataset.h"
#include "viz/svg.h"

namespace lhmm::io {
namespace {

TEST(NetworkIoTest, CsvRoundTrip) {
  network::CityNetworkConfig cfg;
  cfg.width = 2500.0;
  cfg.height = 2000.0;
  const network::RoadNetwork net = network::GenerateCityNetwork(cfg);

  const std::string prefix = "/tmp/lhmm_net_io_test";
  ASSERT_TRUE(SaveNetworkCsv(net, prefix).ok());
  const auto loaded = LoadNetworkCsv(prefix);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded->num_nodes(), net.num_nodes());
  ASSERT_EQ(loaded->num_segments(), net.num_segments());
  for (network::NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_NEAR(loaded->node(v).pos.x, net.node(v).pos.x, 0.01);
    EXPECT_NEAR(loaded->node(v).pos.y, net.node(v).pos.y, 0.01);
  }
  for (network::SegmentId s = 0; s < net.num_segments(); ++s) {
    EXPECT_EQ(loaded->segment(s).from, net.segment(s).from);
    EXPECT_EQ(loaded->segment(s).to, net.segment(s).to);
    EXPECT_EQ(loaded->segment(s).reverse, net.segment(s).reverse);
    EXPECT_EQ(loaded->segment(s).level, net.segment(s).level);
    EXPECT_NEAR(loaded->segment(s).length, net.segment(s).length, 0.05);
  }
  EXPECT_TRUE(loaded->Validate().ok());
  std::filesystem::remove(prefix + std::string("_nodes.csv"));
  std::filesystem::remove(prefix + std::string("_segments.csv"));
}

TEST(NetworkIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadNetworkCsv("/tmp/definitely_not_there").ok());
}

namespace {
/// Overwrites `path` with `content` (corrupt-file fixture helper).
void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

/// Saves a tiny valid network bundle prefix for corruption tests.
std::string SaveTinyNetwork(const std::string& prefix) {
  const network::RoadNetwork net = network::GenerateGridNetwork(3, 3, 100.0);
  EXPECT_TRUE(SaveNetworkCsv(net, prefix).ok());
  return prefix;
}
}  // namespace

TEST(NetworkIoTest, TruncatedSegmentsRowReportsFileAndLine) {
  const std::string prefix = SaveTinyNetwork("/tmp/lhmm_corrupt_net");
  // Chop the last row mid-field: a crash halfway through a writer does this.
  WriteFile(prefix + "_segments.csv",
            "id,from,to,length,speed_limit,level,reverse,polyline\n"
            "0,0,1,100.0,13.9\n");
  const auto loaded = LoadNetworkCsv(prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("_segments.csv line 2"),
            std::string::npos)
      << loaded.status().ToString();
  std::filesystem::remove(prefix + std::string("_nodes.csv"));
  std::filesystem::remove(prefix + std::string("_segments.csv"));
}

TEST(NetworkIoTest, EmptyNodesFileReportsTruncation) {
  const std::string prefix = SaveTinyNetwork("/tmp/lhmm_corrupt_net2");
  WriteFile(prefix + "_nodes.csv", "");
  const auto loaded = LoadNetworkCsv(prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("_nodes.csv"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos)
      << loaded.status().ToString();
  std::filesystem::remove(prefix + std::string("_nodes.csv"));
  std::filesystem::remove(prefix + std::string("_segments.csv"));
}

TEST(NetworkIoTest, GarbageCoordinatesNameTheLine) {
  const std::string prefix = SaveTinyNetwork("/tmp/lhmm_corrupt_net3");
  WriteFile(prefix + "_nodes.csv",
            "id,x,y\n"
            "0,0.0,0.0\n"
            "1,oops,3.0\n");
  const auto loaded = LoadNetworkCsv(prefix);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("_nodes.csv line 3"),
            std::string::npos)
      << loaded.status().ToString();
  std::filesystem::remove(prefix + std::string("_nodes.csv"));
  std::filesystem::remove(prefix + std::string("_segments.csv"));
}

TEST(TrajectoryIoTest, CorruptRowReportsFileAndLine) {
  const std::string path = "/tmp/lhmm_corrupt_traj.csv";
  WriteFile(path,
            "traj,channel,seq,t,x,y,tower\n"
            "0,cell,0,1.0,10.0,20.0,3\n"
            "0,cell,1,not-a-time,11.0,21.0,3\n");
  WriteFile(path + ".paths", "0:1 2\n");
  const auto loaded = LoadTrajectoriesCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("lhmm_corrupt_traj.csv line 3"),
            std::string::npos)
      << loaded.status().ToString();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".paths");
}

TEST(PathIoTest, CorruptPathLineIsNamed) {
  const std::string path = "/tmp/lhmm_corrupt_paths.txt";
  WriteFile(path, "0:1 2 3\n1:4 banana 6\n");
  const auto loaded = LoadPaths(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos)
      << loaded.status().ToString();
  std::filesystem::remove(path);
}

TEST(NetworkIoTest, GeoJsonExportContainsAllSegments) {
  const network::RoadNetwork net = network::GenerateGridNetwork(3, 3, 100.0);
  const std::string path = "/tmp/lhmm_net_io_test.geojson";
  ASSERT_TRUE(ExportNetworkGeoJson(net, path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("FeatureCollection"), std::string::npos);
  size_t count = 0;
  size_t pos = 0;
  while ((pos = content.find("LineString", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, static_cast<size_t>(net.num_segments()));
  std::filesystem::remove(path);
}

TEST(TrajectoryIoTest, CsvRoundTrip) {
  sim::DatasetConfig cfg = sim::XiamenSPreset();
  cfg.num_train = 4;
  cfg.num_val = 1;
  cfg.num_test = 1;
  const sim::Dataset ds = sim::BuildDataset(cfg);

  const std::string path = "/tmp/lhmm_traj_io_test.csv";
  ASSERT_TRUE(SaveTrajectoriesCsv(ds.train, path).ok());
  const auto loaded = LoadTrajectoriesCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), ds.train.size());
  for (size_t i = 0; i < ds.train.size(); ++i) {
    const auto& a = ds.train[i];
    const auto& b = (*loaded)[i];
    ASSERT_EQ(a.cellular.size(), b.cellular.size());
    ASSERT_EQ(a.gps.size(), b.gps.size());
    EXPECT_EQ(a.truth_path, b.truth_path);
    for (int p = 0; p < a.cellular.size(); ++p) {
      EXPECT_EQ(a.cellular[p].tower, b.cellular[p].tower);
      EXPECT_NEAR(a.cellular[p].pos.x, b.cellular[p].pos.x, 0.01);
      EXPECT_NEAR(a.cellular[p].t, b.cellular[p].t, 0.01);
    }
  }
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".paths");
}

TEST(PathIoTest, RoundTripIncludingEmptyPaths) {
  const std::vector<std::vector<network::SegmentId>> paths = {
      {1, 2, 3}, {}, {42}};
  const std::string path = "/tmp/lhmm_paths_test.txt";
  ASSERT_TRUE(SavePaths(paths, path).ok());
  const auto loaded = LoadPaths(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, paths);
  std::filesystem::remove(path);
}

namespace {
/// A 2x2 block of residential streets plus a oneway primary and a footway
/// (which must be filtered out).
constexpr char kOsmSample[] = R"(<?xml version="1.0"?>
<osm version="0.6">
  <!-- a comment with <way> inside -->
  <node id="1" lat="30.2500" lon="120.1500"/>
  <node id="2" lat="30.2500" lon="120.1520"/>
  <node id="3" lat="30.2520" lon="120.1500"/>
  <node id="4" lat="30.2520" lon="120.1520"/>
  <node id="5" lat="30.2540" lon="120.1500"/>
  <way id="100">
    <nd ref="1"/><nd ref="2"/>
    <tag k="highway" v="residential"/>
  </way>
  <way id="101">
    <nd ref="1"/><nd ref="3"/><nd ref="4"/>
    <tag k="highway" v="residential"/>
    <tag k="maxspeed" v="30"/>
  </way>
  <way id="102">
    <nd ref="2"/><nd ref="4"/>
    <tag k="highway" v="primary"/>
    <tag k="oneway" v="yes"/>
    <tag k="maxspeed" v="30 mph"/>
  </way>
  <way id="103">
    <nd ref="3"/><nd ref="5"/>
    <tag k="highway" v="footway"/>
  </way>
  <way id="104">
    <nd ref="1"/><nd ref="999"/>
    <tag k="highway" v="residential"/>
  </way>
</osm>)";
}  // namespace

TEST(OsmXmlTest, ParsesRoadsAndFiltersNonDrivable) {
  OsmImportOptions options;
  options.keep_largest_scc = false;
  const auto result = ParseOsmXml(kOsmSample, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const network::RoadNetwork& net = result->net;
  // Ways 100 (two-way: 2 segs), 101 (two edges two-way: 4), 102 (oneway: 1).
  // 103 filtered (footway), 104 dropped (missing node).
  EXPECT_EQ(net.num_segments(), 7);
  EXPECT_EQ(net.num_nodes(), 4);
  EXPECT_TRUE(net.Validate().ok());

  // maxspeed parsing: way 101 at 30 km/h, way 102 at 30 mph.
  int with_30kmh = 0;
  int with_30mph = 0;
  for (const auto& seg : net.segments()) {
    if (std::abs(seg.speed_limit - 30.0 / 3.6) < 1e-6) ++with_30kmh;
    if (std::abs(seg.speed_limit - 30.0 * 0.44704) < 1e-6) ++with_30mph;
  }
  EXPECT_EQ(with_30kmh, 4);
  EXPECT_EQ(with_30mph, 1);

  // Geometry is locally projected: all within ~a few hundred meters.
  for (network::NodeId v = 0; v < net.num_nodes(); ++v) {
    EXPECT_LT(std::abs(net.node(v).pos.x), 1000.0);
    EXPECT_LT(std::abs(net.node(v).pos.y), 1000.0);
  }
}

TEST(OsmXmlTest, LargestSccPrunesOnewayDeadEnd) {
  OsmImportOptions options;  // keep_largest_scc = true by default.
  const auto result = ParseOsmXml(kOsmSample, options);
  ASSERT_TRUE(result.ok());
  // The oneway edge 2->4 can still be in the SCC via the two-way detour;
  // everything kept must be mutually reachable.
  const auto scc = result->net.LargestStronglyConnectedComponent();
  EXPECT_EQ(static_cast<int>(scc.size()), result->net.num_nodes());
}

TEST(OsmXmlTest, RejectsGarbage) {
  EXPECT_FALSE(ParseOsmXml("<osm><node id=1 lat></osm>").ok());
  EXPECT_FALSE(ParseOsmXml("<osm></osm>").ok());  // No drivable ways.
}

TEST(DatasetBundleTest, RoundTripPreservesEverythingAMatcherNeeds) {
  sim::DatasetConfig cfg = sim::XiamenSPreset();
  cfg.num_train = 5;
  cfg.num_val = 1;
  cfg.num_test = 3;
  const sim::Dataset ds = sim::BuildDataset(cfg);
  const std::string prefix = "/tmp/lhmm_bundle_test";
  ASSERT_TRUE(SaveDatasetBundle(ds, prefix).ok());
  const auto bundle = LoadDatasetBundle(prefix);
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();
  EXPECT_EQ(bundle->net.num_segments(), ds.network.num_segments());
  EXPECT_EQ(bundle->towers.size(), ds.towers.size());
  ASSERT_EQ(bundle->train.size(), ds.train.size());
  ASSERT_EQ(bundle->test.size(), ds.test.size());
  EXPECT_EQ(bundle->train[0].truth_path, ds.train[0].truth_path);
  EXPECT_TRUE(bundle->net.Validate().ok());
  for (const char* suffix :
       {"_nodes.csv", "_segments.csv", "_towers.csv", "_train.csv",
        "_train.csv.paths", "_test.csv", "_test.csv.paths"}) {
    std::filesystem::remove(prefix + std::string(suffix));
  }
}

TEST(DatasetBundleTest, MissingPiecesFailCleanly) {
  EXPECT_FALSE(LoadDatasetBundle("/tmp/lhmm_nonexistent_bundle").ok());
}

TEST(DatasetBundleTest, CorruptTowersFileIsNamedWithLine) {
  sim::DatasetConfig cfg = sim::XiamenSPreset();
  cfg.num_train = 2;
  cfg.num_val = 1;
  cfg.num_test = 1;
  const sim::Dataset ds = sim::BuildDataset(cfg);
  const std::string prefix = "/tmp/lhmm_corrupt_bundle";
  ASSERT_TRUE(SaveDatasetBundle(ds, prefix).ok());
  {
    std::ofstream towers(prefix + "_towers.csv");
    towers << "id,x,y\n0,1.0,2.0\n1,3.0\n";  // Row 2 lost its y column.
  }
  const auto bundle = LoadDatasetBundle(prefix);
  ASSERT_FALSE(bundle.ok());
  EXPECT_NE(bundle.status().message().find("_towers.csv line 3"),
            std::string::npos)
      << bundle.status().ToString();
  for (const char* suffix :
       {"_nodes.csv", "_segments.csv", "_towers.csv", "_train.csv",
        "_train.csv.paths", "_test.csv", "_test.csv.paths"}) {
    std::filesystem::remove(prefix + std::string(suffix));
  }
}

TEST(SvgTest, SceneRendersAllLayers) {
  const network::RoadNetwork net = network::GenerateGridNetwork(3, 3, 100.0);
  viz::SvgScene scene(net.Bounds(), 400.0);
  scene.DrawNetwork(net, {.color = "#cccccc", .width = 1.0});
  scene.DrawPath(net, {0, 1}, {.color = "#2f855a", .width = 3.0});
  traj::Trajectory t;
  t.points.push_back({{50, 50}, 0.0, 0});
  t.points.push_back({{150, 60}, 10.0, 1});
  scene.DrawTrajectory(t, {.color = "#c53030", .width = 2.0});
  scene.DrawMarker({100, 100}, 30.0, {.color = "#2b6cb0", .width = 1.5});
  scene.AddLegend("matched", {.color = "#2f855a"});
  const std::string svg = scene.ToString();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("polyline"), std::string::npos);
  EXPECT_NE(svg.find("circle"), std::string::npos);
  EXPECT_NE(svg.find("matched"), std::string::npos);

  const std::string path = "/tmp/lhmm_svg_test.svg";
  ASSERT_TRUE(scene.Write(path).ok());
  EXPECT_GT(std::filesystem::file_size(path), 200u);
  std::filesystem::remove(path);
}

TEST(SvgTest, TwoWayPairsDrawnOnce) {
  network::RoadNetwork net;
  const network::NodeId a = net.AddNode({0, 0});
  const network::NodeId b = net.AddNode({100, 0});
  net.AddTwoWay(a, b, 13.9, network::RoadLevel::kLocal);
  viz::SvgScene scene(net.Bounds(), 200.0);
  scene.DrawNetwork(net, {.color = "#888888", .width = 1.0});
  const std::string svg = scene.ToString();
  size_t count = 0;
  size_t pos = 0;
  while ((pos = svg.find("<polyline", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 1u);  // The twin pair renders as a single stroke.
}

TEST(SvgTest, EmptyPathIsNoop) {
  network::RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({10, 10});
  net.AddTwoWay(0, 1, 13.9, network::RoadLevel::kLocal);
  viz::SvgScene scene(net.Bounds(), 100.0);
  scene.DrawPath(net, {}, {.color = "#000000"});
  EXPECT_EQ(scene.ToString().find("<polyline"), std::string::npos);
}

}  // namespace
}  // namespace lhmm::io
