// Tests for the streaming session stack: hmm::OnlineMatcher edge cases, the
// StreamingSession interface of every matcher family, and StreamEngine's
// central contract — per-session FIFO processing with committed outputs that
// are byte-identical for every thread count and every cross-session
// point-arrival interleaving.

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "core/rng.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "hmm/classic_models.h"
#include "hmm/engine.h"
#include "hmm/online.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "matchers/stream_engine.h"
#include "matchers/streaming.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "network/path_cache.h"
#include "network/shortest_path.h"
#include "sim/dataset.h"
#include "traj/filters.h"

namespace lhmm {
namespace {

// ---------------------------------------------------------------------------
// OnlineMatcher edge cases on a small grid (mirrors tests/hmm_test.cc).
// ---------------------------------------------------------------------------

struct GridHarness {
  network::RoadNetwork net;
  std::unique_ptr<network::GridIndex> index;
  std::unique_ptr<network::SegmentRouter> router;
  std::unique_ptr<network::CachedRouter> cached;
  hmm::ClassicModelConfig models;
  std::unique_ptr<hmm::GaussianObservationModel> obs;
  std::unique_ptr<hmm::ClassicTransitionModel> trans;

  GridHarness() {
    net = network::GenerateGridNetwork(8, 8, 200.0);
    index = std::make_unique<network::GridIndex>(&net, 150.0);
    router = std::make_unique<network::SegmentRouter>(&net);
    cached = std::make_unique<network::CachedRouter>(router.get());
    models.obs_sigma = 120.0;
    models.search_radius = 500.0;
    obs = std::make_unique<hmm::GaussianObservationModel>(index.get(), models);
    trans = std::make_unique<hmm::ClassicTransitionModel>(models, &net);
  }

  hmm::OnlineMatcher MakeOnline(int lag, int k = 8) {
    hmm::OnlineConfig config;
    config.k = k;
    config.lag = lag;
    return hmm::OnlineMatcher(&net, cached.get(), obs.get(), trans.get(), config);
  }

  hmm::Engine MakeOffline(int k = 8) {
    hmm::EngineConfig config;
    config.k = k;
    return hmm::Engine(&net, cached.get(), obs.get(), trans.get(), config);
  }
};

/// Walks along the bottom row of the grid (y=0) left to right.
traj::Trajectory BottomRow(int points, double spacing = 250.0, double dt = 20.0) {
  traj::Trajectory t;
  for (int i = 0; i < points; ++i) {
    t.points.push_back({{100.0 + i * spacing, 10.0}, i * dt, i});
  }
  return t;
}

TEST(OnlineMatcherEdgeTest, FinishOnEmptyStream) {
  GridHarness h;
  hmm::OnlineMatcher m = h.MakeOnline(/*lag=*/4);
  EXPECT_TRUE(m.Finish().empty());
  EXPECT_TRUE(m.committed().empty());
  EXPECT_EQ(m.pushed_points(), 0);
  EXPECT_EQ(m.consumed_points(), 0);
  // Finish is idempotent on a drained stream.
  EXPECT_TRUE(m.Finish().empty());
}

TEST(OnlineMatcherEdgeTest, FinishOnSinglePointStream) {
  GridHarness h;
  hmm::OnlineMatcher m = h.MakeOnline(/*lag=*/4);
  const traj::Trajectory t = BottomRow(1);
  EXPECT_TRUE(m.Push(t[0]).empty());  // Window below lag: nothing commits.
  EXPECT_EQ(m.pending_points(), 1);
  const std::vector<network::SegmentId> out = m.Finish();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(m.committed(), out);
  EXPECT_EQ(m.pushed_points(), 1);
  EXPECT_EQ(m.consumed_points(), 1);
  EXPECT_EQ(m.pending_points(), 0);
}

TEST(OnlineMatcherEdgeTest, ResetReuseEqualsFreshMatcher) {
  GridHarness h;
  const traj::Trajectory a = BottomRow(6, 250.0, 20.0);
  const traj::Trajectory b = BottomRow(9, 180.0, 15.0);

  hmm::OnlineMatcher reused = h.MakeOnline(/*lag=*/2);
  for (int i = 0; i < a.size(); ++i) reused.Push(a[i]);
  reused.Finish();
  ASSERT_FALSE(reused.committed().empty());
  reused.Reset();
  EXPECT_TRUE(reused.committed().empty());
  EXPECT_EQ(reused.pushed_points(), 0);
  EXPECT_EQ(reused.consumed_points(), 0);
  for (int i = 0; i < b.size(); ++i) reused.Push(b[i]);
  reused.Finish();

  hmm::OnlineMatcher fresh = h.MakeOnline(/*lag=*/2);
  for (int i = 0; i < b.size(); ++i) fresh.Push(b[i]);
  fresh.Finish();

  EXPECT_EQ(reused.committed(), fresh.committed());
  EXPECT_EQ(reused.pushed_points(), fresh.pushed_points());
  EXPECT_EQ(reused.consumed_points(), fresh.consumed_points());
}

// Regression for the Finish() double-pop: when an Advance consumed a point
// but emitted no new segments (unmatchable point, or a duplicate-segment
// match), the old loop popped a second, never-processed point. Every pushed
// point must be consumed exactly once.
TEST(OnlineMatcherEdgeTest, UnmatchablePointsAreConsumedNotDropped) {
  GridHarness h;
  traj::Trajectory t = BottomRow(5);
  t.points[2].pos = {5.0e5, 5.0e5};  // Far outside every search radius.
  for (int lag : {0, 1, 4, 16}) {
    hmm::OnlineMatcher m = h.MakeOnline(lag);
    for (int i = 0; i < t.size(); ++i) m.Push(t[i]);
    m.Finish();
    EXPECT_EQ(m.pushed_points(), t.size()) << "lag " << lag;
    EXPECT_EQ(m.consumed_points(), t.size()) << "lag " << lag;
    EXPECT_EQ(m.pending_points(), 0) << "lag " << lag;
    EXPECT_FALSE(m.committed().empty()) << "lag " << lag;
  }
  // With the whole trajectory in the window, the streamed path equals the
  // offline engine's, which drops the same unmatchable point.
  hmm::OnlineMatcher m = h.MakeOnline(/*lag=*/16);
  for (int i = 0; i < t.size(); ++i) m.Push(t[i]);
  m.Finish();
  hmm::Engine offline = h.MakeOffline();
  EXPECT_EQ(m.committed(), offline.Match(t).path);
}

TEST(OnlineMatcherEdgeTest, AllPointsUnmatchableTerminates) {
  GridHarness h;
  traj::Trajectory t = BottomRow(4);
  for (int i = 0; i < t.size(); ++i) t.points[i].pos = {9.0e5, 9.0e5 + i};
  hmm::OnlineMatcher m = h.MakeOnline(/*lag=*/1);
  for (int i = 0; i < t.size(); ++i) EXPECT_TRUE(m.Push(t[i]).empty());
  EXPECT_TRUE(m.Finish().empty());
  EXPECT_TRUE(m.committed().empty());
  EXPECT_EQ(m.consumed_points(), t.size());
}

TEST(OnlineMatcherEdgeTest, LagZeroCommitsEveryPush) {
  GridHarness h;
  hmm::OnlineMatcher m = h.MakeOnline(/*lag=*/0);
  const traj::Trajectory t = BottomRow(6);
  for (int i = 0; i < t.size(); ++i) {
    m.Push(t[i]);
    EXPECT_EQ(m.pending_points(), 0) << "point " << i;
    EXPECT_EQ(m.consumed_points(), i + 1) << "point " << i;
  }
  EXPECT_TRUE(m.Finish().empty());
  EXPECT_FALSE(m.committed().empty());
}

TEST(OnlineSessionTest, LatencyAccountingIsExact) {
  GridHarness h;
  hmm::OnlineConfig config;
  config.k = 8;
  config.lag = 2;
  matchers::OnlineSession session(&h.net, h.cached.get(), h.obs.get(),
                                  h.trans.get(), config);
  const traj::Trajectory t = BottomRow(6);
  for (int i = 0; i < t.size(); ++i) session.Push(t[i]);
  session.Finish();
  const matchers::SessionStats stats = session.stats();
  EXPECT_EQ(stats.points_pushed, 6);
  EXPECT_EQ(stats.points_committed, 6);
  // Points 0..3 each waited the full lag (2); the Finish() flush commits
  // points 4 and 5 with latencies 1 and 0.
  EXPECT_EQ(stats.latency_points_sum, 2 * 4 + 1 + 0);
  EXPECT_DOUBLE_EQ(stats.MeanCommitLatency(), 9.0 / 6.0);

  session.Reset();
  EXPECT_EQ(session.stats().points_pushed, 0);
  EXPECT_EQ(session.stats().latency_points_sum, 0);
}

// ---------------------------------------------------------------------------
// Per-family sessions on a simulated city: convergence to offline Viterbi.
// ---------------------------------------------------------------------------

class StreamFamilyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::DatasetConfig cfg = sim::XiamenSPreset();
    cfg.num_train = 25;
    cfg.num_val = 3;
    cfg.num_test = 8;
    ds_ = new sim::Dataset(sim::BuildDataset(cfg));
    index_ = new network::GridIndex(&ds_->network, 300.0);
    // A micro LHMM: convergence and determinism need a fixed model, not a
    // good one (same recipe as tests/batch_test.cc).
    lhmm::LhmmConfig lhmm_cfg;
    lhmm_cfg.obs_steps = 2;
    lhmm_cfg.trans_steps = 2;
    lhmm_cfg.fusion_steps = 5;
    lhmm_cfg.encoder.dim = 24;
    lhmm::TrainInputs inputs;
    inputs.net = &ds_->network;
    inputs.index = index_;
    inputs.num_towers = static_cast<int>(ds_->towers.size());
    inputs.train = &ds_->train;
    model_ = new std::shared_ptr<lhmm::LhmmModel>(TrainLhmm(inputs, lhmm_cfg));
    cleaned_ = new std::vector<traj::Trajectory>();
    traj::FilterConfig filters;
    for (const traj::MatchedTrajectory& mt : ds_->test) {
      cleaned_->push_back(eval::Preprocess(mt.cellular, filters));
    }
  }
  static void TearDownTestSuite() {
    delete cleaned_;
    delete model_;
    delete index_;
    delete ds_;
    cleaned_ = nullptr;
    model_ = nullptr;
    index_ = nullptr;
    ds_ = nullptr;
  }

  static matchers::MatcherFactory StmFactory() {
    const network::RoadNetwork* net = &ds_->network;
    const network::GridIndex* index = index_;
    hmm::ClassicModelConfig models;
    hmm::EngineConfig engine;
    engine.k = 12;
    return [=] {
      return std::make_unique<matchers::StmMatcher>(net, index, models, engine);
    };
  }

  static matchers::MatcherFactory SnetFactory() {
    const network::RoadNetwork* net = &ds_->network;
    const network::GridIndex* index = index_;
    hmm::ClassicModelConfig models;
    hmm::EngineConfig engine;
    engine.k = 12;
    return [=] {
      return std::make_unique<matchers::SnetMatcher>(net, index, models, engine);
    };
  }

  static matchers::MatcherFactory IvmmFactory() {
    const network::RoadNetwork* net = &ds_->network;
    const network::GridIndex* index = index_;
    hmm::ClassicModelConfig models;
    return [=] {
      return std::make_unique<matchers::IvmmMatcher>(net, index, models, 10);
    };
  }

  static matchers::MatcherFactory LhmmFactory() {
    const network::RoadNetwork* net = &ds_->network;
    const network::GridIndex* index = index_;
    std::shared_ptr<lhmm::LhmmModel> model = *model_;
    return [=] { return std::make_unique<lhmm::LhmmMatcher>(net, index, model); };
  }

  static int MaxCleanedSize() {
    int n = 0;
    for (const traj::Trajectory& t : *cleaned_) n = std::max(n, t.size());
    return n;
  }

  /// The convergence contract: with lag >= trajectory length, the streamed
  /// committed path equals the offline Viterbi reference exactly, for every
  /// test trajectory, through one Reset-reused session.
  static void ExpectConvergesToOffline(const matchers::MatcherFactory& factory) {
    const std::unique_ptr<matchers::MapMatcher> matcher = factory();
    ASSERT_TRUE(matcher->SupportsStreaming());
    matchers::StreamConfig sc;
    sc.lag = MaxCleanedSize() + 4;
    const std::unique_ptr<matchers::StreamingSession> session =
        matcher->OpenSession(sc);
    ASSERT_NE(session, nullptr);
    auto* online = dynamic_cast<matchers::OnlineSession*>(session.get());
    ASSERT_NE(online, nullptr);
    for (size_t i = 0; i < cleaned_->size(); ++i) {
      const traj::Trajectory& t = (*cleaned_)[i];
      const std::vector<network::SegmentId> offline = online->MatchOffline(t).path;
      session->Reset();
      for (int p = 0; p < t.size(); ++p) session->Push(t[p]);
      session->Finish();
      EXPECT_EQ(session->committed(), offline) << "trajectory " << i;
      EXPECT_EQ(session->stats().points_pushed, t.size()) << "trajectory " << i;
      EXPECT_EQ(session->stats().points_committed, t.size()) << "trajectory " << i;
    }
  }

  static sim::Dataset* ds_;
  static network::GridIndex* index_;
  static std::shared_ptr<lhmm::LhmmModel>* model_;
  static std::vector<traj::Trajectory>* cleaned_;
};

sim::Dataset* StreamFamilyTest::ds_ = nullptr;
network::GridIndex* StreamFamilyTest::index_ = nullptr;
std::shared_ptr<lhmm::LhmmModel>* StreamFamilyTest::model_ = nullptr;
std::vector<traj::Trajectory>* StreamFamilyTest::cleaned_ = nullptr;

TEST_F(StreamFamilyTest, ClassicHmmConvergesToOffline) {
  ExpectConvergesToOffline(StmFactory());
}

TEST_F(StreamFamilyTest, SnetConvergesToOffline) {
  // SNet's observation model reads neighbor headings — window-dependent at
  // small lags, but identical once the window holds the whole trajectory.
  ExpectConvergesToOffline(SnetFactory());
}

TEST_F(StreamFamilyTest, IvmmConvergesToOffline) {
  ExpectConvergesToOffline(IvmmFactory());
}

TEST_F(StreamFamilyTest, LhmmConvergesToOffline) {
  ExpectConvergesToOffline(LhmmFactory());
}

TEST_F(StreamFamilyTest, PrefixMatchIsMonotoneIshInLag) {
  traj::FilterConfig filters;
  const int full = MaxCleanedSize() + 4;
  for (const auto& family : {StmFactory(), LhmmFactory()}) {
    const std::unique_ptr<matchers::MapMatcher> matcher = family();
    double prev_prefix = -1.0;
    double prev_latency = -1.0;
    double last_prefix = 0.0;
    for (int lag : {0, 2, 6, full}) {
      const std::vector<eval::OnlineTrajectoryEval> records = eval::EvaluateOnline(
          matcher.get(), ds_->network, ds_->test, filters, lag);
      const eval::OnlineEvalSummary s =
          eval::SummarizeOnline(records, matcher->name(), lag);
      // Monotone-ish: more look-ahead never loses much agreement with the
      // offline path, and latency only grows.
      EXPECT_GE(s.prefix_match, prev_prefix - 0.15)
          << matcher->name() << " lag " << lag;
      EXPECT_GE(s.commit_latency, prev_latency) << matcher->name() << " lag " << lag;
      if (lag == 0) {
        EXPECT_DOUBLE_EQ(s.commit_latency, 0.0);
      }
      prev_prefix = s.prefix_match;
      prev_latency = s.commit_latency;
      last_prefix = s.prefix_match;
    }
    // Full-trajectory lag reproduces the offline path exactly.
    EXPECT_DOUBLE_EQ(last_prefix, 1.0) << matcher->name();
  }
}

// ---------------------------------------------------------------------------
// StreamEngine: interleaving determinism, 1 thread vs 8 threads.
// ---------------------------------------------------------------------------

class StreamEngineDeterminismTest : public StreamFamilyTest {
 protected:
  struct EngineOutput {
    std::vector<std::vector<network::SegmentId>> committed;
    std::vector<matchers::SessionStats> stats;
  };

  /// Feeds every cleaned trajectory through a StreamEngine. `shuffle_seed`
  /// 0 = sequential trajectory-by-trajectory arrival; otherwise points of
  /// different trajectories interleave in a seeded random order (each
  /// trajectory's own points stay in order — the realistic arrival pattern).
  static EngineOutput Run(const matchers::MatcherFactory& factory, int threads,
                          uint64_t shuffle_seed) {
    network::CachedRouter shared_cache(&ds_->network);
    matchers::StreamEngineConfig config;
    config.num_threads = threads;
    config.lag = 3;
    config.shared_router = &shared_cache;
    matchers::StreamEngine engine(factory, config);
    const size_t n = cleaned_->size();
    std::vector<matchers::SessionId> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = engine.Open();
    if (shuffle_seed == 0) {
      for (size_t i = 0; i < n; ++i) {
        for (int p = 0; p < (*cleaned_)[i].size(); ++p) {
          engine.Push(ids[i], (*cleaned_)[i][p]);
        }
        engine.Finish(ids[i]);
      }
    } else {
      core::Rng rng(shuffle_seed);
      std::vector<int> next(n, 0);
      std::vector<int> live(n);
      std::iota(live.begin(), live.end(), 0);
      while (!live.empty()) {
        const int pick = rng.UniformInt(static_cast<int>(live.size()));
        const int i = live[pick];
        if (next[i] < (*cleaned_)[i].size()) {
          engine.Push(ids[i], (*cleaned_)[i][next[i]++]);
        } else {
          engine.Finish(ids[i]);
          live.erase(live.begin() + pick);
        }
      }
    }
    engine.Barrier();
    EngineOutput out;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(engine.finished(ids[i])) << "session " << i;
      out.committed.push_back(engine.Committed(ids[i]));
      out.stats.push_back(engine.Stats(ids[i]));
    }
    return out;
  }

  /// The determinism contract, bit-for-bit: any thread count, any arrival
  /// interleaving, same committed path and same latency accounting.
  static void ExpectInterleavingInvariant(const matchers::MatcherFactory& factory) {
    const EngineOutput serial = Run(factory, /*threads=*/1, /*shuffle_seed=*/0);
    for (uint64_t seed : {1u, 2u}) {
      const EngineOutput parallel = Run(factory, /*threads=*/8, seed);
      ASSERT_EQ(parallel.committed.size(), serial.committed.size());
      for (size_t i = 0; i < serial.committed.size(); ++i) {
        EXPECT_EQ(parallel.committed[i], serial.committed[i])
            << "trajectory " << i << " seed " << seed;
        EXPECT_EQ(parallel.stats[i].points_pushed, serial.stats[i].points_pushed);
        EXPECT_EQ(parallel.stats[i].points_committed,
                  serial.stats[i].points_committed);
        EXPECT_EQ(parallel.stats[i].latency_points_sum,
                  serial.stats[i].latency_points_sum);
      }
    }
  }
};

TEST_F(StreamEngineDeterminismTest, ClassicHmm) {
  ExpectInterleavingInvariant(StmFactory());
}

TEST_F(StreamEngineDeterminismTest, Ivmm) {
  ExpectInterleavingInvariant(IvmmFactory());
}

TEST_F(StreamEngineDeterminismTest, Lhmm) {
  ExpectInterleavingInvariant(LhmmFactory());
}

TEST_F(StreamEngineDeterminismTest, TotalStatsCoverEveryPoint) {
  const EngineOutput out = Run(StmFactory(), /*threads=*/4, /*shuffle_seed=*/7);
  int64_t expected_points = 0;
  for (const traj::Trajectory& t : *cleaned_) expected_points += t.size();
  int64_t pushed = 0;
  for (const matchers::SessionStats& s : out.stats) pushed += s.points_pushed;
  EXPECT_EQ(pushed, expected_points);
  for (size_t i = 0; i < out.stats.size(); ++i) {
    EXPECT_EQ(out.stats[i].points_committed, out.stats[i].points_pushed)
        << "session " << i;
  }
}

}  // namespace
}  // namespace lhmm
