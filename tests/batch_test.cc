// Tests for the parallel batch matching stack: ThreadPool, the sharded
// thread-safe CachedRouter, and BatchMatcher's central contract — matching
// results are byte-identical for every thread count.

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "core/thread_pool.h"
#include "eval/evaluator.h"
#include "gtest/gtest.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/trainer.h"
#include "matchers/batch_matcher.h"
#include "matchers/classic_matchers.h"
#include "matchers/ivmm.h"
#include "network/ch_router.h"
#include "network/contraction.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "network/path_cache.h"
#include "network/shortest_path.h"
#include "sim/dataset.h"
#include "traj/filters.h"

namespace lhmm {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool.
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskAndIsReusable) {
  core::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
  // The pool stays usable after Wait().
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1500);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  core::ThreadPool pool(2);
  pool.Wait();
  pool.Wait();
}

TEST(ThreadPoolTest, SubmitFromInsideATask) {
  core::ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&pool, &count] {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ThreadCountClampedToOne) {
  core::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  EXPECT_GE(core::ThreadPool::DefaultThreadCount(), 1);
}

TEST(ParallelForTest, EachIndexProcessedExactlyOnce) {
  constexpr int64_t kN = 2000;
  std::vector<std::atomic<int>> counts(kN);
  core::ParallelFor(4, kN, [&counts](int worker_id, int64_t i) {
    EXPECT_GE(worker_id, 0);
    EXPECT_LT(worker_id, 4);
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::vector<int64_t> order;
  core::ParallelFor(1, 5, [&order](int worker_id, int64_t i) {
    EXPECT_EQ(worker_id, 0);
    order.push_back(i);  // Safe: serial path, no pool.
  });
  EXPECT_EQ(order, (std::vector<int64_t>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------------------
// Thread-safe CachedRouter.
// ---------------------------------------------------------------------------

TEST(CachedRouterTest, BoundSemanticsSurviveCaching) {
  network::RoadNetwork net = network::GenerateGridNetwork(6, 6, 200.0);
  network::SegmentRouter oracle(&net);
  network::CachedRouter cache(&net);
  const network::SegmentId from = 0;
  const network::SegmentId to = net.num_segments() - 1;
  // A negative result cached under a small bound must not satisfy a larger
  // query, and a positive result must not leak past a tighter bound.
  for (double bound : {150.0, 6000.0, 150.0, 6000.0}) {
    const auto expected = oracle.Route1(from, to, bound);
    const auto got = cache.Route1(from, to, bound);
    ASSERT_EQ(got.has_value(), expected.has_value()) << "bound " << bound;
    if (expected.has_value()) {
      EXPECT_DOUBLE_EQ(got->length, expected->length);
      EXPECT_EQ(got->segments, expected->segments);
    }
  }
  EXPECT_EQ(cache.hits() + cache.misses(), 4);
}

// 8 threads hammer one shared cache with overlapping one-to-many queries; the
// satellite contract: every result equals the serial SegmentRouter oracle and
// every individual lookup lands in exactly one of hits/misses.
TEST(CachedRouterStressTest, ConcurrentOverlappingQueriesMatchSerialOracle) {
  network::RoadNetwork net = network::GenerateGridNetwork(12, 12, 150.0);
  const int num_segments = net.num_segments();
  ASSERT_GT(num_segments, 50);
  constexpr double kBound = 2500.0;
  constexpr int kQueries = 24;
  constexpr int kThreads = 8;
  constexpr int kReps = 4;

  // Overlapping sliding windows of targets so threads repeatedly collide on
  // the same (from, to) keys.
  std::vector<network::SegmentId> froms(kQueries);
  std::vector<std::vector<network::SegmentId>> targets(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    froms[q] = (q * 7) % num_segments;
    for (int j = 0; j < 40; ++j) {
      targets[q].push_back((q * 3 + j) % num_segments);
    }
  }
  network::SegmentRouter oracle(&net);
  std::vector<std::vector<std::optional<network::Route>>> expected(kQueries);
  for (int q = 0; q < kQueries; ++q) {
    expected[q] = oracle.RouteMany(froms[q], targets[q], kBound);
  }

  network::CachedRouter cache(&net);
  std::atomic<int64_t> lookups{0};
  std::atomic<int64_t> mismatches{0};
  core::ParallelFor(
      kThreads, static_cast<int64_t>(kThreads) * kReps * kQueries,
      [&](int worker_id, int64_t j) {
        (void)worker_id;
        const int q = static_cast<int>(j % kQueries);
        const auto got = cache.RouteMany(froms[q], targets[q], kBound);
        lookups.fetch_add(static_cast<int64_t>(targets[q].size()),
                          std::memory_order_relaxed);
        for (size_t i = 0; i < got.size(); ++i) {
          const auto& want = expected[q][i];
          const bool same =
              got[i].has_value() == want.has_value() &&
              (!want.has_value() || (got[i]->length == want->length &&
                                     got[i]->segments == want->segments));
          if (!same) mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.hits() + cache.misses(), lookups.load());
  EXPECT_GT(cache.hits(), 0);
  EXPECT_GT(cache.misses(), 0);
  // Clear() resets the table and the counters together.
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits() + cache.misses(), 0);
}

// ---------------------------------------------------------------------------
// BatchMatcher determinism: 1 thread vs 4 threads, byte-identical output.
// ---------------------------------------------------------------------------

class BatchDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::DatasetConfig cfg = sim::XiamenSPreset();
    cfg.num_train = 25;
    cfg.num_val = 3;
    // Enough test trajectories that the 4-thread run keeps several workers
    // matching concurrently the whole time; smaller sets let races slip by.
    cfg.num_test = 12;
    ds_ = new sim::Dataset(sim::BuildDataset(cfg));
    index_ = new network::GridIndex(&ds_->network, 300.0);
    // A micro LHMM: determinism needs a fixed model, not a good one.
    lhmm::LhmmConfig lhmm_cfg;
    lhmm_cfg.obs_steps = 2;
    lhmm_cfg.trans_steps = 2;
    lhmm_cfg.fusion_steps = 5;
    lhmm_cfg.encoder.dim = 24;
    lhmm::TrainInputs inputs;
    inputs.net = &ds_->network;
    inputs.index = index_;
    inputs.num_towers = static_cast<int>(ds_->towers.size());
    inputs.train = &ds_->train;
    model_ = new std::shared_ptr<lhmm::LhmmModel>(TrainLhmm(inputs, lhmm_cfg));
    ch_ = new network::CHGraph(network::CHGraph::Build(ds_->network));
  }
  static void TearDownTestSuite() {
    delete ch_;
    delete model_;
    delete index_;
    delete ds_;
    ch_ = nullptr;
    model_ = nullptr;
    index_ = nullptr;
    ds_ = nullptr;
  }

  struct BatchOutput {
    std::vector<matchers::MatchResult> results;
    std::vector<eval::TrajectoryEval> records;
    matchers::BatchStats stats;
  };

  static BatchOutput Run(const matchers::MatcherFactory& factory, int threads) {
    traj::FilterConfig filters;
    network::CachedRouter shared_cache(&ds_->network);
    matchers::BatchConfig config;
    config.num_threads = threads;
    config.shared_router = &shared_cache;
    matchers::BatchMatcher batch(factory, config);
    BatchOutput out;
    out.records = eval::EvaluatePerTrajectoryParallel(&batch, ds_->network,
                                                      ds_->test, filters);
    std::vector<traj::Trajectory> cleaned;
    for (const auto& mt : ds_->test) {
      cleaned.push_back(eval::Preprocess(mt.cellular, filters));
    }
    out.results = batch.MatchAll(cleaned);
    out.stats = batch.last_stats();
    return out;
  }

  /// Bit-for-bit output comparison: identical matched paths, identical
  /// candidate sets, identical metric doubles (== on doubles is deliberate —
  /// "equivalent" is not enough).
  static void ExpectSameOutput(const BatchOutput& a, const BatchOutput& b,
                               const std::string& label) {
    ASSERT_EQ(a.results.size(), b.results.size()) << label;
    for (size_t i = 0; i < a.results.size(); ++i) {
      const matchers::MatchResult& ra = a.results[i];
      const matchers::MatchResult& rb = b.results[i];
      EXPECT_EQ(ra.path, rb.path) << label << " trajectory " << i;
      EXPECT_EQ(ra.point_index, rb.point_index) << label << " trajectory " << i;
      ASSERT_EQ(ra.candidates.size(), rb.candidates.size())
          << label << " trajectory " << i;
      for (size_t s = 0; s < ra.candidates.size(); ++s) {
        ASSERT_EQ(ra.candidates[s].size(), rb.candidates[s].size()) << label;
        for (size_t c = 0; c < ra.candidates[s].size(); ++c) {
          EXPECT_EQ(ra.candidates[s][c].segment, rb.candidates[s][c].segment)
              << label;
          EXPECT_EQ(ra.candidates[s][c].observation,
                    rb.candidates[s][c].observation)
              << label;
        }
      }
    }
    ASSERT_EQ(a.records.size(), b.records.size()) << label;
    for (size_t i = 0; i < a.records.size(); ++i) {
      const eval::TrajectoryEval& ea = a.records[i];
      const eval::TrajectoryEval& eb = b.records[i];
      EXPECT_EQ(ea.index, eb.index) << label;
      EXPECT_EQ(ea.metrics.precision, eb.metrics.precision)
          << label << " trajectory " << i;
      EXPECT_EQ(ea.metrics.recall, eb.metrics.recall)
          << label << " trajectory " << i;
      EXPECT_EQ(ea.metrics.rmf, eb.metrics.rmf) << label << " trajectory " << i;
      EXPECT_EQ(ea.metrics.cmf, eb.metrics.cmf) << label << " trajectory " << i;
      EXPECT_EQ(ea.hitting_ratio, eb.hitting_ratio)
          << label << " trajectory " << i;
    }
  }

  /// The thread-count determinism contract: serial vs 4 threads.
  static void ExpectByteIdentical(const matchers::MatcherFactory& factory) {
    const BatchOutput serial = Run(factory, 1);
    const BatchOutput parallel = Run(factory, 4);
    EXPECT_EQ(serial.stats.num_threads, 1);
    EXPECT_EQ(parallel.stats.num_threads, 4);
    EXPECT_EQ(parallel.stats.items, static_cast<int64_t>(ds_->test.size()));
    ExpectSameOutput(serial, parallel, "threads 1 vs 4");
  }

  /// One batch run against a specific routing setup.
  static BatchOutput RunBackend(const matchers::MatcherFactory& factory,
                                int threads, network::RouterBackend backend,
                                bool warm) {
    traj::FilterConfig filters;
    matchers::BatchConfig config;
    config.num_threads = threads;
    network::CachedRouter shared_cache =
        backend == network::RouterBackend::kCH
            ? network::CachedRouter(&ds_->network, ch_)
            : network::CachedRouter(&ds_->network);
    if (threads == kOwnedRouterThreads &&
        backend == network::RouterBackend::kCH && !warm) {
      // Exercise the BatchConfig router_backend path (the matcher builds and
      // owns its CH-backed cache) instead of handing it a shared_router.
      config.router_backend = backend;
      config.ch_network = &ds_->network;
      config.ch_graph = ch_;
    } else {
      if (warm) shared_cache.WarmAll(*index_, 1500.0);
      config.shared_router = &shared_cache;
    }
    matchers::BatchMatcher batch(factory, config);
    BatchOutput out;
    out.records = eval::EvaluatePerTrajectoryParallel(&batch, ds_->network,
                                                      ds_->test, filters);
    std::vector<traj::Trajectory> cleaned;
    for (const auto& mt : ds_->test) {
      cleaned.push_back(eval::Preprocess(mt.cellular, filters));
    }
    out.results = batch.MatchAll(cleaned);
    out.stats = batch.last_stats();
    return out;
  }

  /// The routing-backend equivalence contract: every (backend, threads,
  /// cache-temperature) combination produces byte-identical output. The cold
  /// runs are the strong half — every route query actually executes (CH on
  /// one side, plain Dijkstra on the other) instead of being served from a
  /// pre-warmed table.
  static void ExpectBackendsByteIdentical(
      const matchers::MatcherFactory& factory) {
    const BatchOutput oracle =
        RunBackend(factory, 1, network::RouterBackend::kDijkstra, false);
    ExpectSameOutput(
        oracle, RunBackend(factory, 1, network::RouterBackend::kCH, false),
        "ch cold 1 thread");
    ExpectSameOutput(
        oracle, RunBackend(factory, 8, network::RouterBackend::kCH, false),
        "ch cold 8 threads (owned router)");
    ExpectSameOutput(
        oracle,
        RunBackend(factory, 8, network::RouterBackend::kDijkstra, true),
        "dijkstra warm 8 threads");
    ExpectSameOutput(
        oracle, RunBackend(factory, 8, network::RouterBackend::kCH, true),
        "ch warm 8 threads");
  }

  static constexpr int kOwnedRouterThreads = 8;

  static sim::Dataset* ds_;
  static network::GridIndex* index_;
  static std::shared_ptr<lhmm::LhmmModel>* model_;
  static network::CHGraph* ch_;
};

sim::Dataset* BatchDeterminismTest::ds_ = nullptr;
network::GridIndex* BatchDeterminismTest::index_ = nullptr;
std::shared_ptr<lhmm::LhmmModel>* BatchDeterminismTest::model_ = nullptr;
network::CHGraph* BatchDeterminismTest::ch_ = nullptr;

TEST_F(BatchDeterminismTest, ClassicHmmWithShortcuts) {
  const network::RoadNetwork* net = &ds_->network;
  const network::GridIndex* index = index_;
  hmm::ClassicModelConfig models;
  hmm::EngineConfig engine;
  engine.k = 12;
  engine.use_shortcuts = true;  // Exercise the shortcut pass across threads.
  ExpectByteIdentical([=] {
    return std::make_unique<matchers::StmMatcher>(net, index, models, engine);
  });
}

TEST_F(BatchDeterminismTest, Ivmm) {
  const network::RoadNetwork* net = &ds_->network;
  const network::GridIndex* index = index_;
  hmm::ClassicModelConfig models;
  ExpectByteIdentical([=] {
    return std::make_unique<matchers::IvmmMatcher>(net, index, models, 10);
  });
}

TEST_F(BatchDeterminismTest, Lhmm) {
  const network::RoadNetwork* net = &ds_->network;
  const network::GridIndex* index = index_;
  std::shared_ptr<lhmm::LhmmModel> model = *model_;
  ExpectByteIdentical([=] {
    return std::make_unique<lhmm::LhmmMatcher>(net, index, model);
  });
}

// ---------------------------------------------------------------------------
// Routing-backend equivalence: the full matching pipeline (preprocessing,
// candidates, Viterbi, shortcut pass, path expansion, metrics) produces
// byte-identical output whether route queries run plain bounded Dijkstra or
// the corridor-pruned contraction hierarchy — cold and warm, serial and
// 8-way parallel.
// ---------------------------------------------------------------------------

TEST_F(BatchDeterminismTest, ChBackendByteIdenticalClassicHmmWithShortcuts) {
  const network::RoadNetwork* net = &ds_->network;
  const network::GridIndex* index = index_;
  hmm::ClassicModelConfig models;
  hmm::EngineConfig engine;
  engine.k = 12;
  engine.use_shortcuts = true;
  ExpectBackendsByteIdentical([=] {
    return std::make_unique<matchers::StmMatcher>(net, index, models, engine);
  });
}

TEST_F(BatchDeterminismTest, ChBackendByteIdenticalIvmm) {
  const network::RoadNetwork* net = &ds_->network;
  const network::GridIndex* index = index_;
  hmm::ClassicModelConfig models;
  ExpectBackendsByteIdentical([=] {
    return std::make_unique<matchers::IvmmMatcher>(net, index, models, 10);
  });
}

TEST_F(BatchDeterminismTest, ChBackendByteIdenticalLhmm) {
  const network::RoadNetwork* net = &ds_->network;
  const network::GridIndex* index = index_;
  std::shared_ptr<lhmm::LhmmModel> model = *model_;
  ExpectBackendsByteIdentical([=] {
    return std::make_unique<lhmm::LhmmMatcher>(net, index, model);
  });
}

TEST_F(BatchDeterminismTest, MoreThreadsThanItemsStillCoversEverything) {
  const network::RoadNetwork* net = &ds_->network;
  const network::GridIndex* index = index_;
  hmm::ClassicModelConfig models;
  hmm::EngineConfig engine;
  engine.k = 8;
  matchers::BatchConfig config;
  config.num_threads = 16;  // More workers than the 6 test trajectories.
  matchers::BatchMatcher batch(
      [=] {
        return std::make_unique<matchers::StmMatcher>(net, index, models, engine);
      },
      config);
  traj::FilterConfig filters;
  std::vector<traj::Trajectory> cleaned;
  for (const auto& mt : ds_->test) {
    cleaned.push_back(eval::Preprocess(mt.cellular, filters));
  }
  const std::vector<matchers::MatchResult> results = batch.MatchAll(cleaned);
  ASSERT_EQ(results.size(), cleaned.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].path.empty()) << "trajectory " << i;
  }
}

}  // namespace
}  // namespace lhmm
