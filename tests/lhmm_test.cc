#include <cmath>
#include <filesystem>

#include "gtest/gtest.h"
#include "lhmm/het_encoder.h"
#include "lhmm/lhmm_matcher.h"
#include "lhmm/mr_graph.h"
#include "lhmm/trainer.h"
#include "network/generators.h"
#include "network/grid_index.h"
#include "sim/dataset.h"

namespace lhmm::lhmm {
namespace {

TEST(MrGraphTest, NodeNumbering) {
  MultiRelationalGraph g(10, 20);
  EXPECT_EQ(g.num_nodes(), 30);
  EXPECT_EQ(g.NodeOfTower(3), 3);
  EXPECT_EQ(g.NodeOfSegment(5), 15);
}

TEST(MrGraphTest, CoFrequencyNormalizes) {
  MultiRelationalGraph g(4, 8);
  g.AddCoOccurrence(1, 2, 3.0);
  g.AddCoOccurrence(1, 5, 1.0);
  EXPECT_DOUBLE_EQ(g.CoFrequency(1, 2), 0.75);
  EXPECT_DOUBLE_EQ(g.CoFrequency(1, 5), 0.25);
  EXPECT_DOUBLE_EQ(g.CoFrequency(1, 7), 0.0);
  EXPECT_DOUBLE_EQ(g.CoFrequency(2, 2), 0.0);  // No mass for tower 2.
  EXPECT_DOUBLE_EQ(g.CoFrequency(-1, 2), 0.0);
  const auto segs = g.CoSegments(1);
  EXPECT_EQ(segs.size(), 2u);
}

TEST(MrGraphTest, MessageMatrixRowNormalized) {
  MultiRelationalGraph g(3, 3);
  g.AddCoOccurrence(0, 0);
  g.AddCoOccurrence(0, 1);
  g.AddSequentiality(0, 1);
  g.AddTopology(0, 1);
  const auto co = g.MessageMatrix(Relation::kCoOccurrence);
  // Tower 0 has two CO neighbors, each weighted 1/2.
  ASSERT_EQ(co->rows[g.NodeOfTower(0)].size(), 2u);
  for (const auto& [src, w] : co->rows[g.NodeOfTower(0)]) {
    EXPECT_FLOAT_EQ(w, 0.5f);
  }
  // Symmetry: segment 0 sees tower 0.
  ASSERT_EQ(co->rows[g.NodeOfSegment(0)].size(), 1u);
  EXPECT_EQ(co->rows[g.NodeOfSegment(0)][0].first, g.NodeOfTower(0));
  // Union graph merges all relations.
  const auto u = g.UnionMessageMatrix();
  EXPECT_GE(u->rows[g.NodeOfTower(0)].size(), 3u);
}

TEST(HetEncoderTest, ShapesAndVariantsAgreeOnDims) {
  MultiRelationalGraph g(5, 7);
  g.AddCoOccurrence(0, 1);
  g.AddSequentiality(0, 1);
  g.AddTopology(1, 2);
  core::Rng rng(1);
  for (EncoderKind kind : {EncoderKind::kHeterogeneous, EncoderKind::kHomogeneous,
                           EncoderKind::kMlpOnly}) {
    EncoderConfig cfg;
    cfg.dim = 12;
    cfg.kind = kind;
    HetGraphEncoder enc(&g, cfg, &rng);
    const nn::Matrix h = enc.ForwardNoGrad();
    EXPECT_EQ(h.rows(), g.num_nodes());
    EXPECT_EQ(h.cols(), 12);
    // Tape forward agrees with no-grad forward.
    const nn::Tensor ht = enc.Forward();
    for (int i = 0; i < h.size(); ++i) {
      EXPECT_NEAR(h.data()[i], ht.value().data()[i], 1e-5);
    }
  }
}

TEST(HetEncoderTest, MessagePassingPropagatesNeighborInfo) {
  // Two towers, one connected to a segment, one isolated: after one layer,
  // the connected tower's embedding must differ from what the isolated
  // tower computes from self-transform alone with identical initial rows.
  MultiRelationalGraph g(2, 1);
  g.AddCoOccurrence(0, 0);
  core::Rng rng(2);
  EncoderConfig cfg;
  cfg.dim = 8;
  cfg.layers = 1;
  HetGraphEncoder enc(&g, cfg, &rng);
  const nn::Matrix h = enc.ForwardNoGrad();
  double diff = 0.0;
  for (int j = 0; j < 8; ++j) {
    diff += std::fabs(h(g.NodeOfTower(0), j) - h(g.NodeOfTower(1), j));
  }
  EXPECT_GT(diff, 1e-4);
}

TEST(LearnersTest, FeatureNorm) {
  const FeatureNorm norm = FitFeatureNorm({1.0, 2.0, 3.0, 4.0});
  EXPECT_FLOAT_EQ(norm.mean, 2.5f);
  EXPECT_NEAR(norm.Apply(2.5), 0.0f, 1e-6);
  EXPECT_GT(norm.Apply(4.0), 0.0f);
  // Degenerate input keeps std floored.
  const FeatureNorm flat = FitFeatureNorm({5.0, 5.0, 5.0});
  EXPECT_GE(flat.std, 1e-3f);
}

TEST(LearnersTest, PositiveProbsMatchSoftmax) {
  nn::Matrix logits(2, 2);
  logits(0, 0) = 0.0f;
  logits(0, 1) = 0.0f;
  logits(1, 0) = -1.0f;
  logits(1, 1) = 1.0f;
  const std::vector<double> p = PositiveProbs(logits);
  EXPECT_NEAR(p[0], 0.5, 1e-9);
  EXPECT_NEAR(p[1], 1.0 / (1.0 + std::exp(-2.0)), 1e-6);
}

/// Full end-to-end micro-training fixture: small dataset, tiny training run.
class TrainedModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    sim::DatasetConfig cfg = sim::XiamenSPreset();
    cfg.num_train = 40;
    cfg.num_val = 4;
    cfg.num_test = 8;
    ds_ = new sim::Dataset(sim::BuildDataset(cfg));
    index_ = new network::GridIndex(&ds_->network, 300.0);
    LhmmConfig lhmm_cfg;
    lhmm_cfg.obs_steps = 25;
    lhmm_cfg.trans_steps = 20;
    lhmm_cfg.fusion_steps = 60;
    lhmm_cfg.encoder.dim = 24;
    TrainInputs inputs;
    inputs.net = &ds_->network;
    inputs.index = index_;
    inputs.num_towers = static_cast<int>(ds_->towers.size());
    inputs.train = &ds_->train;
    model_ = new std::shared_ptr<LhmmModel>(TrainLhmm(inputs, lhmm_cfg));
  }

  static void TearDownTestSuite() {
    delete model_;
    delete index_;
    delete ds_;
    model_ = nullptr;
    index_ = nullptr;
    ds_ = nullptr;
  }

  static sim::Dataset* ds_;
  static network::GridIndex* index_;
  static std::shared_ptr<LhmmModel>* model_;
};

sim::Dataset* TrainedModelTest::ds_ = nullptr;
network::GridIndex* TrainedModelTest::index_ = nullptr;
std::shared_ptr<LhmmModel>* TrainedModelTest::model_ = nullptr;

TEST_F(TrainedModelTest, EmbeddingsAndNormsPopulated) {
  const LhmmModel& m = **model_;
  EXPECT_EQ(m.embeddings.rows(), m.graph->num_nodes());
  EXPECT_GT(m.embeddings.SquaredNorm(), 0.0f);
  EXPECT_GT(m.obs_dist_norm.std, 1e-3f);
  EXPECT_GT(m.trans_len_norm.std, 1e-3f);
}

TEST_F(TrainedModelTest, MatcherProducesConnectedPaths) {
  LhmmMatcher matcher(&ds_->network, index_, *model_);
  traj::FilterConfig filters;
  int matched = 0;
  for (const auto& mt : ds_->test) {
    const traj::Trajectory t = traj::DeduplicateTowers(
        traj::PreprocessCellular(mt.cellular, filters));
    const matchers::MatchResult r = matcher.Match(t);
    if (r.path.empty()) continue;
    ++matched;
    // Expanded paths may contain rare discontinuities (unreachable within
    // the bound); count them.
    int breaks = 0;
    for (size_t i = 1; i < r.path.size(); ++i) {
      if (!ds_->network.AreConsecutive(r.path[i - 1], r.path[i])) ++breaks;
    }
    EXPECT_LE(breaks, 2);
  }
  EXPECT_EQ(matched, static_cast<int>(ds_->test.size()));
}

TEST_F(TrainedModelTest, ObservationProbabilitiesAreProbabilities) {
  LhmmMatcher matcher(&ds_->network, index_, *model_);
  traj::FilterConfig filters;
  const traj::Trajectory t = traj::DeduplicateTowers(
      traj::PreprocessCellular(ds_->test[0].cellular, filters));
  const matchers::MatchResult r = matcher.Match(t);
  for (const auto& cs : r.candidates) {
    for (const auto& c : cs) {
      EXPECT_GE(c.observation, 0.0);
      EXPECT_LE(c.observation, 1.0);
    }
    // Candidate sets respect k (plus possible shortcut additions).
    EXPECT_LE(static_cast<int>(cs.size()),
              (*model_)->config.k + 8);
  }
}

TEST_F(TrainedModelTest, SaveLoadRoundTrip) {
  const LhmmModel& m = **model_;
  const std::string path = "/tmp/lhmm_test_model.bin";
  ASSERT_TRUE(m.Save(path).ok());

  // Rebuild the same architecture untrained, load, compare embeddings.
  LhmmConfig cfg = m.config;
  cfg.obs_steps = 0;
  cfg.trans_steps = 0;
  cfg.fusion_steps = 0;
  TrainInputs inputs;
  inputs.net = &ds_->network;
  inputs.index = index_;
  inputs.num_towers = static_cast<int>(ds_->towers.size());
  inputs.train = &ds_->train;
  std::shared_ptr<LhmmModel> fresh = TrainLhmm(inputs, cfg);
  ASSERT_TRUE(fresh->Load(path).ok());
  ASSERT_EQ(fresh->embeddings.rows(), m.embeddings.rows());
  for (int i = 0; i < m.embeddings.size(); ++i) {
    ASSERT_FLOAT_EQ(fresh->embeddings.data()[i], m.embeddings.data()[i]);
  }
  EXPECT_FLOAT_EQ(fresh->obs_dist_norm.mean, m.obs_dist_norm.mean);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".aux");
}

TEST_F(TrainedModelTest, EmbeddingNeighborsAreWellFormed) {
  const LhmmModel& m = **model_;
  const auto towers = m.NearestTowers(0, 5);
  ASSERT_EQ(towers.size(), 5u);
  for (const auto& [id, sim] : towers) {
    EXPECT_NE(id, 0);
    EXPECT_GE(sim, -1.0 - 1e-6);
    EXPECT_LE(sim, 1.0 + 1e-6);
  }
  // Similarities are returned in descending order.
  for (size_t i = 1; i < towers.size(); ++i) {
    EXPECT_GE(towers[i - 1].second, towers[i].second);
  }
  const auto segs = m.NearestSegments(0, 5);
  ASSERT_EQ(segs.size(), 5u);
  for (const auto& [id, sim] : segs) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, ds_->network.num_segments());
  }
  // Out-of-range tower returns empty.
  EXPECT_TRUE(m.NearestTowers(-1, 3).empty());
}

TEST_F(TrainedModelTest, AblationFlagsChangeArchitecture) {
  LhmmConfig cfg;
  cfg.use_implicit_observation = false;
  cfg.obs_steps = 2;
  cfg.trans_steps = 2;
  cfg.fusion_steps = 5;
  cfg.encoder.dim = 16;
  TrainInputs inputs;
  inputs.net = &ds_->network;
  inputs.index = index_;
  inputs.num_towers = static_cast<int>(ds_->towers.size());
  inputs.train = &ds_->train;
  std::shared_ptr<LhmmModel> ablated = TrainLhmm(inputs, cfg);
  EXPECT_FALSE(ablated->obs->use_implicit());
  LhmmMatcher matcher(&ds_->network, index_, ablated, "LHMM-O");
  EXPECT_EQ(matcher.name(), "LHMM-O");
  traj::FilterConfig filters;
  const traj::Trajectory t = traj::DeduplicateTowers(
      traj::PreprocessCellular(ds_->test[0].cellular, filters));
  EXPECT_FALSE(matcher.Match(t).path.empty());
}

}  // namespace
}  // namespace lhmm::lhmm
