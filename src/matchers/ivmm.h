#ifndef LHMM_MATCHERS_IVMM_H_
#define LHMM_MATCHERS_IVMM_H_

#include <memory>
#include <string>

#include "hmm/classic_models.h"
#include "matchers/matcher.h"
#include "network/grid_index.h"
#include "network/path_cache.h"

namespace lhmm::matchers {

/// IVMM [10]: interactive-voting map matching. Classical ST scores, but the
/// final assignment of each point is decided by voting: for every point i and
/// candidate j, a constrained DP is run that forces the path through (i, j);
/// each point's matched candidate on that path receives a distance-weighted
/// vote, and the candidate with most votes wins.
class IvmmMatcher : public MapMatcher {
 public:
  IvmmMatcher(const network::RoadNetwork* net, const network::GridIndex* index,
              const hmm::ClassicModelConfig& models, int k = 45);
  ~IvmmMatcher() override;

  std::string name() const override { return "IVMM"; }
  MatchResult Match(const traj::Trajectory& cellular) override;
  bool ProvidesCandidates() const override { return true; }
  void UseSharedRouter(network::CachedRouter* shared) override;

  /// Streaming form: IVMM's voting needs the whole trajectory, so its online
  /// session runs fixed-lag Viterbi over the same ST scores (Gaussian P_O,
  /// classic P_T) — the DP that voting perturbs.
  bool SupportsStreaming() const override { return true; }
  std::unique_ptr<StreamingSession> OpenSession(const StreamConfig& config) override;

 private:
  const network::RoadNetwork* net_;
  const network::GridIndex* index_;
  hmm::ClassicModelConfig models_;
  int k_;
  std::unique_ptr<network::SegmentRouter> router_;
  std::unique_ptr<network::CachedRouter> cached_router_;
  network::CachedRouter* active_router_ = nullptr;
  std::unique_ptr<hmm::GaussianObservationModel> obs_;
  std::unique_ptr<hmm::ClassicTransitionModel> trans_;
};

}  // namespace lhmm::matchers

#endif  // LHMM_MATCHERS_IVMM_H_
