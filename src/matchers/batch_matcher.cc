#include "matchers/batch_matcher.h"

#include <algorithm>
#include <atomic>

#include "core/logging.h"
#include "core/stopwatch.h"

namespace lhmm::matchers {

BatchMatcher::BatchMatcher(MatcherFactory factory, const BatchConfig& config)
    : factory_(std::move(factory)), config_(config) {
  CHECK(factory_ != nullptr);
  if (config_.shared_router == nullptr &&
      config_.router_backend == network::RouterBackend::kCH) {
    CHECK(config_.ch_network != nullptr && config_.ch_graph != nullptr)
        << "RouterBackend::kCH requires ch_network and ch_graph";
    owned_router_ = std::make_unique<network::CachedRouter>(config_.ch_network,
                                                            config_.ch_graph);
    config_.shared_router = owned_router_.get();
  }
  num_threads_ = config_.num_threads > 0 ? config_.num_threads
                                         : core::ThreadPool::DefaultThreadCount();
  workers_.push_back(factory_());
  CHECK(workers_[0] != nullptr) << "factory returned null matcher";
  if (config_.shared_router != nullptr) {
    workers_[0]->UseSharedRouter(config_.shared_router);
  }
  probe_ = workers_[0].get();
  if (num_threads_ > 1) {
    pool_ = std::make_unique<core::ThreadPool>(num_threads_);
  }
}

BatchMatcher::~BatchMatcher() = default;

MapMatcher* BatchMatcher::Worker(int w) {
  // Called from the main thread only (before tasks are submitted).
  while (static_cast<int>(workers_.size()) <= w) {
    workers_.push_back(factory_());
    CHECK(workers_.back() != nullptr) << "factory returned null matcher";
    if (config_.shared_router != nullptr) {
      workers_.back()->UseSharedRouter(config_.shared_router);
    }
  }
  return workers_[w].get();
}

void BatchMatcher::ForEach(int64_t n,
                           const std::function<void(MapMatcher*, int64_t)>& fn) {
  stats_ = BatchStats{};
  stats_.num_threads = num_threads_;
  stats_.items = n;
  if (n <= 0) return;
  core::Stopwatch wall;
  if (num_threads_ == 1 || n == 1) {
    MapMatcher* m = Worker(0);
    for (int64_t i = 0; i < n; ++i) fn(m, i);
    stats_.wall_s = wall.ElapsedSeconds();
    stats_.work_s = stats_.wall_s;
    return;
  }
  const int active = static_cast<int>(
      std::min<int64_t>(static_cast<int64_t>(num_threads_), n));
  for (int w = 0; w < active; ++w) Worker(w);  // Clone before going parallel.
  std::atomic<int64_t> next{0};
  std::vector<double> busy(active, 0.0);  // Per-worker slot: no sharing.
  for (int w = 0; w < active; ++w) {
    MapMatcher* m = workers_[w].get();
    double* busy_slot = &busy[w];
    pool_->Submit([m, n, &next, &fn, busy_slot] {
      core::Stopwatch watch;
      for (int64_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(m, i);
      }
      *busy_slot = watch.ElapsedSeconds();
    });
  }
  pool_->Wait();
  stats_.wall_s = wall.ElapsedSeconds();
  for (double b : busy) stats_.work_s += b;
}

std::vector<MatchResult> BatchMatcher::MatchAll(
    const std::vector<traj::Trajectory>& trajs, std::vector<double>* times_s) {
  const int64_t n = static_cast<int64_t>(trajs.size());
  std::vector<MatchResult> results(n);
  std::vector<double> times(n, 0.0);
  ForEach(n, [&trajs, &results, &times](MapMatcher* m, int64_t i) {
    core::Stopwatch watch;
    results[i] = m->Match(trajs[i]);
    times[i] = watch.ElapsedSeconds();
  });
  if (times_s != nullptr) *times_s = std::move(times);
  return results;
}

}  // namespace lhmm::matchers
