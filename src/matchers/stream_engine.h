#ifndef LHMM_MATCHERS_STREAM_ENGINE_H_
#define LHMM_MATCHERS_STREAM_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/status.h"
#include "core/thread_pool.h"
#include "matchers/batch_matcher.h"
#include "matchers/matcher.h"
#include "network/path_cache.h"

namespace lhmm::matchers {

/// What happens to a Push() when a session's inbox is at max_inbox.
enum class BackpressurePolicy {
  kReject,     ///< Push returns kUnavailable; the point is not queued.
  kDropOldest  ///< The oldest queued point is discarded to make room.
};

struct StreamEngineConfig {
  /// Worker threads; 0 means core::ThreadPool::DefaultThreadCount(); 1 runs
  /// every event inline on the caller thread (no pool).
  int num_threads = 0;
  /// Fixed lag of every session opened by this engine.
  int lag = 8;
  /// Optional thread-safe route cache shared by all sessions (installed into
  /// each session's matcher clone via MapMatcher::UseSharedRouter), so route
  /// results amortize across concurrent trajectories. Pre-heating it with
  /// CachedRouter::WarmAll removes first-query latency spikes. Takes
  /// precedence over `router_backend` when set.
  network::CachedRouter* shared_router = nullptr;
  /// Routing backend when the engine owns its shared router: with kCH (and
  /// `shared_router` null) the engine builds a CachedRouter whose misses run
  /// corridor-pruned CH queries over `ch_graph` — byte-identical results,
  /// faster cold misses. Requires `ch_network`/`ch_graph` (both outliving
  /// the engine). See BatchConfig for the batch-side twin of this knob.
  network::RouterBackend router_backend = network::RouterBackend::kDijkstra;
  const network::RoadNetwork* ch_network = nullptr;
  const network::CHGraph* ch_graph = nullptr;
  /// Bound on each session's pending-event queue; 0 = unbounded. When a
  /// producer outruns the pump, `backpressure` decides what gives. The
  /// end-of-stream sentinel is never rejected or dropped.
  int max_inbox = 0;
  BackpressurePolicy backpressure = BackpressurePolicy::kReject;
  /// Idle-session TTL in logical-clock ticks (see AdvanceClock); a live
  /// session with no Push for `session_ttl` ticks is evicted (flushed and
  /// closed as if Finish had been called). 0 disables TTL eviction.
  int64_t session_ttl = 0;
  /// Cap on concurrently live sessions; when Open() would exceed it, the
  /// least-recently-active live session is evicted first. 0 = uncapped.
  int64_t max_live_sessions = 0;
  /// Reject obviously broken points at the producer boundary (non-finite
  /// coordinates/timestamps, timestamps moving backwards within a session)
  /// with kInvalidArgument instead of feeding them to the matcher.
  bool validate_points = true;
};

/// Handle of one live session; dense, assigned by Open() in call order.
using SessionId = int64_t;

/// Lifecycle of a session, queryable at any time via state().
enum class SessionState {
  kLive,      ///< Open and accepting pushes (or still draining its inbox).
  kFinished,  ///< Finish() processed; Committed()/Stats() are final.
  kEvicted,   ///< Closed by TTL or the live-session cap; output is final.
  kExpired,   ///< Closed by its deadline; Committed() is the partial prefix.
  kPoisoned   ///< A pump error or Quarantine() isolated it; see SessionError().
};

/// Everything needed to resume one live session in another engine (or
/// process): the session's resumable matching state plus the engine's
/// producer-side validation state. Produced by CheckpointSession, consumed by
/// OpenRestored.
struct SessionCheckpoint {
  SessionSnapshot session;
  double last_time = 0.0;  ///< Timestamp of the last accepted point.
  bool seen_point = false;
};

/// Multiplexes many concurrent fixed-lag streaming sessions over one
/// core::ThreadPool. Each session gets its own matcher clone from the
/// factory (sessions borrow their matcher's per-trajectory model state, so
/// clones are what make concurrency safe — same design as BatchMatcher).
///
/// Ordering contract: events of one session are processed in the exact order
/// they were enqueued (an actor-style inbox with at most one pump task per
/// session in flight), while different sessions interleave freely across the
/// pool. Because each session's computation only depends on its own ordered
/// event stream — and the shared route cache is semantically transparent —
/// committed outputs are byte-identical for any thread count and any
/// cross-session arrival interleaving (see tests/stream_test.cc).
///
/// Serving hardening on top of that contract:
///  - Bounded inboxes with a backpressure policy, so one slow session cannot
///    take down the process. Which points get dropped under kDropOldest
///    depends on pump timing and is NOT deterministic across thread counts.
///  - A logical clock (AdvanceClock) drives idle-TTL eviction, and Open()
///    enforces max_live_sessions by evicting the least-recently-active
///    session. Both decisions are made on the producer thread from producer
///    state only, so eviction IS deterministic across thread counts.
///  - Per-session error quarantine: an exception while processing a session's
///    events poisons that session (its Status is kept, its queue discarded,
///    its resources freed) and never crashes the pump or other sessions.
///    Poisoned sessions never report finished(); check state().
///  - A finished session's matcher and session objects are freed immediately;
///    the final committed path and stats stay queryable. Memory therefore
///    scales with live sessions, not with sessions ever opened.
///
/// Thread safety: Open/Push/Finish/AdvanceClock/Barrier may be called from
/// one producer thread (or externally synchronized producers). Committed()/
/// Stats() for a session are valid once finished(id) is true or after
/// Barrier().
class StreamEngine {
 public:
  explicit StreamEngine(MatcherFactory factory,
                        const StreamEngineConfig& config = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Creates a new session (matcher clone + fixed-lag session) and returns
  /// its id. The clone is built on the calling thread. May first evict the
  /// least-recently-active live session to honor max_live_sessions.
  /// Crashes (CHECK) when the factory's family has no streaming form; serving
  /// front ends should use TryOpen instead.
  SessionId Open();

  /// Like Open(), but an unsupported matcher family (SupportsStreaming()
  /// false / OpenSession() == nullptr — the seq2seq contract) comes back as a
  /// typed kUnimplemented Status instead of a crash. The overload taking a
  /// factory opens the session from that factory instead of the engine's own
  /// — the degrade ladder of srv::MatchServer uses it to mix matcher tiers
  /// inside one engine.
  core::Result<SessionId> TryOpen();
  core::Result<SessionId> TryOpen(const MatcherFactory& factory);

  /// Snapshots a live, fully drained session (call Barrier() first; a session
  /// with queued or in-flight events fails with kFailedPrecondition).
  /// kUnimplemented when the session's family is not checkpointable.
  core::Result<SessionCheckpoint> CheckpointSession(SessionId id);

  /// Opens a fresh session and restores `checkpoint` into it before any
  /// event is processed, so its continued committed output is byte-identical
  /// to the checkpointed session's future. Same typed errors as TryOpen.
  core::Result<SessionId> OpenRestored(const SessionCheckpoint& checkpoint);
  core::Result<SessionId> OpenRestored(const SessionCheckpoint& checkpoint,
                                       const MatcherFactory& factory);

  /// Enqueues the next point of session `id`. Fails (without crashing) with
  /// kInvalidArgument for a malformed point, kFailedPrecondition for a
  /// closed/full session, or the stored error for a poisoned one.
  core::Status Push(SessionId id, const traj::TrajPoint& point);

  /// Push() that waits out inbox backpressure instead of rejecting: on
  /// kUnavailable (inbox full) it drains the engine with Barrier() and
  /// retries, so the point is either accepted or fails for a real reason
  /// (closed, expired, poisoned, invalid). Crash-recovery replay uses this —
  /// a journaled point was accepted once, so replay must accept it too
  /// regardless of pump timing. Producer-side, like Push.
  core::Status PushBlocking(SessionId id, const traj::TrajPoint& point);

  /// Enqueues end-of-stream for session `id`: pending points flush and the
  /// session's committed path becomes final. Fails with kFailedPrecondition
  /// if the session is already closed.
  core::Status Finish(SessionId id);

  /// Advances the engine's logical clock to max(current, now), evicts every
  /// live session idle for >= session_ttl ticks, and expires every live
  /// session past its deadline (see SetDeadline). The clock only moves when
  /// the producer calls this, so eviction and expiry are reproducible: they
  /// depend on the producer's call sequence, never on worker timing.
  void AdvanceClock(int64_t now);

  /// Arms (or with 0 disarms) an absolute logical-clock deadline for a live
  /// session. When AdvanceClock reaches the deadline the session is closed
  /// through the normal end-of-stream pump — its pending window flushes and
  /// Committed() holds the partial prefix — and deadline_expired(id) turns
  /// true (state() == kExpired once the flush is processed).
  core::Status SetDeadline(SessionId id, int64_t deadline_tick);

  /// True once the session was closed by its deadline.
  bool deadline_expired(SessionId id) const;

  /// The absolute deadline currently armed on the session (0 = none).
  /// Producer-side, like SetDeadline; checkpointing persists this so a
  /// restored session expires at the original tick, not a re-derived one.
  int64_t deadline_tick(SessionId id) const;

  /// Isolates a session whose pump appears wedged (srv::Watchdog's lever):
  /// the session is closed and poisoned with kUnavailable through the same
  /// SessionError path as a pump exception, its queue is discarded, and its
  /// resources are freed as soon as no pump task holds them. Fails with
  /// kFailedPrecondition on an already-finished session; quarantining an
  /// already-poisoned session is a no-op.
  core::Status Quarantine(SessionId id, const std::string& reason);

  /// Pump progress heartbeat: events of this session fully processed so far
  /// (points and the end-of-stream sentinel). Monotonic; a session with a
  /// non-empty inbox whose count stops moving has a wedged pump.
  int64_t processed_events(SessionId id) const;

  /// Events currently queued for this session (points + sentinel).
  int64_t inbox_depth(SessionId id) const;

  /// Blocks until every enqueued event has been processed. Producers must be
  /// quiescent while waiting. The engine remains usable afterwards.
  void Barrier();

  /// True once Finish(id) (or an eviction) has been fully processed. Stays
  /// false forever for poisoned sessions — use state() for liveness checks.
  bool finished(SessionId id) const;

  SessionState state(SessionId id) const;

  /// OK unless the session is poisoned, in which case the quarantined error.
  core::Status SessionError(SessionId id) const;

  /// The session's committed path. Final after finished(id) / Barrier().
  const std::vector<network::SegmentId>& Committed(SessionId id) const;

  SessionStats Stats(SessionId id) const;

  /// Sum of all sessions' stats (valid under the same conditions).
  SessionStats TotalStats() const;

  int64_t num_sessions() const;
  /// Sessions currently open (not yet finished, evicted, or poisoned-closed).
  int64_t live_sessions() const { return live_; }
  int64_t clock() const { return clock_; }
  int64_t evicted_sessions() const { return evicted_sessions_; }
  int64_t expired_sessions() const { return expired_sessions_; }
  int64_t quarantined_sessions() const { return quarantined_sessions_; }
  /// Points discarded by kDropOldest backpressure, across all sessions.
  int64_t dropped_points() const {
    return dropped_points_.load(std::memory_order_relaxed);
  }
  /// Pushes refused at the producer boundary (validation or kReject).
  int64_t rejected_pushes() const {
    return rejected_pushes_.load(std::memory_order_relaxed);
  }
  int num_threads() const { return num_threads_; }

 private:
  /// One session's actor state. `inbox` holds pending events in arrival
  /// order (nullopt = end-of-stream); `scheduled` is true while a pump task
  /// for this slot is queued or running, which is what guarantees per-session
  /// FIFO processing: there is never more than one. `mu` guards the inbox
  /// and, once the slot winds down, the handoff of session/matcher into the
  /// final_* snapshot. The last_* fields are producer-side only.
  struct Slot {
    std::mutex mu;
    std::deque<std::optional<traj::TrajPoint>> inbox;
    bool scheduled = false;
    std::unique_ptr<MapMatcher> matcher;
    std::unique_ptr<StreamingSession> session;
    std::vector<network::SegmentId> final_committed;
    SessionStats final_stats;
    core::Status error;                 ///< Guarded by mu; set when poisoned.
    std::atomic<bool> closed{false};    ///< Finish()/eviction was enqueued.
    std::atomic<bool> finished{false};  ///< End-of-stream was processed.
    std::atomic<bool> evicted{false};   ///< Closed by TTL or the cap.
    std::atomic<bool> expired{false};   ///< Closed by its deadline.
    std::atomic<bool> poisoned{false};  ///< Quarantined after an error.
    /// Pump heartbeat: events fully processed (watchdog progress signal).
    std::atomic<int64_t> processed{0};
    int64_t last_activity = 0;  ///< Logical time of Open()/last Push().
    int64_t deadline_tick = 0;  ///< Absolute deadline; 0 = none. Producer-side.
    double last_time = 0.0;     ///< Timestamp of the last accepted point.
    bool seen_point = false;
  };

  Slot* slot(SessionId id) const;
  core::Status Enqueue(Slot* s, std::optional<traj::TrajPoint> event);
  void Pump(Slot* s);
  void Process(Slot* s, std::optional<traj::TrajPoint>& event);
  /// Quarantines the slot: stores the error, frees its matcher/session,
  /// discards queued events. Later events for the slot are ignored.
  void Poison(Slot* s, const std::string& what);
  /// Closes a live slot as evicted and enqueues its end-of-stream sentinel.
  void Evict(Slot* s);
  /// Closes a live slot as deadline-expired; same flush path as Evict.
  void Expire(Slot* s);
  /// Shared body of TryOpen/OpenRestored: clones from `factory`, optionally
  /// restores `checkpoint` before the session can see any event.
  core::Result<SessionId> OpenInternal(const MatcherFactory& factory,
                                       const SessionCheckpoint* checkpoint);

  MatcherFactory factory_;
  StreamEngineConfig config_;
  /// Backing CachedRouter when config_.router_backend == kCH and the caller
  /// did not supply shared_router; config_.shared_router aliases it.
  std::unique_ptr<network::CachedRouter> owned_router_;
  int num_threads_;
  std::unique_ptr<core::ThreadPool> pool_;  ///< Null when num_threads_ == 1.
  mutable std::mutex slots_mu_;             ///< Guards the slots_ container.
  std::vector<std::unique_ptr<Slot>> slots_;
  int64_t clock_ = 0;             ///< Producer-side logical time.
  int64_t live_ = 0;              ///< Producer-side live-session count.
  int64_t evicted_sessions_ = 0;  ///< Producer-side eviction count.
  int64_t expired_sessions_ = 0;  ///< Producer-side deadline-expiry count.
  int64_t quarantined_sessions_ = 0;  ///< Producer-side Quarantine() count.
  std::atomic<int64_t> dropped_points_{0};
  std::atomic<int64_t> rejected_pushes_{0};
};

}  // namespace lhmm::matchers

#endif  // LHMM_MATCHERS_STREAM_ENGINE_H_
