#ifndef LHMM_MATCHERS_STREAM_ENGINE_H_
#define LHMM_MATCHERS_STREAM_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/thread_pool.h"
#include "matchers/batch_matcher.h"
#include "matchers/matcher.h"
#include "network/path_cache.h"

namespace lhmm::matchers {

struct StreamEngineConfig {
  /// Worker threads; 0 means core::ThreadPool::DefaultThreadCount(); 1 runs
  /// every event inline on the caller thread (no pool).
  int num_threads = 0;
  /// Fixed lag of every session opened by this engine.
  int lag = 8;
  /// Optional thread-safe route cache shared by all sessions (installed into
  /// each session's matcher clone via MapMatcher::UseSharedRouter), so route
  /// results amortize across concurrent trajectories. Pre-heating it with
  /// CachedRouter::WarmAll removes first-query latency spikes.
  network::CachedRouter* shared_router = nullptr;
};

/// Handle of one live session; dense, assigned by Open() in call order.
using SessionId = int64_t;

/// Multiplexes many concurrent fixed-lag streaming sessions over one
/// core::ThreadPool. Each session gets its own matcher clone from the
/// factory (sessions borrow their matcher's per-trajectory model state, so
/// clones are what make concurrency safe — same design as BatchMatcher).
///
/// Ordering contract: events of one session are processed in the exact order
/// they were enqueued (an actor-style inbox with at most one pump task per
/// session in flight), while different sessions interleave freely across the
/// pool. Because each session's computation only depends on its own ordered
/// event stream — and the shared route cache is semantically transparent —
/// committed outputs are byte-identical for any thread count and any
/// cross-session arrival interleaving (see tests/stream_test.cc).
///
/// Thread safety: Open/Push/Finish/Barrier may be called from one producer
/// thread (or externally synchronized producers). Committed()/Stats() for a
/// session are valid once finished(id) is true or after Barrier().
class StreamEngine {
 public:
  explicit StreamEngine(MatcherFactory factory,
                        const StreamEngineConfig& config = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Creates a new session (matcher clone + fixed-lag session) and returns
  /// its id. The clone is built on the calling thread.
  SessionId Open();

  /// Enqueues the next point of session `id`. Invalid after Finish(id).
  void Push(SessionId id, const traj::TrajPoint& point);

  /// Enqueues end-of-stream for session `id`: pending points flush and the
  /// session's committed path becomes final. At most once per session.
  void Finish(SessionId id);

  /// Blocks until every enqueued event has been processed. Producers must be
  /// quiescent while waiting. The engine remains usable afterwards.
  void Barrier();

  /// True once Finish(id) has been fully processed.
  bool finished(SessionId id) const;

  /// The session's committed path. Final after finished(id) / Barrier().
  const std::vector<network::SegmentId>& Committed(SessionId id) const;

  SessionStats Stats(SessionId id) const;

  /// Sum of all sessions' stats (valid under the same conditions).
  SessionStats TotalStats() const;

  int64_t num_sessions() const;
  int num_threads() const { return num_threads_; }

 private:
  /// One session's actor state. `inbox` holds pending events in arrival
  /// order (nullopt = end-of-stream); `scheduled` is true while a pump task
  /// for this slot is queued or running, which is what guarantees per-session
  /// FIFO processing: there is never more than one.
  struct Slot {
    std::mutex mu;
    std::deque<std::optional<traj::TrajPoint>> inbox;
    bool scheduled = false;
    std::atomic<bool> closed{false};    ///< Finish() was enqueued.
    std::atomic<bool> finished{false};  ///< Finish() was processed.
    std::unique_ptr<MapMatcher> matcher;
    std::unique_ptr<StreamingSession> session;
  };

  Slot* slot(SessionId id) const;
  void Enqueue(Slot* s, std::optional<traj::TrajPoint> event);
  void Pump(Slot* s);
  static void Process(Slot* s, std::optional<traj::TrajPoint>& event);

  MatcherFactory factory_;
  StreamEngineConfig config_;
  int num_threads_;
  std::unique_ptr<core::ThreadPool> pool_;  ///< Null when num_threads_ == 1.
  mutable std::mutex slots_mu_;             ///< Guards the slots_ container.
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace lhmm::matchers

#endif  // LHMM_MATCHERS_STREAM_ENGINE_H_
