#include "matchers/seq2seq.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "nn/serialize.h"
#include "network/path_cache.h"
#include "network/shortest_path.h"
#include "geo/polyline.h"

namespace lhmm::matchers {

namespace {

/// Sinusoidal positional encoding row for position `pos`.
nn::Matrix PositionalRow(int pos, int dim) {
  nn::Matrix row(1, dim);
  for (int j = 0; j < dim; ++j) {
    const double angle = pos / std::pow(10000.0, 2.0 * (j / 2) / dim);
    row(0, j) = static_cast<float>((j % 2 == 0) ? std::sin(angle) : std::cos(angle));
  }
  return row;
}

}  // namespace

GruCell::GruCell(int input_dim, int hidden_dim, core::Rng* rng)
    : hidden_dim_(hidden_dim),
      xz_(input_dim, hidden_dim, rng),
      hz_(hidden_dim, hidden_dim, rng),
      xr_(input_dim, hidden_dim, rng),
      hr_(hidden_dim, hidden_dim, rng),
      xn_(input_dim, hidden_dim, rng),
      hn_(hidden_dim, hidden_dim, rng) {}

nn::Tensor GruCell::Step(const nn::Tensor& x, const nn::Tensor& h) const {
  const nn::Tensor z = nn::SigmoidT(nn::AddT(xz_.Forward(x), hz_.Forward(h)));
  const nn::Tensor r = nn::SigmoidT(nn::AddT(xr_.Forward(x), hr_.Forward(h)));
  const nn::Tensor n =
      nn::TanhT(nn::AddT(xn_.Forward(x), hn_.Forward(nn::MulT(r, h))));
  const nn::Tensor ones(nn::Matrix::Full(1, hidden_dim_, 1.0f));
  return nn::AddT(nn::MulT(nn::SubT(ones, z), h), nn::MulT(z, n));
}

nn::Matrix GruCell::Step(const nn::Matrix& x, const nn::Matrix& h) const {
  auto sigmoid = [](nn::Matrix m) {
    for (int i = 0; i < m.size(); ++i) {
      m.data()[i] = 1.0f / (1.0f + std::exp(-m.data()[i]));
    }
    return m;
  };
  auto tanh_m = [](nn::Matrix m) {
    for (int i = 0; i < m.size(); ++i) m.data()[i] = std::tanh(m.data()[i]);
    return m;
  };
  const nn::Matrix z = sigmoid(nn::AddMat(xz_.Forward(x), hz_.Forward(h)));
  const nn::Matrix r = sigmoid(nn::AddMat(xr_.Forward(x), hr_.Forward(h)));
  const nn::Matrix n =
      tanh_m(nn::AddMat(xn_.Forward(x), hn_.Forward(nn::MulMat(r, h))));
  nn::Matrix out(1, hidden_dim_);
  for (int j = 0; j < hidden_dim_; ++j) {
    out(0, j) = (1.0f - z(0, j)) * h(0, j) + z(0, j) * n(0, j);
  }
  return out;
}

void GruCell::CollectParams(std::vector<nn::Tensor>* out) {
  xz_.CollectParams(out);
  hz_.CollectParams(out);
  xr_.CollectParams(out);
  hr_.CollectParams(out);
  xn_.CollectParams(out);
  hn_.CollectParams(out);
}

struct Seq2SeqMatcher::Impl : public nn::Module {
  Impl(int num_towers, int num_segments, const Seq2SeqConfig& cfg, core::Rng* rng)
      : config(cfg),
        num_segments(num_segments),
        tower_embed(num_towers + 1, cfg.embed_dim, rng),
        seg_embed(num_segments + 1, cfg.embed_dim, rng),  // Last row = BOS.
        encoder(cfg.embed_dim, cfg.hidden_dim, rng),
        in_proj(cfg.embed_dim, cfg.hidden_dim, rng),
        wq(cfg.hidden_dim, cfg.hidden_dim, rng),
        wk(cfg.hidden_dim, cfg.hidden_dim, rng),
        wv(cfg.hidden_dim, cfg.hidden_dim, rng),
        ffn(cfg.hidden_dim, cfg.hidden_dim, rng),
        decoder(cfg.embed_dim + (cfg.use_attention ? cfg.hidden_dim : 0),
                cfg.hidden_dim, rng),
        attn(cfg.hidden_dim, cfg.hidden_dim, cfg.hidden_dim, rng),
        out(cfg.hidden_dim, num_segments + 1, rng) {}  // Class S = EOS.

  void CollectParams(std::vector<nn::Tensor>* p) override {
    tower_embed.CollectParams(p);
    seg_embed.CollectParams(p);
    if (config.transformer_encoder) {
      in_proj.CollectParams(p);
      wq.CollectParams(p);
      wk.CollectParams(p);
      wv.CollectParams(p);
      ffn.CollectParams(p);
    } else {
      encoder.CollectParams(p);
    }
    decoder.CollectParams(p);
    if (config.use_attention) attn.CollectParams(p);
    out.CollectParams(p);
  }

  int TowerIndex(traj::TowerId tower) const {
    return (tower >= 0 && tower < tower_embed.count() - 1)
               ? tower
               : tower_embed.count() - 1;
  }
  int Bos() const { return num_segments; }
  int Eos() const { return num_segments; }

  /// Encoder states on the tape (n x hidden).
  nn::Tensor EncodeT(const traj::Trajectory& t) const {
    std::vector<int> idx;
    idx.reserve(t.size());
    for (int i = 0; i < t.size(); ++i) idx.push_back(TowerIndex(t[i].tower));
    nn::Tensor x = tower_embed.Forward(idx);  // n x d
    if (config.transformer_encoder) {
      // Positional encoding + one self-attention block with residual + FFN.
      nn::Matrix pos(t.size(), config.embed_dim);
      for (int i = 0; i < t.size(); ++i) {
        const nn::Matrix row = PositionalRow(i, config.embed_dim);
        for (int j = 0; j < config.embed_dim; ++j) pos(i, j) = row(0, j);
      }
      x = nn::AddT(x, nn::Tensor(pos));
      const nn::Tensor h0 = in_proj.Forward(x);  // n x hidden
      const nn::Tensor q = wq.Forward(h0);
      const nn::Tensor k = wk.Forward(h0);
      const nn::Tensor v = wv.Forward(h0);
      const float scale = 1.0f / std::sqrt(static_cast<float>(config.hidden_dim));
      const nn::Tensor scores =
          nn::ScaleT(nn::MatMulT(q, nn::TransposeT(k)), scale);
      const nn::Tensor z = nn::MatMulT(nn::SoftmaxRowsT(scores), v);
      const nn::Tensor res = nn::AddT(h0, z);
      return nn::AddT(res, nn::ReluT(ffn.Forward(res)));
    }
    std::vector<nn::Tensor> states;
    nn::Tensor h(nn::Matrix::Zeros(1, config.hidden_dim));
    for (int i = 0; i < t.size(); ++i) {
      h = encoder.Step(nn::RowsT(x, {i}), h);
      states.push_back(h);
    }
    return nn::ConcatRowsT(states);
  }

  /// Encoder states without the tape.
  nn::Matrix EncodeM(const traj::Trajectory& t) const {
    if (config.transformer_encoder) {
      nn::Matrix x(t.size(), config.embed_dim);
      for (int i = 0; i < t.size(); ++i) {
        const int idx = TowerIndex(t[i].tower);
        const nn::Matrix pos = PositionalRow(i, config.embed_dim);
        for (int j = 0; j < config.embed_dim; ++j) {
          x(i, j) = tower_embed.table().value()(idx, j) + pos(0, j);
        }
      }
      const nn::Matrix h0 = in_proj.Forward(x);
      const nn::Matrix q = wq.Forward(h0);
      const nn::Matrix k = wk.Forward(h0);
      const nn::Matrix v = wv.Forward(h0);
      nn::Matrix scores = nn::MatMulTransB(q, k);
      scores.Scale(1.0f / std::sqrt(static_cast<float>(config.hidden_dim)));
      const nn::Matrix z = nn::MatMul(nn::SoftmaxRows(scores), v);
      nn::Matrix res = nn::AddMat(h0, z);
      nn::Matrix f = ffn.Forward(res);
      for (int i = 0; i < f.size(); ++i) {
        if (f.data()[i] < 0.0f) f.data()[i] = 0.0f;
      }
      return nn::AddMat(res, f);
    }
    nn::Matrix states(t.size(), config.hidden_dim);
    nn::Matrix h(1, config.hidden_dim);
    nn::Matrix x(1, config.embed_dim);
    for (int i = 0; i < t.size(); ++i) {
      const int idx = TowerIndex(t[i].tower);
      for (int j = 0; j < config.embed_dim; ++j) {
        x(0, j) = tower_embed.table().value()(idx, j);
      }
      h = encoder.Step(x, h);
      for (int j = 0; j < config.hidden_dim; ++j) states(i, j) = h(0, j);
    }
    return states;
  }

  Seq2SeqConfig config;
  int num_segments;
  nn::Embedding tower_embed;
  nn::Embedding seg_embed;
  GruCell encoder;
  nn::Linear in_proj;
  nn::Linear wq, wk, wv, ffn;
  GruCell decoder;
  nn::AdditiveAttention attn;
  nn::Linear out;
};

Seq2SeqMatcher::Seq2SeqMatcher(const network::RoadNetwork* net,
                               const network::GridIndex* index, int num_towers,
                               const Seq2SeqConfig& config, std::string name)
    : net_(net), index_(index), config_(config), name_(std::move(name)) {
  CHECK(net != nullptr);
  CHECK(index != nullptr);
  core::Rng rng(config.seed);
  impl_ = std::make_shared<Impl>(num_towers, net->num_segments(), config, &rng);
}

Seq2SeqMatcher::~Seq2SeqMatcher() = default;

void Seq2SeqMatcher::UseSharedRouter(network::CachedRouter* shared) {
  shared_router_ = shared;
}

void Seq2SeqMatcher::Train(const std::vector<traj::MatchedTrajectory>& train,
                           const traj::FilterConfig& filters) {
  core::Rng rng(config_.seed + 1);
  nn::AdamConfig adam_cfg;
  adam_cfg.lr = config_.lr;
  adam_cfg.weight_decay = config_.weight_decay;
  nn::Adam adam(impl_->Params(), adam_cfg);

  std::vector<int> order(train.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(&order);
    const float ss_prob = config_.scheduled_sampling *
                          static_cast<float>(epoch) /
                          std::max(1, config_.epochs - 1);
    double epoch_loss = 0.0;
    int epoch_n = 0;
    for (int ti : order) {
      const traj::MatchedTrajectory& mt = train[ti];
      const traj::Trajectory t = traj::DeduplicateTowers(
          traj::PreprocessCellular(mt.cellular, filters));
      if (t.size() < 3 || mt.truth_path.empty()) continue;
      // Aligned labels: the traveled road at each point's timestamp (from the
      // co-recorded GPS ground truth, like the paper's training pipeline).
      std::vector<int> gold(t.size());
      for (int i = 0; i < t.size(); ++i) {
        gold[i] = traj::TruthSegmentAtTime(mt, *net_, t[i].t);
      }

      const nn::Tensor states = impl_->EncodeT(t);
      nn::Tensor h = nn::RowsT(states, {t.size() - 1});
      int prev_token = impl_->Bos();
      std::vector<nn::Tensor> step_logits;
      std::vector<int> labels;
      for (int i = 0; i < t.size(); ++i) {
        nn::Tensor x = impl_->seg_embed.Forward({prev_token});
        if (config_.use_attention) {
          const nn::Tensor ctx = impl_->attn.Forward(h, states, states);
          x = nn::ConcatColsT(x, ctx);
        }
        h = impl_->decoder.Step(x, h);
        const nn::Tensor logits = impl_->out.Forward(h);
        step_logits.push_back(logits);
        labels.push_back(gold[i]);
        // Scheduled sampling: sometimes feed the model's own prediction.
        if (ss_prob > 0.0f && rng.Bernoulli(ss_prob)) {
          int argmax = 0;
          const nn::Matrix& lv = logits.value();
          for (int j = 1; j < lv.cols(); ++j) {
            if (lv(0, j) > lv(0, argmax)) argmax = j;
          }
          prev_token = argmax;
        } else {
          prev_token = gold[i];
        }
      }
      const nn::Tensor all_logits = nn::ConcatRowsT(step_logits);
      const nn::Tensor loss =
          nn::SmoothedCrossEntropy(all_logits, labels, config_.label_smoothing);
      adam.ZeroGrad();
      nn::Backward(loss);
      adam.Step();
      epoch_loss += loss.value()(0, 0);
      ++epoch_n;
    }
    if (config_.verbose) {
      LOG_INFO << name_ << " epoch " << epoch << " loss "
               << (epoch_n > 0 ? epoch_loss / epoch_n : 0.0);
    }
  }
}

core::Status Seq2SeqMatcher::Save(const std::string& path) const {
  return nn::SaveParams(path, impl_->Params());
}

core::Status Seq2SeqMatcher::Load(const std::string& path) {
  std::vector<nn::Tensor> params = impl_->Params();
  return nn::LoadParams(path, &params);
}

std::unique_ptr<Seq2SeqMatcher> Seq2SeqMatcher::SharedClone() const {
  auto clone = std::unique_ptr<Seq2SeqMatcher>(new Seq2SeqMatcher());
  clone->net_ = net_;
  clone->index_ = index_;
  clone->config_ = config_;
  clone->name_ = name_;
  clone->impl_ = impl_;
  return clone;
}

std::vector<nn::Tensor> Seq2SeqMatcher::Params() const {
  return impl_->Params();
}

MatchResult Seq2SeqMatcher::Match(const traj::Trajectory& cellular) {
  MatchResult result;
  if (cellular.size() < 2) return result;
  const traj::Trajectory& t = cellular;
  const nn::Matrix states = impl_->EncodeM(t);
  nn::Matrix h(1, config_.hidden_dim);
  for (int j = 0; j < config_.hidden_dim; ++j) {
    h(0, j) = states(t.size() - 1, j);
  }
  const nn::Matrix keys = impl_->attn.ProjectKeys(states);

  // Aligned decode: step i predicts the traveled road of point i from the
  // roads near that point; the previous prediction feeds the next step (the
  // seq2seq error-propagation channel). Beam search keeps the `beam_width`
  // best hypotheses (greedy when 1).
  struct Hypothesis {
    double score = 0.0;
    nn::Matrix h;
    int prev_token = 0;
    std::vector<network::SegmentId> roads;
  };
  std::vector<Hypothesis> beam(1);
  beam[0].h = h;
  beam[0].prev_token = impl_->Bos();
  const int width = std::max(1, config_.beam_width);

  for (int i = 0; i < t.size(); ++i) {
    const auto hits = index_->Nearest(t[i].pos, config_.decode_pool);
    if (hits.empty()) continue;
    std::vector<Hypothesis> expanded;
    for (const Hypothesis& hyp : beam) {
      nn::Matrix x(1, config_.embed_dim + (config_.use_attention
                                               ? config_.hidden_dim
                                               : 0));
      for (int j = 0; j < config_.embed_dim; ++j) {
        x(0, j) = impl_->seg_embed.table().value()(hyp.prev_token, j);
      }
      if (config_.use_attention) {
        const nn::Matrix ctx = impl_->attn.ForwardProjected(hyp.h, keys, states);
        for (int j = 0; j < config_.hidden_dim; ++j) {
          x(0, config_.embed_dim + j) = ctx(0, j);
        }
      }
      const nn::Matrix nh = impl_->decoder.Step(x, hyp.h);
      nn::Matrix logits = impl_->out.Forward(nh);
      // Log-softmax over the eligible pool only.
      double max_logit = -1e18;
      for (const network::SegmentHit& hit : hits) {
        max_logit = std::max(max_logit, (double)logits(0, hit.segment));
      }
      double z = 0.0;
      for (const network::SegmentHit& hit : hits) {
        z += std::exp(logits(0, hit.segment) - max_logit);
      }
      // Top `width` continuations of this hypothesis.
      std::vector<std::pair<double, network::SegmentId>> scored;
      scored.reserve(hits.size());
      for (const network::SegmentHit& hit : hits) {
        const double logp = logits(0, hit.segment) - max_logit - std::log(z);
        scored.push_back({hyp.score + logp, hit.segment});
      }
      const int take = std::min<int>(width, static_cast<int>(scored.size()));
      std::partial_sort(
          scored.begin(), scored.begin() + take, scored.end(),
          [](const auto& a, const auto& b) { return a.first > b.first; });
      for (int c = 0; c < take; ++c) {
        Hypothesis next;
        next.score = scored[c].first;
        next.h = nh;
        next.prev_token = scored[c].second;
        next.roads = hyp.roads;
        next.roads.push_back(scored[c].second);
        expanded.push_back(std::move(next));
      }
    }
    if (expanded.empty()) continue;
    std::sort(expanded.begin(), expanded.end(),
              [](const Hypothesis& a, const Hypothesis& b) {
                return a.score > b.score;
              });
    if (static_cast<int>(expanded.size()) > width) expanded.resize(width);
    beam = std::move(expanded);
  }
  const std::vector<network::SegmentId>& roads = beam[0].roads;
  if (roads.empty()) return result;

  // Connect consecutive predictions with shortest paths.
  network::CachedRouter* routing = shared_router_;
  if (routing == nullptr) {
    if (router_ == nullptr) {
      router_ = std::make_unique<network::SegmentRouter>(net_);
      cached_router_ = std::make_unique<network::CachedRouter>(router_.get());
    }
    routing = cached_router_.get();
  }
  result.path.push_back(roads[0]);
  for (size_t i = 1; i < roads.size(); ++i) {
    const double straight =
        geo::Distance(t[static_cast<int>(i) - 1].pos, t[static_cast<int>(i)].pos);
    const auto route = routing->Route1(
        roads[i - 1], roads[i], std::min(12000.0, 4.0 * straight + 1500.0));
    if (route.has_value()) {
      for (network::SegmentId sid : route->segments) {
        if (result.path.back() != sid) result.path.push_back(sid);
      }
    } else if (result.path.back() != roads[i]) {
      result.path.push_back(roads[i]);
    }
  }
  return result;
}

std::unique_ptr<Seq2SeqMatcher> MakeDeepMm(const network::RoadNetwork* net,
                                           const network::GridIndex* index,
                                           int num_towers, uint64_t seed) {
  Seq2SeqConfig cfg;
  cfg.use_attention = true;
  cfg.epochs = 3;
  cfg.seed = seed;
  return std::make_unique<Seq2SeqMatcher>(net, index, num_towers, cfg, "DeepMM");
}

std::unique_ptr<Seq2SeqMatcher> MakeTransformerMm(const network::RoadNetwork* net,
                                                  const network::GridIndex* index,
                                                  int num_towers, uint64_t seed) {
  Seq2SeqConfig cfg;
  cfg.use_attention = true;
  cfg.transformer_encoder = true;
  cfg.epochs = 3;
  cfg.seed = seed;
  return std::make_unique<Seq2SeqMatcher>(net, index, num_towers, cfg,
                                          "TransformerMM");
}

std::unique_ptr<Seq2SeqMatcher> MakeDmm(const network::RoadNetwork* net,
                                        const network::GridIndex* index,
                                        int num_towers, uint64_t seed) {
  Seq2SeqConfig cfg;
  cfg.use_attention = true;
  cfg.scheduled_sampling = 0.35f;
  cfg.hidden_dim = 72;
  cfg.epochs = 5;
  cfg.beam_width = 3;
  cfg.seed = seed;
  return std::make_unique<Seq2SeqMatcher>(net, index, num_towers, cfg, "DMM");
}

}  // namespace lhmm::matchers
