#ifndef LHMM_MATCHERS_MATCHER_H_
#define LHMM_MATCHERS_MATCHER_H_

#include <memory>
#include <string>
#include <vector>

#include "hmm/candidate.h"
#include "matchers/streaming.h"
#include "network/road_network.h"
#include "traj/trajectory.h"

namespace lhmm::network {
class CachedRouter;
}  // namespace lhmm::network

namespace lhmm::matchers {

/// Output of one map-matching call.
struct MatchResult {
  /// The matched path P as consecutive road segments (may be empty when the
  /// trajectory could not be matched at all).
  std::vector<network::SegmentId> path;
  /// HMM-family diagnostics: final candidate set per retained point and the
  /// original trajectory index of each retained point. Empty for matchers
  /// that do not prepare candidates (seq2seq family).
  std::vector<hmm::CandidateSet> candidates;
  std::vector<int> point_index;
  /// HMM breaks survived while matching: points where no transition from the
  /// previous step existed and the matcher restarted and stitched
  /// (EngineResult::breaks semantics). 0 / 1.0 for break-free matches and
  /// for matchers without the notion (seq2seq family).
  int num_breaks = 0;
  /// Trajectory seconds spanned by the break gaps (EngineResult::gap_seconds);
  /// 0 for break-free matches and for matchers without the notion.
  double gap_seconds = 0.0;
  /// Fraction of the matched time span covered by connected sub-paths.
  double gap_coverage = 1.0;
};

/// Common interface of every map matcher in the library: the ten baselines
/// and LHMM. Input trajectories are expected to be preprocessed (SnapNet
/// filters + tower dedup) by the caller, matching the paper's pipeline.
class MapMatcher {
 public:
  virtual ~MapMatcher() = default;

  /// Short display name used in benchmark tables ("STM", "DMM", "LHMM", ...).
  virtual std::string name() const = 0;

  /// Matches one cellular trajectory to a road path.
  virtual MatchResult Match(const traj::Trajectory& cellular) = 0;

  /// True when MatchResult carries candidate sets (enables Hitting Ratio).
  virtual bool ProvidesCandidates() const { return false; }

  /// Routes this matcher's shortest-path queries through `shared` (which must
  /// outlive the matcher) instead of its private cache. CachedRouter is
  /// thread safe, so BatchMatcher installs one shared instance into every
  /// worker clone and route results amortize across threads. Sharing is a
  /// pure optimization: the cache is semantically transparent, so results are
  /// unchanged. Default: no-op (matcher keeps its private cache).
  virtual void UseSharedRouter(network::CachedRouter* shared) {}

  /// True when OpenSession() produces live streaming sessions. This is the
  /// capability query of the OpenSession contract below: call it before
  /// opening, exactly as ProvidesCandidates() gates candidate use.
  virtual bool SupportsStreaming() const { return false; }

  /// Opens a fixed-lag streaming session running this matcher's own
  /// observation/transition models through its active router. The session
  /// borrows the matcher's models (which hold per-trajectory state), so only
  /// one session per matcher may be live at a time and Match() must not be
  /// interleaved with session pushes — StreamEngine clones a matcher per
  /// session for exactly this reason.
  ///
  /// Unsupported-family contract: OpenSession returns nullptr exactly when
  /// SupportsStreaming() is false (the seq2seq family — its decoder is not
  /// windowed). Callers that cannot tolerate nullptr must either check
  /// SupportsStreaming() first or go through StreamEngine::TryOpen, which
  /// turns an unsupported family into a typed kUnimplemented Status instead
  /// of a dereference hazard.
  virtual std::unique_ptr<StreamingSession> OpenSession(
      const StreamConfig& config) {
    return nullptr;
  }
};

}  // namespace lhmm::matchers

#endif  // LHMM_MATCHERS_MATCHER_H_
