#ifndef LHMM_MATCHERS_CLASSIC_MATCHERS_H_
#define LHMM_MATCHERS_CLASSIC_MATCHERS_H_

#include <string>

#include "hmm/classic_models.h"
#include "matchers/hmm_matcher_base.h"

namespace lhmm::matchers {

/// ST-Matching [8]: Gaussian observation; transition = spatial analysis
/// (straight-line / route-length ratio) x temporal analysis (route speed vs
/// speed limits). The `+S` variant (Table III) adds the shortcut pass.
class StmMatcher : public HmmMatcherBase {
 public:
  StmMatcher(const network::RoadNetwork* net, const network::GridIndex* index,
             const hmm::ClassicModelConfig& models, const hmm::EngineConfig& engine);
  std::string name() const override {
    return config_.use_shortcuts ? "STM+S" : "STM";
  }
};

/// IF-Matching [32]: STM-style scores fused with a moving-speed consistency
/// term comparing the implied route speed with the roads' speed limits.
class IfmMatcher : public HmmMatcherBase {
 public:
  IfmMatcher(const network::RoadNetwork* net, const network::GridIndex* index,
             const hmm::ClassicModelConfig& models, const hmm::EngineConfig& engine);
  std::string name() const override { return "IFM"; }
};

/// MCM [34]: tracks multiple road candidates; the transition rewards routes
/// that stay inside the corridor between the two trajectory points (the
/// common-subsequence idea at segment granularity).
class McmMatcher : public HmmMatcherBase {
 public:
  McmMatcher(const network::RoadNetwork* net, const network::GridIndex* index,
             const hmm::ClassicModelConfig& models, const hmm::EngineConfig& engine);
  std::string name() const override { return "MCM"; }
};

/// SnapNet [12]: digital-map hints — observation is modulated by direction
/// consistency with the local trajectory heading, transitions penalize turns.
/// (Its filter pipeline runs in the shared preprocessing step.)
class SnetMatcher : public HmmMatcherBase {
 public:
  SnetMatcher(const network::RoadNetwork* net, const network::GridIndex* index,
              const hmm::ClassicModelConfig& models, const hmm::EngineConfig& engine);
  std::string name() const override { return "SNet"; }
};

/// THMM [42]: a tailored HMM for cellular data — widened observation,
/// transitions constrained by geometric (turn-angle) consistency between the
/// route and the trajectory.
class ThmmMatcher : public HmmMatcherBase {
 public:
  ThmmMatcher(const network::RoadNetwork* net, const network::GridIndex* index,
              const hmm::ClassicModelConfig& models, const hmm::EngineConfig& engine);
  std::string name() const override { return "THMM"; }
};

/// CLSTERS [41]: a calibration system — trajectory positions are smoothed by
/// a time-weighted neighborhood mean before a classic HMM match.
class ClstersMatcher : public HmmMatcherBase {
 public:
  ClstersMatcher(const network::RoadNetwork* net, const network::GridIndex* index,
                 const hmm::ClassicModelConfig& models,
                 const hmm::EngineConfig& engine);
  std::string name() const override { return "CLSTERS"; }

 protected:
  traj::Trajectory Transform(const traj::Trajectory& t) override;
};

}  // namespace lhmm::matchers

#endif  // LHMM_MATCHERS_CLASSIC_MATCHERS_H_
