#include "matchers/classic_matchers.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "geo/polyline.h"

namespace lhmm::matchers {

namespace {

using hmm::Candidate;
using hmm::CandidateSet;
using hmm::ClassicModelConfig;
using hmm::ClassicTransitionModel;
using hmm::GaussianObservationModel;

/// Mean speed implied by traversing `route` between the two samples, m/s;
/// 0 when the time gap is degenerate.
double RouteSpeed(const traj::Trajectory& t, int prev_index, int cur_index,
                  const network::Route& route) {
  const double dt = t[cur_index].t - t[prev_index].t;
  if (dt <= 1.0) return 0.0;
  return route.length / dt;
}

/// Mean speed limit over the route's segments, m/s.
double RouteSpeedLimit(const network::RoadNetwork& net, const network::Route& route) {
  if (route.segments.empty()) return 13.9;
  double sum = 0.0;
  for (network::SegmentId sid : route.segments) sum += net.segment(sid).speed_limit;
  return sum / static_cast<double>(route.segments.size());
}

/// Total heading change along the route, radians.
double RouteTurn(const network::RoadNetwork& net, const network::Route& route) {
  std::vector<geo::Point> pts;
  for (network::SegmentId sid : route.segments) {
    const geo::Polyline& geom = net.segment(sid).geometry;
    if (pts.empty()) pts.push_back(geom.front());
    pts.push_back(geom.back());
  }
  return geo::TotalTurnOfPoints(pts);
}

/// STM transition: spatial ratio x temporal speed plausibility.
class StmTransitionModel : public ClassicTransitionModel {
 public:
  StmTransitionModel(const network::RoadNetwork* net, const ClassicModelConfig& cfg)
      : ClassicTransitionModel(cfg), net_(net) {}

  double Transition(const traj::Trajectory& t, int prev_index, int cur_index,
                    const Candidate& prev, const Candidate& cur,
                    const network::Route* route, double straight_dist) override {
    if (route == nullptr) return 0.0;
    // Spatial analysis: route length close to straight-line distance.
    const double spatial =
        route->length > 1.0 ? std::min(1.0, straight_dist / route->length) : 1.0;
    // Temporal analysis: the implied route speed should not exceed limits.
    const double v = RouteSpeed(t, prev_index, cur_index, *route);
    const double v_lim = RouteSpeedLimit(*net_, *route);
    const double temporal = std::exp(-std::max(0.0, v - v_lim) / 5.0);
    return spatial * temporal;
  }

 private:
  const network::RoadNetwork* net_;
};

/// IFM transition: classic closeness fused with speed-profile consistency
/// (the route speed should *match* the roads' typical speed, both ways).
class IfmTransitionModel : public ClassicTransitionModel {
 public:
  IfmTransitionModel(const network::RoadNetwork* net, const ClassicModelConfig& cfg)
      : ClassicTransitionModel(cfg, net), net_(net) {}

  double Transition(const traj::Trajectory& t, int prev_index, int cur_index,
                    const Candidate& prev, const Candidate& cur,
                    const network::Route* route, double straight_dist) override {
    const double base = ClassicTransitionModel::Transition(
        t, prev_index, cur_index, prev, cur, route, straight_dist);
    if (route == nullptr) return 0.0;
    const double v = RouteSpeed(t, prev_index, cur_index, *route);
    if (v <= 0.0) return base;
    const double v_lim = RouteSpeedLimit(*net_, *route);
    const double fusion = std::exp(-std::fabs(v - 0.7 * v_lim) / 8.0);
    return base * (0.5 + 0.5 * fusion);
  }

 private:
  const network::RoadNetwork* net_;
};

/// MCM transition: rewards routes whose segments stay inside the corridor
/// spanned by the two trajectory points (common sub-sequence tracking).
class McmTransitionModel : public ClassicTransitionModel {
 public:
  McmTransitionModel(const network::RoadNetwork* net, const ClassicModelConfig& cfg)
      : ClassicTransitionModel(cfg, net), net_(net) {}

  double Transition(const traj::Trajectory& t, int prev_index, int cur_index,
                    const Candidate& prev, const Candidate& cur,
                    const network::Route* route, double straight_dist) override {
    const double base = ClassicTransitionModel::Transition(
        t, prev_index, cur_index, prev, cur, route, straight_dist);
    if (route == nullptr) return 0.0;
    const geo::Point& a = t[prev_index].pos;
    const geo::Point& b = t[cur_index].pos;
    double mean_off = 0.0;
    for (network::SegmentId sid : route->segments) {
      const geo::Polyline& geom = net_->segment(sid).geometry;
      const geo::Point mid = geom.PointAt(geom.Length() / 2.0);
      mean_off += geo::DistanceToSegment(mid, a, b);
    }
    mean_off /= static_cast<double>(route->segments.size());
    const double corridor = std::exp(-mean_off / config_.obs_sigma);
    return base * (0.7 + 0.3 * corridor);
  }

 private:
  const network::RoadNetwork* net_;
};

/// SNet observation: Gaussian distance modulated by direction consistency
/// between the road bearing and the local trajectory heading.
class SnetObservationModel : public GaussianObservationModel {
 public:
  SnetObservationModel(const network::GridIndex* index,
                       const ClassicModelConfig& cfg)
      : GaussianObservationModel(index, cfg) {}

  CandidateSet Candidates(const traj::Trajectory& t, int i, int k) override {
    CandidateSet cs = GaussianObservationModel::Candidates(t, i, k);
    const int lo = std::max(0, i - 1);
    const int hi = std::min(t.size() - 1, i + 1);
    if (lo == hi) return cs;
    const double heading = geo::Bearing(t[lo].pos, t[hi].pos);
    for (Candidate& c : cs) {
      const geo::Polyline& geom = index_->network()->segment(c.segment).geometry;
      const double road_bearing = geo::Bearing(geom.front(), geom.back());
      // Two-way roads exist as twin segments, so compare modulo pi.
      double diff = geo::AngleDiff(heading, road_bearing);
      diff = std::min(diff, M_PI - diff);
      const double dir = 0.5 + 0.5 * std::cos(diff);
      c.observation *= 0.7 + 0.3 * dir;
    }
    std::sort(cs.begin(), cs.end(), [](const Candidate& a, const Candidate& b) {
      return a.observation > b.observation;
    });
    return cs;
  }

  using GaussianObservationModel::MakeCandidate;
};

/// SNet transition: classic closeness with a fewer-turns heuristic.
class SnetTransitionModel : public ClassicTransitionModel {
 public:
  SnetTransitionModel(const network::RoadNetwork* net, const ClassicModelConfig& cfg)
      : ClassicTransitionModel(cfg, net), net_(net) {}

  double Transition(const traj::Trajectory& t, int prev_index, int cur_index,
                    const Candidate& prev, const Candidate& cur,
                    const network::Route* route, double straight_dist) override {
    const double base = ClassicTransitionModel::Transition(
        t, prev_index, cur_index, prev, cur, route, straight_dist);
    if (route == nullptr) return 0.0;
    const double turns = RouteTurn(*net_, *route);
    return base * std::exp(-turns / (2.0 * M_PI));
  }

 private:
  const network::RoadNetwork* net_;
};

/// THMM observation: the cellular-tailored widened Gaussian.
class ThmmObservationModel : public GaussianObservationModel {
 public:
  ThmmObservationModel(const network::GridIndex* index, ClassicModelConfig cfg)
      : GaussianObservationModel(index, Widen(cfg)) {}

 private:
  static ClassicModelConfig Widen(ClassicModelConfig cfg) {
    cfg.obs_sigma *= 1.15;
    cfg.search_radius *= 1.1;
    return cfg;
  }
};

/// THMM transition: classic closeness with geometric (turn-angle) consistency
/// between the route and the trajectory's local heading change.
class ThmmTransitionModel : public ClassicTransitionModel {
 public:
  ThmmTransitionModel(const network::RoadNetwork* net, const ClassicModelConfig& cfg)
      : ClassicTransitionModel(cfg, net), net_(net) {}

  double Transition(const traj::Trajectory& t, int prev_index, int cur_index,
                    const Candidate& prev, const Candidate& cur,
                    const network::Route* route, double straight_dist) override {
    const double base = ClassicTransitionModel::Transition(
        t, prev_index, cur_index, prev, cur, route, straight_dist);
    if (route == nullptr) return 0.0;
    double traj_turn = 0.0;
    if (prev_index >= 1) {
      traj_turn =
          geo::AngleDiff(geo::Bearing(t[prev_index - 1].pos, t[prev_index].pos),
                         geo::Bearing(t[prev_index].pos, t[cur_index].pos));
    }
    const double route_turn = RouteTurn(*net_, *route);
    const double angle = std::exp(-std::fabs(route_turn - traj_turn) / M_PI);
    return base * (0.7 + 0.3 * angle);
  }

 private:
  const network::RoadNetwork* net_;
};

}  // namespace

StmMatcher::StmMatcher(const network::RoadNetwork* net,
                       const network::GridIndex* index,
                       const hmm::ClassicModelConfig& models,
                       const hmm::EngineConfig& engine)
    : HmmMatcherBase(net, index, engine) {
  Init(std::make_unique<GaussianObservationModel>(index, models),
       std::make_unique<StmTransitionModel>(net, models));
}

IfmMatcher::IfmMatcher(const network::RoadNetwork* net,
                       const network::GridIndex* index,
                       const hmm::ClassicModelConfig& models,
                       const hmm::EngineConfig& engine)
    : HmmMatcherBase(net, index, engine) {
  Init(std::make_unique<GaussianObservationModel>(index, models),
       std::make_unique<IfmTransitionModel>(net, models));
}

McmMatcher::McmMatcher(const network::RoadNetwork* net,
                       const network::GridIndex* index,
                       const hmm::ClassicModelConfig& models,
                       const hmm::EngineConfig& engine)
    : HmmMatcherBase(net, index, engine) {
  Init(std::make_unique<GaussianObservationModel>(index, models),
       std::make_unique<McmTransitionModel>(net, models));
}

SnetMatcher::SnetMatcher(const network::RoadNetwork* net,
                         const network::GridIndex* index,
                         const hmm::ClassicModelConfig& models,
                         const hmm::EngineConfig& engine)
    : HmmMatcherBase(net, index, engine) {
  Init(std::make_unique<SnetObservationModel>(index, models),
       std::make_unique<SnetTransitionModel>(net, models));
}

ThmmMatcher::ThmmMatcher(const network::RoadNetwork* net,
                         const network::GridIndex* index,
                         const hmm::ClassicModelConfig& models,
                         const hmm::EngineConfig& engine)
    : HmmMatcherBase(net, index, engine) {
  Init(std::make_unique<ThmmObservationModel>(index, models),
       std::make_unique<ThmmTransitionModel>(net, models));
}

ClstersMatcher::ClstersMatcher(const network::RoadNetwork* net,
                               const network::GridIndex* index,
                               const hmm::ClassicModelConfig& models,
                               const hmm::EngineConfig& engine)
    : HmmMatcherBase(net, index, engine) {
  Init(std::make_unique<GaussianObservationModel>(index, models),
       std::make_unique<ClassicTransitionModel>(models, net));
}

traj::Trajectory ClstersMatcher::Transform(const traj::Trajectory& t) {
  // Calibration: time-weighted neighborhood smoothing of positions. Tower
  // ids are preserved; only the location estimate moves. The wide window
  // suppresses noise well but rounds genuine corners, which is what keeps
  // CLSTERS the weakest of the CTMM-tailored group in Table II.
  traj::Trajectory out = t;
  const int n = t.size();
  for (int i = 0; i < n; ++i) {
    double wsum = 0.0;
    geo::Point acc{0.0, 0.0};
    for (int j = std::max(0, i - 3); j <= std::min(n - 1, i + 3); ++j) {
      const double dt = std::fabs(t[j].t - t[i].t);
      const double w = std::exp(-dt / 60.0);
      acc = acc + t[j].pos * w;
      wsum += w;
    }
    out.points[i].pos = acc / wsum;
  }
  return out;
}

}  // namespace lhmm::matchers
