#ifndef LHMM_MATCHERS_HMM_MATCHER_BASE_H_
#define LHMM_MATCHERS_HMM_MATCHER_BASE_H_

#include <memory>
#include <string>

#include "hmm/engine.h"
#include "matchers/matcher.h"
#include "network/grid_index.h"
#include "network/path_cache.h"

namespace lhmm::matchers {

/// Base for every HMM-family matcher: owns a router + cache and runs the
/// shared hmm::Engine with the models supplied by the subclass. Subclasses
/// construct their observation/transition models and call Init().
class HmmMatcherBase : public MapMatcher {
 public:
  /// `net` and `index` must outlive the matcher.
  HmmMatcherBase(const network::RoadNetwork* net, const network::GridIndex* index,
                 const hmm::EngineConfig& config);

  MatchResult Match(const traj::Trajectory& cellular) override;
  bool ProvidesCandidates() const override { return true; }

  /// Rebuilds the engine on top of `shared`; the private cache is kept
  /// allocated but no longer consulted.
  void UseSharedRouter(network::CachedRouter* shared) override;

  /// Fixed-lag streaming with this matcher's models. Note: matchers with a
  /// Transform() hook (CLSTERS) stream the raw points — calibration needs the
  /// whole trajectory and does not apply online.
  bool SupportsStreaming() const override { return true; }
  std::unique_ptr<StreamingSession> OpenSession(const StreamConfig& config) override;

  hmm::Engine* engine() { return engine_.get(); }

 protected:
  /// Installs the models and builds the engine; call from subclass ctors.
  void Init(std::unique_ptr<hmm::ObservationModel> obs,
            std::unique_ptr<hmm::TransitionModel> trans);

  /// Hook for matchers that transform the trajectory before matching
  /// (CLSTERS calibration). Default: identity.
  virtual traj::Trajectory Transform(const traj::Trajectory& t) { return t; }

  const network::RoadNetwork* net_;
  const network::GridIndex* index_;
  hmm::EngineConfig config_;
  std::unique_ptr<network::SegmentRouter> router_;
  std::unique_ptr<network::CachedRouter> cached_router_;
  network::CachedRouter* active_router_ = nullptr;  ///< cached_router_ or shared.
  std::unique_ptr<hmm::ObservationModel> obs_;
  std::unique_ptr<hmm::TransitionModel> trans_;
  std::unique_ptr<hmm::Engine> engine_;
};

}  // namespace lhmm::matchers

#endif  // LHMM_MATCHERS_HMM_MATCHER_BASE_H_
