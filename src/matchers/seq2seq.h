#ifndef LHMM_MATCHERS_SEQ2SEQ_H_
#define LHMM_MATCHERS_SEQ2SEQ_H_

#include <memory>
#include <string>
#include <vector>

#include "matchers/matcher.h"
#include "network/grid_index.h"
#include "network/path_cache.h"
#include "network/shortest_path.h"
#include "core/status.h"
#include "nn/modules.h"
#include "traj/filters.h"
#include "traj/trajectory.h"

namespace lhmm::matchers {

/// GRU cell built from the autodiff primitives:
///   z = sigmoid(x Wxz + h Whz), r = sigmoid(x Wxr + h Whr),
///   n = tanh(x Wxn + (r*h) Whn), h' = (1-z)*h + z*n.
class GruCell : public nn::Module {
 public:
  GruCell(int input_dim, int hidden_dim, core::Rng* rng);

  /// One step on the tape; `x` is 1 x input, `h` is 1 x hidden.
  nn::Tensor Step(const nn::Tensor& x, const nn::Tensor& h) const;

  /// One step without the tape.
  nn::Matrix Step(const nn::Matrix& x, const nn::Matrix& h) const;

  void CollectParams(std::vector<nn::Tensor>* out) override;

  int hidden_dim() const { return hidden_dim_; }

 private:
  int hidden_dim_;
  nn::Linear xz_, hz_, xr_, hr_, xn_, hn_;
};

/// Architecture/training knobs shared by the seq2seq matchers.
struct Seq2SeqConfig {
  int embed_dim = 32;
  int hidden_dim = 56;
  bool use_attention = true;       ///< Attention over encoder states.
  bool transformer_encoder = false; ///< Self-attention encoder block (TransformerMM).
  /// Scheduled sampling [17]: probability of feeding the model's own argmax
  /// instead of the gold token grows toward this value (DMM's trick against
  /// exposure bias).
  float scheduled_sampling = 0.0f;
  int epochs = 3;
  float lr = 2e-3f;
  float weight_decay = 1e-5f;
  float label_smoothing = 0.05f;
  int decode_pool = 60;  ///< Roads near each point eligible at its step.
  int beam_width = 1;    ///< Greedy when 1; beam search otherwise.
  uint64_t seed = 77;
  bool verbose = false;
};

/// A recurrent sequence-to-sequence map matcher: tower-id sequence in,
/// road-segment-id sequence out. The base class powers three baselines —
/// DeepMM [37] (GRU + attention), TransformerMM [38] (self-attention
/// encoder), and DMM [15] (GRU + attention + scheduled sampling). The
/// decoder is aligned to the input: step i predicts the traveled road of
/// point i (restricted to roads near the point), and consecutive predictions
/// are connected by shortest paths — how these systems keep the output on
/// the road network. The previous prediction feeds the next step, which is
/// the error-propagation channel the paper analyzes in Fig. 11.
class Seq2SeqMatcher : public MapMatcher {
 public:
  Seq2SeqMatcher(const network::RoadNetwork* net, const network::GridIndex* index,
                 int num_towers, const Seq2SeqConfig& config, std::string name);
  ~Seq2SeqMatcher() override;

  /// Trains on (cellular trajectory, truth path) pairs with teacher forcing.
  void Train(const std::vector<traj::MatchedTrajectory>& train,
             const traj::FilterConfig& filters);

  /// Serializes / restores all parameters (architecture must match).
  core::Status Save(const std::string& path) const;
  core::Status Load(const std::string& path);

  /// A matcher that shares this one's weights. The Impl is refcounted and
  /// read-only on the inference path, so MatcherFactory clones built this way
  /// hold one physical copy of the parameters no matter the pool width
  /// (instead of re-reading a weight file per worker); router caches remain
  /// per-clone. The source matcher must not be Train()ed while clones match.
  std::unique_ptr<Seq2SeqMatcher> SharedClone() const;

  /// All parameter tensors, aliasing the live weights in Save()/Load() order
  /// (consumed by the store section encoders).
  std::vector<nn::Tensor> Params() const;

  std::string name() const override { return name_; }
  MatchResult Match(const traj::Trajectory& cellular) override;
  void UseSharedRouter(network::CachedRouter* shared) override;

  /// Seq2seq is the one family without a streaming form (the decoder is not
  /// windowed), so it inherits SupportsStreaming() == false and OpenSession()
  /// == nullptr — the documented unsupported-family contract. Streaming
  /// callers must gate on SupportsStreaming() or use StreamEngine::TryOpen,
  /// which maps this family to a typed kUnimplemented error.

 private:
  struct Impl;

  Seq2SeqMatcher() = default;  ///< Shell for SharedClone.

  const network::RoadNetwork* net_ = nullptr;
  const network::GridIndex* index_ = nullptr;
  Seq2SeqConfig config_;
  std::string name_;
  std::shared_ptr<Impl> impl_;
  std::unique_ptr<network::SegmentRouter> router_;
  std::unique_ptr<network::CachedRouter> cached_router_;
  network::CachedRouter* shared_router_ = nullptr;
};

/// DeepMM [37]: LSTM-style (GRU) seq2seq with attention.
std::unique_ptr<Seq2SeqMatcher> MakeDeepMm(const network::RoadNetwork* net,
                                           const network::GridIndex* index,
                                           int num_towers, uint64_t seed = 77);

/// TransformerMM [38]: Transformer encoder instead of the recurrent one.
std::unique_ptr<Seq2SeqMatcher> MakeTransformerMm(const network::RoadNetwork* net,
                                                  const network::GridIndex* index,
                                                  int num_towers, uint64_t seed = 78);

/// DMM [15]: the strongest seq2seq CTMM baseline — attention + scheduled
/// sampling + an extra training epoch.
std::unique_ptr<Seq2SeqMatcher> MakeDmm(const network::RoadNetwork* net,
                                        const network::GridIndex* index,
                                        int num_towers, uint64_t seed = 79);

}  // namespace lhmm::matchers

#endif  // LHMM_MATCHERS_SEQ2SEQ_H_
