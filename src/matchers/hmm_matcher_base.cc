#include "matchers/hmm_matcher_base.h"

#include "core/logging.h"

namespace lhmm::matchers {

HmmMatcherBase::HmmMatcherBase(const network::RoadNetwork* net,
                               const network::GridIndex* index,
                               const hmm::EngineConfig& config)
    : net_(net), index_(index), config_(config) {
  CHECK(net != nullptr);
  CHECK(index != nullptr);
  router_ = std::make_unique<network::SegmentRouter>(net);
  cached_router_ = std::make_unique<network::CachedRouter>(router_.get());
  active_router_ = cached_router_.get();
}

void HmmMatcherBase::Init(std::unique_ptr<hmm::ObservationModel> obs,
                          std::unique_ptr<hmm::TransitionModel> trans) {
  obs_ = std::move(obs);
  trans_ = std::move(trans);
  engine_ = std::make_unique<hmm::Engine>(net_, active_router_, obs_.get(),
                                          trans_.get(), config_);
}

void HmmMatcherBase::UseSharedRouter(network::CachedRouter* shared) {
  CHECK(shared != nullptr);
  active_router_ = shared;
  if (engine_ != nullptr) {
    // The engine only holds pointers; rebuilding it swaps the router in.
    engine_ = std::make_unique<hmm::Engine>(net_, active_router_, obs_.get(),
                                            trans_.get(), config_);
  }
}

std::unique_ptr<StreamingSession> HmmMatcherBase::OpenSession(
    const StreamConfig& config) {
  CHECK(obs_ != nullptr) << "subclass forgot to call Init()";
  hmm::OnlineConfig oc;
  oc.k = config_.k;
  oc.lag = config.lag;
  oc.route_bound_alpha = config_.route_bound_alpha;
  oc.route_bound_beta = config_.route_bound_beta;
  oc.max_route_bound = config_.max_route_bound;
  return std::make_unique<OnlineSession>(net_, active_router_, obs_.get(),
                                         trans_.get(), oc);
}

MatchResult HmmMatcherBase::Match(const traj::Trajectory& cellular) {
  CHECK(engine_ != nullptr) << "subclass forgot to call Init()";
  const traj::Trajectory t = Transform(cellular);
  hmm::EngineResult er = engine_->Match(t);
  MatchResult out;
  out.path = std::move(er.path);
  out.candidates = std::move(er.candidates);
  out.point_index = std::move(er.point_index);
  out.num_breaks = er.num_breaks();
  out.gap_seconds = er.gap_seconds;
  out.gap_coverage = er.gap_coverage;
  return out;
}

}  // namespace lhmm::matchers
