#ifndef LHMM_MATCHERS_BATCH_MATCHER_H_
#define LHMM_MATCHERS_BATCH_MATCHER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "matchers/matcher.h"
#include "network/ch_router.h"
#include "network/path_cache.h"

namespace lhmm::matchers {

/// Builds a fresh, independent matcher instance. Every worker thread of a
/// BatchMatcher owns one clone, so nothing mutable (engine, routing scratch,
/// per-trajectory state) is ever shared between threads. Heavy read-only
/// assets — the road network, the grid index, a trained LhmmModel — are
/// shared by capture in the factory closure.
using MatcherFactory = std::function<std::unique_ptr<MapMatcher>()>;

struct BatchConfig {
  /// Worker threads; 0 means core::ThreadPool::DefaultThreadCount().
  int num_threads = 0;
  /// Optional thread-safe route cache installed into every worker clone (via
  /// MapMatcher::UseSharedRouter), so shortest-path results amortize across
  /// workers exactly as they amortize across trajectories in serial runs.
  /// Takes precedence over `router_backend` when set.
  network::CachedRouter* shared_router = nullptr;
  /// Routing backend when the matcher owns its shared router. With kCH (and
  /// `shared_router` null), the matcher builds a CachedRouter whose cache
  /// misses run corridor-pruned CH queries over `ch_graph` instead of plain
  /// Dijkstra — results stay byte-identical, misses get faster. Requires
  /// `ch_network`/`ch_graph` (both outliving the matcher).
  network::RouterBackend router_backend = network::RouterBackend::kDijkstra;
  const network::RoadNetwork* ch_network = nullptr;
  const network::CHGraph* ch_graph = nullptr;
};

/// Wall-clock accounting of the last batch run.
struct BatchStats {
  double wall_s = 0.0;   ///< Batch wall-clock time.
  double work_s = 0.0;   ///< Summed worker busy time (serial-cost estimate).
  int num_threads = 1;
  int64_t items = 0;
  /// Effective speedup over a serial run of the same work: work_s / wall_s.
  double Speedup() const { return wall_s > 0.0 ? work_s / wall_s : 0.0; }
};

/// Parallel batch map matching: shards a trajectory set across N worker
/// clones of one matcher produced by a MatcherFactory. Workers pull indices
/// from a shared counter (dynamic load balancing — trajectory match times
/// vary by an order of magnitude), and every result lands in its input slot,
/// so output order is the input order and results are byte-identical across
/// thread counts (see tests/batch_test.cc for the enforced contract).
class BatchMatcher {
 public:
  explicit BatchMatcher(MatcherFactory factory, const BatchConfig& config = {});
  ~BatchMatcher();

  BatchMatcher(const BatchMatcher&) = delete;
  BatchMatcher& operator=(const BatchMatcher&) = delete;

  /// Matches every trajectory; results are parallel to the input. When
  /// `times_s` is non-null it receives the per-trajectory Match() wall time.
  std::vector<MatchResult> MatchAll(const std::vector<traj::Trajectory>& trajs,
                                    std::vector<double>* times_s = nullptr);

  /// General sharded loop: runs fn(worker_matcher, index) for every index in
  /// [0, n). Each invocation gets a matcher clone no other concurrent
  /// invocation touches; fn must confine its writes to per-index slots.
  /// Evaluation harnesses use this to fold metric computation into the
  /// parallel region.
  void ForEach(int64_t n, const std::function<void(MapMatcher*, int64_t)>& fn);

  /// Display name / candidate support of the underlying matcher family.
  std::string name() const { return probe_->name(); }
  bool provides_candidates() const { return probe_->ProvidesCandidates(); }

  int num_threads() const { return num_threads_; }
  const BatchStats& last_stats() const { return stats_; }

 private:
  MapMatcher* Worker(int w);

  MatcherFactory factory_;
  BatchConfig config_;
  /// Backing CachedRouter when config_.router_backend == kCH and the caller
  /// did not supply shared_router; config_.shared_router aliases it.
  std::unique_ptr<network::CachedRouter> owned_router_;
  int num_threads_;
  /// Worker clones, created lazily; workers_[0] doubles as the probe.
  std::vector<std::unique_ptr<MapMatcher>> workers_;
  MapMatcher* probe_;
  std::unique_ptr<core::ThreadPool> pool_;
  BatchStats stats_;
};

}  // namespace lhmm::matchers

#endif  // LHMM_MATCHERS_BATCH_MATCHER_H_
