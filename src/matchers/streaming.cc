#include "matchers/streaming.h"

namespace lhmm::matchers {

namespace {

hmm::EngineConfig OfflineConfigOf(const hmm::OnlineConfig& config) {
  hmm::EngineConfig ec;
  ec.k = config.k;
  ec.use_shortcuts = false;
  ec.route_bound_alpha = config.route_bound_alpha;
  ec.route_bound_beta = config.route_bound_beta;
  ec.max_route_bound = config.max_route_bound;
  return ec;
}

}  // namespace

OnlineSession::OnlineSession(const network::RoadNetwork* net,
                             network::CachedRouter* router,
                             hmm::ObservationModel* obs,
                             hmm::TransitionModel* trans,
                             const hmm::OnlineConfig& config)
    : online_(net, router, obs, trans, config),
      offline_(net, router, obs, trans, OfflineConfigOf(config)) {}

std::vector<network::SegmentId> OnlineSession::Push(const traj::TrajPoint& point) {
  const int64_t before = online_.consumed_points();
  std::vector<network::SegmentId> out = online_.Push(point);
  AccumulateLatency(before);
  return out;
}

std::vector<network::SegmentId> OnlineSession::Finish() {
  const int64_t before = online_.consumed_points();
  std::vector<network::SegmentId> out = online_.Finish();
  AccumulateLatency(before);
  return out;
}

void OnlineSession::Reset() {
  online_.Reset();
  latency_points_sum_ = 0;
}

SessionStats OnlineSession::stats() const {
  SessionStats s;
  s.points_pushed = online_.pushed_points();
  s.points_committed = online_.consumed_points();
  s.latency_points_sum = latency_points_sum_;
  s.breaks = online_.breaks();
  return s;
}

bool OnlineSession::Checkpoint(SessionSnapshot* out) const {
  out->online = online_.Checkpoint();
  out->latency_points_sum = latency_points_sum_;
  return true;
}

bool OnlineSession::Restore(const SessionSnapshot& snapshot) {
  online_.Restore(snapshot.online);
  latency_points_sum_ = snapshot.latency_points_sum;
  return true;
}

void OnlineSession::AccumulateLatency(int64_t consumed_before) {
  // Consumption is FIFO: the points finalized by the last call are exactly
  // the arrival ordinals [consumed_before, consumed_points()); each waited
  // until arrival pushed_points() - 1.
  const int64_t after = online_.consumed_points();
  const int64_t newest = online_.pushed_points() - 1;
  for (int64_t c = consumed_before; c < after; ++c) {
    latency_points_sum_ += newest - c;
  }
}

hmm::EngineResult OnlineSession::MatchOffline(const traj::Trajectory& t) {
  return offline_.Match(t);
}

}  // namespace lhmm::matchers
