#include "matchers/ivmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.h"

namespace lhmm::matchers {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

IvmmMatcher::IvmmMatcher(const network::RoadNetwork* net,
                         const network::GridIndex* index,
                         const hmm::ClassicModelConfig& models, int k)
    : net_(net), index_(index), models_(models), k_(k) {
  CHECK(net != nullptr);
  router_ = std::make_unique<network::SegmentRouter>(net);
  cached_router_ = std::make_unique<network::CachedRouter>(router_.get());
  active_router_ = cached_router_.get();
  obs_ = std::make_unique<hmm::GaussianObservationModel>(index, models);
  trans_ = std::make_unique<hmm::ClassicTransitionModel>(models, net);
}

std::unique_ptr<StreamingSession> IvmmMatcher::OpenSession(
    const StreamConfig& config) {
  hmm::OnlineConfig oc;
  oc.k = k_;
  oc.lag = config.lag;
  // Same bounds Match() hardcodes for its route searches.
  oc.route_bound_alpha = 4.0;
  oc.route_bound_beta = 1500.0;
  oc.max_route_bound = 12000.0;
  return std::make_unique<OnlineSession>(net_, active_router_, obs_.get(),
                                         trans_.get(), oc);
}

void IvmmMatcher::UseSharedRouter(network::CachedRouter* shared) {
  CHECK(shared != nullptr);
  active_router_ = shared;
}

MatchResult IvmmMatcher::Match(const traj::Trajectory& t) {
  MatchResult result;
  if (t.empty()) return result;

  // Candidate preparation (same as the HMM engine).
  std::vector<hmm::CandidateSet> cands;
  std::vector<int> point_index;
  for (int i = 0; i < t.size(); ++i) {
    hmm::CandidateSet cs = obs_->Candidates(t, i, k_);
    if (cs.empty()) continue;
    cands.push_back(std::move(cs));
    point_index.push_back(i);
  }
  const int m = static_cast<int>(cands.size());
  if (m == 0) return result;

  // Static score matrices: W[s][j][k2] = P_T * P_O per Eq. (3)/(2). The
  // classic ST transition (Eq. 3 with the velocity heuristic) is the same
  // model the streaming session runs.
  trans_->BeginTrajectory(t);
  std::vector<double> straight(m, 0.0);
  std::vector<std::vector<std::vector<double>>> w(m);
  for (int s = 1; s < m; ++s) {
    straight[s] = geo::Distance(t[point_index[s - 1]].pos, t[point_index[s]].pos);
    const double bound = std::min(12000.0, 4.0 * straight[s] + 1500.0);
    const int prev_n = static_cast<int>(cands[s - 1].size());
    const int cur_n = static_cast<int>(cands[s].size());
    w[s].assign(prev_n, std::vector<double>(cur_n, kNegInf));
    std::vector<network::SegmentId> targets(cur_n);
    for (int k2 = 0; k2 < cur_n; ++k2) targets[k2] = cands[s][k2].segment;
    for (int j = 0; j < prev_n; ++j) {
      const auto routes = active_router_->RouteMany(cands[s - 1][j].segment,
                                                    targets, bound);
      for (int k2 = 0; k2 < cur_n; ++k2) {
        if (!routes[k2].has_value()) continue;
        const double pt = trans_->Transition(t, point_index[s - 1],
                                             point_index[s], cands[s - 1][j],
                                             cands[s][k2], &routes[k2].value(),
                                             straight[s]);
        w[s][j][k2] = pt * cands[s][k2].observation;
      }
    }
  }

  // HMM breaks (same notion as hmm::Engine): a step whose whole transition
  // matrix is -inf — no candidate of step s is reachable from step s-1.
  // Every pinned DP below restarts at such columns (score = observation, no
  // predecessor) instead of aborting, so voting keeps working on both sides
  // of the gap and the result reports the break count. On healthy input no
  // column qualifies and the DP is unchanged.
  std::vector<char> break_col(m, 0);
  for (int s = 1; s < m; ++s) {
    bool any = false;
    for (const auto& row : w[s]) {
      for (const double v : row) {
        if (v != kNegInf) {
          any = true;
          break;
        }
      }
      if (any) break;
    }
    if (!any) {
      break_col[s] = 1;
      ++result.num_breaks;
      result.gap_seconds += t[point_index[s]].t - t[point_index[s - 1]].t;
      result.gap_coverage -=
          (t[point_index[s]].t - t[point_index[s - 1]].t) /
          std::max(1e-9, t[point_index[m - 1]].t - t[point_index[0]].t);
    }
  }
  result.gap_coverage = std::max(0.0, result.gap_coverage);

  // Interactive voting: for every (anchor point a, candidate ja), run the DP
  // with point a pinned to ja; every point's matched candidate on that path
  // gets a vote weighted by proximity to the anchor.
  std::vector<std::vector<double>> votes(m);
  for (int s = 0; s < m; ++s) votes[s].assign(cands[s].size(), 0.0);

  std::vector<std::vector<double>> f(m);
  std::vector<std::vector<int>> pre(m);
  for (int a = 0; a < m; ++a) {
    for (size_t ja = 0; ja < cands[a].size(); ++ja) {
      // Forward DP with the pin.
      for (int s = 0; s < m; ++s) {
        const int n = static_cast<int>(cands[s].size());
        f[s].assign(n, kNegInf);
        pre[s].assign(n, -1);
        if (s == 0) {
          for (int j = 0; j < n; ++j) {
            if (a == 0 && j != static_cast<int>(ja)) continue;
            f[s][j] = cands[s][j].observation;
          }
          continue;
        }
        for (int k2 = 0; k2 < n; ++k2) {
          if (s == a && k2 != static_cast<int>(ja)) continue;
          if (break_col[s]) {
            // Restart across the gap, exactly like hmm::Engine.
            f[s][k2] = cands[s][k2].observation;
            continue;
          }
          for (size_t j = 0; j < cands[s - 1].size(); ++j) {
            if (f[s - 1][j] == kNegInf || w[s][j][k2] == kNegInf) continue;
            const double score = f[s - 1][j] + w[s][j][k2];
            if (score > f[s][k2]) {
              f[s][k2] = score;
              pre[s][k2] = static_cast<int>(j);
            }
          }
        }
      }
      // Backtrack and vote.
      int best = -1;
      for (size_t j = 0; j < f[m - 1].size(); ++j) {
        if (f[m - 1][j] != kNegInf && (best < 0 || f[m - 1][j] > f[m - 1][best])) {
          best = static_cast<int>(j);
        }
      }
      if (best < 0) continue;
      std::vector<int> chain(m, -1);
      chain[m - 1] = best;
      bool ok = true;
      for (int s = m - 1; s > 0; --s) {
        int p = pre[s][chain[s]];
        if (p < 0) {
          if (!break_col[s]) {
            // Genuine dead end for this pin (not a break column).
            ok = false;
            break;
          }
          // Restart backtrack: pick the locally best predecessor, mirroring
          // the Engine's backward pass across a break.
          for (size_t j = 0; j < f[s - 1].size(); ++j) {
            if (f[s - 1][j] == kNegInf) continue;
            if (p < 0 || f[s - 1][j] > f[s - 1][p]) p = static_cast<int>(j);
          }
          if (p < 0) {
            ok = false;
            break;
          }
        }
        chain[s - 1] = p;
      }
      if (!ok) continue;
      for (int s = 0; s < m; ++s) {
        // Mutual-influence weight decays with distance between points.
        const double d = geo::Distance(t[point_index[a]].pos, t[point_index[s]].pos);
        votes[s][chain[s]] += std::exp(-d / 2000.0);
      }
    }
  }

  // Winners and path expansion.
  std::vector<hmm::Candidate> chain(m);
  for (int s = 0; s < m; ++s) {
    int best = 0;
    for (size_t j = 1; j < votes[s].size(); ++j) {
      if (votes[s][j] > votes[s][best]) best = static_cast<int>(j);
    }
    chain[s] = cands[s][best];
  }
  result.path.push_back(chain[0].segment);
  for (int s = 1; s < m; ++s) {
    const double bound = std::min(12000.0, 4.0 * straight[s] + 1500.0);
    const auto route =
        active_router_->Route1(chain[s - 1].segment, chain[s].segment, bound);
    if (route.has_value()) {
      for (network::SegmentId sid : route->segments) {
        if (result.path.back() != sid) result.path.push_back(sid);
      }
    } else if (result.path.back() != chain[s].segment) {
      result.path.push_back(chain[s].segment);
    }
  }
  result.candidates = std::move(cands);
  result.point_index = std::move(point_index);
  return result;
}

IvmmMatcher::~IvmmMatcher() = default;

}  // namespace lhmm::matchers
