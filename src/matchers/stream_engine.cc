#include "matchers/stream_engine.h"

#include <cmath>
#include <exception>
#include <string>
#include <utility>

#include "core/logging.h"

namespace lhmm::matchers {

StreamEngine::StreamEngine(MatcherFactory factory,
                           const StreamEngineConfig& config)
    : factory_(std::move(factory)), config_(config) {
  CHECK(factory_ != nullptr);
  CHECK_GE(config_.max_inbox, 0);
  CHECK_GE(config_.session_ttl, 0);
  CHECK_GE(config_.max_live_sessions, 0);
  if (config_.shared_router == nullptr &&
      config_.router_backend == network::RouterBackend::kCH) {
    CHECK(config_.ch_network != nullptr && config_.ch_graph != nullptr)
        << "RouterBackend::kCH requires ch_network and ch_graph";
    owned_router_ = std::make_unique<network::CachedRouter>(config_.ch_network,
                                                            config_.ch_graph);
    config_.shared_router = owned_router_.get();
  }
  num_threads_ = config_.num_threads > 0 ? config_.num_threads
                                         : core::ThreadPool::DefaultThreadCount();
  if (num_threads_ > 1) {
    pool_ = std::make_unique<core::ThreadPool>(num_threads_);
  }
}

StreamEngine::~StreamEngine() {
  if (pool_ != nullptr) pool_->Wait();
}

SessionId StreamEngine::Open() {
  core::Result<SessionId> id = TryOpen();
  CHECK_OK(id);
  return *id;
}

core::Result<SessionId> StreamEngine::TryOpen() {
  return OpenInternal(factory_, nullptr);
}

core::Result<SessionId> StreamEngine::TryOpen(const MatcherFactory& factory) {
  return OpenInternal(factory, nullptr);
}

core::Result<SessionId> StreamEngine::OpenRestored(
    const SessionCheckpoint& checkpoint) {
  return OpenInternal(factory_, &checkpoint);
}

core::Result<SessionId> StreamEngine::OpenRestored(
    const SessionCheckpoint& checkpoint, const MatcherFactory& factory) {
  return OpenInternal(factory, &checkpoint);
}

core::Result<SessionId> StreamEngine::OpenInternal(
    const MatcherFactory& factory, const SessionCheckpoint* checkpoint) {
  // Enforce the live-session cap before admitting a new session. The victim
  // scan runs on the producer thread over producer-side fields, with session
  // id as the tie-break, so the eviction sequence is a pure function of the
  // producer's call history — identical for every thread count.
  if (config_.max_live_sessions > 0) {
    while (live_ >= config_.max_live_sessions) {
      Slot* lru = nullptr;
      {
        std::lock_guard<std::mutex> lock(slots_mu_);
        for (const std::unique_ptr<Slot>& s : slots_) {
          if (s->closed.load(std::memory_order_relaxed)) continue;
          if (lru == nullptr || s->last_activity < lru->last_activity) {
            lru = s.get();
          }
        }
      }
      if (lru == nullptr) break;
      Evict(lru);
    }
  }

  auto s = std::make_unique<Slot>();
  s->matcher = factory();
  CHECK(s->matcher != nullptr);
  if (!s->matcher->SupportsStreaming()) {
    return core::Status::Unimplemented(
        s->matcher->name() +
        " has no streaming session form (SupportsStreaming() is false)");
  }
  if (config_.shared_router != nullptr) {
    s->matcher->UseSharedRouter(config_.shared_router);
  }
  StreamConfig sc;
  sc.lag = config_.lag;
  s->session = s->matcher->OpenSession(sc);
  if (s->session == nullptr) {
    // A matcher claiming SupportsStreaming() but returning nullptr violates
    // the OpenSession contract; report it as unsupported rather than crashing.
    return core::Status::Unimplemented(s->matcher->name() +
                                       " OpenSession() returned nullptr");
  }
  if (checkpoint != nullptr) {
    if (!s->session->SupportsCheckpoint()) {
      return core::Status::Unimplemented(
          s->matcher->name() + " sessions are not checkpointable");
    }
    if (!s->session->Restore(checkpoint->session)) {
      return core::Status::Internal("checkpoint restore failed for " +
                                    s->matcher->name());
    }
    s->last_time = checkpoint->last_time;
    s->seen_point = checkpoint->seen_point;
  }
  s->last_activity = clock_;
  ++live_;
  std::lock_guard<std::mutex> lock(slots_mu_);
  slots_.push_back(std::move(s));
  return static_cast<SessionId>(slots_.size()) - 1;
}

core::Result<SessionCheckpoint> StreamEngine::CheckpointSession(SessionId id) {
  Slot* s = slot(id);
  if (s->poisoned.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(s->mu);
    return s->error;
  }
  if (s->closed.load(std::memory_order_acquire)) {
    return core::Status::FailedPrecondition(
        "session " + std::to_string(id) + " is closed; nothing to checkpoint");
  }
  std::lock_guard<std::mutex> lock(s->mu);
  if (!s->inbox.empty() || s->scheduled) {
    return core::Status::FailedPrecondition(
        "session " + std::to_string(id) +
        " has queued or in-flight events; call Barrier() before checkpointing");
  }
  CHECK(s->session != nullptr);
  if (!s->session->SupportsCheckpoint()) {
    return core::Status::Unimplemented("session " + std::to_string(id) +
                                       " is not checkpointable");
  }
  SessionCheckpoint cp;
  if (!s->session->Checkpoint(&cp.session)) {
    return core::Status::Internal("checkpoint failed for session " +
                                  std::to_string(id));
  }
  cp.last_time = s->last_time;
  cp.seen_point = s->seen_point;
  return cp;
}

StreamEngine::Slot* StreamEngine::slot(SessionId id) const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  CHECK_GE(id, 0);
  CHECK_LT(id, static_cast<SessionId>(slots_.size()));
  return slots_[id].get();
}

core::Status StreamEngine::Push(SessionId id, const traj::TrajPoint& point) {
  Slot* s = slot(id);
  if (s->poisoned.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(s->mu);
    return s->error;
  }
  if (s->closed.load(std::memory_order_acquire)) {
    if (s->expired.load(std::memory_order_acquire)) {
      return core::Status::DeadlineExceeded(
          "session " + std::to_string(id) +
          " passed its deadline; Committed() holds the partial prefix");
    }
    return core::Status(core::StatusCode::kFailedPrecondition,
                        "push on closed session " + std::to_string(id));
  }
  if (config_.validate_points) {
    if (!std::isfinite(point.pos.x) || !std::isfinite(point.pos.y) ||
        !std::isfinite(point.t)) {
      rejected_pushes_.fetch_add(1, std::memory_order_relaxed);
      return core::Status(core::StatusCode::kInvalidArgument,
                          "non-finite point pushed to session " +
                              std::to_string(id));
    }
    if (s->seen_point && point.t < s->last_time) {
      rejected_pushes_.fetch_add(1, std::memory_order_relaxed);
      return core::Status(core::StatusCode::kInvalidArgument,
                          "timestamp moved backwards in session " +
                              std::to_string(id));
    }
  }
  core::Status status = Enqueue(s, point);
  if (status.ok()) {
    s->seen_point = true;
    s->last_time = point.t;
    s->last_activity = clock_;
  }
  return status;
}

core::Status StreamEngine::PushBlocking(SessionId id,
                                        const traj::TrajPoint& point) {
  for (;;) {
    core::Status status = Push(id, point);
    // Only inbox backpressure is worth waiting out; a poisoned session may
    // also carry kUnavailable (quarantine), so check state, not just code.
    if (status.code() != core::StatusCode::kUnavailable ||
        state(id) == SessionState::kPoisoned) {
      return status;
    }
    // After the barrier every inbox is empty, so the retry cannot be full
    // again (the loop runs at most twice unless other producers interleave,
    // which the producer-side contract forbids).
    Barrier();
  }
}

core::Status StreamEngine::Finish(SessionId id) {
  Slot* s = slot(id);
  if (s->closed.exchange(true, std::memory_order_acq_rel)) {
    return core::Status(core::StatusCode::kFailedPrecondition,
                        "session " + std::to_string(id) + " already closed");
  }
  --live_;
  return Enqueue(s, std::nullopt);
}

void StreamEngine::Evict(Slot* s) {
  if (s->closed.exchange(true, std::memory_order_acq_rel)) return;
  s->evicted.store(true, std::memory_order_release);
  --live_;
  ++evicted_sessions_;
  Enqueue(s, std::nullopt);
}

void StreamEngine::Expire(Slot* s) {
  if (s->closed.exchange(true, std::memory_order_acq_rel)) return;
  s->expired.store(true, std::memory_order_release);
  --live_;
  ++expired_sessions_;
  Enqueue(s, std::nullopt);
}

void StreamEngine::AdvanceClock(int64_t now) {
  if (now > clock_) clock_ = now;
  std::vector<Slot*> idle;
  std::vector<Slot*> overdue;
  {
    std::lock_guard<std::mutex> lock(slots_mu_);
    for (const std::unique_ptr<Slot>& s : slots_) {
      if (s->closed.load(std::memory_order_relaxed)) continue;
      if (config_.session_ttl > 0 &&
          clock_ - s->last_activity >= config_.session_ttl) {
        idle.push_back(s.get());
      } else if (s->deadline_tick > 0 && clock_ >= s->deadline_tick) {
        overdue.push_back(s.get());
      }
    }
  }
  for (Slot* s : idle) Evict(s);
  for (Slot* s : overdue) Expire(s);
}

core::Status StreamEngine::SetDeadline(SessionId id, int64_t deadline_tick) {
  Slot* s = slot(id);
  if (s->poisoned.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(s->mu);
    return s->error;
  }
  if (s->closed.load(std::memory_order_acquire)) {
    return core::Status::FailedPrecondition(
        "session " + std::to_string(id) + " is closed; cannot arm a deadline");
  }
  s->deadline_tick = deadline_tick;
  return core::Status::Ok();
}

bool StreamEngine::deadline_expired(SessionId id) const {
  return slot(id)->expired.load(std::memory_order_acquire);
}

int64_t StreamEngine::deadline_tick(SessionId id) const {
  return slot(id)->deadline_tick;
}

core::Status StreamEngine::Quarantine(SessionId id, const std::string& reason) {
  Slot* s = slot(id);
  if (s->poisoned.load(std::memory_order_acquire)) return core::Status::Ok();
  if (s->finished.load(std::memory_order_acquire)) {
    return core::Status::FailedPrecondition(
        "session " + std::to_string(id) + " already finished");
  }
  if (!s->closed.exchange(true, std::memory_order_acq_rel)) --live_;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->poisoned.load(std::memory_order_relaxed)) return core::Status::Ok();
    s->error = core::Status::Unavailable("session " + std::to_string(id) +
                                         " quarantined: " + reason);
    s->inbox.clear();
    s->poisoned.store(true, std::memory_order_release);
    // A pump task may still be inside this slot's session (that is exactly
    // the wedged case the watchdog quarantines for), so the session/matcher
    // pair can only be freed when no task holds them: immediately when no
    // pump is scheduled, otherwise by the pump's own exit path.
    if (!s->scheduled) {
      s->session.reset();
      s->matcher.reset();
    }
  }
  ++quarantined_sessions_;
  return core::Status::Ok();
}

int64_t StreamEngine::processed_events(SessionId id) const {
  return slot(id)->processed.load(std::memory_order_acquire);
}

int64_t StreamEngine::inbox_depth(SessionId id) const {
  Slot* s = slot(id);
  std::lock_guard<std::mutex> lock(s->mu);
  return static_cast<int64_t>(s->inbox.size());
}

void StreamEngine::Process(Slot* s, std::optional<traj::TrajPoint>& event) {
  if (event.has_value()) {
    s->session->Push(*event);
    s->processed.fetch_add(1, std::memory_order_release);
    return;
  }
  // End of stream: snapshot the final output, then free the session and its
  // matcher clone so memory tracks live sessions, not total sessions.
  s->session->Finish();
  std::vector<network::SegmentId> committed = s->session->committed();
  const SessionStats stats = s->session->stats();
  {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->poisoned.load(std::memory_order_relaxed)) {
      // Quarantined while the flush ran; the quarantine wins and owns the
      // slot's final state. Free the deferred resources and stay poisoned.
      s->session.reset();
      s->matcher.reset();
      return;
    }
    s->final_committed = std::move(committed);
    s->final_stats = stats;
    s->session.reset();
    s->matcher.reset();
  }
  s->finished.store(true, std::memory_order_release);
  s->processed.fetch_add(1, std::memory_order_release);
}

void StreamEngine::Poison(Slot* s, const std::string& what) {
  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->error = core::Status(core::StatusCode::kInternal,
                            "session poisoned: " + what);
    s->inbox.clear();
    s->session.reset();
    s->matcher.reset();
  }
  s->poisoned.store(true, std::memory_order_release);
}

core::Status StreamEngine::Enqueue(Slot* s, std::optional<traj::TrajPoint> event) {
  if (pool_ == nullptr) {
    if (s->poisoned.load(std::memory_order_acquire)) return core::Status::Ok();
    try {
      Process(s, event);
    } catch (const std::exception& e) {
      Poison(s, e.what());
    } catch (...) {
      Poison(s, "unknown exception");
    }
    return core::Status::Ok();
  }
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    if (s->poisoned.load(std::memory_order_relaxed)) return core::Status::Ok();
    if (event.has_value() && config_.max_inbox > 0 &&
        static_cast<int>(s->inbox.size()) >= config_.max_inbox) {
      if (config_.backpressure == BackpressurePolicy::kReject) {
        rejected_pushes_.fetch_add(1, std::memory_order_relaxed);
        // kUnavailable: the pump is behind, so the typed answer is "retry
        // with backoff", not "you broke the contract".
        return core::Status::Unavailable("session inbox full (" +
                                         std::to_string(s->inbox.size()) +
                                         " events)");
      }
      // kDropOldest. The session is open (Push checked closed), so the inbox
      // holds only points — the end-of-stream sentinel can never be dropped.
      s->inbox.pop_front();
      dropped_points_.fetch_add(1, std::memory_order_relaxed);
    }
    s->inbox.push_back(std::move(event));
    if (!s->scheduled) {
      s->scheduled = true;
      schedule = true;
    }
  }
  if (schedule) {
    pool_->Submit([this, s] { Pump(s); });
  }
  return core::Status::Ok();
}

void StreamEngine::Pump(Slot* s) {
  // Drains the inbox in arrival order. `scheduled` stays true until the
  // inbox is observed empty under the lock, so no second pump for this slot
  // can be queued while this one runs — that exclusivity is the per-session
  // FIFO guarantee. An exception from the matcher quarantines the session
  // (Poison) instead of propagating into the pool.
  for (;;) {
    std::deque<std::optional<traj::TrajPoint>> batch;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->inbox.empty() || s->poisoned.load(std::memory_order_relaxed)) {
        s->inbox.clear();
        s->scheduled = false;
        if (s->poisoned.load(std::memory_order_relaxed)) {
          // Deferred cleanup for a quarantine that hit while this pump held
          // the session (Quarantine cannot free what a task may be using).
          s->session.reset();
          s->matcher.reset();
        }
        return;
      }
      batch.swap(s->inbox);
    }
    for (std::optional<traj::TrajPoint>& event : batch) {
      if (s->poisoned.load(std::memory_order_relaxed)) break;
      try {
        Process(s, event);
      } catch (const std::exception& e) {
        Poison(s, e.what());
        break;
      } catch (...) {
        Poison(s, "unknown exception");
        break;
      }
    }
  }
}

void StreamEngine::Barrier() {
  if (pool_ != nullptr) pool_->Wait();
}

bool StreamEngine::finished(SessionId id) const {
  return slot(id)->finished.load(std::memory_order_acquire);
}

SessionState StreamEngine::state(SessionId id) const {
  Slot* s = slot(id);
  if (s->poisoned.load(std::memory_order_acquire)) return SessionState::kPoisoned;
  if (s->finished.load(std::memory_order_acquire)) {
    if (s->expired.load(std::memory_order_acquire)) return SessionState::kExpired;
    return s->evicted.load(std::memory_order_acquire) ? SessionState::kEvicted
                                                      : SessionState::kFinished;
  }
  return SessionState::kLive;
}

core::Status StreamEngine::SessionError(SessionId id) const {
  Slot* s = slot(id);
  if (!s->poisoned.load(std::memory_order_acquire)) return core::Status::Ok();
  std::lock_guard<std::mutex> lock(s->mu);
  return s->error;
}

const std::vector<network::SegmentId>& StreamEngine::Committed(
    SessionId id) const {
  Slot* s = slot(id);
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->session != nullptr) return s->session->committed();
  return s->final_committed;
}

SessionStats StreamEngine::Stats(SessionId id) const {
  Slot* s = slot(id);
  std::lock_guard<std::mutex> lock(s->mu);
  if (s->session != nullptr) return s->session->stats();
  return s->final_stats;
}

SessionStats StreamEngine::TotalStats() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  SessionStats total;
  for (const std::unique_ptr<Slot>& s : slots_) {
    SessionStats one;
    {
      std::lock_guard<std::mutex> slot_lock(s->mu);
      one = s->session != nullptr ? s->session->stats() : s->final_stats;
    }
    total.points_pushed += one.points_pushed;
    total.points_committed += one.points_committed;
    total.latency_points_sum += one.latency_points_sum;
    total.breaks += one.breaks;
  }
  return total;
}

int64_t StreamEngine::num_sessions() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  return static_cast<int64_t>(slots_.size());
}

}  // namespace lhmm::matchers
