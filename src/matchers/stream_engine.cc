#include "matchers/stream_engine.h"

#include <utility>

#include "core/logging.h"

namespace lhmm::matchers {

StreamEngine::StreamEngine(MatcherFactory factory,
                           const StreamEngineConfig& config)
    : factory_(std::move(factory)), config_(config) {
  CHECK(factory_ != nullptr);
  num_threads_ = config_.num_threads > 0 ? config_.num_threads
                                         : core::ThreadPool::DefaultThreadCount();
  if (num_threads_ > 1) {
    pool_ = std::make_unique<core::ThreadPool>(num_threads_);
  }
}

StreamEngine::~StreamEngine() {
  if (pool_ != nullptr) pool_->Wait();
}

SessionId StreamEngine::Open() {
  auto s = std::make_unique<Slot>();
  s->matcher = factory_();
  CHECK(s->matcher != nullptr);
  if (config_.shared_router != nullptr) {
    s->matcher->UseSharedRouter(config_.shared_router);
  }
  StreamConfig sc;
  sc.lag = config_.lag;
  s->session = s->matcher->OpenSession(sc);
  CHECK(s->session != nullptr)
      << s->matcher->name() << " does not support streaming";
  std::lock_guard<std::mutex> lock(slots_mu_);
  slots_.push_back(std::move(s));
  return static_cast<SessionId>(slots_.size()) - 1;
}

StreamEngine::Slot* StreamEngine::slot(SessionId id) const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  CHECK_GE(id, 0);
  CHECK_LT(id, static_cast<SessionId>(slots_.size()));
  return slots_[id].get();
}

void StreamEngine::Push(SessionId id, const traj::TrajPoint& point) {
  Slot* s = slot(id);
  CHECK(!s->closed.load(std::memory_order_acquire))
      << "Push after Finish on session " << id;
  Enqueue(s, point);
}

void StreamEngine::Finish(SessionId id) {
  Slot* s = slot(id);
  CHECK(!s->closed.exchange(true, std::memory_order_acq_rel))
      << "double Finish on session " << id;
  Enqueue(s, std::nullopt);
}

void StreamEngine::Process(Slot* s, std::optional<traj::TrajPoint>& event) {
  if (event.has_value()) {
    s->session->Push(*event);
  } else {
    s->session->Finish();
    s->finished.store(true, std::memory_order_release);
  }
}

void StreamEngine::Enqueue(Slot* s, std::optional<traj::TrajPoint> event) {
  if (pool_ == nullptr) {
    Process(s, event);
    return;
  }
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(s->mu);
    s->inbox.push_back(std::move(event));
    if (!s->scheduled) {
      s->scheduled = true;
      schedule = true;
    }
  }
  if (schedule) {
    pool_->Submit([this, s] { Pump(s); });
  }
}

void StreamEngine::Pump(Slot* s) {
  // Drains the inbox in arrival order. `scheduled` stays true until the
  // inbox is observed empty under the lock, so no second pump for this slot
  // can be queued while this one runs — that exclusivity is the per-session
  // FIFO guarantee.
  for (;;) {
    std::deque<std::optional<traj::TrajPoint>> batch;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      if (s->inbox.empty()) {
        s->scheduled = false;
        return;
      }
      batch.swap(s->inbox);
    }
    for (std::optional<traj::TrajPoint>& event : batch) {
      Process(s, event);
    }
  }
}

void StreamEngine::Barrier() {
  if (pool_ != nullptr) pool_->Wait();
}

bool StreamEngine::finished(SessionId id) const {
  return slot(id)->finished.load(std::memory_order_acquire);
}

const std::vector<network::SegmentId>& StreamEngine::Committed(
    SessionId id) const {
  return slot(id)->session->committed();
}

SessionStats StreamEngine::Stats(SessionId id) const {
  return slot(id)->session->stats();
}

SessionStats StreamEngine::TotalStats() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  SessionStats total;
  for (const std::unique_ptr<Slot>& s : slots_) {
    const SessionStats one = s->session->stats();
    total.points_pushed += one.points_pushed;
    total.points_committed += one.points_committed;
    total.latency_points_sum += one.latency_points_sum;
  }
  return total;
}

int64_t StreamEngine::num_sessions() const {
  std::lock_guard<std::mutex> lock(slots_mu_);
  return static_cast<int64_t>(slots_.size());
}

}  // namespace lhmm::matchers
