#ifndef LHMM_MATCHERS_STREAMING_H_
#define LHMM_MATCHERS_STREAMING_H_

#include <cstdint>
#include <vector>

#include "hmm/engine.h"
#include "hmm/online.h"
#include "network/path_cache.h"
#include "traj/trajectory.h"

namespace lhmm::matchers {

/// Knobs of a streaming session; everything else (candidate count k, route
/// bounds, models) comes from the matcher that opens the session.
struct StreamConfig {
  /// Points of look-ahead before a point's match is committed. Larger lag
  /// approaches offline Viterbi accuracy at the cost of decision delay;
  /// lag >= trajectory length reproduces the offline path exactly.
  int lag = 8;
};

/// Commit-latency accounting of one session, in points: a point's latency is
/// the number of later arrivals that were pushed before its match became
/// final (== lag in steady state, less at end of stream).
struct SessionStats {
  int64_t points_pushed = 0;
  int64_t points_committed = 0;
  int64_t latency_points_sum = 0;
  /// Committed HMM breaks (hmm::OnlineMatcher::breaks()): discontinuities the
  /// session stitched across because no connecting route existed.
  int64_t breaks = 0;

  double MeanCommitLatency() const {
    return points_committed > 0
               ? static_cast<double>(latency_points_sum) /
                     static_cast<double>(points_committed)
               : 0.0;
  }
};

/// The portable resumable state of one streaming session, produced by
/// StreamingSession::Checkpoint for graceful drain and consumed by Restore on
/// a freshly opened session (possibly in another process). A restored session
/// continues with output byte-identical to the uninterrupted one.
struct SessionSnapshot {
  hmm::OnlineCheckpoint online;
  int64_t latency_points_sum = 0;
};

/// One live fixed-lag matching session: points of a single trajectory stream
/// in via Push() and road segments stream out as their matches commit.
/// Sessions borrow their matcher's models (which hold per-trajectory state),
/// so at most one session per matcher may be active at a time and the
/// matcher's offline Match() must not be interleaved with session pushes.
/// StreamEngine gives every session its own matcher clone for this reason.
class StreamingSession {
 public:
  virtual ~StreamingSession() = default;

  /// Feeds the next point; returns segments newly committed by this update.
  virtual std::vector<network::SegmentId> Push(const traj::TrajPoint& point) = 0;

  /// Ends the stream: commits all pending points and returns their segments.
  virtual std::vector<network::SegmentId> Finish() = 0;

  /// Clears all state so the session can match a new trajectory.
  virtual void Reset() = 0;

  /// Total committed path so far (everything ever returned, concatenated).
  virtual const std::vector<network::SegmentId>& committed() const = 0;

  virtual SessionStats stats() const = 0;

  /// Drain/restore support. Checkpoint snapshots the resumable state into
  /// `out` and returns true; Restore replaces the session's state (call only
  /// before the first Push of a fresh session). Sessions without a resumable
  /// form return false from both and SupportsCheckpoint(); callers must treat
  /// that as "cannot be drained", not as an error.
  virtual bool SupportsCheckpoint() const { return false; }
  virtual bool Checkpoint(SessionSnapshot* out) const { return false; }
  virtual bool Restore(const SessionSnapshot& snapshot) { return false; }
};

/// The standard StreamingSession: an hmm::OnlineMatcher running the opening
/// matcher's observation/transition models against its (possibly shared)
/// CachedRouter. Also carries an offline hmm::Engine over the same models,
/// so convergence (lag >= length => streamed path == offline Viterbi path,
/// shortcuts disabled) can be checked against the exact reference.
class OnlineSession : public StreamingSession {
 public:
  /// All pointers must outlive the session.
  OnlineSession(const network::RoadNetwork* net, network::CachedRouter* router,
                hmm::ObservationModel* obs, hmm::TransitionModel* trans,
                const hmm::OnlineConfig& config);

  std::vector<network::SegmentId> Push(const traj::TrajPoint& point) override;
  std::vector<network::SegmentId> Finish() override;
  void Reset() override;
  const std::vector<network::SegmentId>& committed() const override {
    return online_.committed();
  }
  SessionStats stats() const override;

  bool SupportsCheckpoint() const override { return true; }
  bool Checkpoint(SessionSnapshot* out) const override;
  bool Restore(const SessionSnapshot& snapshot) override;

  /// Offline Viterbi over the same models/router (shortcuts off): the exact
  /// reference the fixed-lag output converges to. Only valid while the
  /// session is idle (no pending points) — the models are shared.
  hmm::EngineResult MatchOffline(const traj::Trajectory& t);

 private:
  /// Folds the points consumed since `consumed_before` into latency stats.
  void AccumulateLatency(int64_t consumed_before);

  hmm::OnlineMatcher online_;
  hmm::Engine offline_;
  int64_t latency_points_sum_ = 0;
};

}  // namespace lhmm::matchers

#endif  // LHMM_MATCHERS_STREAMING_H_
