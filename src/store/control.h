#ifndef LHMM_STORE_CONTROL_H_
#define LHMM_STORE_CONTROL_H_

#include <cstdint>

#include "core/status.h"

namespace lhmm::store {

/// What the serving plane reports about its attached store (the `status`,
/// `swap`, and `rollback` verbs format exactly these fields).
struct StoreStatus {
  int64_t generation = 0;           ///< Generation currently serving.
  int64_t previous_generation = -1; ///< Rollback target; -1 when none kept.
  int64_t bytes = 0;                ///< Mapped store file size.
};

/// The narrow control surface srv:: needs from the store: report, swap,
/// roll back. Header-only pure interface so lhmm_srv can expose the verbs
/// without linking lhmm_store (the tool that owns both wires them together).
/// Implemented by store::GenerationManager.
class StoreControl {
 public:
  virtual ~StoreControl() = default;

  virtual StoreStatus Status() const = 0;

  /// Fully validates generation `generation` and flips to it; on any
  /// validation failure returns the typed error and keeps serving the old
  /// generation untouched.
  virtual core::Result<StoreStatus> Swap(int64_t generation) = 0;

  /// Re-publishes the previous kept generation. Typed kFailedPrecondition
  /// when there is none.
  virtual core::Result<StoreStatus> Rollback() = 0;
};

}  // namespace lhmm::store

#endif  // LHMM_STORE_CONTROL_H_
