#ifndef LHMM_STORE_MAPPED_STORE_H_
#define LHMM_STORE_MAPPED_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"
#include "lhmm/model.h"
#include "matchers/seq2seq.h"
#include "network/contraction.h"
#include "network/grid_index.h"
#include "network/road_network.h"
#include "store/format.h"

namespace lhmm::store {

/// A zero-copy view into one section of a mapped store. `data` points into
/// the PROT_READ mapping; it stays valid for as long as the owning
/// MappedStore is alive (generation handles pin it, see store/generations.h).
struct SectionView {
  const void* data = nullptr;
  uint64_t bytes = 0;
  uint64_t offset = 0;  ///< Absolute file offset, for error messages.
};

/// A read-only `store-<gen>.lds` file mapped PROT_READ.
///
/// Open() validates *everything* before returning — magic, header CRC,
/// format version, total-size field (torn-tail guard), TOC CRC, per-section
/// bounds/alignment/CRC, and optionally the network fingerprint — so a
/// MappedStore that exists is fully trustworthy and every consumer can read
/// the mapping without further checks. Any failure is a typed
/// core::Status naming the file and byte offset, and nothing stays mapped.
///
/// N processes opening the same file share one physical copy of the pages
/// through the page cache (MAP_SHARED, read-only): per-worker and
/// per-process memory no longer scales with the heavy immutable assets.
class MappedStore {
 public:
  /// Maps and fully validates `path`. If `expect_fingerprint` is nonzero the
  /// store's network fingerprint must match it (the swap protocol passes the
  /// live network's fingerprint so a store built for a different graph can
  /// never flip in).
  static core::Result<std::shared_ptr<MappedStore>> Open(
      const std::string& path, uint64_t expect_fingerprint = 0);

  ~MappedStore();

  MappedStore(const MappedStore&) = delete;
  MappedStore& operator=(const MappedStore&) = delete;

  const std::string& path() const { return path_; }
  uint64_t fingerprint() const { return fingerprint_; }
  uint64_t generation() const { return generation_; }
  int64_t bytes() const { return static_cast<int64_t>(size_); }

  bool HasSection(uint32_t tag) const;

  /// The validated view of a section; typed NotFound if the store was built
  /// without it.
  core::Result<SectionView> Section(uint32_t tag) const;

  // --- Materializing loaders. Each decodes its section directly from the
  // mapping (no intermediate file reads or parse buffers) into the owned
  // structure its consumers expect, with typed file+offset errors on any
  // internal inconsistency the CRC could not see. The decode is exact, so a
  // loaded asset behaves byte-identically to the one the store was built
  // from. ---

  /// Rebuilds the road network (exact double round trip; cached segment
  /// lengths recompute identically).
  core::Result<network::RoadNetwork> LoadNetwork() const;

  /// Rebuilds the grid index over `net` from the stored cell buckets,
  /// skipping the geometry scan.
  core::Result<std::unique_ptr<network::GridIndex>> LoadGridIndex(
      const network::RoadNetwork* net) const;

  /// Rebuilds the contraction hierarchy (structurally validated, Finish()ed).
  core::Result<network::CHGraph> LoadCHGraph() const;

  /// Applies the stored LHMM weights onto an architecture-matching model:
  /// parameter tensors, the four feature norms, and the node embeddings.
  core::Status ApplyLhmmWeights(lhmm::LhmmModel* model) const;

  /// Applies the stored seq2seq weights onto an architecture-matching matcher.
  core::Status ApplySeq2SeqWeights(matchers::Seq2SeqMatcher* matcher) const;

  /// Parsed META section (empty if absent).
  std::vector<std::pair<std::string, std::string>> Meta() const;

 private:
  MappedStore() = default;

  std::string path_;
  const char* base_ = nullptr;
  size_t size_ = 0;
  uint64_t fingerprint_ = 0;
  uint64_t generation_ = 0;
  std::vector<SectionEntry> toc_;
};

}  // namespace lhmm::store

#endif  // LHMM_STORE_MAPPED_STORE_H_
