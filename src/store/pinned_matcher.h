#ifndef LHMM_STORE_PINNED_MATCHER_H_
#define LHMM_STORE_PINNED_MATCHER_H_

#include <memory>
#include <string>
#include <utility>

#include "matchers/matcher.h"
#include "store/generations.h"

namespace lhmm::store {

/// A matcher clone pinned to one store generation. MatcherFactory wrappers in
/// store mode produce these: the handle keeps the generation's mapping alive
/// for the whole life of the clone (and of any streaming session it opens,
/// since StreamEngine keeps the clone for the session's life), so a swap
/// never unmaps bytes a live Viterbi column is still reading. When the last
/// pinned clone of an old generation is destroyed, the handle drops and the
/// old mapping is released — RCU with shared_ptr as the read lock.
class PinnedMatcher : public matchers::MapMatcher {
 public:
  PinnedMatcher(GenerationHandle generation,
                std::unique_ptr<matchers::MapMatcher> inner)
      : generation_(std::move(generation)), inner_(std::move(inner)) {}

  std::string name() const override { return inner_->name(); }
  matchers::MatchResult Match(const traj::Trajectory& cellular) override {
    return inner_->Match(cellular);
  }
  bool ProvidesCandidates() const override {
    return inner_->ProvidesCandidates();
  }
  void UseSharedRouter(network::CachedRouter* shared) override {
    inner_->UseSharedRouter(shared);
  }
  bool SupportsStreaming() const override { return inner_->SupportsStreaming(); }
  std::unique_ptr<matchers::StreamingSession> OpenSession(
      const matchers::StreamConfig& config) override {
    return inner_->OpenSession(config);
  }

  const GenerationHandle& generation() const { return generation_; }

 private:
  GenerationHandle generation_;
  std::unique_ptr<matchers::MapMatcher> inner_;
};

}  // namespace lhmm::store

#endif  // LHMM_STORE_PINNED_MATCHER_H_
