#include "store/store_writer.h"

#include <cstring>

#include "core/logging.h"
#include "io/durable_file.h"
#include "io/journal.h"
#include "nn/serialize.h"

namespace lhmm::store {

namespace {

size_t Align8(size_t n) { return (n + kStoreAlign - 1) & ~(kStoreAlign - 1); }

void AppendRaw(std::string* out, const void* data, size_t n) {
  out->append(reinterpret_cast<const char*>(data), n);
}

template <typename T>
void AppendPod(std::string* out, T v) {
  AppendRaw(out, &v, sizeof(v));
}

template <typename T>
void AppendVec(std::string* out, const std::vector<T>& v) {
  AppendRaw(out, v.data(), sizeof(T) * v.size());
}

}  // namespace

std::string TagName(uint32_t tag) {
  std::string name(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xff);
    name[i] = (c >= 0x20 && c < 0x7f) ? c : '?';
  }
  return name;
}

void StoreWriter::AddSection(uint32_t tag, std::string payload) {
  for (const auto& [existing, unused] : sections_) {
    CHECK(existing != tag) << "duplicate store section " << TagName(tag);
  }
  sections_.emplace_back(tag, std::move(payload));
}

core::Status StoreWriter::Write(const std::string& path, uint64_t fingerprint,
                                uint64_t generation, io::Env* env) const {
  const uint32_t count = static_cast<uint32_t>(sections_.size());
  // TOC immediately follows the header; its own CRC + pad follow the entries,
  // so the first payload starts 8-aligned by construction.
  const size_t toc_off = kHeaderBytes;
  const size_t toc_bytes = static_cast<size_t>(count) * kSectionEntryBytes;
  size_t off = toc_off + toc_bytes + 2 * sizeof(uint32_t);
  std::vector<SectionEntry> toc(count);
  for (uint32_t i = 0; i < count; ++i) {
    const auto& [tag, payload] = sections_[i];
    toc[i].tag = tag;
    toc[i].offset = off;
    toc[i].bytes = payload.size();
    toc[i].crc = io::Crc32(payload.data(), payload.size());
    off = Align8(off + payload.size());
  }
  const uint64_t total = off;

  std::string file(total, '\0');
  std::memcpy(&file[0], kStoreMagic, sizeof(kStoreMagic));
  const uint32_t version = kFormatVersion;
  std::memcpy(&file[kVersionOffset], &version, sizeof(version));
  std::memcpy(&file[12], &count, sizeof(count));
  std::memcpy(&file[kFingerprintOffset], &fingerprint, sizeof(fingerprint));
  std::memcpy(&file[kFileBytesOffset], &total, sizeof(total));
  std::memcpy(&file[32], &generation, sizeof(generation));
  const uint32_t header_crc = io::Crc32(file.data(), kHeaderCrcOffset);
  std::memcpy(&file[kHeaderCrcOffset], &header_crc, sizeof(header_crc));

  std::memcpy(&file[toc_off], toc.data(), toc_bytes);
  const uint32_t toc_crc = io::Crc32(file.data() + toc_off, toc_bytes);
  std::memcpy(&file[toc_off + toc_bytes], &toc_crc, sizeof(toc_crc));

  for (uint32_t i = 0; i < count; ++i) {
    const std::string& payload = sections_[i].second;
    std::memcpy(&file[toc[i].offset], payload.data(), payload.size());
  }
  return io::AtomicWriteFile(env, path, file, /*durable=*/true);
}

std::string EncodeNetwork(const network::RoadNetwork& net) {
  std::string out;
  const int32_t num_nodes = net.num_nodes();
  const int32_t num_segments = net.num_segments();
  int64_t num_points = 0;
  for (const network::RoadSegment& seg : net.segments()) {
    num_points += seg.geometry.size();
  }
  AppendPod(&out, num_nodes);
  AppendPod(&out, num_segments);
  AppendPod(&out, num_points);
  for (network::NodeId n = 0; n < num_nodes; ++n) {
    AppendPod(&out, net.node(n).pos.x);
    AppendPod(&out, net.node(n).pos.y);
  }
  // Geometry prefix offsets first, then all segment attributes, then the flat
  // vertex doubles. Lengths are not stored: the loader recomputes them from
  // the identical doubles, which is what makes the round trip byte-exact.
  std::vector<int64_t> geom_begin;
  geom_begin.reserve(num_segments + 1);
  geom_begin.push_back(0);
  for (const network::RoadSegment& seg : net.segments()) {
    geom_begin.push_back(geom_begin.back() + seg.geometry.size());
  }
  AppendVec(&out, geom_begin);
  for (const network::RoadSegment& seg : net.segments()) {
    AppendPod(&out, static_cast<int32_t>(seg.from));
    AppendPod(&out, static_cast<int32_t>(seg.to));
    AppendPod(&out, static_cast<int32_t>(seg.reverse));
    AppendPod(&out, static_cast<int32_t>(seg.level));
    AppendPod(&out, seg.speed_limit);
  }
  for (const network::RoadSegment& seg : net.segments()) {
    for (const geo::Point& p : seg.geometry.points()) {
      AppendPod(&out, p.x);
      AppendPod(&out, p.y);
    }
  }
  return out;
}

std::string EncodeGridIndex(const network::GridIndex& index) {
  const network::GridSnapshot snap = index.Snapshot();
  std::string out;
  AppendPod(&out, snap.cell_size);
  AppendPod(&out, snap.origin_x);
  AppendPod(&out, snap.origin_y);
  AppendPod(&out, static_cast<int32_t>(snap.cols));
  AppendPod(&out, static_cast<int32_t>(snap.rows));
  AppendPod(&out, static_cast<int64_t>(snap.ids.size()));
  AppendVec(&out, snap.cell_begin);
  AppendVec(&out, snap.ids);
  return out;
}

std::string EncodeCHGraph(const network::CHGraph& ch) {
  std::string out;
  AppendPod(&out, ch.num_nodes);
  AppendPod(&out, ch.num_shortcuts);
  AppendPod(&out, ch.fingerprint);
  AppendPod(&out, ch.num_up_edges());
  AppendPod(&out, ch.num_down_edges());
  AppendVec(&out, ch.rank);
  AppendVec(&out, ch.up_begin);
  AppendVec(&out, ch.up_head);
  AppendVec(&out, ch.up_weight);
  AppendVec(&out, ch.down_begin);
  AppendVec(&out, ch.down_tail);
  AppendVec(&out, ch.down_weight);
  return out;
}

std::string EncodeLhmmWeights(const lhmm::LhmmModel& model) {
  std::string out;
  const lhmm::FeatureNorm norms[4] = {model.obs_dist_norm, model.obs_cofreq_norm,
                                      model.trans_len_norm,
                                      model.trans_turn_norm};
  for (const lhmm::FeatureNorm& n : norms) {
    AppendPod(&out, n.mean);
    AppendPod(&out, n.std);
  }
  AppendPod(&out, static_cast<int32_t>(model.embeddings.rows()));
  AppendPod(&out, static_cast<int32_t>(model.embeddings.cols()));
  AppendRaw(&out, model.embeddings.data(),
            sizeof(float) * model.embeddings.size());
  // Parameter tensors last, running to the end of the section (the same blob
  // nn::SaveParams wraps, so one decoder validates both forms).
  nn::SerializeParams(model.AllParams(), &out);
  return out;
}

std::string EncodeSeq2SeqWeights(const matchers::Seq2SeqMatcher& matcher) {
  std::string out;
  nn::SerializeParams(matcher.Params(), &out);
  return out;
}

std::string EncodeMeta(
    const std::vector<std::pair<std::string, std::string>>& kv) {
  std::string out;
  for (const auto& [key, value] : kv) {
    out += key;
    out += '=';
    out += value;
    out += '\n';
  }
  return out;
}

}  // namespace lhmm::store
