#ifndef LHMM_STORE_FORMAT_H_
#define LHMM_STORE_FORMAT_H_

#include <cstdint>
#include <string>

namespace lhmm::store {

/// On-disk layout of a versioned asset store (`store-<gen>.lds` inside a
/// generation directory, see store/generations.h). One relocatable file holds
/// every heavy immutable asset a serving process needs — road network, grid
/// index, contraction hierarchy, trained LHMM and seq2seq weights — so N
/// workers (and N *processes*) share one physical copy through the page
/// cache instead of N private deserialized heaps.
///
/// Layout (little-endian, 8-byte-aligned sections):
///
///   [0,  8)  magic "LHMMSTR1"
///   [8, 12)  u32 format version (kFormatVersion; larger = typed reject)
///   [12,16)  u32 section count
///   [16,24)  u64 network fingerprint (network::CHGraph::NetworkFingerprint)
///   [24,32)  u64 total file bytes (guards torn tails before any TOC read)
///   [32,40)  u64 generation stamp (matches the gen-<N> directory)
///   [40,48)  u64 reserved (zero)
///   [48,52)  u32 CRC-32 of bytes [0,48)
///   [52,56)  u32 zero pad
///   then `section count` TOC entries (SectionEntry, 32 bytes each),
///   then u32 CRC-32 of the TOC bytes + u32 zero pad,
///   then the section payloads, each 8-aligned and zero-padded between.
///
/// Every validation failure — truncation, bit flip, version skew, fingerprint
/// mismatch — is a typed core::Status naming the file and byte offset
/// (io/error_context.h conventions), and MappedStore::Open refuses the whole
/// file: a store is either fully valid or not served at all.
inline constexpr char kStoreMagic[8] = {'L', 'H', 'M', 'M', 'S', 'T', 'R', '1'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kHeaderBytes = 56;
inline constexpr size_t kSectionEntryBytes = 32;
inline constexpr size_t kStoreAlign = 8;

/// Byte offsets of header fields, for tests and fault injectors that corrupt
/// a specific field on purpose.
inline constexpr int64_t kVersionOffset = 8;
inline constexpr int64_t kFingerprintOffset = 16;
inline constexpr int64_t kFileBytesOffset = 24;
inline constexpr int64_t kHeaderCrcOffset = 48;

/// Section tags, stored as a u32 built from four ASCII bytes.
constexpr uint32_t SectionTag(const char (&s)[5]) {
  return static_cast<uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

inline constexpr uint32_t kSectionMeta = SectionTag("META");     ///< key=value text.
inline constexpr uint32_t kSectionNetwork = SectionTag("NETW");  ///< Road network CSR.
inline constexpr uint32_t kSectionGrid = SectionTag("GRID");     ///< Grid index cells.
inline constexpr uint32_t kSectionCH = SectionTag("CHGR");       ///< Contraction hierarchy.
inline constexpr uint32_t kSectionLhmm = SectionTag("LHMM");     ///< Trained LHMM weights.
inline constexpr uint32_t kSectionSeq2Seq = SectionTag("S2SW");  ///< Seq2seq weights.

/// Renders a tag back to its four ASCII characters for error messages.
std::string TagName(uint32_t tag);

/// One TOC entry. Offsets are absolute file offsets; `crc` covers exactly
/// [offset, offset + bytes).
struct SectionEntry {
  uint32_t tag = 0;
  uint32_t flags = 0;  ///< Reserved, zero.
  uint64_t offset = 0;
  uint64_t bytes = 0;
  uint32_t crc = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(SectionEntry) == kSectionEntryBytes,
              "SectionEntry must match the on-disk TOC layout");

}  // namespace lhmm::store

#endif  // LHMM_STORE_FORMAT_H_
