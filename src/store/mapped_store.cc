#include "store/mapped_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/strings.h"
#include "io/error_context.h"
#include "io/journal.h"
#include "nn/serialize.h"

namespace lhmm::store {

namespace {

/// Sequential typed-error reader over one section view. Every decode failure
/// reports the *absolute file offset* of the bad byte, so a corrupt store
/// names the exact spot even when the CRC was forged.
class SectionReader {
 public:
  SectionReader(const std::string& path, const SectionView& view)
      : path_(path),
        base_(reinterpret_cast<const char*>(view.data)),
        size_(view.bytes),
        file_off_(view.offset) {}

  int64_t FileOffset() const { return static_cast<int64_t>(file_off_ + off_); }
  uint64_t Remaining() const { return size_ - off_; }
  const void* Cursor() const { return base_ + off_; }

  core::Status Read(void* dst, size_t n) {
    if (off_ + n > size_) {
      return io::OffsetError(path_, FileOffset(),
                             "section ends before expected payload");
    }
    std::memcpy(dst, base_ + off_, n);
    off_ += n;
    return core::Status::Ok();
  }

  template <typename T>
  core::Status ReadPod(T* v) {
    return Read(v, sizeof(T));
  }

  template <typename T>
  core::Status ReadVec(std::vector<T>* v, size_t count) {
    v->resize(count);
    return Read(v->data(), sizeof(T) * count);
  }

 private:
  const std::string& path_;
  const char* base_;
  uint64_t size_;
  uint64_t file_off_;
  uint64_t off_ = 0;
};

}  // namespace

core::Result<std::shared_ptr<MappedStore>> MappedStore::Open(
    const std::string& path, uint64_t expect_fingerprint) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return core::Status::IoError(
        core::StrFormat("cannot open %s: %s", path.c_str(), strerror(errno)));
  }
  struct stat st;
  if (fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return core::Status::IoError(
        core::StrFormat("cannot stat %s: %s", path.c_str(), strerror(err)));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return io::OffsetError(
        path, static_cast<int64_t>(size),
        core::StrFormat("file too small for a store header (%zu < %zu bytes)",
                        size, kHeaderBytes));
  }
  void* mapping = mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // The mapping holds its own reference.
  if (mapping == MAP_FAILED) {
    return core::Status::IoError(
        core::StrFormat("mmap failed for %s: %s", path.c_str(), strerror(errno)));
  }
  // From here on, every early return must unmap.
  std::shared_ptr<MappedStore> store(new MappedStore());
  store->path_ = path;
  store->base_ = reinterpret_cast<const char*>(mapping);
  store->size_ = size;
  const char* base = store->base_;

  if (std::memcmp(base, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    return io::OffsetError(path, 0, "bad magic (not a store file)");
  }
  uint32_t stored_header_crc = 0;
  std::memcpy(&stored_header_crc, base + kHeaderCrcOffset,
              sizeof(stored_header_crc));
  const uint32_t header_crc = io::Crc32(base, kHeaderCrcOffset);
  if (header_crc != stored_header_crc) {
    return io::OffsetError(
        path, kHeaderCrcOffset,
        core::StrFormat("header CRC mismatch (stored %08x, computed %08x)",
                        stored_header_crc, header_crc));
  }
  uint32_t version = 0;
  std::memcpy(&version, base + kVersionOffset, sizeof(version));
  if (version != kFormatVersion) {
    return io::OffsetError(
        path, kVersionOffset,
        core::StrFormat("format version skew (file %u, reader %u)", version,
                        kFormatVersion));
  }
  uint64_t file_bytes = 0;
  std::memcpy(&file_bytes, base + kFileBytesOffset, sizeof(file_bytes));
  if (file_bytes != size) {
    return io::OffsetError(
        path, kFileBytesOffset,
        core::StrFormat("file size mismatch: header says %llu bytes, file has "
                        "%zu (torn tail or trailing junk)",
                        static_cast<unsigned long long>(file_bytes), size));
  }
  std::memcpy(&store->fingerprint_, base + kFingerprintOffset,
              sizeof(store->fingerprint_));
  std::memcpy(&store->generation_, base + 32, sizeof(store->generation_));
  uint32_t count = 0;
  std::memcpy(&count, base + 12, sizeof(count));

  const size_t toc_off = kHeaderBytes;
  const size_t toc_bytes = static_cast<size_t>(count) * kSectionEntryBytes;
  if (toc_off + toc_bytes + 2 * sizeof(uint32_t) > size) {
    return io::OffsetError(path, 12,
                           core::StrFormat("section count %u does not fit in "
                                           "the file (TOC would overrun)",
                                           count));
  }
  uint32_t stored_toc_crc = 0;
  std::memcpy(&stored_toc_crc, base + toc_off + toc_bytes,
              sizeof(stored_toc_crc));
  const uint32_t toc_crc = io::Crc32(base + toc_off, toc_bytes);
  if (toc_crc != stored_toc_crc) {
    return io::OffsetError(
        path, static_cast<int64_t>(toc_off + toc_bytes),
        core::StrFormat("TOC CRC mismatch (stored %08x, computed %08x)",
                        stored_toc_crc, toc_crc));
  }
  store->toc_.resize(count);
  std::memcpy(store->toc_.data(), base + toc_off, toc_bytes);
  for (uint32_t i = 0; i < count; ++i) {
    const SectionEntry& e = store->toc_[i];
    const int64_t entry_off = static_cast<int64_t>(toc_off + i * kSectionEntryBytes);
    if (e.offset % kStoreAlign != 0) {
      return io::OffsetError(path, entry_off,
                             "section " + TagName(e.tag) + " is misaligned");
    }
    if (e.offset > size || e.bytes > size - e.offset) {
      return io::OffsetError(
          path, entry_off,
          core::StrFormat("section %s [%llu, +%llu) overruns the %zu-byte file",
                          TagName(e.tag).c_str(),
                          static_cast<unsigned long long>(e.offset),
                          static_cast<unsigned long long>(e.bytes), size));
    }
    const uint32_t crc = io::Crc32(base + e.offset, e.bytes);
    if (crc != e.crc) {
      return io::OffsetError(
          path, static_cast<int64_t>(e.offset),
          core::StrFormat("section %s CRC mismatch (stored %08x, computed %08x)",
                          TagName(e.tag).c_str(), e.crc, crc));
    }
  }
  if (expect_fingerprint != 0 && store->fingerprint_ != expect_fingerprint) {
    return io::OffsetError(
        path, kFingerprintOffset,
        core::StrFormat("network fingerprint mismatch: store built for "
                        "%016llx, live network is %016llx",
                        static_cast<unsigned long long>(store->fingerprint_),
                        static_cast<unsigned long long>(expect_fingerprint)));
  }
  return store;
}

MappedStore::~MappedStore() {
  if (base_ != nullptr) {
    munmap(const_cast<char*>(base_), size_);
  }
}

bool MappedStore::HasSection(uint32_t tag) const {
  for (const SectionEntry& e : toc_) {
    if (e.tag == tag) return true;
  }
  return false;
}

core::Result<SectionView> MappedStore::Section(uint32_t tag) const {
  for (const SectionEntry& e : toc_) {
    if (e.tag == tag) {
      return SectionView{base_ + e.offset, e.bytes, e.offset};
    }
  }
  return core::Status::NotFound(path_ + ": store has no " + TagName(tag) +
                                " section");
}

core::Result<network::RoadNetwork> MappedStore::LoadNetwork() const {
  core::Result<SectionView> view = Section(kSectionNetwork);
  if (!view.ok()) return view.status();
  SectionReader r(path_, *view);
  int32_t num_nodes = 0;
  int32_t num_segments = 0;
  int64_t num_points = 0;
  LHMM_RETURN_IF_ERROR(r.ReadPod(&num_nodes));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&num_segments));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&num_points));
  if (num_nodes < 0 || num_segments < 0 || num_points < 0) {
    return io::OffsetError(path_, static_cast<int64_t>(view->offset),
                           "negative network counts");
  }
  network::RoadNetwork net;
  for (int32_t n = 0; n < num_nodes; ++n) {
    geo::Point pos;
    LHMM_RETURN_IF_ERROR(r.ReadPod(&pos.x));
    LHMM_RETURN_IF_ERROR(r.ReadPod(&pos.y));
    net.AddNode(pos);
  }
  std::vector<int64_t> geom_begin;
  LHMM_RETURN_IF_ERROR(
      r.ReadVec(&geom_begin, static_cast<size_t>(num_segments) + 1));
  if (geom_begin.front() != 0 || geom_begin.back() != num_points) {
    return io::OffsetError(path_, r.FileOffset(),
                           "geometry offsets do not cover the vertex array");
  }
  struct SegAttrs {
    int32_t from, to, reverse, level;
    double speed_limit;
  };
  std::vector<SegAttrs> attrs(num_segments);
  for (SegAttrs& a : attrs) {
    LHMM_RETURN_IF_ERROR(r.ReadPod(&a.from));
    LHMM_RETURN_IF_ERROR(r.ReadPod(&a.to));
    LHMM_RETURN_IF_ERROR(r.ReadPod(&a.reverse));
    LHMM_RETURN_IF_ERROR(r.ReadPod(&a.level));
    LHMM_RETURN_IF_ERROR(r.ReadPod(&a.speed_limit));
  }
  for (int32_t s = 0; s < num_segments; ++s) {
    const SegAttrs& a = attrs[s];
    const int64_t nv = geom_begin[s + 1] - geom_begin[s];
    if (a.from < 0 || a.from >= num_nodes || a.to < 0 || a.to >= num_nodes ||
        a.from == a.to || a.level < 0 || a.level > 2 || a.reverse < -1 ||
        a.reverse >= num_segments || nv < 2) {
      return io::OffsetError(
          path_, r.FileOffset(),
          core::StrFormat("segment %d has inconsistent attributes", s));
    }
    std::vector<geo::Point> pts(static_cast<size_t>(nv));
    LHMM_RETURN_IF_ERROR(r.Read(pts.data(), sizeof(geo::Point) * pts.size()));
    net.AddSegment(a.from, a.to, geo::Polyline(std::move(pts)), a.speed_limit,
                   static_cast<network::RoadLevel>(a.level));
  }
  for (int32_t s = 0; s < num_segments; ++s) {
    const SegAttrs& a = attrs[s];
    if (a.reverse < 0) continue;
    const network::RoadSegment& twin = net.segment(a.reverse);
    if (twin.from != attrs[s].to || twin.to != attrs[s].from) {
      return io::OffsetError(
          path_, static_cast<int64_t>(view->offset),
          core::StrFormat("segment %d names a reverse twin that does not "
                          "connect the same nodes",
                          s));
    }
    net.SetReverse(s, a.reverse);
  }
  if (r.Remaining() != 0) {
    return io::OffsetError(path_, r.FileOffset(),
                           "trailing bytes after network payload");
  }
  core::Status valid = net.Validate();
  if (!valid.ok()) return valid;
  return net;
}

core::Result<std::unique_ptr<network::GridIndex>> MappedStore::LoadGridIndex(
    const network::RoadNetwork* net) const {
  core::Result<SectionView> view = Section(kSectionGrid);
  if (!view.ok()) return view.status();
  SectionReader r(path_, *view);
  network::GridSnapshot snap;
  int32_t cols = 0;
  int32_t rows = 0;
  int64_t total_ids = 0;
  LHMM_RETURN_IF_ERROR(r.ReadPod(&snap.cell_size));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&snap.origin_x));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&snap.origin_y));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&cols));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&rows));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&total_ids));
  if (snap.cell_size <= 0.0 || cols < 1 || rows < 1 || total_ids < 0 ||
      static_cast<int64_t>(cols) * rows > (1 << 28)) {
    return io::OffsetError(path_, static_cast<int64_t>(view->offset),
                           "inconsistent grid shape");
  }
  snap.cols = cols;
  snap.rows = rows;
  const size_t num_cells = static_cast<size_t>(cols) * rows;
  LHMM_RETURN_IF_ERROR(r.ReadVec(&snap.cell_begin, num_cells + 1));
  LHMM_RETURN_IF_ERROR(r.ReadVec(&snap.ids, static_cast<size_t>(total_ids)));
  if (r.Remaining() != 0) {
    return io::OffsetError(path_, r.FileOffset(),
                           "trailing bytes after grid payload");
  }
  if (snap.cell_begin.front() != 0 || snap.cell_begin.back() != total_ids) {
    return io::OffsetError(path_, static_cast<int64_t>(view->offset),
                           "grid cell offsets do not cover the id array");
  }
  for (size_t c = 0; c < num_cells; ++c) {
    if (snap.cell_begin[c] > snap.cell_begin[c + 1]) {
      return io::OffsetError(path_, static_cast<int64_t>(view->offset),
                             "grid cell offsets are not monotone");
    }
  }
  for (network::SegmentId id : snap.ids) {
    if (id < 0 || id >= net->num_segments()) {
      return io::OffsetError(path_, static_cast<int64_t>(view->offset),
                             "grid references a segment outside the network");
    }
  }
  return std::make_unique<network::GridIndex>(net, snap);
}

core::Result<network::CHGraph> MappedStore::LoadCHGraph() const {
  core::Result<SectionView> view = Section(kSectionCH);
  if (!view.ok()) return view.status();
  SectionReader r(path_, *view);
  network::CHGraph ch;
  int64_t up_edges = 0;
  int64_t down_edges = 0;
  LHMM_RETURN_IF_ERROR(r.ReadPod(&ch.num_nodes));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&ch.num_shortcuts));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&ch.fingerprint));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&up_edges));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&down_edges));
  if (ch.num_nodes < 0 || up_edges < 0 || down_edges < 0) {
    return io::OffsetError(path_, static_cast<int64_t>(view->offset),
                           "negative CH counts");
  }
  const size_t n = static_cast<size_t>(ch.num_nodes);
  LHMM_RETURN_IF_ERROR(r.ReadVec(&ch.rank, n));
  LHMM_RETURN_IF_ERROR(r.ReadVec(&ch.up_begin, n + 1));
  LHMM_RETURN_IF_ERROR(r.ReadVec(&ch.up_head, static_cast<size_t>(up_edges)));
  LHMM_RETURN_IF_ERROR(r.ReadVec(&ch.up_weight, static_cast<size_t>(up_edges)));
  LHMM_RETURN_IF_ERROR(r.ReadVec(&ch.down_begin, n + 1));
  LHMM_RETURN_IF_ERROR(
      r.ReadVec(&ch.down_tail, static_cast<size_t>(down_edges)));
  LHMM_RETURN_IF_ERROR(
      r.ReadVec(&ch.down_weight, static_cast<size_t>(down_edges)));
  if (r.Remaining() != 0) {
    return io::OffsetError(path_, r.FileOffset(),
                           "trailing bytes after CH payload");
  }
  if (ch.fingerprint != fingerprint_) {
    return io::OffsetError(path_, static_cast<int64_t>(view->offset),
                           "CH section fingerprint disagrees with the store "
                           "header");
  }
  const std::string problem = ch.Validate();
  if (!problem.empty()) {
    return io::OffsetError(path_, static_cast<int64_t>(view->offset), problem);
  }
  ch.Finish();
  return ch;
}

core::Status MappedStore::ApplyLhmmWeights(lhmm::LhmmModel* model) const {
  core::Result<SectionView> view = Section(kSectionLhmm);
  if (!view.ok()) return view.status();
  SectionReader r(path_, *view);
  lhmm::FeatureNorm norms[4];
  for (lhmm::FeatureNorm& n : norms) {
    LHMM_RETURN_IF_ERROR(r.ReadPod(&n.mean));
    LHMM_RETURN_IF_ERROR(r.ReadPod(&n.std));
  }
  int32_t rows = 0;
  int32_t cols = 0;
  LHMM_RETURN_IF_ERROR(r.ReadPod(&rows));
  LHMM_RETURN_IF_ERROR(r.ReadPod(&cols));
  if (rows <= 0 || cols <= 0 ||
      static_cast<uint64_t>(rows) * cols * sizeof(float) > r.Remaining()) {
    return io::OffsetError(path_, r.FileOffset(),
                           "inconsistent embedding shape");
  }
  nn::Matrix embeddings(rows, cols);
  LHMM_RETURN_IF_ERROR(
      r.Read(embeddings.data(), sizeof(float) * embeddings.size()));
  // The parameter blob runs to the end of the section; DeserializeParams
  // validates count/shapes against the model's architecture in place.
  std::vector<nn::Tensor> params = model->AllParams();
  LHMM_RETURN_IF_ERROR(nn::DeserializeParams(
      r.Cursor(), r.Remaining(),
      core::StrFormat("%s offset %lld (LHMM section)", path_.c_str(),
                      static_cast<long long>(r.FileOffset())),
      &params));
  model->obs_dist_norm = norms[0];
  model->obs_cofreq_norm = norms[1];
  model->trans_len_norm = norms[2];
  model->trans_turn_norm = norms[3];
  model->embeddings = std::move(embeddings);
  return core::Status::Ok();
}

core::Status MappedStore::ApplySeq2SeqWeights(
    matchers::Seq2SeqMatcher* matcher) const {
  core::Result<SectionView> view = Section(kSectionSeq2Seq);
  if (!view.ok()) return view.status();
  std::vector<nn::Tensor> params = matcher->Params();
  return nn::DeserializeParams(
      view->data, view->bytes,
      core::StrFormat("%s offset %llu (S2SW section)", path_.c_str(),
                      static_cast<unsigned long long>(view->offset)),
      &params);
}

std::vector<std::pair<std::string, std::string>> MappedStore::Meta() const {
  std::vector<std::pair<std::string, std::string>> kv;
  core::Result<SectionView> view = Section(kSectionMeta);
  if (!view.ok()) return kv;
  const std::string text(reinterpret_cast<const char*>(view->data),
                         view->bytes);
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    const size_t eq = line.find('=');
    if (eq != std::string::npos) {
      kv.emplace_back(line.substr(0, eq), line.substr(eq + 1));
    }
    pos = eol + 1;
  }
  return kv;
}

}  // namespace lhmm::store
