#include "store/generations.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/strings.h"
#include "io/durable_file.h"

namespace lhmm::store {

std::string GenerationDir(const std::string& root, int64_t gen) {
  return core::StrFormat("%s/gen-%06lld", root.c_str(),
                         static_cast<long long>(gen));
}

std::string StorePath(const std::string& root, int64_t gen) {
  return core::StrFormat("%s/store-%lld.lds", GenerationDir(root, gen).c_str(),
                         static_cast<long long>(gen));
}

core::Result<int64_t> ReadCurrent(const std::string& root) {
  std::ifstream in(root + "/CURRENT");
  if (!in.is_open()) {
    return core::Status::NotFound(root + "/CURRENT: no generation published");
  }
  long long gen = -1;
  in >> gen;
  if (in.fail() || gen < 0) {
    return core::Status::InvalidArgument(root +
                                         "/CURRENT: unreadable generation");
  }
  return static_cast<int64_t>(gen);
}

core::Status PublishCurrent(const std::string& root, int64_t gen,
                            io::Env* env) {
  return io::AtomicWriteFile(
      env, root + "/CURRENT",
      core::StrFormat("%lld\n", static_cast<long long>(gen)));
}

std::vector<int64_t> ListGenerations(const std::string& root) {
  std::vector<int64_t> gens;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    long long gen = -1;
    const std::string name = entry.path().filename().string();
    if (std::sscanf(name.c_str(), "gen-%lld", &gen) != 1 || gen < 0) continue;
    std::error_code exists_ec;
    if (std::filesystem::exists(StorePath(root, gen), exists_ec)) {
      gens.push_back(gen);
    }
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

GenerationManager::GenerationManager(std::string root,
                                     uint64_t expect_fingerprint,
                                     io::Env* env)
    : root_(std::move(root)),
      expect_fingerprint_(expect_fingerprint),
      env_(env != nullptr ? env : io::Env::Default()) {}

core::Result<std::unique_ptr<GenerationManager>> GenerationManager::Open(
    const std::string& root, uint64_t expect_fingerprint, io::Env* env) {
  core::Result<int64_t> gen = ReadCurrent(root);
  if (!gen.ok()) return gen.status();
  core::Result<std::shared_ptr<MappedStore>> store =
      MappedStore::Open(StorePath(root, *gen), expect_fingerprint);
  if (!store.ok()) return store.status();
  // With no caller expectation, pin the fingerprint of the generation we
  // opened: even then a later swap can never cross to a different network.
  const uint64_t pinned =
      expect_fingerprint != 0 ? expect_fingerprint : (*store)->fingerprint();
  std::unique_ptr<GenerationManager> mgr(
      new GenerationManager(root, pinned, env));
  mgr->current_ = std::make_shared<const LoadedGeneration>(
      LoadedGeneration{*gen, std::move(*store)});
  return mgr;
}

GenerationHandle GenerationManager::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

StoreStatus GenerationManager::StatusLocked() const {
  StoreStatus s;
  s.generation = current_->generation;
  s.previous_generation = previous_gen_;
  s.bytes = current_->store->bytes();
  return s;
}

StoreStatus GenerationManager::Status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StatusLocked();
}

core::Result<StoreStatus> GenerationManager::Swap(int64_t generation) {
  // Validate the candidate completely before taking the lock or touching any
  // serving state: a reject leaves the old generation byte-for-byte as it
  // was, still mapped, still serving.
  core::Result<std::shared_ptr<MappedStore>> store =
      MappedStore::Open(StorePath(root_, generation), expect_fingerprint_);
  if (!store.ok()) return store.status();
  // The publish is the commit point: if it fails (disk full, failed fsync,
  // failed rename), CURRENT still names the old generation and the serving
  // handle is never flipped — candidate mapping is simply dropped.
  LHMM_RETURN_IF_ERROR(PublishCurrent(root_, generation, env_));
  std::lock_guard<std::mutex> lock(mu_);
  if (current_->generation != generation) {
    previous_gen_ = current_->generation;
    current_ = std::make_shared<const LoadedGeneration>(
        LoadedGeneration{generation, std::move(*store)});
  }
  return StatusLocked();
}

core::Result<StoreStatus> GenerationManager::Rollback() {
  int64_t target = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = previous_gen_;
  }
  if (target < 0) {
    return core::Status::FailedPrecondition(
        root_ + ": no previous generation kept to roll back to");
  }
  return Swap(target);
}

}  // namespace lhmm::store
