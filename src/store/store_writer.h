#ifndef LHMM_STORE_STORE_WRITER_H_
#define LHMM_STORE_STORE_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "io/env.h"
#include "lhmm/model.h"
#include "matchers/seq2seq.h"
#include "network/contraction.h"
#include "network/grid_index.h"
#include "network/road_network.h"
#include "store/format.h"

namespace lhmm::store {

/// Accumulates encoded sections and writes one validated store file. Usage:
///
///   StoreWriter w;
///   w.AddSection(kSectionNetwork, EncodeNetwork(net));
///   w.AddSection(kSectionGrid, EncodeGridIndex(index));
///   LHMM_RETURN_IF_ERROR(w.Write(path, fingerprint, generation));
///
/// Write() is atomic (temp file + rename via io::AtomicWriteFile), so a
/// crashed build never leaves a half-written store where a swap could find
/// it; the per-section CRCs and the total-size header field are computed
/// here and re-checked by MappedStore::Open on every consumer.
class StoreWriter {
 public:
  /// Adds one section payload. Tags must be unique within a store.
  void AddSection(uint32_t tag, std::string payload);

  /// Assembles header + TOC + aligned payloads and atomically writes `path`.
  /// On any failure (injected ENOSPC/fsync/rename included) nothing readable
  /// is left at `path`. `env` is the syscall boundary (nullptr = Default()).
  core::Status Write(const std::string& path, uint64_t fingerprint,
                     uint64_t generation, io::Env* env = nullptr) const;

 private:
  std::vector<std::pair<uint32_t, std::string>> sections_;
};

// --- Section encoders: asset -> relocatable payload bytes. ---

/// Road network: node positions, segment topology/attributes, and flattened
/// polyline geometry. Exact double round trip, so a network materialized from
/// the store matches byte-identically (lengths are recomputed from the same
/// doubles).
std::string EncodeNetwork(const network::RoadNetwork& net);

/// Grid index cell buckets (so consumers skip the build pass).
std::string EncodeGridIndex(const network::GridIndex& index);

/// Contraction hierarchy CSR halves (same arrays io/ch_io.h persists).
std::string EncodeCHGraph(const network::CHGraph& ch);

/// Trained LHMM weights: every parameter tensor, the four explicit-feature
/// normalizations, and the cached node embeddings.
std::string EncodeLhmmWeights(const lhmm::LhmmModel& model);

/// Trained seq2seq weights (parameter tensors of the shared Impl).
std::string EncodeSeq2SeqWeights(const matchers::Seq2SeqMatcher& matcher);

/// META section: human-readable key=value lines for `lhmm_store info`.
std::string EncodeMeta(const std::vector<std::pair<std::string, std::string>>& kv);

}  // namespace lhmm::store

#endif  // LHMM_STORE_STORE_WRITER_H_
