#ifndef LHMM_STORE_GENERATIONS_H_
#define LHMM_STORE_GENERATIONS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/status.h"
#include "io/env.h"
#include "store/control.h"
#include "store/mapped_store.h"

namespace lhmm::store {

/// Directory layout of a versioned store root:
///
///   <root>/gen-000001/store-1.lds
///   <root>/gen-000002/store-2.lds
///   <root>/CURRENT            <- text file naming the published generation
///
/// CURRENT is replaced with io::AtomicWriteFile (tmp + rename + dir fsync),
/// so a reader — or a worker restarted mid-rollout — always sees a complete
/// pointer to a fully written generation, never a torn in-between.
std::string GenerationDir(const std::string& root, int64_t gen);
std::string StorePath(const std::string& root, int64_t gen);

/// Published generation from <root>/CURRENT; typed NotFound when the root has
/// never published.
core::Result<int64_t> ReadCurrent(const std::string& root);

/// Atomically points CURRENT at `gen` (which must already be fully built —
/// publish is the commit point of a build). On any failure — injected
/// ENOSPC, failed fsync, failed rename — the previous CURRENT is untouched
/// and no torn pointer is ever readable. `env` is the syscall boundary
/// (nullptr = io::Env::Default()).
core::Status PublishCurrent(const std::string& root, int64_t gen,
                            io::Env* env = nullptr);

/// All gen-<N> directories under `root` that contain a store file, ascending.
std::vector<int64_t> ListGenerations(const std::string& root);

/// One opened generation. Sessions pin the mapping by holding the handle:
/// the shared_ptr is the RCU read lock, and the MappedStore (and its mmap)
/// is released exactly when the last holder lets go — never under a live
/// reader, never later.
struct LoadedGeneration {
  int64_t generation = 0;
  std::shared_ptr<MappedStore> store;
};
using GenerationHandle = std::shared_ptr<const LoadedGeneration>;

/// Serving-side generation state machine: opens the published generation,
/// hands out pinned handles, and implements the swap/rollback protocol.
///
/// Swap(gen) is all-or-nothing: the candidate file is mapped and *fully*
/// validated (header, CRCs, and fingerprint against the live network) before
/// anything changes; only then is CURRENT re-published and the serving handle
/// flipped. In-flight sessions keep matching on the generation they pinned at
/// open; new sessions pick up the new one. A failed validation returns the
/// typed file+offset error and the old generation keeps serving untouched.
class GenerationManager : public StoreControl {
 public:
  /// Opens the generation CURRENT points at. `expect_fingerprint` (nonzero)
  /// is the live network's fingerprint; every open and every swap candidate
  /// is checked against it. 0 pins the opened generation's own fingerprint
  /// instead, so even a caller with no expectation can never swap across
  /// networks.
  /// `env` is the syscall boundary for the CURRENT publish on Swap
  /// (nullptr = io::Env::Default()).
  static core::Result<std::unique_ptr<GenerationManager>> Open(
      const std::string& root, uint64_t expect_fingerprint = 0,
      io::Env* env = nullptr);

  /// The currently serving generation, pinned.
  GenerationHandle Current() const;

  StoreStatus Status() const override;
  core::Result<StoreStatus> Swap(int64_t generation) override;
  core::Result<StoreStatus> Rollback() override;

 private:
  GenerationManager(std::string root, uint64_t expect_fingerprint,
                    io::Env* env);

  StoreStatus StatusLocked() const;

  const std::string root_;
  const uint64_t expect_fingerprint_;
  io::Env* const env_;
  mutable std::mutex mu_;
  GenerationHandle current_;
  int64_t previous_gen_ = -1;
};

}  // namespace lhmm::store

#endif  // LHMM_STORE_GENERATIONS_H_
