#ifndef LHMM_LHMM_TRAINER_H_
#define LHMM_LHMM_TRAINER_H_

#include <memory>
#include <vector>

#include "lhmm/model.h"
#include "network/grid_index.h"
#include "traj/filters.h"
#include "traj/trajectory.h"

namespace lhmm::lhmm {

/// Everything the trainer needs. Pointers must outlive the call.
struct TrainInputs {
  const network::RoadNetwork* net = nullptr;
  const network::GridIndex* index = nullptr;
  int num_towers = 0;
  const std::vector<traj::MatchedTrajectory>* train = nullptr;
  traj::FilterConfig filters;
};

/// Trains a full LHMM model per Section IV's "Training Process":
///
///  1. Multi-relational graph construction from the training split.
///  2. Encoder + implicit point-road correlation: classify (point, road)
///     pairs as interacted/not, negatives undersampled, label-smoothed
///     cross-entropy, Adam (end-to-end through the Het-Graph Encoder).
///  3. Implicit trajectory-road membership: classify roads as on/off the
///     traveled path against the frozen embeddings.
///  4. Fine-tune the two fusion heads: the observation head on the same
///     positive/negative pairs with explicit features, the transition head
///     on sampled moving paths against their traveled-road ratio.
///
/// Returns the trained model with cached final embeddings.
std::unique_ptr<LhmmModel> TrainLhmm(const TrainInputs& inputs,
                                     const LhmmConfig& config);

}  // namespace lhmm::lhmm

#endif  // LHMM_LHMM_TRAINER_H_
