#ifndef LHMM_LHMM_LHMM_MATCHER_H_
#define LHMM_LHMM_LHMM_MATCHER_H_

#include <memory>
#include <string>
#include <unordered_map>

#include "hmm/engine.h"
#include "lhmm/model.h"
#include "matchers/matcher.h"
#include "network/grid_index.h"
#include "network/path_cache.h"

namespace lhmm::lhmm {

/// Per-trajectory inference state shared by the learned observation and
/// transition models: point embeddings, context-aware point representations
/// (Eq. 6), projected attention keys, and the P(e_l | X) memo (Eq. 10).
struct TrajectoryState {
  const traj::Trajectory* t = nullptr;
  nn::Matrix point_embeddings;  ///< n x d tower embeddings.
  nn::Matrix contexts;          ///< n x d context-aware representations.
  nn::Matrix trans_keys;        ///< Projected keys for the transition attention.
  std::unordered_map<network::SegmentId, double> membership;
};

/// The LHMM map matcher (the paper's contribution): learned P_O and P_T
/// plugged into the shared HMM engine with the shortcut-augmented candidate
/// graph. Construct via TrainLhmm() -> LhmmMatcher.
class LhmmMatcher : public matchers::MapMatcher {
 public:
  /// `model` is shared so ablation sweeps can reuse a trained model with
  /// different engine settings. `display_name` shows in benchmark tables
  /// ("LHMM", "LHMM-S", ...).
  LhmmMatcher(const network::RoadNetwork* net, const network::GridIndex* index,
              std::shared_ptr<LhmmModel> model, std::string display_name = "LHMM");
  ~LhmmMatcher() override;

  std::string name() const override { return display_name_; }
  matchers::MatchResult Match(const traj::Trajectory& cellular) override;
  bool ProvidesCandidates() const override { return true; }

  /// Rebuilds the engine on top of `shared`. The model stays shared (its
  /// inference path is const); only per-trajectory state is private.
  void UseSharedRouter(network::CachedRouter* shared) override;

  /// Fixed-lag streaming with the learned models. The learned P_O context
  /// (Eq. 6) attends over the visible window, so mid-stream scores see a
  /// prefix of the history; at lag >= trajectory length the window is the
  /// whole trajectory and the streamed path equals offline Viterbi
  /// (shortcuts disabled).
  bool SupportsStreaming() const override { return true; }
  std::unique_ptr<matchers::StreamingSession> OpenSession(
      const matchers::StreamConfig& config) override;

  hmm::Engine* engine() { return engine_.get(); }
  const LhmmModel& model() const { return *model_; }

 private:
  class ObsModel;
  class TransModel;

  const network::RoadNetwork* net_;
  const network::GridIndex* index_;
  std::shared_ptr<LhmmModel> model_;
  std::string display_name_;
  TrajectoryState state_;
  std::unique_ptr<network::SegmentRouter> router_;
  std::unique_ptr<network::CachedRouter> cached_router_;
  network::CachedRouter* active_router_ = nullptr;  ///< cached_router_ or shared.
  std::unique_ptr<ObsModel> obs_model_;
  std::unique_ptr<TransModel> trans_model_;
  std::unique_ptr<hmm::Engine> engine_;
};

}  // namespace lhmm::lhmm

#endif  // LHMM_LHMM_LHMM_MATCHER_H_
