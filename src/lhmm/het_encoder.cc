#include "lhmm/het_encoder.h"

#include "core/logging.h"

namespace lhmm::lhmm {

namespace {

/// Matrix-only sparse mix for the no-grad inference path.
nn::Matrix SparseMix(const nn::SparseRows& s, const nn::Matrix& x) {
  nn::Matrix out(static_cast<int>(s.rows.size()), x.cols());
  for (size_t i = 0; i < s.rows.size(); ++i) {
    float* orow = out.Row(static_cast<int>(i));
    for (const auto& [src, weight] : s.rows[i]) {
      const float* xrow = x.Row(src);
      for (int j = 0; j < x.cols(); ++j) orow[j] += weight * xrow[j];
    }
  }
  return out;
}

void ReluInPlace(nn::Matrix* m) {
  for (int i = 0; i < m->size(); ++i) {
    if (m->data()[i] < 0.0f) m->data()[i] = 0.0f;
  }
}

}  // namespace

HetGraphEncoder::HetGraphEncoder(const MultiRelationalGraph* graph,
                                 const EncoderConfig& config, core::Rng* rng)
    : graph_(graph), config_(config), init_(graph->num_nodes(), config.dim, rng) {
  CHECK(graph != nullptr);
  CHECK_GE(config.layers, 1);
  const int d = config.dim;
  switch (config.kind) {
    case EncoderKind::kHeterogeneous:
      for (int l = 0; l < config.layers; ++l) {
        std::vector<nn::Linear> per_rel;
        for (int r = 0; r < kNumRelations; ++r) per_rel.emplace_back(d, d, rng);
        weight_rel_.push_back(std::move(per_rel));
        weight_self_.emplace_back(d, d, rng);
        weight_agg_.emplace_back(d, d, rng);
      }
      break;
    case EncoderKind::kHomogeneous:
      for (int l = 0; l < config.layers; ++l) {
        std::vector<nn::Linear> per_rel;
        per_rel.emplace_back(d, d, rng);  // One shared relation weight.
        weight_rel_.push_back(std::move(per_rel));
        weight_self_.emplace_back(d, d, rng);
        weight_agg_.emplace_back(d, d, rng);
      }
      break;
    case EncoderKind::kMlpOnly:
      mlp_ = std::make_unique<nn::Mlp>(std::vector<int>{d, d, d}, rng);
      break;
  }
}

nn::Tensor HetGraphEncoder::Forward() const {
  nn::Tensor h = init_.table();
  if (config_.kind == EncoderKind::kMlpOnly) {
    return mlp_->Forward(h);
  }
  for (int l = 0; l < config_.layers; ++l) {
    nn::Tensor agg = weight_self_[l].Forward(h);  // W_0 h term of Eq. (5).
    if (config_.kind == EncoderKind::kHeterogeneous) {
      for (int r = 0; r < kNumRelations; ++r) {
        const auto adj = graph_->MessageMatrix(static_cast<Relation>(r));
        // Eq. (4): z^rel = mean-normalized neighborhood of W_rel h.
        nn::Tensor z = nn::SparseMixT(adj, weight_rel_[l][r].Forward(h));
        agg = nn::AddT(agg, weight_agg_[l].Forward(z));
      }
    } else {
      const auto adj = graph_->UnionMessageMatrix();
      nn::Tensor z = nn::SparseMixT(adj, weight_rel_[l][0].Forward(h));
      agg = nn::AddT(agg, weight_agg_[l].Forward(z));
    }
    h = nn::ReluT(agg);
  }
  return h;
}

nn::Matrix HetGraphEncoder::ForwardNoGrad() const {
  nn::Matrix h = init_.table().value();
  if (config_.kind == EncoderKind::kMlpOnly) {
    return mlp_->Forward(h);
  }
  for (int l = 0; l < config_.layers; ++l) {
    nn::Matrix agg = weight_self_[l].Forward(h);
    if (config_.kind == EncoderKind::kHeterogeneous) {
      for (int r = 0; r < kNumRelations; ++r) {
        const auto adj = graph_->MessageMatrix(static_cast<Relation>(r));
        const nn::Matrix z = SparseMix(*adj, weight_rel_[l][r].Forward(h));
        agg.Accumulate(weight_agg_[l].Forward(z));
      }
    } else {
      const auto adj = graph_->UnionMessageMatrix();
      const nn::Matrix z = SparseMix(*adj, weight_rel_[l][0].Forward(h));
      agg.Accumulate(weight_agg_[l].Forward(z));
    }
    ReluInPlace(&agg);
    h = std::move(agg);
  }
  return h;
}

void HetGraphEncoder::CollectParams(std::vector<nn::Tensor>* out) {
  init_.CollectParams(out);
  for (auto& per_rel : weight_rel_) {
    for (nn::Linear& w : per_rel) w.CollectParams(out);
  }
  for (nn::Linear& w : weight_self_) w.CollectParams(out);
  for (nn::Linear& w : weight_agg_) w.CollectParams(out);
  if (mlp_) mlp_->CollectParams(out);
}

}  // namespace lhmm::lhmm
