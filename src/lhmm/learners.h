#ifndef LHMM_LHMM_LEARNERS_H_
#define LHMM_LHMM_LEARNERS_H_

#include <vector>

#include "nn/modules.h"

namespace lhmm::lhmm {

/// Normalization statistics of one explicit scalar feature ("batch-normalized
/// Euclidean distance" etc. in Eq. 8/12); fitted on training samples.
struct FeatureNorm {
  float mean = 0.0f;
  float std = 1.0f;

  float Apply(double v) const { return (static_cast<float>(v) - mean) / std; }
};

/// Fits mean/std over raw feature values (std floored at 1e-3).
FeatureNorm FitFeatureNorm(const std::vector<double>& values);

/// The observation probability learner (Section IV-C).
///
/// Implicit point-road correlation: attention over the trajectory's point
/// embeddings produces a context-aware point representation x'_i (Eq. 6); an
/// MLP scores concat(road, x'_i) into a 2-class distribution whose positive
/// probability is P(c | x') (Eq. 7). A second MLP fuses that with explicit
/// features (normalized distance, co-occurrence frequency) into P_O (Eq. 8).
class ObservationLearner : public nn::Module {
 public:
  /// `use_implicit` = false builds the LHMM-O ablation: the fusion head sees
  /// only the explicit features.
  ObservationLearner(int dim, bool use_implicit, core::Rng* rng);

  bool use_implicit() const { return use_implicit_; }

  // --- Training-path (autodiff) ---

  /// x'_i for every point of one trajectory: `points` is n x d tower
  /// embeddings; returns n x d contexts.
  nn::Tensor ContextAll(const nn::Tensor& points) const;

  /// Implicit 2-class logits for rows of (road ⊕ context): `roads` and
  /// `contexts` are R x d each, paired row-wise.
  nn::Tensor ImplicitLogits(const nn::Tensor& roads,
                            const nn::Tensor& contexts) const;

  /// Fusion 2-class logits from rows [P_implicit, norm_dist, co_freq].
  nn::Tensor FusionLogits(const nn::Tensor& features) const;

  // --- Inference-path (no tape) ---

  nn::Matrix ContextAll(const nn::Matrix& points) const;

  /// Positive-class probability per row of (road ⊕ context).
  std::vector<double> ImplicitProb(const nn::Matrix& roads,
                                   const nn::Matrix& contexts) const;

  /// P_O per row of [P_implicit, norm_dist, co_freq].
  std::vector<double> FusionProb(const nn::Matrix& features) const;

  void CollectParams(std::vector<nn::Tensor>* out) override;

  /// Parameters of the fusion head only (for the fine-tuning stage).
  std::vector<nn::Tensor> FusionParams();

  /// Parameters of the implicit stack (attention + implicit MLP).
  std::vector<nn::Tensor> ImplicitParams();

  static constexpr int kNumExplicit = 2;  ///< norm_dist, co_freq.

  const nn::AdditiveAttention& attention() const { return attention_; }

 private:
  bool use_implicit_;
  nn::AdditiveAttention attention_;
  nn::Mlp implicit_;
  nn::Mlp fusion_;
};

/// The transition probability learner (Section IV-D).
///
/// Road-conditioned attention summarizes the trajectory per road (Eq. 9); an
/// MLP scores road-in-trajectory membership P(e_l | X) (Eq. 10); the mean
/// over a route's segments gives the implicit path relevance (Eq. 11), which
/// a fusion MLP combines with explicit features (route/straight length
/// mismatch, turn-count mismatch) into P_T (Eq. 12).
class TransitionLearner : public nn::Module {
 public:
  /// `use_implicit` = false builds the LHMM-T ablation.
  TransitionLearner(int dim, bool use_implicit, core::Rng* rng);

  bool use_implicit() const { return use_implicit_; }

  // --- Training-path ---

  /// Trajectory representation X_l for each query road: `roads` R x d,
  /// `points` n x d; returns R x d (one attention pass per road).
  nn::Tensor RoadContexts(const nn::Tensor& roads, const nn::Tensor& points) const;

  /// Membership 2-class logits for rows of (road ⊕ X_l).
  nn::Tensor MembershipLogits(const nn::Tensor& roads,
                              const nn::Tensor& contexts) const;

  /// Fusion logits (R x 1) from rows [implicit_mean, len_mismatch,
  /// turn_mismatch]; trained against the traveled-road ratio of the moving
  /// path with a soft-target cross-entropy, so P_T = sigmoid(logit).
  nn::Tensor FusionLogits(const nn::Tensor& features) const;

  // --- Inference-path ---

  /// P(e_l | X) for one road given the trajectory points matrix.
  double MembershipProb(const nn::Matrix& road, const nn::Matrix& points) const;

  /// Fast-path membership with precomputed projected keys (see
  /// nn::AdditiveAttention::ProjectKeys) shared across all roads of one
  /// trajectory.
  double MembershipProbProjected(const nn::Matrix& road,
                                 const nn::Matrix& projected_keys,
                                 const nn::Matrix& points) const;

  /// P_T per row of [implicit_mean, len_mismatch, turn_mismatch].
  std::vector<double> FusionProb(const nn::Matrix& features) const;

  void CollectParams(std::vector<nn::Tensor>* out) override;
  std::vector<nn::Tensor> FusionParams();

  /// Parameters of the membership stack (attention + membership MLP).
  std::vector<nn::Tensor> MembershipParams();

  static constexpr int kNumExplicit = 2;  ///< len mismatch, turn mismatch.

  const nn::AdditiveAttention& attention() const { return attention_; }

 private:
  bool use_implicit_;
  nn::AdditiveAttention attention_;
  nn::Mlp membership_;
  nn::Mlp fusion_;
};

/// Positive-class probabilities from R x 2 logits.
std::vector<double> PositiveProbs(const nn::Matrix& logits);

}  // namespace lhmm::lhmm

#endif  // LHMM_LHMM_LEARNERS_H_
