#include "lhmm/model.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "core/logging.h"
#include "nn/serialize.h"

namespace lhmm::lhmm {

nn::Matrix LhmmModel::TowerRow(traj::TowerId tower) const {
  nn::Matrix row(1, embeddings.cols());
  if (tower < 0 || tower >= graph->num_towers()) return row;  // Zero row.
  const int node = graph->NodeOfTower(tower);
  for (int j = 0; j < embeddings.cols(); ++j) row(0, j) = embeddings(node, j);
  return row;
}

nn::Matrix LhmmModel::SegmentRow(network::SegmentId seg) const {
  const int node = graph->NodeOfSegment(seg);
  CHECK_LT(node, embeddings.rows());
  nn::Matrix row(1, embeddings.cols());
  for (int j = 0; j < embeddings.cols(); ++j) row(0, j) = embeddings(node, j);
  return row;
}

nn::Matrix LhmmModel::PointRows(const traj::Trajectory& t) const {
  nn::Matrix rows(t.size(), embeddings.cols());
  for (int i = 0; i < t.size(); ++i) {
    const traj::TowerId tower = t[i].tower;
    if (tower < 0 || tower >= graph->num_towers()) continue;
    const int node = graph->NodeOfTower(tower);
    for (int j = 0; j < embeddings.cols(); ++j) rows(i, j) = embeddings(node, j);
  }
  return rows;
}

namespace {

/// Cosine similarity between two rows of a matrix.
double RowCosine(const nn::Matrix& m, int a, int b) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (int j = 0; j < m.cols(); ++j) {
    dot += m(a, j) * m(b, j);
    na += m(a, j) * m(a, j);
    nb += m(b, j) * m(b, j);
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

/// Top-k most similar rows to `row` within [begin, end), excluding itself.
std::vector<std::pair<int, double>> TopKSimilar(const nn::Matrix& m, int row,
                                                int begin, int end, int k) {
  std::vector<std::pair<int, double>> scored;
  scored.reserve(end - begin);
  for (int i = begin; i < end; ++i) {
    if (i == row) continue;
    scored.push_back({i, RowCosine(m, row, i)});
  }
  const int take = std::min<int>(k, static_cast<int>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const auto& a, const auto& b) { return a.second > b.second; });
  scored.resize(take);
  return scored;
}

}  // namespace

std::vector<std::pair<traj::TowerId, double>> LhmmModel::NearestTowers(
    traj::TowerId tower, int k) const {
  std::vector<std::pair<traj::TowerId, double>> out;
  if (tower < 0 || tower >= graph->num_towers()) return out;
  for (const auto& [node, sim] :
       TopKSimilar(embeddings, graph->NodeOfTower(tower), 0, graph->num_towers(),
                   k)) {
    out.push_back({node, sim});
  }
  return out;
}

std::vector<std::pair<network::SegmentId, double>> LhmmModel::NearestSegments(
    network::SegmentId seg, int k) const {
  std::vector<std::pair<network::SegmentId, double>> out;
  const int begin = graph->num_towers();
  const int end = graph->num_nodes();
  for (const auto& [node, sim] :
       TopKSimilar(embeddings, graph->NodeOfSegment(seg), begin, end, k)) {
    out.push_back({node - begin, sim});
  }
  return out;
}

std::vector<nn::Tensor> LhmmModel::AllParams() const {
  std::vector<nn::Tensor> params;
  encoder->CollectParams(&params);
  obs->CollectParams(&params);
  trans->CollectParams(&params);
  return params;
}

core::Status LhmmModel::Save(const std::string& path) const {
  LHMM_RETURN_IF_ERROR(nn::SaveParams(path, AllParams()));
  std::ofstream aux(path + ".aux", std::ios::binary);
  if (!aux.is_open()) return core::Status::IoError("cannot open " + path + ".aux");
  const FeatureNorm norms[4] = {obs_dist_norm, obs_cofreq_norm, trans_len_norm,
                                trans_turn_norm};
  aux.write(reinterpret_cast<const char*>(norms), sizeof(norms));
  const int32_t rows = embeddings.rows();
  const int32_t cols = embeddings.cols();
  aux.write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  aux.write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  aux.write(reinterpret_cast<const char*>(embeddings.data()),
            static_cast<std::streamsize>(sizeof(float)) * embeddings.size());
  if (!aux.good()) return core::Status::IoError("write failed for " + path + ".aux");
  return core::Status::Ok();
}

core::Status LhmmModel::Load(const std::string& path) {
  std::vector<nn::Tensor> params = AllParams();
  LHMM_RETURN_IF_ERROR(nn::LoadParams(path, &params));
  std::ifstream aux(path + ".aux", std::ios::binary);
  if (!aux.is_open()) return core::Status::IoError("cannot open " + path + ".aux");
  FeatureNorm norms[4];
  aux.read(reinterpret_cast<char*>(norms), sizeof(norms));
  obs_dist_norm = norms[0];
  obs_cofreq_norm = norms[1];
  trans_len_norm = norms[2];
  trans_turn_norm = norms[3];
  int32_t rows = 0;
  int32_t cols = 0;
  aux.read(reinterpret_cast<char*>(&rows), sizeof(rows));
  aux.read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!aux.good() || rows <= 0 || cols <= 0) {
    return core::Status::InvalidArgument("corrupt aux file " + path + ".aux");
  }
  embeddings = nn::Matrix(rows, cols);
  aux.read(reinterpret_cast<char*>(embeddings.data()),
           static_cast<std::streamsize>(sizeof(float)) * embeddings.size());
  if (!aux.good()) return core::Status::IoError("truncated aux file " + path + ".aux");
  return core::Status::Ok();
}

}  // namespace lhmm::lhmm
