#include "lhmm/trainer.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "core/logging.h"
#include "geo/polyline.h"
#include "network/shortest_path.h"
#include "nn/loss.h"
#include "nn/optim.h"
#include "traj/filters.h"

namespace lhmm::lhmm {

namespace {

using network::SegmentId;

/// Per-trajectory training material derived once up front.
struct TrajSamples {
  traj::Trajectory cleaned;
  std::vector<SegmentId> truth;
  std::unordered_set<SegmentId> truth_set;
  /// For each point: the truth roads it co-occurs with (positives) and a
  /// pool of nearby non-truth roads (negatives).
  struct PointSamples {
    int point = 0;
    std::vector<SegmentId> positives;
    std::vector<SegmentId> negative_pool;
  };
  std::vector<PointSamples> points;
  /// Union of negative pools, for transition membership negatives.
  std::vector<SegmentId> trans_negative_pool;
};

std::vector<TrajSamples> BuildSamples(const TrainInputs& in,
                                      const MultiRelationalGraph& graph,
                                      core::Rng* rng) {
  std::vector<TrajSamples> out;
  out.reserve(in.train->size());
  for (const traj::MatchedTrajectory& mt : *in.train) {
    TrajSamples ts;
    ts.cleaned = traj::DeduplicateTowers(
        traj::PreprocessCellular(mt.cellular, in.filters));
    ts.truth = mt.truth_path;
    ts.truth_set.insert(mt.truth_path.begin(), mt.truth_path.end());
    if (ts.cleaned.size() < 3) continue;

    // Positives: the traveled road at the sample's timestamp, taken from the
    // co-recorded GPS ground truth. Every point gets a positive — crucially
    // including high-error (outlier) points, whose true road is far from
    // their tower and can only be recovered through context; those are
    // exactly the samples that teach the implicit correlation something the
    // explicit distance/co-occurrence features cannot express.
    std::unordered_map<int, std::vector<SegmentId>> pos_by_point;
    for (int i = 0; i < ts.cleaned.size(); ++i) {
      const SegmentId sid =
          traj::TruthSegmentAtTime(mt, *in.net, ts.cleaned[i].t);
      if (sid != network::kInvalidSegment) pos_by_point[i].push_back(sid);
    }
    std::unordered_set<SegmentId> trans_pool_set;
    for (int i = 0; i < ts.cleaned.size(); ++i) {
      const auto it = pos_by_point.find(i);
      if (it == pos_by_point.end()) continue;
      TrajSamples::PointSamples ps;
      ps.point = i;
      ps.positives = it->second;
      // Negatives mirror the inference-time candidate pool (Section IV-D's
      // "surrounding road segments"): nearby roads, a sprinkle of farther
      // ones, and the tower's (and neighbors') co-occurrence roads — so the
      // learned P_O sees at training time exactly the kinds of distractors
      // it must rank at matching time.
      const auto near_hits = in.index->Nearest(ts.cleaned[i].pos, 100);
      for (size_t h = 0; h < near_hits.size(); ++h) {
        const bool near = h < 36;
        if (!near && !rng->Bernoulli(0.25)) continue;  // Subsample the tail.
        if (ts.truth_set.count(near_hits[h].segment)) continue;
        ps.negative_pool.push_back(near_hits[h].segment);
        trans_pool_set.insert(near_hits[h].segment);
      }
      for (int j = std::max(0, i - 1);
           j <= std::min(ts.cleaned.size() - 1, i + 1); ++j) {
        for (network::SegmentId sid :
             graph.CoSegments(ts.cleaned[j].tower)) {
          if (ts.truth_set.count(sid)) continue;
          ps.negative_pool.push_back(sid);
        }
      }
      if (!ps.negative_pool.empty()) ts.points.push_back(std::move(ps));
    }
    ts.trans_negative_pool.assign(trans_pool_set.begin(), trans_pool_set.end());
    if (!ts.points.empty()) out.push_back(std::move(ts));
  }
  CHECK(!out.empty()) << "no usable training trajectories";
  return out;
}

/// Tower node index per point (-1 when the tower is unknown).
std::vector<int> PointNodes(const MultiRelationalGraph& g,
                            const traj::Trajectory& t) {
  std::vector<int> out(t.size(), -1);
  for (int i = 0; i < t.size(); ++i) {
    if (t[i].tower >= 0 && t[i].tower < g.num_towers()) {
      out[i] = g.NodeOfTower(t[i].tower);
    }
  }
  return out;
}

/// Heading change of the trajectory around step i (points i-2..i+1 clamped),
/// the trajectory-side turn feature of Eq. (12).
double TrajectoryTurn(const traj::Trajectory& t, int i) {
  const int lo = std::max(0, i - 2);
  const int hi = std::min(t.size() - 1, i + 1);
  std::vector<geo::Point> pts;
  for (int j = lo; j <= hi; ++j) pts.push_back(t[j].pos);
  return geo::TotalTurnOfPoints(pts);
}

/// Heading change along a route's segment chain.
double RouteTurn(const network::RoadNetwork& net, const network::Route& route) {
  std::vector<geo::Point> pts;
  for (SegmentId sid : route.segments) {
    const geo::Polyline& geom = net.segment(sid).geometry;
    if (pts.empty()) pts.push_back(geom.front());
    pts.push_back(geom.back());
  }
  return geo::TotalTurnOfPoints(pts);
}

}  // namespace

std::unique_ptr<LhmmModel> TrainLhmm(const TrainInputs& in,
                                     const LhmmConfig& config) {
  CHECK(in.net != nullptr);
  CHECK(in.index != nullptr);
  CHECK(in.train != nullptr);
  CHECK_GT(in.num_towers, 0);

  core::Rng rng(config.seed);
  auto model = std::make_unique<LhmmModel>();
  model->config = config;

  // ---- Stage 0: multi-relational graph, then training samples. ----
  {
    std::vector<traj::Trajectory> cleaned;
    cleaned.reserve(in.train->size());
    for (const traj::MatchedTrajectory& mt : *in.train) {
      cleaned.push_back(traj::DeduplicateTowers(
          traj::PreprocessCellular(mt.cellular, in.filters)));
    }
    model->graph = std::make_unique<MultiRelationalGraph>(
        BuildGraph(*in.net, in.num_towers, *in.train, cleaned));
  }
  core::Rng sample_rng = rng.Fork();
  std::vector<TrajSamples> samples = BuildSamples(in, *model->graph, &sample_rng);
  core::Rng init_rng = rng.Fork();
  model->encoder = std::make_unique<HetGraphEncoder>(model->graph.get(),
                                                     config.encoder, &init_rng);
  model->obs = std::make_unique<ObservationLearner>(
      config.encoder.dim, config.use_implicit_observation, &init_rng);
  model->trans = std::make_unique<TransitionLearner>(
      config.encoder.dim, config.use_implicit_transition, &init_rng);

  nn::AdamConfig adam_cfg;
  adam_cfg.lr = config.lr;
  adam_cfg.weight_decay = config.weight_decay;

  // ---- Stage 1: encoder + implicit point-road correlation (Eq. 6-7). ----
  if (config.use_implicit_observation || config.use_implicit_transition) {
    // The encoder is trained end-to-end through the point-road classification
    // task; the observation learner's implicit stack joins even for the
    // LHMM-O ablation (where it is simply unused at inference) so the encoder
    // sees the same training signal across variants.
    std::vector<nn::Tensor> params = model->encoder->Params();
    for (nn::Tensor& p : model->obs->ImplicitParams()) params.push_back(p);
    nn::Adam adam(params, adam_cfg);
    for (int step = 0; step < config.obs_steps; ++step) {
      const nn::Tensor h = model->encoder->Forward();
      std::vector<nn::Tensor> losses;
      for (int b = 0; b < config.batch_trajectories; ++b) {
        const TrajSamples& ts =
            samples[rng.UniformInt(static_cast<int>(samples.size()))];
        const std::vector<int> nodes = PointNodes(*model->graph, ts.cleaned);
        std::vector<int> point_nodes;
        std::vector<int> row_of_point(ts.cleaned.size(), -1);
        for (int i = 0; i < ts.cleaned.size(); ++i) {
          if (nodes[i] < 0) continue;
          row_of_point[i] = static_cast<int>(point_nodes.size());
          point_nodes.push_back(nodes[i]);
        }
        if (point_nodes.size() < 3) continue;
        const nn::Tensor points = nn::RowsT(h, point_nodes);
        const nn::Tensor contexts =
            config.use_implicit_observation ? model->obs->ContextAll(points)
                                            : points;

        std::vector<int> road_nodes;
        std::vector<int> ctx_rows;
        std::vector<int> labels;
        for (const auto& ps : ts.points) {
          if (row_of_point[ps.point] < 0) continue;
          for (SegmentId pos : ps.positives) {
            road_nodes.push_back(model->graph->NodeOfSegment(pos));
            ctx_rows.push_back(row_of_point[ps.point]);
            labels.push_back(1);
            for (int n = 0; n < config.negatives_per_positive; ++n) {
              const SegmentId neg = ps.negative_pool[rng.UniformInt(
                  static_cast<int>(ps.negative_pool.size()))];
              road_nodes.push_back(model->graph->NodeOfSegment(neg));
              ctx_rows.push_back(row_of_point[ps.point]);
              labels.push_back(0);
            }
          }
        }
        if (labels.empty()) continue;
        const nn::Tensor roads = nn::RowsT(h, road_nodes);
        const nn::Tensor ctxs = nn::RowsT(contexts, ctx_rows);
        const nn::Tensor logits = model->obs->ImplicitLogits(roads, ctxs);
        losses.push_back(nn::SmoothedCrossEntropy(logits, labels,
                                                  config.label_smoothing));
      }
      if (losses.empty()) continue;
      nn::Tensor total = losses[0];
      for (size_t i = 1; i < losses.size(); ++i) total = nn::AddT(total, losses[i]);
      total = nn::ScaleT(total, 1.0f / static_cast<float>(losses.size()));
      adam.ZeroGrad();
      nn::Backward(total);
      adam.Step();
      if (config.verbose && step % 20 == 0) {
        LOG_INFO << "obs stage step " << step << " loss " << total.value()(0, 0);
      }
    }
  }

  // Cache frozen embeddings for all later stages and for inference.
  model->embeddings = model->encoder->ForwardNoGrad();
  const nn::Tensor frozen(model->embeddings, /*requires_grad=*/false);

  // ---- Stage 2: implicit trajectory-road membership (Eq. 9-10). ----
  if (config.use_implicit_transition) {
    nn::Adam adam(model->trans->MembershipParams(), adam_cfg);
    for (int step = 0; step < config.trans_steps; ++step) {
      std::vector<nn::Tensor> losses;
      for (int b = 0; b < config.batch_trajectories; ++b) {
        const TrajSamples& ts =
            samples[rng.UniformInt(static_cast<int>(samples.size()))];
        const std::vector<int> nodes = PointNodes(*model->graph, ts.cleaned);
        std::vector<int> point_nodes;
        for (int n : nodes) {
          if (n >= 0) point_nodes.push_back(n);
        }
        if (point_nodes.size() < 3 || ts.trans_negative_pool.empty()) continue;
        const nn::Tensor points = nn::RowsT(frozen, point_nodes);
        std::vector<int> road_nodes;
        std::vector<int> labels;
        const int num_pos = std::min<int>(8, static_cast<int>(ts.truth.size()));
        for (int p = 0; p < num_pos; ++p) {
          const SegmentId pos =
              ts.truth[rng.UniformInt(static_cast<int>(ts.truth.size()))];
          road_nodes.push_back(model->graph->NodeOfSegment(pos));
          labels.push_back(1);
          for (int n = 0; n < config.negatives_per_positive; ++n) {
            const SegmentId neg = ts.trans_negative_pool[rng.UniformInt(
                static_cast<int>(ts.trans_negative_pool.size()))];
            road_nodes.push_back(model->graph->NodeOfSegment(neg));
            labels.push_back(0);
          }
        }
        const nn::Tensor roads = nn::RowsT(frozen, road_nodes);
        const nn::Tensor contexts = model->trans->RoadContexts(roads, points);
        const nn::Tensor logits = model->trans->MembershipLogits(roads, contexts);
        losses.push_back(nn::SmoothedCrossEntropy(logits, labels,
                                                  config.label_smoothing));
      }
      if (losses.empty()) continue;
      nn::Tensor total = losses[0];
      for (size_t i = 1; i < losses.size(); ++i) total = nn::AddT(total, losses[i]);
      total = nn::ScaleT(total, 1.0f / static_cast<float>(losses.size()));
      adam.ZeroGrad();
      nn::Backward(total);
      adam.Step();
      if (config.verbose && step % 20 == 0) {
        LOG_INFO << "trans stage step " << step << " loss " << total.value()(0, 0);
      }
    }
  }

  // ---- Stage 3a: observation fusion head (Eq. 8). ----
  if (config.fusion_steps > 0) {
    // Collect feature rows over a subsample of trajectories.
    std::vector<std::vector<float>> feats;
    std::vector<int> labels;
    std::vector<double> raw_dist;
    std::vector<double> raw_cofreq;
    const int max_traj = std::min<int>(250, static_cast<int>(samples.size()));
    for (int tix = 0; tix < max_traj; ++tix) {
      const TrajSamples& ts = samples[tix];
      nn::Matrix points = model->PointRows(ts.cleaned);
      nn::Matrix contexts = config.use_implicit_observation
                                ? model->obs->ContextAll(points)
                                : points;
      for (const auto& ps : ts.points) {
        auto add_sample = [&](SegmentId sid, int label) {
          const geo::PolylineProjection proj =
              in.net->segment(sid).geometry.Project(ts.cleaned[ps.point].pos);
          const double cofreq = model->graph->CoFrequency(
              ts.cleaned[ps.point].tower, sid);
          std::vector<float> row;
          if (config.use_implicit_observation) {
            nn::Matrix road = model->SegmentRow(sid);
            nn::Matrix ctx(1, contexts.cols());
            for (int j = 0; j < contexts.cols(); ++j) {
              ctx(0, j) = contexts(ps.point, j);
            }
            row.push_back(
                static_cast<float>(model->obs->ImplicitProb(road, ctx)[0]));
          }
          row.push_back(static_cast<float>(proj.dist));    // Normalized later.
          row.push_back(static_cast<float>(cofreq));
          raw_dist.push_back(proj.dist);
          raw_cofreq.push_back(cofreq);
          feats.push_back(std::move(row));
          labels.push_back(label);
        };
        for (SegmentId pos : ps.positives) {
          add_sample(pos, 1);
          for (int n = 0; n < config.negatives_per_positive; ++n) {
            add_sample(ps.negative_pool[rng.UniformInt(
                           static_cast<int>(ps.negative_pool.size()))],
                       0);
          }
        }
      }
    }
    model->obs_dist_norm = FitFeatureNorm(raw_dist);
    model->obs_cofreq_norm = FitFeatureNorm(raw_cofreq);
    nn::AdamConfig fusion_cfg = adam_cfg;
    fusion_cfg.lr = config.fusion_lr;
    const int dist_col = config.use_implicit_observation ? 1 : 0;
    for (auto& row : feats) {
      row[dist_col] = model->obs_dist_norm.Apply(row[dist_col]);
      row[dist_col + 1] = model->obs_cofreq_norm.Apply(row[dist_col + 1]);
    }

    nn::Adam adam(model->obs->FusionParams(), fusion_cfg);
    const int batch = 256;
    for (int step = 0; step < config.fusion_steps; ++step) {
      nn::Matrix x(batch, static_cast<int>(feats[0].size()));
      std::vector<int> y(batch);
      for (int i = 0; i < batch; ++i) {
        const int pick = rng.UniformInt(static_cast<int>(feats.size()));
        for (size_t j = 0; j < feats[pick].size(); ++j) {
          x(i, static_cast<int>(j)) = feats[pick][j];
        }
        y[i] = labels[pick];
      }
      const nn::Tensor logits = model->obs->FusionLogits(nn::Tensor(x));
      const nn::Tensor loss =
          nn::SmoothedCrossEntropy(logits, y, config.label_smoothing);
      adam.ZeroGrad();
      nn::Backward(loss);
      adam.Step();
    }
  }

  // ---- Stage 3b: transition fusion head (Eq. 11-12). ----
  if (config.fusion_steps > 0) {
    network::SegmentRouter router(in.net);
    std::vector<std::vector<float>> feats;
    std::vector<float> targets;
    std::vector<double> raw_len;
    std::vector<double> raw_turn;

    const int num_samples = 3000;
    int guard = 0;
    while (static_cast<int>(feats.size()) < num_samples && ++guard < 20000) {
      const TrajSamples& ts =
          samples[rng.UniformInt(static_cast<int>(samples.size()))];
      if (ts.cleaned.size() < 3) continue;
      const int i = rng.UniformInt(1, ts.cleaned.size() - 1);
      const double straight =
          geo::Distance(ts.cleaned[i - 1].pos, ts.cleaned[i].pos);
      // Endpoint pairs mimic the inference distribution: candidates of two
      // *consecutive* points — sometimes the truth road nearest the point
      // (the pair Viterbi should prefer), otherwise a random nearby road
      // (the detours it must reject).
      auto pick_segment = [&](const geo::Point& pos) -> SegmentId {
        if (rng.Bernoulli(0.4) && !ts.truth.empty()) {
          SegmentId best = network::kInvalidSegment;
          double best_d = 1e18;
          for (SegmentId sid : ts.truth) {
            const double d = in.net->segment(sid).geometry.Project(pos).dist;
            if (d < best_d) {
              best_d = d;
              best = sid;
            }
          }
          return best;
        }
        const auto hits = in.index->Nearest(pos, 40);
        if (hits.empty()) return network::kInvalidSegment;
        return hits[rng.UniformInt(static_cast<int>(hits.size()))].segment;
      };
      const SegmentId from = pick_segment(ts.cleaned[i - 1].pos);
      const SegmentId to = pick_segment(ts.cleaned[i].pos);
      if (from == network::kInvalidSegment || to == network::kInvalidSegment) {
        continue;
      }
      const auto route = router.Route1(from, to, 4.0 * straight + 1500.0);
      if (!route.has_value()) continue;

      double implicit_mean = 0.0;
      if (config.use_implicit_transition) {
        nn::Matrix points = model->PointRows(ts.cleaned);
        const nn::Matrix keys = model->trans->attention().ProjectKeys(points);
        for (SegmentId sid : route->segments) {
          implicit_mean += model->trans->MembershipProbProjected(
              model->SegmentRow(sid), keys, points);
        }
        implicit_mean /= static_cast<double>(route->segments.size());
      }
      const double len_mismatch = std::fabs(straight - route->length);
      const double turn_mismatch =
          std::fabs(RouteTurn(*in.net, *route) - TrajectoryTurn(ts.cleaned, i));
      int on_path = 0;
      for (SegmentId sid : route->segments) {
        if (ts.truth_set.count(sid)) ++on_path;
      }
      const float target =
          static_cast<float>(on_path) / static_cast<float>(route->segments.size());

      std::vector<float> row;
      if (config.use_implicit_transition) {
        row.push_back(static_cast<float>(implicit_mean));
      }
      row.push_back(static_cast<float>(len_mismatch));
      row.push_back(static_cast<float>(turn_mismatch));
      raw_len.push_back(len_mismatch);
      raw_turn.push_back(turn_mismatch);
      feats.push_back(std::move(row));
      targets.push_back(target);
    }
    CHECK(!feats.empty()) << "no transition fusion samples";
    if (config.verbose) {
      // Feature-target correlations over the collected sample set.
      const int ncol = static_cast<int>(feats[0].size());
      for (int c = 0; c < ncol; ++c) {
        double mx = 0.0;
        double my = 0.0;
        for (size_t i = 0; i < feats.size(); ++i) {
          mx += feats[i][c];
          my += targets[i];
        }
        mx /= feats.size();
        my /= feats.size();
        double sxy = 0.0;
        double sxx = 0.0;
        double syy = 0.0;
        for (size_t i = 0; i < feats.size(); ++i) {
          sxy += (feats[i][c] - mx) * (targets[i] - my);
          sxx += (feats[i][c] - mx) * (feats[i][c] - mx);
          syy += (targets[i] - my) * (targets[i] - my);
        }
        LOG_INFO << "trans fusion feature " << c << " corr "
                 << sxy / std::sqrt(sxx * syy + 1e-12) << " target mean " << my;
      }
    }
    model->trans_len_norm = FitFeatureNorm(raw_len);
    model->trans_turn_norm = FitFeatureNorm(raw_turn);
    nn::AdamConfig fusion_cfg = adam_cfg;
    fusion_cfg.lr = config.fusion_lr;
    const int len_col = config.use_implicit_transition ? 1 : 0;
    for (auto& row : feats) {
      row[len_col] = model->trans_len_norm.Apply(row[len_col]);
      row[len_col + 1] = model->trans_turn_norm.Apply(row[len_col + 1]);
    }

    nn::Adam adam(model->trans->FusionParams(), fusion_cfg);
    const int batch = 256;
    for (int step = 0; step < config.fusion_steps; ++step) {
      nn::Matrix x(batch, static_cast<int>(feats[0].size()));
      std::vector<float> y(batch);
      for (int i = 0; i < batch; ++i) {
        const int pick = rng.UniformInt(static_cast<int>(feats.size()));
        for (size_t j = 0; j < feats[pick].size(); ++j) {
          x(i, static_cast<int>(j)) = feats[pick][j];
        }
        y[i] = targets[pick];
      }
      const nn::Tensor logits = model->trans->FusionLogits(nn::Tensor(x));
      const nn::Tensor loss =
          nn::BinaryCrossEntropyWithLogits(logits, y, config.label_smoothing);
      adam.ZeroGrad();
      nn::Backward(loss);
      adam.Step();
    }
  }

  return model;
}

}  // namespace lhmm::lhmm
