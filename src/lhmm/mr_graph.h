#ifndef LHMM_LHMM_MR_GRAPH_H_
#define LHMM_LHMM_MR_GRAPH_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "network/road_network.h"
#include "nn/ops.h"
#include "traj/trajectory.h"

namespace lhmm::lhmm {

/// The three relation types of the multi-relational graph (Section IV-B).
enum class Relation { kCoOccurrence = 0, kSequentiality = 1, kTopology = 2 };
inline constexpr int kNumRelations = 3;

/// The multi-relational graph G = (V_e, V_ct, E) over cell towers and road
/// segments. Node ids: towers occupy [0, num_towers), segments occupy
/// [num_towers, num_towers + num_segments).
///
/// Relations:
///  - CO: tower <-> segment co-occurrence mined from training trajectories
///    (a truth-path road pairs with the trajectory point closest to it);
///    edge weights count occurrences and also feed the explicit
///    co-occurrence-frequency feature of Eq. (8).
///  - SQ: tower -> tower sequentiality of consecutive trajectory points.
///  - TP: segment -> segment road-network adjacency.
///
/// For message passing each relation is symmetrized (messages flow both
/// directions), which matches R-GCN practice of adding inverse relations.
class MultiRelationalGraph {
 public:
  MultiRelationalGraph(int num_towers, int num_segments);

  int num_towers() const { return num_towers_; }
  int num_segments() const { return num_segments_; }
  int num_nodes() const { return num_towers_ + num_segments_; }

  int NodeOfTower(traj::TowerId tower) const { return tower; }
  int NodeOfSegment(network::SegmentId seg) const { return num_towers_ + seg; }

  /// Adds (or strengthens) a CO edge between a tower and a segment.
  void AddCoOccurrence(traj::TowerId tower, network::SegmentId seg, double count = 1);

  /// Adds (or strengthens) an SQ edge between two towers.
  void AddSequentiality(traj::TowerId a, traj::TowerId b, double count = 1);

  /// Adds a TP edge between two adjacent segments.
  void AddTopology(network::SegmentId a, network::SegmentId b);

  /// Normalized co-occurrence frequency of (tower, seg): the fraction of the
  /// tower's co-occurrence mass on this segment. The explicit feature in
  /// D_O of Eq. (8).
  double CoFrequency(traj::TowerId tower, network::SegmentId seg) const;

  /// All segments with positive co-occurrence for `tower`, used to extend the
  /// learned candidate search beyond the spatial neighborhood.
  std::vector<network::SegmentId> CoSegments(traj::TowerId tower) const;

  /// Mean-normalized (Eq. 4) message-passing adjacency of one relation:
  /// row i lists (neighbor node, 1/|N_i^rel|). Built lazily and cached;
  /// invalidated by further Add* calls.
  std::shared_ptr<const nn::SparseRows> MessageMatrix(Relation rel) const;

  /// Union of all relations' normalized adjacency (for the homogeneous-GCN
  /// ablation LHMM-H).
  std::shared_ptr<const nn::SparseRows> UnionMessageMatrix() const;

 private:
  struct EdgeKeyHash {
    size_t operator()(uint64_t k) const { return std::hash<uint64_t>()(k); }
  };
  static uint64_t Key(int a, int b) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
           static_cast<uint32_t>(b);
  }

  void InvalidateCache();

  int num_towers_;
  int num_segments_;
  /// Per relation: undirected weighted edge multiset keyed by (min,max) node.
  std::vector<std::unordered_map<uint64_t, double, EdgeKeyHash>> edges_;
  /// Per-tower total CO mass for normalization.
  std::vector<double> co_total_per_tower_;
  /// Per-tower CO segment lists.
  std::vector<std::vector<std::pair<network::SegmentId, double>>> co_by_tower_;
  mutable std::vector<std::shared_ptr<const nn::SparseRows>> cache_;
  mutable std::shared_ptr<const nn::SparseRows> union_cache_;
};

/// Builds the multi-relational graph from the road network and training data:
/// CO and SQ from trajectories + truth paths, TP from network adjacency.
/// Trajectories are used in their preprocessed form (same pipeline as
/// matching) so tower sequences match what the matcher will see.
MultiRelationalGraph BuildGraph(const network::RoadNetwork& net, int num_towers,
                                const std::vector<traj::MatchedTrajectory>& train,
                                const std::vector<traj::Trajectory>& preprocessed);

}  // namespace lhmm::lhmm

#endif  // LHMM_LHMM_MR_GRAPH_H_
