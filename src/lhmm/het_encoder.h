#ifndef LHMM_LHMM_HET_ENCODER_H_
#define LHMM_LHMM_HET_ENCODER_H_

#include <memory>
#include <vector>

#include "lhmm/mr_graph.h"
#include "nn/modules.h"

namespace lhmm::lhmm {

/// Which representation-learning architecture to use; the non-default values
/// implement the paper's Table III ablations.
enum class EncoderKind {
  kHeterogeneous,  ///< Full R-GCN-style Het-Graph Encoder (Eq. 4-5).
  kHomogeneous,    ///< LHMM-H: one shared weight over the union graph (GCN).
  kMlpOnly,        ///< LHMM-E: MLP over free embeddings, no message passing.
};

/// Hyperparameters of the encoder.
struct EncoderConfig {
  int dim = 48;    ///< Embedding and hidden width (paper uses 128).
  int layers = 2;  ///< Message-passing iterations q (paper: q = 2).
  EncoderKind kind = EncoderKind::kHeterogeneous;
};

/// The Het-Graph Encoder (Section IV-B): free initial embeddings
/// h^(0) = W_init^T v (one-hot), then q rounds of per-relation message
/// passing z_i^rel = mean_{j in N_i^rel} W_rel h_j (Eq. 4) aggregated as
/// h_i^(l+1) = ReLU(sum_rel W_agg z_i^rel + W_0 h_i^(l)) (Eq. 5).
class HetGraphEncoder : public nn::Module {
 public:
  HetGraphEncoder(const MultiRelationalGraph* graph, const EncoderConfig& config,
                  core::Rng* rng);

  /// Full-graph forward on the tape; returns the |V| x dim node embeddings.
  nn::Tensor Forward() const;

  /// Inference forward without gradient tracking.
  nn::Matrix ForwardNoGrad() const;

  void CollectParams(std::vector<nn::Tensor>* out) override;

  const EncoderConfig& config() const { return config_; }
  const MultiRelationalGraph* graph() const { return graph_; }

 private:
  const MultiRelationalGraph* graph_;
  EncoderConfig config_;
  nn::Embedding init_;  ///< W_init as a free embedding table.
  /// weight_rel_[l][r]: W_rel of layer l, relation r (kHeterogeneous), or a
  /// single shared matrix per layer (kHomogeneous). Empty for kMlpOnly.
  std::vector<std::vector<nn::Linear>> weight_rel_;
  std::vector<nn::Linear> weight_self_;  ///< W_0 per layer.
  std::vector<nn::Linear> weight_agg_;   ///< W_agg per layer.
  /// kMlpOnly: plain MLP applied to the free embeddings.
  std::unique_ptr<nn::Mlp> mlp_;
};

}  // namespace lhmm::lhmm

#endif  // LHMM_LHMM_HET_ENCODER_H_
