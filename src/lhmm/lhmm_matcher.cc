#include "lhmm/lhmm_matcher.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/logging.h"
#include "geo/polyline.h"

namespace lhmm::lhmm {

namespace {

/// Heading change of the trajectory around step i (mirrors the trainer).
double TrajectoryTurn(const traj::Trajectory& t, int i) {
  const int lo = std::max(0, i - 2);
  const int hi = std::min(t.size() - 1, i + 1);
  std::vector<geo::Point> pts;
  for (int j = lo; j <= hi; ++j) pts.push_back(t[j].pos);
  return geo::TotalTurnOfPoints(pts);
}

double RouteTurn(const network::RoadNetwork& net, const network::Route& route) {
  std::vector<geo::Point> pts;
  for (network::SegmentId sid : route.segments) {
    const geo::Polyline& geom = net.segment(sid).geometry;
    if (pts.empty()) pts.push_back(geom.front());
    pts.push_back(geom.back());
  }
  return geo::TotalTurnOfPoints(pts);
}

}  // namespace

/// Learned observation model: pools candidates spatially and via the CO
/// relation, then ranks them by the fused P_O of Eq. (8).
class LhmmMatcher::ObsModel : public hmm::ObservationModel {
 public:
  ObsModel(const network::RoadNetwork* net, const network::GridIndex* index,
           LhmmModel* model, TrajectoryState* state)
      : net_(net), index_(index), model_(model), state_(state) {}

  void BeginTrajectory(const traj::Trajectory& t) override {
    state_->t = &t;
    state_->point_embeddings = model_->PointRows(t);
    state_->contexts = model_->config.use_implicit_observation
                           ? model_->obs->ContextAll(state_->point_embeddings)
                           : state_->point_embeddings;
    state_->trans_keys =
        model_->trans->attention().ProjectKeys(state_->point_embeddings);
    state_->membership.clear();
  }

  hmm::CandidateSet Candidates(const traj::Trajectory& t, int i, int k) override {
    // Pool: spatial neighborhood + the point's and its neighbors' CO roads
    // (history can place a high-error point far outside its neighborhood).
    std::vector<network::SegmentId> pool;
    std::unordered_set<network::SegmentId> seen;
    for (const network::SegmentHit& hit :
         index_->Nearest(t[i].pos, model_->config.pool_nearest)) {
      if (hit.dist > model_->config.pool_radius) break;
      if (seen.insert(hit.segment).second) pool.push_back(hit.segment);
    }
    if (model_->config.extend_pool_with_co) {
      for (int j = std::max(0, i - 1); j <= std::min(t.size() - 1, i + 1); ++j) {
        for (network::SegmentId sid : model_->graph->CoSegments(t[j].tower)) {
          if (seen.insert(sid).second) pool.push_back(sid);
        }
      }
    }
    if (pool.empty()) return {};

    const std::vector<double> probs = Score(t, i, pool);
    std::vector<int> order(pool.size());
    for (size_t j = 0; j < order.size(); ++j) order[j] = static_cast<int>(j);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return probs[a] > probs[b]; });
    hmm::CandidateSet out;
    out.reserve(std::min<size_t>(pool.size(), k));
    for (int j : order) {
      if (static_cast<int>(out.size()) >= k) break;
      out.push_back(Build(t, i, pool[j], probs[j]));
    }
    return out;
  }

  hmm::Candidate MakeCandidate(const traj::Trajectory& t, int i,
                               network::SegmentId segment) override {
    const std::vector<double> probs = Score(t, i, {segment});
    return Build(t, i, segment, probs[0]);
  }

 private:
  hmm::Candidate Build(const traj::Trajectory& t, int i, network::SegmentId sid,
                       double prob) const {
    const geo::PolylineProjection proj = net_->segment(sid).geometry.Project(t[i].pos);
    hmm::Candidate c;
    c.segment = sid;
    c.dist = proj.dist;
    c.closest = proj.point;
    c.observation = prob;
    return c;
  }

  /// Fused P_O for each pool segment (Eq. 8).
  std::vector<double> Score(const traj::Trajectory& t, int i,
                            const std::vector<network::SegmentId>& pool) const {
    const int n = static_cast<int>(pool.size());
    const int d = model_->embeddings.cols();
    std::vector<double> implicit(n, 0.0);
    if (model_->config.use_implicit_observation) {
      nn::Matrix roads(n, d);
      nn::Matrix ctxs(n, d);
      for (int j = 0; j < n; ++j) {
        const int node = model_->graph->NodeOfSegment(pool[j]);
        for (int c = 0; c < d; ++c) {
          roads(j, c) = model_->embeddings(node, c);
          ctxs(j, c) = state_->contexts(i, c);
        }
      }
      implicit = model_->obs->ImplicitProb(roads, ctxs);
    }
    const int cols = (model_->config.use_implicit_observation ? 1 : 0) +
                     ObservationLearner::kNumExplicit;
    nn::Matrix feats(n, cols);
    for (int j = 0; j < n; ++j) {
      int c = 0;
      if (model_->config.use_implicit_observation) {
        feats(j, c++) = static_cast<float>(implicit[j]);
      }
      const double dist = net_->segment(pool[j]).geometry.Project(t[i].pos).dist;
      feats(j, c++) = model_->obs_dist_norm.Apply(dist);
      feats(j, c++) = model_->obs_cofreq_norm.Apply(
          model_->graph->CoFrequency(t[i].tower, pool[j]));
    }
    return model_->obs->FusionProb(feats);
  }

  const network::RoadNetwork* net_;
  const network::GridIndex* index_;
  LhmmModel* model_;
  TrajectoryState* state_;
};

/// Learned transition model: Eq. (11) route relevance fused with explicit
/// features into P_T (Eq. 12).
class LhmmMatcher::TransModel : public hmm::TransitionModel {
 public:
  TransModel(const network::RoadNetwork* net, LhmmModel* model,
             TrajectoryState* state)
      : net_(net), model_(model), state_(state) {}

  double Transition(const traj::Trajectory& t, int prev_index, int cur_index,
                    const hmm::Candidate& prev, const hmm::Candidate& cur,
                    const network::Route* route, double straight_dist) override {
    if (route == nullptr || route->segments.empty()) return 0.0;
    // Physical velocity constraint: reject moves that cannot be driven in
    // the available time.
    if (model_->config.max_speed > 0.0) {
      const double dt = t[cur_index].t - t[prev_index].t;
      if (route->length > model_->config.max_speed * std::max(dt, 1.0) +
                              model_->config.speed_slack) {
        return 0.0;
      }
    }
    double implicit_mean = 0.0;
    if (model_->config.use_implicit_transition) {
      for (network::SegmentId sid : route->segments) {
        implicit_mean += Membership(sid);
      }
      implicit_mean /= static_cast<double>(route->segments.size());
    }
    const double len_mismatch = std::fabs(straight_dist - route->length);
    const double turn_mismatch =
        std::fabs(RouteTurn(*net_, *route) - TrajectoryTurn(t, cur_index));
    const int cols = (model_->config.use_implicit_transition ? 1 : 0) +
                     TransitionLearner::kNumExplicit;
    nn::Matrix feats(1, cols);
    int c = 0;
    if (model_->config.use_implicit_transition) {
      feats(0, c++) = static_cast<float>(implicit_mean);
    }
    feats(0, c++) = model_->trans_len_norm.Apply(len_mismatch);
    feats(0, c++) = model_->trans_turn_norm.Apply(turn_mismatch);
    return model_->trans->FusionProb(feats)[0];
  }

 private:
  /// Memoized P(e_l | X) (Eq. 10) for the current trajectory.
  double Membership(network::SegmentId sid) {
    const auto it = state_->membership.find(sid);
    if (it != state_->membership.end()) return it->second;
    const double p = model_->trans->MembershipProbProjected(
        model_->SegmentRow(sid), state_->trans_keys, state_->point_embeddings);
    state_->membership[sid] = p;
    return p;
  }

  const network::RoadNetwork* net_;
  LhmmModel* model_;
  TrajectoryState* state_;
};

LhmmMatcher::LhmmMatcher(const network::RoadNetwork* net,
                         const network::GridIndex* index,
                         std::shared_ptr<LhmmModel> model, std::string display_name)
    : net_(net),
      index_(index),
      model_(std::move(model)),
      display_name_(std::move(display_name)) {
  CHECK(net != nullptr);
  CHECK(index != nullptr);
  CHECK(model_ != nullptr);
  router_ = std::make_unique<network::SegmentRouter>(net);
  cached_router_ = std::make_unique<network::CachedRouter>(router_.get());
  active_router_ = cached_router_.get();
  obs_model_ = std::make_unique<ObsModel>(net_, index_, model_.get(), &state_);
  trans_model_ = std::make_unique<TransModel>(net_, model_.get(), &state_);
  hmm::EngineConfig engine_config;
  engine_config.k = model_->config.k;
  engine_config.use_shortcuts = model_->config.use_shortcuts;
  engine_config.num_shortcuts = model_->config.num_shortcuts;
  engine_ = std::make_unique<hmm::Engine>(net_, cached_router_.get(),
                                          obs_model_.get(), trans_model_.get(),
                                          engine_config);
}

LhmmMatcher::~LhmmMatcher() = default;

void LhmmMatcher::UseSharedRouter(network::CachedRouter* shared) {
  CHECK(shared != nullptr);
  active_router_ = shared;
  hmm::EngineConfig engine_config = engine_->config();
  engine_ = std::make_unique<hmm::Engine>(net_, shared, obs_model_.get(),
                                          trans_model_.get(), engine_config);
}

std::unique_ptr<matchers::StreamingSession> LhmmMatcher::OpenSession(
    const matchers::StreamConfig& config) {
  const hmm::EngineConfig& ec = engine_->config();
  hmm::OnlineConfig oc;
  oc.k = ec.k;
  oc.lag = config.lag;
  oc.route_bound_alpha = ec.route_bound_alpha;
  oc.route_bound_beta = ec.route_bound_beta;
  oc.max_route_bound = ec.max_route_bound;
  return std::make_unique<matchers::OnlineSession>(
      net_, active_router_, obs_model_.get(), trans_model_.get(), oc);
}

matchers::MatchResult LhmmMatcher::Match(const traj::Trajectory& cellular) {
  hmm::EngineResult er = engine_->Match(cellular);
  matchers::MatchResult out;
  out.path = std::move(er.path);
  out.candidates = std::move(er.candidates);
  out.point_index = std::move(er.point_index);
  return out;
}

}  // namespace lhmm::lhmm
