#include "lhmm/mr_graph.h"

#include <algorithm>

#include "core/logging.h"

namespace lhmm::lhmm {

MultiRelationalGraph::MultiRelationalGraph(int num_towers, int num_segments)
    : num_towers_(num_towers), num_segments_(num_segments) {
  edges_.resize(kNumRelations);
  co_total_per_tower_.assign(num_towers, 0.0);
  co_by_tower_.resize(num_towers);
  cache_.resize(kNumRelations);
}

void MultiRelationalGraph::InvalidateCache() {
  for (auto& c : cache_) c.reset();
  union_cache_.reset();
}

void MultiRelationalGraph::AddCoOccurrence(traj::TowerId tower,
                                           network::SegmentId seg, double count) {
  CHECK_GE(tower, 0);
  CHECK_LT(tower, num_towers_);
  CHECK_GE(seg, 0);
  CHECK_LT(seg, num_segments_);
  const int a = NodeOfTower(tower);
  const int b = NodeOfSegment(seg);
  auto& bucket = edges_[static_cast<int>(Relation::kCoOccurrence)][Key(a, b)];
  bucket += count;
  co_total_per_tower_[tower] += count;
  // Maintain the per-tower segment list (linear scan; CO degrees are small).
  auto& list = co_by_tower_[tower];
  bool found = false;
  for (auto& [s, w] : list) {
    if (s == seg) {
      w += count;
      found = true;
      break;
    }
  }
  if (!found) list.push_back({seg, count});
  InvalidateCache();
}

void MultiRelationalGraph::AddSequentiality(traj::TowerId a, traj::TowerId b,
                                            double count) {
  if (a == b) return;
  CHECK_GE(a, 0);
  CHECK_LT(a, num_towers_);
  CHECK_GE(b, 0);
  CHECK_LT(b, num_towers_);
  const int na = NodeOfTower(std::min(a, b));
  const int nb = NodeOfTower(std::max(a, b));
  edges_[static_cast<int>(Relation::kSequentiality)][Key(na, nb)] += count;
  InvalidateCache();
}

void MultiRelationalGraph::AddTopology(network::SegmentId a, network::SegmentId b) {
  if (a == b) return;
  const int na = NodeOfSegment(std::min(a, b));
  const int nb = NodeOfSegment(std::max(a, b));
  edges_[static_cast<int>(Relation::kTopology)][Key(na, nb)] += 1.0;
  InvalidateCache();
}

double MultiRelationalGraph::CoFrequency(traj::TowerId tower,
                                         network::SegmentId seg) const {
  if (tower < 0 || tower >= num_towers_) return 0.0;
  if (co_total_per_tower_[tower] <= 0.0) return 0.0;
  for (const auto& [s, w] : co_by_tower_[tower]) {
    if (s == seg) return w / co_total_per_tower_[tower];
  }
  return 0.0;
}

std::vector<network::SegmentId> MultiRelationalGraph::CoSegments(
    traj::TowerId tower) const {
  std::vector<network::SegmentId> out;
  if (tower < 0 || tower >= num_towers_) return out;
  out.reserve(co_by_tower_[tower].size());
  for (const auto& [s, w] : co_by_tower_[tower]) out.push_back(s);
  return out;
}

std::shared_ptr<const nn::SparseRows> MultiRelationalGraph::MessageMatrix(
    Relation rel) const {
  const int r = static_cast<int>(rel);
  if (cache_[r]) return cache_[r];
  auto rows = std::make_shared<nn::SparseRows>();
  rows->rows.resize(num_nodes());
  // Collect undirected neighbors, then normalize by group size (Eq. 4).
  std::vector<std::vector<int>> nbrs(num_nodes());
  for (const auto& [key, weight] : edges_[r]) {
    const int a = static_cast<int>(key >> 32);
    const int b = static_cast<int>(key & 0xffffffffu);
    nbrs[a].push_back(b);
    nbrs[b].push_back(a);
  }
  for (int i = 0; i < num_nodes(); ++i) {
    if (nbrs[i].empty()) continue;
    const float norm = 1.0f / static_cast<float>(nbrs[i].size());
    rows->rows[i].reserve(nbrs[i].size());
    for (int j : nbrs[i]) rows->rows[i].push_back({j, norm});
  }
  cache_[r] = rows;
  return rows;
}

std::shared_ptr<const nn::SparseRows> MultiRelationalGraph::UnionMessageMatrix()
    const {
  if (union_cache_) return union_cache_;
  auto rows = std::make_shared<nn::SparseRows>();
  rows->rows.resize(num_nodes());
  std::vector<std::vector<int>> nbrs(num_nodes());
  for (const auto& rel_edges : edges_) {
    for (const auto& [key, weight] : rel_edges) {
      const int a = static_cast<int>(key >> 32);
      const int b = static_cast<int>(key & 0xffffffffu);
      nbrs[a].push_back(b);
      nbrs[b].push_back(a);
    }
  }
  for (int i = 0; i < num_nodes(); ++i) {
    if (nbrs[i].empty()) continue;
    const float norm = 1.0f / static_cast<float>(nbrs[i].size());
    for (int j : nbrs[i]) rows->rows[i].push_back({j, norm});
  }
  union_cache_ = rows;
  return union_cache_;
}

MultiRelationalGraph BuildGraph(const network::RoadNetwork& net, int num_towers,
                                const std::vector<traj::MatchedTrajectory>& train,
                                const std::vector<traj::Trajectory>& preprocessed) {
  CHECK_EQ(train.size(), preprocessed.size());
  MultiRelationalGraph g(num_towers, net.num_segments());

  // TP: road topology.
  for (const network::RoadSegment& seg : net.segments()) {
    for (network::SegmentId next : net.NextSegments(seg.id)) {
      g.AddTopology(seg.id, next);
    }
  }

  // CO + SQ from training trajectories.
  for (size_t ti = 0; ti < train.size(); ++ti) {
    const traj::Trajectory& t = preprocessed[ti];
    const std::vector<network::SegmentId>& path = train[ti].truth_path;
    if (t.empty()) continue;
    // SQ: consecutive serving towers.
    for (int i = 0; i + 1 < t.size(); ++i) {
      if (t[i].tower == traj::kInvalidTower ||
          t[i + 1].tower == traj::kInvalidTower) {
        continue;
      }
      g.AddSequentiality(t[i].tower, t[i + 1].tower);
    }
    // CO: each truth road pairs with the closest trajectory point.
    for (network::SegmentId sid : path) {
      const geo::Polyline& geom = net.segment(sid).geometry;
      int best = -1;
      double best_d = 1e18;
      for (int i = 0; i < t.size(); ++i) {
        const double d = geom.Project(t[i].pos).dist;
        if (d < best_d) {
          best_d = d;
          best = i;
        }
      }
      if (best >= 0 && t[best].tower != traj::kInvalidTower) {
        g.AddCoOccurrence(t[best].tower, sid);
      }
    }
  }
  return g;
}

}  // namespace lhmm::lhmm
