#include "lhmm/learners.h"

#include <cmath>

#include "core/logging.h"

namespace lhmm::lhmm {

FeatureNorm FitFeatureNorm(const std::vector<double>& values) {
  FeatureNorm out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  out.mean = static_cast<float>(mean);
  out.std = static_cast<float>(std::max(1e-3, std::sqrt(var)));
  return out;
}

std::vector<double> PositiveProbs(const nn::Matrix& logits) {
  CHECK_EQ(logits.cols(), 2);
  std::vector<double> out(logits.rows());
  for (int i = 0; i < logits.rows(); ++i) {
    // Class 1 = positive. Stable two-class softmax.
    const double z = logits(i, 1) - logits(i, 0);
    out[i] = 1.0 / (1.0 + std::exp(-z));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ObservationLearner
// ---------------------------------------------------------------------------

ObservationLearner::ObservationLearner(int dim, bool use_implicit, core::Rng* rng)
    : use_implicit_(use_implicit),
      attention_(dim, dim, dim, rng),
      implicit_({2 * dim, dim, 2}, rng),
      fusion_({(use_implicit ? 1 : 0) + kNumExplicit, 16, 2}, rng) {}

nn::Tensor ObservationLearner::ContextAll(const nn::Tensor& points) const {
  const int n = points.rows();
  CHECK_GT(n, 0);
  // One attention pass per query point (n <= ~50 per trajectory).
  std::vector<nn::Tensor> rows;
  rows.reserve(n);
  for (int i = 0; i < n; ++i) {
    const nn::Tensor q = nn::RowsT(points, {i});
    rows.push_back(attention_.Forward(q, points, points));
  }
  return nn::ConcatRowsT(rows);
}

nn::Tensor ObservationLearner::ImplicitLogits(const nn::Tensor& roads,
                                              const nn::Tensor& contexts) const {
  return implicit_.Forward(nn::ConcatColsT(roads, contexts));
}

nn::Tensor ObservationLearner::FusionLogits(const nn::Tensor& features) const {
  return fusion_.Forward(features);
}

nn::Matrix ObservationLearner::ContextAll(const nn::Matrix& points) const {
  nn::Matrix out(points.rows(), points.cols());
  nn::Matrix query(1, points.cols());
  for (int i = 0; i < points.rows(); ++i) {
    for (int j = 0; j < points.cols(); ++j) query(0, j) = points(i, j);
    const nn::Matrix ctx = attention_.Forward(query, points, points);
    for (int j = 0; j < points.cols(); ++j) out(i, j) = ctx(0, j);
  }
  return out;
}

std::vector<double> ObservationLearner::ImplicitProb(
    const nn::Matrix& roads, const nn::Matrix& contexts) const {
  CHECK_EQ(roads.rows(), contexts.rows());
  nn::Matrix cat(roads.rows(), roads.cols() + contexts.cols());
  for (int i = 0; i < roads.rows(); ++i) {
    float* row = cat.Row(i);
    for (int j = 0; j < roads.cols(); ++j) row[j] = roads(i, j);
    for (int j = 0; j < contexts.cols(); ++j) row[roads.cols() + j] = contexts(i, j);
  }
  return PositiveProbs(implicit_.Forward(cat));
}

std::vector<double> ObservationLearner::FusionProb(
    const nn::Matrix& features) const {
  return PositiveProbs(fusion_.Forward(features));
}

void ObservationLearner::CollectParams(std::vector<nn::Tensor>* out) {
  attention_.CollectParams(out);
  implicit_.CollectParams(out);
  fusion_.CollectParams(out);
}

std::vector<nn::Tensor> ObservationLearner::FusionParams() {
  return fusion_.Params();
}

std::vector<nn::Tensor> ObservationLearner::ImplicitParams() {
  std::vector<nn::Tensor> out;
  attention_.CollectParams(&out);
  implicit_.CollectParams(&out);
  return out;
}

// ---------------------------------------------------------------------------
// TransitionLearner
// ---------------------------------------------------------------------------

TransitionLearner::TransitionLearner(int dim, bool use_implicit, core::Rng* rng)
    : use_implicit_(use_implicit),
      attention_(dim, dim, dim, rng),
      membership_({2 * dim, dim, 2}, rng),
      fusion_({(use_implicit ? 1 : 0) + kNumExplicit, 16, 1}, rng) {}

nn::Tensor TransitionLearner::RoadContexts(const nn::Tensor& roads,
                                           const nn::Tensor& points) const {
  const int r = roads.rows();
  CHECK_GT(r, 0);
  std::vector<nn::Tensor> rows;
  rows.reserve(r);
  for (int i = 0; i < r; ++i) {
    const nn::Tensor q = nn::RowsT(roads, {i});
    rows.push_back(attention_.Forward(q, points, points));
  }
  return nn::ConcatRowsT(rows);
}

nn::Tensor TransitionLearner::MembershipLogits(const nn::Tensor& roads,
                                               const nn::Tensor& contexts) const {
  return membership_.Forward(nn::ConcatColsT(roads, contexts));
}

nn::Tensor TransitionLearner::FusionLogits(const nn::Tensor& features) const {
  return fusion_.Forward(features);
}

double TransitionLearner::MembershipProb(const nn::Matrix& road,
                                         const nn::Matrix& points) const {
  return MembershipProbProjected(road, attention_.ProjectKeys(points), points);
}

double TransitionLearner::MembershipProbProjected(
    const nn::Matrix& road, const nn::Matrix& projected_keys,
    const nn::Matrix& points) const {
  const nn::Matrix ctx = attention_.ForwardProjected(road, projected_keys, points);
  nn::Matrix cat(1, road.cols() + ctx.cols());
  for (int j = 0; j < road.cols(); ++j) cat(0, j) = road(0, j);
  for (int j = 0; j < ctx.cols(); ++j) cat(0, road.cols() + j) = ctx(0, j);
  return PositiveProbs(membership_.Forward(cat))[0];
}

std::vector<double> TransitionLearner::FusionProb(
    const nn::Matrix& features) const {
  const nn::Matrix logits = fusion_.Forward(features);
  CHECK_EQ(logits.cols(), 1);
  std::vector<double> out(logits.rows());
  for (int i = 0; i < logits.rows(); ++i) {
    out[i] = 1.0 / (1.0 + std::exp(-logits(i, 0)));
  }
  return out;
}

void TransitionLearner::CollectParams(std::vector<nn::Tensor>* out) {
  attention_.CollectParams(out);
  membership_.CollectParams(out);
  fusion_.CollectParams(out);
}

std::vector<nn::Tensor> TransitionLearner::FusionParams() {
  return fusion_.Params();
}

std::vector<nn::Tensor> TransitionLearner::MembershipParams() {
  std::vector<nn::Tensor> out;
  attention_.CollectParams(&out);
  membership_.CollectParams(&out);
  return out;
}

}  // namespace lhmm::lhmm
