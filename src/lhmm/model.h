#ifndef LHMM_LHMM_MODEL_H_
#define LHMM_LHMM_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "lhmm/het_encoder.h"
#include "lhmm/learners.h"
#include "lhmm/mr_graph.h"

namespace lhmm::lhmm {

/// Full LHMM configuration: architecture, path-finding, and training knobs.
/// Defaults reproduce the paper's main configuration at laptop scale; the
/// variant flags produce the Table III ablations.
struct LhmmConfig {
  EncoderConfig encoder;
  bool use_implicit_observation = true;  ///< false -> LHMM-O.
  bool use_implicit_transition = true;   ///< false -> LHMM-T.
  bool use_shortcuts = true;             ///< false -> LHMM-S.
  int num_shortcuts = 1;                 ///< K of Eq. (20).
  int k = 30;                            ///< Candidates per point (V-A2).

  /// Candidate scoring pool: spatially nearest segments, capped by radius,
  /// extended by the point's (and neighbors') co-occurrence roads.
  int pool_nearest = 100;
  double pool_radius = 2600.0;
  /// Disable to restrict the pool to the spatial neighborhood only (design
  /// ablation; loses the ability to place outlier points via history).
  bool extend_pool_with_co = true;

  /// Physical velocity constraint [8] applied inside the learned transition:
  /// a move whose route cannot be driven within the sample gap at this speed
  /// (m/s, plus slack meters) gets probability 0. Part of the "intuitive
  /// physical constraints" the HMM framework keeps (Section I). Set
  /// max_speed <= 0 to disable (design ablation).
  double max_speed = 28.0;
  double speed_slack = 200.0;

  // --- Training ---
  int obs_steps = 220;          ///< Encoder + implicit-observation steps.
  int trans_steps = 150;        ///< Implicit-transition steps.
  int fusion_steps = 600;       ///< Fine-tuning steps for each fusion head.
  float fusion_lr = 5e-3f;      ///< The tiny fusion MLPs need a hotter rate.
  int batch_trajectories = 6;   ///< Trajectories per step.
  int negatives_per_positive = 3;  ///< Undersampling ratio (Section IV-D).
  float label_smoothing = 0.1f;
  float lr = 1e-3f;
  float weight_decay = 1e-4f;
  uint64_t seed = 1234;
  bool verbose = false;  ///< Log training-loss progress.
};

/// A trained LHMM model: the multi-relational graph, the encoder, both
/// probability learners, the cached final node embeddings, and the explicit
/// feature normalizations. Produced by TrainLhmm() (trainer.h), consumed by
/// LhmmMatcher (lhmm_matcher.h).
struct LhmmModel {
  LhmmConfig config;
  std::unique_ptr<MultiRelationalGraph> graph;
  std::unique_ptr<HetGraphEncoder> encoder;
  std::unique_ptr<ObservationLearner> obs;
  std::unique_ptr<TransitionLearner> trans;

  /// Final node embeddings (|V| x dim), cached after training.
  nn::Matrix embeddings;

  // Explicit-feature normalizations (Eq. 8 / Eq. 12).
  FeatureNorm obs_dist_norm;
  FeatureNorm obs_cofreq_norm;
  FeatureNorm trans_len_norm;
  FeatureNorm trans_turn_norm;

  /// Embedding row of a tower (1 x dim); zero row for kInvalidTower.
  nn::Matrix TowerRow(traj::TowerId tower) const;

  /// Embedding row of a road segment (1 x dim).
  nn::Matrix SegmentRow(network::SegmentId seg) const;

  /// Embedding rows of all points of a trajectory (n x dim), keyed by the
  /// points' serving towers.
  nn::Matrix PointRows(const traj::Trajectory& t) const;

  /// All trainable parameters in a stable order (for save/load).
  std::vector<nn::Tensor> AllParams() const;

  /// The `k` towers most similar to `tower` in the learned embedding space
  /// (cosine similarity), excluding itself. Embedding-space analysis: towers
  /// that serve overlapping road areas land close together.
  std::vector<std::pair<traj::TowerId, double>> NearestTowers(traj::TowerId tower,
                                                              int k) const;

  /// The `k` road segments most similar to `seg` in the embedding space.
  std::vector<std::pair<network::SegmentId, double>> NearestSegments(
      network::SegmentId seg, int k) const;

  /// Serializes parameters + feature norms; the graph is rebuilt from data.
  core::Status Save(const std::string& path) const;
  core::Status Load(const std::string& path);
};

}  // namespace lhmm::lhmm

#endif  // LHMM_LHMM_MODEL_H_
