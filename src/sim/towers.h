#ifndef LHMM_SIM_TOWERS_H_
#define LHMM_SIM_TOWERS_H_

#include <vector>

#include "core/rng.h"
#include "geo/bbox.h"
#include "geo/point.h"
#include "traj/trajectory.h"

namespace lhmm::sim {

/// A cell tower with a fixed position (Definition 1).
struct Tower {
  traj::TowerId id = traj::kInvalidTower;
  geo::Point pos;
};

/// Parameters for tower placement. Towers are densest downtown and sparse at
/// the outskirts, mirroring real deployments (the paper's Fig. 7(a) analysis
/// relies on exactly this gradient).
struct TowerPlacementConfig {
  double core_spacing = 320.0;  ///< Typical tower separation at the center, m.
  double edge_spacing = 950.0;  ///< Typical separation at the boundary, m.
  double min_separation_frac = 0.7;  ///< Dart-throwing rejection radius factor.
  int max_attempts_factor = 40;      ///< Attempts per expected tower.
};

/// Places towers over `area` by dart throwing with a radius that grows with
/// distance from the area center. Ids are dense indices into the result.
std::vector<Tower> PlaceTowers(const geo::BBox& area,
                               const TowerPlacementConfig& config, core::Rng* rng);

}  // namespace lhmm::sim

#endif  // LHMM_SIM_TOWERS_H_
