#ifndef LHMM_SIM_DATASET_H_
#define LHMM_SIM_DATASET_H_

#include <string>
#include <vector>

#include "network/generators.h"
#include "network/road_network.h"
#include "sim/radio.h"
#include "sim/route_sampler.h"
#include "sim/samplers.h"
#include "sim/towers.h"
#include "traj/trajectory.h"

namespace lhmm::sim {

/// Everything needed to build one synthetic city dataset.
struct DatasetConfig {
  std::string name = "city";
  network::CityNetworkConfig net;
  TowerPlacementConfig towers;
  RadioConfig radio;
  RouteConfig route;
  SamplingConfig sampling;
  int num_train = 1000;
  int num_val = 100;
  int num_test = 250;
  uint64_t seed = 42;
};

/// Aggregate statistics in the shape of the paper's Table I.
struct DatasetStats {
  int road_segments = 0;
  int intersections = 0;
  int num_towers = 0;
  int64_t cellular_points = 0;
  int64_t gps_points = 0;
  double cellular_points_per_traj = 0.0;
  double gps_points_per_traj = 0.0;
  double avg_cell_interval_s = 0.0;
  double max_cell_interval_s = 0.0;
  double avg_cell_sampling_dist_m = 0.0;
  double median_cell_sampling_dist_m = 0.0;
  /// Mean distance between a cellular sample's tower and the user's true
  /// position at that instant — the dataset's positioning error.
  double mean_positioning_error_m = 0.0;
  double p90_positioning_error_m = 0.0;
};

/// A built dataset: the city, its towers and radio deployment, and matched
/// trajectories split into train/val/test.
struct Dataset {
  std::string name;
  network::RoadNetwork network;
  std::vector<Tower> towers;
  DatasetConfig config;
  std::vector<traj::MatchedTrajectory> train;
  std::vector<traj::MatchedTrajectory> val;
  std::vector<traj::MatchedTrajectory> test;

  DatasetStats ComputeStats() const;
};

/// Preset mimicking the Hangzhou dataset's regime at ~1/3 spatial scale
/// (larger city, sparser cellular sampling, longer intervals).
DatasetConfig HangzhouSPreset();

/// Preset mimicking the Xiamen dataset's regime (smaller city, denser
/// sampling, shorter intervals).
DatasetConfig XiamenSPreset();

/// Builds a full dataset from a config: generates the network, places towers,
/// fixes the radio deployment, and simulates all trajectories.
Dataset BuildDataset(const DatasetConfig& config);

/// Distance from the centroid of a trajectory's true positions to the city
/// center, used for the Fig. 7(a) urban/rural bucketing.
double CentroidRadius(const network::RoadNetwork& net,
                      const traj::MatchedTrajectory& mt);

}  // namespace lhmm::sim

#endif  // LHMM_SIM_DATASET_H_
