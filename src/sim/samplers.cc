#include "sim/samplers.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace lhmm::sim {

Drive::Drive(const network::RoadNetwork* net, std::vector<network::SegmentId> route,
             double speed_factor_lo, double speed_factor_hi, core::Rng* rng)
    : net_(net), route_(std::move(route)) {
  CHECK(net != nullptr);
  CHECK(!route_.empty());
  enter_time_.resize(route_.size() + 1);
  enter_time_[0] = 0.0;
  for (size_t i = 0; i < route_.size(); ++i) {
    const network::RoadSegment& seg = net_->segment(route_[i]);
    const double factor = rng->Uniform(speed_factor_lo, speed_factor_hi);
    double travel = seg.length / (seg.speed_limit * factor);
    // Intersection slowdown: a short stochastic pause at segment entry.
    travel += rng->Uniform(0.0, 4.0);
    enter_time_[i + 1] = enter_time_[i] + travel;
  }
}

geo::Point Drive::PositionAt(double t) const {
  t = std::clamp(t, 0.0, DurationSeconds());
  const auto it = std::upper_bound(enter_time_.begin(), enter_time_.end(), t);
  size_t idx = static_cast<size_t>(it - enter_time_.begin());
  if (idx > 0) --idx;
  if (idx >= route_.size()) idx = route_.size() - 1;
  const network::RoadSegment& seg = net_->segment(route_[idx]);
  const double span = enter_time_[idx + 1] - enter_time_[idx];
  const double frac = span > 0.0 ? (t - enter_time_[idx]) / span : 0.0;
  return seg.geometry.PointAt(frac * seg.length);
}

network::SegmentId Drive::SegmentAt(double t) const {
  t = std::clamp(t, 0.0, DurationSeconds());
  const auto it = std::upper_bound(enter_time_.begin(), enter_time_.end(), t);
  size_t idx = static_cast<size_t>(it - enter_time_.begin());
  if (idx > 0) --idx;
  if (idx >= route_.size()) idx = route_.size() - 1;
  return route_[idx];
}

traj::Trajectory SampleGps(const Drive& drive, const SamplingConfig& config,
                           core::Rng* rng) {
  traj::Trajectory out;
  const double duration = drive.DurationSeconds();
  for (double t = 0.0; t <= duration; t += config.gps_interval) {
    traj::TrajPoint p;
    p.t = t;
    p.pos = drive.PositionAt(t);
    p.pos.x += rng->Normal(0.0, config.gps_noise_sigma);
    p.pos.y += rng->Normal(0.0, config.gps_noise_sigma);
    out.points.push_back(p);
  }
  return out;
}

traj::Trajectory SampleCellular(const Drive& drive, const RadioModel& radio,
                                const std::vector<Tower>& towers,
                                const SamplingConfig& config, core::Rng* rng) {
  traj::Trajectory out;
  const double duration = drive.DurationSeconds();
  ServeState state;
  double t = 0.0;
  while (t <= duration) {
    const geo::Point user = drive.PositionAt(t);
    const traj::TowerId serving = radio.Serve(user, &state, rng);
    traj::TrajPoint p;
    p.t = t;
    p.tower = serving;
    p.pos = towers[serving].pos;
    out.points.push_back(p);
    const double gap = std::max(
        config.cell_interval_min,
        rng->Normal(config.cell_interval_mean, config.cell_interval_sigma));
    t += gap;
  }
  return out;
}

}  // namespace lhmm::sim
