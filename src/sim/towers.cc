#include "sim/towers.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace lhmm::sim {

std::vector<Tower> PlaceTowers(const geo::BBox& area,
                               const TowerPlacementConfig& config, core::Rng* rng) {
  CHECK(!area.Empty());
  CHECK_GT(config.core_spacing, 0.0);
  const geo::Point center = area.Center();
  const double half_diag =
      std::max(1.0, std::hypot(area.Width() / 2.0, area.Height() / 2.0));

  auto local_spacing = [&](const geo::Point& p) {
    const double r = std::min(1.0, geo::Distance(p, center) / half_diag);
    return config.core_spacing +
           (config.edge_spacing - config.core_spacing) * std::pow(r, 1.3);
  };

  const double area_m2 = area.Width() * area.Height();
  const int expected =
      std::max(8, static_cast<int>(area_m2 / (config.core_spacing *
                                              config.core_spacing * 2.5)));
  const int attempts = expected * config.max_attempts_factor;

  std::vector<Tower> towers;
  for (int i = 0; i < attempts; ++i) {
    geo::Point candidate{rng->Uniform(area.min_x, area.max_x),
                         rng->Uniform(area.min_y, area.max_y)};
    const double radius = config.min_separation_frac * local_spacing(candidate);
    bool blocked = false;
    for (const Tower& t : towers) {
      if (geo::DistanceSq(t.pos, candidate) < radius * radius) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    towers.push_back(
        Tower{static_cast<traj::TowerId>(towers.size()), candidate});
  }
  CHECK_GE(towers.size(), 4u) << "degenerate tower placement";
  return towers;
}

}  // namespace lhmm::sim
