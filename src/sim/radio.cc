#include "sim/radio.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace lhmm::sim {

RadioModel::RadioModel(const std::vector<Tower>* towers, const RadioConfig& config,
                       core::Rng* deploy_rng)
    : towers_(towers), config_(config) {
  CHECK(towers != nullptr);
  CHECK(!towers->empty());
  sector_gain_db_.resize(towers->size());
  for (auto& gains : sector_gain_db_) {
    gains.resize(config_.sectors);
    for (double& g : gains) {
      g = deploy_rng->Normal(0.0, config_.sector_gain_sigma_db);
    }
  }
}

int RadioModel::SectorOf(traj::TowerId tower_id, const geo::Point& user) const {
  const geo::Point& tp = (*towers_)[tower_id].pos;
  double angle = std::atan2(user.y - tp.y, user.x - tp.x);  // (-pi, pi]
  if (angle < 0) angle += 2.0 * M_PI;
  int sector = static_cast<int>(angle / (2.0 * M_PI) * config_.sectors);
  return std::clamp(sector, 0, config_.sectors - 1);
}

double RadioModel::MeanSignalDb(traj::TowerId tower_id, const geo::Point& user) const {
  const geo::Point& tp = (*towers_)[tower_id].pos;
  const double d = std::max(10.0, geo::Distance(tp, user));
  return -10.0 * config_.path_loss_exponent * std::log10(d) +
         sector_gain_db_[tower_id][SectorOf(tower_id, user)];
}

traj::TowerId RadioModel::Serve(const geo::Point& user, ServeState* state,
                                core::Rng* rng) const {
  const traj::TowerId previous = state->previous;
  // Sticky gross outlier: the phone stays attached to a distant macro tower
  // for a short run of samples.
  if (state->outlier_remaining > 0) {
    --state->outlier_remaining;
    state->previous = state->outlier_tower;
    return state->outlier_tower;
  }
  if (rng->Bernoulli(config_.outlier_prob)) {
    std::vector<traj::TowerId> distant;
    for (const Tower& t : *towers_) {
      const double d = geo::Distance(t.pos, user);
      if (d >= config_.outlier_min_dist && d <= config_.outlier_max_dist) {
        distant.push_back(t.id);
      }
    }
    if (!distant.empty()) {
      const traj::TowerId pick =
          distant[rng->UniformInt(static_cast<int>(distant.size()))];
      state->outlier_tower = pick;
      // Geometric duration with the configured mean (this sample included).
      state->outlier_remaining = 0;
      while (rng->Bernoulli(1.0 - 1.0 / config_.outlier_mean_duration)) {
        ++state->outlier_remaining;
      }
      state->previous = pick;
      return pick;
    }
  }

  traj::TowerId best = traj::kInvalidTower;
  double best_db = -1e18;
  for (const Tower& t : *towers_) {
    if (geo::Distance(t.pos, user) > config_.max_serving_range) continue;
    const double db =
        MeanSignalDb(t.id, user) + rng->Normal(0.0, config_.fast_fading_sigma_db);
    if (db > best_db) {
      best_db = db;
      best = t.id;
    }
  }
  if (best == traj::kInvalidTower) {
    // User is out of range of every tower; fall back to the nearest.
    double best_d = 1e18;
    for (const Tower& t : *towers_) {
      const double d = geo::Distance(t.pos, user);
      if (d < best_d) {
        best_d = d;
        best = t.id;
      }
    }
    state->previous = best;
    return best;
  }
  // Hysteresis: keep the previous server unless the winner clears the margin.
  if (previous != traj::kInvalidTower && previous != best &&
      geo::Distance((*towers_)[previous].pos, user) <= config_.max_serving_range) {
    const double prev_db = MeanSignalDb(previous, user);
    if (best_db - prev_db < config_.handoff_hysteresis_db) {
      state->previous = previous;
      return previous;
    }
  }
  state->previous = best;
  return best;
}

}  // namespace lhmm::sim
