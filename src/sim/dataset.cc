#include "sim/dataset.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "traj/filters.h"

namespace lhmm::sim {

namespace {

/// True user position at time `t` approximated from the co-recorded GPS
/// channel (nearest sample in time) — the same proxy the paper's ground-truth
/// pipeline uses.
geo::Point GpsPositionAt(const traj::Trajectory& gps, double t) {
  CHECK(!gps.empty());
  const auto cmp = [](const traj::TrajPoint& p, double value) { return p.t < value; };
  const auto it = std::lower_bound(gps.points.begin(), gps.points.end(), t, cmp);
  if (it == gps.points.begin()) return it->pos;
  if (it == gps.points.end()) return gps.points.back().pos;
  const auto prev = it - 1;
  return (t - prev->t) < (it->t - t) ? prev->pos : it->pos;
}

}  // namespace

DatasetConfig HangzhouSPreset() {
  DatasetConfig cfg;
  cfg.name = "Hangzhou-S";
  cfg.net.width = 9500.0;
  cfg.net.height = 7500.0;
  cfg.net.core_spacing = 205.0;
  cfg.net.edge_spacing = 580.0;
  cfg.net.seed = 11;
  cfg.towers.core_spacing = 420.0;
  cfg.towers.edge_spacing = 1200.0;
  cfg.radio.sector_gain_sigma_db = 10.0;
  cfg.radio.fast_fading_sigma_db = 4.0;
  cfg.radio.path_loss_exponent = 2.9;
  cfg.radio.outlier_prob = 0.06;
  cfg.route.min_length = 2800.0;
  cfg.route.max_length = 7800.0;
  cfg.sampling.cell_interval_mean = 16.0;
  cfg.sampling.cell_interval_sigma = 7.0;
  cfg.num_train = 1000;
  cfg.num_val = 100;
  cfg.num_test = 250;
  cfg.seed = 20230401;
  return cfg;
}

DatasetConfig XiamenSPreset() {
  DatasetConfig cfg;
  cfg.name = "Xiamen-S";
  cfg.net.width = 7800.0;
  cfg.net.height = 6000.0;
  cfg.net.core_spacing = 215.0;
  cfg.net.edge_spacing = 520.0;
  cfg.net.seed = 23;
  cfg.towers.core_spacing = 380.0;
  cfg.towers.edge_spacing = 1050.0;
  cfg.radio.sector_gain_sigma_db = 9.0;
  cfg.radio.fast_fading_sigma_db = 3.5;
  cfg.radio.path_loss_exponent = 3.0;
  cfg.radio.outlier_prob = 0.05;
  cfg.route.min_length = 2600.0;
  cfg.route.max_length = 7000.0;
  cfg.sampling.cell_interval_mean = 10.0;
  cfg.sampling.cell_interval_sigma = 4.5;
  cfg.num_train = 750;
  cfg.num_val = 80;
  cfg.num_test = 200;
  cfg.seed = 20230402;
  return cfg;
}

Dataset BuildDataset(const DatasetConfig& config) {
  Dataset ds;
  ds.name = config.name;
  ds.config = config;
  ds.network = network::GenerateCityNetwork(config.net);

  core::Rng rng(config.seed);
  core::Rng tower_rng = rng.Fork();
  ds.towers = PlaceTowers(ds.network.Bounds(), config.towers, &tower_rng);

  core::Rng deploy_rng = rng.Fork();
  RadioModel radio(&ds.towers, config.radio, &deploy_rng);
  RouteSampler route_sampler(&ds.network, config.route);

  const int total = config.num_train + config.num_val + config.num_test;
  std::vector<traj::MatchedTrajectory> all;
  all.reserve(total);
  core::Rng traj_rng = rng.Fork();
  int failures = 0;
  while (static_cast<int>(all.size()) < total) {
    std::vector<network::SegmentId> route = route_sampler.SampleRoute(&traj_rng);
    if (route.empty()) {
      CHECK_LT(++failures, 1000) << "route sampling keeps failing";
      continue;
    }
    Drive drive(&ds.network, std::move(route), config.sampling.speed_factor_lo,
                config.sampling.speed_factor_hi, &traj_rng);
    traj::MatchedTrajectory mt;
    mt.truth_path = drive.route();
    mt.gps = SampleGps(drive, config.sampling, &traj_rng);
    mt.cellular = SampleCellular(drive, radio, ds.towers, config.sampling, &traj_rng);
    if (mt.cellular.size() < 5) continue;  // Degenerate short trip; resample.
    all.push_back(std::move(mt));
  }

  ds.train.assign(all.begin(), all.begin() + config.num_train);
  ds.val.assign(all.begin() + config.num_train,
                all.begin() + config.num_train + config.num_val);
  ds.test.assign(all.begin() + config.num_train + config.num_val, all.end());
  return ds;
}

DatasetStats Dataset::ComputeStats() const {
  DatasetStats s;
  s.road_segments = network.num_segments();
  s.intersections = network.num_nodes();
  s.num_towers = static_cast<int>(towers.size());

  std::vector<const std::vector<traj::MatchedTrajectory>*> splits = {&train, &val,
                                                                     &test};
  int num_traj = 0;
  double interval_sum = 0.0;
  int64_t interval_count = 0;
  std::vector<double> hops;
  std::vector<double> errors;
  for (const auto* split : splits) {
    for (const traj::MatchedTrajectory& mt : *split) {
      ++num_traj;
      s.cellular_points += mt.cellular.size();
      s.gps_points += mt.gps.size();
      // Interval/hop statistics run over the tower-deduplicated sequence:
      // consecutive same-tower samples have hop distance 0 by construction
      // (the position is the tower's), which is not what Table I's sampling
      // distance measures.
      const traj::Trajectory distinct = traj::DeduplicateTowers(mt.cellular);
      for (int i = 0; i + 1 < distinct.size(); ++i) {
        const double gap = distinct[i + 1].t - distinct[i].t;
        interval_sum += gap;
        ++interval_count;
        s.max_cell_interval_s = std::max(s.max_cell_interval_s, gap);
        hops.push_back(geo::Distance(distinct[i].pos, distinct[i + 1].pos));
      }
      for (const traj::TrajPoint& p : mt.cellular.points) {
        errors.push_back(geo::Distance(p.pos, GpsPositionAt(mt.gps, p.t)));
      }
    }
  }
  if (num_traj > 0) {
    s.cellular_points_per_traj = static_cast<double>(s.cellular_points) / num_traj;
    s.gps_points_per_traj = static_cast<double>(s.gps_points) / num_traj;
  }
  if (interval_count > 0) {
    s.avg_cell_interval_s = interval_sum / static_cast<double>(interval_count);
  }
  if (!hops.empty()) {
    double sum = 0.0;
    for (double h : hops) sum += h;
    s.avg_cell_sampling_dist_m = sum / static_cast<double>(hops.size());
    std::nth_element(hops.begin(), hops.begin() + hops.size() / 2, hops.end());
    s.median_cell_sampling_dist_m = hops[hops.size() / 2];
  }
  if (!errors.empty()) {
    double sum = 0.0;
    for (double e : errors) sum += e;
    s.mean_positioning_error_m = sum / static_cast<double>(errors.size());
    const size_t p90 = static_cast<size_t>(0.9 * (errors.size() - 1));
    std::nth_element(errors.begin(), errors.begin() + p90, errors.end());
    s.p90_positioning_error_m = errors[p90];
  }
  return s;
}

double CentroidRadius(const network::RoadNetwork& net,
                      const traj::MatchedTrajectory& mt) {
  CHECK(!mt.gps.empty());
  geo::Point centroid{0.0, 0.0};
  for (const traj::TrajPoint& p : mt.gps.points) {
    centroid = centroid + p.pos;
  }
  centroid = centroid / static_cast<double>(mt.gps.size());
  return geo::Distance(centroid, net.Bounds().Center());
}

}  // namespace lhmm::sim
