#ifndef LHMM_SIM_SAMPLERS_H_
#define LHMM_SIM_SAMPLERS_H_

#include <vector>

#include "core/rng.h"
#include "network/road_network.h"
#include "sim/radio.h"
#include "traj/trajectory.h"

namespace lhmm::sim {

/// A timed drive along a route: piecewise-constant speed per segment with
/// per-segment jitter and intersection slowdowns. Supports querying the
/// vehicle position at any time within the drive.
class Drive {
 public:
  /// Builds the timeline. `speed_factor_lo/hi` scale each segment's speed
  /// limit; `rng` draws the per-segment factors.
  Drive(const network::RoadNetwork* net, std::vector<network::SegmentId> route,
        double speed_factor_lo, double speed_factor_hi, core::Rng* rng);

  double DurationSeconds() const { return enter_time_.back(); }
  const std::vector<network::SegmentId>& route() const { return route_; }

  /// Vehicle position at `t` seconds after departure (clamped to the drive).
  geo::Point PositionAt(double t) const;

  /// Segment occupied at time `t`.
  network::SegmentId SegmentAt(double t) const;

 private:
  const network::RoadNetwork* net_;
  std::vector<network::SegmentId> route_;
  /// enter_time_[i] = entry time of route_[i]; last entry = total duration.
  std::vector<double> enter_time_;
};

/// Parameters of the two observation channels.
struct SamplingConfig {
  double gps_interval = 5.0;        ///< GPS sampling period, seconds.
  double gps_noise_sigma = 6.0;     ///< GPS positional noise, meters.
  double cell_interval_mean = 16.0; ///< Mean cellular sampling period, s.
  double cell_interval_sigma = 7.0; ///< Spread of the cellular period, s.
  double cell_interval_min = 4.0;   ///< Lower clamp of the period, s.
  double speed_factor_lo = 0.55;    ///< Slowest fraction of the speed limit.
  double speed_factor_hi = 0.95;    ///< Fastest fraction of the speed limit.
};

/// Samples the GPS channel of a drive: period `gps_interval`, Gaussian noise.
traj::Trajectory SampleGps(const Drive& drive, const SamplingConfig& config,
                           core::Rng* rng);

/// Samples the cellular channel of a drive: random inter-sample gaps, serving
/// tower chosen by the radio model with handoff hysteresis; each sample's
/// position is the *tower's* position (Definition 2).
traj::Trajectory SampleCellular(const Drive& drive, const RadioModel& radio,
                                const std::vector<Tower>& towers,
                                const SamplingConfig& config, core::Rng* rng);

}  // namespace lhmm::sim

#endif  // LHMM_SIM_SAMPLERS_H_
