#include "sim/route_sampler.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/logging.h"

namespace lhmm::sim {

using network::NodeId;
using network::RoadSegment;
using network::SegmentId;

RouteSampler::RouteSampler(const network::RoadNetwork* net, const RouteConfig& config)
    : net_(net), config_(config) {
  CHECK(net != nullptr);
  dist_.assign(net->num_nodes(), 0.0);
  length_.assign(net->num_nodes(), 0.0);
  parent_.assign(net->num_nodes(), network::kInvalidSegment);
  stamp_.assign(net->num_nodes(), 0);
}

NodeId RouteSampler::SampleOrigin(core::Rng* rng) const {
  const geo::Point center = net_->Bounds().Center();
  const double half_diag = std::max(
      1.0, std::hypot(net_->Bounds().Width() / 2.0, net_->Bounds().Height() / 2.0));
  // Rejection sampling: acceptance decays with radius when central_bias > 0.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const NodeId v = rng->UniformInt(net_->num_nodes());
    const double r = geo::Distance(net_->node(v).pos, center) / half_diag;
    const double accept = 1.0 - config_.central_bias * r;
    if (rng->Uniform() < accept) return v;
  }
  return rng->UniformInt(net_->num_nodes());
}

std::vector<SegmentId> RouteSampler::SampleRoute(core::Rng* rng) {
  const NodeId origin = SampleOrigin(rng);
  ++current_stamp_;

  // Travel-time Dijkstra under perturbed costs, bounded by max route length.
  using HeapEntry = std::pair<double, NodeId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  std::vector<bool> settled(net_->num_nodes(), false);
  dist_[origin] = 0.0;
  length_[origin] = 0.0;
  parent_[origin] = network::kInvalidSegment;
  stamp_[origin] = current_stamp_;
  heap.push({0.0, origin});

  std::vector<NodeId> in_range;
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (settled[v]) continue;
    settled[v] = true;
    if (length_[v] >= config_.min_length && length_[v] <= config_.max_length) {
      in_range.push_back(v);
    }
    if (length_[v] > config_.max_length) continue;
    for (SegmentId sid : net_->OutSegments(v)) {
      const RoadSegment& seg = net_->segment(sid);
      const double noise = std::exp(rng->Normal(0.0, config_.cost_noise_sigma));
      const double cost = seg.length / seg.speed_limit * noise;
      const double nd = d + cost;
      if (stamp_[seg.to] != current_stamp_ || nd < dist_[seg.to]) {
        stamp_[seg.to] = current_stamp_;
        dist_[seg.to] = nd;
        length_[seg.to] = length_[v] + seg.length;
        parent_[seg.to] = sid;
        heap.push({nd, seg.to});
      }
    }
  }
  if (in_range.empty()) return {};

  const NodeId dest = in_range[rng->UniformInt(static_cast<int>(in_range.size()))];
  std::vector<SegmentId> route;
  NodeId v = dest;
  while (parent_[v] != network::kInvalidSegment) {
    route.push_back(parent_[v]);
    v = net_->segment(parent_[v]).from;
  }
  std::reverse(route.begin(), route.end());
  return route;
}

}  // namespace lhmm::sim
