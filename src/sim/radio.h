#ifndef LHMM_SIM_RADIO_H_
#define LHMM_SIM_RADIO_H_

#include <vector>

#include "core/rng.h"
#include "sim/towers.h"

namespace lhmm::sim {

/// Parameters of the cellular association model.
struct RadioConfig {
  double path_loss_exponent = 3.2;     ///< Log-distance path-loss exponent.
  /// Per-(tower, sector) antenna/terrain gain spread in dB. This component is
  /// *fixed per deployment*: the same road is consistently served by the same
  /// non-nearest tower, which is precisely the structure LHMM's co-occurrence
  /// learning exploits and distance-only observation models cannot.
  double sector_gain_sigma_db = 7.0;
  int sectors = 6;                     ///< Angular sectors per tower.
  double fast_fading_sigma_db = 2.5;   ///< Per-sample fading noise in dB.
  double handoff_hysteresis_db = 3.0;  ///< Required margin to switch towers.
  double max_serving_range = 4000.0;   ///< Towers beyond this never serve, m.
  /// Probability that a sample is a gross outlier: the phone momentarily
  /// attaches to a distant macro tower (the paper's "extremely high
  /// positioning error" points like x2 in Fig. 1).
  double outlier_prob = 0.05;
  double outlier_min_dist = 700.0;
  double outlier_max_dist = 1900.0;
  /// Expected number of consecutive samples an outlier attachment lasts.
  /// Macro-tower attachments persist across samples in real traces, which is
  /// what lets them survive the ping-pong (direction) filter.
  double outlier_mean_duration = 2.2;
};

/// Per-trajectory serving state threaded through Serve() calls: the previous
/// serving tower (for hysteresis) and any in-progress outlier attachment.
struct ServeState {
  traj::TowerId previous = traj::kInvalidTower;
  traj::TowerId outlier_tower = traj::kInvalidTower;
  int outlier_remaining = 0;
};

/// Log-distance path-loss + fixed sector gains + fast fading + hysteresis
/// handoff. Deterministic given (deployment seed, sample stream), so datasets
/// are reproducible.
class RadioModel {
 public:
  /// Draws the fixed sector gains for every tower from `deploy_rng`. The
  /// towers vector must outlive the model.
  RadioModel(const std::vector<Tower>* towers, const RadioConfig& config,
             core::Rng* deploy_rng);

  /// Received signal strength (dB, up to a constant) from `tower_id` at
  /// `user`, excluding fast fading.
  double MeanSignalDb(traj::TowerId tower_id, const geo::Point& user) const;

  /// Serving tower for a user at `user`. `state` carries the previous
  /// serving tower (hysteresis) and sticky outlier attachments across the
  /// trajectory; start each trajectory from a default ServeState. `rng`
  /// drives the per-sample randomness.
  traj::TowerId Serve(const geo::Point& user, ServeState* state,
                      core::Rng* rng) const;

  const RadioConfig& config() const { return config_; }

 private:
  int SectorOf(traj::TowerId tower_id, const geo::Point& user) const;

  const std::vector<Tower>* towers_;
  RadioConfig config_;
  std::vector<std::vector<double>> sector_gain_db_;  ///< [tower][sector].
};

}  // namespace lhmm::sim

#endif  // LHMM_SIM_RADIO_H_
