#ifndef LHMM_SIM_CORRUPT_H_
#define LHMM_SIM_CORRUPT_H_

#include <cstdint>
#include <string>

#include "core/rng.h"
#include "traj/trajectory.h"

namespace lhmm::sim {

/// Per-point corruption rates for the fault-injection harness. Each rate is
/// the probability that the corresponding defect is applied to a point (a
/// point can collect several defects). The defect classes mirror what real
/// cellular feeds do: broken fixes, replayed packets, reordered delivery,
/// runaway positioning error, and towers the network has never heard of.
struct CorruptionConfig {
  double nan_rate = 0.0;            ///< Coordinate becomes NaN.
  double duplicate_rate = 0.0;      ///< Point is delivered twice (same t).
  double swap_rate = 0.0;           ///< Point swaps order with its successor.
  double jump_rate = 0.0;           ///< Position teleports by ~jump_meters.
  double jump_meters = 20000.0;
  double unknown_tower_rate = 0.0;  ///< Tower id outside any valid universe.
  uint64_t seed = 1;
};

/// A config exercising every defect class at `rate`, seeded.
CorruptionConfig UniformCorruption(double rate, uint64_t seed);

/// What CorruptTrajectory actually injected.
struct CorruptionSummary {
  int nans = 0;
  int duplicates = 0;
  int swaps = 0;
  int jumps = 0;
  int unknown_towers = 0;

  int total() const { return nans + duplicates + swaps + jumps + unknown_towers; }
  std::string ToString() const;
};

/// Returns a corrupted copy of `in`, deterministic in (config.seed, input).
/// The result intentionally violates the Trajectory invariants (monotone
/// time, finite coordinates) — feed it through traj::Sanitize or a hardened
/// entry point; feeding it to a matcher directly is the crash-test.
traj::Trajectory CorruptTrajectory(const traj::Trajectory& in,
                                   const CorruptionConfig& config,
                                   CorruptionSummary* summary = nullptr);

}  // namespace lhmm::sim

#endif  // LHMM_SIM_CORRUPT_H_
