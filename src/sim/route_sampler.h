#ifndef LHMM_SIM_ROUTE_SAMPLER_H_
#define LHMM_SIM_ROUTE_SAMPLER_H_

#include <vector>

#include "core/rng.h"
#include "network/road_network.h"

namespace lhmm::sim {

/// Parameters of ground-truth route generation.
struct RouteConfig {
  double min_length = 2500.0;  ///< Minimum route length, meters.
  double max_length = 7500.0;  ///< Maximum route length, meters.
  /// Log-normal sigma of per-edge travel-cost perturbation. Zero gives pure
  /// shortest paths; positive values yield the near-shortest detoured routes
  /// real drivers take.
  double cost_noise_sigma = 0.3;
  /// Bias toward starting trips near the center (population density proxy);
  /// 0 = uniform over nodes, 1 = strongly central.
  double central_bias = 0.5;
};

/// Samples realistic driven routes on a road network: a random origin (biased
/// toward the center), a travel-time Dijkstra under per-trip perturbed edge
/// costs, and a random destination among nodes whose route length lands in
/// the configured range.
class RouteSampler {
 public:
  /// The network must outlive the sampler.
  RouteSampler(const network::RoadNetwork* net, const RouteConfig& config);

  /// Returns the route as consecutive segment ids, or an empty vector if no
  /// suitable destination was reachable from the sampled origin (rare; caller
  /// simply retries).
  std::vector<network::SegmentId> SampleRoute(core::Rng* rng);

 private:
  network::NodeId SampleOrigin(core::Rng* rng) const;

  const network::RoadNetwork* net_;
  RouteConfig config_;
  // Scratch buffers reused across calls.
  std::vector<double> dist_;
  std::vector<double> length_;
  std::vector<network::SegmentId> parent_;
  std::vector<int> stamp_;
  int current_stamp_ = 0;
};

}  // namespace lhmm::sim

#endif  // LHMM_SIM_ROUTE_SAMPLER_H_
