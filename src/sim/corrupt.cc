#include "sim/corrupt.h"

#include <cmath>
#include <limits>
#include <utility>

#include "core/strings.h"

namespace lhmm::sim {

CorruptionConfig UniformCorruption(double rate, uint64_t seed) {
  CorruptionConfig c;
  c.nan_rate = rate;
  c.duplicate_rate = rate;
  c.swap_rate = rate;
  c.jump_rate = rate;
  c.unknown_tower_rate = rate;
  c.seed = seed;
  return c;
}

std::string CorruptionSummary::ToString() const {
  return core::StrFormat(
      "injected %d defects (nan %d, duplicate %d, swap %d, jump %d, "
      "unknown-tower %d)",
      total(), nans, duplicates, swaps, jumps, unknown_towers);
}

traj::Trajectory CorruptTrajectory(const traj::Trajectory& in,
                                   const CorruptionConfig& config,
                                   CorruptionSummary* summary) {
  CorruptionSummary local;
  CorruptionSummary& s = summary != nullptr ? *summary : local;
  s = CorruptionSummary{};
  core::Rng rng(config.seed);

  traj::Trajectory out;
  out.points.reserve(in.points.size());
  for (int i = 0; i < in.size(); ++i) {
    traj::TrajPoint p = in[i];
    if (rng.Bernoulli(config.jump_rate)) {
      const double angle = rng.Uniform(0.0, 2.0 * M_PI);
      p.pos.x += config.jump_meters * std::cos(angle);
      p.pos.y += config.jump_meters * std::sin(angle);
      ++s.jumps;
    }
    if (rng.Bernoulli(config.unknown_tower_rate)) {
      p.tower = 1000000 + rng.UniformInt(1000000);
      ++s.unknown_towers;
    }
    if (rng.Bernoulli(config.nan_rate)) {
      (rng.Bernoulli(0.5) ? p.pos.x : p.pos.y) =
          std::numeric_limits<double>::quiet_NaN();
      ++s.nans;
    }
    out.points.push_back(p);
    if (rng.Bernoulli(config.duplicate_rate)) {
      out.points.push_back(p);  // Replayed packet: same fix, same timestamp.
      ++s.duplicates;
    }
  }
  // Swap pass: reordered delivery flips a point with its successor.
  for (size_t i = 0; i + 1 < out.points.size(); ++i) {
    if (rng.Bernoulli(config.swap_rate)) {
      std::swap(out.points[i], out.points[i + 1]);
      ++s.swaps;
      ++i;  // Do not immediately swap the pair back.
    }
  }
  return out;
}

}  // namespace lhmm::sim
