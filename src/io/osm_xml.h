#ifndef LHMM_IO_OSM_XML_H_
#define LHMM_IO_OSM_XML_H_

#include <string>

#include "core/status.h"
#include "geo/latlon.h"
#include "network/road_network.h"

namespace lhmm::io {

/// Options controlling the OSM import.
struct OsmImportOptions {
  /// Ways whose `highway` tag is absent or in none of these classes are
  /// skipped. Defaults cover the drivable network.
  std::vector<std::string> highway_classes = {
      "motorway", "trunk",       "primary",     "secondary", "tertiary",
      "unclassified", "residential", "motorway_link", "trunk_link",
      "primary_link", "secondary_link", "tertiary_link", "living_street"};
  /// Fallback speed limit (m/s) when no `maxspeed` tag parses.
  double default_speed = 13.9;
  /// Keep only the largest strongly connected component after import.
  bool keep_largest_scc = true;
};

/// Result of an OSM import: the network plus the projection used to convert
/// WGS-84 coordinates into the local planar frame.
struct OsmImportResult {
  network::RoadNetwork net;
  geo::LatLon origin;  ///< Projection origin (mean of node coordinates).
};

/// Parses OpenStreetMap XML (`.osm`) from a string: `<node>` elements with
/// lat/lon, `<way>` elements with `<nd ref>` chains and `<tag>` metadata.
/// Two-way roads become twin segment pairs; `oneway=yes` ways a single
/// direction. This is a deliberately small parser for the OSM XML subset
/// that describes road geometry — not a general XML library; it tolerates
/// attribute reordering and self-closing tags, and fails with a Status on
/// structurally broken input.
core::Result<OsmImportResult> ParseOsmXml(const std::string& xml,
                                          const OsmImportOptions& options = {});

/// Reads the file at `path` and parses it with ParseOsmXml.
core::Result<OsmImportResult> LoadOsmXml(const std::string& path,
                                         const OsmImportOptions& options = {});

}  // namespace lhmm::io

#endif  // LHMM_IO_OSM_XML_H_
