#include "io/durable_file.h"

#include <memory>
#include <utility>

namespace lhmm::io {

namespace {

Env* Resolve(Env* env) { return env != nullptr ? env : Env::Default(); }

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

core::Status FsyncPath(Env* env, const std::string& path) {
  return Resolve(env)->SyncPath(path);
}

core::Status FsyncParentDir(Env* env, const std::string& path) {
  return Resolve(env)->SyncPath(ParentDir(path));
}

core::Status AtomicWriteFile(Env* env, const std::string& path,
                             const std::string& contents, bool durable) {
  env = Resolve(env);
  const std::string tmp = path + ".tmp";
  core::Result<std::unique_ptr<WritableFile>> file =
      env->NewWritableFile(tmp, /*append=*/false);
  if (!file.ok()) return file.status();
  core::Status write = (*file)->Append(contents);
  if (write.ok() && durable) write = (*file)->Sync();
  const core::Status close = (*file)->Close();
  if (write.ok() && !close.ok()) write = close;
  if (write.ok()) write = env->Rename(tmp, path);
  if (!write.ok()) {
    (void)env->Unlink(tmp);  // Best effort: never leave a stale tmp behind.
    return write;
  }
  if (durable) {
    LHMM_RETURN_IF_ERROR(FsyncParentDir(env, path));
  }
  return core::Status::Ok();
}

core::Status AppendToFile(Env* env, const std::string& path,
                          const std::string& data) {
  core::Result<std::unique_ptr<WritableFile>> file =
      Resolve(env)->NewWritableFile(path, /*append=*/true);
  if (!file.ok()) return file.status();
  const core::Status write = (*file)->Append(data);
  const core::Status close = (*file)->Close();
  return write.ok() ? close : write;
}

core::Status TruncateWriteFile(Env* env, const std::string& path,
                               const std::string& contents, bool durable) {
  core::Result<std::unique_ptr<WritableFile>> file =
      Resolve(env)->NewWritableFile(path, /*append=*/false);
  if (!file.ok()) return file.status();
  core::Status write = (*file)->Append(contents);
  if (write.ok() && durable) write = (*file)->Sync();
  const core::Status close = (*file)->Close();
  return write.ok() ? close : write;
}

}  // namespace lhmm::io
