#include "io/durable_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace lhmm::io {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// Writes all of `data` to `fd`, retrying short writes and EINTR.
core::Status WriteAll(int fd, const std::string& data,
                      const std::string& path) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return core::Status::IoError(Errno("write to " + path + " failed"));
    }
    off += static_cast<size_t>(n);
  }
  return core::Status::Ok();
}

}  // namespace

core::Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return core::Status::IoError(Errno("cannot open " + path + " for fsync"));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return core::Status::IoError(Errno("fsync of " + path + " failed"));
  }
  return core::Status::Ok();
}

core::Status FsyncParentDir(const std::string& path) {
  return FsyncPath(ParentDir(path));
}

core::Status AtomicWriteFile(const std::string& path,
                             const std::string& contents, bool durable) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return core::Status::IoError(Errno("cannot write " + tmp));
  }
  core::Status write = WriteAll(fd, contents, tmp);
  if (write.ok() && durable && ::fsync(fd) != 0) {
    write = core::Status::IoError(Errno("fsync of " + tmp + " failed"));
  }
  ::close(fd);
  if (!write.ok()) {
    ::unlink(tmp.c_str());
    return write;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const core::Status st =
        core::Status::IoError(Errno("cannot rename " + tmp + " to " + path));
    ::unlink(tmp.c_str());
    return st;
  }
  if (durable) {
    LHMM_RETURN_IF_ERROR(FsyncParentDir(path));
  }
  return core::Status::Ok();
}

core::Status AppendToFile(const std::string& path, const std::string& data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return core::Status::IoError(Errno("cannot append to " + path));
  }
  const core::Status write = WriteAll(fd, data, path);
  ::close(fd);
  return write;
}

}  // namespace lhmm::io
